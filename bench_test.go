package marlin_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7), each regenerating its artifact through the
// experiment registry and reporting the figure's headline numbers as
// benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Wall-clock note: these are whole-system simulations, so a single
// iteration spans seconds; benchtime=1x is implied by their cost.

import (
	"testing"

	"marlin"
)

// benchExperiment runs one experiment per iteration and republishes the
// chosen metrics through b.ReportMetric.
func benchExperiment(b *testing.B, name string, scale float64, metrics ...string) {
	b.Helper()
	opts := marlin.ExperimentOptions{Scale: scale, Seed: 1}
	var last *marlin.ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := marlin.RunExperiment(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- Tables ---

func BenchmarkTableCapabilities(b *testing.B) {
	benchExperiment(b, "table-capabilities", 1, "needed_mpps", "host_mpps")
}

func BenchmarkTableAmplification(b *testing.B) {
	benchExperiment(b, "table-amplify", 1,
		"measured_tbps_1024", "amp_1024", "amp_1518")
}

func BenchmarkTableCCModules(b *testing.B) {
	benchExperiment(b, "table-ccmodules", 1, "dctcp_clk", "bram_pct")
}

// --- Figures ---

func BenchmarkFig5CCCorrectness(b *testing.B) {
	benchExperiment(b, "fig5", 1,
		"cwnd_norm_rmse", "alpha_max_abs_dev", "marlin_peak_cwnd")
}

func BenchmarkFig6SinglePort(b *testing.B) {
	benchExperiment(b, "fig6", 1, "mean_jain", "mean_total_gbps")
}

func BenchmarkFig7MultiPort(b *testing.B) {
	benchExperiment(b, "fig7", 1, "mean_total_tbps", "min_flow_gbps_steady")
}

func BenchmarkFig8Congestion(b *testing.B) {
	benchExperiment(b, "fig8", 1,
		"dctcp_overlap_jain", "dcqcn_overlap_jain", "dctcp_reclaim_gbps")
}

func BenchmarkFig9Fidelity(b *testing.B) {
	benchExperiment(b, "fig9", 0.5, "2cast_p90_ratio", "3cast_p99_ratio")
}

func BenchmarkFig10Comprehensive(b *testing.B) {
	benchExperiment(b, "fig10", 0.5,
		"dctcp_p99_slowdown", "dcqcn_p99_slowdown", "dctcp_throughput_gbps")
}

// --- Ablations (DESIGN.md's design-choice benchmarks) ---

func BenchmarkAblationQueuePlacement(b *testing.B) {
	benchExperiment(b, "ablate-queue", 1, "shared_misdelivery_pct")
}

func BenchmarkAblationRXTimer(b *testing.B) {
	benchExperiment(b, "ablate-rxtimer", 1,
		"rx-timer-off_conflict_pct", "rate_error_factor")
}

func BenchmarkAblationSCHEOverrun(b *testing.B) {
	benchExperiment(b, "ablate-overrun", 1, "loss_pct_3.0x")
}

func BenchmarkAblationScheduler(b *testing.B) {
	benchExperiment(b, "ablate-scheduler", 1, "fifo_speedup", "scan_gbps")
}

func BenchmarkAblationSlowPath(b *testing.B) {
	benchExperiment(b, "ablate-slowpath", 1, "fastpath_err", "slowpath_err")
}

// --- Extensions (beyond the paper's evaluation) ---

func BenchmarkExtHPCC(b *testing.B) {
	benchExperiment(b, "ext-hpcc", 1, "hpcc_mean_queue_pkts", "dctcp_mean_queue_pkts")
}

func BenchmarkExtPFC(b *testing.B) {
	benchExperiment(b, "ext-pfc", 1, "pfc_drops", "lossy_drops", "pfc_pauses")
}

func BenchmarkExtMultiPipe(b *testing.B) {
	benchExperiment(b, "ext-multipipe", 1, "device_tbps")
}

// --- whole-tester microbenchmark: simulation efficiency ---

func BenchmarkTesterPacketRate(b *testing.B) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RunFor(10 * marlin.Microsecond)
	}
	b.StopTimer()
	pkts := tr.Registers().Switch.DataTx
	b.ReportMetric(float64(pkts)/float64(b.N), "DATApkts/op")
}

func BenchmarkExtFPGAReceiver(b *testing.B) {
	benchExperiment(b, "ext-fpgarecv", 1, "fct_penalty_us")
}

func BenchmarkExtOpenLoop(b *testing.B) {
	benchExperiment(b, "ext-openloop", 0.5, "p99_at_90", "gbps_at_90")
}

func BenchmarkExtAlgoComparison(b *testing.B) {
	benchExperiment(b, "ext-algos", 1, "dctcp_queue_pkts", "hpcc_queue_pkts")
}

func BenchmarkAblationRXDemux(b *testing.B) {
	benchExperiment(b, "ablate-rxdemux", 1, "throughput_ratio")
}

func BenchmarkExtLeafSpine(b *testing.B) {
	benchExperiment(b, "ext-leafspine", 1, "dcqcn_ecmp_imbalance", "cubic_fct_p99_us")
}
