package marlin

import (
	"marlin/internal/cc"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/workload"
)

// This file exports the CC-module programming interface (the paper's
// Table 3) so downstream users can implement and register their own
// congestion-control algorithms — requirement R2. The aliases make the
// internal types directly implementable from outside the module.

// CCAlgorithm is a congestion-control module: the unit a user writes in
// HLS C++ on real hardware (§5.4). Implementations must be pure event
// handlers over the provided state regions.
type CCAlgorithm = cc.Algorithm

// CCInput is the read-only intrinsic-variable struct (Table 3, INPUT).
type CCInput = cc.Input

// CCOutput is the write-only result struct (Table 3, OUTPUT).
type CCOutput = cc.Output

// CCState is the 64-byte per-flow cust-var / slwpth-var region.
type CCState = cc.State

// CCParams is the parameter block deployed to FPGA BRAM.
type CCParams = cc.Params

// CCMode distinguishes window- and rate-based algorithms.
type CCMode = cc.Mode

// CC modes.
const (
	WindowMode = cc.WindowMode
	RateMode   = cc.RateMode
)

// CC event types (the evt-typ intrinsic input).
const (
	EvRx      = cc.EvRx
	EvTimeout = cc.EvTimeout
	EvTimer   = cc.EvTimer
	EvStart   = cc.EvStart
)

// Per-flow hardware timer IDs.
const (
	TimerRTO   = cc.TimerRTO
	TimerAlpha = cc.TimerAlpha
	TimerRate  = cc.TimerRate
)

// Packet flag bits visible to CC modules.
const (
	FlagCE        = packet.FlagCE
	FlagECNEcho   = packet.FlagECNEcho
	FlagNACK      = packet.FlagNACK
	FlagCNPNotify = packet.FlagCNPNotify
)

// CCRegs provides HLS-style fixed-slot access to a CCState region.
type CCRegs = cc.Regs

// RegsOf wraps a state region in slot accessors.
func RegsOf(s *CCState) CCRegs { return cc.RegsOf(s) }

// SeqLT reports whether a precedes b in 32-bit circular sequence space.
func SeqLT(a, b uint32) bool { return cc.SeqLT(a, b) }

// SeqDiff returns a-b as a signed circular distance.
func SeqDiff(a, b uint32) int32 { return cc.SeqDiff(a, b) }

// RegisterCC installs a custom algorithm constructor under name. It
// panics on duplicate names (always a programming error).
func RegisterCC(name string, ctor func() CCAlgorithm) {
	cc.Register(name, ctor)
}

// DefaultCCParams returns the evaluation's default parameter block.
func DefaultCCParams(line Rate, mtu int) CCParams {
	return cc.DefaultParams(line, mtu)
}

// --- workload re-exports ---

// Rand is the deterministic random stream workload sampling uses.
type Rand = sim.Rand

// NewRand returns a seeded deterministic generator.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// SizeDist is an empirical flow-size distribution.
type SizeDist = workload.SizeDist

// WebSearch returns the paper's WebSearch flow-size distribution.
func WebSearch() *SizeDist { return workload.WebSearch() }

// DataMining returns the heavier-tailed data-mining distribution from the
// same workload family.
func DataMining() *SizeDist { return workload.DataMining() }

// FixedSize returns a constant flow-size distribution.
func FixedSize(pkts uint32) *SizeDist { return workload.Fixed(pkts) }

// UniformSize returns a uniform flow-size distribution over [lo, hi].
func UniformSize(lo, hi uint32) *SizeDist { return workload.Uniform(lo, hi) }

// --- fault-injection helpers (unexported plumbing) ---

func scriptDrop(flow FlowID, psn uint32) netem.Hook {
	return netem.NewScript().DropOnce(flow, psn).Hook
}

func scriptMark(flow FlowID, from, to uint32) netem.Hook {
	return netem.NewScript().MarkRange(flow, from, to).Hook
}
