// The sweep command is the paper's R2 use case ("find the optimal
// configuration by adjusting CC parameters") run as a fleet campaign: the
// cartesian product of -axis dimensions, optionally replicated across
// derived seeds, executed across all cores, checkpointed to a journal, and
// aggregated into one table through the experiment formatters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"marlin"
	"marlin/internal/fleet"
)

// axisList collects repeated -axis flags.
type axisList []fleet.Axis

func (a *axisList) String() string {
	parts := make([]string, len(*a))
	for i, ax := range *a {
		parts[i] = ax.Key + "=" + strings.Join(ax.Values, ",")
	}
	return strings.Join(parts, " ")
}

func (a *axisList) Set(s string) error {
	ax, err := fleet.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var axes axisList
	fs.Var(&axes, "axis",
		"swept dimension key=v1,v2,... (repeatable; keys: "+strings.Join(fleet.AxisKeys(), " ")+")")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel jobs (1 = sequential)")
	reps := fs.Int("reps", 1, "seed replicates per sweep point")
	seed := fs.Uint64("seed", 1, "campaign base seed (per-job seeds derive from it)")
	algo := fs.String("algo", "dctcp", "base CC algorithm (sweep it with -axis algo=...)")
	ports := fs.Int("ports", 5, "data ports; senders fan in to the last one")
	flows := fs.Int("flows", 2, "closed-loop flows per sender port")
	durStr := fs.String("duration", "15ms", "simulated horizon per point")
	timeout := fs.Duration("timeout", 0, "wall-clock timeout per job attempt (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts for failed jobs")
	journal := fs.String("journal", "", "JSONL checkpoint file; rerunning resumes it")
	format := fs.String("format", "text", "output format: text, json, or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	if len(axes) == 0 {
		return fmt.Errorf("sweep: need at least one -axis key=v1,v2,... (keys: %s)",
			strings.Join(fleet.AxisKeys(), " "))
	}
	if *reps < 1 {
		return fmt.Errorf("sweep: -reps must be >= 1")
	}
	dur, err := time.ParseDuration(*durStr)
	if err != nil {
		return fmt.Errorf("sweep: bad -duration: %w", err)
	}
	horizon := marlin.Duration(dur.Nanoseconds()) * marlin.Nanosecond

	points := fleet.Cartesian(axes)
	var jobs []marlin.FleetJob
	for _, pt := range points {
		cfg := marlin.TestConfig{
			Algorithm:        *algo,
			Ports:            *ports,
			FlowsPerPort:     *flows,
			ECNThresholdPkts: 65,
		}
		if err := pt.Apply(&cfg); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if err := marlin.Validate(cfg); err != nil {
			return fmt.Errorf("sweep: point %s: %w", pt.ID(), err)
		}
		jobs = append(jobs, fleet.Replicate(pt.ID(), *reps, *seed,
			func(seed uint64) (*marlin.FleetOutput, error) {
				return runSweepPoint(cfg, horizon, seed)
			})...)
	}

	start := time.Now() //marlin:allow wallclock -- "(Ns wall)" banner; host-side UX, not model state
	results, err := marlin.RunFleet(jobs, marlin.FleetOptions{
		Workers:  *workers,
		Timeout:  *timeout,
		Retries:  *retries,
		Journal:  *journal,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}

	res := sweepTable(axes, points, results, *reps)
	res.Note("workload: closed-loop uniform(20,400)-pkt flows fanning in to the last port; base config %d flows/sender, %d ports (axes may override), %v horizon",
		*flows, *ports, dur)
	res.Note("campaign: seed %d, %d replicate(s)/point, %d worker(s)", *seed, *reps, *workers)
	if err := emit(res, *format); err != nil {
		return err
	}
	if *format == "text" {
		fmt.Printf("(%.1fs wall)\n", time.Since(start).Seconds()) //marlin:allow wallclock -- wall-time banner; host-side UX
	}
	if nf := fleet.Failed(results); nf > 0 {
		return fmt.Errorf("sweep: %d job(s) failed", nf)
	}
	return nil
}

// runSweepPoint deploys one configuration and drives the fan-in closed-loop
// workload over it, reporting goodput, FCT percentiles, and drops. Flow
// restarts happen inside the simulation's OnComplete hook; errors there
// propagate out through the job result instead of aborting the process.
func runSweepPoint(cfg marlin.TestConfig, horizon marlin.Duration, seed uint64) (*marlin.FleetOutput, error) {
	flows := cfg.FlowsPerPort
	if flows < 1 {
		flows = 1
	}
	cfg.FlowsPerPort = 0 // flows are driven closed-loop below, not auto-started
	cfg.Seed = seed
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return nil, err
	}
	senders := t.DataPorts() - 1
	if senders < 1 {
		return nil, fmt.Errorf("sweep: need at least 2 data ports for a fan-in")
	}
	dist := marlin.UniformSize(20, 400)
	rng := marlin.NewRand(seed)
	flowPort := make(map[marlin.FlowID]int)
	var cbErr error
	startFlow := func(flow marlin.FlowID) {
		if err := t.StartFlow(flow, flowPort[flow], senders, dist.Sample(rng)); err != nil && cbErr == nil {
			cbErr = err
		}
	}
	t.OnComplete(func(flow marlin.FlowID, _ marlin.Duration) {
		if cbErr == nil {
			startFlow(flow)
		}
	})
	var id marlin.FlowID
	for p := 0; p < senders; p++ {
		for k := 0; k < flows; k++ {
			flowPort[id] = p
			startFlow(id)
			id++
		}
	}
	t.RunFor(horizon)
	if cbErr != nil {
		return nil, fmt.Errorf("restart flow: %w", cbErr)
	}
	fcts := t.FCTMicros()
	cdf := marlin.NewCDF(fcts)
	goodput := float64(t.Registers().Switch.DataTxBytes) * 8 / horizon.Seconds() / 1e9
	return &marlin.FleetOutput{
		Metrics: map[string]float64{
			"goodput_gbps": goodput,
			"p50_fct_us":   cdf.Percentile(0.5),
			"p99_fct_us":   cdf.Percentile(0.99),
			"drops":        float64(t.Losses().NetworkDrops),
			"completions":  float64(len(fcts)),
		},
		Samples: map[string][]float64{"fct_us": fcts},
	}, nil
}

// sweepTable folds the per-job results back into one experiment-style table:
// one row per sweep point, replicates aggregated as mean[min..max] for
// goodput and as percentiles of the merged FCT distribution.
func sweepTable(axes []fleet.Axis, points []fleet.Point, results []marlin.FleetJobResult, reps int) *marlin.ExperimentResult {
	headers := make([]string, 0, len(axes)+5)
	for _, ax := range axes {
		headers = append(headers, ax.Key)
	}
	headers = append(headers, "goodput_gbps")
	if reps > 1 {
		headers = append(headers, "goodput_min", "goodput_max")
	}
	headers = append(headers, "p50_fct_us", "p99_fct_us", "drops")

	axdesc := axisList(axes)
	res := &marlin.ExperimentResult{
		Name:    "sweep",
		Title:   "configuration sweep over " + axdesc.String(),
		Headers: headers,
		Metrics: make(map[string]float64),
	}
	for i, pt := range points {
		group := results[i*reps : (i+1)*reps]
		outs := fleet.Outputs(group)
		stats := fleet.Aggregate(outs)
		cdf := fleet.MergedCDF(outs, "fct_us")

		row := append([]string(nil), pt.Values...)
		ok := 0
		for _, r := range group {
			if r.OK() {
				ok++
			} else {
				res.Note("%s: attempt(s) %d FAILED: %s", r.ID, r.Attempts, r.Err)
			}
		}
		if ok == 0 {
			for len(row) < len(headers) {
				row = append(row, "error")
			}
			res.AddRow(row...)
			continue
		}
		gp := stats["goodput_gbps"]
		p50, p99 := cdf.Percentile(0.5), cdf.Percentile(0.99)
		row = append(row, fmt.Sprintf("%.1f", gp.Mean))
		if reps > 1 {
			row = append(row, fmt.Sprintf("%.1f", gp.Min), fmt.Sprintf("%.1f", gp.Max))
		}
		row = append(row,
			fmt.Sprintf("%.1f", p50),
			fmt.Sprintf("%.1f", p99),
			fmt.Sprintf("%.1f", stats["drops"].Mean))
		res.AddRow(row...)

		id := pt.ID()
		res.Metrics[id+"/goodput_gbps"] = gp.Mean
		res.Metrics[id+"/p50_fct_us"] = p50
		res.Metrics[id+"/p99_fct_us"] = p99
		res.Metrics[id+"/drops"] = stats["drops"].Mean
	}
	return res
}
