package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"marlin"
)

// cmdBench runs a fixed tester workload repeatedly and reports wall-clock
// throughput (simulated events and DATA packets per host second). It exists
// to drive the profilers: -cpuprofile/-memprofile/-trace wrap the hot loop
// the way 'go test -bench' would, but against the full assembled tester
// rather than a microbenchmark.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	algo := fs.String("algo", "dctcp", "CC algorithm")
	ports := fs.Int("ports", 4, "data ports")
	flows := fs.Int("flows", 1, "flows per sender port")
	durStr := fs.String("duration", "5ms", "simulated duration per repetition")
	reps := fs.Int("reps", 3, "repetitions (a fresh tester each)")
	ecn := fs.Int("ecn", 65, "ECN step-marking threshold in packets (0 = off)")
	fanin := fs.Bool("fanin", false, "route all flows to one destination port")
	fpgaRecv := fs.Bool("fpgarecv", false, "run receiver logic on the FPGA")
	topology := fs.String("topology", "", "tested-network fabric (empty = single switch)")
	shards := fs.Int("shards", 0, "conservative parallel build on up to N worker cores (needs -topology; 0 = classic single-engine)")
	seed := fs.Uint64("seed", 1, "random seed")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file")
	tracePath := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dur, err := time.ParseDuration(*durStr)
	if err != nil {
		return fmt.Errorf("bench: bad -duration: %w", err)
	}
	if *reps < 1 {
		return fmt.Errorf("bench: -reps must be >= 1")
	}

	cfg := marlin.TestConfig{
		Algorithm:        *algo,
		Ports:            *ports,
		ECNThresholdPkts: *ecn,
		ReceiverOnFPGA:   *fpgaRecv,
		Topology:         *topology,
		Shards:           *shards,
		DCQCNTimeScale:   30,
		Seed:             *seed,
	}

	// Warm-up repetition outside the profiled window: JIT-free Go still
	// benefits from warming the page cache, the packet pool, and the
	// branch predictors before measuring.
	if _, _, err := benchRep(cfg, *flows, *fanin, dur); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}

	var totalEvents, totalPkts uint64
	start := time.Now() //marlin:allow wallclock -- bench measures host throughput
	for r := 0; r < *reps; r++ {
		events, pkts, err := benchRep(cfg, *flows, *fanin, dur)
		if err != nil {
			return err
		}
		totalEvents += events
		totalPkts += pkts
	}
	elapsed := time.Since(start) //marlin:allow wallclock -- bench measures host throughput

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	secs := elapsed.Seconds()
	fmt.Printf("bench: algo=%s ports=%d flows=%d duration=%s reps=%d\n",
		*algo, *ports, *flows, *durStr, *reps)
	fmt.Printf("wall %.3fs  sim %.1fms  sim/wall %.3fx\n",
		secs, float64(*reps)*dur.Seconds()*1e3,
		float64(*reps)*dur.Seconds()/secs)
	fmt.Printf("events %d  (%.2fM events/s)\n",
		totalEvents, float64(totalEvents)/secs/1e6)
	fmt.Printf("data packets %d  (%.2fM pkts/s)\n",
		totalPkts, float64(totalPkts)/secs/1e6)
	if *cpuprofile != "" {
		fmt.Printf("cpu profile written to %s (inspect with 'go tool pprof')\n", *cpuprofile)
	}
	if *memprofile != "" {
		fmt.Printf("mem profile written to %s (inspect with 'go tool pprof')\n", *memprofile)
	}
	if *tracePath != "" {
		fmt.Printf("trace written to %s (inspect with 'go tool trace')\n", *tracePath)
	}
	return nil
}

// benchRep assembles one tester, runs the workload for dur of simulated
// time, and reports events fired and DATA packets emitted.
func benchRep(cfg marlin.TestConfig, flows int, fanin bool, dur time.Duration) (events, pkts uint64, err error) {
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return 0, 0, err
	}
	senders := t.DataPorts()
	dst := -1
	if fanin {
		senders = t.DataPorts() - 1
		dst = senders
	}
	var id marlin.FlowID
	for p := 0; p < senders; p++ {
		rx := p
		if dst >= 0 {
			rx = dst
		}
		for k := 0; k < flows; k++ {
			if err := t.StartFlow(id, p, rx, 0); err != nil {
				return 0, 0, err
			}
			id++
		}
	}
	t.RunFor(marlin.Duration(dur.Nanoseconds()) * marlin.Nanosecond)
	return t.EventsExecuted(), t.Registers().Switch.DataTx, nil
}
