// Command marlinctl is Marlin's control-plane CLI: it lists and runs the
// paper-reproduction experiments and drives ad-hoc tests against the
// simulated tester.
//
// Usage:
//
//	marlinctl list
//	marlinctl run <experiment> [-scale N] [-seed N]
//	marlinctl all [-scale N] [-seed N] [-j N]
//	marlinctl sweep -axis ecn=8,65,200 [-axis algo=dctcp,dcqcn] [-reps N]
//	               [-j N] [-journal FILE] [-timeout D] [-retries N]
//	marlinctl test [-algo dctcp] [-ports N] [-flows N] [-duration 5ms]
//	               [-ecn K] [-fanin] [-seed N]
//	marlinctl fuzz [-n N] [-seed S] [-j N] [-minimize] [-repro DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"marlin"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "test":
		err = cmdTest(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "script":
		err = cmdScript(os.Args[2:])
	case "fuzz":
		err = cmdFuzz(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "marlinctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "marlinctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `marlinctl — Marlin network-tester control plane

commands:
  list                      list reproducible tables/figures
  run <experiment> [flags]  regenerate one table/figure
  all [flags]               regenerate every table/figure (parallel with -j)
  sweep [flags]             run a parameter-sweep campaign across all cores
  test [flags]              run an ad-hoc CC test
  bench [flags]             run a fixed workload under the Go profilers
  script <file>...          run packetdrill-style scenario scripts
  fuzz [flags]              run an invariant-fuzzing campaign
  dot [flags]               print the wired topology as Graphviz DOT

run/all flags: -scale N (stretch toward paper scale), -seed N, -format text|json|csv
               all also takes -j N (parallel jobs; -j 1 = sequential)
sweep flags:   -axis key=v1,v2,... (repeatable) -reps N -j N -seed N
               -algo NAME -ports N -flows N -duration D
               -timeout D -retries N -journal FILE -format text|json|csv
test flags:    -algo NAME -ports N -flows N -duration D -ecn K -fanin
               -int -pfc -fpgarecv -topology SPEC -pcap FILE -seed N
               -shards N (parallel build on up to N cores; needs -topology;
               results byte-identical for any N >= 1)
               -faults "SPEC" -pattern "SPEC" (traffic patterns: square,
               saw, mmpp, lognormal, incast, flood)
               -aqm "SPEC" (queue discipline: red, pie, codel, pi2,
               dualpi2; replaces step ECN)
fuzz flags:    -n N (configs) -seed S -j N -minimize -repro DIR -poolaudit N
               report is byte-identical for a given (-n, -seed) at any -j
bench flags:   -algo NAME -ports N -flows N -duration D -reps N -shards N
               -cpuprofile FILE -memprofile FILE -trace FILE
dot flags:     -algo NAME -ports N -pfc -fpgarecv -topology SPEC
topologies:    dumbbell, leafspine:LxS, fattree:K, parkinglot:N
`)
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, name := range marlin.Experiments() {
		fmt.Printf("  %-20s %s\n", name, marlin.DescribeExperiment(name))
	}
	fmt.Println("\nalgorithms:")
	for _, name := range marlin.Algorithms() {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

// addExpFlags registers the flags run and all share; callers parse the set
// (possibly after adding their own flags) and then read the pointers.
func addExpFlags(fs *flag.FlagSet) (scale *float64, seed *uint64, format *string) {
	scale = fs.Float64("scale", 1, "scale factor toward paper scale")
	seed = fs.Uint64("seed", 0, "random seed (0 = default)")
	format = fs.String("format", "text", "output format: text, json, or csv")
	return scale, seed, format
}

func checkFormat(format string) error {
	switch format {
	case "text", "json", "csv":
		return nil
	default:
		return fmt.Errorf("unknown -format %q", format)
	}
}

func emit(res *marlin.ExperimentResult, format string) error {
	switch format {
	case "json":
		return res.FprintJSON(os.Stdout)
	case "csv":
		return res.FprintCSV(os.Stdout)
	default:
		res.Fprint(os.Stdout)
		return nil
	}
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: need an experiment name (see 'marlinctl list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scale, seed, format := addExpFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	opts := marlin.ExperimentOptions{Scale: *scale, Seed: *seed}
	start := time.Now() //marlin:allow wallclock -- "(Ns wall)" banner; host-side UX, not model state
	res, err := marlin.RunExperiment(name, opts)
	if err != nil {
		return err
	}
	if err := emit(res, *format); err != nil {
		return err
	}
	if *format == "text" {
		fmt.Printf("(%.1fs wall)\n", time.Since(start).Seconds()) //marlin:allow wallclock -- wall-time banner; host-side UX
	}
	return nil
}

// cmdAll regenerates every experiment through the fleet pool. Results are
// emitted in registration order regardless of -j; each experiment still
// sees the same ExperimentOptions it would sequentially, so the metrics of
// a parallel run are identical to -j 1 (which is today's sequential loop:
// one worker draining jobs in order).
func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	scale, seed, format := addExpFlags(fs)
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel experiment jobs (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFormat(*format); err != nil {
		return err
	}
	opts := marlin.ExperimentOptions{Scale: *scale, Seed: *seed}
	names := marlin.Experiments()
	jobs := make([]marlin.FleetJob, len(names))
	for i, name := range names {
		name := name
		jobs[i] = marlin.FleetJob{ID: name, Run: func() (*marlin.FleetOutput, error) {
			res, err := marlin.RunExperiment(name, opts)
			if err != nil {
				return nil, err
			}
			return &marlin.FleetOutput{Table: res}, nil
		}}
	}
	var progress io.Writer
	if *workers != 1 {
		progress = os.Stderr
	}
	_, err := marlin.RunFleet(jobs, marlin.FleetOptions{
		Workers:  *workers,
		Progress: progress,
		OnResult: func(_ int, r marlin.FleetJobResult) error {
			if !r.OK() {
				return fmt.Errorf("%s: %s", r.ID, r.Err)
			}
			if err := emit(r.Output.Table, *format); err != nil {
				return err
			}
			if *format == "text" {
				fmt.Printf("(%.1fs wall)\n\n", r.ElapsedMS/1000)
			}
			return nil
		},
	})
	return err
}

func cmdTest(args []string) error {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	algo := fs.String("algo", "dctcp", "CC algorithm")
	ports := fs.Int("ports", 4, "data ports")
	flows := fs.Int("flows", 1, "flows per sender port")
	durStr := fs.String("duration", "5ms", "simulated duration (e.g. 5ms, 2s)")
	ecn := fs.Int("ecn", 65, "ECN step-marking threshold in packets (0 = off)")
	aqmSpec := fs.String("aqm", "", `AQM discipline for the tested network's queues, e.g. "pi2" or "dualpi2:target=25us,tupdate=100us,step=50us" (replaces step ECN)`)
	fanin := fs.Bool("fanin", false, "route all flows to one destination port")
	useINT := fs.Bool("int", false, "stamp in-band telemetry at every hop (for hpcc)")
	usePFC := fs.Bool("pfc", false, "lossless fabric via PFC pause frames")
	fpgaRecv := fs.Bool("fpgarecv", false, "run receiver logic on the FPGA (reserved port)")
	topology := fs.String("topology", "", "tested-network fabric (dumbbell, leafspine:LxS, fattree:K, parkinglot:N; empty = single switch)")
	shards := fs.Int("shards", 0, "conservative parallel build on up to N worker cores (needs -topology; 0 = classic single-engine; results byte-identical for any N >= 1)")
	pcapPath := fs.String("pcap", "", "capture the first forward link to this pcap file")
	faultSpec := fs.String("faults", "", `time-domain fault plan, e.g. "linkdown fwd1 at 2ms for 300us; nicstall at 4ms for 100us"`)
	patternSpec := fs.String("pattern", "", `traffic-pattern plan, e.g. "incast:period=5ms,fanin=8,victim=1,size=150; flood:peak=20G,victim=1"`)
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dur, err := time.ParseDuration(*durStr)
	if err != nil {
		return fmt.Errorf("test: bad -duration: %w", err)
	}
	if *aqmSpec != "" {
		// AQM replaces step ECN; only reject the combination when the user
		// explicitly asked for both (the -ecn default would otherwise make
		// -aqm unusable on its own).
		ecnSet := false
		fs.Visit(func(f *flag.Flag) { ecnSet = ecnSet || f.Name == "ecn" })
		if ecnSet && *ecn != 0 {
			return fmt.Errorf("test: -aqm and -ecn are mutually exclusive marking policies")
		}
		*ecn = 0
	}

	cfg := marlin.TestConfig{
		Algorithm:        *algo,
		Ports:            *ports,
		ECNThresholdPkts: *ecn,
		AQM:              *aqmSpec,
		EnableINT:        *useINT,
		EnablePFC:        *usePFC,
		ReceiverOnFPGA:   *fpgaRecv,
		Topology:         *topology,
		Shards:           *shards,
		Faults:           *faultSpec,
		Pattern:          *patternSpec,
		DCQCNTimeScale:   30,
		Seed:             *seed,
	}
	for _, warn := range marlin.Lint(cfg) {
		fmt.Fprintln(os.Stderr, "warning:", warn)
	}
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return err
	}
	var pcapFile *os.File
	if *pcapPath != "" {
		pcapFile, err = os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer pcapFile.Close()
		rx := 0
		if *fanin {
			rx = t.DataPorts() - 1
		}
		if _, err := t.CaptureForward(rx, pcapFile, 0); err != nil {
			return err
		}
	}
	senders := t.DataPorts()
	dst := -1
	if *fanin {
		senders = t.DataPorts() - 1
		dst = senders
	}
	var id marlin.FlowID
	for p := 0; p < senders; p++ {
		rx := p
		if dst >= 0 {
			rx = dst
		}
		for k := 0; k < *flows; k++ {
			if err := t.StartFlow(id, p, rx, 0); err != nil {
				return err
			}
			id++
		}
	}
	t.RunFor(marlin.Duration(dur.Nanoseconds()) * marlin.Nanosecond)

	snap := t.Registers()
	fmt.Println(marlin.FormatSnapshot(snap))
	secs := float64(dur.Nanoseconds()) / 1e9
	var rates []float64
	for f := marlin.FlowID(0); f < id; f++ {
		gbps := float64(t.FlowTxBytes(f)) * 8 / secs / 1e9
		rates = append(rates, gbps)
		fmt.Printf("flow %-4d %8.2f Gbps\n", f, gbps)
	}
	fmt.Printf("aggregate %8.2f Gbps   jain %.4f\n",
		sum(rates), marlin.JainIndex(rates))
	losses := t.Losses()
	fmt.Printf("losses: network=%d false=%d rx=%d\n",
		losses.NetworkDrops, losses.FalseLosses, losses.RXDrops)
	if *faultSpec != "" {
		fmt.Printf("fault losses: injected=%d carrier=%d\n",
			losses.InjectedDrops, losses.DownDrops)
		fmt.Println("fault recovery:")
		for _, r := range t.FaultRecoveries() {
			fmt.Printf("  %s\n", r)
		}
	}
	if *patternSpec != "" {
		if ov := t.Overload(); ov != nil {
			fmt.Printf("overload: absorption=%.4f peak_queue=%dB (%.2fx threshold) time_over=%v windows=%d\n",
				ov.BurstAbsorption, ov.PeakQueueBytes, ov.PeakOvershoot, ov.TimeInOverload, len(ov.Windows))
			base := t.PatternFlowBase()
			var bg []marlin.FCTRecord
			for _, rec := range t.FCTs() {
				if rec.Flow < base {
					bg = append(bg, rec)
				}
			}
			fmt.Printf("background fct inflation: %.3f\n", marlin.FCTInflation(bg, ov.Windows))
		}
	}
	if *aqmSpec != "" {
		for _, sw := range t.NetworkTelemetry() {
			for pi, ps := range sw.Ports {
				if ps.AQM == nil || ps.AQM.Marks+ps.AQM.Drops == 0 {
					continue
				}
				fmt.Printf("aqm %s p%d %s: marks=%d drops=%d", sw.Name, pi, ps.AQM.Discipline,
					ps.AQM.Marks, ps.AQM.Drops)
				for b := 0; b < len(ps.AQM.BandDeqPackets); b++ {
					if ps.AQM.BandDeqPackets[b] > 0 {
						fmt.Printf(" band%d=%dpkts/p99=%.1fus", b,
							ps.AQM.BandDeqPackets[b], ps.AQM.SojournP99Us[b])
					}
				}
				fmt.Println()
			}
		}
	}
	if *topology != "" {
		fmt.Printf("misroutes: %d\n", losses.Misroutes)
		if paths := t.ECMPPaths(); len(paths) > 0 {
			fmt.Printf("ecmp: %d equal-cost paths, imbalance %.3f\n",
				len(paths), marlin.ECMPImbalance(paths))
			for _, pc := range paths {
				fmt.Printf("  %s p%d -> %-8s %10d pkts\n",
					pc.Switch, pc.Port, pc.Next, pc.TxPackets)
			}
		}
	}
	if samples, count, ewma := t.RTT(); count > 0 {
		cdf := marlin.NewCDF(samples)
		fmt.Printf("rtt: probes=%d ewma=%.1fus p50=%.1fus p99=%.1fus\n",
			count, ewma, cdf.Percentile(0.5), cdf.Percentile(0.99))
		h := marlin.NewHistogram("us")
		h.AddAll(samples)
		fmt.Print("rtt distribution:\n", h.Render(36))
	}
	if pcapFile != nil {
		fmt.Printf("pcap written to %s\n", pcapFile.Name())
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	algo := fs.String("algo", "dctcp", "CC algorithm")
	ports := fs.Int("ports", 4, "data ports")
	pfc := fs.Bool("pfc", false, "enable PFC")
	fpgaRecv := fs.Bool("fpgarecv", false, "receiver logic on the FPGA")
	topology := fs.String("topology", "", "tested-network fabric (dumbbell, leafspine:LxS, fattree:K, parkinglot:N; empty = single switch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm:      *algo,
		Ports:          *ports,
		EnablePFC:      *pfc,
		ReceiverOnFPGA: *fpgaRecv,
		Topology:       *topology,
		Seed:           1,
	})
	if err != nil {
		return err
	}
	fmt.Print(t.TopologyDOT())
	return nil
}

func cmdScript(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("script: need at least one scenario file")
	}
	failed := 0
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := marlin.RunScenario(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("== %s ==\n%s", path, rep.Summary())
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario(s) failed", failed)
	}
	return nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
