package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"marlin"
)

// cmdFuzz runs an invariant-fuzzing campaign: N deterministic
// configurations derived from -seed, each executed and checked against
// the tester's global oracles. Everything printed to stdout derives from
// the simulation alone, so the report is byte-identical for a given
// (-n, -seed) at any -j. A nonzero exit distinguishes found violations
// (exit 1 via the returned error) from a clean campaign.
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of configurations to generate and check")
	seed := fs.Uint64("seed", 1, "campaign seed (derives every configuration)")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel oracle-check jobs (1 = sequential)")
	minimize := fs.Bool("minimize", true, "delta-debug violating configs to minimal repros")
	reproDir := fs.String("repro", "", "directory for repro scenario files (default: print inline)")
	poolAudit := fs.Int("poolaudit", 0, "quiet configs to pool-leak audit (0 = default 8, -1 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reproDir != "" {
		if err := os.MkdirAll(*reproDir, 0o755); err != nil {
			return err
		}
	}
	res, err := marlin.RunFuzzCampaign(marlin.FuzzCampaignOptions{
		N:         *n,
		Seed:      *seed,
		Workers:   *workers,
		Minimize:  *minimize,
		ReproDir:  *reproDir,
		PoolAudit: *poolAudit,
		Out:       os.Stdout,
	})
	if err != nil {
		return err
	}
	if len(res.Violations) > 0 || res.Errors > 0 {
		return fmt.Errorf("fuzz: %d violation(s), %d error(s)", len(res.Violations), res.Errors)
	}
	return nil
}
