// Command marlinreport turns experiment results into a Markdown report.
// Feed it the JSON that marlinctl emits:
//
//	marlinctl run fig7 -format json > fig7.json
//	marlinctl run fig10 -format json > fig10.json
//	marlinreport fig7.json fig10.json > report.md
//
// Multiple JSON documents may also be concatenated in one file or piped
// on stdin (marlinctl all -format json | marlinreport -).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// result mirrors the exported shape of an experiment result.
type result struct {
	Name    string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	Metrics map[string]float64
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: marlinreport <results.json>... (or - for stdin)")
		os.Exit(2)
	}
	var results []result
	for _, path := range os.Args[1:] {
		rs, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marlinreport:", err)
			os.Exit(1)
		}
		results = append(results, rs...)
	}
	os.Stdout.WriteString(Render(results))
}

func load(path string) ([]result, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return Decode(r)
}

// Decode reads a stream of concatenated JSON result documents.
func Decode(r io.Reader) ([]result, error) {
	dec := json.NewDecoder(r)
	var out []result
	for {
		var res result
		if err := dec.Decode(&res); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode result %d: %w", len(out)+1, err)
		}
		if res.Name == "" {
			return nil, fmt.Errorf("document %d has no Name; is this marlinctl -format json output?", len(out)+1)
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no results found")
	}
	return out, nil
}

// Render produces the Markdown report.
func Render(results []result) string {
	var b strings.Builder
	b.WriteString("# Marlin experiment report\n\n")
	fmt.Fprintf(&b, "%d experiment(s).\n\n", len(results))
	for _, res := range results {
		fmt.Fprintf(&b, "## %s — %s\n\n", res.Name, res.Title)
		if len(res.Headers) > 0 {
			writeMDTable(&b, res.Headers, res.Rows)
		}
		if len(res.Metrics) > 0 {
			b.WriteString("\n**Metrics**\n\n")
			keys := make([]string, 0, len(res.Metrics))
			for k := range res.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			writeMDTable(&b, []string{"metric", "value"}, metricRows(keys, res.Metrics))
		}
		for _, n := range res.Notes {
			fmt.Fprintf(&b, "\n> %s\n", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func metricRows(keys []string, m map[string]float64) [][]string {
	rows := make([][]string, len(keys))
	for i, k := range keys {
		rows[i] = []string{k, fmt.Sprintf("%g", m[k])}
	}
	return rows
}

func writeMDTable(b *strings.Builder, headers []string, rows [][]string) {
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range rows {
		cells := make([]string, len(headers))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
}
