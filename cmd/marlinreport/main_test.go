package main

import (
	"strings"
	"testing"
)

const sampleJSON = `{
  "Name": "fig7",
  "Title": "per-flow throughput",
  "Headers": ["time_ms", "flow0_gbps"],
  "Rows": [["0.5", "98.1"], ["1.0", "98.1"]],
  "Notes": ["scaled run"],
  "Metrics": {"mean_total_tbps": 1.177}
}
{
  "Name": "table-amplify",
  "Title": "amplification",
  "Headers": ["mtu", "amp"],
  "Rows": [["1024", "12"]],
  "Metrics": {"tbps_1024": 1.2}
}`

func TestDecodeStream(t *testing.T) {
	rs, err := Decode(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "fig7" || rs[1].Name != "table-amplify" {
		t.Fatalf("decoded %+v", rs)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("")); err == nil {
		t.Error("empty stream decoded")
	}
	if _, err := Decode(strings.NewReader(`{"Title":"x"}`)); err == nil {
		t.Error("nameless document accepted")
	}
	if _, err := Decode(strings.NewReader(`{broken`)); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestRenderMarkdown(t *testing.T) {
	rs, err := Decode(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	md := Render(rs)
	for _, want := range []string{
		"# Marlin experiment report",
		"## fig7 — per-flow throughput",
		"| time_ms | flow0_gbps |",
		"| 0.5 | 98.1 |",
		"| mean_total_tbps | 1.177 |",
		"> scaled run",
		"## table-amplify — amplification",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRenderRaggedRows(t *testing.T) {
	md := Render([]result{{
		Name: "x", Title: "t",
		Headers: []string{"a", "b", "c"},
		Rows:    [][]string{{"1"}}, // short row must pad, not panic
	}})
	if !strings.Contains(md, "| 1 |  |  |") {
		t.Errorf("ragged row not padded:\n%s", md)
	}
}
