// Command marlintrace exercises Marlin's fine-grained tracing (§5.1): it
// runs a single traced flow, optionally injecting scripted loss and ECN
// events (§7.1), and emits the flow's per-event parameter trace as CSV —
// time in microseconds, the module's primary value (window in packets, or
// rate in Mbps for rate-based algorithms), and its alpha word.
//
// Usage:
//
//	marlintrace [-algo dctcp] [-duration 1500us] [-loss PSN]... [-ecn FROM:TO]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"marlin"
)

type psnList []uint32

func (l *psnList) String() string { return fmt.Sprint(*l) }

func (l *psnList) Set(v string) error {
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return err
	}
	*l = append(*l, uint32(n))
	return nil
}

func main() {
	algo := flag.String("algo", "dctcp", "CC algorithm to trace")
	durStr := flag.String("duration", "1500us", "simulated duration")
	ecnRange := flag.String("ecn", "", "CE-mark PSN range, FROM:TO")
	var losses psnList
	flag.Var(&losses, "loss", "drop this PSN once (repeatable)")
	flag.Parse()

	if err := run(*algo, *durStr, *ecnRange, losses); err != nil {
		fmt.Fprintln(os.Stderr, "marlintrace:", err)
		os.Exit(1)
	}
}

func run(algo, durStr, ecnRange string, losses psnList) error {
	dur, err := time.ParseDuration(durStr)
	if err != nil {
		return fmt.Errorf("bad -duration: %w", err)
	}
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm: algo,
		Ports:     2,
		Seed:      1,
	})
	if err != nil {
		return err
	}
	for _, psn := range losses {
		t.InjectLoss(1, 0, psn)
	}
	if ecnRange != "" {
		parts := strings.SplitN(ecnRange, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -ecn %q, want FROM:TO", ecnRange)
		}
		from, err1 := strconv.ParseUint(parts[0], 10, 32)
		to, err2 := strconv.ParseUint(parts[1], 10, 32)
		if err1 != nil || err2 != nil || to < from {
			return fmt.Errorf("bad -ecn %q", ecnRange)
		}
		t.InjectECN(1, 0, uint32(from), uint32(to))
	}
	if err := t.StartFlow(0, 0, 1, 0); err != nil {
		return err
	}
	t.RunFor(marlin.Duration(dur.Nanoseconds()) * marlin.Nanosecond)

	trace := t.FlowTrace(0)
	if len(trace) == 0 {
		return fmt.Errorf("no trace recorded (is logging enabled?)")
	}
	fmt.Println("time_us,value,alpha_raw")
	for _, p := range trace {
		fmt.Printf("%.3f,%d,%d\n", p.At.Microseconds(), p.A, p.B)
	}
	fmt.Fprintf(os.Stderr, "marlintrace: %d events over %v (algorithm %s)\n",
		len(trace), dur, algo)
	return nil
}
