// Command marlinvet is Marlin's determinism and unit-safety static
// analyzer. It enforces, at review time, the property the whole evaluation
// depends on at run time: a simulation is a pure function of its inputs and
// RNG seed.
//
// Usage:
//
//	go run ./cmd/marlinvet ./...
//	go run ./cmd/marlinvet -checks wallclock,maporder ./internal/sim
//	go run ./cmd/marlinvet -checks -poolflow ./...   # all checks except poolflow
//	go run ./cmd/marlinvet -json ./...
//	go run ./cmd/marlinvet -list
//
// marlinvet prints one file:line:col diagnostic per finding and exits
// non-zero if any survive; -json renders the findings as a JSON array
// (objects with check, file, line, column, msg) for CI and editor tooling.
// The -checks list both enables ("wallclock,simunits") and disables
// ("-poolflow" removes a check from the default set). Intentional
// violations are suppressed in source with a justified directive:
//
//	//marlin:allow wallclock -- progress ETA is host-side UX, not model state
//
// An unjustified or unknown-check directive is itself reported, so every
// suppression in the tree carries its why. See DESIGN.md ("The determinism
// contract" and "Static analysis") for the full policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"marlin/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run; prefix a name with - to disable it (default: all)")
	jsonFlag := flag.Bool("json", false, "render diagnostics as a JSON array instead of file:line:col lines")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: marlinvet [-checks a,b,-c] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			scope := "all packages"
			if c.ModelOnly {
				scope = "model packages"
			}
			fmt.Printf("%-10s %s (%s)\n", c.Name, c.Doc, scope)
		}
		return
	}

	if err := run(*checksFlag, *jsonFlag, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "marlinvet:", err)
		os.Exit(2)
	}
}

func run(checkNames string, asJSON bool, patterns []string) error {
	checks, err := lint.SelectChecks(checkNames)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(cwd, patterns)
	if err != nil {
		return err
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.Run(pkgs, checks)
	if asJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "marlinvet: %d diagnostic(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	return nil
}
