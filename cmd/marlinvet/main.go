// Command marlinvet is Marlin's determinism and unit-safety static
// analyzer. It enforces, at review time, the property the whole evaluation
// depends on at run time: a simulation is a pure function of its inputs and
// RNG seed.
//
// Usage:
//
//	go run ./cmd/marlinvet ./...
//	go run ./cmd/marlinvet -checks wallclock,maporder ./internal/sim
//	go run ./cmd/marlinvet -list
//
// marlinvet prints one file:line:col diagnostic per finding and exits
// non-zero if any survive. Intentional violations are suppressed in source
// with a justified directive:
//
//	//marlin:allow wallclock -- progress ETA is host-side UX, not model state
//
// An unjustified or unknown-check directive is itself reported, so every
// suppression in the tree carries its why. See DESIGN.md ("The determinism
// contract") for the full policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"marlin/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: marlinvet [-checks a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			scope := "all packages"
			if c.ModelOnly {
				scope = "model packages"
			}
			fmt.Printf("%-10s %s (%s)\n", c.Name, c.Doc, scope)
		}
		return
	}

	if err := run(*checksFlag, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "marlinvet:", err)
		os.Exit(2)
	}
}

func run(checkNames string, patterns []string) error {
	checks, err := lint.SelectChecks(checkNames)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(cwd, patterns)
	if err != nil {
		return err
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.Run(pkgs, checks)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "marlinvet: %d diagnostic(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	return nil
}
