// Command benchjson runs the perf-harness benchmark suite through
// testing.Benchmark and emits one machine-readable JSON document — the
// generator of the checked-in BENCH_baseline.json.
//
// The scheduler mixes run twice per shape, once on the timer-wheel Engine
// and once on the reference heap RefEngine (the pre-overhaul scheduler,
// kept in-tree as the differential-testing oracle), so a single run
// captures true before/after numbers for the event core. Paths whose
// "before" implementation no longer exists (packet construction before
// pooling, the whole tester before the allocation audit) carry recorded
// pre-overhaul measurements instead, taken on the same hardware at the
// seed commit and embedded under "recorded_pre_overhaul".
//
// Usage:
//
//	go run ./cmd/benchjson > BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"marlin"
	"marlin/internal/aqm"
	"marlin/internal/lint"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the whole document.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() on the measuring machine. The shard/scaling_*
	// speedups are only meaningful when CPUs covers the worker count — CI
	// gates its >=2x assertion on this field.
	CPUs int `json:"cpus"`
	// Results holds the live measurements from this run. engine/* and
	// refengine/* pairs are the after/before of the scheduler overhaul.
	Results []Result `json:"results"`
	// Speedups are ns/op ratios refengine/engine per scheduler mix.
	Speedups map[string]float64 `json:"speedups"`
	// RecordedPreOverhaul are measurements taken at the seed commit,
	// before pooling and the allocation audit, for paths whose old
	// implementation is gone. Units match Result.
	RecordedPreOverhaul []Result `json:"recorded_pre_overhaul"`
}

func steadyGap(i int) sim.Duration { return sim.Duration(5120 + (i%16)*5120) }

func benchEngineSteady(b *testing.B) {
	e := sim.NewEngine()
	for i := 0; i < 1024; i++ {
		gap := steadyGap(i)
		var self sim.Func
		self = func() { e.Schedule(gap, self) }
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func benchRefEngineSteady(b *testing.B) {
	e := sim.NewRefEngine()
	for i := 0; i < 1024; i++ {
		gap := steadyGap(i)
		var self sim.Func
		self = func() { e.Schedule(gap, self) }
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func benchEngineChurn(b *testing.B) {
	e := sim.NewEngine()
	const chains = 256
	rto := make([]sim.Handle, chains)
	noop := func() {}
	for i := 0; i < chains; i++ {
		gap := steadyGap(i)
		id := i
		var self sim.Func
		self = func() {
			rto[id].Cancel()
			rto[id] = e.Schedule(500*sim.Microsecond, noop)
			e.Schedule(gap, self)
		}
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func benchRefEngineChurn(b *testing.B) {
	e := sim.NewRefEngine()
	const chains = 256
	rto := make([]sim.RefHandle, chains)
	noop := func() {}
	for i := 0; i < chains; i++ {
		gap := steadyGap(i)
		id := i
		var self sim.Func
		self = func() {
			rto[id].Cancel()
			rto[id] = e.Schedule(500*sim.Microsecond, noop)
			e.Schedule(gap, self)
		}
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func benchPacketLifecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := packet.NewData(1, uint32(i), 1024, 0)
		p.Release()
	}
}

func benchPacketClone(b *testing.B) {
	p := packet.NewData(1, 7, 1024, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		q.Release()
	}
	b.StopTimer()
	p.Release()
}

// benchAQMEnqueue measures one discipline's admission decision under a
// half-full queue with an advancing clock — the per-packet cost every
// emulated egress port pays when an AQM is installed. The enqueue hook is
// on the packet hot path, so the suite asserts 0 allocs/op in CI.
func benchAQMEnqueue(spec string) func(*testing.B) {
	return func(b *testing.B) {
		s, err := aqm.ParseSpec(spec)
		if err != nil {
			panic(err)
		}
		const capacity = 256 << 10
		a := s.Build(capacity, sim.NewRand(1))
		p := packet.NewDataECT(1, 7, 1024, 0, packet.ECT1)
		defer p.Release()
		view := aqm.QueueView{Bytes: capacity / 2, Packets: 128, Capacity: capacity}
		view.BandBytes[0] = capacity / 2
		view.BandPackets[0] = 128
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Time(0).Add(sim.Duration(i) * sim.Microsecond)
			view.HeadEnqAt[0] = now.Add(-20 * sim.Microsecond)
			a.OnEnqueue(p, 0, view, now)
		}
	}
}

func benchPipelineFig6(b *testing.B) {
	eng := sim.NewEngine()
	plan, err := tofino.NewPlan(1024, 100*sim.Gbps)
	if err != nil {
		panic(err)
	}
	pl, err := tofino.NewPipeline(eng, tofino.Config{Plan: plan, QueueDepth: 1 << 12})
	if err != nil {
		panic(err)
	}
	drop := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	for port := 0; port < plan.DataPorts; port++ {
		pl.ConnectDataPort(port, drop)
		if err := pl.BindFlow(packet.FlowID(port), port); err != nil {
			panic(err)
		}
	}
	in := pl.ScheIn()
	psn := make([]uint32, plan.DataPorts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := i % plan.DataPorts
		in.Receive(packet.NewSche(packet.FlowID(port), psn[port], port, 0))
		psn[port]++
		if i%512 == 511 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

func benchTesterPacketRate(b *testing.B) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		panic(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RunFor(10 * marlin.Microsecond)
	}
}

// benchShardScaling measures end-to-end sharded execution of one fat-tree
// simulation at a given worker budget: 12 cross-pod flows over fattree:4
// (4 partitions, one per pod), advancing sim time in fixed windows.
// shard/fattree_shards_1 is the single-worker baseline the scaling ratios
// divide by, so shard/scaling_{2,4} isolate the parallel win from the
// partitioned build's fixed overhead. The numbers are only meaningful when
// the machine has at least `shards` cores — see Report.CPUs.
func benchShardScaling(shards int) func(*testing.B) {
	return func(b *testing.B) {
		const ports = 12
		tr, err := marlin.NewTester(marlin.TestConfig{
			Algorithm:        "dctcp",
			Ports:            ports,
			ECNThresholdPkts: 65,
			Topology:         "fattree:4",
			Shards:           shards,
			DCQCNTimeScale:   30,
			Seed:             1,
		})
		if err != nil {
			panic(err)
		}
		for p := 0; p < ports; p++ {
			if err := tr.StartFlow(marlin.FlowID(p), p, (p+ports/2)%ports, 0); err != nil {
				panic(err)
			}
		}
		tr.RunFor(100 * marlin.Microsecond) // fill queues, warm wheel slots
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.RunFor(20 * marlin.Microsecond)
		}
	}
}

// marlinvetBenchDirs is the fixed package set the analyzer benchmarks run
// over — big enough to be representative, small enough for bench-smoke.
func marlinvetBenchDirs() (string, []string) {
	cwd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	dirs, err := lint.ExpandPatterns(cwd, []string{"./internal/sim", "./internal/packet", "./internal/fpga"})
	if err != nil {
		panic(err)
	}
	return cwd, dirs
}

func loadMarlinvetPkgs(cwd string, dirs []string) []*lint.Package {
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		panic(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			panic(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// benchMarlinvetOnePass measures the shared-driver architecture: one parse
// and type-check of the package set, then every check over the one Program.
func benchMarlinvetOnePass(b *testing.B) {
	cwd, dirs := marlinvetBenchDirs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkgs := loadMarlinvetPkgs(cwd, dirs)
		if diags := lint.Run(pkgs, lint.AllChecks()); len(diags) != 0 {
			panic(fmt.Sprintf("marlinvet bench found %d diagnostics", len(diags)))
		}
	}
}

// benchMarlinvetPerCheckReload measures the pre-overhaul baseline shape:
// each check re-parses and re-type-checks the package set for itself.
func benchMarlinvetPerCheckReload(b *testing.B) {
	cwd, dirs := marlinvetBenchDirs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range lint.AllChecks() {
			pkgs := loadMarlinvetPkgs(cwd, dirs)
			if diags := lint.Run(pkgs, []*lint.Check{c}); len(diags) != 0 {
				panic(fmt.Sprintf("marlinvet bench found %d diagnostics", len(diags)))
			}
		}
	}
}

var suite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"engine/steady_state", benchEngineSteady},
	{"refengine/steady_state", benchRefEngineSteady},
	{"engine/timer_churn", benchEngineChurn},
	{"refengine/timer_churn", benchRefEngineChurn},
	{"packet/lifecycle", benchPacketLifecycle},
	{"packet/clone", benchPacketClone},
	{"aqm/red_enqueue", benchAQMEnqueue("red:min=30000,max=90000")},
	{"aqm/pi2_enqueue", benchAQMEnqueue("pi2:target=10us,tupdate=50us")},
	{"aqm/dualpi2_enqueue", benchAQMEnqueue("dualpi2:target=10us,tupdate=50us,step=20us")},
	{"tofino/fig6_pipeline", benchPipelineFig6},
	{"tester/packet_rate", benchTesterPacketRate},
	{"shard/fattree_shards_1", benchShardScaling(1)},
	{"shard/fattree_shards_2", benchShardScaling(2)},
	{"shard/fattree_shards_4", benchShardScaling(4)},
	{"marlinvet/one_pass", benchMarlinvetOnePass},
	{"marlinvet/per_check_reload", benchMarlinvetPerCheckReload},
}

// recordedPreOverhaul are the seed-commit measurements (Intel Xeon 2.10GHz,
// the hardware of the checked-in baseline) for paths whose pre-overhaul
// implementation no longer exists in the tree.
var recordedPreOverhaul = []Result{
	{Name: "engine/schedule_run_mixed", NsPerOp: 205.2, AllocsPerOp: 1, BytesPerOp: 32},
	{Name: "tester/packet_rate", NsPerOp: 713055, AllocsPerOp: 3927, BytesPerOp: 234059},
}

func main() {
	flag.Parse()

	rep := Report{
		Schema:              "marlin-bench/v1",
		GoVersion:           runtime.Version(),
		GOARCH:              runtime.GOARCH,
		CPUs:                runtime.NumCPU(),
		Speedups:            map[string]float64{},
		RecordedPreOverhaul: recordedPreOverhaul,
	}
	perOp := map[string]float64{}
	for _, bm := range suite {
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		perOp[bm.name] = ns
		rep.Results = append(rep.Results, Result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, mix := range []string{"steady_state", "timer_churn"} {
		if before, after := perOp["refengine/"+mix], perOp["engine/"+mix]; after > 0 {
			rep.Speedups["engine/"+mix] = before / after
		}
	}
	if before, after := perOp["marlinvet/per_check_reload"], perOp["marlinvet/one_pass"]; after > 0 {
		rep.Speedups["marlinvet/one_pass"] = before / after
	}
	for _, n := range []string{"2", "4"} {
		if base, par := perOp["shard/fattree_shards_1"], perOp["shard/fattree_shards_"+n]; par > 0 {
			rep.Speedups["shard/scaling_"+n] = base / par
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
