module marlin

go 1.22
