// Chaos: time-domain fault injection under congestion control. Two
// cross-rack flows run over a 2x2 leaf-spine fabric while a deterministic
// fault plan flaps host uplinks and browns out a spine link mid-run. The
// same plan is replayed against CUBIC (loss-driven window CC) and DCQCN
// (ECN-driven rate CC), and each fault reports recovery telemetry:
// pre-fault goodput, time-to-recover, retransmits during the outage, and
// the post-recovery ECN marking rate.
//
// The comparison runs as a fleet campaign — one job per algorithm — and
// every number below is a pure function of the built-in seed and plan, so
// the output is byte-identical across runs and worker counts.
package main

import (
	"fmt"
	"log"
	"os"

	"marlin"
)

const (
	horizon = 30 * marlin.Millisecond

	// The plan: flow 0 (host0->host1) loses its uplink at 4ms, flow 1
	// (host2->host3) loses its uplink at 12ms, and at 24ms flow 0's spine
	// path is browned out to a quarter rate for a millisecond. The gaps are
	// sized so each fault's recovery completes before the next fault hits —
	// CUBIC needs several milliseconds of window regrowth per outage.
	faultSpec = "linkdown host0->leaf0 at 4ms for 400us; " +
		"linkdown host2->leaf0 at 12ms for 400us; " +
		"brownout leaf0->spine0 at 24ms for 1ms frac 0.25"
)

func main() {
	algos := []string{"cubic", "dcqcn"}
	// Recovery rows come back by reference: each job writes only its own
	// slot, so the concurrent workers never share an element.
	recov := make([][]marlin.FaultRecovery, len(algos))
	jobs := make([]marlin.FleetJob, len(algos))
	for i, algo := range algos {
		i, algo := i, algo
		jobs[i] = marlin.FleetJob{
			ID:  algo,
			Run: func() (*marlin.FleetOutput, error) { return chaosOne(algo, &recov[i]) },
		}
	}
	results, err := marlin.RunFleet(jobs, marlin.FleetOptions{Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault plan: %s\n\n", faultSpec)
	fmt.Printf("%-8s %-14s %-10s %-10s %-10s\n",
		"algo", "goodput_gbps", "rtx", "recovered", "drops")
	for i, r := range results {
		if !r.OK() {
			fmt.Printf("%-8s FAILED: %s\n", algos[i], r.Err)
			continue
		}
		m := r.Output.Metrics
		fmt.Printf("%-8s %-14.1f %-10.0f %-10.0f %-10.0f\n",
			algos[i], m["goodput_gbps"], m["rtx"], m["recovered"], m["drops"])
		for _, rec := range recov[i] {
			fmt.Printf("    %s\n", rec)
		}
	}
	fmt.Println("\nwindow CC pays for outages in slow window regrowth; rate CC pays in go-back-N storms")
}

func chaosOne(algo string, out *[]marlin.FaultRecovery) (*marlin.FleetOutput, error) {
	cfg := marlin.TestConfig{
		Algorithm: algo,
		Ports:     4,
		Topology:  "leafspine:2x2",
		Seed:      5,
		Faults:    faultSpec,
	}
	if algo == "dcqcn" {
		// Same scaling marlinctl applies: DCQCN's DCE spec constants assume
		// millisecond timescales; the testbed RTT is microseconds.
		cfg.DCQCNTimeScale = 30
	}
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return nil, err
	}
	// Long-running cross-rack flows: hosts 0,2 sit on leaf0 and 1,3 on
	// leaf1, so both flows cross a spine, and this seed's ECMP hash pins
	// them to different spines — each flow has its own bottleneck, so a
	// fault on one path shows up as a real dip in aggregate goodput.
	for f := marlin.FlowID(0); f < 2; f++ {
		if err := t.StartFlow(f, int(f)*2, int(f)*2+1, 0); err != nil {
			return nil, err
		}
	}
	t.RunFor(horizon)

	*out = t.FaultRecoveries()
	recovered := 0.0
	for _, r := range *out {
		if r.Recovered {
			recovered++
		}
	}
	losses := t.Losses()
	return &marlin.FleetOutput{
		Metrics: map[string]float64{
			"goodput_gbps": float64(t.Registers().Switch.DataTxBytes) * 8 / horizon.Seconds() / 1e9,
			"rtx":          float64(t.Registers().NIC.RtxTx),
			"recovered":    recovered,
			"drops":        float64(losses.NetworkDrops + losses.DownDrops + losses.InjectedDrops),
		},
	}, nil
}
