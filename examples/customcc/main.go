// Customcc: write a congestion-control algorithm against the paper's
// Table 3 module interface, register it, and test it — requirement R2
// ("the CC algorithm emulated by the tester should be customizable").
//
// The module below is a window-based AIMD with a delay guard, written the
// way an HLS module is: all per-flow state lives in the 64-byte cust-var
// region, accessed through fixed 32-bit register slots, with a declared
// fast-path cycle budget.
package main

import (
	"fmt"
	"log"

	"marlin"
)

// aimdCC halves on any congestion signal (ECN echo or an RTT above a
// threshold) at most once per window, and otherwise adds one packet per
// window of ACKs.
type aimdCC struct{}

// Register slots in the cust-var region.
const (
	slotCwnd   = 0 // congestion window, packets
	slotCwrEnd = 1 // PSN fencing one reduction per window
	slotAcked  = 2 // ACKs since last additive increase
)

const rttCapUs = 100 // delay guard: halve if RTT exceeds 100 us

func (aimdCC) Name() string        { return "aimd" }
func (aimdCC) Mode() marlin.CCMode { return marlin.WindowMode }
func (aimdCC) FastPathCycles() int { return 4 }
func (aimdCC) SlowPathCycles() int { return 0 }

func (aimdCC) InitFlow(cust, slow *marlin.CCState, p *marlin.CCParams) {
	marlin.RegsOf(cust).SetU32(slotCwnd, p.InitCwnd)
}

func (aimdCC) OnEvent(in *marlin.CCInput, out *marlin.CCOutput) {
	r := marlin.RegsOf(in.Cust)
	cwnd := r.U32(slotCwnd)
	switch in.Type {
	case marlin.EvStart:
		out.Schedule = true
	case marlin.EvRx:
		congested := in.Flags.Has(marlin.FlagECNEcho) ||
			in.ProbedRTT.Microseconds() > rttCapUs
		switch {
		case congested && marlin.SeqLT(r.U32(slotCwrEnd), in.Ack+1):
			// Multiplicative decrease, once per window of data.
			cwnd = max32(cwnd/2, in.Params.MinCwnd)
			r.SetU32(slotCwrEnd, in.Nxt)
			r.SetU32(slotAcked, 0)
		case marlin.SeqDiff(in.Ack, in.Una) > 0:
			// Additive increase: +1 packet per cwnd ACKs.
			if r.Add32(slotAcked, uint32(marlin.SeqDiff(in.Ack, in.Una))) >= cwnd {
				r.SetU32(slotAcked, 0)
				cwnd++
			}
		}
		out.Schedule = true
		out.ArmTimer(marlin.TimerRTO, in.Params.RTOMin)
	case marlin.EvTimeout:
		if marlin.SeqDiff(in.Nxt, in.Una) > 0 {
			cwnd = in.Params.MinCwnd
			out.Rtx, out.RtxPSN = true, in.Una
			out.Schedule = true
			out.ArmTimer(marlin.TimerRTO, in.Params.RTOMin)
		}
	}
	r.SetU32(slotCwnd, cwnd)
	out.SetCwnd, out.Cwnd = true, cwnd
	out.LogU32x4(cwnd, r.U32(slotAcked), 0, uint32(in.Type))
}

func (aimdCC) OnSlowPath(code uint8, cust, slow *marlin.CCState, in *marlin.CCInput, out *marlin.CCOutput) {
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func main() {
	marlin.RegisterCC("aimd", func() marlin.CCAlgorithm { return aimdCC{} })

	// Two aimd flows compete over one bottleneck; the delay guard plus
	// AIMD should converge them to a fair share.
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm:        "aimd",
		Ports:            3,
		ECNThresholdPkts: 65,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := t.StartFlow(0, 0, 2, 0); err != nil {
		log.Fatal(err)
	}
	if err := t.StartFlow(1, 1, 2, 0); err != nil {
		log.Fatal(err)
	}
	const horizon = 5 * marlin.Millisecond
	t.RunFor(horizon)

	var rates []float64
	for f := marlin.FlowID(0); f < 2; f++ {
		gbps := float64(t.FlowTxBytes(f)) * 8 / horizon.Seconds() / 1e9
		rates = append(rates, gbps)
		fmt.Printf("aimd flow %d: %6.2f Gbps\n", f, gbps)
	}
	fmt.Printf("aggregate %.2f Gbps through a 100G bottleneck, jain %.4f\n",
		rates[0]+rates[1], marlin.JainIndex(rates))

	trace := t.FlowTrace(0)
	fmt.Printf("flow 0 traced %d events; final cwnd %d packets\n",
		len(trace), trace[len(trace)-1].A)
}
