// Telemetry: run an INT-consuming HPCC test and inspect everything the
// tester can observe — the fine-grained CC trace (§5.1), the FPGA's RTT
// registers, and a pcap capture of the 64-byte SCHE/INFO conversation
// between the devices.
package main

import (
	"fmt"
	"log"
	"os"

	"marlin"
)

func main() {
	cfg := marlin.TestConfig{
		Algorithm: "hpcc",
		Ports:     3,
		EnableINT: true,
		Seed:      13,
	}
	for _, warn := range marlin.Lint(cfg) {
		fmt.Println("lint:", warn)
	}
	t, err := marlin.NewTester(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Capture the device-link conversation to a Wireshark-readable file.
	pcapFile, err := os.CreateTemp("", "marlin-devices-*.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer pcapFile.Close()
	capt, err := t.CaptureDeviceLinks(pcapFile, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Two HPCC flows share the destination port; INT steers them to a
	// near-empty queue.
	if err := t.StartFlow(0, 0, 2, 0); err != nil {
		log.Fatal(err)
	}
	if err := t.StartFlow(1, 1, 2, 0); err != nil {
		log.Fatal(err)
	}
	t.RunFor(3 * marlin.Millisecond)

	// 1. The fine-grained CC trace: window evolution per event.
	trace := t.FlowTrace(0)
	fmt.Printf("flow 0: %d traced CC events; window settled at %d packets\n",
		len(trace), trace[len(trace)-1].A)

	// 2. RTT registers: with HPCC the queue stays empty, so the RTT
	// distribution hugs the propagation floor.
	samples, count, ewma := t.RTT()
	fmt.Printf("rtt: %d probes, ewma %.1f us\n", count, ewma)
	h := marlin.NewHistogram("us")
	h.AddAll(samples)
	fmt.Print(h.Render(32))

	// 3. The device conversation on disk.
	fmt.Printf("captured %d control packets to %s\n", capt.Packets(), pcapFile.Name())

	rates := []float64{
		float64(t.FlowTxBytes(0)) * 8 / 0.003 / 1e9,
		float64(t.FlowTxBytes(1)) * 8 / 0.003 / 1e9,
	}
	fmt.Printf("rates: %.1f / %.1f Gbps, jain %.4f\n",
		rates[0], rates[1], marlin.JainIndex(rates))
}
