// Incast: evaluate a DCQCN configuration under the n-cast-1 pattern that
// dominates storage and ML-training fabrics — many senders, one receiver,
// heavy-tailed WebSearch flow sizes, closed-loop arrivals (§7.4's
// scenario as an operator would run it).
package main

import (
	"fmt"
	"log"

	"marlin"
)

const (
	senders      = 4
	flowsPerPort = 4
	horizon      = 30 * marlin.Millisecond
)

func main() {
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm:        "dcqcn",
		Ports:            senders + 1,
		ECNThresholdPkts: 65,      // switch ECN threshold under test
		NetQueueBytes:    8 << 20, // deep buffers stand in for PFC
		DCQCNTimeScale:   10,      // compress recovery for the short horizon
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Closed loop: every completed flow immediately starts a successor
	// with a fresh WebSearch size (§7.5's arrival model).
	dist := marlin.WebSearch()
	rng := marlin.NewRand(7)
	flowPort := map[marlin.FlowID]int{}
	start := func(flow marlin.FlowID) {
		size := dist.Sample(rng)
		if err := t.StartFlow(flow, flowPort[flow], senders, size); err != nil {
			log.Fatal(err)
		}
	}
	t.OnComplete(func(flow marlin.FlowID, _ marlin.Duration) { start(flow) })

	var id marlin.FlowID
	for p := 0; p < senders; p++ {
		for k := 0; k < flowsPerPort; k++ {
			flowPort[id] = p
			start(id)
			id++
		}
	}
	t.RunFor(horizon)

	fcts := t.FCTMicros()
	if len(fcts) == 0 {
		log.Fatal("no flows completed")
	}
	cdf := marlin.NewCDF(fcts)
	fmt.Printf("%d-cast-1, %d concurrent WebSearch flows, %v: %d completions\n",
		senders, senders*flowsPerPort, horizon, len(fcts))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  FCT p%-4g %10.1f us\n", p*100, cdf.Percentile(p))
	}

	snap := t.Registers()
	fmt.Printf("bottleneck signals: %d CNPs generated, %d ECN marks echoed\n",
		snap.Switch.CnpTx, snap.Switch.InfoTx-snap.Switch.AckTx)
	if losses := t.Losses(); losses.NetworkDrops > 0 {
		fmt.Printf("WARNING: %d congestion drops — this ECN threshold lets queues overflow\n",
			losses.NetworkDrops)
	} else {
		fmt.Println("no congestion drops: ECN kept the fabric lossless")
	}
}
