// L4s: the classic cc × AQM coexistence matrix, aqmt-style. Two DCTCP
// and two CUBIC senders share one victim port while the grid sweeps the
// queue discipline (step-ECN drop-tail, PIE, CoDel, coupled DualPI2) and
// the path RTT. Under step ECN every CE mark means the same thing to both
// algorithms, but they answer differently — DCTCP trims proportionally to
// the marked fraction while CUBIC multiplicatively backs off once per
// window — so DCTCP starves CUBIC. DualPI2 (RFC 9332) separates them
// instead: DCTCP's ECT(1) packets ride the shallow-marked L4S queue,
// CUBIC's ECT(0) packets see the squared classic probability, and the
// coupling factor balances the two, restoring fairness while holding the
// L4S queue's p99 sojourn below the classic queue's.
//
// A second leg floods the victim with 80 Gbps of raw UDP-style DATA under
// DualPI2, once as Not-ECT (a plain blast the AQM can only drop) and once
// as ECT(1) (an abuser squatting in the low-latency queue), measuring what
// each variant does to the well-behaved traffic and to L4S latency.
//
// Every cell is one fleet job; all numbers are pure functions of the
// built-in seed, so the output is byte-identical across runs and worker
// counts.
package main

import (
	"fmt"
	"log"
	"os"

	"marlin"
)

const (
	horizon = 10 * marlin.Millisecond

	senders = 4 // 2 DCTCP + 2 CUBIC, all into one victim port
	victim  = 4

	// 1 MB of buffer at 100 Gbps is ~80us of standing queue: enough room
	// for drop-tail to hurt and for the AQM delay targets (in the tens of
	// microseconds, scaled to this fabric's RTT) to bind.
	queueBytes = 1 << 20
)

// The AQM axis. The empty spec is the baseline: drop-tail with step ECN
// at 65 packets, today's datacenter default.
var aqms = []struct{ name, spec string }{
	{"stepecn", ""},
	{"pie", "pie:target=10us,tupdate=50us,alpha=250,beta=2500"},
	{"codel", "codel:target=10us,interval=500us"},
	{"dualpi2", "dualpi2:target=10us,tupdate=50us,step=20us,shift=20us,alpha=250,beta=2500"},
}

// The RTT axis: per-link one-way delay (2us is the testbed default).
var rtts = []struct {
	name  string
	delay marlin.Duration
}{
	{"rtt8us", 2 * marlin.Microsecond},
	{"rtt40us", 10 * marlin.Microsecond},
}

func main() {
	type cell struct{ aqm, rtt string }
	var cells []cell
	var jobs []marlin.FleetJob
	for _, a := range aqms {
		for _, r := range rtts {
			a, r := a, r
			cells = append(cells, cell{a.name, r.name})
			jobs = append(jobs, marlin.FleetJob{
				ID:  a.name + "/" + r.name,
				Run: func() (*marlin.FleetOutput, error) { return coexistOne(a.spec, r.delay) },
			})
		}
	}
	floods := []string{"not", "ect1"}
	for _, ect := range floods {
		ect := ect
		jobs = append(jobs, marlin.FleetJob{
			ID:  "flood/" + ect,
			Run: func() (*marlin.FleetOutput, error) { return floodOne(ect) },
		})
	}
	results, err := marlin.RunFleet(jobs, marlin.FleetOptions{Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("coexistence: 2 DCTCP + 2 CUBIC senders -> 1 port, 10ms")
	fmt.Printf("%-9s %-8s %-12s %-12s %-7s %-10s %-12s %-10s\n",
		"aqm", "rtt", "dctcp_gbps", "cubic_gbps", "ratio", "mark_rate", "classic_p99", "l4s_p99")
	for i, c := range cells {
		r := results[i]
		if !r.OK() {
			fmt.Printf("%-9s %-8s FAILED: %s\n", c.aqm, c.rtt, r.Err)
			continue
		}
		m := r.Output.Metrics
		fmt.Printf("%-9s %-8s %-12.2f %-12.2f %-7.3f %-10.4f %-12.1f %-10.1f\n",
			c.aqm, c.rtt, m["dctcp_gbps"], m["cubic_gbps"], m["ratio"],
			m["mark_rate"], m["classic_p99_us"], m["l4s_p99_us"])
	}

	fmt.Println("\noverload: 80G flood at the victim under dualpi2, 1 DCTCP + 1 CUBIC background")
	fmt.Printf("%-6s %-12s %-12s %-10s %-10s %-12s %-12s %-10s\n",
		"flood", "dctcp_gbps", "cubic_gbps", "l4s_share", "mark_rate", "aqm_drops", "classic_p99", "l4s_p99")
	for i, ect := range floods {
		r := results[len(cells)+i]
		if !r.OK() {
			fmt.Printf("%-6s FAILED: %s\n", ect, r.Err)
			continue
		}
		m := r.Output.Metrics
		fmt.Printf("%-6s %-12.2f %-12.2f %-10.3f %-10.4f %-12.0f %-12.1f %-10.1f\n",
			ect, m["dctcp_gbps"], m["cubic_gbps"], m["l4s_share"],
			m["mark_rate"], m["aqm_drops"], m["classic_p99_us"], m["l4s_p99_us"])
	}
	fmt.Println("\nstep ECN lets DCTCP starve CUBIC; DualPI2 levels the ratio and keeps L4S p99 under classic")
	fmt.Println("a Not-ECT flood lands in the classic queue and is policed by p'^2 drops;")
	fmt.Println("an ECT(1) flood squats in the L4S queue, soaking up marks it never answers")
}

// coexistOne runs the mixed-cc contention cell: flows 0-1 are DCTCP (the
// deployment default, ECT(1)), flows 2-3 are started with a per-flow CUBIC
// override (ECT(0)), all unbounded into the victim.
func coexistOne(aqmSpec string, delay marlin.Duration) (*marlin.FleetOutput, error) {
	cfg := marlin.TestConfig{
		Algorithm:     "dctcp",
		Ports:         senders + 1,
		NetQueueBytes: queueBytes,
		LinkDelay:     delay,
		AQM:           aqmSpec,
		Seed:          17,
	}
	if aqmSpec == "" {
		cfg.ECNThresholdPkts = 65
	}
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return nil, err
	}
	for p := 0; p < senders; p++ {
		f := marlin.FlowID(p)
		if p < 2 {
			err = t.StartFlow(f, p, victim, 0)
		} else {
			err = t.StartFlowCC(f, p, victim, 0, "cubic")
		}
		if err != nil {
			return nil, err
		}
	}
	t.RunFor(horizon)

	gbps := func(f marlin.FlowID) float64 {
		return float64(t.FlowTxBytes(f)) * 8 / horizon.Seconds() / 1e9
	}
	dctcp := gbps(0) + gbps(1)
	cubic := gbps(2) + gbps(3)
	ratio := 0.0
	if dctcp > 0 {
		ratio = cubic / dctcp
	}
	m := map[string]float64{
		"dctcp_gbps": dctcp,
		"cubic_gbps": cubic,
		"ratio":      ratio,
	}
	victimStats(t, m)
	return &marlin.FleetOutput{Metrics: m}, nil
}

// floodOne runs the overload leg: DualPI2 on the victim, one DCTCP and one
// CUBIC background flow, and a 40 Gbps flood whose ECT codepoint decides
// which queue absorbs the abuse.
func floodOne(ect string) (*marlin.FleetOutput, error) {
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm:     "dctcp",
		Ports:         senders + 1,
		NetQueueBytes: queueBytes,
		AQM:           "dualpi2:target=10us,tupdate=50us,step=20us,shift=20us,alpha=250,beta=2500",
		Pattern:       fmt.Sprintf("flood:peak=80G,victim=%d,ect=%s", victim, ect),
		Seed:          17,
	})
	if err != nil {
		return nil, err
	}
	if err := t.StartFlow(0, 0, victim, 0); err != nil {
		return nil, err
	}
	if err := t.StartFlowCC(1, 1, victim, 0, "cubic"); err != nil {
		return nil, err
	}
	t.RunFor(horizon)

	ov := t.Overload()
	if ov == nil {
		return nil, fmt.Errorf("no overload telemetry")
	}
	m := map[string]float64{
		"dctcp_gbps": float64(t.FlowTxBytes(0)) * 8 / horizon.Seconds() / 1e9,
		"cubic_gbps": float64(t.FlowTxBytes(1)) * 8 / horizon.Seconds() / 1e9,
	}
	victimStats(t, m)
	return &marlin.FleetOutput{Metrics: m}, nil
}

// victimStats folds the victim egress queue's marking rate and per-band
// p99 sojourn into the metric map (zeros under plain drop-tail, where no
// discipline is attached).
func victimStats(t *marlin.Tester, m map[string]float64) {
	ps := t.NetworkTelemetry()[0].Ports[victim]
	rate := 0.0
	if ps.TxPackets > 0 {
		rate = float64(ps.ECNMarks) / float64(ps.TxPackets)
	}
	m["mark_rate"] = rate
	if ps.AQM != nil {
		m["classic_p99_us"] = ps.AQM.SojournP99Us[0]
		m["l4s_p99_us"] = ps.AQM.SojournP99Us[1]
		m["aqm_drops"] = float64(ps.AQM.Drops)
		total := ps.AQM.BandDeqPackets[0] + ps.AQM.BandDeqPackets[1]
		if total > 0 {
			m["l4s_share"] = float64(ps.AQM.BandDeqPackets[1]) / float64(total)
		}
	}
}
