// Quickstart: deploy a tester, run one DCTCP flow at 100 Gbps through a
// pass-through network, and read the results back from the control plane.
package main

import (
	"fmt"
	"log"

	"marlin"
)

func main() {
	// Deploy: pick an algorithm, let everything else default (MTU 1024,
	// 100 Gbps ports, a 12-port pipeline plan).
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm: "dctcp",
		Ports:     2,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One unbounded flow from tester port 0 to tester port 1.
	if err := t.StartFlow(0, 0, 1, 0); err != nil {
		log.Fatal(err)
	}

	// Run two simulated milliseconds.
	const horizon = 2 * marlin.Millisecond
	t.RunFor(horizon)

	// Read the hardware registers.
	snap := t.Registers()
	fmt.Println(marlin.FormatSnapshot(snap))

	gbps := float64(t.FlowTxBytes(0)) * 8 / horizon.Seconds() / 1e9
	fmt.Printf("flow 0 throughput: %.2f Gbps (line rate is ~98 after slow start)\n", gbps)

	// The FPGA traces every CC-parameter change (§5.1); show the last
	// few window updates.
	trace := t.FlowTrace(0)
	fmt.Printf("traced %d CC events; final cwnd = %d packets\n",
		len(trace), trace[len(trace)-1].A)

	if losses := t.Losses(); losses.FalseLosses != 0 {
		log.Fatalf("tester-internal loss: %+v", losses)
	}
	fmt.Println("no false losses: the switch and FPGA stayed in sync")
}
