// Leaf-spine: replace the canonical single-switch tested network with a
// 2-leaf / 2-spine fabric, run cross-rack DCTCP flows over deterministic
// ECMP, and read back the per-hop telemetry and per-path counters the
// fabric exposes.
package main

import (
	"fmt"
	"log"

	"marlin"
)

func main() {
	// Topology names a fabric spec; everything else is the familiar test
	// description. Hosts (tester ports) map to leaves round-robin, so with
	// 4 ports hosts 0,2 share leaf0 and hosts 1,3 share leaf1.
	t, err := marlin.NewTester(marlin.TestConfig{
		Algorithm: "dctcp",
		Ports:     4,
		Topology:  "leafspine:2x2",
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cross-rack flows: 0->1 and 2->3 both traverse a spine, and the
	// seeded ECMP hash pins each flow to one of the two equal-cost paths.
	for f := marlin.FlowID(0); f < 2; f++ {
		if err := t.StartFlow(f, int(f)*2, int(f)*2+1, 0); err != nil {
			log.Fatal(err)
		}
	}

	const horizon = 2 * marlin.Millisecond
	t.RunFor(horizon)
	fmt.Println(marlin.FormatSnapshot(t.Registers()))

	// Per-hop telemetry: every switch reports per-port forwarded counts,
	// queue state, and drops.
	for _, sw := range t.NetworkTelemetry() {
		var tx uint64
		for _, p := range sw.Ports {
			tx += p.TxPackets
		}
		fmt.Printf("switch %-7s rx=%-7d forwarded=%-7d misroutes=%d\n",
			sw.Name, sw.RxPackets, tx, sw.Misroutes)
	}

	// Per-path ECMP counters: which spine did each leaf's traffic take?
	paths := t.ECMPPaths()
	for _, pc := range paths {
		fmt.Printf("path %s p%d -> %-7s %8d pkts\n", pc.Switch, pc.Port, pc.Next, pc.TxPackets)
	}
	fmt.Printf("ecmp imbalance (max/mean across next hops): %.3f\n", marlin.ECMPImbalance(paths))

	if losses := t.Losses(); losses.Misroutes != 0 || losses.FalseLosses != 0 {
		log.Fatalf("unexpected losses: %+v", losses)
	}
	fmt.Println("all hops accounted for: no misroutes, no false losses")
}
