// Burst: traffic patterns and overload telemetry. Two closed-loop
// background flows run over a 2x2 leaf-spine fabric while a pattern plan
// hammers host 1: a synchronized 6-to-1 incast storm every 4ms, plus a
// pulsed 40 Gbps DDoS-style flood that bypasses congestion control
// entirely. The same plan is replayed against CUBIC (loss-driven window
// CC) and DCQCN (ECN-driven rate CC), and the victim port's overload
// telemetry reports how each absorbs the abuse: burst absorption ratio,
// peak queue overshoot, time spent past the congestion threshold, and the
// collateral FCT inflation suffered by the background flows.
//
// The comparison runs as a fleet campaign — one job per algorithm — and
// every number below is a pure function of the built-in seed and plan, so
// the output is byte-identical across runs and worker counts.
package main

import (
	"fmt"
	"log"
	"os"

	"marlin"
)

const (
	horizon = 24 * marlin.Millisecond

	// The plan: every 4ms, six senders dump 200-packet flows on host 1 in
	// the same instant; on top of that, a flood pulses 40 Gbps of raw DATA
	// at host 1 for the first quarter of every 8ms period. Both patterns
	// share the fabric with the well-behaved background flows.
	patternSpec = "incast:period=4ms,fanin=6,victim=1,size=200; " +
		"flood:peak=40G,victim=1,period=8ms,duty=0.25"

	// Background flows restart on completion (closed loop), so their FCT
	// records measure the same transfer under calm and under attack.
	bgSizePkts = 300
)

func main() {
	algos := []string{"cubic", "dcqcn"}
	jobs := make([]marlin.FleetJob, len(algos))
	for i, algo := range algos {
		algo := algo
		jobs[i] = marlin.FleetJob{
			ID:  algo,
			Run: func() (*marlin.FleetOutput, error) { return burstOne(algo) },
		}
	}
	results, err := marlin.RunFleet(jobs, marlin.FleetOptions{Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pattern plan: %s\n\n", patternSpec)
	fmt.Printf("%-8s %-10s %-10s %-12s %-10s %-8s %-8s %-8s\n",
		"algo", "absorb", "overshoot", "overload_us", "inflation", "bg_done", "storms", "flood")
	for i, r := range results {
		if !r.OK() {
			fmt.Printf("%-8s FAILED: %s\n", algos[i], r.Err)
			continue
		}
		m := r.Output.Metrics
		fmt.Printf("%-8s %-10.4f %-10.2f %-12.0f %-10.3f %-8.0f %-8.0f %-8.0f\n",
			algos[i], m["absorb"], m["overshoot"], m["overload_us"],
			m["inflation"], m["bg_done"], m["storm_flows"], m["flood_frames"])
	}
	fmt.Println("\nthe flood never backs off: window CC cedes the victim queue, rate CC holds share but drops more")
}

func burstOne(algo string) (*marlin.FleetOutput, error) {
	cfg := marlin.TestConfig{
		Algorithm: algo,
		Ports:     4,
		Topology:  "leafspine:2x2",
		Seed:      5,
		Pattern:   patternSpec,
	}
	if algo == "dcqcn" {
		// Same scaling marlinctl applies: DCQCN's DCE spec constants assume
		// millisecond timescales; the testbed RTT is microseconds.
		cfg.DCQCNTimeScale = 30
	}
	t, err := marlin.NewTester(cfg)
	if err != nil {
		return nil, err
	}
	// Closed-loop background traffic: flow 0 (host0->host1) shares the
	// victim's downlink with the storm and flood; flow 1 (host2->host3)
	// crosses the same spines but lands on a clean port. Each restarts as
	// soon as it completes, so the FCT log samples the fabric's service
	// continuously.
	routes := map[marlin.FlowID][2]int{0: {0, 1}, 1: {2, 3}}
	t.OnComplete(func(flow marlin.FlowID, _ marlin.Duration) {
		if r, ok := routes[flow]; ok {
			if err := t.StartFlow(flow, r[0], r[1], bgSizePkts); err != nil {
				panic(err)
			}
		}
	})
	for _, f := range []marlin.FlowID{0, 1} {
		r := routes[f]
		if err := t.StartFlow(f, r[0], r[1], bgSizePkts); err != nil {
			return nil, err
		}
	}
	t.RunFor(horizon)

	ov := t.Overload()
	if ov == nil {
		return nil, fmt.Errorf("no overload telemetry")
	}
	// Collateral damage: background records only (IDs below the pattern
	// flow base), split by overlap with the overload windows.
	var bg []marlin.FCTRecord
	for _, rec := range t.FCTs() {
		if rec.Flow < t.PatternFlowBase() {
			bg = append(bg, rec)
		}
	}
	snap := t.Registers()
	return &marlin.FleetOutput{
		Metrics: map[string]float64{
			"absorb":       ov.BurstAbsorption,
			"overshoot":    ov.PeakOvershoot,
			"overload_us":  ov.TimeInOverload.Microseconds(),
			"inflation":    marlin.FCTInflation(bg, ov.Windows),
			"bg_done":      float64(len(bg)),
			"storm_flows":  float64(snap.FCTCount - len(bg)),
			"flood_frames": float64(ov.Delivered + ov.Dropped),
		},
	}, nil
}
