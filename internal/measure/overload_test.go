package measure

import (
	"math"
	"testing"

	"marlin/internal/sim"
)

func TestOverloadMonitorValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewOverloadMonitor(eng, OverloadProbe{}, OverloadConfig{ThresholdBytes: 1}); err == nil {
		t.Error("nil QueueBytes probe accepted")
	}
	probe := OverloadProbe{QueueBytes: func() int { return 0 }}
	if _, err := NewOverloadMonitor(eng, probe, OverloadConfig{ThresholdBytes: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewOverloadMonitor(eng, probe, OverloadConfig{ThresholdBytes: -5}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewOverloadMonitor(eng, probe, OverloadConfig{ThresholdBytes: 1, Interval: -sim.Microsecond}); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestOverloadMonitorWindows(t *testing.T) {
	eng := sim.NewEngine()
	// Backlog follows a square wave: 900KB (over) for the first 100us of
	// every 200us period, 0 (under) for the second half.
	depth := func() int {
		if sim.Duration(eng.Now())%(200*sim.Microsecond) < 100*sim.Microsecond {
			return 900 << 10
		}
		return 0
	}
	var delivered, dropped uint64
	m, err := NewOverloadMonitor(eng, OverloadProbe{
		QueueBytes: depth,
		PeakBytes:  func() int { return 1 << 20 },
		Delivered:  func() uint64 { return delivered },
		Dropped:    func() uint64 { return dropped },
	}, OverloadConfig{ThresholdBytes: 512 << 10, Interval: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	delivered, dropped = 300, 100
	eng.Run(sim.Time(sim.Duration(995) * sim.Microsecond))
	m.Stop()
	r := m.Report()
	// Five periods, each over for 100us. The first tick fires at 10us, so
	// the first period catches 9 over-samples and the rest 10 each.
	if r.TimeInOverload != 490*sim.Microsecond {
		t.Fatalf("time in overload = %v, want 490us", r.TimeInOverload)
	}
	if len(r.Windows) != 5 {
		t.Fatalf("windows = %d, want 5: %v", len(r.Windows), r.Windows)
	}
	if r.PeakQueueBytes != 1<<20 {
		t.Fatalf("peak = %d, want exact register value %d", r.PeakQueueBytes, 1<<20)
	}
	if want := float64(1<<20) / float64(512<<10); r.PeakOvershoot != want {
		t.Fatalf("overshoot = %v, want %v", r.PeakOvershoot, want)
	}
	if r.Delivered != 300 || r.Dropped != 100 {
		t.Fatalf("delivered=%d dropped=%d", r.Delivered, r.Dropped)
	}
	if r.BurstAbsorption != 0.75 {
		t.Fatalf("absorption = %v, want 0.75", r.BurstAbsorption)
	}
	if r.Samples != 99 {
		t.Fatalf("samples = %d, want 99", r.Samples)
	}
}

func TestOverloadMonitorOpenWindowClosedByStop(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewOverloadMonitor(eng, OverloadProbe{
		QueueBytes: func() int { return 100 },
	}, OverloadConfig{ThresholdBytes: 50, Interval: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng.Run(sim.Time(sim.Duration(95) * sim.Microsecond))
	m.Stop()
	r := m.Report()
	if len(r.Windows) != 1 {
		t.Fatalf("windows = %v", r.Windows)
	}
	if r.Windows[0].End != sim.Time(sim.Duration(95)*sim.Microsecond) {
		t.Fatalf("open window closed at %v, want stop time", sim.Duration(r.Windows[0].End))
	}
	if r.BurstAbsorption != 1 {
		t.Fatalf("absorption with no probes = %v, want 1", r.BurstAbsorption)
	}
}

func TestFCTInflation(t *testing.T) {
	us := func(n int64) sim.Duration { return sim.Duration(n) * sim.Microsecond }
	at := func(n int64) sim.Time { return sim.Time(us(n)) }
	windows := []Window{{Start: at(100), End: at(200)}}
	records := []FCTRecord{
		{Start: at(0), FCT: us(50)},    // clear: ends at 50
		{Start: at(300), FCT: us(50)},  // clear
		{Start: at(150), FCT: us(200)}, // hit: inside the window
		{Start: at(90), FCT: us(20)},   // hit: straddles the window start
	}
	got := FCTInflation(records, windows)
	want := ((200.0 + 20.0) / 2) / ((50.0 + 50.0) / 2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("inflation = %v, want %v", got, want)
	}
	if !math.IsNaN(FCTInflation(records[:2], windows)) {
		t.Error("all-clear population should be NaN")
	}
	if !math.IsNaN(FCTInflation(nil, windows)) {
		t.Error("empty records should be NaN")
	}
}
