package measure

import (
	"math"
	"reflect"
	"testing"

	"marlin/internal/sim"
)

// These tests pin the metamorphic base relations the fuzzer's scale and
// merge oracles lean on: operations over measurement aggregates must be
// order-independent, and positive scaling must act on them predictably.
// If one of these algebraic properties breaks, the campaign-level oracles
// in internal/fuzzer report phantom violations, so they are verified here
// in isolation first.

// metamorphicSamples draws a deterministic latency-shaped sample set
// spanning several decades, including repeats.
func metamorphicSamples(seed uint64, n int) []float64 {
	rng := sim.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		// 2^[0,20) with a coarse mantissa so exact-representation
		// arguments hold under scaling by powers of two.
		out[i] = float64(1+rng.Intn(1<<10)) * float64(int64(1)<<uint(rng.Intn(10)))
	}
	return out
}

func TestMergeCDFsOrderIndependent(t *testing.T) {
	samples := metamorphicSamples(7, 300)
	shards := []CDF{
		NewCDF(samples[:50]),
		NewCDF(samples[50:90]),
		NewCDF(samples[90:210]),
		NewCDF(samples[210:]),
	}
	want := NewCDF(samples)
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	for _, p := range perms {
		ordered := make([]CDF, len(p))
		for i, j := range p {
			ordered[i] = shards[j]
		}
		got := MergeCDFs(ordered...)
		if !reflect.DeepEqual(got.Samples(), want.Samples()) {
			t.Fatalf("merge order %v changed the sample union", p)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if got.Percentile(q) != want.Percentile(q) {
				t.Fatalf("merge order %v: p%g = %g, want %g", p, q*100, got.Percentile(q), want.Percentile(q))
			}
		}
	}
}

func TestCDFPercentileScaleHomogeneous(t *testing.T) {
	// Nearest-rank selection picks an element, so for any k > 0 the
	// percentile of the scaled set is exactly fl(k * percentile(base)) —
	// scaling is monotone and both sides round the same product once.
	samples := metamorphicSamples(11, 257)
	base := NewCDF(samples)
	for _, k := range []float64{2, 0.5, 3.7, 1e6} {
		scaled := make([]float64, len(samples))
		for i, v := range samples {
			scaled[i] = k * v
		}
		sc := NewCDF(scaled)
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			if got, want := sc.Percentile(q), k*base.Percentile(q); got != want {
				t.Fatalf("k=%g p%g: %g, want %g", k, q*100, got, want)
			}
		}
	}
}

func TestHistogramMergeMatchesDirect(t *testing.T) {
	samples := metamorphicSamples(13, 400)
	// Integer-valued samples keep the running sum exact under any
	// addition order, so even Mean must match bit-for-bit.
	direct := NewHistogram("us")
	direct.AddAll(samples)
	direct.Add(0)
	direct.Add(-4)

	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram("us")
	}
	for i, v := range samples {
		shards[i%4].Add(v)
	}
	shards[1].Add(0)
	shards[3].Add(-4)

	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}} {
		merged := NewHistogram("us")
		for _, j := range order {
			merged.Merge(shards[j])
		}
		if merged.Count() != direct.Count() || merged.Underflow() != direct.Underflow() {
			t.Fatalf("order %v: count/underflow %d/%d, want %d/%d",
				order, merged.Count(), merged.Underflow(), direct.Count(), direct.Underflow())
		}
		if merged.Min() != direct.Min() || merged.Max() != direct.Max() || merged.Mean() != direct.Mean() {
			t.Fatalf("order %v: min/max/mean %g/%g/%g, want %g/%g/%g", order,
				merged.Min(), merged.Max(), merged.Mean(), direct.Min(), direct.Max(), direct.Mean())
		}
		for k := -40; k <= 40; k++ {
			if merged.Bucket(k) != direct.Bucket(k) {
				t.Fatalf("order %v: bucket %d = %d, want %d", order, k, merged.Bucket(k), direct.Bucket(k))
			}
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram("us")
	h.Add(5)
	h.Merge(nil)
	h.Merge(NewHistogram("us"))
	if h.Count() != 1 || h.Min() != 5 || h.Max() != 5 {
		t.Fatalf("merging empty changed state: n=%d min=%g max=%g", h.Count(), h.Min(), h.Max())
	}
	// Merging into an empty histogram adopts the other's extrema rather
	// than comparing against the zero-value min/max.
	e := NewHistogram("us")
	e.Merge(h)
	if e.Count() != 1 || e.Min() != 5 || e.Max() != 5 {
		t.Fatalf("merge into empty: n=%d min=%g max=%g", e.Count(), e.Min(), e.Max())
	}
}

func TestHistogramScaleByPowerOfTwoShiftsBins(t *testing.T) {
	// Multiplying every sample by 2^m is a pure translation in log2
	// space: bucket k of the base histogram must reappear, with the
	// identical count, as bucket k+m of the scaled histogram.
	samples := metamorphicSamples(17, 500)
	base := NewHistogram("us")
	base.AddAll(samples)
	for _, m := range []int{1, 3, -2} {
		k := math.Pow(2, float64(m))
		scaled := NewHistogram("us")
		for _, v := range samples {
			scaled.Add(k * v)
		}
		if scaled.Count() != base.Count() || scaled.Underflow() != base.Underflow() {
			t.Fatalf("m=%d: count/underflow changed", m)
		}
		for b := -60; b <= 60; b++ {
			if got, want := scaled.Bucket(b+m), base.Bucket(b); got != want {
				t.Fatalf("m=%d: bucket %d = %d, want base bucket %d = %d", m, b+m, got, b, want)
			}
		}
	}
}

func TestHistogramScaleGeneralKMapsAdjacent(t *testing.T) {
	// For a general k > 0 the translation log2(k) is not integral, so a
	// base bucket's samples can split across two adjacent scaled buckets
	// — but never farther. Each scaled sample must land in bucket
	// floor(log2 v) + floor(log2 k) or that + 1, and the totals conserve.
	samples := metamorphicSamples(19, 500)
	for _, k := range []float64{3, 0.3, 1.5, 10} {
		shift := int(math.Floor(math.Log2(k)))
		base := NewHistogram("us")
		scaled := NewHistogram("us")
		for _, v := range samples {
			base.Add(v)
			scaled.Add(k * v)
		}
		if scaled.Count() != base.Count() {
			t.Fatalf("k=%g: count changed", k)
		}
		for b := -60; b <= 60; b++ {
			n := base.Bucket(b)
			if n == 0 {
				continue
			}
			lo, hi := scaled.Bucket(b+shift), scaled.Bucket(b+shift+1)
			if lo+hi < n {
				// Neighboring base buckets can also spill into these two,
				// so >= is the strongest per-bucket claim; the global
				// count equality above pins the rest.
				t.Fatalf("k=%g: base bucket %d (n=%d) not covered by scaled buckets %d,%d (%d+%d)",
					k, b, n, b+shift, b+shift+1, lo, hi)
			}
		}
	}
}

func TestHistogramUnderflowInvariantUnderScale(t *testing.T) {
	// Zero and negative samples have no logarithmic bucket; scaling by a
	// positive k must keep every one of them in the underflow bucket and
	// must not leak any positive sample into it.
	vals := []float64{0, -1, -1e-9, 2.5, 1e-12, -300}
	for _, k := range []float64{2, 0.001, 7.3} {
		h := NewHistogram("us")
		for _, v := range vals {
			h.Add(k * v)
		}
		if h.Underflow() != 4 {
			t.Fatalf("k=%g: underflow = %d, want 4", k, h.Underflow())
		}
		if h.Count() != len(vals) {
			t.Fatalf("k=%g: count = %d, want %d", k, h.Count(), len(vals))
		}
	}
	// The tiniest positive sample stays out of underflow even when
	// scaling shrinks it close to (but not past) zero.
	h := NewHistogram("us")
	h.Add(1e-300 * 1e-10)
	if h.Underflow() != 0 {
		t.Fatalf("positive denormal-range sample fell into underflow")
	}
}
