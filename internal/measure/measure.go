// Package measure provides the measurement side of the tester: rate
// sampling, flow-completion-time recording, CDFs, fairness indices, and
// trace comparison. The control plane uses it to turn raw device counters
// into the series and tables the paper's figures report.
package measure

import (
	"fmt"
	"math"
	"sort"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	At sim.Time
	V  float64
}

// Series is a time series of samples.
type Series []Point

// Values returns just the sample values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

// Mean returns the arithmetic mean of the samples (0 for empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s {
		sum += p.V
	}
	return sum / float64(len(s))
}

// Max returns the largest sample value (0 for empty series).
func (s Series) Max() float64 {
	var m float64
	for _, p := range s {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// After returns the subseries with At >= t.
func (s Series) After(t sim.Time) Series {
	for i, p := range s {
		if p.At >= t {
			return s[i:]
		}
	}
	return nil
}

// RateSampler polls monotonically increasing byte counters at a fixed
// interval and converts deltas into Gbps series — the model of the control
// plane reading port-rate registers (§3.2).
type RateSampler struct {
	eng      *sim.Engine
	interval sim.Duration
	sources  []rateSource
	ticker   *sim.Ticker
}

type rateSource struct {
	name   string
	read   func() uint64
	last   uint64
	series Series
}

// NewRateSampler creates a sampler with the given polling interval.
func NewRateSampler(eng *sim.Engine, interval sim.Duration) *RateSampler {
	s := &RateSampler{eng: eng, interval: interval}
	s.ticker = sim.NewTicker(eng, interval, s.sample)
	return s
}

// Track registers a named byte counter.
func (s *RateSampler) Track(name string, read func() uint64) {
	s.sources = append(s.sources, rateSource{name: name, read: read, last: read()})
}

// Start begins sampling.
func (s *RateSampler) Start() { s.ticker.Start() }

// Stop halts sampling.
func (s *RateSampler) Stop() { s.ticker.Stop() }

func (s *RateSampler) sample() {
	now := s.eng.Now()
	secs := s.interval.Seconds()
	for i := range s.sources {
		src := &s.sources[i]
		cur := src.read()
		gbps := float64(cur-src.last) * 8 / secs / 1e9
		src.last = cur
		src.series = append(src.series, Point{At: now, V: gbps})
	}
}

// Series returns the sampled rate series for a tracked name.
func (s *RateSampler) Series(name string) Series {
	for i := range s.sources {
		if s.sources[i].name == name {
			return s.sources[i].series
		}
	}
	return nil
}

// Names lists tracked counters in registration order.
func (s *RateSampler) Names() []string {
	out := make([]string, len(s.sources))
	for i := range s.sources {
		out[i] = s.sources[i].name
	}
	return out
}

// FCTRecord is one completed flow.
type FCTRecord struct {
	Flow     packet.FlowID
	SizePkts uint32
	Start    sim.Time
	FCT      sim.Duration
}

// FCTRecorder accumulates flow completion times.
type FCTRecorder struct {
	records []FCTRecord
}

// Add appends one record.
func (r *FCTRecorder) Add(rec FCTRecord) { r.records = append(r.records, rec) }

// Len reports recorded completions.
func (r *FCTRecorder) Len() int { return len(r.records) }

// Records returns all records.
func (r *FCTRecorder) Records() []FCTRecord { return r.records }

// FCTs returns the completion times in microseconds.
func (r *FCTRecorder) FCTs() []float64 {
	out := make([]float64, len(r.records))
	for i, rec := range r.records {
		out[i] = rec.FCT.Microseconds()
	}
	return out
}

// CDF is an empirical distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// Len reports sample count.
func (c CDF) Len() int { return len(c.sorted) }

// Samples returns the CDF's sorted backing samples. The slice is shared;
// callers must not mutate it.
func (c CDF) Samples() []float64 { return c.sorted }

// MergeCDFs combines empirical distributions into one over the union of
// their samples — how replicate runs of the same test pool their FCTs
// before a percentile is read. Inputs are already sorted, so the union is
// built by pairwise linear merges rather than a re-sort.
func MergeCDFs(cs ...CDF) CDF {
	var merged []float64
	for _, c := range cs {
		merged = mergeSorted(merged, c.sorted)
	}
	return CDF{sorted: merged}
}

// mergeSorted merges two ascending slices into a new ascending slice.
func mergeSorted(a, b []float64) []float64 {
	if len(a) == 0 {
		return append([]float64(nil), b...)
	}
	if len(b) == 0 {
		return append([]float64(nil), a...)
	}
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank.
func (c CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// At returns the empirical CDF value at x.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Table renders the CDF at the given percentiles as printable rows.
func (c CDF) Table(percentiles []float64) []string {
	rows := make([]string, len(percentiles))
	for i, p := range percentiles {
		rows[i] = fmt.Sprintf("p%-5.3g %12.2f", p*100, c.Percentile(p))
	}
	return rows
}

// JainIndex computes Jain's fairness index over allocations: 1.0 is
// perfectly fair, 1/n is maximally unfair.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// StepTrace is a piecewise-constant signal (e.g. a cwnd trace): the value
// holds from each point's time until the next point.
type StepTrace []Point

// ValueAt returns the trace value at time t (the last point at or before
// t; 0 before the first point).
func (tr StepTrace) ValueAt(t sim.Time) float64 {
	lo, hi := 0, len(tr)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return tr[lo-1].V
}

// CompareResult summarizes the deviation between two step traces sampled
// on a regular grid — the quantitative form of Figure 5's visual match.
type CompareResult struct {
	Samples int
	RMSE    float64
	MaxAbs  float64
	// MeanRef is the mean of the reference trace over the window, for
	// normalizing the errors.
	MeanRef float64
}

// NormRMSE is RMSE / MeanRef.
func (c CompareResult) NormRMSE() float64 {
	if c.MeanRef == 0 {
		return math.NaN()
	}
	return c.RMSE / c.MeanRef
}

// CompareStepTracesAligned searches time shifts of got within ±maxShift
// for the one minimizing RMSE against ref, and returns that shift and
// comparison. Two implementations of the same control law produce
// congruent trajectories that may be offset by a few RTTs of phase; the
// aligned comparison measures shape agreement independent of that phase.
func CompareStepTracesAligned(got, ref StepTrace, from, to sim.Time, step, maxShift sim.Duration) (sim.Duration, CompareResult) {
	best := CompareStepTraces(got, ref, from, to, step)
	bestShift := sim.Duration(0)
	for shift := -maxShift; shift <= maxShift; shift += step {
		if shift == 0 {
			continue
		}
		shifted := make(StepTrace, len(got))
		for i, p := range got {
			shifted[i] = Point{At: p.At.Add(shift), V: p.V}
		}
		res := CompareStepTraces(shifted, ref, from, to, step)
		if res.RMSE < best.RMSE {
			best = res
			bestShift = shift
		}
	}
	return bestShift, best
}

// CompareStepTraces samples both traces every step over [from, to] and
// reports deviation statistics of got relative to ref.
func CompareStepTraces(got, ref StepTrace, from, to sim.Time, step sim.Duration) CompareResult {
	var res CompareResult
	var sumSq, sumRef float64
	for t := from; t <= to; t = t.Add(step) {
		g, r := got.ValueAt(t), ref.ValueAt(t)
		d := g - r
		sumSq += d * d
		sumRef += r
		if a := math.Abs(d); a > res.MaxAbs {
			res.MaxAbs = a
		}
		res.Samples++
	}
	if res.Samples > 0 {
		res.RMSE = math.Sqrt(sumSq / float64(res.Samples))
		res.MeanRef = sumRef / float64(res.Samples)
	}
	return res
}
