package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram bins positive samples into logarithmic buckets (one per
// power-of-two span by default), the natural shape for latency and FCT
// distributions that span decades.
type Histogram struct {
	// unit labels the sample dimension (e.g. "us").
	unit    string
	buckets map[int]int // floor(log2(v)) -> count, positive samples only
	// underflow counts non-positive samples, which have no logarithmic
	// bucket; folding them into bucket 0 would collide with [1,2).
	underflow int
	count     int
	sum       float64
	min       float64
	max       float64
}

// NewHistogram creates an empty histogram for samples labeled with unit.
func NewHistogram(unit string) *Histogram {
	return &Histogram{unit: unit, buckets: make(map[int]int)}
}

// Add records one sample; non-positive samples are counted in a dedicated
// underflow bucket (log2 is undefined for them).
func (h *Histogram) Add(v float64) {
	if v > 0 {
		h.buckets[int(math.Floor(math.Log2(v)))]++
	} else {
		h.underflow++
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
}

// AddAll records a batch.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Bucket returns the count of samples that fell in [2^k, 2^(k+1)).
func (h *Histogram) Bucket(k int) int { return h.buckets[k] }

// Merge folds other's samples into h. Bucket counts, the underflow bucket,
// count, sum, and min/max all combine exactly, so merging per-shard
// histograms in any order yields the same result as one histogram fed
// every sample directly.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for k, n := range other.buckets {
		h.buckets[k] += n
	}
	h.underflow += other.underflow
	if h.count == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns recorded samples.
func (h *Histogram) Count() int { return h.count }

// Underflow returns how many non-positive samples were recorded.
func (h *Histogram) Underflow() int { return h.underflow }

// Min returns the smallest sample (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest sample (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Mean returns the arithmetic mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Render draws an ASCII histogram, one row per occupied bucket, with bars
// scaled to width characters.
func (h *Histogram) Render(width int) string {
	if h.count == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 40
	}
	keys := make([]int, 0, len(h.buckets))
	maxN := h.underflow
	for k, n := range h.buckets {
		keys = append(keys, k)
		if n > maxN {
			maxN = n
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	if h.underflow > 0 {
		bar := strings.Repeat("#", maxI(1, h.underflow*width/maxN))
		fmt.Fprintf(&b, "%10s-%-10s %s%-6d %s\n", "", "<=0", "", h.underflow, bar)
	}
	for _, k := range keys {
		n := h.buckets[k]
		bar := strings.Repeat("#", maxI(1, n*width/maxN))
		fmt.Fprintf(&b, "%10.4g-%-10.4g %s%-6d %s\n",
			math.Pow(2, float64(k)), math.Pow(2, float64(k+1)), "", n, bar)
	}
	fmt.Fprintf(&b, "n=%d mean=%.4g min=%.4g max=%.4g %s\n",
		h.count, h.Mean(), h.min, h.max, h.unit)
	return b.String()
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
