package measure

import (
	"sort"

	"marlin/internal/sim"
)

// Arrival describes one flow offered to the ideal-sharing calculator.
type Arrival struct {
	At   sim.Time
	Bits float64
}

// ProcessorSharingFCT computes the flow completion times of an ideal
// fluid processor-sharing bottleneck of the given capacity: at every
// instant each in-progress flow receives capacity/n(t). This is the
// "Ideal" reference of Figure 10 (§7.5: "the ideal FCT under this
// scheduling, where each flow evenly shares the bandwidth at all times").
//
// The returned durations are index-aligned with arrivals.
func ProcessorSharingFCT(arrivals []Arrival, capacity sim.Rate) []sim.Duration {
	n := len(arrivals)
	out := make([]sim.Duration, n)
	if n == 0 || capacity <= 0 {
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return arrivals[idx[a]].At < arrivals[idx[b]].At
	})

	type active struct {
		id        int
		remaining float64 // bits
	}
	var live []active
	now := float64(arrivals[idx[0]].At) // picoseconds
	cap := float64(capacity)            // bits/second
	next := 0

	// bitsPerPs converts link capacity to bits per picosecond.
	bitsPerPs := cap / float64(sim.Second)

	for next < n || len(live) > 0 {
		// Next arrival time, if any.
		arrivalAt := float64(0)
		hasArrival := next < n
		if hasArrival {
			arrivalAt = float64(arrivals[idx[next]].At)
		}
		if len(live) == 0 {
			// Jump to the next arrival.
			now = arrivalAt
			live = append(live, active{id: idx[next], remaining: arrivals[idx[next]].Bits})
			next++
			continue
		}
		// Per-flow service rate in bits/ps.
		rate := bitsPerPs / float64(len(live))
		// Earliest finishing flow.
		minRem := live[0].remaining
		for _, f := range live[1:] {
			if f.remaining < minRem {
				minRem = f.remaining
			}
		}
		finishAt := now + minRem/rate
		if hasArrival && arrivalAt < finishAt {
			// Serve until the arrival, then admit it.
			served := (arrivalAt - now) * rate
			for i := range live {
				live[i].remaining -= served
			}
			now = arrivalAt
			live = append(live, active{id: idx[next], remaining: arrivals[idx[next]].Bits})
			next++
			continue
		}
		// Serve until the earliest completion and retire finished flows.
		served := minRem
		now = finishAt
		keep := live[:0]
		for _, f := range live {
			f.remaining -= served
			if f.remaining <= 1e-9 {
				out[f.id] = sim.Duration(now - float64(arrivals[f.id].At))
			} else {
				keep = append(keep, f)
			}
		}
		live = keep
	}
	return out
}
