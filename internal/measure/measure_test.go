package measure

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"marlin/internal/sim"
)

func TestRateSampler(t *testing.T) {
	eng := sim.NewEngine()
	var counter uint64
	s := NewRateSampler(eng, sim.Millisecond)
	s.Track("port0", func() uint64 { return counter })
	s.Start()
	// Feed 1.25 MB per ms = 10 Gbps.
	tick := sim.NewTicker(eng, sim.Millisecond/10, func() { counter += 125_000 })
	tick.Start()
	eng.Run(sim.Time(10 * sim.Millisecond))
	series := s.Series("port0")
	if len(series) < 8 {
		t.Fatalf("samples = %d", len(series))
	}
	for _, p := range series[1:] {
		if p.V < 9.5 || p.V > 10.5 {
			t.Fatalf("sample %v Gbps, want ~10", p.V)
		}
	}
	if s.Series("missing") != nil {
		t.Fatal("unknown name returned a series")
	}
	if len(s.Names()) != 1 || s.Names()[0] != "port0" {
		t.Fatalf("names = %v", s.Names())
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{{10, 1}, {20, 3}, {30, 5}}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 5 {
		t.Fatalf("max = %v", s.Max())
	}
	if got := s.After(15); len(got) != 2 || got[0].V != 3 {
		t.Fatalf("After = %v", got)
	}
	if (Series{}).Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestCDFPercentiles(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100
	}
	c := NewCDF(samples)
	cases := []struct{ p, want float64 }{
		{0.5, 50}, {0.99, 99}, {1, 100}, {0, 1}, {0.01, 1},
	}
	for _, cse := range cases {
		if got := c.Percentile(cse.p); got != cse.want {
			t.Errorf("P%v = %v, want %v", cse.p, got, cse.want)
		}
	}
	if got := c.At(50); got != 0.5 {
		t.Errorf("At(50) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(1000); got != 1 {
		t.Errorf("At(1000) = %v", got)
	}
	if len(c.Table([]float64{0.5, 0.99})) != 2 {
		t.Error("Table rows")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Percentile(0.5)) || !math.IsNaN(c.At(1)) {
		t.Fatal("empty CDF must return NaN")
	}
}

func TestQuickCDFMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return true
		}
		c := NewCDF(clean)
		prev := math.Inf(-1)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10, 10}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog over 4: %v, want 0.25", got)
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Fatal("empty JainIndex must be NaN")
	}
}

func TestStepTraceValueAt(t *testing.T) {
	tr := StepTrace{{10, 1}, {20, 2}, {30, 3}}
	cases := []struct {
		t    sim.Time
		want float64
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {35, 3}}
	for _, c := range cases {
		if got := tr.ValueAt(c.t); got != c.want {
			t.Errorf("ValueAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestCompareStepTracesIdentical(t *testing.T) {
	tr := StepTrace{{0, 5}, {100, 10}, {200, 7}}
	res := CompareStepTraces(tr, tr, 0, 300, 10)
	if res.RMSE != 0 || res.MaxAbs != 0 {
		t.Fatalf("self-compare nonzero: %+v", res)
	}
	if res.Samples != 31 {
		t.Fatalf("samples = %d", res.Samples)
	}
}

func TestCompareStepTracesOffset(t *testing.T) {
	a := StepTrace{{0, 10}}
	b := StepTrace{{0, 12}}
	res := CompareStepTraces(a, b, 0, 100, 10)
	if math.Abs(res.RMSE-2) > 1e-9 || math.Abs(res.MaxAbs-2) > 1e-9 {
		t.Fatalf("res = %+v, want RMSE=MaxAbs=2", res)
	}
	if math.Abs(res.NormRMSE()-2.0/12) > 1e-9 {
		t.Fatalf("NormRMSE = %v", res.NormRMSE())
	}
}

func TestProcessorSharingSingleFlow(t *testing.T) {
	// One 1 Gb flow on a 1 Gbps link: exactly 1 second.
	fcts := ProcessorSharingFCT([]Arrival{{At: 0, Bits: 1e9}}, sim.Gbps)
	if got := fcts[0]; got != sim.Duration(sim.Second) {
		t.Fatalf("fct = %v, want 1s", got)
	}
}

func TestProcessorSharingTwoEqualFlows(t *testing.T) {
	// Two equal flows arriving together share the link: both take 2x.
	fcts := ProcessorSharingFCT([]Arrival{
		{At: 0, Bits: 1e9}, {At: 0, Bits: 1e9},
	}, sim.Gbps)
	for i, fct := range fcts {
		if fct != sim.Duration(2*sim.Second) {
			t.Fatalf("fct[%d] = %v, want 2s", i, fct)
		}
	}
}

func TestProcessorSharingStaggered(t *testing.T) {
	// Flow A (2 Gb) at t=0; flow B (0.5 Gb) at t=1s on a 1 Gbps link.
	// A runs alone 1s (1 Gb left), shares 1s (0.5 Gb each: B done at 2s,
	// fct 1s), then A finishes its last 0.5 Gb alone at 2.5s (fct 2.5s).
	fcts := ProcessorSharingFCT([]Arrival{
		{At: 0, Bits: 2e9},
		{At: sim.Time(sim.Second), Bits: 0.5e9},
	}, sim.Gbps)
	if got := fcts[0].Seconds(); math.Abs(got-2.5) > 1e-6 {
		t.Fatalf("fct[0] = %vs, want 2.5", got)
	}
	if got := fcts[1].Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("fct[1] = %vs, want 1.0", got)
	}
}

func TestProcessorSharingUnsortedInput(t *testing.T) {
	fcts := ProcessorSharingFCT([]Arrival{
		{At: sim.Time(sim.Second), Bits: 0.5e9},
		{At: 0, Bits: 2e9},
	}, sim.Gbps)
	if math.Abs(fcts[1].Seconds()-2.5) > 1e-6 || math.Abs(fcts[0].Seconds()-1.0) > 1e-6 {
		t.Fatalf("unsorted input broke alignment: %v", fcts)
	}
}

func TestQuickProcessorSharingConservation(t *testing.T) {
	// Total service time >= sum(bits)/capacity; every FCT >= its own
	// transmission time.
	f := func(sizes []uint32) bool {
		if len(sizes) == 0 || len(sizes) > 50 {
			return true
		}
		arr := make([]Arrival, len(sizes))
		var total float64
		for i, s := range sizes {
			bits := float64(s%1000+1) * 1e6
			arr[i] = Arrival{At: sim.Time(i) * sim.Time(sim.Millisecond), Bits: bits}
			total += bits
		}
		fcts := ProcessorSharingFCT(arr, sim.Gbps)
		var maxEnd float64
		for i, fct := range fcts {
			solo := arr[i].Bits / 1e9 // seconds at full capacity
			if fct.Seconds() < solo-1e-9 {
				return false
			}
			end := float64(arr[i].At)/1e12 + fct.Seconds()
			if end > maxEnd {
				maxEnd = end
			}
		}
		firstArr := float64(arr[0].At) / 1e12
		return maxEnd >= firstArr+total/1e9-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFCTRecorder(t *testing.T) {
	var r FCTRecorder
	r.Add(FCTRecord{Flow: 1, SizePkts: 10, FCT: sim.Micros(100)})
	r.Add(FCTRecord{Flow: 2, SizePkts: 20, FCT: sim.Micros(200)})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	us := r.FCTs()
	if us[0] != 100 || us[1] != 200 {
		t.Fatalf("fcts = %v", us)
	}
}

func TestHistogramBinsAndRender(t *testing.T) {
	h := NewHistogram("us")
	h.AddAll([]float64{1, 1.5, 3, 3.9, 100, 0})
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 18 || m > 19 {
		t.Fatalf("mean = %v", m)
	}
	out := h.Render(20)
	for _, want := range []string{"n=6", "us", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("expected multiple bucket rows:\n%s", out)
	}
}

// TestHistogramUnderflowBucket is a regression test: non-positive samples
// used to be folded into bucket 0, colliding with the [1,2) bucket, so a
// zero sample inflated the 1-2 row.
func TestHistogramUnderflowBucket(t *testing.T) {
	h := NewHistogram("us")
	h.AddAll([]float64{0, -3, 1.5})
	if h.Underflow() != 2 {
		t.Fatalf("underflow = %d, want 2", h.Underflow())
	}
	out := h.Render(20)
	if !strings.Contains(out, "<=0") {
		t.Errorf("render missing underflow row:\n%s", out)
	}
	// The [1,2) bucket must hold exactly the one positive sample, not the
	// non-positive ones.
	if h.buckets[0] != 1 {
		t.Fatalf("bucket[0] = %d, want 1 (only the 1.5 sample)", h.buckets[0])
	}
}

// TestHistogramMinMaxFromFirstSample is a regression test: max used to
// start at 0, so all-negative (and generally all-sub-zero) sample sets
// reported max=0, and min relied on a +Inf sentinel.
func TestHistogramMinMaxFromFirstSample(t *testing.T) {
	h := NewHistogram("us")
	h.AddAll([]float64{-5, -2})
	if h.Min() != -5 || h.Max() != -2 {
		t.Fatalf("min/max = %v/%v, want -5/-2", h.Min(), h.Max())
	}
	if !strings.Contains(h.Render(10), "max=-2") {
		t.Errorf("render reports wrong max:\n%s", h.Render(10))
	}

	h2 := NewHistogram("us")
	h2.Add(0.25) // all-sub-1 positive set: max must be 0.25, not 0
	if h2.Min() != 0.25 || h2.Max() != 0.25 {
		t.Fatalf("min/max = %v/%v, want 0.25/0.25", h2.Min(), h2.Max())
	}
	if !math.IsNaN(NewHistogram("us").Min()) || !math.IsNaN(NewHistogram("us").Max()) {
		t.Fatal("empty histogram min/max not NaN")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("us")
	if !math.IsNaN(h.Mean()) {
		t.Fatal("empty mean not NaN")
	}
	if !strings.Contains(h.Render(10), "no samples") {
		t.Fatal("empty render")
	}
}

func TestMergeCDFs(t *testing.T) {
	merged := MergeCDFs(NewCDF([]float64{1, 3, 5}), NewCDF(nil), NewCDF([]float64{2, 4}))
	want := []float64{1, 2, 3, 4, 5}
	if !sort.Float64sAreSorted(merged.Samples()) {
		t.Fatalf("merged samples not sorted: %v", merged.Samples())
	}
	if got := merged.Samples(); len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merged %v, want %v", got, want)
			}
		}
	}
	if got := merged.Percentile(1); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	if MergeCDFs().Len() != 0 {
		t.Error("empty merge should yield empty CDF")
	}
	// Merging a CDF with itself doubles every sample.
	c := NewCDF([]float64{7, 7, 9})
	if got := MergeCDFs(c, c).Len(); got != 6 {
		t.Errorf("self-merge length = %d, want 6", got)
	}
}
