package measure

import (
	"fmt"
	"math"

	"marlin/internal/sim"
)

// OverloadProbe is the set of counters an OverloadMonitor polls. Like
// RateSampler's sources, probes are closures so the monitor stays
// decoupled from the device model: the control plane wires them to the
// victim port's queue and link registers.
type OverloadProbe struct {
	// QueueBytes reads the instantaneous backlog of the monitored queue.
	QueueBytes func() int
	// PeakBytes reads the queue's exact lifetime maximum backlog, if the
	// device tracks one; nil falls back to the sampled peak.
	PeakBytes func() int
	// Delivered reads the cumulative packets the monitored link
	// transmitted.
	Delivered func() uint64
	// Dropped reads the cumulative packets the monitored queue discarded.
	Dropped func() uint64
}

// OverloadConfig tunes an OverloadMonitor.
type OverloadConfig struct {
	// Interval is the sampling period (0 = 10us) — the cadence at which a
	// control plane would poll occupancy registers.
	Interval sim.Duration
	// ThresholdBytes is the backlog at or above which the port counts as
	// overloaded. Must be positive; callers typically use half the queue
	// capacity.
	ThresholdBytes int
}

// Window is one contiguous overload episode: the backlog sat at or above
// the threshold from Start until End.
type Window struct {
	Start, End sim.Time
}

// Overlaps reports whether [from, to] intersects the window.
func (w Window) Overlaps(from, to sim.Time) bool {
	return from <= w.End && to >= w.Start
}

// OverloadMonitor samples a victim port's backlog on a fixed cadence and
// distils the burst-response metrics patterns are judged by: how long the
// port spent past the congestion threshold, how far the queue overshot it,
// and what fraction of offered packets the port absorbed rather than
// dropped.
type OverloadMonitor struct {
	eng    *sim.Engine
	probe  OverloadProbe
	cfg    OverloadConfig
	ticker *sim.Ticker

	baseDelivered uint64
	baseDropped   uint64
	samples       int
	sampledPeak   int
	timeIn        sim.Duration
	windows       []Window
	open          bool
	openStart     sim.Time
	started       bool
}

// NewOverloadMonitor validates the probe and config and returns an idle
// monitor; call Start before running the simulation.
func NewOverloadMonitor(eng *sim.Engine, probe OverloadProbe, cfg OverloadConfig) (*OverloadMonitor, error) {
	if probe.QueueBytes == nil {
		return nil, fmt.Errorf("measure: overload monitor needs a QueueBytes probe")
	}
	if cfg.ThresholdBytes <= 0 {
		return nil, fmt.Errorf("measure: overload threshold must be positive, got %d", cfg.ThresholdBytes)
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * sim.Microsecond
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("measure: bad overload sampling interval %v", cfg.Interval)
	}
	m := &OverloadMonitor{eng: eng, probe: probe, cfg: cfg}
	m.ticker = sim.NewTicker(eng, cfg.Interval, m.sample)
	return m, nil
}

// Start latches the delivery counters and begins sampling.
func (m *OverloadMonitor) Start() {
	if m.started {
		return
	}
	m.started = true
	if m.probe.Delivered != nil {
		m.baseDelivered = m.probe.Delivered()
	}
	if m.probe.Dropped != nil {
		m.baseDropped = m.probe.Dropped()
	}
	m.ticker.Start()
}

// Stop halts sampling and closes any open overload window.
func (m *OverloadMonitor) Stop() {
	m.ticker.Stop()
	if m.open {
		m.windows = append(m.windows, Window{Start: m.openStart, End: m.eng.Now()})
		m.open = false
	}
}

func (m *OverloadMonitor) sample() {
	b := m.probe.QueueBytes()
	m.samples++
	if b > m.sampledPeak {
		m.sampledPeak = b
	}
	over := b >= m.cfg.ThresholdBytes
	if over {
		m.timeIn += m.cfg.Interval
		if !m.open {
			m.open = true
			// The episode began somewhere in the last interval; charge it
			// from this sample, matching the timeIn accounting.
			m.openStart = m.eng.Now()
		}
		return
	}
	if m.open {
		m.windows = append(m.windows, Window{Start: m.openStart, End: m.eng.Now()})
		m.open = false
	}
}

// OverloadReport is the distilled burst response of the monitored port.
type OverloadReport struct {
	// ThresholdBytes is the configured overload threshold.
	ThresholdBytes int
	// PeakQueueBytes is the maximum observed backlog.
	PeakQueueBytes int
	// PeakOvershoot is PeakQueueBytes/ThresholdBytes: how far past the
	// congestion knee the burst pushed the queue.
	PeakOvershoot float64
	// TimeInOverload is total time the backlog sat at or above the
	// threshold.
	TimeInOverload sim.Duration
	// Windows are the contiguous overload episodes.
	Windows []Window
	// Delivered and Dropped count the monitored port's packets since
	// Start.
	Delivered uint64
	Dropped   uint64
	// BurstAbsorption is Delivered/(Delivered+Dropped): the fraction of
	// offered packets the port carried through the burst. 1 when nothing
	// was offered.
	BurstAbsorption float64
	// Samples is how many backlog readings contributed.
	Samples int
}

// Report snapshots the metrics accumulated so far. A still-open overload
// window is reported as ending now.
func (m *OverloadMonitor) Report() OverloadReport {
	r := OverloadReport{
		ThresholdBytes: m.cfg.ThresholdBytes,
		PeakQueueBytes: m.sampledPeak,
		TimeInOverload: m.timeIn,
		Windows:        append([]Window(nil), m.windows...),
		Samples:        m.samples,
	}
	if m.probe.PeakBytes != nil {
		if p := m.probe.PeakBytes(); p > r.PeakQueueBytes {
			r.PeakQueueBytes = p
		}
	}
	if m.open {
		r.Windows = append(r.Windows, Window{Start: m.openStart, End: m.eng.Now()})
	}
	r.PeakOvershoot = float64(r.PeakQueueBytes) / float64(r.ThresholdBytes)
	if m.probe.Delivered != nil {
		r.Delivered = m.probe.Delivered() - m.baseDelivered
	}
	if m.probe.Dropped != nil {
		r.Dropped = m.probe.Dropped() - m.baseDropped
	}
	if total := r.Delivered + r.Dropped; total > 0 {
		r.BurstAbsorption = float64(r.Delivered) / float64(total)
	} else {
		r.BurstAbsorption = 1
	}
	return r
}

// FCTInflation measures the collateral damage a burst pattern inflicts on
// the flows caught in it: the mean completion time of records whose
// lifetime overlapped an overload window, divided by the mean of those
// that ran entirely in the clear. Returns NaN when either population is
// empty. Callers filter to background (non-pattern) flows first.
func FCTInflation(records []FCTRecord, windows []Window) float64 {
	var hitSum, clearSum float64
	var hit, clear int
	for _, rec := range records {
		end := rec.Start.Add(rec.FCT)
		overlapped := false
		for _, w := range windows {
			if w.Overlaps(rec.Start, end) {
				overlapped = true
				break
			}
		}
		if overlapped {
			hitSum += rec.FCT.Microseconds()
			hit++
		} else {
			clearSum += rec.FCT.Microseconds()
			clear++
		}
	}
	if hit == 0 || clear == 0 {
		return math.NaN()
	}
	return (hitSum / float64(hit)) / (clearSum / float64(clear))
}
