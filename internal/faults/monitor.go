package faults

import (
	"fmt"

	"marlin/internal/measure"
	"marlin/internal/sim"
)

// MonitorConfig tunes recovery detection. Zero values select defaults.
type MonitorConfig struct {
	// Interval is the goodput sampling period (default 50 us).
	Interval sim.Duration
	// Lookback is the pre-fault window whose mean goodput defines the
	// recovery baseline (default 10 intervals).
	Lookback sim.Duration
	// RecoverFraction is the fraction of pre-fault goodput that counts as
	// recovered (default 0.9, the ">= 90%" rule).
	RecoverFraction float64
	// SustainSamples is how many consecutive samples must clear the
	// threshold before recovery is declared (default 3), so a single
	// post-outage burst does not count as sustained recovery.
	SustainSamples int
	// PostWindow is the window after each fault clears over which the
	// ECN mark rate is measured (default Lookback).
	PostWindow sim.Duration
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Interval <= 0 {
		c.Interval = sim.Micros(50)
	}
	if c.Lookback <= 0 {
		c.Lookback = 10 * c.Interval
	}
	if c.RecoverFraction <= 0 {
		c.RecoverFraction = 0.9
	}
	if c.SustainSamples <= 0 {
		c.SustainSamples = 3
	}
	if c.PostWindow <= 0 {
		c.PostWindow = c.Lookback
	}
	return c
}

// Recovery is one fault's telemetry: how hard the fault hit and how long
// the transport took to climb back.
type Recovery struct {
	Entry Entry
	// PreGbps is the mean goodput over the Lookback window before the
	// fault began — the recovery baseline.
	PreGbps float64
	// Recovered reports whether goodput made a sustained return to
	// RecoverFraction of PreGbps after the fault cleared.
	Recovered bool
	// TimeToRecover is measured from the fault's END to the first sample
	// of the sustained recovery run (zero if never recovered or if there
	// was no pre-fault traffic to recover to).
	TimeToRecover sim.Duration
	// RtxDuring counts retransmissions emitted inside the fault window.
	RtxDuring uint64
	// PostMarkPerSec is the ECN marking rate over the PostWindow after
	// the fault cleared.
	PostMarkPerSec float64
}

// String renders one recovery row.
func (r Recovery) String() string {
	ttr := "never"
	if r.Recovered {
		ttr = r.TimeToRecover.String()
	}
	return fmt.Sprintf("%-9s %-16s pre=%.2fGbps ttr=%s rtx=%d post_marks=%.0f/s",
		r.Entry.Kind, r.Entry.Link, r.PreGbps, ttr, r.RtxDuring, r.PostMarkPerSec)
}

// Monitor watches goodput, retransmissions, and ECN marks around each
// fault in a plan and reports per-fault recovery telemetry. Built on
// measure.RateSampler for the goodput series; the retransmit and mark
// counters are snapshotted exactly at fault edges by scheduled probes, so
// the report is as deterministic as the run.
type Monitor struct {
	eng     *sim.Engine
	cfg     MonitorConfig
	plan    Plan
	sampler *measure.RateSampler
	probes  []probe
}

type probe struct {
	rtxStart, rtxEnd    uint64
	marksEnd, marksPost uint64
}

// NewMonitor arms a monitor: goodput/rtx/marks are cumulative counters
// (bytes, packets, marks). Sampling and the per-fault probes start
// immediately; run the engine, then call Report.
func NewMonitor(eng *sim.Engine, cfg MonitorConfig, plan Plan,
	goodput func() uint64, rtx, marks func() uint64) *Monitor {
	m := &Monitor{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		plan:    plan,
		sampler: measure.NewRateSampler(eng, cfg.withDefaults().Interval),
		probes:  make([]probe, len(plan.Entries)),
	}
	m.sampler.Track("goodput", goodput)
	m.sampler.Start()
	for i, e := range plan.Entries {
		i, e := i, e
		eng.ScheduleAt(e.At, func() { m.probes[i].rtxStart = rtx() })
		eng.ScheduleAt(e.End(), func() {
			m.probes[i].rtxEnd = rtx()
			m.probes[i].marksEnd = marks()
		})
		eng.ScheduleAt(e.End().Add(m.cfg.PostWindow), func() {
			m.probes[i].marksPost = marks()
		})
	}
	return m
}

// Goodput returns the sampled goodput series (Gbps).
func (m *Monitor) Goodput() measure.Series { return m.sampler.Series("goodput") }

// Report computes per-fault recovery telemetry from the run's samples, in
// plan order.
func (m *Monitor) Report() []Recovery {
	series := m.Goodput()
	out := make([]Recovery, len(m.plan.Entries))
	for i, e := range m.plan.Entries {
		r := Recovery{Entry: e}
		r.PreGbps = meanWindow(series, e.At.Add(-m.cfg.Lookback), e.At)
		r.RtxDuring = m.probes[i].rtxEnd - m.probes[i].rtxStart
		r.PostMarkPerSec = float64(m.probes[i].marksPost-m.probes[i].marksEnd) /
			m.cfg.PostWindow.Seconds()
		if r.PreGbps > 0 {
			r.Recovered, r.TimeToRecover = m.findRecovery(series, e.End(), r.PreGbps)
		}
		out[i] = r
	}
	return out
}

// meanWindow averages samples with At in [from, to).
func meanWindow(s measure.Series, from, to sim.Time) float64 {
	var sum float64
	n := 0
	for _, p := range s.After(from) {
		if p.At >= to {
			break
		}
		sum += p.V
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// findRecovery scans samples after the fault end for the first run of
// SustainSamples consecutive samples at or above the threshold; the TTR is
// from the fault end to the run's first sample.
func (m *Monitor) findRecovery(s measure.Series, end sim.Time, pre float64) (bool, sim.Duration) {
	threshold := m.cfg.RecoverFraction * pre
	post := s.After(end)
	run := 0
	for i, p := range post {
		if p.V >= threshold {
			run++
			if run >= m.cfg.SustainSamples {
				first := post[i-run+1].At
				return true, first.Sub(end)
			}
		} else {
			run = 0
		}
	}
	return false, 0
}
