// Package faults provides deterministic, sim-time-scheduled fault
// injection for the tested network: link failures, rate brownouts,
// random-loss bursts, ECN-marking outages, and NIC stalls, compiled onto
// the netem/fpga primitives and replayed byte-identically from the plan
// and its seeds.
//
// Where internal/netem's Script injects faults at specific (flow, PSN)
// points — the paper's §7.1 methodology — this package injects faults at
// specific points in *time*, the shape operators actually see: a leaf
// uplink flaps for 500 us, a transceiver browns out to half rate, a
// firmware update stalls the NIC. Everything is keyed on the simulation
// clock and seeded RNG streams, so a fault plan is exactly as reproducible
// as the traffic it disturbs.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Kind identifies a fault type.
type Kind string

// Fault kinds.
const (
	// KindLinkDown takes a link administratively down: arrivals are
	// carrier losses, queued frames hold, the drain stops.
	KindLinkDown Kind = "linkdown"
	// KindBrownout degrades a link's rate to a fraction of nominal.
	KindBrownout Kind = "brownout"
	// KindLossBurst drops DATA packets with a seeded probability.
	KindLossBurst Kind = "lossburst"
	// KindEcnOff suppresses ECN marking at the link's queue.
	KindEcnOff Kind = "ecnoff"
	// KindNICStall freezes the FPGA NIC's RX/TX pacing timers.
	KindNICStall Kind = "nicstall"
)

// Entry is one scheduled fault: Kind applied to Link (empty for
// nicstall) over the window [At, At+Dur).
type Entry struct {
	Kind Kind
	// Link names the target link, e.g. "leaf0->spine1" or "host2->leaf0"
	// (resolved by the Target). Empty for nicstall.
	Link string
	// At is the absolute simulation time the fault begins.
	At sim.Time
	// Dur is how long the fault lasts.
	Dur sim.Duration
	// Fraction is the brownout's remaining rate fraction in (0, 1].
	Fraction float64
	// Prob is the lossburst's per-packet drop probability in (0, 1].
	Prob float64
	// Seed seeds the lossburst's private RNG stream.
	Seed uint64
}

// End returns the instant the fault clears.
func (e Entry) End() sim.Time { return e.At.Add(e.Dur) }

// String renders the entry in the ParseSpec syntax.
func (e Entry) String() string {
	var b strings.Builder
	b.WriteString(string(e.Kind))
	if e.Link != "" {
		b.WriteString(" " + e.Link)
	}
	fmt.Fprintf(&b, " at %s for %s", e.At, e.Dur)
	switch e.Kind {
	case KindBrownout:
		fmt.Fprintf(&b, " frac %g", e.Fraction)
	case KindLossBurst:
		fmt.Fprintf(&b, " prob %g seed %d", e.Prob, e.Seed)
	}
	return b.String()
}

// LinkDown schedules a carrier loss on the named link.
func LinkDown(link string, at sim.Time, dur sim.Duration) Entry {
	return Entry{Kind: KindLinkDown, Link: link, At: at, Dur: dur}
}

// Brownout schedules a rate degradation to fraction of the link's rate at
// fault time (e.g. 0.1 leaves a tenth of the capacity).
func Brownout(link string, at sim.Time, dur sim.Duration, fraction float64) Entry {
	return Entry{Kind: KindBrownout, Link: link, At: at, Dur: dur, Fraction: fraction}
}

// LossBurst schedules a window of seeded random DATA loss with the given
// per-packet probability.
func LossBurst(link string, at sim.Time, dur sim.Duration, prob float64, seed uint64) Entry {
	return Entry{Kind: KindLossBurst, Link: link, At: at, Dur: dur, Prob: prob, Seed: seed}
}

// EcnOff schedules an ECN-marking outage at the link's queue.
func EcnOff(link string, at sim.Time, dur sim.Duration) Entry {
	return Entry{Kind: KindEcnOff, Link: link, At: at, Dur: dur}
}

// NICStall schedules a freeze of the tester NIC's pacing timers.
func NICStall(at sim.Time, dur sim.Duration) Entry {
	return Entry{Kind: KindNICStall, At: at, Dur: dur}
}

// Plan is an ordered set of fault entries.
type Plan struct {
	Entries []Entry
}

// IsZero reports whether the plan schedules nothing.
func (p Plan) IsZero() bool { return len(p.Entries) == 0 }

// String renders the plan in the ParseSpec syntax.
func (p Plan) String() string {
	parts := make([]string, len(p.Entries))
	for i, e := range p.Entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate checks every entry's parameters and rejects overlapping
// windows of the same kind on the same target — an overlap would make the
// restore order ambiguous (the first fault's end would cancel the second
// fault mid-window).
func (p Plan) Validate() error {
	for i, e := range p.Entries {
		if err := e.validate(); err != nil {
			return fmt.Errorf("faults: entry %d (%s): %w", i, e.Kind, err)
		}
	}
	// Sort a copy by (kind, link, at) and scan adjacent pairs for overlap.
	sorted := append([]Entry(nil), p.Entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		return a.At < b.At
	})
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if a.Kind == b.Kind && a.Link == b.Link && b.At < a.End() {
			return fmt.Errorf("faults: overlapping %s windows on %q ([%v,%v) and [%v,%v))",
				a.Kind, a.Link, a.At, a.End(), b.At, b.End())
		}
	}
	return nil
}

func (e Entry) validate() error {
	switch e.Kind {
	case KindLinkDown, KindEcnOff:
		if e.Link == "" {
			return fmt.Errorf("missing link name")
		}
	case KindBrownout:
		if e.Link == "" {
			return fmt.Errorf("missing link name")
		}
		if e.Fraction <= 0 || e.Fraction > 1 {
			return fmt.Errorf("fraction %g outside (0, 1]", e.Fraction)
		}
	case KindLossBurst:
		if e.Link == "" {
			return fmt.Errorf("missing link name")
		}
		if e.Prob <= 0 || e.Prob > 1 {
			return fmt.Errorf("prob %g outside (0, 1]", e.Prob)
		}
	case KindNICStall:
		if e.Link != "" {
			return fmt.Errorf("nicstall takes no link")
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	if e.At < 0 {
		return fmt.Errorf("negative start time")
	}
	if e.Dur <= 0 {
		return fmt.Errorf("non-positive duration")
	}
	return nil
}

// Target is what a fault plan applies to. core.Tester implements it; tests
// can supply a stub.
type Target interface {
	// ResolveLink maps a plan link name onto the emulated link.
	ResolveLink(name string) (*netem.Link, error)
	// StallNIC gates the tester NIC's pacing timers.
	StallNIC(stalled bool)
}

// Apply validates the plan, resolves every link name eagerly (a typo
// fails before the run, not mid-experiment), and schedules all fault
// start/end events on the engine. Call before running the simulation.
func Apply(eng *sim.Engine, target Target, plan Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	links := make([]*netem.Link, len(plan.Entries))
	for i, e := range plan.Entries {
		if e.Link == "" {
			continue
		}
		l, err := target.ResolveLink(e.Link)
		if err != nil {
			return fmt.Errorf("faults: entry %d: %w", i, err)
		}
		links[i] = l
	}
	for i, e := range plan.Entries {
		scheduleEntry(eng, target, e, links[i])
	}
	return nil
}

// scheduleEntry arms one entry's start and end events.
func scheduleEntry(eng *sim.Engine, target Target, e Entry, link *netem.Link) {
	switch e.Kind {
	case KindLinkDown:
		eng.ScheduleAt(e.At, func() { link.SetDown(true) })
		eng.ScheduleAt(e.End(), func() { link.SetDown(false) })
	case KindBrownout:
		// The nominal rate is captured at fault time, not plan time, so
		// stacked faults of different kinds compose predictably.
		var nominal sim.Rate
		eng.ScheduleAt(e.At, func() {
			nominal = link.Rate()
			degraded := sim.Rate(float64(nominal) * e.Fraction)
			if degraded < 1 {
				degraded = 1
			}
			link.SetRate(degraded)
		})
		eng.ScheduleAt(e.End(), func() { link.SetRate(nominal) })
	case KindLossBurst:
		// One hook installed up front, gated on the window; its RNG stream
		// is private to the entry so plans replay byte-identically
		// regardless of what else consumes randomness.
		rng := sim.NewRand(e.Seed)
		link.AddHook(func(p *packet.Packet) netem.HookAction {
			now := eng.Now()
			if now < e.At || now >= e.End() {
				return netem.Pass
			}
			// Unlike netem.Script, a loss burst is a property of the wire,
			// not of a PSN: retransmissions are just as exposed.
			if p.Type == packet.DATA && rng.Float64() < e.Prob {
				return netem.Drop
			}
			return netem.Pass
		})
	case KindEcnOff:
		eng.ScheduleAt(e.At, func() { link.Queue().SuppressMarking(true) })
		eng.ScheduleAt(e.End(), func() { link.Queue().SuppressMarking(false) })
	case KindNICStall:
		eng.ScheduleAt(e.At, func() { target.StallNIC(true) })
		eng.ScheduleAt(e.End(), func() { target.StallNIC(false) })
	}
}
