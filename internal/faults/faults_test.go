package faults

import (
	"strings"
	"testing"

	"marlin/internal/aqm"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// stub implements Target over a fixed name->link table.
type stub struct {
	links  map[string]*netem.Link
	stalls []bool
}

func (s *stub) ResolveLink(name string) (*netem.Link, error) {
	if l, ok := s.links[name]; ok {
		return l, nil
	}
	return nil, errUnknown(name)
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown link " + string(e) }

func (s *stub) StallNIC(st bool) { s.stalls = append(s.stalls, st) }

func data(flow packet.FlowID, psn uint32) *packet.Packet {
	return packet.NewData(flow, psn, 1000, 0)
}

func TestParseSpecRoundTrip(t *testing.T) {
	src := "linkdown leaf0->spine1 at 2ms for 500us; " +
		"brownout host2->leaf0 at 1ms for 1ms frac 0.25; " +
		"lossburst tx3 at 3ms for 200us prob 0.1 seed 7; " +
		"ecnoff leaf1->spine0 at 4ms for 1ms; " +
		"nicstall at 5ms for 100us"
	plan, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 5 {
		t.Fatalf("parsed %d entries, want 5", len(plan.Entries))
	}
	e := plan.Entries[0]
	if e.Kind != KindLinkDown || e.Link != "leaf0->spine1" ||
		e.At != sim.Time(2*sim.Millisecond) || e.Dur != 500*sim.Microsecond {
		t.Fatalf("entry 0 = %+v", e)
	}
	if e := plan.Entries[1]; e.Fraction != 0.25 {
		t.Fatalf("brownout fraction = %g", e.Fraction)
	}
	if e := plan.Entries[2]; e.Prob != 0.1 || e.Seed != 7 {
		t.Fatalf("lossburst = %+v", e)
	}
	if e := plan.Entries[4]; e.Kind != KindNICStall || e.Link != "" {
		t.Fatalf("nicstall = %+v", e)
	}
	// String() renders back into parseable syntax.
	plan2, err := ParseSpec(plan.String())
	if err != nil {
		t.Fatalf("round trip: %v\nrendered: %s", err, plan.String())
	}
	if len(plan2.Entries) != len(plan.Entries) {
		t.Fatalf("round trip lost entries: %s", plan.String())
	}
	for i := range plan.Entries {
		if plan.Entries[i] != plan2.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, plan.Entries[i], plan2.Entries[i])
		}
	}
}

func TestParseSpecDefaultsLossSeed(t *testing.T) {
	plan, err := ParseSpec("lossburst tx0 at 1ms for 1ms prob 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Entries[0].Seed != 1 {
		t.Fatalf("default seed = %d, want 1", plan.Entries[0].Seed)
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"",
		"linkdown at 1ms for 1ms",              // missing link
		"linkdown tx0 at 1ms",                  // missing for
		"brownout tx0 at 1ms for 1ms",          // missing frac
		"brownout tx0 at 1ms for 1ms frac 1.5", // frac > 1
		"lossburst tx0 at 1ms for 1ms",         // missing prob
		"lossburst tx0 at 1ms for 1ms prob 0",  // prob 0
		"nicstall tx0 at 1ms for 1ms",          // stall takes no link
		"explode tx0 at 1ms for 1ms",           // unknown kind
		"linkdown tx0 at 1ms for 0s",           // zero duration
		"linkdown tx0 at 1ms for 1ms frac 0.5", // frac on linkdown
		"linkdown tx0 at 1ms for 2ms; linkdown tx0 at 2.5ms for 1ms", // overlap
	}
	for _, src := range bad {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestValidateAllowsAdjacentAndDistinctKinds(t *testing.T) {
	plan := Plan{Entries: []Entry{
		LinkDown("a->b", sim.Time(sim.Millisecond), sim.Millisecond),
		// Back-to-back windows touch but do not overlap.
		LinkDown("a->b", sim.Time(2*sim.Millisecond), sim.Millisecond),
		// Different kind may overlap the first window.
		EcnOff("a->b", sim.Time(sim.Millisecond), 3*sim.Millisecond),
		// Same kind, different link.
		LinkDown("b->c", sim.Time(sim.Millisecond), sim.Millisecond),
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsUnresolvableLink(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &stub{links: map[string]*netem.Link{}}
	plan := Plan{Entries: []Entry{LinkDown("nope", 0, sim.Millisecond)}}
	if err := Apply(eng, tgt, plan); err == nil {
		t.Fatal("unresolvable link accepted")
	}
	if eng.Pending() != 0 {
		t.Fatalf("events scheduled despite failed Apply: %d", eng.Pending())
	}
}

func TestApplyLinkDownWindow(t *testing.T) {
	eng := sim.NewEngine()
	sink := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	l := netem.NewLink(eng, netem.LinkConfig{Rate: sim.Gbps}, sink)
	tgt := &stub{links: map[string]*netem.Link{"a->b": l}}
	at, dur := sim.Time(sim.Millisecond), 500*sim.Microsecond
	if err := Apply(eng, tgt, Plan{Entries: []Entry{LinkDown("a->b", at, dur)}}); err != nil {
		t.Fatal(err)
	}
	eng.Run(at.Add(dur / 2))
	if !l.Down() {
		t.Fatal("link not down inside the window")
	}
	eng.RunAll()
	if l.Down() {
		t.Fatal("link still down after the window")
	}
}

func TestApplyBrownoutRestoresRate(t *testing.T) {
	eng := sim.NewEngine()
	sink := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	l := netem.NewLink(eng, netem.LinkConfig{Rate: 100 * sim.Gbps}, sink)
	tgt := &stub{links: map[string]*netem.Link{"a->b": l}}
	at, dur := sim.Time(sim.Millisecond), sim.Millisecond
	err := Apply(eng, tgt, Plan{Entries: []Entry{Brownout("a->b", at, dur, 0.1)}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(at.Add(dur / 2))
	if l.Rate() != 10*sim.Gbps {
		t.Fatalf("brownout rate = %v, want 10Gbps", l.Rate())
	}
	eng.RunAll()
	if l.Rate() != 100*sim.Gbps {
		t.Fatalf("restored rate = %v, want 100Gbps", l.Rate())
	}
}

func TestLossBurstWindowedAndDeterministic(t *testing.T) {
	run := func() (delivered, dropped uint64) {
		eng := sim.NewEngine()
		sink := netem.NodeFunc(func(p *packet.Packet) { delivered++; p.Release() })
		l := netem.NewLink(eng, netem.LinkConfig{Rate: 100 * sim.Gbps, QueueBytes: 1 << 24}, sink)
		tgt := &stub{links: map[string]*netem.Link{"a->b": l}}
		at, dur := sim.Time(sim.Millisecond), sim.Millisecond
		err := Apply(eng, tgt, Plan{Entries: []Entry{LossBurst("a->b", at, dur, 0.5, 42)}})
		if err != nil {
			t.Fatal(err)
		}
		// Steady arrivals across the window boundaries.
		for i := 0; i < 300; i++ {
			i := i
			eng.ScheduleAt(sim.Time(i)*sim.Time(10*sim.Microsecond), func() {
				l.Send(data(1, uint32(i)))
			})
		}
		eng.RunAll()
		return delivered, l.Stats().InjectedDrops
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if x1 == 0 {
		t.Fatal("loss burst dropped nothing")
	}
	// Packets outside [1ms, 2ms) must pass: 100 before, 100 after.
	if d1 < 200 {
		t.Fatalf("delivered %d, want >= 200 (outside-window packets must pass)", d1)
	}
	if d1+x1 != 300 {
		t.Fatalf("delivered %d + dropped %d != 300", d1, x1)
	}
}

func TestEcnOffSuppressesDuringWindow(t *testing.T) {
	eng := sim.NewEngine()
	sink := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	l := netem.NewLink(eng, netem.LinkConfig{Rate: sim.Gbps, ECN: netem.StepMarking(0, 1)}, sink)
	tgt := &stub{links: map[string]*netem.Link{"a->b": l}}
	at, dur := sim.Time(sim.Millisecond), sim.Millisecond
	if err := Apply(eng, tgt, Plan{Entries: []Entry{EcnOff("a->b", at, dur)}}); err != nil {
		t.Fatal(err)
	}
	eng.Run(at.Add(dur / 2))
	if !l.Queue().MarkingSuppressed() {
		t.Fatal("marking not suppressed inside window")
	}
	eng.RunAll()
	if l.Queue().MarkingSuppressed() {
		t.Fatal("marking still suppressed after window")
	}
}

// TestEcnOffDegradesAQMToDrops is the AQM interplay regression: a PI2
// discipline keeps deciding Mark during an ecnoff window, but the queue
// must degrade those verdicts to drops (a real switch with ECN disabled
// still runs its AQM — it just can't mark), and marking must resume
// exactly when the window closes.
func TestEcnOffDegradesAQMToDrops(t *testing.T) {
	eng := sim.NewEngine()
	sink := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	aqmSpec, err := aqm.ParseSpec("pi2:target=10us,tupdate=100us,alpha=100,beta=1000")
	if err != nil {
		t.Fatal(err)
	}
	l := netem.NewLink(eng, netem.LinkConfig{
		Rate: sim.Gbps, AQM: aqmSpec, RNG: sim.NewRand(11),
	}, sink)
	tgt := &stub{links: map[string]*netem.Link{"a->b": l}}
	at, dur := sim.Time(10*sim.Millisecond), 10*sim.Millisecond
	if err := Apply(eng, tgt, Plan{Entries: []Entry{EcnOff("a->b", at, dur)}}); err != nil {
		t.Fatal(err)
	}
	// Offered load 2.4x the line rate so the PI2 controller saturates.
	for i := 0; i < 6000; i++ {
		i := i
		eng.ScheduleAt(sim.Time(i)*sim.Time(5*sim.Microsecond), func() {
			l.Send(packet.NewData(1, uint32(i), 1500, eng.Now()))
		})
	}
	type sample struct{ marks, aqmDrops uint64 }
	snap := func() sample {
		qs, as := l.Queue().Stats(), l.Queue().AQMStats()
		return sample{qs.ECNMarks, as.Drops}
	}
	var atStart, atEnd sample
	eng.ScheduleAt(at.Add(sim.Microsecond), func() { atStart = snap() })
	eng.ScheduleAt(at.Add(dur).Add(-sim.Microsecond), func() { atEnd = snap() })
	eng.RunAll()
	final := snap()

	if atStart.marks == 0 {
		t.Fatal("PI2 never marked before the ecnoff window")
	}
	if atEnd.marks != atStart.marks {
		t.Fatalf("CE marks advanced inside the ecnoff window: %d -> %d",
			atStart.marks, atEnd.marks)
	}
	if atEnd.aqmDrops <= atStart.aqmDrops {
		t.Fatalf("AQM verdicts did not degrade to drops in the window: %d -> %d",
			atStart.aqmDrops, atEnd.aqmDrops)
	}
	if final.marks <= atEnd.marks {
		t.Fatal("marking did not resume after the ecnoff window")
	}
}

func TestNICStallCallsTarget(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &stub{links: map[string]*netem.Link{}}
	plan := Plan{Entries: []Entry{NICStall(sim.Time(sim.Millisecond), 100*sim.Microsecond)}}
	if err := Apply(eng, tgt, plan); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if len(tgt.stalls) != 2 || !tgt.stalls[0] || tgt.stalls[1] {
		t.Fatalf("stall transitions = %v, want [true false]", tgt.stalls)
	}
}

func TestMonitorReportsRecovery(t *testing.T) {
	eng := sim.NewEngine()
	// Synthetic goodput: 12,500 bytes per 10 us (10 Gbps), except zero
	// during the outage [1ms, 1.5ms); recovery is instant at 1.5ms.
	outStart, outEnd := sim.Time(sim.Millisecond), sim.Time(1500*sim.Microsecond)
	var bytes, rtx, marks uint64
	tick := sim.NewTicker(eng, 10*sim.Microsecond, func() {
		now := eng.Now()
		if now < outStart || now >= outEnd {
			bytes += 12500
		} else {
			rtx++ // pretend the transport retransmits during the outage
		}
		if now >= outEnd {
			marks += 2
		}
	})
	tick.Start()
	plan := Plan{Entries: []Entry{LinkDown("a->b", outStart, outEnd.Sub(outStart))}}
	mon := NewMonitor(eng, MonitorConfig{Interval: 50 * sim.Microsecond}, plan,
		func() uint64 { return bytes },
		func() uint64 { return rtx },
		func() uint64 { return marks })
	eng.Run(sim.Time(3 * sim.Millisecond))
	tick.Stop()
	rs := mon.Report()
	if len(rs) != 1 {
		t.Fatalf("got %d recoveries", len(rs))
	}
	r := rs[0]
	if r.PreGbps < 9.5 || r.PreGbps > 10.5 {
		t.Fatalf("PreGbps = %g, want ~10", r.PreGbps)
	}
	if !r.Recovered {
		t.Fatal("recovery not detected")
	}
	// Goodput resumes immediately at outEnd; the first recovered sample is
	// within a couple of sampling intervals.
	if r.TimeToRecover <= 0 || r.TimeToRecover > 200*sim.Microsecond {
		t.Fatalf("TimeToRecover = %v, want (0, 200us]", r.TimeToRecover)
	}
	if r.RtxDuring == 0 {
		t.Fatal("RtxDuring = 0, want outage retransmits counted")
	}
	// marks advance 2 per 10us after the outage: 200,000/s.
	if r.PostMarkPerSec < 150_000 || r.PostMarkPerSec > 250_000 {
		t.Fatalf("PostMarkPerSec = %g, want ~200k", r.PostMarkPerSec)
	}
	if !strings.Contains(r.String(), "linkdown") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestMonitorNeverRecovered(t *testing.T) {
	eng := sim.NewEngine()
	var bytes uint64
	cut := sim.Time(sim.Millisecond)
	tick := sim.NewTicker(eng, 10*sim.Microsecond, func() {
		if eng.Now() < cut {
			bytes += 12500
		}
	})
	tick.Start()
	plan := Plan{Entries: []Entry{LinkDown("a->b", cut, 500*sim.Microsecond)}}
	zero := func() uint64 { return 0 }
	mon := NewMonitor(eng, MonitorConfig{Interval: 50 * sim.Microsecond}, plan,
		func() uint64 { return bytes }, zero, zero)
	eng.Run(sim.Time(3 * sim.Millisecond))
	tick.Stop()
	r := mon.Report()[0]
	if r.Recovered {
		t.Fatal("recovery reported though goodput never returned")
	}
	if r.TimeToRecover != 0 {
		t.Fatalf("TimeToRecover = %v for unrecovered fault", r.TimeToRecover)
	}
}
