package faults

import (
	"fmt"
	"strings"

	"marlin/internal/sim"
	"marlin/internal/spec"
)

// ParseSpec compiles a textual fault plan: entries separated by ';', each
// of the form
//
//	linkdown  LINK at TIME for DUR
//	brownout  LINK at TIME for DUR frac F
//	lossburst LINK at TIME for DUR prob P [seed N]
//	ecnoff    LINK at TIME for DUR
//	nicstall       at TIME for DUR
//
// where LINK is a Target link name ("leaf0->spine1", "host2->leaf0",
// "tx3"), and TIME/DUR use Go duration syntax ("2ms", "500us"). An
// omitted lossburst seed defaults to 1. The compiled plan is validated.
func ParseSpec(src string) (Plan, error) {
	var plan Plan
	for _, part := range strings.Split(src, ";") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		e, err := parseEntry(fields)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: %q: %w", strings.TrimSpace(part), err)
		}
		plan.Entries = append(plan.Entries, e)
	}
	if plan.IsZero() {
		return Plan{}, fmt.Errorf("faults: empty spec")
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

func parseEntry(fields []string) (Entry, error) {
	e := Entry{Kind: Kind(fields[0])}
	rest := fields[1:]
	if e.Kind != KindNICStall {
		if len(rest) == 0 {
			return e, fmt.Errorf("missing link name")
		}
		e.Link = rest[0]
		rest = rest[1:]
	}
	if len(rest) < 4 || rest[0] != "at" || rest[2] != "for" {
		return e, fmt.Errorf("expected: at TIME for DUR")
	}
	at, err := spec.Duration(rest[1])
	if err != nil {
		return e, err
	}
	dur, err := spec.Duration(rest[3])
	if err != nil {
		return e, err
	}
	e.At, e.Dur = sim.Time(at), dur
	rest = rest[4:]

	// Kind-specific trailing parameters.
	if e.Kind == KindLossBurst {
		e.Seed = 1
	}
	for len(rest) > 0 {
		if len(rest) < 2 {
			return e, fmt.Errorf("dangling token %q", rest[0])
		}
		key, val := rest[0], rest[1]
		rest = rest[2:]
		switch {
		case key == "frac" && e.Kind == KindBrownout:
			f, err := spec.Float("frac", val)
			if err != nil {
				return e, err
			}
			e.Fraction = f
		case key == "prob" && e.Kind == KindLossBurst:
			f, err := spec.Float("prob", val)
			if err != nil {
				return e, err
			}
			e.Prob = f
		case key == "seed" && e.Kind == KindLossBurst:
			n, err := spec.Uint("seed", val)
			if err != nil {
				return e, err
			}
			e.Seed = n
		default:
			return e, fmt.Errorf("unexpected %q for %s", key, e.Kind)
		}
	}
	return e, nil
}
