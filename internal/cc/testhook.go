package cc

// legacyRTOStall reverts renoOnTimeout to its pre-fix behavior: returning
// to stateOpen after a retransmission timeout instead of entering NewReno
// loss recovery. That was a real bug (fixed alongside the fault-injection
// work): after a multi-packet loss the flow would repair one hole per RTO —
// ~110 ms for a burst that proper recovery repairs in ~2 ms.
//
// The hook exists so the fuzzing campaign can prove its liveness oracle
// detects this bug class end-to-end (mutation testing): the fuzzer's
// regression suite flips it on, watches the oracle fire, and verifies the
// minimizer reduces the failure to a small checked-in scenario. It must
// never be set outside tests.
var legacyRTOStall bool

// SetLegacyRTOStall enables or disables the reintroduced RTO-stall bug in
// every window-based module that shares renoOnTimeout (reno, cubic, dctcp,
// swift). Test-only; not safe to flip while simulations run concurrently.
func SetLegacyRTOStall(on bool) { legacyRTOStall = on }
