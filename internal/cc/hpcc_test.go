package cc

import (
	"testing"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// hpccAck drives one EvRx with a synthetic one-hop telemetry record.
func (h *harness) hpccAck(ack uint32, queueBytes uint32, txBytes uint64, ts sim.Time) *Output {
	var rec packet.INTRecord
	rec.Push(packet.INTHop{
		QueueBytes: queueBytes,
		TxBytes:    txBytes,
		Rate:       100 * sim.Gbps,
		TS:         ts,
	})
	in := &Input{Type: EvRx, Ack: ack, PSN: ack, ProbedRTT: 10 * sim.Microsecond, INT: &rec}
	return h.deliver(in)
}

func TestHPCCReducesUnderHighUtilization(t *testing.T) {
	h := newHarness(t, "hpcc", nil)
	w0 := h.cwnd
	// Deep queue: 500 KB at 100G with T=10us -> queueing term ~ 32x eta.
	tx := uint64(0)
	ts := sim.Time(0)
	for i := uint32(1); i <= 40; i++ {
		h.send(1)
		tx += 1044
		ts = ts.Add(sim.Microsecond)
		h.hpccAck(i, 500_000, tx, ts)
	}
	if h.cwnd >= w0 {
		t.Fatalf("cwnd %d did not shrink under persistent congestion (w0=%d)", h.cwnd, w0)
	}
	if h.cwnd < h.p.MinCwnd {
		t.Fatalf("cwnd %d under floor", h.cwnd)
	}
}

func TestHPCCProbesUpWhenIdle(t *testing.T) {
	h := newHarness(t, "hpcc", func(p *Params) { p.HPCCInitWnd = 8 })
	// Empty queue, trickle utilization: U << eta -> additive probe. Send
	// and ack incrementally so per-RTT boundaries advance like a real
	// closed loop.
	tx := uint64(0)
	ts := sim.Time(0)
	for i := uint32(1); i <= 60; i++ {
		h.send(1)
		tx += 100 // tiny tx delta -> low measured utilization
		ts = ts.Add(sim.Microsecond)
		h.hpccAck(i, 0, tx, ts)
	}
	if h.cwnd <= 8 {
		t.Fatalf("cwnd %d did not probe upward with an idle bottleneck", h.cwnd)
	}
}

func TestHPCCConvergesNearTargetUtilization(t *testing.T) {
	// Closed loop against a fluid one-hop model: the sender's window maps
	// to offered rate W*MTU/T; the hop reports queue growth when offered
	// exceeds capacity. HPCC should settle near eta (95%).
	h := newHarness(t, "hpcc", func(p *Params) { p.HPCCInitWnd = 200 })
	const (
		bw  = 100e9                      // bits/s
		tUs = 10.0                       // base RTT us
		bdp = bw * tUs * 1e-6 / 8 / 1044 // packets in flight at 100%
	)
	queue := 0.0
	tx := uint64(0)
	ts := sim.Time(0)
	var lastW float64
	const dtSec = tUs / 12 * 1e-6  // fluid tick
	const tickCap = bw * dtSec / 8 // bytes the hop serves per tick
	for i := uint32(1); i <= 4000; i++ {
		h.send(1)
		offered := float64(h.cwnd) / bdp // utilization offered by window
		served := offered
		if served > 1 {
			served = 1
		}
		queue += (offered - served) * tickCap
		if queue < 0 {
			queue = 0
		}
		tx += uint64(served * tickCap)
		ts = ts.Add(sim.Micros(tUs / 12))
		h.hpccAck(i, uint32(queue), tx, ts)
		lastW = float64(h.cwnd)
	}
	util := lastW / bdp
	if util < 0.5 || util > 1.3 {
		t.Fatalf("converged utilization = %.2f (W=%v, BDP=%v pkts), want ~0.95", util, lastW, bdp)
	}
	if queue > 200*1044 {
		t.Fatalf("standing queue = %.0f bytes, HPCC should keep it near zero", queue)
	}
}

func TestHPCCLossRecovery(t *testing.T) {
	h := newHarness(t, "hpcc", func(p *Params) { p.HPCCInitWnd = 64 })
	h.send(64)
	for i := 0; i < 3; i++ {
		h.ack(0, 0) // dup acks without INT
	}
	if len(h.rtxes) != 1 || h.rtxes[0] != 0 {
		t.Fatalf("rtxes = %v", h.rtxes)
	}
	if h.cwnd >= 64 {
		t.Fatalf("cwnd %d not halved on loss", h.cwnd)
	}
}

func TestHPCCIgnoresMissingINT(t *testing.T) {
	h := newHarness(t, "hpcc", func(p *Params) { p.HPCCInitWnd = 16 })
	h.send(100)
	w0 := h.cwnd
	for i := uint32(1); i <= 20; i++ {
		h.ack(i, 0) // plain acks, no telemetry
	}
	// Without INT the window must stay stable (no reaction, no crash).
	if h.cwnd != w0 {
		t.Fatalf("cwnd moved without telemetry: %d -> %d", w0, h.cwnd)
	}
}

func TestHPCCTimeoutResets(t *testing.T) {
	h := newHarness(t, "hpcc", func(p *Params) { p.HPCCInitWnd = 64 })
	h.send(64)
	h.timeout()
	if h.cwnd != h.p.MinCwnd {
		t.Fatalf("cwnd after timeout = %d, want %d", h.cwnd, h.p.MinCwnd)
	}
}
