package cc

// PSNs live in a 32-bit circular sequence space (RoCE-style). These helpers
// implement serial-number arithmetic so windows behave correctly across
// wraparound.

// SeqLT reports whether a precedes b in circular order.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports whether a precedes or equals b in circular order.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqMax returns the later of a and b in circular order.
func SeqMax(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return b
	}
	return a
}

// SeqDiff returns a-b as a signed distance.
func SeqDiff(a, b uint32) int32 { return int32(a - b) }
