package cc

import "marlin/internal/packet"

// CBR is a constant-bit-rate module with no congestion reaction — the
// traffic prior switch-based testers (Norma, HyperTester) generate. It
// exists to make requirement R1 falsifiable: running the same congestion
// experiments with "cbr" shows what a tester *without* CC behaviour
// reports (collapsed goodput, massive loss), which is exactly why the
// paper's R1 matters.
//
// Register map (cust-var):
//
//	0-1  fixed rate, bps (u64)
type CBR struct{}

const cbrRateLo = 0

func init() { Register("cbr", func() Algorithm { return CBR{} }) }

// Name implements Algorithm.
func (CBR) Name() string { return "cbr" }

// Mode implements Algorithm.
func (CBR) Mode() Mode { return RateMode }

// FastPathCycles implements Algorithm: nothing to compute.
func (CBR) FastPathCycles() int { return 1 }

// SlowPathCycles implements Algorithm.
func (CBR) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm: the rate is pinned to CBRRate (or line
// rate when unset) and never changes.
func (CBR) InitFlow(cust, slow *State, p *Params) {
	rate := p.CBRRate
	if rate == 0 {
		rate = p.LineRate
	}
	RegsOf(cust).SetU64(cbrRateLo, uint64(rate))
}

// OnEvent implements Algorithm: ignore congestion signals entirely; only
// keep the pipeline fed and recover from losses by go-back-N so flows
// still terminate.
func (CBR) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		if in.Flags.Has(packet.FlagNACK) {
			out.Rtx, out.RtxPSN = true, in.Ack
		}
		out.Schedule = true
		if SeqDiff(in.Ack, in.Nxt) >= 0 {
			out.StopTimer(TimerRTO)
		} else {
			out.ArmTimer(TimerRTO, in.Params.RTOMin)
		}
	case EvTimeout:
		if SeqDiff(in.Nxt, in.Una) > 0 {
			out.Rtx, out.RtxPSN = true, in.Una
			out.Schedule = true
			out.ArmTimer(TimerRTO, in.Params.RTOMin)
		}
	}
	out.SetRate, out.Rate = true, Rate64(r.U64(cbrRateLo))
	out.LogU32x4(uint32(r.U64(cbrRateLo)/1e6), 0, 0, uint32(in.Type))
}

// OnSlowPath implements Algorithm.
func (CBR) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}
