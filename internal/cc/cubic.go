package cc

import (
	"math"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Cubic is the CUBIC window algorithm (Ha et al., 2008), included as the
// paper's §8 extension case: its cube-root falls outside the 40-cycle RMW
// budget even with a lookup table ("Cubic still requires around 100 clock
// cycles to process a single packet"), so a Cubic tester trades per-flow
// PPS for flow count. The module declares that cost so the FPGA model
// charges it.
//
// Loss recovery reuses the Reno machinery (slots 0..6); Cubic adds:
//
//	7-8  epoch start, microseconds since flow start (u64)
//	9    Wmax, packets
//	10   K, microseconds (cube root computed on the Slow Path)
//	11   West, Q16 packets (TCP-friendly Reno estimate)
type Cubic struct{}

// Cubic register slots.
const (
	cuEpochLo = iota + 7
	cuEpochHi
	cuWmax
	cuKUs
	cuWestQ16
)

// slowCubicRoot is the Slow Path event computing K after a loss epoch.
const slowCubicRoot uint8 = 2

func init() { Register("cubic", func() Algorithm { return Cubic{} }) }

// Name implements Algorithm.
func (Cubic) Name() string { return "cubic" }

// Mode implements Algorithm.
func (Cubic) Mode() Mode { return WindowMode }

// FastPathCycles implements Algorithm (§8: ~100 cycles per packet).
func (Cubic) FastPathCycles() int { return 100 }

// SlowPathCycles implements Algorithm (cube root via table + refinement).
func (Cubic) SlowPathCycles() int { return 120 }

// InitFlow implements Algorithm.
func (Cubic) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	r.SetU32(rCwndQ16, p.InitCwnd<<16)
	r.SetU32(rSsthresh, p.Ssthresh)
}

// OnEvent implements Algorithm.
func (c Cubic) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		c.onAck(r, in, out)
	case EvTimeout:
		renoOnTimeout(r, in, out)
		r.SetU64(cuEpochLo, 0)
	}
	cwnd := clampCwnd(r.U32(rCwndQ16)>>16, in.Params)
	out.SetCwnd, out.Cwnd = true, cwnd
	out.LogU32x4(cwnd, r.U32(cuWmax), r.U32(cuKUs), uint32(in.Type))
	armRTO(r, in, out)
}

func (c Cubic) onAck(r Regs, in *Input, out *Output) {
	acked := SeqDiff(in.Ack, in.Una)
	switch {
	case acked > 0:
		if r.U32(rState) == stateRecovery {
			renoNewAck(r, in, out, uint32(acked)) // recovery exit path
		} else {
			r.SetU32(rDupAcks, 0)
			c.grow(r, in, uint32(acked))
		}
	case acked == 0 && SeqDiff(in.Nxt, in.Una) > 0:
		c.dupAck(r, in, out)
	}
	if in.Flags.Has(packet.FlagECNEcho) {
		c.ecnReact(r, in, out)
	}
	out.Schedule = true
	updateSrtt(r, in)
}

// grow applies slow start below ssthresh, cubic growth above.
func (c Cubic) grow(r Regs, in *Input, acked uint32) {
	cwndQ := r.U32(rCwndQ16)
	if cwndQ>>16 < r.U32(rSsthresh) {
		growWindow(r, in.Params, acked)
		return
	}
	if r.U64(cuEpochLo) == 0 {
		// First CA ack of this epoch.
		r.SetU64(cuEpochLo, uint64(in.Timestamp)/uint64(sim.Microsecond)+1)
		if r.U32(cuWmax) == 0 {
			r.SetU32(cuWmax, cwndQ>>16)
		}
		r.SetU32(cuWestQ16, cwndQ)
	}
	tUs := float64(uint64(in.Timestamp)/uint64(sim.Microsecond)+1-r.U64(cuEpochLo)) +
		float64(r.U32(rSrttUs))
	// W(t) = C*(t-K)^3 + Wmax, with t in seconds.
	cConst := float64(in.Params.CubicCQ10) / 1024
	k := float64(r.U32(cuKUs)) / 1e6
	t := tUs / 1e6
	wCubic := cConst*math.Pow(t-k, 3) + float64(r.U32(cuWmax))
	// TCP-friendly region: grow Reno-equivalent estimate per ack.
	westQ := r.U32(cuWestQ16)
	for i := uint32(0); i < acked; i++ {
		westQ += (1 << 16) / maxU32(westQ>>16, 1)
	}
	r.SetU32(cuWestQ16, westQ)
	target := wCubic
	if fr := float64(westQ) / 65536; fr > target {
		target = fr
	}
	cwnd := float64(cwndQ) / 65536
	if target > cwnd {
		// Approach the target over roughly one RTT of acks.
		cwnd += (target - cwnd) * float64(acked) / math.Max(cwnd, 1)
	}
	maxW := float64(in.Params.MaxCwndPkts())
	if cwnd > maxW {
		cwnd = maxW
	}
	r.SetU32(rCwndQ16, uint32(cwnd*65536))
}

// ecnReact is the RFC 3168 response to an echoed CE mark: the same
// CubicBetaQ10 multiplicative decrease a loss triggers, at most once per
// window of data (the rCwrEnd gate renoECE uses) and without a
// retransmission — the marked packet was delivered, not lost.
func (c Cubic) ecnReact(r Regs, in *Input, out *Output) {
	if r.U32(rState) == stateRecovery || SeqLT(in.Ack, r.U32(rCwrEnd)) {
		return
	}
	cwnd := r.U32(rCwndQ16) >> 16
	r.SetU32(cuWmax, cwnd)
	beta := uint64(in.Params.CubicBetaQ10)
	newW := maxU32(uint32(uint64(cwnd)*beta/1024), in.Params.MinCwnd)
	r.SetU32(rSsthresh, maxU32(newW, 2))
	r.SetU32(rCwndQ16, newW<<16)
	r.SetU32(rCwrEnd, in.Nxt)
	r.SetU64(cuEpochLo, 0)
	// The cube root for the new epoch runs on the Slow Path.
	out.SlowPath, out.SlowPathCode = true, slowCubicRoot
}

func (c Cubic) dupAck(r Regs, in *Input, out *Output) {
	dups := r.Add32(rDupAcks, 1)
	if r.U32(rState) == stateRecovery {
		return
	}
	if dups == 3 {
		cwnd := r.U32(rCwndQ16) >> 16
		r.SetU32(cuWmax, cwnd)
		beta := uint64(in.Params.CubicBetaQ10)
		newW := maxU32(uint32(uint64(cwnd)*beta/1024), in.Params.MinCwnd)
		r.SetU32(rSsthresh, maxU32(newW, 2))
		r.SetU32(rCwndQ16, newW<<16)
		r.SetU32(rState, stateRecovery)
		r.SetU32(rRecover, in.Nxt)
		r.SetU64(cuEpochLo, 0)
		out.Rtx, out.RtxPSN = true, in.Una
		// The cube root for the new epoch runs on the Slow Path.
		out.SlowPath, out.SlowPathCode = true, slowCubicRoot
	}
}

// OnSlowPath implements Algorithm: K = cbrt(Wmax * (1-beta) / C), stored
// in microseconds.
func (Cubic) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {
	if code != slowCubicRoot {
		return
	}
	r := RegsOf(cust)
	wmax := float64(r.U32(cuWmax))
	beta := float64(in.Params.CubicBetaQ10) / 1024
	cConst := float64(in.Params.CubicCQ10) / 1024
	k := math.Cbrt(wmax * (1 - beta) / cConst) // seconds
	r.SetU32(cuKUs, uint32(k*1e6))
}
