package cc

import (
	_ "embed"
	"strings"
)

// The module sources are embedded so the Table 4 reproduction can report
// lines of code the way the paper does ("the number of lines of code
// written for each algorithm's CC module, excluding fixed formats").

//go:embed reno.go
var renoSrc string

//go:embed dctcp.go
var dctcpSrc string

//go:embed dcqcn.go
var dcqcnSrc string

//go:embed cubic.go
var cubicSrc string

//go:embed timely.go
var timelySrc string

//go:embed hpcc.go
var hpccSrc string

//go:embed cbr.go
var cbrSrc string

//go:embed swift.go
var swiftSrc string

// SourceLines reports the semantic line count of an algorithm module:
// non-blank, non-comment lines, the convention Table 4 uses.
func SourceLines(name string) int {
	var src string
	switch name {
	case "reno":
		src = renoSrc
	case "dctcp":
		src = dctcpSrc
	case "dcqcn":
		src = dcqcnSrc
	case "cubic":
		src = cubicSrc
	case "timely":
		src = timelySrc
	case "hpcc":
		src = hpccSrc
	case "cbr":
		src = cbrSrc
	case "swift":
		src = swiftSrc
	default:
		return 0
	}
	n := 0
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		n++
	}
	return n
}

// StateSlotsUsed reports how many of the sixteen 32-bit cust-var register
// slots a module's register map occupies — the BRAM-footprint analogue of
// Table 4's resource columns.
func StateSlotsUsed(name string) int {
	switch name {
	case "reno":
		return rSrttUs + 1
	case "dctcp":
		return dSnapMarked + 1
	case "dcqcn":
		return qCNPSeen + 1
	case "cubic":
		return cuWestQ16 + 1
	case "timely":
		return tyHAICount + 1
	case "hpcc":
		return hSrttUs + 1
	case "cbr":
		return 2
	case "swift":
		return swDecreaseEnd + 1
	default:
		return 0
	}
}
