package cc

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// DCQCN is the rate-based RoCE congestion control of Zhu et al.
// (SIGCOMM'15), configured per the NVIDIA parameter guidance the paper's
// §7.3 cites. The reaction point keeps a current rate Rc and target rate
// Rt:
//
//   - On a CNP: alpha <- (1-g)alpha + g, Rt <- Rc, Rc <- Rc(1 - alpha/2),
//     and both rate-increase stage counters reset.
//   - Every AlphaTimer without a CNP: alpha <- (1-g)alpha.
//   - Rate-increase events come from two independent sources — the
//     RateTimer and a ByteCounter of transmitted data. While both stage
//     counters are below F the flow is in fast recovery (Rc <- (Rc+Rt)/2);
//     once one passes F it adds RateAI to Rt; once both pass F it adds
//     RateHAI (hyper increase).
//
// Loss is handled RoCE-style: a NACK triggers go-back-N retransmission.
//
// Register map (cust-var):
//
//	0-1  Rc, bps (u64)
//	2-3  Rt, bps (u64)
//	4    alpha, Q16
//	5    byte-counter stage count
//	6    timer stage count
//	7-8  bytes accumulated toward the next byte-counter event (u64)
//	9    CNP seen since last alpha-timer tick (the timer only decays
//	     alpha in quiet intervals)
type DCQCN struct{}

// DCQCN register slots.
const (
	qRcLo = iota
	qRcHi
	qRtLo
	qRtHi
	qAlphaQ16
	qBCStage
	qTStage
	qBytesLo
	qBytesHi
	qCNPSeen
)

const alphaQ16One = 1 << 16

func init() { Register("dcqcn", func() Algorithm { return DCQCN{} }) }

// Name implements Algorithm.
func (DCQCN) Name() string { return "dcqcn" }

// Mode implements Algorithm.
func (DCQCN) Mode() Mode { return RateMode }

// PreferredECT implements ECTPreferer: DCQCN reacts to per-packet CE like
// DCTCP, so its flows carry the scalable-control ECT(1) codepoint.
func (DCQCN) PreferredECT() packet.ECT { return packet.ECT1 }

// FastPathCycles implements Algorithm (Table 4: DCQCN = 6 cycles).
func (DCQCN) FastPathCycles() int { return 6 }

// SlowPathCycles implements Algorithm; DCQCN runs entirely on the fast
// path (Table 4 reports no Slow Path usage).
func (DCQCN) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm: start at line rate with alpha = 1, both
// timers armed.
func (DCQCN) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	r.SetU64(qRcLo, uint64(p.LineRate))
	r.SetU64(qRtLo, uint64(p.LineRate))
	r.SetU32(qAlphaQ16, alphaQ16One)
}

// OnEvent implements Algorithm.
func (d DCQCN) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
		out.ArmTimer(TimerAlpha, in.Params.AlphaTimer)
		out.ArmTimer(TimerRate, in.Params.RateTimer)
	case EvRx:
		d.onRx(r, in, out)
	case EvTimer:
		switch in.TimerID {
		case TimerAlpha:
			d.onAlphaTimer(r, in, out)
		case TimerRate:
			r.Add32(qTStage, 1)
			d.rateIncrease(r, in)
			out.ArmTimer(TimerRate, in.Params.RateTimer)
		}
	case EvTimeout:
		// RoCE relies on NACKs; a full timeout means everything in
		// flight is gone — go back to Una.
		if SeqDiff(in.Nxt, in.Una) > 0 {
			out.Rtx, out.RtxPSN = true, in.Una
			out.Schedule = true
			out.ArmTimer(TimerRTO, in.Params.RTOMin)
		}
	}
	rc := sim.Rate(r.U64(qRcLo))
	out.SetRate, out.Rate = true, rc
	out.LogU32x4(uint32(rc/sim.Mbps), r.U32(qAlphaQ16), r.U32(qBCStage), r.U32(qTStage))
}

func (d DCQCN) onRx(r Regs, in *Input, out *Output) {
	p := in.Params
	switch {
	case in.Flags.Has(packet.FlagCNPNotify):
		d.onCNP(r, p, out)
	case in.Flags.Has(packet.FlagNACK):
		// Go-back-N: resend from the NACKed sequence.
		out.Rtx, out.RtxPSN = true, in.Ack
		out.Schedule = true
		out.ArmTimer(TimerRTO, p.RTOMin)
	default:
		d.onAckedBytes(r, in)
		out.Schedule = true
		if SeqDiff(in.Ack, in.Nxt) >= 0 {
			out.StopTimer(TimerRTO)
		} else {
			out.ArmTimer(TimerRTO, p.RTOMin)
		}
	}
}

func (d DCQCN) onCNP(r Regs, p *Params, out *Output) {
	alpha := r.U32(qAlphaQ16)
	alpha = alpha - alpha>>p.DCQCNGShift + alphaQ16One>>p.DCQCNGShift
	if alpha > alphaQ16One {
		alpha = alphaQ16One
	}
	r.SetU32(qAlphaQ16, alpha)
	r.SetU32(qCNPSeen, 1)

	rc := r.U64(qRcLo)
	r.SetU64(qRtLo, rc) // Rt <- Rc
	cut := rc * uint64(alpha) / alphaQ16One / 2
	rc -= cut
	if rc < uint64(p.MinRate) {
		rc = uint64(p.MinRate)
	}
	r.SetU64(qRcLo, rc)

	// A cut restarts both rate-increase state machines.
	r.SetU32(qBCStage, 0)
	r.SetU32(qTStage, 0)
	r.SetU64(qBytesLo, 0)
	out.ArmTimer(TimerAlpha, p.AlphaTimer)
	out.ArmTimer(TimerRate, p.RateTimer)
}

func (d DCQCN) onAlphaTimer(r Regs, in *Input, out *Output) {
	p := in.Params
	if r.U32(qCNPSeen) == 1 {
		// The CNP path already raised alpha this interval.
		r.SetU32(qCNPSeen, 0)
	} else {
		alpha := r.U32(qAlphaQ16)
		r.SetU32(qAlphaQ16, alpha-alpha>>p.DCQCNGShift)
	}
	out.ArmTimer(TimerAlpha, p.AlphaTimer)
}

// onAckedBytes advances the byte counter by the acknowledged bytes (the
// sender-side proxy for transmitted data) and fires byte-stage increases.
func (d DCQCN) onAckedBytes(r Regs, in *Input) {
	acked := SeqDiff(in.Ack, in.Una)
	if acked <= 0 {
		return
	}
	bytes := r.U64(qBytesLo) + uint64(acked)*uint64(in.MTU)
	bc := uint64(in.Params.ByteCounter)
	for bytes >= bc {
		bytes -= bc
		r.Add32(qBCStage, 1)
		d.rateIncrease(r, in)
	}
	r.SetU64(qBytesLo, bytes)
}

// rateIncrease applies one fast-recovery / additive / hyper increase step.
func (d DCQCN) rateIncrease(r Regs, in *Input) {
	p := in.Params
	f := uint32(p.FastRecoverySteps)
	bcs, ts := r.U32(qBCStage), r.U32(qTStage)
	rt := r.U64(qRtLo)
	switch {
	case bcs < f && ts < f:
		// Fast recovery: approach Rt without raising it.
	case bcs > f && ts > f:
		rt += uint64(p.RateHAI)
	default:
		rt += uint64(p.RateAI)
	}
	if rt > uint64(p.LineRate) {
		rt = uint64(p.LineRate)
	}
	// Round up so integer halving converges onto rt exactly; flooring
	// would park Rc one bit/s short of line rate forever.
	rc := (r.U64(qRcLo) + rt + 1) / 2
	if rc > uint64(p.LineRate) {
		rc = uint64(p.LineRate)
	}
	r.SetU64(qRtLo, rt)
	r.SetU64(qRcLo, rc)
}

// OnSlowPath implements Algorithm; DCQCN posts no slow-path events.
func (DCQCN) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}
