package cc

import "marlin/internal/sim"

// HPCC is High Precision Congestion Control (Li et al., SIGCOMM'19), one
// of the INT-consuming algorithms the paper's introduction motivates
// ("many CC algorithms require switches to provide additional network
// information, such as ECN and in-band network telemetry"). Each ACK
// carries the telemetry every hop stamped on the DATA packet; the sender
// computes per-hop utilization
//
//	u_j = qlen_j / (B_j * T)  +  txRate_j / B_j
//
// (queueing normalized by the bandwidth-delay product plus measured link
// utilization), takes U = max_j u_j, and steers its window toward the
// target utilization eta:
//
//	if U >= eta or incStage >= maxStage:  W = Wc * eta/U + Wai  (MI down)
//	else:                                 W = Wc + Wai          (AI probe)
//
// with the reference window Wc and incStage updated once per RTT.
//
// Per-hop txRate needs the previous telemetry snapshot. The 64-byte
// cust-var region holds two hop snapshots — exactly the hop count of the
// tester's topologies; deeper paths fall back to the queueing term alone
// for unsnapshot hops.
//
// Register map (cust-var):
//
//	0    W, Q16 packets
//	1    Wc, Q16 packets
//	2    incStage
//	3    lastUpdateSeq (per-RTT Wc update fence)
//	4-5  hop 0 previous txBytes (u64)
//	6    hop 0 previous timestamp, ns (u32, wraps at 4.3 s)
//	7-8  hop 1 previous txBytes (u64)
//	9    hop 1 previous timestamp, ns
//	10   dupAcks (loss recovery reuses the Reno mechanics)
//	11   state (open / recovery)
//	12   recover PSN
//	13   srtt us
type HPCC struct{}

// HPCC register slots.
const (
	hW = iota
	hWc
	hIncStage
	hLastUpdate
	hHop0TxLo
	hHop0TxHi
	hHop0TS
	hHop1TxLo
	hHop1TxHi
	hHop1TS
	hDupAcks
	hState
	hRecover
	hSrttUs
)

func init() { Register("hpcc", func() Algorithm { return HPCC{} }) }

// Name implements Algorithm.
func (HPCC) Name() string { return "hpcc" }

// Mode implements Algorithm.
func (HPCC) Mode() Mode { return WindowMode }

// FastPathCycles implements Algorithm: per-hop divisions put HPCC near the
// top of the 40-cycle RMW budget (§5.3).
func (HPCC) FastPathCycles() int { return 38 }

// SlowPathCycles implements Algorithm.
func (HPCC) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm.
func (HPCC) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	w := p.HPCCInitWnd
	if w == 0 {
		w = p.MaxCwndPkts()
	}
	r.SetU32(hW, w<<16)
	r.SetU32(hWc, w<<16)
}

// OnEvent implements Algorithm.
func (h HPCC) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		h.onAck(r, in, out)
	case EvTimeout:
		h.onTimeout(r, in, out)
	}
	cwnd := clampCwnd(r.U32(hW)>>16, in.Params)
	out.SetCwnd, out.Cwnd = true, cwnd
	out.LogU32x4(cwnd, r.U32(hIncStage), r.U32(hWc)>>16, uint32(in.Type))
	h.armRTO(r, in, out)
}

func (h HPCC) onAck(r Regs, in *Input, out *Output) {
	acked := SeqDiff(in.Ack, in.Una)
	switch {
	case acked > 0:
		if r.U32(hState) == stateRecovery {
			if SeqLEQ(r.U32(hRecover), in.Ack) {
				r.SetU32(hState, stateOpen)
				r.SetU32(hDupAcks, 0)
			} else {
				out.Rtx, out.RtxPSN = true, in.Ack
			}
		} else {
			r.SetU32(hDupAcks, 0)
		}
		if in.INT != nil && in.INT.NHops > 0 {
			h.react(r, in)
		}
	case acked == 0 && SeqDiff(in.Nxt, in.Una) > 0:
		if dups := r.Add32(hDupAcks, 1); dups == 3 && r.U32(hState) != stateRecovery {
			// Loss: halve W, retransmit, enter recovery.
			w := maxU32(r.U32(hW)>>17, in.Params.MinCwnd)
			r.SetU32(hW, w<<16)
			r.SetU32(hWc, w<<16)
			r.SetU32(hState, stateRecovery)
			r.SetU32(hRecover, in.Nxt)
			out.Rtx, out.RtxPSN = true, in.Una
		}
	}
	out.Schedule = true
	h.updateSrttLocal(r, in)
}

// updateSrttLocal keeps HPCC's own RTT EWMA (slot hSrttUs).
func (HPCC) updateSrttLocal(r Regs, in *Input) {
	if in.ProbedRTT <= 0 {
		return
	}
	rttUs := uint32(in.ProbedRTT / sim.Microsecond)
	if rttUs == 0 {
		rttUs = 1
	}
	srtt := r.U32(hSrttUs)
	if srtt == 0 {
		srtt = rttUs
	} else {
		srtt = uint32(int32(srtt) + (int32(rttUs)-int32(srtt))/8)
	}
	r.SetU32(hSrttUs, srtt)
}

// react runs the HPCC window update from the echoed telemetry.
//
// The hop tx-rate term is averaged across a full RTT window (snapshots
// refresh at the per-RTT Wc boundary): HPCC hardware senders pace their
// window smoothly, so per-ACK telemetry deltas see the paced rate; this
// tester's windowed scheduler emits line-rate bursts instead, and the
// per-RTT average recovers the same utilization signal the paced sender
// would measure.
func (h HPCC) react(r Regs, in *Input) {
	p := in.Params
	baseT := p.HPCCBaseRTT.Seconds()
	if baseT <= 0 {
		baseT = 10e-6
	}
	eta := float64(p.HPCCEtaQ10) / 1024
	boundary := !SeqLT(in.Ack, r.U32(hLastUpdate))

	// U = max over hops.
	maxU := 0.0
	sawRate := false
	for j := 0; j < int(in.INT.NHops); j++ {
		hop := in.INT.Hops[j]
		bw := float64(hop.Rate) // bits/s
		if bw <= 0 {
			continue
		}
		u := float64(hop.QueueBytes) * 8 / (bw * baseT)
		if j < 2 {
			if term, ok := h.txRateTerm(r, j, hop.TxBytes, hop.TS, bw, boundary); ok {
				u += term
				sawRate = true
			}
		}
		if u > maxU {
			maxU = u
		}
	}
	if !sawRate && maxU == 0 {
		// First RTT: snapshots primed, no usable signal yet.
		if boundary {
			r.SetU32(hLastUpdate, in.Nxt)
		}
		return
	}

	w := float64(r.U32(hW)) / 65536
	wc := float64(r.U32(hWc)) / 65536
	wai := float64(p.HPCCWaiQ16) / 65536
	maxStage := uint32(p.HPCCMaxStage)

	if maxU >= eta || r.U32(hIncStage) >= maxStage {
		if maxU > 0 {
			w = wc*eta/maxU + wai
		}
		if boundary {
			r.SetU32(hIncStage, 0)
			r.SetU32(hWc, q16(w, p))
		}
	} else {
		w = wc + wai
		if boundary {
			r.Add32(hIncStage, 1)
			r.SetU32(hWc, q16(w, p))
		}
	}
	if boundary {
		r.SetU32(hLastUpdate, in.Nxt)
	}
	r.SetU32(hW, q16(w, p))
}

// txRateTerm computes txRate/B for a snapshot-tracked hop, averaged since
// the last per-RTT snapshot; refresh advances the snapshot (at window
// boundaries).
func (HPCC) txRateTerm(r Regs, hop int, txBytes uint64, ts sim.Time, bw float64, refresh bool) (float64, bool) {
	loSlot, tsSlot := hHop0TxLo, hHop0TS
	if hop == 1 {
		loSlot, tsSlot = hHop1TxLo, hHop1TS
	}
	prevTx := r.U64(loSlot)
	prevTSns := r.U32(tsSlot)
	nowNs := uint32(uint64(ts) / uint64(sim.Nanosecond))
	primed := prevTx != 0 && prevTSns != 0
	if refresh || !primed {
		r.SetU64(loSlot, txBytes)
		r.SetU32(tsSlot, nowNs)
	}
	if !primed || nowNs <= prevTSns || txBytes <= prevTx {
		return 0, false
	}
	dt := float64(nowNs-prevTSns) * 1e-9
	rate := float64(txBytes-prevTx) * 8 / dt
	return rate / bw, true
}

func (h HPCC) onTimeout(r Regs, in *Input, out *Output) {
	if SeqDiff(in.Nxt, in.Una) <= 0 {
		return
	}
	w := maxU32(in.Params.MinCwnd, 1)
	r.SetU32(hW, w<<16)
	r.SetU32(hWc, w<<16)
	r.SetU32(hState, stateOpen)
	r.SetU32(hDupAcks, 0)
	out.Rtx, out.RtxPSN = true, in.Una
	out.Schedule = true
}

func (HPCC) armRTO(r Regs, in *Input, out *Output) {
	ackAll := in.Type == EvRx && SeqDiff(in.Ack, in.Nxt) >= 0
	if SeqDiff(in.Nxt, in.Una) <= 0 || ackAll {
		out.StopTimer(TimerRTO)
		return
	}
	rto := in.Params.RTOMin
	if srtt := r.U32(hSrttUs); srtt > 0 {
		if est := sim.Duration(srtt) * 4 * sim.Microsecond; est > rto {
			rto = est
		}
	}
	out.ArmTimer(TimerRTO, rto)
}

// OnSlowPath implements Algorithm; HPCC runs entirely on the fast path.
func (HPCC) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}

func q16(w float64, p *Params) uint32 {
	if w < float64(p.MinCwnd) {
		w = float64(p.MinCwnd)
	}
	if max := float64(p.MaxCwndPkts()); w > max {
		w = max
	}
	return uint32(w * 65536)
}
