package cc

import (
	"math"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Swift is Google's delay-target congestion control (Kumar et al.,
// SIGCOMM'20), cited by the paper's introduction among the algorithms a
// tester must be able to emulate. It steers end-to-end RTT toward a
// target that scales with the inverse square root of the window (so many
// small flows share a bounded queue):
//
//	target = BaseTarget + Range / sqrt(cwnd)
//	rtt <= target: cwnd += AI * acked / cwnd      (additive increase)
//	rtt  > target: cwnd *= 1 - Beta*(rtt-target)/rtt, at most once per
//	               window, floored at 1 - MaxMDF  (multiplicative decrease)
//
// Loss handling reuses the Reno fast-retransmit machinery. Like the
// paper's §2.1 argument for Timely, Swift depends on the FPGA's precise
// prb-rtt timestamps; host jitter would swamp its delay signal.
//
// Register map (cust-var): slots 0..6 are the shared Reno loss-recovery
// block; Swift adds:
//
//	7  decrease fence PSN (one MD per window)
type Swift struct{}

const swDecreaseEnd = 7

func init() { Register("swift", func() Algorithm { return Swift{} }) }

// Name implements Algorithm.
func (Swift) Name() string { return "swift" }

// Mode implements Algorithm.
func (Swift) Mode() Mode { return WindowMode }

// FastPathCycles implements Algorithm: the square root comes from a
// lookup table like Cubic's cube root, but over a far smaller domain.
func (Swift) FastPathCycles() int { return 18 }

// SlowPathCycles implements Algorithm.
func (Swift) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm.
func (Swift) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	w := p.SwiftInitWnd
	if w == 0 {
		w = 16
	}
	r.SetU32(rCwndQ16, w<<16)
	r.SetU32(rSsthresh, p.MaxCwndPkts()) // no slow-start phase: delay-driven
}

// OnEvent implements Algorithm.
func (s Swift) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		s.onAck(r, in, out)
	case EvTimeout:
		renoOnTimeout(r, in, out)
	}
	cwnd := clampCwnd(r.U32(rCwndQ16)>>16, in.Params)
	out.SetCwnd, out.Cwnd = true, cwnd
	targetUs := uint32(s.target(in.Params, float64(cwnd)) / sim.Microsecond)
	out.LogU32x4(cwnd, targetUs, r.U32(rSrttUs), uint32(in.Type))
	armRTO(r, in, out)
}

// target computes the delay target for the current window.
func (Swift) target(p *Params, cwnd float64) sim.Duration {
	base := p.SwiftBaseTarget
	if base <= 0 {
		base = sim.Micros(15)
	}
	rng := p.SwiftRange
	if rng <= 0 {
		rng = sim.Micros(60)
	}
	if cwnd < 1 {
		cwnd = 1
	}
	return base + sim.Duration(float64(rng)/math.Sqrt(cwnd))
}

func (s Swift) onAck(r Regs, in *Input, out *Output) {
	acked := SeqDiff(in.Ack, in.Una)
	switch {
	case acked > 0:
		if r.U32(rState) == stateRecovery {
			renoNewAck(r, in, out, uint32(acked))
		} else {
			r.SetU32(rDupAcks, 0)
			s.delayControl(r, in, uint32(acked))
		}
	case acked == 0 && SeqDiff(in.Nxt, in.Una) > 0:
		renoDupAck(r, in, out)
	}
	if in.Flags.Has(packet.FlagNACK) {
		out.Rtx, out.RtxPSN = true, in.Ack
	}
	out.Schedule = true
	updateSrtt(r, in)
}

func (s Swift) delayControl(r Regs, in *Input, acked uint32) {
	if in.ProbedRTT <= 0 {
		return
	}
	p := in.Params
	cwndQ := r.U32(rCwndQ16)
	cwnd := float64(cwndQ) / 65536
	target := s.target(p, cwnd)
	if in.ProbedRTT <= target {
		// Additive increase: AI packets per window of ACKs.
		ai := float64(p.SwiftAIQ16) / 65536
		if ai == 0 {
			ai = 1
		}
		cwnd += ai * float64(acked) / math.Max(cwnd, 1)
	} else {
		// Multiplicative decrease, once per window of data.
		if SeqLT(in.Ack, r.U32(swDecreaseEnd)) {
			return
		}
		beta := float64(p.SwiftBetaQ10) / 1024
		if beta == 0 {
			beta = 0.8
		}
		maxMDF := float64(p.SwiftMaxMDFQ10) / 1024
		if maxMDF == 0 {
			maxMDF = 0.5
		}
		over := float64(in.ProbedRTT-target) / float64(in.ProbedRTT)
		factor := 1 - beta*over
		if factor < 1-maxMDF {
			factor = 1 - maxMDF
		}
		cwnd *= factor
		r.SetU32(swDecreaseEnd, in.Nxt)
	}
	if cwnd < float64(p.MinCwnd) {
		cwnd = float64(p.MinCwnd)
	}
	if max := float64(p.MaxCwndPkts()); cwnd > max {
		cwnd = max
	}
	r.SetU32(rCwndQ16, uint32(cwnd*65536))
}

// OnSlowPath implements Algorithm; Swift runs on the fast path.
func (Swift) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}
