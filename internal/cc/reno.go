package cc

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Reno is the classic window-based TCP Reno/NewReno module: slow start,
// congestion avoidance, fast retransmit on three duplicate ACKs, NewReno
// partial-ACK retransmission during fast recovery, and RTO fallback. It is
// the simplest of the paper's three reference modules (Table 4: 156 LoC,
// 2 clock cycles).
//
// Register map (cust-var):
//
//	0  cwnd, Q16 packets (source of truth; the intrinsic integer window
//	   is derived from it)
//	1  ssthresh, packets
//	2  duplicate-ACK counter
//	3  state: 0 = open, 1 = fast recovery
//	4  recover PSN (fast-recovery exit point)
//	5  cwr end PSN (one ECN reduction per window)
//	6  srtt, microseconds (EWMA, for RTO)
type Reno struct{}

// Reno register slots.
const (
	rCwndQ16 = iota
	rSsthresh
	rDupAcks
	rState
	rRecover
	rCwrEnd
	rSrttUs
)

// Reno states.
const (
	stateOpen     = 0
	stateRecovery = 1
)

func init() { Register("reno", func() Algorithm { return Reno{} }) }

// Name implements Algorithm.
func (Reno) Name() string { return "reno" }

// Mode implements Algorithm.
func (Reno) Mode() Mode { return WindowMode }

// FastPathCycles implements Algorithm (Table 4).
func (Reno) FastPathCycles() int { return 2 }

// SlowPathCycles implements Algorithm; Reno has no Slow Path logic.
func (Reno) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm.
func (Reno) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	r.SetU32(rCwndQ16, p.InitCwnd<<16)
	r.SetU32(rSsthresh, p.Ssthresh)
}

// OnEvent implements Algorithm.
func (Reno) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		renoOnAck(r, in, out)
	case EvTimeout:
		renoOnTimeout(r, in, out)
	}
	cwnd := clampCwnd(r.U32(rCwndQ16)>>16, in.Params)
	out.SetCwnd, out.Cwnd = true, cwnd
	out.LogU32x4(cwnd, r.U32(rSsthresh), r.U32(rDupAcks), uint32(in.Type))
	armRTO(r, in, out)
}

func renoOnAck(r Regs, in *Input, out *Output) {
	acked := SeqDiff(in.Ack, in.Una)
	switch {
	case acked > 0:
		renoNewAck(r, in, out, uint32(acked))
	case acked == 0 && SeqDiff(in.Nxt, in.Una) > 0:
		renoDupAck(r, in, out)
	}
	if in.Flags.Has(packet.FlagECNEcho) {
		renoECE(r, in)
	}
	out.Schedule = true
	updateSrtt(r, in)
}

func renoNewAck(r Regs, in *Input, out *Output, acked uint32) {
	if r.U32(rState) == stateRecovery {
		if SeqLEQ(r.U32(rRecover), in.Ack) {
			// Full ACK: leave recovery with the deflated window.
			r.SetU32(rState, stateOpen)
			r.SetU32(rDupAcks, 0)
			r.SetU32(rCwndQ16, maxU32(r.U32(rSsthresh), in.Params.MinCwnd)<<16)
		} else {
			// NewReno partial ACK: the next hole is lost too.
			out.Rtx, out.RtxPSN = true, in.Ack
		}
		return
	}
	r.SetU32(rDupAcks, 0)
	growWindow(r, in.Params, acked)
}

// growWindow applies slow start below ssthresh and 1/cwnd-per-ACK
// congestion avoidance above it.
func growWindow(r Regs, p *Params, acked uint32) {
	cwndQ := r.U32(rCwndQ16)
	ssthresh := r.U32(rSsthresh)
	for i := uint32(0); i < acked; i++ {
		cwnd := cwndQ >> 16
		if cwnd >= p.MaxCwndPkts() {
			break
		}
		if cwnd < ssthresh {
			cwndQ += 1 << 16
		} else {
			cwndQ += (1 << 16) / maxU32(cwnd, 1)
		}
	}
	r.SetU32(rCwndQ16, cwndQ)
}

func renoDupAck(r Regs, in *Input, out *Output) {
	dups := r.Add32(rDupAcks, 1)
	if r.U32(rState) == stateRecovery {
		// Window inflation: each dup ACK signals a departure.
		r.SetU32(rCwndQ16, r.U32(rCwndQ16)+1<<16)
		return
	}
	if dups == 3 {
		flight := uint32(SeqDiff(in.Nxt, in.Una))
		ss := maxU32(flight/2, 2)
		r.SetU32(rSsthresh, ss)
		r.SetU32(rCwndQ16, (ss+3)<<16)
		r.SetU32(rState, stateRecovery)
		r.SetU32(rRecover, in.Nxt)
		out.Rtx, out.RtxPSN = true, in.Una
	}
}

// renoECE applies the RFC 3168 response: at most one multiplicative
// decrease per window of data.
func renoECE(r Regs, in *Input) {
	if r.U32(rState) == stateRecovery || SeqLT(in.Ack, r.U32(rCwrEnd)) {
		return
	}
	cwnd := r.U32(rCwndQ16) >> 16
	ss := maxU32(cwnd/2, in.Params.MinCwnd)
	r.SetU32(rSsthresh, ss)
	r.SetU32(rCwndQ16, ss<<16)
	r.SetU32(rCwrEnd, in.Nxt)
}

func renoOnTimeout(r Regs, in *Input, out *Output) {
	flight := uint32(SeqDiff(in.Nxt, in.Una))
	if flight == 0 {
		return
	}
	r.SetU32(rSsthresh, maxU32(flight/2, 2))
	r.SetU32(rCwndQ16, in.Params.MinCwnd<<16)
	if legacyRTOStall {
		// Mutation-test hook (see testhook.go): the historical stall.
		r.SetU32(rState, stateOpen)
		r.SetU32(rDupAcks, 0)
		out.Rtx, out.RtxPSN = true, in.Una
		out.Schedule = true
		return
	}
	// Everything in flight is presumed lost: enter loss recovery with the
	// exit point at Nxt so each partial ACK retransmits the next hole
	// (NewReno). Returning to stateOpen here would strand the flow after a
	// multi-packet loss — with Nxt-Una still far beyond cwnd no new data
	// goes out to draw dup ACKs, so every hole would cost a further RTO.
	r.SetU32(rState, stateRecovery)
	r.SetU32(rRecover, in.Nxt)
	r.SetU32(rDupAcks, 0)
	out.Rtx, out.RtxPSN = true, in.Una
	out.Schedule = true
}

// OnSlowPath implements Algorithm; Reno posts no slow-path events.
func (Reno) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}

// updateSrtt keeps a 1/8-gain RTT EWMA in microseconds for RTO sizing.
func updateSrtt(r Regs, in *Input) {
	if in.ProbedRTT <= 0 {
		return
	}
	rttUs := uint32(in.ProbedRTT / sim.Microsecond)
	if rttUs == 0 {
		rttUs = 1
	}
	srtt := r.U32(rSrttUs)
	if srtt == 0 {
		srtt = rttUs
	} else {
		srtt = uint32(int32(srtt) + (int32(rttUs)-int32(srtt))/8)
	}
	r.SetU32(rSrttUs, srtt)
}

// armRTO (re)arms the retransmission timer while data is outstanding and
// stops it when the flow goes idle.
func armRTO(r Regs, in *Input, out *Output) {
	ackAll := in.Type == EvRx && SeqDiff(in.Ack, in.Nxt) >= 0
	if SeqDiff(in.Nxt, in.Una) <= 0 || ackAll {
		out.StopTimer(TimerRTO)
		return
	}
	rto := in.Params.RTOMin
	if srtt := r.U32(rSrttUs); srtt > 0 {
		if est := sim.Duration(srtt) * 4 * sim.Microsecond; est > rto {
			rto = est
		}
	}
	out.ArmTimer(TimerRTO, rto)
}

func clampCwnd(cwnd uint32, p *Params) uint32 {
	if cwnd < p.MinCwnd {
		return p.MinCwnd
	}
	if maxW := p.MaxCwndPkts(); cwnd > maxW {
		return maxW
	}
	return cwnd
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
