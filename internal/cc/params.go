package cc

import (
	"fmt"

	"marlin/internal/sim"
)

// Params is the CC parameter block the control plane writes to FPGA BRAM
// before a test starts (§3.2: "CC parameters are sent to the FPGA's BRAM
// via drivers"). One block serves every algorithm; unused fields are
// ignored by algorithms that do not consume them.
type Params struct {
	// MTU is the DATA frame size in bytes.
	MTU int
	// LineRate is the per-port line rate flows are bound to.
	LineRate sim.Rate

	// InitCwnd is the initial congestion window in packets.
	InitCwnd uint32
	// Ssthresh is the initial slow-start threshold in packets.
	Ssthresh uint32
	// MinCwnd floors the window.
	MinCwnd uint32
	// MaxCwnd caps the window (0 = 65535, the 16-bit register limit).
	MaxCwnd uint32
	// RTOMin floors the retransmission timer.
	RTOMin sim.Duration

	// DCTCPGShift sets the DCTCP gain g = 2^-DCTCPGShift (paper default
	// g = 1/16).
	DCTCPGShift uint
	// AlphaBits selects the fixed-point width of DCTCP's alpha: 16 for
	// the fast-path-only variant, 32 when the Slow Path performs the
	// division (§5.4: "increasing division and alpha precision from
	// 16-bit to 32-bit").
	AlphaBits int
	// UseSlowPath routes DCTCP's alpha update through the Slow Path.
	UseSlowPath bool

	// DCQCN parameters, named after the NVIDIA configuration guide the
	// paper cites for its §7.3 setup.
	DCQCNGShift       uint         // alpha gain g = 2^-shift
	AlphaTimer        sim.Duration // alpha-decay timer period
	RateTimer         sim.Duration // rate-increase timer period
	ByteCounter       int64        // bytes per rate-increase byte-stage
	RateAI            sim.Rate     // additive-increase step
	RateHAI           sim.Rate     // hyper-increase step
	MinRate           sim.Rate     // rate floor
	FastRecoverySteps int          // stages before additive increase
	CNPInterval       sim.Duration // receiver-side min CNP spacing

	// CubicC and CubicBetaQ10 configure Cubic: C scaled by 2^10 and
	// beta in Q10 (multiplicative decrease factor).
	CubicCQ10    uint32
	CubicBetaQ10 uint32

	// Timely parameters (Mittal et al., SIGMOD'15 defaults scaled to the
	// simulated RTTs).
	TimelyTLow      sim.Duration
	TimelyTHigh     sim.Duration
	TimelyAddStep   sim.Rate
	TimelyBetaQ10   uint32
	TimelyEwmaShift uint

	// CBRRate pins the constant-bit-rate module's rate (0 = line rate).
	CBRRate sim.Rate

	// Swift parameters (Kumar et al., SIGCOMM'20).
	SwiftBaseTarget sim.Duration // base delay target
	SwiftRange      sim.Duration // flow-scaling range added as Range/sqrt(cwnd)
	SwiftAIQ16      uint32       // additive increase per window, Q16 packets
	SwiftBetaQ10    uint32       // multiplicative-decrease gain
	SwiftMaxMDFQ10  uint32       // maximum decrease fraction per window
	SwiftInitWnd    uint32       // initial window (0 = 16)

	// HPCC parameters (Li et al., SIGCOMM'19).
	HPCCEtaQ10   uint32       // target utilization eta in Q10 (973 = 95%)
	HPCCMaxStage int          // additive-increase stages per MI epoch
	HPCCWaiQ16   uint32       // additive-increase step, Q16 packets
	HPCCBaseRTT  sim.Duration // base RTT T used to normalize queueing
	HPCCInitWnd  uint32       // initial window in packets (0 = BDP cap)
}

// DefaultParams returns the parameter block used throughout the evaluation
// unless an experiment overrides it: MTU 1024 (RoCE default under Ethernet
// MTU, §3.3), 100 Gbps ports, and DCQCN constants from the NVIDIA guidance
// the paper references.
func DefaultParams(line sim.Rate, mtu int) Params {
	return Params{
		MTU:      mtu,
		LineRate: line,

		InitCwnd: 1,
		Ssthresh: 64,
		MinCwnd:  1,
		MaxCwnd:  0,
		RTOMin:   sim.Micros(500),

		DCTCPGShift: 4, // g = 1/16
		AlphaBits:   32,
		UseSlowPath: true,

		DCQCNGShift:       8, // g = 1/256
		AlphaTimer:        sim.Micros(55),
		RateTimer:         sim.Micros(300),
		ByteCounter:       10 << 20,
		RateAI:            5 * sim.Mbps * 8, // 40 Mbps
		RateHAI:           50 * sim.Mbps * 8,
		MinRate:           40 * sim.Mbps,
		FastRecoverySteps: 5,
		CNPInterval:       sim.Micros(4),

		CubicCQ10:    410, // C = 0.4
		CubicBetaQ10: 717, // beta = 0.7

		TimelyTLow:      sim.Micros(50),
		TimelyTHigh:     sim.Micros(500),
		TimelyAddStep:   10 * sim.Mbps,
		TimelyBetaQ10:   819, // 0.8
		TimelyEwmaShift: 3,

		SwiftBaseTarget: sim.Micros(15),
		SwiftRange:      sim.Micros(60),
		SwiftAIQ16:      1 << 16, // 1 packet per window
		SwiftBetaQ10:    819,     // 0.8
		SwiftMaxMDFQ10:  512,     // 0.5
		SwiftInitWnd:    16,

		HPCCEtaQ10:   973, // 95%
		HPCCMaxStage: 5,
		HPCCWaiQ16:   1 << 15, // half a packet per update
		HPCCBaseRTT:  sim.Micros(10),
		HPCCInitWnd:  128,
	}
}

// ScaleDCQCNTime compresses DCQCN's recovery timescale by the given factor
// for short simulated horizons: timers and the byte counter shrink while
// the increase steps grow, preserving the control law's shape. The paper's
// §7.3/§7.5 runs span up to 180 wall-clock seconds; the experiment
// harnesses run millisecond horizons and scale DCQCN accordingly
// (documented per experiment in EXPERIMENTS.md).
func (p *Params) ScaleDCQCNTime(factor float64) {
	if factor <= 1 {
		return
	}
	p.AlphaTimer = sim.Duration(float64(p.AlphaTimer) / factor)
	p.RateTimer = sim.Duration(float64(p.RateTimer) / factor)
	if p.AlphaTimer < sim.Microsecond {
		p.AlphaTimer = sim.Microsecond
	}
	if p.RateTimer < 2*sim.Microsecond {
		p.RateTimer = 2 * sim.Microsecond
	}
	p.ByteCounter = int64(float64(p.ByteCounter) / factor)
	if p.ByteCounter < 64<<10 {
		p.ByteCounter = 64 << 10
	}
	p.RateAI = sim.Rate(float64(p.RateAI) * factor)
	p.RateHAI = sim.Rate(float64(p.RateHAI) * factor)
}

// Validate rejects parameter blocks a control plane must not deploy.
func (p *Params) Validate() error {
	switch {
	case p.MTU < 64 || p.MTU > 9216:
		return fmt.Errorf("cc: MTU %d outside [64, 9216]", p.MTU)
	case p.LineRate <= 0:
		return fmt.Errorf("cc: non-positive line rate %v", p.LineRate)
	case p.InitCwnd < 1:
		return fmt.Errorf("cc: initial cwnd %d < 1", p.InitCwnd)
	case p.MinCwnd < 1:
		return fmt.Errorf("cc: min cwnd %d < 1", p.MinCwnd)
	case p.AlphaBits != 16 && p.AlphaBits != 32:
		return fmt.Errorf("cc: AlphaBits %d must be 16 or 32", p.AlphaBits)
	case p.RTOMin <= 0:
		return fmt.Errorf("cc: non-positive RTOMin")
	}
	return nil
}

// MaxCwndPkts returns the effective window cap.
func (p *Params) MaxCwndPkts() uint32 {
	if p.MaxCwnd == 0 {
		return 65535
	}
	return p.MaxCwnd
}
