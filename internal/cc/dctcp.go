package cc

import "marlin/internal/packet"

// DCTCP is the Data Center TCP module (Alizadeh et al., SIGCOMM'10): Reno
// mechanics for loss plus a fraction-of-marked-packets estimator alpha that
// scales the multiplicative decrease on ECN. It is the paper's showcase for
// the Slow Path: the per-RTT alpha division runs there with 32-bit
// precision, while the 16-bit fast-path variant exists for the ablation
// (§5.4: "using the Slow Path to update alpha in DCTCP allows increasing
// division and alpha precision from 16-bit to 32-bit").
//
// Register map (cust-var) — slots 0..6 match Reno, then:
//
//	7   alpha observation-window end PSN
//	8   acked packets in current observation window
//	9   CE-marked packets in current observation window
//	10  cwr end PSN (one alpha-based reduction per window)
//	11  snapshot of acked counter handed to the Slow Path
//	12  snapshot of CE counter handed to the Slow Path
//
// Slow-Path map (slwpth-var):
//
//	0  alpha, fixed point (Q10 when AlphaBits=16, Q20 when 32)
type DCTCP struct{}

// DCTCP-specific register slots (7+ to stay clear of the Reno slots it
// reuses).
const (
	dWndEnd = iota + 7
	dAcked
	dMarked
	dCwrEnd
	dSnapAcked
	dSnapMarked
)

// Slow-path slots.
const sAlpha = 0

// slowAlphaUpdate is the Slow Path event code for the per-RTT alpha EWMA.
const slowAlphaUpdate uint8 = 1

func init() { Register("dctcp", func() Algorithm { return DCTCP{} }) }

// Name implements Algorithm.
func (DCTCP) Name() string { return "dctcp" }

// Mode implements Algorithm.
func (DCTCP) Mode() Mode { return WindowMode }

// PreferredECT implements ECTPreferer: DCTCP is a scalable control, so its
// flows carry ECT(1) and land in a dual-queue AQM's low-latency band.
func (DCTCP) PreferredECT() packet.ECT { return packet.ECT1 }

// FastPathCycles implements Algorithm (Table 4: DCTCP = 24 cycles; the
// critical path holds one 16-bit division and two 32-bit multiplications).
func (DCTCP) FastPathCycles() int { return 24 }

// SlowPathCycles implements Algorithm: the 32-bit division plus EWMA fits
// comfortably in the hundreds of cycles one RTT affords (§5.4).
func (DCTCP) SlowPathCycles() int { return 40 }

// InitFlow implements Algorithm.
func (DCTCP) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	r.SetU32(rCwndQ16, p.InitCwnd<<16)
	r.SetU32(rSsthresh, p.Ssthresh)
	// Alpha starts at 0 like the reference implementations (ns-3,
	// Linux); the first marked window raises it by g.
	RegsOf(slow).SetU32(sAlpha, 0)
}

// alphaOne returns the fixed-point representation of 1.0 for the
// configured precision.
func alphaOne(p *Params) uint32 {
	if p.AlphaBits == 16 {
		return 1 << 10
	}
	return 1 << 20
}

// OnEvent implements Algorithm.
func (d DCTCP) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		d.onAck(r, in, out)
	case EvTimeout:
		renoOnTimeout(r, in, out)
	}
	cwnd := clampCwnd(r.U32(rCwndQ16)>>16, in.Params)
	out.SetCwnd, out.Cwnd = true, cwnd
	out.LogU32x4(cwnd, RegsOf(in.Slow).U32(sAlpha), r.U32(rSsthresh), uint32(in.Type))
	armRTO(r, in, out)
}

func (d DCTCP) onAck(r Regs, in *Input, out *Output) {
	acked := SeqDiff(in.Ack, in.Una)
	if acked > 0 {
		// Count packets and marks for the alpha estimator.
		r.Add32(dAcked, uint32(acked))
		if in.Flags.Has(packet.FlagECNEcho) {
			r.Add32(dMarked, uint32(acked))
		}
		d.maybeEndWindow(r, in, out)
		if in.Flags.Has(packet.FlagECNEcho) {
			d.reduceOnECE(r, in)
		}
		renoNewAck(r, in, out, uint32(acked))
	} else if acked == 0 && SeqDiff(in.Nxt, in.Una) > 0 {
		renoDupAck(r, in, out)
	}
	out.Schedule = true
	updateSrtt(r, in)
}

// maybeEndWindow closes the per-RTT observation window when the
// acknowledgement passes its end and triggers the alpha update — on the
// Slow Path when enabled, inline (16-bit arithmetic) otherwise.
func (d DCTCP) maybeEndWindow(r Regs, in *Input, out *Output) {
	if SeqLT(in.Ack, r.U32(dWndEnd)) {
		return
	}
	acked, marked := r.U32(dAcked), r.U32(dMarked)
	r.SetU32(dAcked, 0)
	r.SetU32(dMarked, 0)
	r.SetU32(dWndEnd, in.Nxt)
	if acked == 0 {
		return
	}
	if in.Params.UseSlowPath {
		r.SetU32(dSnapAcked, acked)
		r.SetU32(dSnapMarked, marked)
		out.SlowPath, out.SlowPathCode = true, slowAlphaUpdate
		return
	}
	// Fast-path-only variant: the division must fit the 16-bit divider,
	// so counters and alpha are truncated to Q10 (§5.4 ablation).
	slow := RegsOf(in.Slow)
	one := alphaOne(in.Params)
	a16, m16 := acked&0xFFFF, marked&0xFFFF
	var frac uint32
	if a16 > 0 {
		frac = (m16 * one) / a16
	}
	slow.SetU32(sAlpha, dctcpEwma(slow.U32(sAlpha), frac, in.Params.DCTCPGShift))
}

// OnSlowPath implements Algorithm: the 32-bit alpha EWMA.
func (DCTCP) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {
	if code != slowAlphaUpdate {
		return
	}
	r, s := RegsOf(cust), RegsOf(slow)
	acked, marked := r.U32(dSnapAcked), r.U32(dSnapMarked)
	if acked == 0 {
		return
	}
	one := alphaOne(in.Params)
	frac := uint32(uint64(marked) * uint64(one) / uint64(acked))
	s.SetU32(sAlpha, dctcpEwma(s.U32(sAlpha), frac, in.Params.DCTCPGShift))
}

// dctcpEwma computes alpha <- (1-g)*alpha + g*frac with g = 2^-shift.
func dctcpEwma(alpha, frac uint32, shift uint) uint32 {
	return alpha - alpha>>shift + frac>>shift
}

// reduceOnECE applies cwnd <- cwnd * (1 - alpha/2), at most once per
// window of data.
func (d DCTCP) reduceOnECE(r Regs, in *Input) {
	if r.U32(rState) == stateRecovery || SeqLT(in.Ack, r.U32(dCwrEnd)) {
		return
	}
	alpha := RegsOf(in.Slow).U32(sAlpha)
	one := alphaOne(in.Params)
	cwndQ := uint64(r.U32(rCwndQ16))
	cut := cwndQ * uint64(alpha) / uint64(one) / 2
	newQ := uint32(cwndQ - cut)
	if minQ := in.Params.MinCwnd << 16; newQ < minQ {
		newQ = minQ
	}
	r.SetU32(rCwndQ16, newQ)
	r.SetU32(rSsthresh, maxU32(newQ>>16, in.Params.MinCwnd))
	r.SetU32(dCwrEnd, in.Nxt)
}
