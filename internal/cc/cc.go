// Package cc implements Marlin's congestion-control algorithm modules.
//
// The package mirrors the HLS programming interface of the paper's §5.4 and
// Table 3: a CC module is a pure event handler that receives an immutable
// intrinsic-variable struct (event type, PSN, window/rate, flags, probed
// RTT, timestamp), a 64-byte user-defined state region ("cust-var"), and a
// read-only view of Slow-Path-owned variables ("slwpth-var"), and writes an
// output struct (new window or rate, retransmission PSN, timer resets,
// Slow-Path trigger events, and a 16-byte log record).
//
// Algorithms are written against fixed-width register slots in the 64-byte
// region — the same discipline an HLS module obeys when its state must fit
// the per-flow BRAM word — and declare their fast-path clock-cycle cost so
// the FPGA model can charge execution time (Table 4).
package cc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Mode says whether an algorithm is window-based or rate-based; the FPGA
// scheduler consults it to decide eligibility (§5.2).
type Mode int

// Algorithm modes.
const (
	WindowMode Mode = iota
	RateMode
)

func (m Mode) String() string {
	if m == RateMode {
		return "rate"
	}
	return "window"
}

// EventType is the evt-typ intrinsic input (Table 3): what woke the module.
type EventType uint8

// Event types.
const (
	// EvRx is the reception of an INFO packet (ACK, ECN echo, NACK, or
	// CNP — the Flags field disambiguates).
	EvRx EventType = iota + 1
	// EvTimeout is a retransmission-timer expiry.
	EvTimeout
	// EvTimer is an algorithm-owned periodic timer (DCQCN's alpha and
	// rate-increase timers); TimerID says which.
	EvTimer
	// EvStart fires once when the control plane activates the flow; the
	// module arms its timers and requests its first scheduling event.
	EvStart
)

// Timer identifiers used with Output timer requests and EvTimer events.
const (
	TimerRTO uint8 = iota
	TimerAlpha
	TimerRate
	numTimers
)

// NumTimers is the number of per-flow hardware timers the event generator
// provisions.
const NumTimers = int(numTimers)

// StateSize is the size of the cust-var region: "The customized variable,
// with a total length of 64B, is customized by the user and stores the
// parameters of CC" (§5.4).
const StateSize = 64

// State is the per-flow user-defined CC state, stored in FPGA BRAM.
type State [StateSize]byte

// Regs provides HLS-style fixed-slot access to a 64-byte state region:
// sixteen 32-bit registers. Algorithms address state by named slot
// constants, which keeps every algorithm honest about its BRAM footprint.
type Regs struct{ b *State }

// RegsOf wraps a state region.
func RegsOf(s *State) Regs { return Regs{s} }

// U32 reads register slot i (0..15).
func (r Regs) U32(i int) uint32 {
	return binary.LittleEndian.Uint32(r.b[i*4 : i*4+4])
}

// SetU32 writes register slot i.
func (r Regs) SetU32(i int, v uint32) {
	binary.LittleEndian.PutUint32(r.b[i*4:i*4+4], v)
}

// Add32 adds delta to slot i and returns the new value (a modelled RMW).
func (r Regs) Add32(i int, delta uint32) uint32 {
	v := r.U32(i) + delta
	r.SetU32(i, v)
	return v
}

// U64 reads slots i and i+1 as one 64-bit register.
func (r Regs) U64(i int) uint64 {
	return binary.LittleEndian.Uint64(r.b[i*4 : i*4+8])
}

// SetU64 writes slots i and i+1 as one 64-bit register.
func (r Regs) SetU64(i int, v uint64) {
	binary.LittleEndian.PutUint64(r.b[i*4:i*4+8], v)
}

// Input is the read-only intrinsic-variable struct handed to the module
// (Table 3, INPUT rows).
type Input struct {
	// Type is the triggering event.
	Type EventType
	// TimerID identifies the timer for EvTimer events.
	TimerID uint8
	// PSN is the packet sequence number carried by the INFO packet.
	PSN uint32
	// Ack is the cumulative acknowledgement carried by the INFO packet.
	Ack uint32
	// Una is the PSN of the next unacknowledged packet.
	Una uint32
	// Nxt is the PSN of the next packet to be sent.
	Nxt uint32
	// Cwnd is the current congestion window in packets (window mode).
	Cwnd uint32
	// Rate is the current sending rate (rate mode).
	Rate sim.Rate
	// Flags carries ack/ecn/nack/cnp bits from the INFO packet.
	Flags packet.Flags
	// ProbedRTT is the measured round-trip time for this event, or zero.
	ProbedRTT sim.Duration
	// Timestamp is when the event was received (322 MHz clock domain).
	Timestamp sim.Time
	// MTU is the DATA frame size configured for the test.
	MTU int
	// INT is the echoed in-band telemetry stack, when the tested network
	// stamps it (INT-based CC such as HPCC).
	INT *packet.INTRecord
	// Params exposes the test's CC parameter block (deployed to BRAM by
	// the control plane before the test starts).
	Params *Params
	// Cust is the module's read-write 64-byte state.
	Cust *State
	// Slow is a read-only snapshot of Slow-Path-owned variables.
	Slow *State
}

// TimerReq asks the event generator to (re)arm a per-flow timer.
type TimerReq struct {
	ID    uint8
	After sim.Duration
}

// Output is the write-only result struct (Table 3, OUTPUT rows). A single
// Output value is reused across invocations; Reset clears it.
type Output struct {
	// SetCwnd/Cwnd install a new congestion window (packets).
	SetCwnd bool
	Cwnd    uint32
	// SetRate/Rate install a new sending rate.
	SetRate bool
	Rate    sim.Rate
	// Rtx requests retransmission of RtxPSN ahead of new data.
	Rtx    bool
	RtxPSN uint32
	// Schedule asks the scheduler to (re)activate this flow — the
	// "generate a scheduling event" output of §5.1.
	Schedule bool
	// Timers are (re)arm requests; StopTimers cancels timers by ID.
	Timers     [NumTimers]TimerReq
	NumTimers  int
	StopTimers [NumTimers]uint8
	NumStops   int
	// SlowPath posts an event code to the Slow Path executor.
	SlowPath     bool
	SlowPathCode uint8
	// Log emits a 16-byte record to the fine-grained logging module.
	Log    [16]byte
	HasLog bool
}

// Reset clears the output for reuse.
func (o *Output) Reset() { *o = Output{} }

// ArmTimer appends a timer request.
func (o *Output) ArmTimer(id uint8, after sim.Duration) {
	o.Timers[o.NumTimers] = TimerReq{ID: id, After: after}
	o.NumTimers++
}

// StopTimer appends a cancel request.
func (o *Output) StopTimer(id uint8) {
	o.StopTimers[o.NumStops] = id
	o.NumStops++
}

// LogU32x4 fills the 16-byte log record with four 32-bit values; the trace
// decoder on the host side reverses this.
func (o *Output) LogU32x4(a, b, c, d uint32) {
	binary.LittleEndian.PutUint32(o.Log[0:4], a)
	binary.LittleEndian.PutUint32(o.Log[4:8], b)
	binary.LittleEndian.PutUint32(o.Log[8:12], c)
	binary.LittleEndian.PutUint32(o.Log[12:16], d)
	o.HasLog = true
}

// DecodeLogU32x4 unpacks a 16-byte record written by LogU32x4.
func DecodeLogU32x4(rec [16]byte) (a, b, c, d uint32) {
	return binary.LittleEndian.Uint32(rec[0:4]),
		binary.LittleEndian.Uint32(rec[4:8]),
		binary.LittleEndian.Uint32(rec[8:12]),
		binary.LittleEndian.Uint32(rec[12:16])
}

// Algorithm is a CC module: the unit a user writes in HLS C++ on real
// hardware and deploys to the FPGA (§5.4).
type Algorithm interface {
	// Name is the registry key (e.g. "dctcp").
	Name() string
	// Mode reports window- or rate-based operation.
	Mode() Mode
	// FastPathCycles is the 322 MHz clock-cycle cost charged per OnEvent
	// (Table 4's "clk" column).
	FastPathCycles() int
	// SlowPathCycles is the cost charged per OnSlowPath execution.
	SlowPathCycles() int
	// InitFlow initialises the cust/slow regions for a new flow.
	InitFlow(cust, slow *State, p *Params)
	// OnEvent is the fast-path handler. It must not block and must not
	// touch anything outside its inputs — the same restrictions HLS
	// imposes.
	OnEvent(in *Input, out *Output)
	// OnSlowPath runs a posted slow-path event with write access to the
	// slow region (§5.4). in is the Input snapshot that posted the event.
	OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output)
}

// ECTPreferer is an optional Algorithm extension: modules that negotiate a
// specific ECN codepoint implement it. Scalable (L4S-style) congestion
// controls — DCTCP, DCQCN — prefer ECT(1), the RFC 9331 identifier that
// steers their traffic into a dual-queue AQM's low-latency band; classic
// controls stay on the ECT(0) default.
type ECTPreferer interface {
	PreferredECT() packet.ECT
}

// PreferredECT returns the codepoint a's flows should carry: the module's
// declared preference when it implements ECTPreferer, ECT(0) otherwise.
func PreferredECT(a Algorithm) packet.ECT {
	if p, ok := a.(ECTPreferer); ok {
		return p.PreferredECT()
	}
	return packet.ECT0
}

// registry maps algorithm names to constructors.
var registry = map[string]func() Algorithm{}

// Register installs a constructor; it panics on duplicates, which are
// always programmer error.
func Register(name string, ctor func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cc: duplicate algorithm %q", name))
	}
	registry[name] = ctor
}

// New instantiates a registered algorithm.
func New(name string) (Algorithm, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown algorithm %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Rate64 converts a stored 64-bit register value back to a Rate.
func Rate64(v uint64) sim.Rate { return sim.Rate(v) }

// Names lists the registered algorithms in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
