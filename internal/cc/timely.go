package cc

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Timely is the RTT-gradient rate control of Mittal et al. (SIGMOD'15),
// included because the paper's motivation (§2.1) singles out delay-based
// CC as the class that most needs FPGA-grade timestamping: "the latency
// and jitter introduced by the host processing are much greater than FPGA,
// which is detrimental to delay-based congestion control".
//
// The module consumes the prb-rtt intrinsic input (Table 3) on every ACK:
//
//   - rtt < TLow: additive increase.
//   - rtt > THigh: multiplicative decrease by beta*(1 - THigh/rtt).
//   - otherwise: follow the normalized RTT gradient (EWMA of successive
//     RTT differences divided by the minimum RTT).
//
// Register map (cust-var):
//
//	0-1  rate, bps (u64)
//	2    previous RTT, microseconds
//	3    RTT-difference EWMA, microseconds, signed stored as uint32
//	4    minimum observed RTT, microseconds
//	5    completion events in gradient mode (HAI counter)
type Timely struct{}

// Timely register slots.
const (
	tyRateLo = iota
	tyRateHi
	tyPrevRTT
	tyDiffEwma
	tyMinRTT
	tyHAICount
)

func init() { Register("timely", func() Algorithm { return Timely{} }) }

// Name implements Algorithm.
func (Timely) Name() string { return "timely" }

// Mode implements Algorithm.
func (Timely) Mode() Mode { return RateMode }

// FastPathCycles implements Algorithm: the gradient division makes Timely
// a moderately expensive module, comparable to DCTCP (§5.4 names Timely
// among the per-RTT slow-logic algorithms).
func (Timely) FastPathCycles() int { return 30 }

// SlowPathCycles implements Algorithm.
func (Timely) SlowPathCycles() int { return 0 }

// InitFlow implements Algorithm.
func (Timely) InitFlow(cust, slow *State, p *Params) {
	r := RegsOf(cust)
	r.SetU64(tyRateLo, uint64(p.LineRate))
}

// OnEvent implements Algorithm.
func (t Timely) OnEvent(in *Input, out *Output) {
	r := RegsOf(in.Cust)
	switch in.Type {
	case EvStart:
		out.Schedule = true
	case EvRx:
		if in.Flags.Has(packet.FlagNACK) {
			out.Rtx, out.RtxPSN = true, in.Ack
		} else if in.ProbedRTT > 0 {
			t.onRTT(r, in)
		}
		out.Schedule = true
		if SeqDiff(in.Ack, in.Nxt) >= 0 {
			out.StopTimer(TimerRTO)
		} else {
			out.ArmTimer(TimerRTO, in.Params.RTOMin)
		}
	case EvTimeout:
		if SeqDiff(in.Nxt, in.Una) > 0 {
			out.Rtx, out.RtxPSN = true, in.Una
			out.Schedule = true
			out.ArmTimer(TimerRTO, in.Params.RTOMin)
		}
	}
	rate := sim.Rate(r.U64(tyRateLo))
	out.SetRate, out.Rate = true, rate
	out.LogU32x4(uint32(rate/sim.Mbps), r.U32(tyPrevRTT), uint32(int32(r.U32(tyDiffEwma))), uint32(in.Type))
}

func (t Timely) onRTT(r Regs, in *Input) {
	p := in.Params
	rttUs := uint32(in.ProbedRTT / sim.Microsecond)
	if rttUs == 0 {
		rttUs = 1
	}
	prev := r.U32(tyPrevRTT)
	r.SetU32(tyPrevRTT, rttUs)
	if minRTT := r.U32(tyMinRTT); minRTT == 0 || rttUs < minRTT {
		r.SetU32(tyMinRTT, rttUs)
	}
	if prev == 0 {
		return
	}
	diff := int32(rttUs) - int32(prev)
	ewma := int32(r.U32(tyDiffEwma))
	ewma += (diff - ewma) >> p.TimelyEwmaShift
	r.SetU32(tyDiffEwma, uint32(ewma))

	rate := int64(r.U64(tyRateLo))
	switch {
	case sim.Duration(rttUs)*sim.Microsecond < p.TimelyTLow:
		rate += int64(p.TimelyAddStep)
		r.SetU32(tyHAICount, 0)
	case sim.Duration(rttUs)*sim.Microsecond > p.TimelyTHigh:
		tHighUs := int64(p.TimelyTHigh / sim.Microsecond)
		// rate *= 1 - beta*(1 - THigh/rtt)
		cutQ10 := int64(p.TimelyBetaQ10) * (int64(rttUs) - tHighUs) / int64(rttUs)
		rate -= rate * cutQ10 / 1024
		r.SetU32(tyHAICount, 0)
	default:
		grad := float64(ewma) / float64(maxU32(r.U32(tyMinRTT), 1))
		if grad <= 0 {
			n := int64(1)
			if hai := r.Add32(tyHAICount, 1); hai >= 5 {
				n = 5 // hyperactive increase after 5 good signals
			}
			rate += n * int64(p.TimelyAddStep)
		} else {
			r.SetU32(tyHAICount, 0)
			cut := float64(rate) * float64(p.TimelyBetaQ10) / 1024 * grad
			if cut > float64(rate)/2 {
				cut = float64(rate) / 2
			}
			rate -= int64(cut)
		}
	}
	if rate > int64(p.LineRate) {
		rate = int64(p.LineRate)
	}
	if rate < int64(p.MinRate) {
		rate = int64(p.MinRate)
	}
	r.SetU64(tyRateLo, uint64(rate))
}

// OnSlowPath implements Algorithm; Timely posts no slow-path events.
func (Timely) OnSlowPath(code uint8, cust, slow *State, in *Input, out *Output) {}
