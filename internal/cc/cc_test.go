package cc

import (
	"testing"
	"testing/quick"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// harness drives an Algorithm the way the FPGA fast path does, maintaining
// the intrinsic flow state (una/nxt/cwnd/rate) between events.
type harness struct {
	t     *testing.T
	alg   Algorithm
	p     Params
	cust  State
	slow  State
	una   uint32
	nxt   uint32
	cwnd  uint32
	rate  sim.Rate
	now   sim.Time
	out   Output
	rtxes []uint32
}

func newHarness(t *testing.T, name string, mutate func(*Params)) *harness {
	t.Helper()
	alg, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(100*sim.Gbps, 1024)
	if mutate != nil {
		mutate(&p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, alg: alg, p: p}
	alg.InitFlow(&h.cust, &h.slow, &h.p)
	h.cwnd = p.InitCwnd
	h.rate = p.LineRate
	h.deliver(&Input{Type: EvStart})
	return h
}

func (h *harness) deliver(in *Input) *Output {
	h.t.Helper()
	in.Una, in.Nxt = h.una, h.nxt
	in.Cwnd, in.Rate = h.cwnd, h.rate
	in.MTU = h.p.MTU
	in.Params = &h.p
	in.Cust, in.Slow = &h.cust, &h.slow
	in.Timestamp = h.now
	h.out.Reset()
	h.alg.OnEvent(in, &h.out)
	if h.out.SetCwnd {
		h.cwnd = h.out.Cwnd
	}
	if h.out.SetRate {
		h.rate = h.out.Rate
	}
	if h.out.SlowPath {
		var spOut Output
		h.alg.OnSlowPath(h.out.SlowPathCode, &h.cust, &h.slow, in, &spOut)
	}
	if h.out.Rtx {
		h.rtxes = append(h.rtxes, h.out.RtxPSN)
	}
	// The FPGA advances una after the module runs.
	if in.Type == EvRx && SeqLT(h.una, in.Ack) {
		h.una = in.Ack
	}
	h.now = h.now.Add(sim.Microsecond)
	return &h.out
}

// send models the scheduler emitting n new DATA packets.
func (h *harness) send(n uint32) { h.nxt += n }

// ack delivers a cumulative ACK up to psn with the given flags.
func (h *harness) ack(psn uint32, flags packet.Flags) *Output {
	return h.deliver(&Input{Type: EvRx, Ack: psn, PSN: psn, Flags: flags, ProbedRTT: 10 * sim.Microsecond})
}

func (h *harness) timeout() *Output { return h.deliver(&Input{Type: EvTimeout}) }

func (h *harness) timer(id uint8) *Output {
	return h.deliver(&Input{Type: EvTimer, TimerID: id})
}

func TestRegistryHasAllAlgorithms(t *testing.T) {
	want := []string{"cbr", "cubic", "dcqcn", "dctcp", "hpcc", "reno", "swift", "timely"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) did not error")
	}
}

func TestRegistryModesAndCycles(t *testing.T) {
	modes := map[string]Mode{
		"reno": WindowMode, "dctcp": WindowMode, "cubic": WindowMode,
		"dcqcn": RateMode, "timely": RateMode,
	}
	// Table 4 clock-cycle entries.
	cycles := map[string]int{"reno": 2, "dctcp": 24, "dcqcn": 6}
	for name, mode := range modes {
		alg, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Mode() != mode {
			t.Errorf("%s mode = %v, want %v", name, alg.Mode(), mode)
		}
		if alg.Name() != name {
			t.Errorf("%s Name() = %q", name, alg.Name())
		}
		if want, ok := cycles[name]; ok && alg.FastPathCycles() != want {
			t.Errorf("%s cycles = %d, want %d (Table 4)", name, alg.FastPathCycles(), want)
		}
	}
}

func TestRegsSlots(t *testing.T) {
	var s State
	r := RegsOf(&s)
	for i := 0; i < 16; i++ {
		r.SetU32(i, uint32(i*1000+7))
	}
	for i := 0; i < 16; i++ {
		if got := r.U32(i); got != uint32(i*1000+7) {
			t.Fatalf("slot %d = %d", i, got)
		}
	}
	r.SetU64(2, 0xDEADBEEFCAFEF00D)
	if r.U64(2) != 0xDEADBEEFCAFEF00D {
		t.Fatal("U64 round trip failed")
	}
	if r.Add32(0, 5) != 12 { // slot 0 held 7
		t.Fatal("Add32 wrong")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !SeqLT(1, 2) || SeqLT(2, 1) || SeqLT(5, 5) {
		t.Fatal("SeqLT basic cases")
	}
	// Wraparound: 2^32-1 precedes 1.
	if !SeqLT(^uint32(0), 1) {
		t.Fatal("SeqLT wraparound")
	}
	if !SeqLEQ(5, 5) || SeqLEQ(6, 5) {
		t.Fatal("SeqLEQ")
	}
	if SeqMax(^uint32(0), 1) != 1 {
		t.Fatal("SeqMax wraparound")
	}
	if SeqDiff(10, 3) != 7 || SeqDiff(3, 10) != -7 {
		t.Fatal("SeqDiff")
	}
}

func TestQuickSeqAntisymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return !SeqLT(a, b) && SeqLEQ(a, b)
		}
		if SeqDiff(a, b) == -1<<31 {
			return true // the single ambiguous antipodal point
		}
		return SeqLT(a, b) != SeqLT(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Reno ---

func TestRenoSlowStartDoublesPerRTT(t *testing.T) {
	h := newHarness(t, "reno", nil)
	if h.cwnd != 1 {
		t.Fatalf("initial cwnd = %d, want 1", h.cwnd)
	}
	// Each acked packet in slow start adds one to cwnd.
	for rtt := 0; rtt < 5; rtt++ {
		w := h.cwnd
		h.send(w)
		h.ack(h.nxt, 0)
		if h.cwnd != 2*w {
			t.Fatalf("after acking %d packets cwnd = %d, want %d", w, h.cwnd, 2*w)
		}
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 64; p.Ssthresh = 8 })
	// Above ssthresh: one full window of acks grows cwnd by ~1.
	w := h.cwnd
	h.send(w)
	for i := uint32(0); i < w; i++ {
		h.ack(h.una+1, 0)
	}
	if h.cwnd != w+1 {
		t.Fatalf("CA growth: cwnd = %d after window of acks, want %d", h.cwnd, w+1)
	}
}

func TestRenoFastRetransmit(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 20; p.Ssthresh = 10 })
	h.send(20)
	// Three duplicate ACKs at una.
	for i := 0; i < 3; i++ {
		h.ack(h.una, 0)
	}
	if len(h.rtxes) != 1 || h.rtxes[0] != 0 {
		t.Fatalf("rtxes = %v, want [0]", h.rtxes)
	}
	// ssthresh = flight/2 = 10, cwnd = ssthresh+3.
	if h.cwnd != 13 {
		t.Fatalf("cwnd after fast retransmit = %d, want 13", h.cwnd)
	}
	// Full ACK exits recovery at ssthresh.
	h.ack(20, 0)
	if h.cwnd != 10 {
		t.Fatalf("cwnd after recovery = %d, want 10", h.cwnd)
	}
}

func TestRenoPartialAckRetransmits(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 20; p.Ssthresh = 10 })
	h.send(20)
	for i := 0; i < 3; i++ {
		h.ack(0, 0)
	}
	h.rtxes = nil
	// Partial ACK to 5 (< recover=20) must retransmit PSN 5.
	h.ack(5, 0)
	if len(h.rtxes) != 1 || h.rtxes[0] != 5 {
		t.Fatalf("partial-ack rtxes = %v, want [5]", h.rtxes)
	}
}

func TestRenoTimeoutResetsToMinCwnd(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 32; p.Ssthresh = 16 })
	h.send(32)
	h.timeout()
	if h.cwnd != 1 {
		t.Fatalf("cwnd after timeout = %d, want 1", h.cwnd)
	}
	if len(h.rtxes) != 1 || h.rtxes[0] != 0 {
		t.Fatalf("timeout rtxes = %v, want [0]", h.rtxes)
	}
	// A timeout means the whole flight is presumed lost; the sender enters
	// loss recovery so each partial ACK repairs the next hole back-to-back
	// instead of waiting out one RTO per hole.
	h.rtxes = nil
	h.ack(1, 0)
	if len(h.rtxes) != 1 || h.rtxes[0] != 1 {
		t.Fatalf("post-timeout partial-ack rtxes = %v, want [1]", h.rtxes)
	}
	h.ack(2, 0)
	if len(h.rtxes) != 2 || h.rtxes[1] != 2 {
		t.Fatalf("post-timeout partial-ack rtxes = %v, want [1 2]", h.rtxes)
	}
	// Full ACK of the pre-timeout flight exits recovery at ssthresh
	// (= flight/2 = 16).
	h.ack(32, 0)
	if h.cwnd != 16 {
		t.Fatalf("cwnd after recovery = %d, want ssthresh 16", h.cwnd)
	}
}

func TestRenoTimeoutIdleIsNoop(t *testing.T) {
	h := newHarness(t, "reno", nil)
	before := h.cwnd
	h.timeout() // nothing in flight
	if h.cwnd != before || len(h.rtxes) != 0 {
		t.Fatalf("idle timeout changed state: cwnd=%d rtxes=%v", h.cwnd, h.rtxes)
	}
}

func TestRenoECEHalvesOncePerWindow(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 32; p.Ssthresh = 8 })
	h.send(32)
	h.ack(1, packet.FlagECNEcho)
	if h.cwnd < 16 || h.cwnd > 17 {
		t.Fatalf("cwnd after ECE = %d, want ~16", h.cwnd)
	}
	w := h.cwnd
	// A second ECE within the same window must not halve again.
	h.ack(2, packet.FlagECNEcho)
	if h.cwnd < w {
		t.Fatalf("second ECE in window reduced cwnd to %d", h.cwnd)
	}
}

func TestRenoArmsAndStopsRTO(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 4 })
	h.send(4)
	out := h.ack(1, 0)
	armed := false
	for i := 0; i < out.NumTimers; i++ {
		if out.Timers[i].ID == TimerRTO && out.Timers[i].After >= h.p.RTOMin {
			armed = true
		}
	}
	if !armed {
		t.Fatal("RTO not armed with data outstanding")
	}
	out = h.ack(4, 0) // everything acked
	stopped := false
	for i := 0; i < out.NumStops; i++ {
		if out.StopTimers[i] == TimerRTO {
			stopped = true
		}
	}
	if !stopped {
		t.Fatal("RTO not stopped when flow went idle")
	}
}

func TestRenoCwndCappedAtMax(t *testing.T) {
	h := newHarness(t, "reno", func(p *Params) { p.InitCwnd = 10; p.Ssthresh = 100; p.MaxCwnd = 12 })
	for i := 0; i < 10; i++ {
		h.send(2)
		h.ack(h.nxt, 0)
	}
	if h.cwnd > 12 {
		t.Fatalf("cwnd %d exceeds MaxCwnd 12", h.cwnd)
	}
}

// --- DCTCP ---

func dctcpAlpha(h *harness) float64 {
	one := float64(alphaOne(&h.p))
	return float64(RegsOf(&h.slow).U32(sAlpha)) / one
}

func TestDCTCPAlphaConvergesToOneUnderFullMarking(t *testing.T) {
	h := newHarness(t, "dctcp", func(p *Params) { p.InitCwnd = 8; p.Ssthresh = 4 })
	for i := 0; i < 400; i++ {
		h.send(1)
		h.ack(h.nxt, packet.FlagECNEcho)
	}
	if a := dctcpAlpha(h); a < 0.9 {
		t.Fatalf("alpha = %v after persistent marking, want > 0.9", a)
	}
}

func TestDCTCPAlphaDecaysWithoutMarking(t *testing.T) {
	h := newHarness(t, "dctcp", func(p *Params) { p.InitCwnd = 8; p.Ssthresh = 4 })
	for i := 0; i < 100; i++ {
		h.send(1)
		h.ack(h.nxt, packet.FlagECNEcho)
	}
	peak := dctcpAlpha(h)
	for i := 0; i < 400; i++ {
		h.send(1)
		h.ack(h.nxt, 0)
	}
	if a := dctcpAlpha(h); a > peak/8 {
		t.Fatalf("alpha = %v did not decay from %v", a, peak)
	}
}

func TestDCTCPReductionProportionalToAlpha(t *testing.T) {
	h := newHarness(t, "dctcp", func(p *Params) { p.InitCwnd = 100; p.Ssthresh = 50 })
	// Saturate alpha first.
	for i := 0; i < 400; i++ {
		h.send(1)
		h.ack(h.nxt, packet.FlagECNEcho)
	}
	alpha := dctcpAlpha(h)
	w := h.cwnd
	// Force a fresh window so the next ECE reduces again.
	h.send(1)
	h.ack(h.nxt, packet.FlagECNEcho)
	want := float64(w) * (1 - alpha/2)
	got := float64(h.cwnd)
	if got < want-2 || got > want+2 {
		t.Fatalf("cwnd after ECE = %v, want ~%v (alpha=%v)", got, want, alpha)
	}
}

func TestDCTCPLossBehavesLikeReno(t *testing.T) {
	h := newHarness(t, "dctcp", func(p *Params) { p.InitCwnd = 20; p.Ssthresh = 10 })
	h.send(20)
	for i := 0; i < 3; i++ {
		h.ack(0, 0)
	}
	if len(h.rtxes) != 1 || h.rtxes[0] != 0 {
		t.Fatalf("DCTCP fast retransmit missing: %v", h.rtxes)
	}
	if h.cwnd != 13 { // ssthresh(10)+3
		t.Fatalf("cwnd = %d, want 13", h.cwnd)
	}
}

func TestDCTCPSlowPathMatchesFastPathCoarsely(t *testing.T) {
	run := func(useSlow bool, bits int) float64 {
		h := newHarness(t, "dctcp", func(p *Params) {
			p.InitCwnd = 8
			p.Ssthresh = 4
			p.UseSlowPath = useSlow
			p.AlphaBits = bits
		})
		// Mark half the packets.
		for i := 0; i < 600; i++ {
			h.send(1)
			var fl packet.Flags
			if i%2 == 0 {
				fl = packet.FlagECNEcho
			}
			h.ack(h.nxt, fl)
		}
		return dctcpAlpha(h)
	}
	slow := run(true, 32)
	fast := run(false, 16)
	if slow < 0.3 || slow > 0.7 {
		t.Fatalf("slow-path alpha = %v, want ~0.5", slow)
	}
	if diff := slow - fast; diff < -0.2 || diff > 0.2 {
		t.Fatalf("16-bit fast path diverged: slow=%v fast=%v", slow, fast)
	}
}

// --- DCQCN ---

func dcqcnRate(h *harness) sim.Rate { return sim.Rate(RegsOf(&h.cust).U64(qRcLo)) }

func TestDCQCNStartsAtLineRate(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	if dcqcnRate(h) != h.p.LineRate {
		t.Fatalf("initial rate = %v, want %v", dcqcnRate(h), h.p.LineRate)
	}
}

func TestDCQCNStartArmsTimers(t *testing.T) {
	alg, _ := New("dcqcn")
	p := DefaultParams(100*sim.Gbps, 1024)
	var cust, slow State
	alg.InitFlow(&cust, &slow, &p)
	var out Output
	alg.OnEvent(&Input{Type: EvStart, Params: &p, Cust: &cust, Slow: &slow}, &out)
	if out.NumTimers != 2 {
		t.Fatalf("EvStart armed %d timers, want 2 (alpha+rate)", out.NumTimers)
	}
	if !out.Schedule {
		t.Fatal("EvStart did not request scheduling")
	}
}

func TestDCQCNCNPCutsRate(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(100)
	h.ack(1, packet.FlagCNPNotify)
	// alpha starts at 1; first CNP keeps it 1, cut = rate*alpha/2 = 50%.
	want := h.p.LineRate / 2
	got := dcqcnRate(h)
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("rate after CNP = %v, want ~%v", got, want)
	}
}

func TestDCQCNRepeatedCNPsApproachMinRate(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(1000)
	for i := 0; i < 60; i++ {
		h.ack(uint32(i), packet.FlagCNPNotify)
	}
	if got := dcqcnRate(h); got != h.p.MinRate {
		t.Fatalf("rate floor = %v, want MinRate %v", got, h.p.MinRate)
	}
}

func TestDCQCNAlphaTimerDecays(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(10)
	h.ack(1, packet.FlagCNPNotify) // alpha = 1
	before := RegsOf(&h.cust).U32(qAlphaQ16)
	for i := 0; i < 20; i++ {
		h.timer(TimerAlpha)
	}
	after := RegsOf(&h.cust).U32(qAlphaQ16)
	if after >= before {
		t.Fatalf("alpha did not decay: %d -> %d", before, after)
	}
}

func TestDCQCNRateRecoversViaTimer(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(100)
	h.ack(1, packet.FlagCNPNotify)
	cut := dcqcnRate(h)
	// Fast recovery: each timer event moves Rc halfway to Rt (= line rate
	// before the cut... Rt was set to pre-cut Rc = line rate).
	for i := 0; i < 20; i++ {
		h.timer(TimerRate)
	}
	rec := dcqcnRate(h)
	if rec <= cut {
		t.Fatalf("rate did not recover: %v -> %v", cut, rec)
	}
	if rec < h.p.LineRate*9/10 {
		t.Fatalf("recovery stalled at %v of %v", rec, h.p.LineRate)
	}
}

func TestDCQCNByteCounterTriggersIncrease(t *testing.T) {
	h := newHarness(t, "dcqcn", func(p *Params) { p.ByteCounter = 10 * 1024 })
	h.send(1000)
	h.ack(1, packet.FlagCNPNotify)
	cut := dcqcnRate(h)
	// Ack enough bytes to trip the byte counter several times
	// (10 packets of MTU=1024 per stage).
	h.ack(h.una+200, 0)
	if rec := dcqcnRate(h); rec <= cut {
		t.Fatalf("byte counter did not raise rate: %v -> %v", cut, rec)
	}
}

func TestDCQCNNACKTriggersGoBackN(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(50)
	h.deliver(&Input{Type: EvRx, Ack: 7, Flags: packet.FlagNACK})
	if len(h.rtxes) != 1 || h.rtxes[0] != 7 {
		t.Fatalf("NACK rtxes = %v, want [7]", h.rtxes)
	}
}

func TestDCQCNRateNeverExceedsLine(t *testing.T) {
	h := newHarness(t, "dcqcn", nil)
	h.send(4000)
	for i := 0; i < 200; i++ {
		h.timer(TimerRate)
		h.ack(h.una+10, 0)
	}
	if got := dcqcnRate(h); got > h.p.LineRate {
		t.Fatalf("rate %v exceeds line %v", got, h.p.LineRate)
	}
}

// --- Cubic ---

func TestCubicGrowsAfterReduction(t *testing.T) {
	h := newHarness(t, "cubic", func(p *Params) { p.InitCwnd = 64; p.Ssthresh = 8 })
	h.send(64)
	for i := 0; i < 3; i++ {
		h.ack(0, 0)
	}
	reduced := h.cwnd
	// beta=0.7: expect ~44.
	if reduced < 40 || reduced > 48 {
		t.Fatalf("cubic reduction to %d, want ~45", reduced)
	}
	h.ack(64, 0) // exit recovery
	for i := 0; i < 2000; i++ {
		h.send(1)
		h.ack(h.nxt, 0)
	}
	if h.cwnd <= reduced {
		t.Fatalf("cubic did not grow after reduction: %d", h.cwnd)
	}
}

func TestCubicECEReducesOncePerWindow(t *testing.T) {
	h := newHarness(t, "cubic", func(p *Params) { p.InitCwnd = 64; p.Ssthresh = 8 })
	h.send(64)
	h.ack(1, packet.FlagECNEcho)
	reduced := h.cwnd
	// beta=0.7: expect ~44, and no retransmission — the mark was a
	// delivered packet, not a loss.
	if reduced < 40 || reduced > 48 {
		t.Fatalf("cwnd after ECE = %d, want ~45", reduced)
	}
	if len(h.rtxes) != 0 {
		t.Fatalf("ECE triggered retransmissions: %v", h.rtxes)
	}
	// A second ECE within the same window of data must not reduce again.
	h.ack(2, packet.FlagECNEcho)
	if h.cwnd < reduced {
		t.Fatalf("second ECE in window reduced cwnd again: %d -> %d", reduced, h.cwnd)
	}
	// Once the reaction window is fully acked, a fresh ECE reduces anew.
	h.ack(64, 0)
	h.send(16)
	h.ack(h.una+1, packet.FlagECNEcho)
	if h.cwnd >= reduced {
		t.Fatalf("ECE in a later window did not reduce: %d", h.cwnd)
	}
}

func TestCubicECESetsWmaxAndK(t *testing.T) {
	h := newHarness(t, "cubic", func(p *Params) { p.InitCwnd = 64; p.Ssthresh = 8 })
	h.send(64)
	h.ack(1, packet.FlagECNEcho)
	r := RegsOf(&h.cust)
	if wmax := r.U32(cuWmax); wmax != 64 {
		t.Fatalf("Wmax = %d, want 64 (the pre-reduction window)", wmax)
	}
	if k := r.U32(cuKUs); k == 0 {
		t.Fatal("slow path did not compute K for the ECE epoch")
	}
}

func TestPreferredECT(t *testing.T) {
	want := map[string]packet.ECT{
		"cubic": packet.ECT0, "reno": packet.ECT0, "cbr": packet.ECT0,
		"timely": packet.ECT0, "swift": packet.ECT0, "hpcc": packet.ECT0,
		"dctcp": packet.ECT1, "dcqcn": packet.ECT1,
	}
	for _, name := range Names() {
		alg, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := want[name]
		if !ok {
			t.Fatalf("no expected codepoint recorded for %q", name)
		}
		if got := PreferredECT(alg); got != w {
			t.Errorf("PreferredECT(%s) = %v, want %v", name, got, w)
		}
	}
}

func TestCubicSlowPathComputesK(t *testing.T) {
	h := newHarness(t, "cubic", func(p *Params) { p.InitCwnd = 64; p.Ssthresh = 8 })
	h.send(64)
	for i := 0; i < 3; i++ {
		h.ack(0, 0)
	}
	k := RegsOf(&h.cust).U32(cuKUs)
	// K = cbrt(64*0.3/0.4) s ~ 3.63 s = 3.63e6 us.
	if k < 3_000_000 || k > 4_500_000 {
		t.Fatalf("K = %d us, want ~3.6e6", k)
	}
}

// --- Timely ---

func timelyRate(h *harness) sim.Rate { return sim.Rate(RegsOf(&h.cust).U64(tyRateLo)) }

func (h *harness) ackRTT(psn uint32, rtt sim.Duration) *Output {
	return h.deliver(&Input{Type: EvRx, Ack: psn, ProbedRTT: rtt})
}

func TestTimelyDecreasesOnHighRTT(t *testing.T) {
	h := newHarness(t, "timely", nil)
	h.send(1000)
	for i := uint32(1); i < 20; i++ {
		h.ackRTT(i, sim.Micros(1000)) // >> THigh (500us)
	}
	if got := timelyRate(h); got >= h.p.LineRate {
		t.Fatalf("rate did not decrease under high RTT: %v", got)
	}
}

func TestTimelyIncreasesOnLowRTT(t *testing.T) {
	h := newHarness(t, "timely", nil)
	h.send(1000)
	// First drive rate down, then feed low RTTs.
	for i := uint32(1); i < 20; i++ {
		h.ackRTT(i, sim.Micros(1000))
	}
	low := timelyRate(h)
	for i := uint32(20); i < 60; i++ {
		h.ackRTT(i, sim.Micros(20)) // < TLow (50us)
	}
	if got := timelyRate(h); got <= low {
		t.Fatalf("rate did not increase under low RTT: %v -> %v", low, got)
	}
}

func TestTimelyGradientDecrease(t *testing.T) {
	h := newHarness(t, "timely", nil)
	h.send(10000)
	// RTTs inside [TLow, THigh] but rising: positive gradient => decrease.
	rtt := sim.Micros(100)
	for i := uint32(1); i < 40; i++ {
		h.ackRTT(i, rtt)
		rtt += sim.Micros(8)
	}
	if got := timelyRate(h); got >= h.p.LineRate {
		t.Fatalf("rising RTTs did not slow the flow: %v", got)
	}
}

func TestTimelyRateBounds(t *testing.T) {
	h := newHarness(t, "timely", nil)
	h.send(100000)
	for i := uint32(1); i < 500; i++ {
		h.ackRTT(i, sim.Micros(2000))
	}
	if got := timelyRate(h); got < h.p.MinRate {
		t.Fatalf("rate %v below MinRate %v", got, h.p.MinRate)
	}
	for i := uint32(500); i < 3000; i++ {
		h.ackRTT(i, sim.Micros(10))
	}
	if got := timelyRate(h); got > h.p.LineRate {
		t.Fatalf("rate %v above line %v", got, h.p.LineRate)
	}
}

// --- cross-cutting properties ---

func TestQuickWindowAlgorithmsKeepCwndInBounds(t *testing.T) {
	for _, name := range []string{"reno", "dctcp", "cubic"} {
		name := name
		f := func(ops []uint16) bool {
			h := newHarness(t, name, func(p *Params) { p.MaxCwnd = 256 })
			for _, op := range ops {
				switch op % 5 {
				case 0:
					h.send(uint32(op%7) + 1)
				case 1:
					if SeqLT(h.una, h.nxt) {
						h.ack(h.una+1, 0)
					}
				case 2:
					h.ack(h.una, 0) // dup
				case 3:
					h.ack(h.una, packet.FlagECNEcho)
				case 4:
					h.timeout()
				}
				if h.cwnd < h.p.MinCwnd || h.cwnd > h.p.MaxCwndPkts() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestQuickRateAlgorithmsKeepRateInBounds(t *testing.T) {
	for _, name := range []string{"dcqcn", "timely"} {
		name := name
		f := func(ops []uint16) bool {
			h := newHarness(t, name, nil)
			for _, op := range ops {
				switch op % 5 {
				case 0:
					h.send(uint32(op%7) + 1)
				case 1:
					if SeqLT(h.una, h.nxt) {
						h.ackRTT(h.una+1, sim.Micros(float64(op%1200)+1))
					}
				case 2:
					h.ack(h.una, packet.FlagCNPNotify)
				case 3:
					h.timer(TimerAlpha)
					h.timer(TimerRate)
				case 4:
					h.timeout()
				}
				rate := h.rate
				if rate < h.p.MinRate/2 || rate > h.p.LineRate {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(100*sim.Gbps, 1024)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.MTU = 10 },
		func(p *Params) { p.MTU = 100000 },
		func(p *Params) { p.LineRate = 0 },
		func(p *Params) { p.InitCwnd = 0 },
		func(p *Params) { p.MinCwnd = 0 },
		func(p *Params) { p.AlphaBits = 24 },
		func(p *Params) { p.RTOMin = 0 },
	}
	for i, mut := range bad {
		p := DefaultParams(100*sim.Gbps, 1024)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestOutputLogRoundTrip(t *testing.T) {
	var o Output
	o.LogU32x4(1, 2, 3, 4)
	a, b, c, d := DecodeLogU32x4(o.Log)
	if a != 1 || b != 2 || c != 3 || d != 4 {
		t.Fatalf("log round trip: %d %d %d %d", a, b, c, d)
	}
	if !o.HasLog {
		t.Fatal("HasLog not set")
	}
}

func BenchmarkRenoOnEvent(b *testing.B)  { benchAlg(b, "reno") }
func BenchmarkDCTCPOnEvent(b *testing.B) { benchAlg(b, "dctcp") }
func BenchmarkDCQCNOnEvent(b *testing.B) { benchAlg(b, "dcqcn") }
func BenchmarkSwiftOnEvent(b *testing.B) { benchAlg(b, "swift") }
func BenchmarkCubicOnEvent(b *testing.B) { benchAlg(b, "cubic") }

func benchAlg(b *testing.B, name string) {
	alg, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams(100*sim.Gbps, 1024)
	var cust, slow State
	alg.InitFlow(&cust, &slow, &p)
	in := Input{Type: EvRx, Ack: 1, Una: 0, Nxt: 10, Cwnd: 8, Rate: p.LineRate,
		MTU: 1024, Params: &p, Cust: &cust, Slow: &slow}
	var out Output
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Ack = uint32(i + 1)
		in.Una = uint32(i)
		in.Nxt = uint32(i + 10)
		out.Reset()
		alg.OnEvent(&in, &out)
	}
}

// --- Swift ---

func TestSwiftIncreasesBelowTarget(t *testing.T) {
	h := newHarness(t, "swift", nil)
	w0 := h.cwnd
	for i := uint32(1); i <= 50; i++ {
		h.send(1)
		h.ackRTT(i, sim.Micros(10)) // well under the ~30us target
	}
	if h.cwnd <= w0 {
		t.Fatalf("cwnd %d did not grow under low delay (w0=%d)", h.cwnd, w0)
	}
}

func TestSwiftDecreasesAboveTarget(t *testing.T) {
	h := newHarness(t, "swift", nil)
	for i := uint32(1); i <= 60; i++ {
		h.send(1)
		h.ackRTT(i, sim.Micros(500)) // far over target
	}
	if h.cwnd >= 16 {
		t.Fatalf("cwnd %d did not shrink under high delay", h.cwnd)
	}
	if h.cwnd < h.p.MinCwnd {
		t.Fatalf("cwnd %d under floor", h.cwnd)
	}
}

func TestSwiftAtMostOneDecreasePerWindow(t *testing.T) {
	h := newHarness(t, "swift", func(p *Params) { p.SwiftInitWnd = 64 })
	h.send(64)
	h.ackRTT(1, sim.Micros(800))
	w := h.cwnd
	// Further high-RTT acks within the same window must not cut again.
	h.ackRTT(2, sim.Micros(800))
	h.ackRTT(3, sim.Micros(800))
	if h.cwnd < w {
		t.Fatalf("second decrease within a window: %d -> %d", w, h.cwnd)
	}
}

func TestSwiftTargetScalesWithWindow(t *testing.T) {
	p := DefaultParams(100*sim.Gbps, 1024)
	small := Swift{}.target(&p, 1)
	big := Swift{}.target(&p, 256)
	if small <= big {
		t.Fatalf("target(1)=%v should exceed target(256)=%v", small, big)
	}
	if big < p.SwiftBaseTarget {
		t.Fatalf("target below base: %v", big)
	}
}

func TestSwiftLossRecovery(t *testing.T) {
	h := newHarness(t, "swift", func(p *Params) { p.SwiftInitWnd = 32 })
	h.send(32)
	for i := 0; i < 3; i++ {
		h.ack(0, 0)
	}
	if len(h.rtxes) != 1 || h.rtxes[0] != 0 {
		t.Fatalf("rtxes = %v", h.rtxes)
	}
}
