package fabric

import (
	"fmt"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// The builders below share two conventions. Ports: every switch numbers
// its local host downlinks first, then its trunk/uplink ports, and a
// bidirectional port pair shares one index (the link arriving from a
// neighbor is attributed to the port facing that neighbor). Placement:
// host h attaches to leaf-tier switch h mod <leaf count>, so any tester
// port mix spreads across racks deterministically.

// buildDumbbell wires two switches over a single trunk — the classic
// shared-bottleneck shape. Even hosts live left, odd hosts right; any
// even-to-odd flow crosses the trunk.
func (f *Fabric) buildDumbbell(eng *sim.Engine) error {
	sides := []*sw{f.addSwitch("left"), f.addSwitch("right")}
	nLocal := [2]int{}
	for side, n := range sides {
		for h := 0; h < f.cfg.Hosts; h++ {
			if h%2 == side {
				f.attachHost(eng, n, side, h)
				nLocal[side]++
			}
		}
	}
	// The trunk port on each side is the first port after its hosts.
	trunk := [2]int{nLocal[0], nLocal[1]}
	f.connect(eng, sides[0], sides[1], trunk[1])
	f.connect(eng, sides[1], sides[0], trunk[0])
	for side, n := range sides {
		side := side
		n.ecmpPorts = []int{trunk[side]}
		n.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			if d%2 == side {
				return f.hostPort[d]
			}
			return trunk[side]
		}
	}
	return nil
}

// buildParkingLot wires a chain of N switches; flows between distant
// hosts traverse every intermediate bottleneck, the parking-lot fairness
// shape. Host h lives on switch h mod N.
func (f *Fabric) buildParkingLot(eng *sim.Engine) error {
	n := f.cfg.Spec.N
	chain := make([]*sw, n)
	nLocal := make([]int, n)
	for i := range chain {
		chain[i] = f.addSwitch(fmt.Sprintf("hop%d", i))
		for h := 0; h < f.cfg.Hosts; h++ {
			if h%n == i {
				f.attachHost(eng, chain[i], i, h)
				nLocal[i]++
			}
		}
	}
	// Port layout per switch: hosts, then right trunk (i < n-1), then
	// left trunk (i > 0); indices are known before the links exist.
	right := make([]int, n)
	left := make([]int, n)
	for i := range chain {
		right[i] = nLocal[i]
		left[i] = nLocal[i]
		if i < n-1 {
			left[i]++
		}
	}
	for i := 0; i < n-1; i++ {
		f.connect(eng, chain[i], chain[i+1], left[i+1])
	}
	for i := 1; i < n; i++ {
		f.connect(eng, chain[i], chain[i-1], right[i-1])
	}
	for i, node := range chain {
		i, node := i, node
		if i < n-1 {
			node.ecmpPorts = append(node.ecmpPorts, right[i])
		}
		node.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			switch owner := d % n; {
			case owner == i:
				return f.hostPort[d]
			case owner > i:
				return right[i]
			default:
				return left[i]
			}
		}
	}
	return nil
}

// buildLeafSpine wires L leaves fully meshed to S spines. Cross-rack
// traffic takes one of S equal-cost leaf-spine-leaf paths, chosen by the
// deterministic ECMP hash; host h lives on leaf h mod L.
func (f *Fabric) buildLeafSpine(eng *sim.Engine) error {
	L, S := f.cfg.Spec.Leaves, f.cfg.Spec.Spines
	leaves := make([]*sw, L)
	spines := make([]*sw, S)
	nLocal := make([]int, L)
	for l := range leaves {
		leaves[l] = f.addSwitch(fmt.Sprintf("leaf%d", l))
	}
	for s := range spines {
		spines[s] = f.addSwitch(fmt.Sprintf("spine%d", s))
	}
	for l := range leaves {
		for h := 0; h < f.cfg.Hosts; h++ {
			if h%L == l {
				f.attachHost(eng, leaves[l], l, h)
				nLocal[l]++
			}
		}
	}
	// Leaf l's uplink toward spine s is port nLocal[l]+s; spine s's port
	// toward leaf l is l.
	for l := range leaves {
		for s := range spines {
			f.connect(eng, leaves[l], spines[s], l)
		}
	}
	for s := range spines {
		for l := range leaves {
			f.connect(eng, spines[s], leaves[l], nLocal[l]+s)
		}
	}
	for l, leaf := range leaves {
		l, leaf := l, leaf
		up := nLocal[l]
		hop := uint64(l)
		for s := 0; s < S; s++ {
			leaf.ecmpPorts = append(leaf.ecmpPorts, up+s)
		}
		leaf.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			if d%L == l {
				return f.hostPort[d]
			}
			return up + ecmpPick(f.cfg.Seed, p.Flow, hop, S)
		}
	}
	for _, spine := range spines {
		spine.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			return d % L
		}
	}
	return nil
}

// buildFatTree wires a K-ary fat-tree: K pods of K/2 edge and K/2
// aggregation switches over (K/2)^2 cores. ECMP happens twice on an
// inter-pod path — edge-to-agg and agg-to-core — giving (K/2)^2 equal
// paths. Host h lives on edge h mod (K*K/2); capacity is K^3/4 hosts.
func (f *Fabric) buildFatTree(eng *sim.Engine) error {
	k := f.cfg.Spec.K
	half := k / 2
	numEdge := k * half
	capacity := numEdge * half
	if f.cfg.Hosts > capacity {
		return fmt.Errorf("fabric: fat-tree k=%d supports %d hosts, got %d", k, capacity, f.cfg.Hosts)
	}
	edges := make([]*sw, numEdge)
	aggs := make([]*sw, k*half)
	cores := make([]*sw, half*half)
	nLocal := make([]int, numEdge)
	for e := range edges {
		edges[e] = f.addSwitch(fmt.Sprintf("edge%d", e))
	}
	for a := range aggs {
		aggs[a] = f.addSwitch(fmt.Sprintf("agg%d", a))
	}
	for c := range cores {
		cores[c] = f.addSwitch(fmt.Sprintf("core%d", c))
	}
	for e := range edges {
		for h := 0; h < f.cfg.Hosts; h++ {
			if h%numEdge == e {
				f.attachHost(eng, edges[e], e, h)
				nLocal[e]++
			}
		}
	}
	// Edge e's uplink toward in-pod agg j is port nLocal[e]+j; agg (p,j)
	// numbers its edge downlinks 0..half-1, then core uplinks toward core
	// group j; core (j,m) numbers one downlink per pod.
	for e := range edges {
		p := e / half
		for j := 0; j < half; j++ {
			f.connect(eng, edges[e], aggs[p*half+j], e%half)
		}
	}
	for a := range aggs {
		p, j := a/half, a%half
		for i := 0; i < half; i++ {
			f.connect(eng, aggs[a], edges[p*half+i], nLocal[p*half+i]+j)
		}
		for m := 0; m < half; m++ {
			f.connect(eng, aggs[a], cores[j*half+m], p)
		}
	}
	for c := range cores {
		j, m := c/half, c%half
		for p := 0; p < k; p++ {
			f.connect(eng, cores[c], aggs[p*half+j], half+m)
		}
	}
	for e, edge := range edges {
		e, edge := e, edge
		up := nLocal[e]
		hop := uint64(e)
		for j := 0; j < half; j++ {
			edge.ecmpPorts = append(edge.ecmpPorts, up+j)
		}
		edge.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			if d%numEdge == e {
				return f.hostPort[d]
			}
			return up + ecmpPick(f.cfg.Seed, p.Flow, hop, half)
		}
	}
	for a, agg := range aggs {
		pod := a / half
		hop := uint64(numEdge + a)
		agg := agg
		for m := 0; m < half; m++ {
			agg.ecmpPorts = append(agg.ecmpPorts, half+m)
		}
		agg.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			ep := d % numEdge
			if ep/half == pod {
				return ep % half
			}
			return half + ecmpPick(f.cfg.Seed, p.Flow, hop, half)
		}
	}
	for _, core := range cores {
		core.route = func(p *packet.Packet) int {
			d := f.dst(p)
			if d < 0 {
				return -1
			}
			return (d % numEdge) / half
		}
	}
	return nil
}
