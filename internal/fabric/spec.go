package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec names a tested-network topology. The zero value means "no fabric":
// the tester keeps its canonical single output-queued switch (§7.1). A
// non-zero Spec selects one of the named multi-switch shapes; the numeric
// fields parameterize the shape that uses them.
type Spec struct {
	// Kind is one of "", "dumbbell", "leafspine", "fattree", "parkinglot".
	Kind string
	// Leaves and Spines size a leafspine fabric.
	Leaves int
	Spines int
	// K is the fat-tree arity (even, >= 2): K pods of K/2 edge and K/2
	// aggregation switches over (K/2)^2 cores.
	K int
	// N is the parking-lot chain length in switches.
	N int
}

// Topology kind names.
const (
	KindDumbbell   = "dumbbell"
	KindLeafSpine  = "leafspine"
	KindFatTree    = "fattree"
	KindParkingLot = "parkinglot"
)

// IsZero reports whether the spec selects no fabric.
func (s Spec) IsZero() bool { return s.Kind == "" }

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	switch s.Kind {
	case "":
		return nil
	case KindDumbbell:
		return nil
	case KindLeafSpine:
		if s.Leaves < 1 || s.Spines < 1 {
			return fmt.Errorf("fabric: leafspine needs >= 1 leaf and >= 1 spine, got %dx%d", s.Leaves, s.Spines)
		}
		return nil
	case KindFatTree:
		if s.K < 2 || s.K%2 != 0 {
			return fmt.Errorf("fabric: fat-tree arity must be even and >= 2, got %d", s.K)
		}
		return nil
	case KindParkingLot:
		if s.N < 2 {
			return fmt.Errorf("fabric: parking lot needs >= 2 switches, got %d", s.N)
		}
		return nil
	default:
		return fmt.Errorf("fabric: unknown topology %q (have dumbbell, leafspine:LxS, fattree:K, parkinglot:N)", s.Kind)
	}
}

// String renders the canonical text form accepted by ParseSpec.
func (s Spec) String() string {
	switch s.Kind {
	case KindLeafSpine:
		return fmt.Sprintf("leafspine:%dx%d", s.Leaves, s.Spines)
	case KindFatTree:
		return fmt.Sprintf("fattree:%d", s.K)
	case KindParkingLot:
		return fmt.Sprintf("parkinglot:%d", s.N)
	default:
		return s.Kind
	}
}

// Diameter is the maximum number of links on any host-to-host forward
// path (host uplink + inter-switch hops + host downlink); the reverse ACK
// path is provisioned to match it, and INT budgeting uses it.
func (s Spec) Diameter() int {
	switch s.Kind {
	case KindDumbbell:
		return 3
	case KindLeafSpine:
		return 4
	case KindFatTree:
		return 6
	case KindParkingLot:
		return s.N + 1
	default:
		return 2 // the canonical single switch: tx link + egress link
	}
}

// Switches is the number of switches the spec builds.
func (s Spec) Switches() int {
	switch s.Kind {
	case KindDumbbell:
		return 2
	case KindLeafSpine:
		return s.Leaves + s.Spines
	case KindFatTree:
		half := s.K / 2
		return s.K*(half+half) + half*half
	case KindParkingLot:
		return s.N
	default:
		return 0
	}
}

// ParseSpec compiles the operator-facing topology string:
//
//	""                        no fabric (canonical single switch)
//	dumbbell                  two switches over one trunk
//	leafspine[:LxS]           L leaves, S spines (default 2x2)
//	fattree[:K]               K-ary fat-tree (default 4)
//	parkinglot[:N]            N-switch chain (default 3)
//
// "leaf-spine", "fat-tree", and "parking-lot" spellings are accepted; the
// LxS argument also parses with a comma ("4,2").
func ParseSpec(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return Spec{}, nil
	}
	name, arg := text, ""
	if i := strings.IndexByte(text, ':'); i >= 0 {
		name, arg = text[:i], text[i+1:]
	}
	var s Spec
	switch strings.ToLower(name) {
	case KindDumbbell:
		if arg != "" {
			return Spec{}, fmt.Errorf("fabric: dumbbell takes no parameter, got %q", arg)
		}
		s = Spec{Kind: KindDumbbell}
	case KindLeafSpine, "leaf-spine":
		s = Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}
		if arg != "" {
			parts := strings.SplitN(strings.ReplaceAll(arg, ",", "x"), "x", 2)
			if len(parts) != 2 {
				return Spec{}, fmt.Errorf("fabric: leafspine wants LxS, got %q", arg)
			}
			l, err1 := strconv.Atoi(parts[0])
			sp, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return Spec{}, fmt.Errorf("fabric: leafspine wants LxS, got %q", arg)
			}
			s.Leaves, s.Spines = l, sp
		}
	case KindFatTree, "fat-tree":
		s = Spec{Kind: KindFatTree, K: 4}
		if arg != "" {
			k, err := strconv.Atoi(arg)
			if err != nil {
				return Spec{}, fmt.Errorf("fabric: fattree wants an integer arity, got %q", arg)
			}
			s.K = k
		}
	case KindParkingLot, "parking-lot":
		s = Spec{Kind: KindParkingLot, N: 3}
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return Spec{}, fmt.Errorf("fabric: parkinglot wants an integer length, got %q", arg)
			}
			s.N = n
		}
	default:
		return Spec{}, fmt.Errorf("fabric: unknown topology %q (have dumbbell, leafspine:LxS, fattree:K, parkinglot:N)", name)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
