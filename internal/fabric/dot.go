package fabric

import (
	"fmt"
	"strings"
)

// DOTBody writes the fabric's nodes and edges into an open Graphviz
// digraph (the caller owns "digraph {...}"). Switch nodes carry live
// telemetry — received packets, queue drops, misroutes — and trunk edges
// carry per-port forwarded counts, so a rendering mid-run doubles as a
// per-hop load map. hostNode names the graph node standing in for host h
// (the tester's switch pipeline, in core's rendering).
func (f *Fabric) DOTBody(b *strings.Builder, hostNode func(h int) string) {
	for _, n := range f.switches {
		var drops uint64
		for _, ps := range n.s.Stats().Ports {
			drops += ps.Drops
		}
		fmt.Fprintf(b, "  %s [shape=box,label=\"%s\\nrx %d, drops %d",
			dotID(n.name), n.name, n.s.RxPackets(), drops)
		if m := n.s.Misroutes(); m > 0 {
			fmt.Fprintf(b, ", misroutes %d", m)
		}
		b.WriteString("\"];\n")
	}
	for _, n := range f.switches {
		for port, peer := range n.peers {
			if strings.HasPrefix(peer, "host") {
				continue // host edges are drawn below, against hostNode
			}
			c := n.s.PortCounters(port)
			fmt.Fprintf(b, "  %s -> %s [label=\"p%d: %d pkts\"];\n",
				dotID(n.name), dotID(peer), port, c.TxPackets)
		}
	}
	for h := 0; h < f.cfg.Hosts; h++ {
		leaf := f.switches[f.hostSw[h]]
		up := f.uplinks[h].Stats()
		down := leaf.s.PortCounters(f.hostPort[h])
		fmt.Fprintf(b, "  %s -> %s [label=\"DATA h%d: %d pkts\"];\n",
			hostNode(h), dotID(leaf.name), h, up.TxPackets)
		fmt.Fprintf(b, "  %s -> %s [label=\"to h%d: %d pkts\"];\n",
			dotID(leaf.name), hostNode(h), h, down.TxPackets)
	}
}

// dotID makes a switch name safe as a Graphviz node identifier.
func dotID(name string) string {
	return "fab_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
