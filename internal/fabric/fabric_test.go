package fabric

import (
	"fmt"
	"reflect"
	"testing"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func data(flow packet.FlowID, psn uint32) *packet.Packet {
	return packet.NewData(flow, psn, 1024, 0)
}

// build constructs a fabric with one sink per host and a flow->host table.
func build(t *testing.T, eng *sim.Engine, spec Spec, hosts int, table map[packet.FlowID]int, mod func(*Config)) (*Fabric, []*netem.Sink) {
	t.Helper()
	sinks := make([]*netem.Sink, hosts)
	nodes := make([]netem.Node, hosts)
	for i := range sinks {
		sinks[i] = &netem.Sink{}
		nodes[i] = sinks[i]
	}
	cfg := Config{
		Spec:  spec,
		Hosts: hosts,
		Seed:  7,
		Dst: func(p *packet.Packet) int {
			if d, ok := table[p.Flow]; ok {
				return d
			}
			return -1
		},
		Sinks: nodes,
	}
	if mod != nil {
		mod(&cfg)
	}
	f, err := Build(eng, cfg)
	if err != nil {
		t.Fatalf("Build(%v): %v", spec, err)
	}
	return f, sinks
}

func TestParseSpec(t *testing.T) {
	good := map[string]Spec{
		"":              {},
		"dumbbell":      {Kind: KindDumbbell},
		"leafspine":     {Kind: KindLeafSpine, Leaves: 2, Spines: 2},
		"leaf-spine":    {Kind: KindLeafSpine, Leaves: 2, Spines: 2},
		"leafspine:4x2": {Kind: KindLeafSpine, Leaves: 4, Spines: 2},
		"leafspine:4,2": {Kind: KindLeafSpine, Leaves: 4, Spines: 2},
		"fattree":       {Kind: KindFatTree, K: 4},
		"fat-tree:6":    {Kind: KindFatTree, K: 6},
		"parkinglot:5":  {Kind: KindParkingLot, N: 5},
	}
	for text, want := range good {
		got, err := ParseSpec(text)
		if err != nil || got != want {
			t.Errorf("ParseSpec(%q) = %+v, %v; want %+v", text, got, err, want)
		}
		// Canonical string forms must round-trip.
		if !got.IsZero() {
			back, err := ParseSpec(got.String())
			if err != nil || back != got {
				t.Errorf("round trip %q -> %q failed: %+v, %v", text, got.String(), back, err)
			}
		}
	}
	bad := []string{"ring", "dumbbell:2", "leafspine:0x2", "leafspine:x", "fattree:3", "fattree:x", "parkinglot:1"}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	eng := sim.NewEngine()
	sink := &netem.Sink{}
	dst := func(*packet.Packet) int { return 0 }
	cases := []Config{
		{},
		{Spec: Spec{Kind: KindDumbbell}}, // no hosts
		{Spec: Spec{Kind: KindDumbbell}, Hosts: 1},           // no Dst
		{Spec: Spec{Kind: KindDumbbell}, Hosts: 2, Dst: dst}, // too few sinks
		{Spec: Spec{Kind: "ring"}, Hosts: 1, Dst: dst, Sinks: []netem.Node{sink}},
		{Spec: Spec{Kind: KindFatTree, K: 2}, Hosts: 3, Dst: dst,
			Sinks: []netem.Node{sink, sink, sink}}, // k=2 supports 2 hosts
	}
	for i, cfg := range cases {
		if _, err := Build(eng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// deliverAll sends pkts packets for every host pair and checks full
// delivery — the routing reachability test all shapes must pass.
func deliverAll(t *testing.T, spec Spec, hosts int) {
	t.Helper()
	eng := sim.NewEngine()
	table := make(map[packet.FlowID]int)
	var flows []packet.FlowID
	id := packet.FlowID(1)
	type pair struct{ src, dst int }
	srcOf := make(map[packet.FlowID]pair)
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			table[id] = d
			srcOf[id] = pair{s, d}
			flows = append(flows, id)
			id++
		}
	}
	f, sinks := build(t, eng, spec, hosts, table, nil)
	const pkts = 5
	for _, fl := range flows {
		for i := 0; i < pkts; i++ {
			f.HostUplink(srcOf[fl].src).Send(data(fl, uint32(i)))
		}
	}
	eng.RunAll()
	var got uint64
	for _, s := range sinks {
		got += s.Packets
	}
	want := uint64(len(flows) * pkts)
	if got != want {
		t.Fatalf("%v delivered %d/%d packets", spec, got, want)
	}
	if m := f.Misroutes(); m != 0 {
		t.Fatalf("%v misrouted %d packets", spec, m)
	}
	// Per-host check: every host receives exactly its (hosts-1)*pkts.
	for h, s := range sinks {
		if s.Packets != uint64((hosts-1)*pkts) {
			t.Fatalf("%v host %d received %d, want %d", spec, h, s.Packets, (hosts-1)*pkts)
		}
	}
}

func TestAllToAllDelivery(t *testing.T) {
	deliverAll(t, Spec{Kind: KindDumbbell}, 5)
	deliverAll(t, Spec{Kind: KindParkingLot, N: 4}, 6)
	deliverAll(t, Spec{Kind: KindLeafSpine, Leaves: 3, Spines: 2}, 6)
	deliverAll(t, Spec{Kind: KindFatTree, K: 4}, 12)
}

func TestSwitchCountsMatchSpec(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindDumbbell},
		{Kind: KindParkingLot, N: 5},
		{Kind: KindLeafSpine, Leaves: 4, Spines: 2},
		{Kind: KindFatTree, K: 4},
	} {
		eng := sim.NewEngine()
		f, _ := build(t, eng, spec, 4, map[packet.FlowID]int{1: 0}, nil)
		if got := len(f.Switches()); got != spec.Switches() {
			t.Errorf("%v built %d switches, want %d", spec, got, spec.Switches())
		}
	}
}

func TestUnknownFlowCountedUnrouted(t *testing.T) {
	eng := sim.NewEngine()
	f, sinks := build(t, eng, Spec{Kind: KindDumbbell}, 2, map[packet.FlowID]int{}, nil)
	f.HostUplink(0).Send(data(99, 0))
	eng.RunAll()
	if sinks[0].Packets+sinks[1].Packets != 0 {
		t.Fatal("unknown flow delivered")
	}
	var unrouted uint64
	for _, st := range f.Stats() {
		unrouted += st.Unrouted
	}
	if unrouted != 1 {
		t.Fatalf("unrouted = %d, want 1", unrouted)
	}
}

// TestECMPDeterministicAndFlowPinned: the hash must pin every packet of a
// flow to one spine, spread many flows across spines, and replay the exact
// per-path counters for the same seed.
func TestECMPDeterministicAndFlowPinned(t *testing.T) {
	spec := Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 4}
	run := func(seed uint64) []PathCounter {
		eng := sim.NewEngine()
		table := make(map[packet.FlowID]int)
		for fl := 1; fl <= 64; fl++ {
			table[packet.FlowID(fl)] = 1 // host 1, leaf 1: always cross-rack from host 0
		}
		f, sinks := build(t, eng, spec, 2, table, func(c *Config) {
			c.Seed = seed
			c.QueueBytes = 8 << 20 // the whole burst is injected at t=0
		})
		for fl := 1; fl <= 64; fl++ {
			for i := 0; i < 10; i++ {
				f.HostUplink(0).Send(data(packet.FlowID(fl), uint32(i)))
			}
		}
		eng.RunAll()
		if sinks[1].Packets != 640 {
			t.Fatalf("delivered %d/640", sinks[1].Packets)
		}
		return f.ECMPPaths()
	}

	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different path counters:\n%v\n%v", a, b)
	}
	// Flow pinning: every flow sent 10 packets, so each leaf0 uplink's
	// count must be a multiple of 10 (no flow straddles two spines).
	spread := 0
	for _, p := range a {
		if p.Switch != "leaf0" {
			continue
		}
		if p.TxPackets%10 != 0 {
			t.Fatalf("path %s->%s carried %d packets; flows straddle spines", p.Switch, p.Next, p.TxPackets)
		}
		if p.TxPackets > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("64 flows all hashed to %d spine(s)", spread)
	}
	// A different seed must give a different (but internally consistent)
	// spread with overwhelming probability.
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Log("seeds 7 and 8 produced identical spreads (possible but unlikely)")
	}
	if imb := Imbalance(a); imb < 1 {
		t.Fatalf("imbalance %v < 1", imb)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("Imbalance(nil) = %v", got)
	}
	paths := []PathCounter{
		{Switch: "leaf0", Next: "spine0", TxPackets: 30},
		{Switch: "leaf0", Next: "spine1", TxPackets: 10},
		{Switch: "leaf1", Next: "spine0", TxPackets: 30},
		{Switch: "leaf1", Next: "spine1", TxPackets: 10},
	}
	// spine0 carries 60 of 80 over 2 next hops: mean 40, max 60 -> 1.5.
	if got := Imbalance(paths); got != 1.5 {
		t.Fatalf("Imbalance = %v, want 1.5", got)
	}
}

// TestPFCHopByHop: a 2:1 fan-in over the dumbbell trunk must, with PFC on,
// pause the sending hosts' uplinks instead of dropping in the trunk queue.
func TestPFCHopByHop(t *testing.T) {
	run := func(pfc bool) (drops, delivered, pauses uint64) {
		eng := sim.NewEngine()
		table := map[packet.FlowID]int{1: 1, 2: 1}
		f, sinks := build(t, eng, Spec{Kind: KindDumbbell}, 4, table, func(c *Config) {
			c.EnablePFC = pfc
			c.QueueBytes = 256 << 10
			// Low watermark: the 2:1 fan-in keeps filling the trunk queue
			// for one pause-propagation delay after XOFF trips, so leave
			// bandwidth-delay headroom above it.
			c.PFCXOFFBytes = 32 << 10
		})
		for i := 0; i < 400; i++ {
			f.HostUplink(0).Send(data(1, uint32(i)))
			f.HostUplink(2).Send(data(2, uint32(i)))
		}
		eng.RunAll()
		for _, st := range f.Stats() {
			for _, ps := range st.Ports {
				drops += ps.Drops
			}
		}
		return drops, sinks[1].Packets, f.PFCPauses()
	}
	drops, _, _ := run(false)
	if drops == 0 {
		t.Fatal("baseline without PFC did not drop (test not stressing the trunk)")
	}
	drops, delivered, pauses := run(true)
	if drops != 0 {
		t.Fatalf("PFC enabled but fabric dropped %d packets", drops)
	}
	if delivered != 800 {
		t.Fatalf("delivered %d/800 with PFC", delivered)
	}
	if pauses == 0 {
		t.Fatal("PFC never paused despite 2:1 trunk overload")
	}
}

func TestHostAccessors(t *testing.T) {
	eng := sim.NewEngine()
	f, _ := build(t, eng, Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}, 4,
		map[packet.FlowID]int{1: 3}, nil)
	for h := 0; h < 4; h++ {
		if f.HostUplink(h) == nil || f.HostDownlink(h) == nil {
			t.Fatalf("host %d missing links", h)
		}
		want := fmt.Sprintf("leaf%d", h%2)
		if got := f.HostLeaf(h); got != want {
			t.Fatalf("host %d on %s, want %s", h, got, want)
		}
	}
	if d := f.Spec().Diameter(); d != 4 {
		t.Fatalf("leafspine diameter = %d, want 4", d)
	}
}

func TestResolveLink(t *testing.T) {
	eng := sim.NewEngine()
	// 2x2 leaf-spine, 4 hosts: hosts are struck round-robin across leaves,
	// so host0/host2 sit on leaf0 and host1/host3 on leaf1.
	f, _ := build(t, eng, Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}, 4, nil, nil)

	if l, err := f.ResolveLink("host0->leaf0"); err != nil || l != f.HostUplink(0) {
		t.Fatalf("host0->leaf0 = %p, %v; want uplink %p", l, err, f.HostUplink(0))
	}
	if l, err := f.ResolveLink("leaf1->host3"); err != nil || l != f.HostDownlink(3) {
		t.Fatalf("leaf1->host3 = %p, %v; want downlink %p", l, err, f.HostDownlink(3))
	}
	// Trunk links resolve in both directions to distinct links.
	up, err := f.ResolveLink("leaf0->spine1")
	if err != nil {
		t.Fatal(err)
	}
	down, err := f.ResolveLink("spine1->leaf0")
	if err != nil {
		t.Fatal(err)
	}
	if up == down {
		t.Fatal("leaf0->spine1 and spine1->leaf0 resolved to the same link")
	}

	bad := []string{
		"leaf0",         // not src->dst
		"leaf0->",       // empty dst
		"leaf9->spine0", // unknown switch
		"leaf0->leaf1",  // no such adjacency
		"host9->leaf0",  // host out of range
		"host1->leaf0",  // host1 attaches to leaf1
		"leaf0->host1",  // wrong leaf for downlink
	}
	for _, name := range bad {
		if _, err := f.ResolveLink(name); err == nil {
			t.Errorf("ResolveLink(%q) accepted", name)
		}
	}
}

func TestLinkNamesResolveAndAreStable(t *testing.T) {
	eng := sim.NewEngine()
	f, _ := build(t, eng, Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}, 4, nil, nil)
	names := f.LinkNames()
	// 2 leaves x 2 spine uplinks + 2 spines x 2 downlinks + 4 host
	// downlinks + 4 host uplinks.
	if len(names) != 16 {
		t.Fatalf("LinkNames() returned %d names: %v", len(names), names)
	}
	seen := map[*netem.Link]string{}
	for _, name := range names {
		l, err := f.ResolveLink(name)
		if err != nil {
			t.Fatalf("ResolveLink(%q): %v", name, err)
		}
		if prev, dup := seen[l]; dup {
			t.Fatalf("%q and %q resolved to the same link", prev, name)
		}
		seen[l] = name
	}
	if got := f.LinkNames(); !reflect.DeepEqual(got, names) {
		t.Fatalf("LinkNames() unstable:\n%v\n%v", names, got)
	}
}
