// Package fabric composes netem switches and links into multi-switch
// tested networks: the dumbbell, parking-lot, leaf-spine, and fat-tree
// shapes congestion-control papers evaluate on. The tester's data ports
// attach as hosts — port i's DATA enters the fabric at host i's leaf and
// leaves toward the tester's receiver logic at the destination host's
// downlink — so core.Tester runs unchanged against any shape.
//
// Routing is destination-based: a DstFunc resolves each packet to its
// destination host, and every switch forwards toward that host's leaf.
// Where several equal-cost next hops exist (leaf-to-spine, edge-to-agg,
// agg-to-core), the choice is deterministic ECMP: a splitmix64-style hash
// of (seed, flow, hop), so every packet of a flow takes one path and the
// whole fabric replays bit-for-bit from the configuration seed. Per-path
// counters expose the hash imbalance that makes ECMP testing interesting.
package fabric

import (
	"fmt"
	"strconv"
	"strings"

	"marlin/internal/aqm"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// DstFunc resolves a packet to its destination host port, or a negative
// value if the flow is unknown (the packet is then counted unrouted).
type DstFunc func(p *packet.Packet) int

// Config assembles a fabric.
type Config struct {
	// Spec selects the shape (required, non-zero).
	Spec Spec
	// Hosts is how many tester data ports attach (host h lives on leaf
	// h mod leaves, in every shape).
	Hosts int
	// PortRate is the line rate of every fabric link (default 100 Gbps).
	PortRate sim.Rate
	// LinkDelay is the one-way propagation delay per link (default 2 us).
	LinkDelay sim.Duration
	// QueueBytes bounds every switch egress queue (0 = netem default).
	QueueBytes int
	// ECN configures threshold marking at every switch egress queue.
	ECN netem.ECNConfig
	// AQM deploys an active queue management discipline on every switch
	// egress queue (zero = drop-tail + ECN).
	AQM aqm.Spec
	// EnableINT stamps per-hop telemetry on DATA at every fabric link.
	EnableINT bool
	// Jitter adds uniform [0, Jitter] propagation jitter on the host
	// downlinks (the last hop), like core's ForwardJitter.
	Jitter sim.Duration
	// EnablePFC makes the fabric lossless hop by hop: every egress queue
	// pauses all links feeding its switch at the XOFF watermark, so
	// backpressure propagates upstream switch by switch.
	EnablePFC bool
	// PFCXOFFBytes overrides the pause watermark (0 = half the queue).
	PFCXOFFBytes int
	// Seed drives the ECMP hash and the per-link marking streams.
	Seed uint64
	// Dst resolves packets to destination hosts (required).
	Dst DstFunc
	// Sinks receive delivered packets: Sinks[h] is host h's receiver
	// (required, len >= Hosts).
	Sinks []netem.Node
	// Engines maps a switch build index to the engine it runs on; nil
	// means every switch runs on the engine passed to Build. Sharded
	// builds provide it from a PartitionPlan. Host endpoints (uplink,
	// downlink, sink) always live on their leaf-tier switch's engine, so
	// Sinks[h] must be driven by the engine of the switch owning host h.
	Engines func(swIdx int) *sim.Engine
	// Remote builds the cross-partition endpoint for a trunk whose two
	// ends map to different engines: the returned Remote carries drained
	// packets from srcEng's goroutine to dst, which runs on dstEng.
	// Required whenever Engines splits connected switches.
	Remote func(srcEng, dstEng *sim.Engine, dst netem.Node) netem.Remote
}

// sw is one fabric switch plus the bookkeeping the builder needs: the
// downstream peer name per output port, the ECMP uplink group, and the
// links feeding the switch (the PFC upstream set).
type sw struct {
	s         *netem.Switch
	name      string
	idx       int
	route     netem.RouteFunc
	peers     []string
	ecmpPorts []int
	inLinks   []*netem.Link
}

// Fabric is a built multi-switch tested network.
type Fabric struct {
	cfg      Config
	switches []*sw
	uplinks  []*netem.Link
	hostSw   []int // switch index owning host h's downlink
	hostPort []int // port index of host h's downlink on that switch
	pfcs     []*netem.PFC
	rng      *sim.Rand
}

// Build wires the fabric described by cfg.
func Build(eng *sim.Engine, cfg Config) (*Fabric, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Spec.IsZero() {
		return nil, fmt.Errorf("fabric: empty spec (the canonical single switch needs no fabric)")
	}
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("fabric: need at least one host, got %d", cfg.Hosts)
	}
	if cfg.Dst == nil {
		return nil, fmt.Errorf("fabric: nil DstFunc")
	}
	if len(cfg.Sinks) < cfg.Hosts {
		return nil, fmt.Errorf("fabric: %d sinks for %d hosts", len(cfg.Sinks), cfg.Hosts)
	}
	if cfg.PortRate == 0 {
		cfg.PortRate = 100 * sim.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = sim.Micros(2)
	}
	f := &Fabric{
		cfg:      cfg,
		uplinks:  make([]*netem.Link, cfg.Hosts),
		hostSw:   make([]int, cfg.Hosts),
		hostPort: make([]int, cfg.Hosts),
		// Decouple the fabric's marking/jitter streams from other users
		// of the run seed with a fixed mix constant.
		rng: sim.NewRand(cfg.Seed ^ 0xfab21c0de),
	}
	var err error
	switch cfg.Spec.Kind {
	case KindDumbbell:
		err = f.buildDumbbell(eng)
	case KindLeafSpine:
		err = f.buildLeafSpine(eng)
	case KindFatTree:
		err = f.buildFatTree(eng)
	case KindParkingLot:
		err = f.buildParkingLot(eng)
	default:
		err = fmt.Errorf("fabric: unknown topology %q", cfg.Spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	if cfg.EnablePFC {
		if cfg.Engines != nil {
			// A pause frame from one partition's queue acting on another
			// partition's link would be a cross-shard write mid-round.
			return nil, fmt.Errorf("fabric: PFC is not supported on a partitioned build")
		}
		if err := f.wirePFC(eng); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ecmpPick deterministically selects among n equal-cost next hops. It is a
// pure splitmix64-style finalizer over (seed, flow, hop): no generator
// state, so the choice is independent of packet arrival order, and every
// packet of a flow at a given switch takes the same path — the per-flow
// consistency real ECMP hashing provides, reproducible from the seed.
func ecmpPick(seed uint64, flow packet.FlowID, hop uint64, n int) int {
	z := seed + 0x9e3779b97f4a7c15*(hop+1) + (uint64(flow)+1)*0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// addSwitch creates a switch whose routing defers to n.route, set by the
// topology builder after the graph is wired.
func (f *Fabric) addSwitch(name string) *sw {
	n := &sw{name: name, idx: len(f.switches)}
	n.s = netem.NewSwitch(name, func(p *packet.Packet) int { return n.route(p) })
	f.switches = append(f.switches, n)
	return n
}

// engineOf resolves the engine a switch runs on: the per-partition mapping
// when one is configured, else the build engine.
func (f *Fabric) engineOf(eng *sim.Engine, n *sw) *sim.Engine {
	if f.cfg.Engines == nil {
		return eng
	}
	return f.cfg.Engines(n.idx)
}

// trunkCfg is the link config for inter-switch links.
func (f *Fabric) trunkCfg() netem.LinkConfig {
	return netem.LinkConfig{
		Rate: f.cfg.PortRate, Delay: f.cfg.LinkDelay,
		QueueBytes: f.cfg.QueueBytes, ECN: f.cfg.ECN, AQM: f.cfg.AQM,
		EnableINT: f.cfg.EnableINT, RNG: f.rng.Split(),
	}
}

// connect adds an output port on a toward b, attributing RX at b to port
// bPort (the port pair facing a), and registers the link in b's PFC
// upstream set. When a and b live on different engines the link is built
// in remote mode: queueing, serialization, and INT stay on a's engine, and
// the drained packet crosses to b through the configured Remote endpoint.
// It returns a's new port index.
func (f *Fabric) connect(eng *sim.Engine, a, b *sw, bPort int) int {
	aEng, bEng := f.engineOf(eng, a), f.engineOf(eng, b)
	in := b.s.PortIn(bPort)
	var i int
	if aEng == bEng {
		i = a.s.AddPort(aEng, f.trunkCfg(), in)
	} else {
		if f.cfg.Remote == nil {
			panic(fmt.Sprintf("fabric: %s and %s split across engines with no Remote factory", a.name, b.name))
		}
		i = a.s.AddPort(aEng, f.trunkCfg(), nil)
		a.s.Port(i).SetRemote(f.cfg.Remote(aEng, bEng, in))
	}
	a.peers = append(a.peers, b.name)
	b.inLinks = append(b.inLinks, a.s.Port(i))
	return i
}

// attachHost gives host h its downlink (an output port on leaf toward the
// host's sink) and its uplink (a standalone link from the tester into the
// leaf, attributed to the same port).
func (f *Fabric) attachHost(eng *sim.Engine, leaf *sw, leafIdx, h int) {
	eng = f.engineOf(eng, leaf)
	cfg := f.trunkCfg()
	cfg.Jitter = f.cfg.Jitter
	port := leaf.s.AddPort(eng, cfg, f.cfg.Sinks[h])
	leaf.peers = append(leaf.peers, fmt.Sprintf("host%d", h))
	f.hostSw[h] = leafIdx
	f.hostPort[h] = port

	upQueue := f.cfg.QueueBytes
	if f.cfg.EnablePFC && upQueue < 4<<20 {
		// PFC backpressure parks packets at the host uplinks; give them
		// room so losslessness holds end to end (mirrors core's sizing).
		upQueue = 4 << 20
	}
	up := netem.NewLink(eng, netem.LinkConfig{
		Rate: f.cfg.PortRate, Delay: f.cfg.LinkDelay, QueueBytes: upQueue,
		EnableINT: f.cfg.EnableINT,
	}, leaf.s.PortIn(port))
	leaf.inLinks = append(leaf.inLinks, up)
	f.uplinks[h] = up
}

// dst resolves a packet's destination host, clamping unknown and
// out-of-range hosts to "unrouted".
func (f *Fabric) dst(p *packet.Packet) int {
	d := f.cfg.Dst(p)
	if d < 0 || d >= f.cfg.Hosts {
		return -1
	}
	return d
}

// wirePFC makes every egress queue pause all links feeding its switch, so
// congestion anywhere propagates hop by hop back to the host uplinks.
func (f *Fabric) wirePFC(eng *sim.Engine) error {
	for _, n := range f.switches {
		if len(n.inLinks) == 0 {
			continue
		}
		for i := 0; i < n.s.Ports(); i++ {
			q := n.s.Port(i).Queue()
			xoff := f.cfg.PFCXOFFBytes
			if xoff == 0 {
				xoff = q.Capacity() / 2
			}
			pfc, err := netem.NewPFC(eng, q, n.inLinks, netem.PFCConfig{
				XOFF: xoff, XON: xoff / 2, Delay: f.cfg.LinkDelay,
			})
			if err != nil {
				return fmt.Errorf("fabric: %s port %d: %w", n.name, i, err)
			}
			f.pfcs = append(f.pfcs, pfc)
		}
	}
	return nil
}

// Spec returns the shape the fabric was built from.
func (f *Fabric) Spec() Spec { return f.cfg.Spec }

// HostUplink returns the link carrying host h's traffic into the fabric;
// the tester connects its data port h to it.
func (f *Fabric) HostUplink(h int) *netem.Link { return f.uplinks[h] }

// HostDownlink returns the fabric's last-hop link toward host h; loss and
// ECN scripts attach here (§7.1).
func (f *Fabric) HostDownlink(h int) *netem.Link {
	return f.switches[f.hostSw[h]].s.Port(f.hostPort[h])
}

// HostLeaf returns the name of the switch host h attaches to.
func (f *Fabric) HostLeaf(h int) string { return f.switches[f.hostSw[h]].name }

// ResolveLink maps a directed "src->dst" endpoint pair onto the link that
// carries traffic from src to dst. Endpoints are switch names as the
// topology builders assign them (leaf0, spine1, edge2, agg0, core1, hop0)
// or hosts (host3). "hostN->leafX" is host N's uplink into the fabric;
// "leafX->hostN" is its downlink. Fault plans address links by these names.
func (f *Fabric) ResolveLink(name string) (*netem.Link, error) {
	src, dst, ok := strings.Cut(name, "->")
	if !ok || src == "" || dst == "" {
		return nil, fmt.Errorf("fabric: link name %q is not of the form src->dst", name)
	}
	if h, isHost := parseHost(src); isHost {
		if h < 0 || h >= f.cfg.Hosts {
			return nil, fmt.Errorf("fabric: no such host in %q (have %d hosts)", name, f.cfg.Hosts)
		}
		if leaf := f.switches[f.hostSw[h]].name; dst != leaf {
			return nil, fmt.Errorf("fabric: host%d attaches to %s, not %s", h, leaf, dst)
		}
		return f.uplinks[h], nil
	}
	if h, isHost := parseHost(dst); isHost {
		if h < 0 || h >= f.cfg.Hosts {
			return nil, fmt.Errorf("fabric: no such host in %q (have %d hosts)", name, f.cfg.Hosts)
		}
		if leaf := f.switches[f.hostSw[h]].name; src != leaf {
			return nil, fmt.Errorf("fabric: host%d attaches to %s, not %s", h, leaf, src)
		}
		return f.HostDownlink(h), nil
	}
	for _, n := range f.switches {
		if n.name != src {
			continue
		}
		for port, peer := range n.peers {
			if peer == dst {
				return n.s.Port(port), nil
			}
		}
		return nil, fmt.Errorf("fabric: %s has no link toward %s (peers: %s)",
			src, dst, strings.Join(n.peers, " "))
	}
	return nil, fmt.Errorf("fabric: no switch named %q", src)
}

// LinkNames lists every addressable link name in deterministic build
// order: all switch egress links first (including host downlinks), then
// the host uplinks.
func (f *Fabric) LinkNames() []string {
	var out []string
	for _, n := range f.switches {
		for _, peer := range n.peers {
			out = append(out, n.name+"->"+peer)
		}
	}
	for h := 0; h < f.cfg.Hosts; h++ {
		out = append(out, fmt.Sprintf("host%d->%s", h, f.switches[f.hostSw[h]].name))
	}
	return out
}

// parseHost recognises "hostN" endpoint names.
func parseHost(s string) (int, bool) {
	num, ok := strings.CutPrefix(s, "host")
	if !ok || num == "" {
		return 0, false
	}
	h, err := strconv.Atoi(num)
	if err != nil {
		return 0, false
	}
	return h, true
}

// Switches lists the fabric's switches in build order.
func (f *Fabric) Switches() []*netem.Switch {
	out := make([]*netem.Switch, len(f.switches))
	for i, n := range f.switches {
		out[i] = n.s
	}
	return out
}

// Stats snapshots per-switch, per-port telemetry across the fabric.
func (f *Fabric) Stats() []netem.Stats {
	out := make([]netem.Stats, len(f.switches))
	for i, n := range f.switches {
		out[i] = n.s.Stats()
	}
	return out
}

// Misroutes sums table-bug discards across all switches.
func (f *Fabric) Misroutes() uint64 {
	var n uint64
	for _, s := range f.switches {
		n += s.s.Misroutes()
	}
	return n
}

// PFCPauses reports pause episodes across the fabric's controllers.
func (f *Fabric) PFCPauses() uint64 {
	var n uint64
	for _, p := range f.pfcs {
		n += p.Pauses()
	}
	return n
}

// PathCounter is the cumulative traffic one member of an ECMP group
// carried: the switch that made the choice, the chosen next hop, and the
// egress counters of the port toward it.
type PathCounter struct {
	Switch    string
	Port      int
	Next      string
	TxPackets uint64
	TxBytes   uint64
}

// ECMPPaths lists every ECMP group member with its traffic counters, in
// deterministic build order; comparing members of a group measures the
// hash imbalance.
func (f *Fabric) ECMPPaths() []PathCounter {
	var out []PathCounter
	for _, n := range f.switches {
		for _, port := range n.ecmpPorts {
			c := n.s.PortCounters(port)
			out = append(out, PathCounter{
				Switch: n.name, Port: port, Next: n.peers[port],
				TxPackets: c.TxPackets, TxBytes: c.TxBytes,
			})
		}
	}
	return out
}

// Imbalance summarises ECMP hash skew over path counters: the maximum
// next-hop load divided by the mean (1 = perfectly balanced, 0 if no
// traffic). Loads aggregate per next-hop name, so for a leaf-spine it is
// the skew across spines.
func Imbalance(paths []PathCounter) float64 {
	totals := make(map[string]uint64)
	var order []string
	for _, p := range paths {
		if _, ok := totals[p.Next]; !ok {
			order = append(order, p.Next)
		}
		totals[p.Next] += p.TxPackets
	}
	if len(order) == 0 {
		return 0
	}
	var sum, max uint64
	for _, next := range order {
		t := totals[next]
		sum += t
		if t > max {
			max = t
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(order))
	return float64(max) / mean
}
