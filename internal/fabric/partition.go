package fabric

import (
	"fmt"

	"marlin/internal/sim"
)

// PartitionPlan assigns every switch and every host of a topology to a
// partition (an island that can run on its own engine). The plan is a pure
// function of the Spec and host count — it never depends on how many
// workers later execute it — so the same topology always partitions the
// same way and cross-shard delivery order stays reproducible.
//
// Hosts are always co-located with their leaf-tier switch: a host's uplink
// and downlink never cross a partition boundary, only inter-switch trunks
// do. Each shape partitions along its natural fault domain:
//
//	dumbbell      left | right (2 partitions; the trunk is the only cut)
//	parkinglot:N  one partition per hop switch
//	leafspine:LxS one partition per leaf; spine s joins partition s mod L
//	fattree:K     one partition per pod; core (j,m) joins partition
//	              (j*K/2+m) mod K
type PartitionPlan struct {
	// Parts is the number of partitions.
	Parts int
	// SwitchPart maps switch build index -> partition.
	SwitchPart []int
	// HostPart maps host -> partition (always the partition of the
	// leaf-tier switch the host attaches to).
	HostPart []int
}

// PartitionSpec computes the canonical partition plan for a topology. The
// zero Spec (canonical single switch) has no fabric to cut and is an error.
func PartitionSpec(spec Spec, hosts int) (PartitionPlan, error) {
	if err := spec.Validate(); err != nil {
		return PartitionPlan{}, err
	}
	if spec.IsZero() {
		return PartitionPlan{}, fmt.Errorf("fabric: cannot partition the canonical single switch (set a topology)")
	}
	if hosts < 1 {
		return PartitionPlan{}, fmt.Errorf("fabric: need at least one host to partition, got %d", hosts)
	}
	p := PartitionPlan{HostPart: make([]int, hosts)}
	switch spec.Kind {
	case KindDumbbell:
		p.Parts = 2
		p.SwitchPart = []int{0, 1}
		for h := range p.HostPart {
			p.HostPart[h] = h % 2
		}
	case KindParkingLot:
		p.Parts = spec.N
		p.SwitchPart = make([]int, spec.N)
		for i := range p.SwitchPart {
			p.SwitchPart[i] = i
		}
		for h := range p.HostPart {
			p.HostPart[h] = h % spec.N
		}
	case KindLeafSpine:
		L, S := spec.Leaves, spec.Spines
		p.Parts = L
		p.SwitchPart = make([]int, L+S)
		for l := 0; l < L; l++ {
			p.SwitchPart[l] = l
		}
		for s := 0; s < S; s++ {
			p.SwitchPart[L+s] = s % L
		}
		for h := range p.HostPart {
			p.HostPart[h] = h % L
		}
	case KindFatTree:
		k := spec.K
		half := k / 2
		numEdge := k * half
		p.Parts = k
		p.SwitchPart = make([]int, numEdge+k*half+half*half)
		for e := 0; e < numEdge; e++ {
			p.SwitchPart[e] = e / half
		}
		for a := 0; a < k*half; a++ {
			p.SwitchPart[numEdge+a] = a / half
		}
		for c := 0; c < half*half; c++ {
			p.SwitchPart[numEdge+k*half+c] = c % k
		}
		for h := range p.HostPart {
			p.HostPart[h] = (h % numEdge) / half
		}
	default:
		return PartitionPlan{}, fmt.Errorf("fabric: no partition rule for topology %q", spec.Kind)
	}
	return p, nil
}

// PropagationDelay looks up one link's configured propagation delay by its
// "src->dst" name (ResolveLink syntax). Topology validation and the
// lookahead computation both use it.
func (f *Fabric) PropagationDelay(name string) (sim.Duration, error) {
	l, err := f.ResolveLink(name)
	if err != nil {
		return 0, err
	}
	return l.Delay(), nil
}

// MinInterPartitionDelay computes the conservative-synchronization
// lookahead for a partition plan: the minimum propagation delay over every
// link whose two endpoints live in different partitions. Host up/downlinks
// never cross (hosts are co-located with their leaf), so only inter-switch
// trunks are examined. A plan that cuts nothing (or a zero lookahead link
// on the cut) is an error — conservative parallel execution needs strictly
// positive lookahead to make progress.
func (f *Fabric) MinInterPartitionDelay(plan PartitionPlan) (sim.Duration, error) {
	if len(plan.SwitchPart) != len(f.switches) {
		return 0, fmt.Errorf("fabric: plan covers %d switches, fabric has %d",
			len(plan.SwitchPart), len(f.switches))
	}
	byName := make(map[string]int, len(f.switches))
	for i, n := range f.switches {
		byName[n.name] = i
	}
	var min sim.Duration
	found := false
	for i, n := range f.switches {
		for port, peer := range n.peers {
			j, isSwitch := byName[peer]
			if !isSwitch || plan.SwitchPart[i] == plan.SwitchPart[j] {
				continue
			}
			d := n.s.Port(port).Delay()
			if d <= 0 {
				return 0, fmt.Errorf("fabric: cross-partition link %s->%s has zero propagation delay (no lookahead)",
					n.name, peer)
			}
			if !found || d < min {
				min, found = d, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("fabric: partition plan cuts no links (%d partitions over %d switches)",
			plan.Parts, len(f.switches))
	}
	return min, nil
}
