package fabric

import (
	"reflect"
	"testing"

	"marlin/internal/aqm"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func TestPartitionSpecShapes(t *testing.T) {
	cases := []struct {
		spec  Spec
		hosts int
		want  PartitionPlan
	}{
		{Spec{Kind: KindDumbbell}, 4, PartitionPlan{
			Parts:      2,
			SwitchPart: []int{0, 1},
			HostPart:   []int{0, 1, 0, 1},
		}},
		{Spec{Kind: KindParkingLot, N: 3}, 5, PartitionPlan{
			Parts:      3,
			SwitchPart: []int{0, 1, 2},
			HostPart:   []int{0, 1, 2, 0, 1},
		}},
		// Leaves 0,1 then spines 0,1: spine s joins partition s mod L.
		{Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}, 4, PartitionPlan{
			Parts:      2,
			SwitchPart: []int{0, 1, 0, 1},
			HostPart:   []int{0, 1, 0, 1},
		}},
		// fattree:4 — 8 edge (2 per pod), 8 agg (2 per pod), 4 core
		// (core c joins pod c mod 4); hosts follow their edge switch.
		{Spec{Kind: KindFatTree, K: 4}, 16, PartitionPlan{
			Parts: 4,
			SwitchPart: []int{
				0, 0, 1, 1, 2, 2, 3, 3, // edge
				0, 0, 1, 1, 2, 2, 3, 3, // agg
				0, 1, 2, 3, // core
			},
			HostPart: []int{0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3},
		}},
	}
	for _, tc := range cases {
		got, err := PartitionSpec(tc.spec, tc.hosts)
		if err != nil {
			t.Errorf("PartitionSpec(%v, %d): %v", tc.spec, tc.hosts, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("PartitionSpec(%v, %d) =\n%+v, want\n%+v", tc.spec, tc.hosts, got, tc.want)
		}
	}
}

func TestPartitionSpecErrors(t *testing.T) {
	if _, err := PartitionSpec(Spec{}, 4); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := PartitionSpec(Spec{Kind: KindDumbbell}, 0); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := PartitionSpec(Spec{Kind: "ring"}, 4); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMinInterPartitionDelay(t *testing.T) {
	spec := Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}
	eng := sim.NewEngine()
	f, _ := build(t, eng, spec, 4, map[packet.FlowID]int{}, func(c *Config) {
		c.LinkDelay = 3 * sim.Microsecond
	})
	plan, err := PartitionSpec(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	look, err := f.MinInterPartitionDelay(plan)
	if err != nil {
		t.Fatal(err)
	}
	if look != 3*sim.Microsecond {
		t.Errorf("lookahead = %v, want the 3us trunk delay", look)
	}

	// A plan sized for a different fabric is rejected.
	if _, err := f.MinInterPartitionDelay(PartitionPlan{Parts: 2, SwitchPart: []int{0, 1}}); err == nil {
		t.Error("mismatched plan accepted")
	}
	// A plan that cuts nothing has no lookahead to offer.
	if _, err := f.MinInterPartitionDelay(PartitionPlan{
		Parts: 1, SwitchPart: []int{0, 0, 0, 0},
	}); err == nil {
		t.Error("cut-free plan accepted")
	}
}

func TestPropagationDelayLookup(t *testing.T) {
	eng := sim.NewEngine()
	f, _ := build(t, eng, Spec{Kind: KindDumbbell}, 2, map[packet.FlowID]int{}, func(c *Config) {
		c.LinkDelay = 5 * sim.Microsecond
	})
	d, err := f.PropagationDelay("left->right")
	if err != nil {
		t.Fatal(err)
	}
	if d != 5*sim.Microsecond {
		t.Errorf("PropagationDelay(left->right) = %v, want 5us", d)
	}
	if _, err := f.PropagationDelay("left->nowhere"); err == nil {
		t.Error("unknown link accepted")
	}
}

// TestEnginesHookDoesNotPerturbDraws is the RNG re-partitioning regression:
// supplying an Engines hook (here mapping every switch to the same engine,
// so the build exercises the hook without needing a runner) must leave every
// build-order RNG draw — and therefore every probabilistic marking decision
// — exactly where the hook-free build put it.
func TestEnginesHookDoesNotPerturbDraws(t *testing.T) {
	spec := Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2}
	const hosts = 4
	table := map[packet.FlowID]int{}
	for fl := packet.FlowID(1); fl <= 12; fl++ {
		table[fl] = 0 // incast into host 0 to build queues and draw marks
	}
	run := func(hook bool) ([]netem.Stats, []PathCounter) {
		eng := sim.NewEngine()
		f, _ := build(t, eng, spec, hosts, table, func(c *Config) {
			red, err := aqm.ParseSpec("red:min=2000,max=30000")
			if err != nil {
				t.Fatal(err)
			}
			c.AQM = red
			c.QueueBytes = 32 << 10
			if hook {
				c.Engines = func(int) *sim.Engine { return eng }
			}
		})
		for fl := packet.FlowID(1); fl <= 12; fl++ {
			src := int(fl) % (hosts - 1)
			for i := 0; i < 50; i++ {
				f.HostUplink(1 + src).Send(data(fl, uint32(i)))
			}
		}
		eng.RunAll()
		return f.Stats(), f.ECMPPaths()
	}
	plainStats, plainPaths := run(false)
	hookStats, hookPaths := run(true)
	if !reflect.DeepEqual(plainStats, hookStats) {
		t.Errorf("Engines hook perturbed switch stats:\nplain %+v\nhook  %+v", plainStats, hookStats)
	}
	if !reflect.DeepEqual(plainPaths, hookPaths) {
		t.Errorf("Engines hook perturbed ECMP paths:\nplain %+v\nhook  %+v", plainPaths, hookPaths)
	}
}
