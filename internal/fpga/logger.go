package fpga

import (
	"marlin/internal/cc"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Record is one fine-grained log entry: "each computation capable of
// logging 16B of data and a timestamp derived from a 322 MHz hardware
// clock" (§5.1).
type Record struct {
	At   sim.Time
	Flow packet.FlowID
	Data [16]byte
}

// qdmaPacketSize is the aggregation unit the logger uploads to the host:
// "we chose to aggregate the logged content and upload it to the host in
// the form of 1024B packets" (§5.1).
const qdmaPacketSize = 1024

// recordWireSize is one record's on-wire footprint in a QDMA packet:
// 16 B payload + 8 B timestamp + 4 B flow ID.
const recordWireSize = 16 + 8 + 4

// Logger is the fine-grained logging module. It retains up to capacity
// records in a ring (oldest evicted first) and tracks how many QDMA
// upload packets the recorded volume corresponds to.
type Logger struct {
	capacity int
	records  []Record
	start    int // ring start when full

	total   uint64
	evicted uint64
}

// NewLogger creates a logger retaining up to capacity records
// (0 = 1,048,576).
func NewLogger(capacity int) *Logger {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Logger{capacity: capacity}
}

// Record appends one entry.
func (l *Logger) Record(at sim.Time, flow packet.FlowID, data [16]byte) {
	l.total++
	r := Record{At: at, Flow: flow, Data: data}
	if len(l.records) < l.capacity {
		l.records = append(l.records, r)
		return
	}
	l.records[l.start] = r
	l.start = (l.start + 1) % l.capacity
	l.evicted++
}

// Len reports retained records.
func (l *Logger) Len() int { return len(l.records) }

// Total reports all records ever logged.
func (l *Logger) Total() uint64 { return l.total }

// Evicted reports records dropped to the ring bound.
func (l *Logger) Evicted() uint64 { return l.evicted }

// QDMAPackets reports how many 1024-byte upload packets the logged volume
// fills.
func (l *Logger) QDMAPackets() uint64 {
	perPacket := uint64(qdmaPacketSize / recordWireSize)
	return (l.total + perPacket - 1) / perPacket
}

// Records returns the retained records in chronological order.
func (l *Logger) Records() []Record {
	out := make([]Record, 0, len(l.records))
	out = append(out, l.records[l.start:]...)
	out = append(out, l.records[:l.start]...)
	return out
}

// FlowTrace extracts the (time, a, b) series logged for one flow, where a
// and b are the first two 32-bit words of each record — by convention the
// window (or rate in Mbps) and the algorithm's alpha. This is the host
// side of the tracing used for Figure 5.
type TracePoint struct {
	At sim.Time
	A  uint32
	B  uint32
}

// FlowTrace returns the decoded trace for a flow.
func (l *Logger) FlowTrace(flow packet.FlowID) []TracePoint {
	var out []TracePoint
	for _, r := range l.Records() {
		if r.Flow != flow {
			continue
		}
		a, b, _, _ := cc.DecodeLogU32x4(r.Data)
		out = append(out, TracePoint{At: r.At, A: a, B: b})
	}
	return out
}
