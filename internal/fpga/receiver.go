package fpga

import (
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Receiver is the FPGA-side receiver logic of Figure 2's dashed path: when
// a CC algorithm's receiver side is "too complex to be implemented in the
// programmable switch" (§4.1), the switch truncates arriving DATA packets
// to 64 bytes and forwards them over the reserved port; this module
// processes them at line rate and returns ACK/NACK/CNP packets.
//
// One 100 Gbps port suffices for a full pipeline: 12 ports x 11.97 Mpps of
// 64-byte truncations occupy ~96 Gbps of wire (§4.3's reserved port).
//
// The receive state (expected PSN per flow) lives in BRAM like the sender
// state; processing is charged two clock cycles per packet.
type Receiver struct {
	eng         *sim.Engine
	mode        ReceiverMode
	cnpInterval sim.Duration
	out         netem.Node

	flows []rxFlowState

	DataRx uint64
	AckTx  uint64
	NackTx uint64
	CnpTx  uint64
	OooRx  uint64
	DupRx  uint64
}

// ReceiverMode mirrors the switch receiver's modes.
type ReceiverMode int

// Receiver modes.
const (
	// TCPReceiver: cumulative ACKs, out-of-order buffering, CE echo.
	TCPReceiver ReceiverMode = iota
	// RoCEReceiver: go-back-N NACKs and paced CNPs.
	RoCEReceiver
)

type rxFlowState struct {
	expected uint32
	ooo      map[uint32]struct{}
	lastCNP  sim.Time
	cnpSent  bool
	nacked   bool
}

// NewReceiver builds the module; responses go to out (the link back to
// the switch).
func NewReceiver(eng *sim.Engine, mode ReceiverMode, cnpInterval sim.Duration, out netem.Node) *Receiver {
	if cnpInterval <= 0 {
		cnpInterval = sim.Micros(4)
	}
	return &Receiver{eng: eng, mode: mode, cnpInterval: cnpInterval, out: out}
}

// Reset clears a flow slot for reuse.
func (r *Receiver) Reset(flow packet.FlowID) {
	if int(flow) < len(r.flows) {
		r.flows[flow] = rxFlowState{}
	}
}

// DataIn returns the Node the truncated-DATA link delivers to.
func (r *Receiver) DataIn() netem.Node {
	return netem.NodeFunc(r.onData)
}

func (r *Receiver) flow(id packet.FlowID) *rxFlowState {
	for int(id) >= len(r.flows) {
		r.flows = append(r.flows, rxFlowState{})
	}
	return &r.flows[id]
}

func (r *Receiver) onData(p *packet.Packet) {
	if p.Type != packet.DATA {
		p.Release()
		return
	}
	r.DataRx++
	f := r.flow(p.Flow)
	ce := p.Flags.Has(packet.FlagCE)
	switch {
	case p.PSN == f.expected:
		f.expected++
		if r.mode == TCPReceiver {
			for len(f.ooo) > 0 {
				if _, ok := f.ooo[f.expected]; !ok {
					break
				}
				delete(f.ooo, f.expected)
				f.expected++
			}
		}
		f.nacked = false
	case int32(p.PSN-f.expected) > 0:
		r.OooRx++
		if r.mode == TCPReceiver {
			if f.ooo == nil {
				f.ooo = make(map[uint32]struct{})
			}
			f.ooo[p.PSN] = struct{}{}
		} else {
			if !f.nacked {
				f.nacked = true
				r.emit(p, f.expected, packet.FlagNACK)
				r.NackTx++
			}
			if ce {
				r.maybeCNP(p, f)
			}
			p.Release() // go-back-N discards the out-of-order frame
			return
		}
	default:
		r.DupRx++
	}
	if r.mode == RoCEReceiver && ce {
		r.maybeCNP(p, f)
	}
	var flags packet.Flags
	if ce && r.mode == TCPReceiver {
		flags |= packet.FlagECNEcho
	}
	r.emit(p, f.expected, flags)
	r.AckTx++
	p.Release()
}

func (r *Receiver) emit(d *packet.Packet, cumAck uint32, flags packet.Flags) {
	if r.out == nil {
		return
	}
	a := packet.Get()
	a.Type = packet.ACK
	a.Flow = d.Flow
	a.PSN = d.PSN
	a.Ack = cumAck
	a.Flags = flags
	a.Size = packet.ControlSize
	a.Port = d.Port // arrival port, so the switch can route the ACK
	a.SentAt = d.SentAt
	a.RxTime = r.eng.Now()
	a.INT = d.INT
	r.out.Receive(a)
}

func (r *Receiver) maybeCNP(d *packet.Packet, f *rxFlowState) {
	now := r.eng.Now()
	if f.cnpSent && now.Sub(f.lastCNP) < r.cnpInterval {
		return
	}
	f.cnpSent = true
	f.lastCNP = now
	r.CnpTx++
	if r.out == nil {
		return
	}
	cnp := packet.Get()
	cnp.Type = packet.CNP
	cnp.Flow = d.Flow
	cnp.PSN = d.PSN
	cnp.Ack = f.expected
	cnp.Flags = packet.FlagCNPNotify
	cnp.Size = packet.ControlSize
	cnp.Port = d.Port
	cnp.SentAt = d.SentAt
	cnp.RxTime = now
	r.out.Receive(cnp)
}
