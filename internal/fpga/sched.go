package fpga

import (
	"marlin/internal/cc"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// scheduler implements §5.2's line-rate scheduling: one scheduling FIFO
// and one scheduler per port, paced by the TX timer, with rescheduling
// events circulating so that active flows stay in the FIFO exactly once.
// High-priority events (retransmissions) use a separate FIFO (§5.2: "for
// high-priority events such as retransmission and timeouts, another FIFO
// is utilized to prioritize scheduling").
type scheduler struct {
	nic *NIC

	fifo     [][]packet.FlowID
	fifoHead []int
	prio     [][]packet.FlowID
	prioHead []int

	txPending []bool
	txNext    []sim.Time
	txSlot    sim.Duration
	// tickFns holds one prebuilt TX-timer closure per port so kick does not
	// allocate a closure per SCHE emission.
	tickFns []sim.Func

	// budget is how many FIFO entries one TX slot can examine: the slot's
	// cycle count divided by the six-cycle rescheduling loop.
	budget int

	// Cyclic-scan baseline state (Challenge 2 ablation).
	portFlows  [][]packet.FlowID
	scanPos    []int
	scanBudget int
	inScan     []bool
}

func newScheduler(n *NIC) *scheduler {
	ports := n.cfg.Ports
	s := &scheduler{
		nic:       n,
		fifo:      make([][]packet.FlowID, ports),
		fifoHead:  make([]int, ports),
		prio:      make([][]packet.FlowID, ports),
		prioHead:  make([]int, ports),
		txPending: make([]bool, ports),
		txNext:    make([]sim.Time, ports),
		txSlot:    sim.Interval(n.cfg.TXTimerPPS),
		tickFns:   make([]sim.Func, ports),
	}
	for i := range s.tickFns {
		i := i
		s.tickFns[i] = func() { s.tick(i) }
	}
	cyclesPerSlot := int(float64(ClockHz) / n.cfg.TXTimerPPS)
	s.budget = maxI(1, cyclesPerSlot/6)
	if n.cfg.Scheduler == CyclicScan {
		s.portFlows = make([][]packet.FlowID, ports)
		s.scanPos = make([]int, ports)
		s.scanBudget = maxI(1, cyclesPerSlot)
		s.inScan = make([]bool, n.cfg.MaxFlows)
	}
	return s
}

// register adds a flow to its port's scan table (scan mode only).
func (s *scheduler) register(flow packet.FlowID, port int) {
	if s.portFlows == nil || s.inScan[flow] {
		return
	}
	s.inScan[flow] = true
	s.portFlows[port] = append(s.portFlows[port], flow)
}

// push inserts the flow's scheduling event, keeping at most one event per
// flow in the FIFO (§5.2: "there is no need for duplicate scheduling
// events for the same flow in the scheduling FIFO").
func (s *scheduler) push(flow packet.FlowID) {
	f := &s.nic.flows[flow]
	if s.portFlows != nil {
		// Scan mode has no event FIFO; just make sure the port scans.
		s.kick(f.port)
		return
	}
	if f.inFIFO {
		return
	}
	f.inFIFO = true
	s.fifo[f.port] = append(s.fifo[f.port], flow)
	s.kick(f.port)
}

// pushPriority inserts a retransmission event.
func (s *scheduler) pushPriority(flow packet.FlowID) {
	f := &s.nic.flows[flow]
	s.prio[f.port] = append(s.prio[f.port], flow)
	s.kick(f.port)
}

// kick arms the port's TX timer if idle. While the NIC is stalled the
// timer stays unarmed; SetStall(false) re-kicks every port with work.
func (s *scheduler) kick(port int) {
	if s.txPending[port] || s.nic.stalled {
		return
	}
	s.txPending[port] = true
	at := s.txNext[port]
	if now := s.nic.eng.Now(); at < now {
		at = now
	}
	s.nic.eng.ScheduleAt(at, s.tickFns[port])
}

// tick is one TX timer period on a port: emit at most one SCHE packet.
func (s *scheduler) tick(port int) {
	s.txPending[port] = false
	if s.nic.stalled {
		// A slot that was already pending when the stall began fires as a
		// no-op; txNext is left alone so the unstall kick runs immediately.
		return
	}
	now := s.nic.eng.Now()
	s.txNext[port] = now.Add(s.txSlot)

	emitted := s.emitPriority(port)
	if !emitted {
		if s.portFlows != nil {
			emitted = s.scanTick(port)
		} else {
			emitted = s.fifoTick(port)
		}
	}
	if !emitted {
		s.nic.stats.SchedWasted++
	}
	if s.hasWork(port) {
		s.kick(port)
	}
}

func (s *scheduler) hasWork(port int) bool {
	if len(s.prio[port])-s.prioHead[port] > 0 {
		return true
	}
	if s.portFlows != nil {
		// Scan mode: keep ticking while any registered flow is active
		// and eligible-ish (cheap conservative check: any active flow).
		for _, fl := range s.portFlows[port] {
			if s.nic.flows[fl].active {
				return true
			}
		}
		return false
	}
	return len(s.fifo[port])-s.fifoHead[port] > 0
}

// emitPriority services the retransmission FIFO.
func (s *scheduler) emitPriority(port int) bool {
	for {
		q := s.prio[port]
		h := s.prioHead[port]
		if h >= len(q) {
			s.prio[port] = q[:0]
			s.prioHead[port] = 0
			return false
		}
		flow := q[h]
		s.prioHead[port] = h + 1
		f := &s.nic.flows[flow]
		if !f.active || !f.rtxWait {
			continue
		}
		f.rtxWait = false
		s.nic.emitSche(flow, f.rtxPSN, port, true)
		// Follow the retransmission with a normal scheduling event so
		// the flow resumes once the window reopens.
		s.push(flow)
		return true
	}
}

// fifoTick examines up to budget scheduling events (§5.2): the first
// eligible flow emits and circulates back as a rescheduling event;
// window-limited flows fall out of the FIFO and are reactivated by their
// next INFO packet; rate-limited flows that are not yet due circulate.
func (s *scheduler) fifoTick(port int) bool {
	rateMode := s.nic.cfg.Algorithm.Mode() == cc.RateMode
	for examined := 0; examined < s.budget; examined++ {
		q := s.fifo[port]
		h := s.fifoHead[port]
		if h >= len(q) {
			s.fifo[port] = q[:0]
			s.fifoHead[port] = 0
			return false
		}
		flow := q[h]
		s.fifoHead[port] = h + 1
		f := &s.nic.flows[flow]
		f.inFIFO = false
		if !f.active || s.exhausted(f) {
			continue // event dropped; flow is inactive
		}
		if rateMode {
			if now := s.nic.eng.Now(); now < f.nextSend {
				// Not due yet: circulate without emitting.
				f.inFIFO = true
				s.fifo[port] = append(s.fifo[port], flow)
				continue
			}
			s.emitData(flow, f, port)
			s.paceRate(f)
			f.inFIFO = true
			s.fifo[port] = append(s.fifo[port], flow)
			return true
		}
		// Window mode: inflight must be under cwnd.
		if uint32(cc.SeqDiff(f.nxt, f.una)) >= f.cwnd {
			continue // window-limited: drop the event (§5.2)
		}
		s.emitData(flow, f, port)
		f.inFIFO = true
		s.fifo[port] = append(s.fifo[port], flow)
		return true
	}
	return false
}

// scanTick is the Challenge 2 baseline: cyclically scan the port's flow
// table, one cycle per flow, within the slot's cycle budget.
func (s *scheduler) scanTick(port int) bool {
	flows := s.portFlows[port]
	if len(flows) == 0 {
		return false
	}
	rateMode := s.nic.cfg.Algorithm.Mode() == cc.RateMode
	pos := s.scanPos[port]
	for i := 0; i < s.scanBudget && i < len(flows); i++ {
		idx := (pos + i) % len(flows)
		flow := flows[idx]
		f := &s.nic.flows[flow]
		if !f.active || s.exhausted(f) {
			continue
		}
		if rateMode {
			if s.nic.eng.Now() < f.nextSend {
				continue
			}
			s.scanPos[port] = (idx + 1) % len(flows)
			s.emitData(flow, f, port)
			s.paceRate(f)
			return true
		}
		if uint32(cc.SeqDiff(f.nxt, f.una)) >= f.cwnd {
			continue
		}
		s.scanPos[port] = (idx + 1) % len(flows)
		s.emitData(flow, f, port)
		return true
	}
	s.scanPos[port] = (pos + s.scanBudget) % len(flows)
	s.nic.stats.ScanGiveUps++
	return false
}

// exhausted reports whether the flow has no new data left to schedule.
func (s *scheduler) exhausted(f *flowState) bool {
	return f.end != 0 && !cc.SeqLT(f.nxt, f.end)
}

func (s *scheduler) emitData(flow packet.FlowID, f *flowState, port int) {
	s.nic.emitSche(flow, f.nxt, port, false)
	f.nxt++
	s.nic.ensureRTO(flow, f)
}

// paceRate advances the flow's next-send deadline by one MTU at its
// current rate. Credit is retained up to one TX slot so that slot
// quantization (emissions only happen on timer ticks) does not compound
// into a systematic rate loss.
func (s *scheduler) paceRate(f *flowState) {
	gap := f.rate.Serialize(packet.WireSize(s.nic.cfg.Params.MTU))
	floor := s.nic.eng.Now().Add(-s.txSlot)
	if f.nextSend < floor {
		f.nextSend = floor
	}
	f.nextSend = f.nextSend.Add(gap)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
