package fpga

import (
	"testing"

	"marlin/internal/cc"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// testRig couples a NIC to a synthetic switch stub that captures SCHE
// packets and lets the test inject INFO packets.
type testRig struct {
	t    *testing.T
	eng  *sim.Engine
	nic  *NIC
	sche []*packet.Packet
	fcts map[packet.FlowID]sim.Duration
}

func newRig(t *testing.T, mutate func(*Config)) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	alg, err := cc.New("reno")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Ports:      12,
		MaxFlows:   1024,
		Algorithm:  alg,
		Params:     cc.DefaultParams(100*sim.Gbps, 1024),
		TXTimerPPS: 11.97e6,
		RXTimerPPS: 11.97e6,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	nic, err := NewNIC(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{t: t, eng: eng, nic: nic, fcts: map[packet.FlowID]sim.Duration{}}
	nic.ConnectSche(netem.NodeFunc(func(p *packet.Packet) {
		rig.sche = append(rig.sche, p)
	}))
	nic.OnComplete(func(f packet.FlowID, fct sim.Duration) { rig.fcts[f] = fct })
	return rig
}

// ackUpTo injects an INFO acknowledging everything scheduled so far.
func (r *testRig) ackUpTo(flow packet.FlowID, ack uint32, flags packet.Flags) {
	r.nic.InfoIn().Receive(&packet.Packet{
		Type: packet.INFO, Flow: flow, Ack: ack, PSN: ack,
		Flags: flags, Size: packet.ControlSize, Port: r.flowPort(flow),
	})
}

func (r *testRig) flowPort(flow packet.FlowID) int {
	return r.nic.flows[flow].port
}

func (r *testRig) scheFor(flow packet.FlowID) []*packet.Packet {
	var out []*packet.Packet
	for _, p := range r.sche {
		if p.Flow == flow {
			out = append(out, p)
		}
	}
	return out
}

func TestMaxFlowsByBRAMSupports65536(t *testing.T) {
	if got := MaxFlowsByBRAM(); got < 65536 {
		t.Fatalf("BRAM capacity = %d flows, want >= 65536 (§8)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	alg, _ := cc.New("reno")
	base := Config{Ports: 1, Algorithm: alg,
		Params: cc.DefaultParams(100*sim.Gbps, 1024), TXTimerPPS: 1e6}
	bad := []func(*Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.Algorithm = nil },
		func(c *Config) { c.TXTimerPPS = 0 },
		func(c *Config) { c.RXTimerPPS = 2e6 }, // RX > TX violates §5.3
		func(c *Config) { c.MaxFlows = 1 << 20 },
		func(c *Config) { c.Params.MTU = 1 },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewNIC(eng, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewNIC(eng, base); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestStartFlowValidation(t *testing.T) {
	r := newRig(t, nil)
	if err := r.nic.StartFlow(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.StartFlow(1, 0, 10); err == nil {
		t.Error("duplicate StartFlow accepted")
	}
	if err := r.nic.StartFlow(2, 99, 10); err == nil {
		t.Error("bad port accepted")
	}
	if err := r.nic.StartFlow(9999, 0, 10); err == nil {
		t.Error("flow beyond MaxFlows accepted")
	}
	if r.nic.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d", r.nic.ActiveFlows())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	r := newRig(t, nil) // Reno, InitCwnd=1
	r.nic.StartFlow(1, 0, 100)
	// Stay below the 500us RTO floor: past it the transmit-side backstop
	// legitimately retransmits (no acks for a full RTO).
	r.eng.Run(sim.Time(400 * sim.Microsecond))
	// cwnd=1 and no acks: exactly one SCHE.
	if got := len(r.scheFor(1)); got != 1 {
		t.Fatalf("SCHE count = %d with cwnd=1 and no acks, want 1", got)
	}
	p := r.sche[0]
	if p.Type != packet.SCHE || p.PSN != 0 || p.Port != 0 {
		t.Fatalf("SCHE = %+v", p)
	}
}

func TestAckOpensWindow(t *testing.T) {
	r := newRig(t, nil)
	r.nic.StartFlow(1, 0, 100)
	r.eng.Run(sim.Time(sim.Microsecond))
	r.ackUpTo(1, 1, 0)                         // ack PSN 0 -> slow start doubles cwnd to 2
	r.eng.Run(sim.Time(450 * sim.Microsecond)) // below the RTO floor
	// After the ack: cwnd=2, una=1 -> two more packets (PSN 1, 2).
	if got := len(r.scheFor(1)); got != 3 {
		t.Fatalf("SCHE count = %d after one ack, want 3", got)
	}
}

func TestTXTimerPacesSche(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 64; c.Params.Ssthresh = 64 })
	r.nic.StartFlow(1, 0, 1000)
	r.eng.Run(sim.Time(sim.Millisecond))
	sches := r.scheFor(1)
	if len(sches) < 10 {
		t.Fatalf("too few SCHE to check pacing: %d", len(sches))
	}
	slot := sim.Interval(11.97e6)
	for i := 1; i < len(sches); i++ {
		gap := sches[i].SentAt.Sub(sches[i-1].SentAt)
		if gap < slot {
			t.Fatalf("SCHE gap %v < TX slot %v (egress overrun, §5.3)", gap, slot)
		}
	}
}

func TestFlowCompletionReportsFCT(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 16 })
	r.nic.StartFlow(1, 0, 4)
	r.eng.Run(sim.Time(400 * sim.Microsecond)) // below the RTO floor
	if got := len(r.scheFor(1)); got != 4 {
		t.Fatalf("scheduled %d packets of a 4-packet flow", got)
	}
	r.ackUpTo(1, 4, 0)
	r.eng.RunAll()
	fct, ok := r.fcts[1]
	if !ok {
		t.Fatal("completion not reported")
	}
	if fct <= 0 {
		t.Fatalf("fct = %v", fct)
	}
	if _, _, active := r.nic.FlowProgress(1); active {
		t.Fatal("flow still active after completion")
	}
	if r.nic.Stats().Completions != 1 {
		t.Fatal("completion counter not bumped")
	}
}

func TestFlowIDReuseAfterCompletion(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 16 })
	r.nic.StartFlow(1, 0, 2)
	r.eng.Run(sim.Time(sim.Millisecond))
	r.ackUpTo(1, 2, 0)
	r.eng.RunAll()
	if err := r.nic.StartFlow(1, 3, 2); err != nil {
		t.Fatalf("flow reuse rejected: %v", err)
	}
	r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Millisecond)))
	var first *packet.Packet
	for _, p := range r.sche {
		if p.Port == 3 {
			first = p
			break
		}
	}
	if first == nil || first.PSN != 0 {
		t.Fatalf("reused flow first SCHE = %+v, want PSN 0 on port 3", first)
	}
}

func TestDupAcksTriggerPriorityRetransmission(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 16; c.Params.Ssthresh = 16 })
	r.nic.StartFlow(1, 0, 100)
	r.eng.Run(sim.Time(sim.Millisecond))
	for i := 0; i < 3; i++ {
		r.ackUpTo(1, 0, 0) // dup acks at 0
		r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Microsecond)))
	}
	r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Millisecond)))
	var rtx *packet.Packet
	for _, p := range r.scheFor(1) {
		if p.Flags.Has(packet.FlagRetransmit) {
			rtx = p
			break
		}
	}
	if rtx == nil {
		t.Fatal("no retransmission SCHE after 3 dup acks")
	}
	if rtx.PSN != 0 {
		t.Fatalf("retransmitted PSN %d, want 0", rtx.PSN)
	}
	if r.nic.Stats().RtxTx == 0 {
		t.Fatal("RtxTx counter not bumped")
	}
}

func TestRTOFiresWithoutAcks(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 4; c.Params.RTOMin = sim.Micros(100) })
	r.nic.StartFlow(1, 0, 100)
	// Need one event to arm the RTO: a partial ack.
	r.eng.Run(sim.Time(sim.Microsecond))
	r.ackUpTo(1, 1, 0)
	r.eng.Run(sim.Time(sim.Millisecond * 10))
	if r.nic.Stats().Timeouts == 0 {
		t.Fatal("RTO never fired with unacked data")
	}
}

func TestRateModePacing(t *testing.T) {
	r := newRig(t, func(c *Config) {
		alg, _ := cc.New("dcqcn")
		c.Algorithm = alg
	})
	r.nic.StartFlow(1, 0, 0) // unbounded
	r.eng.Run(sim.Time(sim.Micros(100)))
	sches := r.scheFor(1)
	// At line rate, pacing gap = wire time of one MTU: expect roughly
	// 100us / 83.52ns ~ 1197 packets; TX timer may shave a little.
	if len(sches) < 1000 || len(sches) > 1250 {
		t.Fatalf("rate-mode SCHE count = %d in 100us, want ~1100-1200", len(sches))
	}
}

func TestRateModeSlowsAfterCNP(t *testing.T) {
	r := newRig(t, func(c *Config) {
		alg, _ := cc.New("dcqcn")
		c.Algorithm = alg
		// Keep the rate down: no recovery timers firing in the window.
		c.Params.RateTimer = sim.Millisecond * 100
		c.Params.AlphaTimer = sim.Millisecond * 100
	})
	r.nic.StartFlow(1, 0, 0)
	r.eng.Run(sim.Time(sim.Micros(50)))
	before := len(r.scheFor(1))
	r.ackUpTo(1, 10, packet.FlagCNPNotify) // 50% rate cut
	r.eng.Run(sim.Time(sim.Micros(100)))
	after := len(r.scheFor(1)) - before
	// Second 50us at half rate should emit roughly half of the first.
	if after >= before || after < before/3 {
		t.Fatalf("before=%d after=%d: CNP did not halve pacing", before, after)
	}
}

func TestRXTimerPreventsRMWConflicts(t *testing.T) {
	r := newRig(t, func(c *Config) {
		alg, _ := cc.New("dctcp") // 24-cycle module
		c.Algorithm = alg
		c.Params.InitCwnd = 64
	})
	r.nic.StartFlow(1, 0, 0)
	r.eng.Run(sim.Time(sim.Microsecond))
	// Burst of INFO packets back-to-back (DPDK-style ack burst, §5.3).
	for i := uint32(1); i <= 64; i++ {
		r.ackUpTo(1, i, 0)
	}
	r.eng.Run(sim.Time(sim.Millisecond))
	st := r.nic.Stats()
	if st.RMWConflicts != 0 {
		t.Fatalf("RX timer enabled but %d conflicts occurred", st.RMWConflicts)
	}
	if st.InfoRx != 64 {
		t.Fatalf("InfoRx = %d", st.InfoRx)
	}
}

func TestDisabledRXTimerExposesRMWConflicts(t *testing.T) {
	r := newRig(t, func(c *Config) {
		alg, _ := cc.New("dctcp")
		c.Algorithm = alg
		c.Params.InitCwnd = 64
		c.DisableRXTimer = true
	})
	r.nic.StartFlow(1, 0, 0)
	r.eng.Run(sim.Time(sim.Microsecond))
	for i := uint32(1); i <= 64; i++ {
		r.ackUpTo(1, i, 0) // same instant: arrival rate >> 1/24 cycles
	}
	r.eng.Run(sim.Time(sim.Millisecond))
	if r.nic.Stats().RMWConflicts == 0 {
		t.Fatal("burst at line rate produced no conflicts with RX timer off (Challenge 3)")
	}
}

func TestRXFIFOOverflowCounted(t *testing.T) {
	r := newRig(t, func(c *Config) { c.RXFIFODepth = 8 })
	r.nic.StartFlow(1, 0, 0)
	r.eng.Run(sim.Time(sim.Microsecond))
	for i := uint32(1); i <= 100; i++ {
		r.ackUpTo(1, i, 0)
	}
	// No time passes between injections, so the FIFO must shed.
	if r.nic.Stats().InfoDrops == 0 {
		t.Fatal("RX FIFO burst not dropped")
	}
	r.eng.Run(sim.Time(sim.Millisecond))
}

func TestSchedulerFairnessTwoFlowsOnePort(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Params.InitCwnd = 8
		c.Params.Ssthresh = 8
	})
	r.nic.StartFlow(1, 0, 0)
	r.nic.StartFlow(2, 0, 0)
	// Closed loop: ack everything each flow sends, keeping both active.
	for round := 0; round < 200; round++ {
		r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Micros(2))))
		for _, fl := range []packet.FlowID{1, 2} {
			_, nxt, _ := r.nic.FlowProgress(fl)
			r.ackUpTo(fl, nxt, 0)
		}
	}
	n1, n2 := len(r.scheFor(1)), len(r.scheFor(2))
	if n1 == 0 || n2 == 0 {
		t.Fatalf("starvation: n1=%d n2=%d", n1, n2)
	}
	ratio := float64(n1) / float64(n2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair scheduling: n1=%d n2=%d", n1, n2)
	}
}

func TestSlowPathRuns(t *testing.T) {
	r := newRig(t, func(c *Config) {
		alg, _ := cc.New("dctcp")
		c.Algorithm = alg
		c.Params.InitCwnd = 8
	})
	r.nic.StartFlow(1, 0, 0)
	for i := uint32(1); i <= 50; i++ {
		r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Micros(1))))
		r.ackUpTo(1, i, packet.FlagECNEcho)
	}
	r.eng.Run(r.eng.Now().Add(sim.Duration(sim.Millisecond)))
	if r.nic.Stats().SlowPathRuns == 0 {
		t.Fatal("DCTCP alpha updates never reached the Slow Path")
	}
}

func TestStopFlowCancelsTimers(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Params.RTOMin = sim.Micros(50) })
	r.nic.StartFlow(1, 0, 100)
	r.eng.Run(sim.Time(sim.Microsecond))
	r.ackUpTo(1, 1, 0) // arms RTO
	r.nic.StopFlow(1)
	r.eng.Run(sim.Time(sim.Second))
	if r.nic.Stats().Timeouts != 0 {
		t.Fatal("timer fired after StopFlow")
	}
}

func TestNICStallFreezesTimersAndResumes(t *testing.T) {
	r := newRig(t, nil) // Reno, InitCwnd=1
	r.nic.StartFlow(1, 0, 100)
	r.eng.Run(sim.Time(10 * sim.Microsecond))
	if got := len(r.scheFor(1)); got != 1 {
		t.Fatalf("pre-stall SCHE = %d, want 1 (window-limited)", got)
	}
	// Stall, then deliver an ack. The INFO lands in the RX FIFO but the
	// frozen RX timer must not pace it into the CC module, so the window
	// stays closed and no SCHE goes out.
	r.nic.SetStall(true)
	if !r.nic.Stalled() {
		t.Fatal("Stalled() = false after SetStall(true)")
	}
	r.ackUpTo(1, 1, 0)
	r.eng.Run(sim.Time(300 * sim.Microsecond)) // below the RTO floor
	if got := len(r.scheFor(1)); got != 1 {
		t.Fatalf("SCHE = %d during stall, want 1 (timers must freeze)", got)
	}
	if r.nic.Stats().InfoRx != 1 {
		t.Fatalf("InfoRx = %d, want 1 (FIFO still accepts during stall)", r.nic.Stats().InfoRx)
	}
	// Unstall: the queued INFO drains, the window opens, SCHE resumes.
	// (Stop before the post-unstall sends' RTO backstop would fire.)
	r.nic.SetStall(false)
	r.eng.Run(sim.Time(600 * sim.Microsecond))
	if got := len(r.scheFor(1)); got != 3 {
		t.Fatalf("SCHE = %d after unstall, want 3 (queued ack processed)", got)
	}
}

func TestNICStallRTOPushFlushesOnUnstall(t *testing.T) {
	// An RTO firing mid-stall queues its retransmission in the priority
	// FIFO; the push must survive the stall and emit on recovery.
	r := newRig(t, func(c *Config) { c.Params.InitCwnd = 4; c.Params.RTOMin = sim.Micros(50) })
	r.nic.StartFlow(1, 0, 100)
	r.eng.Run(sim.Time(sim.Microsecond))
	r.ackUpTo(1, 1, 0) // partial ack with data outstanding: arms the RTO
	r.eng.Run(sim.Time(10 * sim.Microsecond))
	r.nic.SetStall(true)
	r.eng.Run(sim.Time(sim.Millisecond)) // RTO fires during the stall
	if r.nic.Stats().Timeouts == 0 {
		t.Fatal("RTO did not fire during stall (CC timers must keep running)")
	}
	if r.nic.Stats().RtxTx != 0 {
		t.Fatal("retransmission emitted while stalled")
	}
	r.nic.SetStall(false)
	r.eng.Run(sim.Time(2 * sim.Millisecond))
	if r.nic.Stats().RtxTx == 0 {
		t.Fatal("queued retransmission did not flush after unstall")
	}
}

func TestScanSchedulerWorksButWastesSlots(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Scheduler = CyclicScan
		c.Params.InitCwnd = 4
		c.MaxFlows = 4096
	})
	// Many registered-but-idle flows ahead of the active one: the scan
	// budget (cycles per slot) is exhausted before reaching it.
	for i := packet.FlowID(0); i < 2000; i++ {
		if err := r.nic.StartFlow(i, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run(sim.Time(sim.Micros(200)))
	st := r.nic.Stats()
	if st.ScheTx == 0 {
		t.Fatal("scan scheduler emitted nothing")
	}
	if st.ScanGiveUps == 0 {
		t.Fatal("scan over 2000 mostly-window-limited flows never exhausted its budget (Challenge 2)")
	}
}

func TestLoggerRingAndTrace(t *testing.T) {
	l := NewLogger(4)
	var rec [16]byte
	for i := 0; i < 6; i++ {
		var o cc.Output
		o.LogU32x4(uint32(i), uint32(i*2), 0, 0)
		rec = o.Log
		l.Record(sim.Time(i), 7, rec)
	}
	if l.Len() != 4 || l.Total() != 6 || l.Evicted() != 2 {
		t.Fatalf("len=%d total=%d evicted=%d", l.Len(), l.Total(), l.Evicted())
	}
	tr := l.FlowTrace(7)
	if len(tr) != 4 || tr[0].A != 2 || tr[3].A != 5 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr[0].At > tr[3].At {
		t.Fatal("trace out of order")
	}
	if l.QDMAPackets() == 0 {
		t.Fatal("QDMA accounting missing")
	}
}

func TestLoggerDisabled(t *testing.T) {
	r := newRig(t, func(c *Config) { c.DisableLog = true })
	if r.nic.Logger() != nil {
		t.Fatal("logger present despite DisableLog")
	}
	r.nic.StartFlow(1, 0, 10)
	r.eng.Run(sim.Time(sim.Microsecond * 10))
	r.ackUpTo(1, 1, 0) // must not panic without a logger
	r.eng.Run(sim.Time(sim.Millisecond))
}

func BenchmarkNICClosedLoop(b *testing.B) {
	eng := sim.NewEngine()
	alg, _ := cc.New("dctcp")
	cfg := Config{
		Ports: 1, MaxFlows: 16, Algorithm: alg,
		Params:     cc.DefaultParams(100*sim.Gbps, 1024),
		TXTimerPPS: 11.97e6, DisableLog: true,
	}
	cfg.Params.InitCwnd = 16
	nic, err := NewNIC(eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pending []*packet.Packet
	nic.ConnectSche(netem.NodeFunc(func(p *packet.Packet) { pending = append(pending, p) }))
	if err := nic.StartFlow(1, 0, 0); err != nil {
		b.Fatal(err)
	}
	info := nic.InfoIn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now().Add(sim.Duration(sim.Micros(1))))
		for _, p := range pending {
			info.Receive(&packet.Packet{
				Type: packet.INFO, Flow: p.Flow, Ack: p.PSN + 1,
				Size: packet.ControlSize,
			})
		}
		pending = pending[:0]
	}
}

func Test65536ConcurrentFlows(t *testing.T) {
	// The paper's headline concurrency: 65,536 flows live at once within
	// the BRAM budget, scheduled across 12 ports, every one completing.
	// A loopback stub acknowledges each SCHE immediately (zero-RTT
	// switch+network), so the test isolates the NIC's flow machinery.
	eng := sim.NewEngine()
	alg, _ := cc.New("dctcp")
	params := cc.DefaultParams(100*sim.Gbps, 1024)
	params.InitCwnd = 2
	nic, err := NewNIC(eng, Config{
		Ports:      12,
		MaxFlows:   65536,
		Algorithm:  alg,
		Params:     params,
		TXTimerPPS: 11.97e6,
		DisableLog: true, // 131k events would otherwise fill the ring
	})
	if err != nil {
		t.Fatal(err)
	}
	info := nic.InfoIn()
	nic.ConnectSche(netem.NodeFunc(func(p *packet.Packet) {
		ack := p.PSN + 1
		port := p.Port
		eng.Schedule(sim.Microsecond, func() {
			info.Receive(&packet.Packet{
				Type: packet.INFO, Flow: p.Flow, Ack: ack,
				Port: port, Size: packet.ControlSize, SentAt: p.SentAt,
			})
		})
	}))
	done := 0
	nic.OnComplete(func(packet.FlowID, sim.Duration) { done++ })
	const flows = 65536
	for f := 0; f < flows; f++ {
		if err := nic.StartFlow(packet.FlowID(f), f%12, 2); err != nil {
			t.Fatalf("flow %d: %v", f, err)
		}
	}
	if got := nic.ActiveFlows(); got != flows {
		t.Fatalf("active = %d, want %d", got, flows)
	}
	eng.Run(sim.Time(100 * sim.Millisecond))
	if done != flows {
		t.Fatalf("completed %d/%d flows", done, flows)
	}
	st := nic.Stats()
	if st.ScheTx < 2*flows {
		t.Fatalf("ScheTx = %d, want >= %d", st.ScheTx, 2*flows)
	}
	if st.InfoDrops != 0 {
		t.Fatalf("RX FIFO drops at max concurrency: %d", st.InfoDrops)
	}
}
