// Package fpga models Marlin's FPGA NIC (§5): the sender-side transport
// that runs the CC algorithm module and schedules traffic by emitting SCHE
// packets toward the programmable switch.
//
// The model is clocked at 322 MHz like the Alveo U280 build: every CC
// module execution is charged its algorithm's clock-cycle cost, which makes
// the paper's Challenge 3 (read-modify-write conflicts under bursty INFO
// arrivals) observable — disable the RX timer and conflicts corrupt CC
// state; enable it and they disappear (§5.3).
//
// Data paths mirror Figure 4:
//
//	INFO in ──parser──> per-port RX FIFO ──RX timer──> CC module ──┐
//	   timeouts/timers from the event generator ──────────────────┤
//	                                                               v
//	   scheduling FIFO (per port) <── rescheduling ── scheduler ──TX timer──> SCHE out
//
// plus the Slow Path executor, the BRAM flow store, and the QDMA logger.
package fpga

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ClockHz is the FPGA fabric clock (§5.1: "a 322 MHz hardware clock").
const ClockHz = 322_000_000

// CyclePeriod is the duration of one fabric clock cycle (~3.1 ns).
const CyclePeriod = sim.Duration(int64(sim.Second) / ClockHz)

// BRAMBits is the on-chip BRAM budget (§8: "we utilized 72 Mb of BRAM to
// support 65,536 flows").
const BRAMBits = 72 * 1000 * 1000

// BytesPerFlow is the BRAM charged per flow: the 64 B cust-var region and
// the 64 B slwpth-var region. The intrinsic transport word lives in
// distributed RAM. At 128 B/flow the 72 Mb budget holds 70,312 flows,
// matching the paper's 65,536-flow capacity with headroom.
const BytesPerFlow = cc.StateSize + cc.StateSize

// MaxFlowsByBRAM returns how many flows fit the BRAM budget.
func MaxFlowsByBRAM() int { return BRAMBits / (BytesPerFlow * 8) }

// SchedulerMode selects the line-rate scheduler of §5.2 or the naive
// cyclic-scan baseline it replaces (Challenge 2 ablation).
type SchedulerMode int

// Scheduler modes.
const (
	// ReschedulingFIFO circulates scheduling events through per-port
	// FIFOs; the whole loop costs six clock cycles (§5.2).
	ReschedulingFIFO SchedulerMode = iota
	// CyclicScan scans the port's flow table looking for a schedulable
	// flow, spending one cycle per flow examined.
	CyclicScan
)

func (m SchedulerMode) String() string {
	if m == CyclicScan {
		return "scan"
	}
	return "fifo"
}

// Config configures a NIC instance.
type Config struct {
	// Ports is the number of switch data ports the NIC schedules for.
	Ports int
	// MaxFlows bounds concurrent flows (0 = BRAM-derived 65,536).
	MaxFlows int
	// Algorithm is the deployed CC module.
	Algorithm cc.Algorithm
	// Params is the CC parameter block written to BRAM.
	Params cc.Params
	// TXTimerPPS paces SCHE emission per port; it must not exceed the
	// switch port's DATA packet rate or register queues overflow (§5.3).
	TXTimerPPS float64
	// RXTimerPPS paces INFO delivery from each RX FIFO to the CC module.
	// It must be <= TXTimerPPS (§5.3).
	RXTimerPPS float64
	// DisableRXTimer bypasses ingress pacing: INFO packets hit the CC
	// module at arrival rate, exposing RMW conflicts (ablation).
	DisableRXTimer bool
	// SingleRXFIFO funnels every INFO packet into one RX FIFO instead of
	// demultiplexing by switch port — the design §5.3 rejects: one FIFO
	// drained at the per-port rate cannot absorb the aggregate of all
	// ports, so INFO packets drop and the CC modules starve (ablation).
	SingleRXFIFO bool
	// Scheduler selects the §5.2 design or the scan baseline.
	Scheduler SchedulerMode
	// RXFIFODepth bounds each RX FIFO (0 = 4096 entries).
	RXFIFODepth int
	// DisableLog turns the fine-grained logging module off.
	DisableLog bool
	// LogCapacity bounds retained log records (0 = 1<<20).
	LogCapacity int
	// SlowPathLatency is the queueing delay before a posted Slow Path
	// event executes (0 = 100 cycles).
	SlowPathLatency sim.Duration
	// GoBackN matches the sender's retransmission discipline to a
	// go-back-N receiver (the RoCE mode): that receiver discards every
	// frame after a hole, so a retransmission must rewind the send
	// pointer and replay the tail, not selectively resend one PSN.
	// Without the rewind each discarded packet costs a NACK round trip
	// or, once the flow has nothing new to send, a full RTO.
	GoBackN bool
}

// Stats are the NIC's aggregate counters.
type Stats struct {
	InfoRx        uint64
	InfoDrops     uint64 // RX FIFO overflows
	ScheTx        uint64
	RtxTx         uint64
	Timeouts      uint64
	RMWConflicts  uint64 // lost CC updates with the RX timer disabled
	SlowPathRuns  uint64
	Completions   uint64
	SchedWasted   uint64 // TX slots that found no eligible flow
	ScanGiveUps   uint64 // scan-mode slots that exhausted the cycle budget
	EventsHandled uint64
}

// Plus returns the field-wise sum of two stats snapshots; sharded testers
// merge their per-partition NICs with it.
func (s Stats) Plus(o Stats) Stats {
	s.InfoRx += o.InfoRx
	s.InfoDrops += o.InfoDrops
	s.ScheTx += o.ScheTx
	s.RtxTx += o.RtxTx
	s.Timeouts += o.Timeouts
	s.RMWConflicts += o.RMWConflicts
	s.SlowPathRuns += o.SlowPathRuns
	s.Completions += o.Completions
	s.SchedWasted += o.SchedWasted
	s.ScanGiveUps += o.ScanGiveUps
	s.EventsHandled += o.EventsHandled
	return s
}

// flowState is the per-flow BRAM word plus model bookkeeping.
type flowState struct {
	active bool
	port   int
	// alg is the flow's CC module override (nil = the NIC default). Real
	// Marlin deploys one HLS module per build; the model relaxes that to
	// per-flow selection within one Mode so mixed-control coexistence
	// experiments (DCTCP vs CUBIC through one AQM) run on one NIC.
	alg cc.Algorithm
	// ect is the ECN codepoint stamped on the flow's SCHE packets and
	// carried through to its DATA packets by the switch pipeline.
	ect       packet.ECT
	una, nxt  uint32
	end       uint32 // flow length in packets; 0 = unbounded
	cwnd      uint32
	rate      sim.Rate
	nextSend  sim.Time // rate-mode pacing deadline
	inFIFO    bool     // scheduling-event uniqueness (§5.2)
	rtxPSN    uint32
	rtxWait   bool
	busyUntil sim.Time // CC module RMW occupancy (Challenge 3)
	started   sim.Time
	cust      cc.State
	slow      cc.State
	timers    [cc.NumTimers]sim.Handle
}

// CompletionFunc is invoked when a flow's final packet is acknowledged.
type CompletionFunc func(flow packet.FlowID, fct sim.Duration)

// NIC is the FPGA model.
type NIC struct {
	eng *sim.Engine
	cfg Config

	flows []flowState

	rxFIFO   [][]*packet.Packet // per-port INFO FIFOs
	rxHead   []int
	rxActive []bool
	// rxTickFns holds one prebuilt RX-timer closure per port so pacing does
	// not allocate a closure per INFO packet.
	rxTickFns []sim.Func

	sched *scheduler

	// stalled freezes the RX and TX pacing timers (a NIC stall fault):
	// INFO packets still land in the RX FIFOs (and can overflow them, a
	// real loss) and CC timers still fire, but nothing is paced through
	// the CC module or onto the wire until the stall clears.
	stalled bool

	scheOut    netem.Node
	onComplete CompletionFunc

	logger *Logger
	stats  Stats
	out    cc.Output // reused fast-path output struct
	in     cc.Input  // reused fast-path input struct (INFO arrivals)
	// timerFns lazily caches one closure per (flow, timer) pair; the
	// closures key off indices only, so they survive flow-slot reuse and
	// timer re-arms stay allocation-free.
	timerFns [][cc.NumTimers]sim.Func

	// rttRing holds the most recent RTT probes (microseconds) for the
	// control plane's latency readout; rttEwma is a 1/16-gain average.
	rttRing  []float64
	rttNext  int
	rttCount uint64
	rttEwma  float64
}

// rttRingSize bounds retained RTT samples.
const rttRingSize = 8192

// NewNIC validates cfg and builds the NIC.
func NewNIC(eng *sim.Engine, cfg Config) (*NIC, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("fpga: need at least one port")
	}
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("fpga: no CC algorithm deployed")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxFlows == 0 {
		cfg.MaxFlows = MaxFlowsByBRAM()
	}
	if cfg.MaxFlows > MaxFlowsByBRAM() {
		return nil, fmt.Errorf("fpga: %d flows exceed BRAM capacity %d",
			cfg.MaxFlows, MaxFlowsByBRAM())
	}
	if cfg.TXTimerPPS <= 0 {
		return nil, fmt.Errorf("fpga: TXTimerPPS must be positive")
	}
	if cfg.RXTimerPPS <= 0 {
		cfg.RXTimerPPS = cfg.TXTimerPPS
	}
	if !cfg.DisableRXTimer && cfg.RXTimerPPS > cfg.TXTimerPPS {
		return nil, fmt.Errorf("fpga: RX timer (%.3g pps) must not exceed TX timer (%.3g pps), §5.3",
			cfg.RXTimerPPS, cfg.TXTimerPPS)
	}
	if cfg.RXFIFODepth <= 0 {
		cfg.RXFIFODepth = 4096
	}
	if cfg.SlowPathLatency <= 0 {
		cfg.SlowPathLatency = 100 * CyclePeriod
	}
	n := &NIC{
		eng:      eng,
		cfg:      cfg,
		flows:    make([]flowState, cfg.MaxFlows),
		rxFIFO:   make([][]*packet.Packet, cfg.Ports),
		rxHead:   make([]int, cfg.Ports),
		rxActive: make([]bool, cfg.Ports),
		timerFns: make([][cc.NumTimers]sim.Func, cfg.MaxFlows),
	}
	n.rxTickFns = make([]sim.Func, cfg.Ports)
	for i := range n.rxTickFns {
		i := i
		n.rxTickFns[i] = func() { n.rxTick(i) }
	}
	n.sched = newScheduler(n)
	if !cfg.DisableLog {
		n.logger = NewLogger(cfg.LogCapacity)
	}
	return n, nil
}

// ConnectSche attaches the SCHE egress (the link to the switch).
func (n *NIC) ConnectSche(out netem.Node) { n.scheOut = out }

// OnComplete registers the flow-completion callback; the FPGA computes
// each FCT and reports it to the control plane (§7.4).
func (n *NIC) OnComplete(fn CompletionFunc) { n.onComplete = fn }

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// Logger returns the fine-grained logging module, or nil when disabled.
func (n *NIC) Logger() *Logger { return n.logger }

// Params returns the deployed parameter block.
func (n *NIC) Params() *cc.Params { return &n.cfg.Params }

// ActiveFlows counts flows currently in progress.
func (n *NIC) ActiveFlows() int {
	c := 0
	for i := range n.flows {
		if n.flows[i].active {
			c++
		}
	}
	return c
}

// FlowProgress reports a flow's transport state (for tests and tracing).
func (n *NIC) FlowProgress(flow packet.FlowID) (una, nxt uint32, active bool) {
	f := &n.flows[flow]
	return f.una, f.nxt, f.active
}

// StartFlow activates a flow of sizePkts full-MTU packets bound to a
// switch data port, running the NIC's deployed CC module and carrying its
// preferred ECN codepoint. Flow IDs index BRAM directly; a completed
// flow's ID may be reused.
func (n *NIC) StartFlow(flow packet.FlowID, port int, sizePkts uint32) error {
	return n.StartFlowWith(flow, port, sizePkts, nil, cc.PreferredECT(n.cfg.Algorithm))
}

// StartFlowWith activates a flow with a per-flow CC module and ECN
// codepoint. alg nil means the NIC's deployed module; a non-nil alg must
// match the deployed module's Mode, because the scheduler's eligibility
// test (window occupancy vs rate pacing, §5.2) is a port-wide datapath
// decision, not per-flow state.
func (n *NIC) StartFlowWith(flow packet.FlowID, port int, sizePkts uint32, alg cc.Algorithm, ect packet.ECT) error {
	if int(flow) >= len(n.flows) {
		return fmt.Errorf("fpga: flow %d exceeds BRAM capacity %d", flow, len(n.flows))
	}
	if port < 0 || port >= n.cfg.Ports {
		return fmt.Errorf("fpga: port %d out of range [0,%d)", port, n.cfg.Ports)
	}
	if alg != nil && alg.Mode() != n.cfg.Algorithm.Mode() {
		return fmt.Errorf("fpga: flow algorithm %s is %s-mode, NIC schedules %s-mode",
			alg.Name(), alg.Mode(), n.cfg.Algorithm.Mode())
	}
	f := &n.flows[flow]
	if f.active {
		return fmt.Errorf("fpga: flow %d already active", flow)
	}
	*f = flowState{
		active:  true,
		port:    port,
		alg:     alg,
		ect:     ect,
		end:     sizePkts,
		cwnd:    n.cfg.Params.InitCwnd,
		rate:    n.cfg.Params.LineRate,
		started: n.eng.Now(),
	}
	n.algOf(f).InitFlow(&f.cust, &f.slow, &n.cfg.Params)
	n.sched.register(flow, port)
	n.deliver(flow, &cc.Input{Type: cc.EvStart})
	return nil
}

// algOf resolves a flow's CC module: its override, or the NIC default.
func (n *NIC) algOf(f *flowState) cc.Algorithm {
	if f.alg != nil {
		return f.alg
	}
	return n.cfg.Algorithm
}

// StopFlow deactivates a flow immediately (used when an experiment
// terminates flows, §7.3).
func (n *NIC) StopFlow(flow packet.FlowID) {
	f := &n.flows[flow]
	if !f.active {
		return
	}
	n.cancelTimers(f)
	f.active = false
}

// InfoIn returns the Node the switch-facing link delivers INFO packets to.
func (n *NIC) InfoIn() netem.Node {
	return netem.NodeFunc(n.receiveInfo)
}

// receiveInfo is the parser stage: classify the INFO packet into the RX
// FIFO of the switch port it reports (§5.3 ingress control).
func (n *NIC) receiveInfo(p *packet.Packet) {
	if p.Type != packet.INFO {
		p.Release()
		return
	}
	n.stats.InfoRx++
	if n.cfg.DisableRXTimer {
		// Ablation: straight to the CC module at arrival rate.
		n.processInfo(p)
		p.Release()
		return
	}
	port := p.Port
	if n.cfg.SingleRXFIFO || port < 0 || port >= n.cfg.Ports {
		port = 0
	}
	if len(n.rxFIFO[port])-n.rxHead[port] >= n.cfg.RXFIFODepth {
		n.stats.InfoDrops++
		p.Release()
		return
	}
	n.rxFIFO[port] = append(n.rxFIFO[port], p)
	if !n.rxActive[port] && !n.stalled {
		n.rxActive[port] = true
		n.eng.Schedule(sim.Interval(n.cfg.RXTimerPPS), n.rxTickFns[port])
	}
}

// SetStall gates the NIC's pacing timers (a NICStall fault). While
// stalled, RX ticks and TX slots stop; arriving INFO packets queue in the
// RX FIFOs (overflows become real InfoDrops) and CC timers (e.g. RTO)
// still fire — their retransmission pushes accumulate in the priority FIFO
// and flush when the stall clears. The DisableRXTimer ablation path is
// unaffected by design: it bypasses the timers the stall models. Clearing
// the stall re-arms every timer that has pending work.
func (n *NIC) SetStall(stalled bool) {
	if n.stalled == stalled {
		return
	}
	n.stalled = stalled
	if stalled {
		return
	}
	for port := 0; port < n.cfg.Ports; port++ {
		if !n.rxActive[port] && n.rxHead[port] < len(n.rxFIFO[port]) {
			n.rxActive[port] = true
			n.eng.Schedule(sim.Interval(n.cfg.RXTimerPPS), n.rxTickFns[port])
		}
		if n.sched.hasWork(port) {
			n.sched.kick(port)
		}
	}
}

// Stalled reports whether the pacing timers are gated.
func (n *NIC) Stalled() bool { return n.stalled }

// rxTick is one RX timer period: submit one INFO packet to the CC module.
func (n *NIC) rxTick(port int) {
	if n.stalled {
		// Freeze: drop the timer (SetStall(false) re-arms it) but keep the
		// FIFO contents for delivery after the stall.
		n.rxActive[port] = false
		return
	}
	q := n.rxFIFO[port]
	h := n.rxHead[port]
	if h >= len(q) {
		n.rxActive[port] = false
		n.rxFIFO[port] = q[:0]
		n.rxHead[port] = 0
		return
	}
	p := q[h]
	q[h] = nil
	n.rxHead[port] = h + 1
	n.processInfo(p)
	p.Release()
	if n.rxHead[port] >= len(n.rxFIFO[port]) {
		n.rxActive[port] = false
		n.rxFIFO[port] = n.rxFIFO[port][:0]
		n.rxHead[port] = 0
		return
	}
	n.eng.Schedule(sim.Interval(n.cfg.RXTimerPPS), n.rxTickFns[port])
}

func (n *NIC) processInfo(p *packet.Packet) {
	if int(p.Flow) >= len(n.flows) || !n.flows[p.Flow].active {
		return
	}
	var rtt sim.Duration
	if p.SentAt > 0 {
		rtt = n.eng.Now().Sub(p.SentAt)
		n.sampleRTT(rtt)
	}
	// n.in is reused across INFO arrivals; deliver never reads it after a
	// nested deliver could run (see applyOutput's completion guard).
	n.in = cc.Input{
		Type:      cc.EvRx,
		PSN:       p.PSN,
		Ack:       p.Ack,
		Flags:     p.Flags,
		ProbedRTT: rtt,
		INT:       &p.INT,
	}
	n.deliver(p.Flow, &n.in)
}

// sampleRTT records one probe for the latency registers.
func (n *NIC) sampleRTT(rtt sim.Duration) {
	us := rtt.Microseconds()
	n.rttCount++
	if n.rttEwma == 0 {
		n.rttEwma = us
	} else {
		n.rttEwma += (us - n.rttEwma) / 16
	}
	if len(n.rttRing) < rttRingSize {
		n.rttRing = append(n.rttRing, us)
		return
	}
	n.rttRing[n.rttNext] = us
	n.rttNext = (n.rttNext + 1) % rttRingSize
}

// RTTSamples returns the retained RTT probes in microseconds (recent
// window) plus the total probe count and the running EWMA.
func (n *NIC) RTTSamples() (samples []float64, count uint64, ewmaUs float64) {
	return append([]float64(nil), n.rttRing...), n.rttCount, n.rttEwma
}

// deliver runs one CC module execution for a flow: populate the intrinsic
// inputs, charge the cycle cost, apply the outputs, and advance the
// transport state.
func (n *NIC) deliver(flow packet.FlowID, in *cc.Input) {
	f := &n.flows[flow]
	if !f.active {
		return
	}
	now := n.eng.Now()
	n.stats.EventsHandled++

	// Challenge 3: with pacing disabled, an event arriving while the
	// previous RMW is still in flight reads stale state; the hardware
	// would either corrupt the word or stall. We model the documented
	// failure ("read-write conflicts of CC parameters, leading to
	// incorrect execution") by dropping the conflicting update.
	if n.cfg.DisableRXTimer && now < f.busyUntil {
		n.stats.RMWConflicts++
		return
	}
	alg := n.algOf(f)
	cycles := alg.FastPathCycles()
	f.busyUntil = now.Add(sim.Duration(cycles) * CyclePeriod)

	in.Una, in.Nxt = f.una, f.nxt
	in.Cwnd, in.Rate = f.cwnd, f.rate
	in.MTU = n.cfg.Params.MTU
	in.Params = &n.cfg.Params
	in.Cust, in.Slow = &f.cust, &f.slow
	in.Timestamp = now

	n.out.Reset()
	alg.OnEvent(in, &n.out)
	n.applyOutput(flow, f, in, &n.out)
}

func (n *NIC) applyOutput(flow packet.FlowID, f *flowState, in *cc.Input, out *cc.Output) {
	if out.SetCwnd {
		f.cwnd = out.Cwnd
	}
	if out.SetRate {
		f.rate = out.Rate
	}
	if out.HasLog && n.logger != nil {
		n.logger.Record(n.eng.Now(), flow, out.Log)
	}
	for i := 0; i < out.NumStops; i++ {
		id := out.StopTimers[i]
		f.timers[id].Cancel()
	}
	for i := 0; i < out.NumTimers; i++ {
		n.armTimer(flow, f, out.Timers[i])
	}
	if out.SlowPath {
		n.postSlowPath(flow, out.SlowPathCode, in.Type, in.TimerID)
	}
	if out.Rtx {
		f.rtxWait = true
		f.rtxPSN = out.RtxPSN
		// Go-back-N: the receiver discarded everything after the hole,
		// so replay from there — the rtx path resends RtxPSN itself and
		// the send pointer rewinds so the scheduler re-emits the rest.
		if n.cfg.GoBackN && cc.SeqLT(out.RtxPSN, f.nxt) {
			f.nxt = out.RtxPSN + 1
		}
		n.sched.pushPriority(flow)
	}
	// Advance una after the module ran (it compares Ack to the old una).
	if in.Type == cc.EvRx && cc.SeqLT(f.una, in.Ack) {
		f.una = in.Ack
		n.checkComplete(flow, f)
		if !f.active {
			return
		}
	}
	if out.Schedule {
		n.sched.push(flow)
	}
}

// ensureRTO is the transmit-side retransmission-timer backstop for
// window-mode flows. CC modules own TimerRTO and re-arm it on every ACK,
// but an ACK covering everything in flight stops it (the flow is idle from
// the module's view). Data sent after that point — the reopened window's
// tail, or an entire first window — has no later ACK to arm a timer off
// of; if it is lost there is also nothing in flight to draw dup ACKs, so
// without this the flow deadlocks. Arming at the RTO floor is safe: the
// next ACK re-arms with the module's own estimate, and flow completion
// cancels all timers.
func (n *NIC) ensureRTO(flow packet.FlowID, f *flowState) {
	if n.cfg.Algorithm.Mode() != cc.WindowMode || f.timers[cc.TimerRTO].Armed() {
		return
	}
	n.armTimer(flow, f, cc.TimerReq{ID: cc.TimerRTO, After: n.cfg.Params.RTOMin})
}

func (n *NIC) armTimer(flow packet.FlowID, f *flowState, req cc.TimerReq) {
	id := req.ID
	f.timers[id].Cancel()
	fn := n.timerFns[flow][id]
	if fn == nil {
		fn = func() { n.fireTimer(flow, id) }
		n.timerFns[flow][id] = fn
	}
	f.timers[id] = n.eng.Schedule(req.After, fn)
}

func (n *NIC) fireTimer(flow packet.FlowID, id uint8) {
	if !n.flows[flow].active {
		return
	}
	if id == cc.TimerRTO {
		n.stats.Timeouts++
		n.deliver(flow, &cc.Input{Type: cc.EvTimeout})
		return
	}
	n.deliver(flow, &cc.Input{Type: cc.EvTimer, TimerID: id})
}

func (n *NIC) cancelTimers(f *flowState) {
	for i := range f.timers {
		f.timers[i].Cancel()
	}
}

// postSlowPath queues a Slow Path execution (§5.4): it runs after the
// configured latency with write access to the slwpth-var region.
func (n *NIC) postSlowPath(flow packet.FlowID, code uint8, evType cc.EventType, timerID uint8) {
	n.eng.Schedule(n.cfg.SlowPathLatency, func() {
		f := &n.flows[flow]
		if !f.active {
			return
		}
		n.stats.SlowPathRuns++
		in := cc.Input{
			Type: evType, TimerID: timerID,
			Una: f.una, Nxt: f.nxt, Cwnd: f.cwnd, Rate: f.rate,
			MTU: n.cfg.Params.MTU, Params: &n.cfg.Params,
			Cust: &f.cust, Slow: &f.slow, Timestamp: n.eng.Now(),
		}
		var out cc.Output
		n.algOf(f).OnSlowPath(code, &f.cust, &f.slow, &in, &out)
		if out.SetCwnd {
			f.cwnd = out.Cwnd
		}
		if out.SetRate {
			f.rate = out.Rate
		}
	})
}

func (n *NIC) checkComplete(flow packet.FlowID, f *flowState) {
	if f.end == 0 || cc.SeqLT(f.una, f.end) {
		return
	}
	fct := n.eng.Now().Sub(f.started)
	n.cancelTimers(f)
	f.active = false
	n.stats.Completions++
	if n.onComplete != nil {
		n.onComplete(flow, fct)
	}
}

// emitSche sends one SCHE packet toward the switch, stamped with the
// flow's ECN codepoint so the pipeline's DATA generator can carry it.
func (n *NIC) emitSche(flow packet.FlowID, psn uint32, port int, rtx bool) {
	if n.scheOut == nil {
		return
	}
	p := packet.NewSche(flow, psn, port, n.eng.Now())
	p.Flags |= n.flows[flow].ect.Bits()
	if rtx {
		p.Flags |= packet.FlagRetransmit
		n.stats.RtxTx++
	}
	n.stats.ScheTx++
	n.scheOut.Receive(p)
}
