package tofino

import (
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ReceiverMode selects Module A's behaviour (§4.1: "the method of handling
// DATA packets varies depending on the specific CC algorithm employed").
type ReceiverMode int

// Receiver modes.
const (
	// TCPReceiver acknowledges cumulatively, buffers out-of-order
	// arrivals, and echoes CE marks per packet (DCTCP-exact echo).
	TCPReceiver ReceiverMode = iota
	// RoCEReceiver drops out-of-order arrivals and NACKs them
	// (go-back-N), and converts CE marks into rate-limited CNPs (DCQCN).
	RoCEReceiver
)

func (m ReceiverMode) String() string {
	if m == RoCEReceiver {
		return "roce"
	}
	return "tcp"
}

// rxFlow is the per-flow receive state kept in switch registers: "the
// programmable switch updates the receive window by reading the PSN of the
// DATA packet" (§3.2).
type rxFlow struct {
	expected uint32
	ooo      map[uint32]struct{}
	lastCNP  sim.Time
	cnpSent  bool
	nacked   bool
}

// receiver is Module A.
type receiver struct {
	eng         *sim.Engine
	mode        ReceiverMode
	cnpInterval sim.Duration
	flows       []rxFlow
	ackOut      []netem.Node

	ackTx  uint64
	cnpTx  uint64
	nackTx uint64
	dataRx uint64
	oooRx  uint64
	dupRx  uint64
}

func newReceiver(eng *sim.Engine, mode ReceiverMode, cnpInterval sim.Duration) *receiver {
	return &receiver{eng: eng, mode: mode, cnpInterval: cnpInterval}
}

func (r *receiver) connectAck(port int, out netem.Node) {
	for port >= len(r.ackOut) {
		r.ackOut = append(r.ackOut, nil)
	}
	r.ackOut[port] = out
}

func (r *receiver) flow(id packet.FlowID) *rxFlow {
	for int(id) >= len(r.flows) {
		r.flows = append(r.flows, rxFlow{})
	}
	return &r.flows[id]
}

func (r *receiver) reset(id packet.FlowID) {
	if int(id) < len(r.flows) {
		r.flows[id] = rxFlow{}
	}
}

// onData handles one arriving DATA packet at a receiver port (§3.2 steps
// 3-4): update receive state, then "generate ACK packets by truncating
// DATA packets to 64 bytes and rewriting their header fields".
func (r *receiver) onData(port int, p *packet.Packet) {
	if p.Type != packet.DATA {
		p.Release()
		return
	}
	r.dataRx++
	f := r.flow(p.Flow)
	ce := p.Flags.Has(packet.FlagCE)
	switch {
	case p.PSN == f.expected:
		f.expected++
		if r.mode == TCPReceiver {
			// Drain buffered out-of-order segments.
			for len(f.ooo) > 0 {
				if _, ok := f.ooo[f.expected]; !ok {
					break
				}
				delete(f.ooo, f.expected)
				f.expected++
			}
		}
		f.nacked = false
	case seqAfter(p.PSN, f.expected):
		r.oooRx++
		if r.mode == TCPReceiver {
			if f.ooo == nil {
				f.ooo = make(map[uint32]struct{})
			}
			f.ooo[p.PSN] = struct{}{}
		} else {
			// Go-back-N: discard and NACK once per gap episode.
			if !f.nacked {
				f.nacked = true
				r.sendNack(port, p, f.expected)
			}
			if ce {
				r.maybeCNP(port, p, f)
			}
			p.Release() // go-back-N discards the out-of-order frame
			return
		}
	default:
		r.dupRx++
	}

	if r.mode == RoCEReceiver && ce {
		r.maybeCNP(port, p, f)
	}
	r.sendAck(port, p, f.expected, ce)
}

// sendAck emits the acknowledgement by truncating and rewriting the DATA
// frame in place (§3.2 step 4), consuming it: Flow, PSN, SentAt, the ECT
// codepoint bits, and the INT telemetry stack are echoed verbatim,
// everything else is rewritten. Keeping the ECT bits matters: the sender's
// CC module reads the echoed codepoint to confirm what the flow negotiated,
// and wiping them here would silently downgrade ECT(1) flows to Not-ECT on
// the return path.
func (r *receiver) sendAck(port int, d *packet.Packet, cumAck uint32, ce bool) {
	out := r.out(port)
	if out == nil {
		d.Release()
		return
	}
	d.Type = packet.ACK
	d.Ack = cumAck
	d.Size = packet.ControlSize
	d.Port = 0
	d.RxTime = r.eng.Now()
	d.Flags &= packet.ECTMask
	if ce && r.mode == TCPReceiver {
		d.Flags |= packet.FlagECNEcho
	}
	r.ackTx++
	out.Receive(d)
}

func (r *receiver) sendNack(port int, d *packet.Packet, expected uint32) {
	out := r.out(port)
	if out == nil {
		return
	}
	n := packet.Get()
	n.Type = packet.ACK
	n.Flow = d.Flow
	n.PSN = d.PSN
	n.Ack = expected
	n.Flags = packet.FlagNACK | d.Flags&packet.ECTMask
	n.Size = packet.ControlSize
	n.SentAt = d.SentAt
	n.RxTime = r.eng.Now()
	r.nackTx++
	out.Receive(n)
}

// maybeCNP emits a DCQCN congestion-notification packet, at most one per
// CNPInterval per flow (the NP-side pacing of the DCQCN spec).
func (r *receiver) maybeCNP(port int, d *packet.Packet, f *rxFlow) {
	now := r.eng.Now()
	if f.cnpSent && now.Sub(f.lastCNP) < r.cnpInterval {
		return
	}
	out := r.out(port)
	if out == nil {
		return
	}
	f.lastCNP = now
	f.cnpSent = true
	cnp := packet.Get()
	cnp.Type = packet.CNP
	cnp.Flow = d.Flow
	cnp.PSN = d.PSN
	cnp.Ack = f.expected
	cnp.Flags = packet.FlagCNPNotify
	cnp.Size = packet.ControlSize
	cnp.SentAt = d.SentAt
	cnp.RxTime = now
	r.cnpTx++
	out.Receive(cnp)
}

func (r *receiver) out(port int) netem.Node {
	if port < 0 || port >= len(r.ackOut) {
		return nil
	}
	return r.ackOut[port]
}

// seqAfter reports whether a follows b in 32-bit circular sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }
