// Package tofino models Marlin's programmable-switch data plane: the three
// modules of §4 (receiver logic, INFO generator, DATA generator), the
// per-egress-port register queues of §4.2, and the port-allocation and
// throughput-amplification arithmetic of §3.3/§4.3.
//
// The model substitutes for an Intel Tofino ASIC (see DESIGN.md). It keeps
// the behaviours the evaluation depends on: SCHE metadata queues that
// overflow when the FPGA overruns a port's DATA rate, line-rate-limited
// DATA emission per port, 64-byte control packets, and per-port counters
// readable by the control plane.
package tofino

import (
	"fmt"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// PortsPerPipeline is the number of 100 Gbps ports in one Tofino pipeline.
const PortsPerPipeline = 16

// Plan captures §4.3's port allocation for one pipeline and the resulting
// amplification: how many DATA ports one FPGA-facing SCHE port can feed.
type Plan struct {
	// MTU is the DATA frame size.
	MTU int
	// PortRate is the per-port line rate.
	PortRate sim.Rate
	// DataPorts is the number of ports sending/receiving test traffic.
	DataPorts int
	// FPGAPorts carry SCHE in / INFO out (one port, both directions).
	FPGAPorts int
	// EnqueuePorts perform the SCHE enqueue on the egress pipeline.
	EnqueuePorts int
	// LoopbackPorts cycle TEMP packets.
	LoopbackPorts int
	// Reserved ports are left over (usable for FPGA-side receiver logic).
	Reserved int
	// SchePPS is the SCHE arrival rate at line rate.
	SchePPS float64
	// DataPPSPerPort is the maximum DATA emission rate of one port.
	DataPPSPerPort float64
	// Throughput is the aggregate DATA rate of the pipeline.
	Throughput sim.Rate
}

// NewPlan computes the optimal allocation for one pipeline at the given
// MTU, reproducing §3.3: at MTU 1024 one 100 Gbps SCHE port drives
// floor(148.8/11.97) = 12 DATA ports for 1.2 Tbps; at MTU 1518 the
// amplification factor is 18 but the pipeline only has ports for 13.
func NewPlan(mtu int, portRate sim.Rate) (Plan, error) {
	if mtu < packet.ControlSize || mtu > 9216 {
		return Plan{}, fmt.Errorf("tofino: MTU %d outside [%d, 9216]", mtu, packet.ControlSize)
	}
	if portRate <= 0 {
		return Plan{}, fmt.Errorf("tofino: non-positive port rate")
	}
	p := Plan{
		MTU:            mtu,
		PortRate:       portRate,
		FPGAPorts:      1,
		EnqueuePorts:   1,
		LoopbackPorts:  1,
		SchePPS:        portRate.PacketsPerSecond(packet.WireSize(packet.ControlSize)),
		DataPPSPerPort: portRate.PacketsPerSecond(packet.WireSize(mtu)),
	}
	amplification := int(p.SchePPS / p.DataPPSPerPort)
	overhead := p.FPGAPorts + p.EnqueuePorts + p.LoopbackPorts
	available := PortsPerPipeline - overhead
	p.DataPorts = amplification
	if p.DataPorts > available {
		p.DataPorts = available
	}
	p.Reserved = available - p.DataPorts
	p.Throughput = sim.Rate(int64(portRate) * int64(p.DataPorts))
	return p, nil
}

// AmplificationFactor returns how many line-rate DATA ports one SCHE port
// can feed at this MTU, ignoring the pipeline's port budget.
func (p Plan) AmplificationFactor() int {
	return int(p.SchePPS / p.DataPPSPerPort)
}

// IdealThroughput returns the amplification-limited throughput, ignoring
// the pipeline's port budget (§3.3's "theoretically achievable" figure).
func (p Plan) IdealThroughput() sim.Rate {
	return sim.Rate(int64(p.PortRate) * int64(p.AmplificationFactor()))
}

// TotalPorts returns the ports the plan consumes.
func (p Plan) TotalPorts() int {
	return p.DataPorts + p.FPGAPorts + p.EnqueuePorts + p.LoopbackPorts
}

// Validate checks the plan fits one pipeline.
func (p Plan) Validate() error {
	if p.TotalPorts() > PortsPerPipeline {
		return fmt.Errorf("tofino: plan needs %d ports, pipeline has %d",
			p.TotalPorts(), PortsPerPipeline)
	}
	if p.DataPorts < 1 {
		return fmt.Errorf("tofino: plan has no data ports")
	}
	return nil
}
