package tofino

import "fmt"

// Tofino per-pipeline resource budgets. The paper reports its P4 program
// uses 58/960 SRAM blocks, 3/288 TCAM blocks, across 4 of 12 stages (§6);
// this model accounts for the structures the reproduction actually
// instantiates so configurations that could not fit real hardware are
// rejected up front.
const (
	// SRAMBlocks is the per-pipeline SRAM budget (960 blocks of 16 KB).
	SRAMBlocks = 960
	// SRAMBlockBytes is the usable size of one SRAM block.
	SRAMBlockBytes = 16 << 10
	// TCAMBlocks is the per-pipeline TCAM budget.
	TCAMBlocks = 288
	// PipelineStages is the MAU stage count of a Tofino pipeline.
	PipelineStages = 12
)

// ResourceReport estimates the data-plane resources one pipeline
// configuration consumes.
type ResourceReport struct {
	// SRAMUsed counts 16 KB SRAM blocks for the register queues, the
	// per-flow receive state, and the counter registers.
	SRAMUsed int
	// TCAMUsed counts TCAM blocks for the forwarding/classification
	// tables (flow -> port binding and packet-type dispatch).
	TCAMUsed int
	// Stages is the MAU stages the program occupies (the paper's
	// program spans 4).
	Stages int
	// RegQueueBytes is the register-array footprint of the SCHE
	// metadata queues.
	RegQueueBytes int
	// RxStateBytes is the receiver-state footprint (expected PSN + CNP
	// pacing word per flow).
	RxStateBytes int
}

// scheMetaBytes is the register footprint of one queue entry: flow id,
// PSN, flags, and the 48-bit timestamp the DATA packet restores.
const scheMetaBytes = 4 + 4 + 2 + 6

// rxFlowBytes is the per-flow receiver register word: expected PSN plus
// the CNP pacing timestamp.
const rxFlowBytes = 4 + 6

// Resources estimates the report for a queue depth and flow count under
// the given plan.
func Resources(plan Plan, queueDepth, flows int) ResourceReport {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	r := ResourceReport{
		RegQueueBytes: plan.DataPorts * queueDepth * scheMetaBytes,
		RxStateBytes:  flows * rxFlowBytes,
		TCAMUsed:      3, // packet-type dispatch, flow->port, multicast group
		Stages:        4, // parse/dispatch, queue RMW, rewrite, counters
	}
	counterBytes := plan.DataPorts * 64 // per-port counter registers
	total := r.RegQueueBytes + r.RxStateBytes + counterBytes
	r.SRAMUsed = (total + SRAMBlockBytes - 1) / SRAMBlockBytes
	return r
}

// Validate rejects configurations that exceed the pipeline budgets.
func (r ResourceReport) Validate() error {
	if r.SRAMUsed > SRAMBlocks {
		return fmt.Errorf("tofino: %d SRAM blocks exceed the %d budget", r.SRAMUsed, SRAMBlocks)
	}
	if r.TCAMUsed > TCAMBlocks {
		return fmt.Errorf("tofino: %d TCAM blocks exceed the %d budget", r.TCAMUsed, TCAMBlocks)
	}
	if r.Stages > PipelineStages {
		return fmt.Errorf("tofino: %d stages exceed the %d budget", r.Stages, PipelineStages)
	}
	return nil
}
