package tofino

import (
	"fmt"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Config configures one pipeline model.
type Config struct {
	// Plan is the port allocation (NewPlan).
	Plan Plan
	// QueueDepth is the per-port register-queue depth (0 = default).
	QueueDepth int
	// SharedQueue replaces the per-egress-port queues with one shared
	// queue — the broken design §4.2 rules out, kept for the ablation:
	// "a TEMP packet might accidentally dequeue metadata meant for a
	// different port, leading to incorrect packet transmission".
	SharedQueue bool
	// Receiver selects the Module A behaviour.
	Receiver ReceiverMode
	// ReceiverOnFPGA moves the receiver logic to the FPGA (Figure 2's
	// dashed path, §4.1): arriving DATA is truncated to 64 bytes and
	// forwarded over the reserved port instead of being processed by
	// Module A; the FPGA's responses come back through FPGAAckIn.
	ReceiverOnFPGA bool
	// CNPInterval rate-limits per-flow CNP generation (RoCE receiver).
	CNPInterval sim.Duration
}

// Counters are the pipeline's control-plane-visible registers (§3.2: "the
// control plane can retrieve data such as port rate, flow rate, and packet
// loss by reading hardware registers").
type Counters struct {
	ScheRx       uint64
	ScheDrops    uint64 // register-queue overflows: false losses
	DataTx       uint64
	DataTxBytes  uint64
	DataRx       uint64
	AckTx        uint64
	CnpTx        uint64
	NackTx       uint64
	AckRx        uint64
	InfoTx       uint64
	Misdelivered uint64 // shared-queue ablation: DATA on the wrong port
	OutOfOrderRx uint64
	DuplicateRx  uint64
}

// PortCounters are per-data-port registers.
type PortCounters struct {
	DataTx      uint64
	DataTxBytes uint64
	ScheRx      uint64
	ScheDrops   uint64
	QueueLen    int
}

// Pipeline is one Tofino pipeline running Marlin's P4 program.
type Pipeline struct {
	eng *sim.Engine
	cfg Config

	queues []*regQueue
	shared *regQueue

	dataOut  []netem.Node
	infoOut  netem.Node
	slot     sim.Duration // TEMP slot: wire time of one MTU frame
	portFree []sim.Time
	pending  []bool
	// emitFns holds one prebuilt TEMP-slot closure per port so kick does
	// not allocate a closure per emitted packet.
	emitFns []sim.Func

	flowPort []int32
	perFlow  []flowCounters
	recv     *receiver
	rxFwd    netem.Node // reserved-port link toward the FPGA receiver

	c     Counters
	ports []PortCounters
}

type flowCounters struct {
	dataTx      uint64
	dataTxBytes uint64
}

// NewPipeline builds a pipeline from a validated config.
func NewPipeline(eng *sim.Engine, cfg Config) (*Pipeline, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.CNPInterval <= 0 {
		cfg.CNPInterval = sim.Micros(4)
	}
	n := cfg.Plan.DataPorts
	pl := &Pipeline{
		eng:      eng,
		cfg:      cfg,
		dataOut:  make([]netem.Node, n),
		slot:     cfg.Plan.PortRate.Serialize(packet.WireSize(cfg.Plan.MTU)),
		portFree: make([]sim.Time, n),
		pending:  make([]bool, n),
		emitFns:  make([]sim.Func, n),
		ports:    make([]PortCounters, n),
	}
	for i := range pl.emitFns {
		i := i
		pl.emitFns[i] = func() { pl.emit(i) }
	}
	if cfg.SharedQueue {
		pl.shared = newRegQueue(cfg.QueueDepth * maxInt(n, 1))
	} else {
		pl.queues = make([]*regQueue, n)
		for i := range pl.queues {
			pl.queues[i] = newRegQueue(cfg.QueueDepth)
		}
	}
	pl.recv = newReceiver(eng, cfg.Receiver, cfg.CNPInterval)
	return pl, nil
}

// Plan returns the pipeline's port plan.
func (pl *Pipeline) Plan() Plan { return pl.cfg.Plan }

// ConnectDataPort attaches data port i's egress to the tested network.
func (pl *Pipeline) ConnectDataPort(i int, out netem.Node) {
	pl.dataOut[i] = out
}

// ConnectInfo attaches the FPGA-facing INFO egress.
func (pl *Pipeline) ConnectInfo(out netem.Node) { pl.infoOut = out }

// ConnectAckPort attaches receiver port i's ACK return path.
func (pl *Pipeline) ConnectAckPort(i int, out netem.Node) {
	pl.recv.connectAck(i, out)
}

// BindFlow assigns a flow to a data port; the FPGA must pace the flow's
// SCHE packets within that port's DATA rate (§4.2).
func (pl *Pipeline) BindFlow(flow packet.FlowID, port int) error {
	if port < 0 || port >= len(pl.dataOut) {
		return fmt.Errorf("tofino: port %d out of range [0,%d)", port, len(pl.dataOut))
	}
	for int(flow) >= len(pl.flowPort) {
		pl.flowPort = append(pl.flowPort, -1)
		pl.perFlow = append(pl.perFlow, flowCounters{})
	}
	pl.flowPort[flow] = int32(port)
	return nil
}

// ResetFlow clears receiver-side state so a flow slot can be reused for a
// new flow (closed-loop workloads).
func (pl *Pipeline) ResetFlow(flow packet.FlowID) {
	pl.recv.reset(flow)
	if int(flow) < len(pl.perFlow) {
		pl.perFlow[flow] = flowCounters{}
	}
}

// Counters returns a snapshot of the pipeline registers.
func (pl *Pipeline) Counters() Counters {
	c := pl.c
	c.CnpTx = pl.recv.cnpTx
	c.NackTx = pl.recv.nackTx
	c.AckTx = pl.recv.ackTx
	c.DataRx = pl.recv.dataRx
	c.OutOfOrderRx = pl.recv.oooRx
	c.DuplicateRx = pl.recv.dupRx
	return c
}

// Plus returns the field-wise sum of two register snapshots; sharded
// testers merge their per-partition pipelines with it.
func (c Counters) Plus(o Counters) Counters {
	c.ScheRx += o.ScheRx
	c.ScheDrops += o.ScheDrops
	c.DataTx += o.DataTx
	c.DataTxBytes += o.DataTxBytes
	c.DataRx += o.DataRx
	c.AckTx += o.AckTx
	c.CnpTx += o.CnpTx
	c.NackTx += o.NackTx
	c.AckRx += o.AckRx
	c.InfoTx += o.InfoTx
	c.Misdelivered += o.Misdelivered
	c.OutOfOrderRx += o.OutOfOrderRx
	c.DuplicateRx += o.DuplicateRx
	return c
}

// PortCounters returns the registers of data port i.
func (pl *Pipeline) PortCounters(i int) PortCounters {
	pc := pl.ports[i]
	if pl.queues != nil {
		pc.QueueLen = pl.queues[i].len()
	}
	return pc
}

// FlowTxBytes returns the DATA bytes emitted for a flow (flow-rate
// register).
func (pl *Pipeline) FlowTxBytes(flow packet.FlowID) uint64 {
	if int(flow) >= len(pl.perFlow) {
		return 0
	}
	return pl.perFlow[flow].dataTxBytes
}

// ScheIn returns the Node the FPGA-facing link delivers SCHE packets to.
func (pl *Pipeline) ScheIn() netem.Node {
	return netem.NodeFunc(pl.receiveSche)
}

// receiveSche implements §4.2's enqueue: "when a SCHE packet arrives at
// the egress, its metadata is enqueued into the queue corresponding to the
// designated output port", then the SCHE packet is discarded.
func (pl *Pipeline) receiveSche(p *packet.Packet) {
	if p.Type != packet.SCHE {
		p.Release()
		return
	}
	pl.c.ScheRx++
	port := p.Port
	m := scheMeta{flow: p.Flow, psn: p.PSN, flags: p.Flags, sentAt: int64(p.SentAt), port: port}
	p.Release() // the SCHE frame is pure metadata once parsed (§4.2)
	if port < 0 || port >= len(pl.dataOut) {
		pl.c.ScheDrops++
		return
	}
	pl.ports[port].ScheRx++
	q := pl.shared
	if q == nil {
		q = pl.queues[port]
	}
	if !q.enqueue(m) {
		pl.c.ScheDrops++
		pl.ports[port].ScheDrops++
		return
	}
	if pl.cfg.SharedQueue {
		pl.kickShared()
	} else {
		pl.kick(port)
	}
}

// kick arms port i's next TEMP slot if the drain loop is idle. TEMP
// packets circulate at line rate and are multicast to every port; a slot
// that finds the queue empty discards its TEMP packet, so only occupied
// slots are simulated.
func (pl *Pipeline) kick(port int) {
	if pl.pending[port] {
		return
	}
	pl.pending[port] = true
	at := pl.portFree[port]
	if now := pl.eng.Now(); at < now {
		at = now
	}
	pl.eng.ScheduleAt(at, pl.emitFns[port])
}

// emit is one TEMP slot on a port: dequeue metadata, restore the DATA
// packet, and send it into the tested network.
func (pl *Pipeline) emit(port int) {
	pl.pending[port] = false
	q := pl.shared
	if q == nil {
		q = pl.queues[port]
	}
	m, ok := q.dequeue()
	if !ok {
		return
	}
	pl.portFree[port] = pl.eng.Now().Add(pl.slot)
	if m.port != port {
		pl.c.Misdelivered++
	}
	pl.sendData(port, m)
	if q.len() > 0 {
		pl.kick(port)
	}
}

// kickShared schedules the shared-queue ablation's next emission on
// whichever port's TEMP slot comes first.
func (pl *Pipeline) kickShared() {
	best := -1
	for i := range pl.portFree {
		if pl.pending[i] {
			continue
		}
		if best == -1 || pl.portFree[i] < pl.portFree[best] {
			best = i
		}
	}
	if best == -1 {
		return
	}
	pl.pending[best] = true
	at := pl.portFree[best]
	if now := pl.eng.Now(); at < now {
		at = now
	}
	pl.eng.ScheduleAt(at, func() {
		pl.emit(best)
		if pl.shared.len() > 0 {
			pl.kickShared()
		}
	})
}

func (pl *Pipeline) sendData(port int, m scheMeta) {
	out := pl.dataOut[port]
	if out == nil {
		return
	}
	d := packet.NewData(m.flow, m.psn, pl.cfg.Plan.MTU, sim.Time(m.sentAt))
	d.Flags |= m.flags & packet.FlagRetransmit
	// Carry the flow's ECN codepoint from the SCHE header onto the DATA
	// packet it generates (NewData defaults to ECT(0)).
	d.Flags = d.Flags&^packet.ECTMask | m.flags&packet.ECTMask
	d.Port = port
	pl.c.DataTx++
	pl.c.DataTxBytes += uint64(d.Size)
	pl.ports[port].DataTx++
	pl.ports[port].DataTxBytes += uint64(d.Size)
	if int(m.flow) < len(pl.perFlow) {
		pl.perFlow[m.flow].dataTx++
		pl.perFlow[m.flow].dataTxBytes += uint64(d.Size)
	}
	out.Receive(d)
}

// ConnectRxForward attaches the reserved-port link carrying truncated DATA
// toward the FPGA receiver (only used with ReceiverOnFPGA).
func (pl *Pipeline) ConnectRxForward(out netem.Node) { pl.rxFwd = out }

// DataIn returns the Node the tested network delivers DATA to at receiver
// port i (Module A, §4.1). With ReceiverOnFPGA the packet is instead
// truncated to 64 bytes and forwarded to the FPGA over the reserved port.
func (pl *Pipeline) DataIn(port int) netem.Node {
	if pl.cfg.ReceiverOnFPGA {
		return netem.NodeFunc(func(p *packet.Packet) {
			if p.Type != packet.DATA || pl.rxFwd == nil {
				p.Release()
				return
			}
			pl.recv.dataRx++
			p.Size = packet.ControlSize // truncation, in place
			p.Port = port               // arrival port for ACK routing
			pl.rxFwd.Receive(p)
		})
	}
	return netem.NodeFunc(func(p *packet.Packet) { pl.recv.onData(port, p) })
}

// FPGAAckIn returns the Node that accepts the FPGA receiver's ACK/NACK/CNP
// responses and emits them on the arrival port's ACK path.
func (pl *Pipeline) FPGAAckIn() netem.Node {
	return netem.NodeFunc(func(p *packet.Packet) {
		switch p.Type {
		case packet.ACK:
			pl.recv.ackTx++
			if p.Flags.Has(packet.FlagNACK) {
				pl.recv.nackTx++
			}
		case packet.CNP:
			pl.recv.cnpTx++
		default:
			return
		}
		if out := pl.recv.out(p.Port); out != nil {
			out.Receive(p)
		}
	})
}

// AckIn returns the Node returning ACK/CNP packets reach (Module B): each
// is compressed into a 64-byte INFO packet and forwarded to the FPGA.
func (pl *Pipeline) AckIn() netem.Node {
	return netem.NodeFunc(pl.receiveAck)
}

func (pl *Pipeline) receiveAck(p *packet.Packet) {
	switch p.Type {
	case packet.ACK, packet.CNP:
	default:
		p.Release()
		return
	}
	pl.c.AckRx++
	if pl.infoOut == nil {
		p.Release()
		return
	}
	// Compression rewrites the frame in place — the ACK/CNP terminates here
	// and its Flow/PSN/Ack/Flags/SentAt/INT fields carry over verbatim.
	if p.Type == packet.CNP {
		p.Flags |= packet.FlagCNPNotify
	}
	p.Type = packet.INFO
	p.Size = packet.ControlSize
	p.RxTime = pl.eng.Now()
	p.Port = 0
	if int(p.Flow) < len(pl.flowPort) && pl.flowPort[p.Flow] >= 0 {
		p.Port = int(pl.flowPort[p.Flow])
	}
	pl.c.InfoTx++
	pl.infoOut.Receive(p)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
