package tofino

import (
	"testing"
	"testing/quick"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func TestPlanMTU1024Gives12PortsAnd1200G(t *testing.T) {
	p, err := NewPlan(1024, 100*sim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.AmplificationFactor(); f != 12 {
		t.Fatalf("amplification at MTU 1024 = %d, want 12 (§3.3)", f)
	}
	if p.DataPorts != 12 {
		t.Fatalf("data ports = %d, want 12", p.DataPorts)
	}
	if p.Throughput != 1200*sim.Gbps {
		t.Fatalf("throughput = %v, want 1.2Tbps", p.Throughput)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMTU1518Amplifies18ButPortLimited(t *testing.T) {
	p, err := NewPlan(1518, 100*sim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.AmplificationFactor(); f != 18 {
		t.Fatalf("amplification at MTU 1518 = %d, want 18 (§3.3)", f)
	}
	if p.IdealThroughput() != 1800*sim.Gbps {
		t.Fatalf("ideal = %v, want 1.8Tbps", p.IdealThroughput())
	}
	// One pipeline has 16 ports; 3 are overhead, so 13 data ports max.
	if p.DataPorts != 13 {
		t.Fatalf("data ports = %d, want 13 (port-budget limited)", p.DataPorts)
	}
	if p.Throughput != 1300*sim.Gbps {
		t.Fatalf("throughput = %v, want 1.3Tbps (§4.3)", p.Throughput)
	}
}

func TestPlanMTU1072Boundary(t *testing.T) {
	// §4.3: "when the MTU is greater than 1072 bytes, 100 Gbps SCHE
	// packets can generate 1.3 Tbps of DATA traffic".
	p, _ := NewPlan(1073, 100*sim.Gbps)
	if p.AmplificationFactor() < 13 {
		t.Fatalf("amplification at MTU 1073 = %d, want >= 13", p.AmplificationFactor())
	}
	q, _ := NewPlan(1024, 100*sim.Gbps)
	if q.AmplificationFactor() != 12 {
		t.Fatalf("amplification at MTU 1024 = %d, want 12", q.AmplificationFactor())
	}
}

func TestPlanRates(t *testing.T) {
	p, _ := NewPlan(1024, 100*sim.Gbps)
	if p.SchePPS < 148.7e6 || p.SchePPS > 148.9e6 {
		t.Fatalf("SCHE rate = %v pps, want ~148.8M", p.SchePPS)
	}
	if p.DataPPSPerPort < 11.9e6 || p.DataPPSPerPort > 12.1e6 {
		t.Fatalf("DATA rate = %v pps, want ~11.97M", p.DataPPSPerPort)
	}
	p2, _ := NewPlan(1518, 100*sim.Gbps)
	if p2.DataPPSPerPort < 8.1e6 || p2.DataPPSPerPort > 8.2e6 {
		t.Fatalf("DATA rate at 1518 = %v pps, want ~8.127M", p2.DataPPSPerPort)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(32, 100*sim.Gbps); err == nil {
		t.Error("tiny MTU accepted")
	}
	if _, err := NewPlan(1024, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestQuickPlanPortBudget(t *testing.T) {
	f := func(mtuRaw uint16) bool {
		mtu := int(mtuRaw)%9000 + 100
		p, err := NewPlan(mtu, 100*sim.Gbps)
		if err != nil {
			return mtu < packet.ControlSize
		}
		return p.TotalPorts() <= PortsPerPipeline && p.DataPorts >= 1 &&
			p.DataPorts <= p.AmplificationFactor()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegQueueFIFOAndOverflow(t *testing.T) {
	q := newRegQueue(4)
	for i := 0; i < 4; i++ {
		if !q.enqueue(scheMeta{psn: uint32(i)}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.enqueue(scheMeta{psn: 99}) {
		t.Fatal("overflow admitted")
	}
	if q.drops != 1 {
		t.Fatalf("drops = %d, want 1", q.drops)
	}
	for i := 0; i < 4; i++ {
		m, ok := q.dequeue()
		if !ok || m.psn != uint32(i) {
			t.Fatalf("dequeue %d: %v %v", i, m, ok)
		}
	}
	if _, ok := q.dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
}

func TestQuickRegQueueWraparound(t *testing.T) {
	f := func(ops []byte) bool {
		q := newRegQueue(8)
		var model []uint32
		psn := uint32(0)
		for _, op := range ops {
			if op%2 == 0 {
				if q.enqueue(scheMeta{psn: psn}) {
					model = append(model, psn)
				}
				psn++
			} else {
				m, ok := q.dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if m.psn != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func buildPipeline(t *testing.T, cfg Config) (*sim.Engine, *Pipeline) {
	t.Helper()
	eng := sim.NewEngine()
	if cfg.Plan.MTU == 0 {
		plan, err := NewPlan(1024, 100*sim.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Plan = plan
	}
	pl, err := NewPipeline(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, pl
}

func sche(flow packet.FlowID, psn uint32, port int) *packet.Packet {
	return packet.NewSche(flow, psn, port, 0)
}

func TestPipelineGeneratesDataFromSche(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	var out netem.Sink
	pl.ConnectDataPort(0, &out)
	if err := pl.BindFlow(1, 0); err != nil {
		t.Fatal(err)
	}
	pl.ScheIn().Receive(sche(1, 42, 0))
	eng.RunAll()
	if out.Packets != 1 {
		t.Fatalf("emitted %d DATA packets, want 1", out.Packets)
	}
	d := out.Last
	if d.Type != packet.DATA || d.Flow != 1 || d.PSN != 42 || d.Size != 1024 {
		t.Fatalf("DATA = %+v", d)
	}
	c := pl.Counters()
	if c.ScheRx != 1 || c.DataTx != 1 || c.ScheDrops != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if pl.FlowTxBytes(1) != 1024 {
		t.Fatalf("flow tx bytes = %d", pl.FlowTxBytes(1))
	}
}

func TestPipelinePacesAtPortLineRate(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	var times []sim.Time
	pl.ConnectDataPort(0, netem.NodeFunc(func(p *packet.Packet) {
		times = append(times, eng.Now())
	}))
	pl.BindFlow(1, 0)
	in := pl.ScheIn()
	for i := 0; i < 10; i++ {
		in.Receive(sche(1, uint32(i), 0))
	}
	eng.RunAll()
	if len(times) != 10 {
		t.Fatalf("emitted %d, want 10", len(times))
	}
	slot := (100 * sim.Gbps).Serialize(packet.WireSize(1024))
	for i := 1; i < len(times); i++ {
		if gap := times[i].Sub(times[i-1]); gap < slot {
			t.Fatalf("gap %v < TEMP slot %v: port exceeded line rate", gap, slot)
		}
	}
}

func TestPipelinePortsIndependent(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	var a, b netem.Sink
	pl.ConnectDataPort(0, &a)
	pl.ConnectDataPort(1, &b)
	pl.BindFlow(1, 0)
	pl.BindFlow(2, 1)
	in := pl.ScheIn()
	for i := 0; i < 5; i++ {
		in.Receive(sche(1, uint32(i), 0))
		in.Receive(sche(2, uint32(i), 1))
	}
	eng.RunAll()
	if a.Packets != 5 || b.Packets != 5 {
		t.Fatalf("a=%d b=%d, want 5 each", a.Packets, b.Packets)
	}
	pc := pl.PortCounters(0)
	if pc.DataTx != 5 || pc.ScheRx != 5 {
		t.Fatalf("port 0 counters = %+v", pc)
	}
}

func TestPipelineQueueOverflowIsFalseLoss(t *testing.T) {
	eng, pl := buildPipeline(t, Config{QueueDepth: 8})
	var out netem.Sink
	pl.ConnectDataPort(0, &out)
	pl.BindFlow(1, 0)
	in := pl.ScheIn()
	// Burst far above what one port's TEMP slots can drain.
	for i := 0; i < 100; i++ {
		in.Receive(sche(1, uint32(i), 0))
	}
	eng.RunAll()
	c := pl.Counters()
	if c.ScheDrops == 0 {
		t.Fatal("overrun produced no queue drops (Challenge 1 not modelled)")
	}
	if out.Packets+c.ScheDrops != 100 {
		t.Fatalf("emitted %d + dropped %d != 100", out.Packets, c.ScheDrops)
	}
}

func TestPipelineBadPortSche(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	pl.ScheIn().Receive(sche(1, 0, 99))
	eng.RunAll()
	if pl.Counters().ScheDrops != 1 {
		t.Fatal("out-of-range port SCHE not counted as drop")
	}
	if err := pl.BindFlow(1, 99); err == nil {
		t.Fatal("BindFlow accepted bad port")
	}
}

func TestPipelineSharedQueueMisdelivers(t *testing.T) {
	eng, pl := buildPipeline(t, Config{SharedQueue: true, QueueDepth: 64})
	sinks := make([]netem.Sink, 12)
	for i := range sinks {
		pl.ConnectDataPort(i, &sinks[i])
	}
	pl.BindFlow(1, 0)
	pl.BindFlow(2, 5)
	in := pl.ScheIn()
	// Interleave SCHE for two ports: with one shared queue, TEMP slots on
	// other ports grab metadata destined elsewhere.
	for i := 0; i < 50; i++ {
		in.Receive(sche(1, uint32(i), 0))
		in.Receive(sche(2, uint32(i), 5))
	}
	eng.RunAll()
	if pl.Counters().Misdelivered == 0 {
		t.Fatal("shared queue produced no misdeliveries (§4.2 ablation)")
	}
}

func TestReceiverTCPInOrderCumulativeAck(t *testing.T) {
	eng, pl := buildPipeline(t, Config{Receiver: TCPReceiver})
	var acks []*packet.Packet
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) }))
	rx := pl.DataIn(0)
	for i := 0; i < 3; i++ {
		rx.Receive(packet.NewData(1, uint32(i), 1024, sim.Time(i*100)))
	}
	eng.RunAll()
	if len(acks) != 3 {
		t.Fatalf("acks = %d, want 3", len(acks))
	}
	for i, a := range acks {
		if a.Type != packet.ACK || a.Ack != uint32(i+1) || a.Size != packet.ControlSize {
			t.Fatalf("ack %d = %+v", i, a)
		}
		if a.SentAt != sim.Time(i*100) {
			t.Fatalf("ack %d did not echo SentAt", i)
		}
	}
}

func TestReceiverTCPOutOfOrderBuffersAndDrains(t *testing.T) {
	_, pl := buildPipeline(t, Config{Receiver: TCPReceiver})
	var acks []*packet.Packet
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) }))
	rx := pl.DataIn(0)
	rx.Receive(packet.NewData(1, 0, 1024, 0))
	rx.Receive(packet.NewData(1, 2, 1024, 0)) // gap at 1
	rx.Receive(packet.NewData(1, 3, 1024, 0))
	if acks[1].Ack != 1 || acks[2].Ack != 1 {
		t.Fatalf("dup acks = %d,%d, want 1,1", acks[1].Ack, acks[2].Ack)
	}
	rx.Receive(packet.NewData(1, 1, 1024, 0)) // fill the hole
	if got := acks[3].Ack; got != 4 {
		t.Fatalf("ack after hole fill = %d, want 4 (buffered ooo drained)", got)
	}
	if pl.Counters().OutOfOrderRx != 2 {
		t.Fatalf("ooo counter = %d, want 2", pl.Counters().OutOfOrderRx)
	}
}

func TestReceiverTCPEchoesCE(t *testing.T) {
	_, pl := buildPipeline(t, Config{Receiver: TCPReceiver})
	var acks []*packet.Packet
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) }))
	d := packet.NewData(1, 0, 1024, 0)
	d.Flags |= packet.FlagCE
	pl.DataIn(0).Receive(d)
	clean := packet.NewData(1, 1, 1024, 0)
	pl.DataIn(0).Receive(clean)
	if !acks[0].Flags.Has(packet.FlagECNEcho) {
		t.Fatal("CE not echoed")
	}
	if acks[1].Flags.Has(packet.FlagECNEcho) {
		t.Fatal("ECE set on unmarked packet")
	}
}

func TestReceiverRoCENackAndGoBackN(t *testing.T) {
	_, pl := buildPipeline(t, Config{Receiver: RoCEReceiver})
	var out []*packet.Packet
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) { out = append(out, p) }))
	rx := pl.DataIn(0)
	rx.Receive(packet.NewData(1, 0, 1024, 0))
	rx.Receive(packet.NewData(1, 2, 1024, 0)) // gap
	rx.Receive(packet.NewData(1, 3, 1024, 0)) // still gap: no second NACK
	nacks := 0
	for _, p := range out {
		if p.Flags.Has(packet.FlagNACK) {
			nacks++
			if p.Ack != 1 {
				t.Fatalf("NACK ack = %d, want 1", p.Ack)
			}
		}
	}
	if nacks != 1 {
		t.Fatalf("nacks = %d, want 1 per gap episode", nacks)
	}
	// Retransmission of 1 resumes the flow; 2 and 3 were discarded.
	rx.Receive(packet.NewData(1, 1, 1024, 0))
	last := out[len(out)-1]
	if last.Ack != 2 {
		t.Fatalf("ack after retransmit = %d, want 2 (go-back-N discards ooo)", last.Ack)
	}
}

func TestReceiverRoCECNPPacing(t *testing.T) {
	eng, pl := buildPipeline(t, Config{Receiver: RoCEReceiver, CNPInterval: sim.Micros(50)})
	var cnps int
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) {
		if p.Type == packet.CNP {
			cnps++
		}
	}))
	rx := pl.DataIn(0)
	// 10 CE-marked packets within one CNP interval: only 1 CNP.
	for i := 0; i < 10; i++ {
		d := packet.NewData(1, uint32(i), 1024, 0)
		d.Flags |= packet.FlagCE
		rx.Receive(d)
	}
	if cnps != 1 {
		t.Fatalf("cnps = %d, want 1 (paced)", cnps)
	}
	// After the interval passes, the next CE produces another CNP.
	eng.Schedule(sim.Micros(60), func() {
		d := packet.NewData(1, 10, 1024, 0)
		d.Flags |= packet.FlagCE
		rx.Receive(d)
	})
	eng.RunAll()
	if cnps != 2 {
		t.Fatalf("cnps = %d, want 2", cnps)
	}
}

func TestModuleBConvertsAckToInfo(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	var infos []*packet.Packet
	pl.ConnectInfo(netem.NodeFunc(func(p *packet.Packet) { infos = append(infos, p) }))
	pl.BindFlow(7, 3)
	ack := &packet.Packet{
		Type: packet.ACK, Flow: 7, PSN: 5, Ack: 6,
		Flags: packet.FlagECNEcho, Size: packet.ControlSize, SentAt: 123,
	}
	pl.AckIn().Receive(ack)
	eng.RunAll()
	if len(infos) != 1 {
		t.Fatalf("infos = %d, want 1", len(infos))
	}
	info := infos[0]
	if info.Type != packet.INFO || info.Flow != 7 || info.Ack != 6 ||
		!info.Flags.Has(packet.FlagECNEcho) || info.Size != packet.ControlSize {
		t.Fatalf("info = %+v", info)
	}
	if info.Port != 3 {
		t.Fatalf("info port = %d, want bound port 3", info.Port)
	}
	if info.SentAt != 123 {
		t.Fatal("info lost the echoed timestamp")
	}
}

func TestModuleBConvertsCNP(t *testing.T) {
	eng, pl := buildPipeline(t, Config{})
	var infos []*packet.Packet
	pl.ConnectInfo(netem.NodeFunc(func(p *packet.Packet) { infos = append(infos, p) }))
	cnp := &packet.Packet{Type: packet.CNP, Flow: 2, Size: packet.ControlSize}
	pl.AckIn().Receive(cnp)
	eng.RunAll()
	if len(infos) != 1 || !infos[0].Flags.Has(packet.FlagCNPNotify) {
		t.Fatalf("CNP not encapsulated: %+v", infos)
	}
}

func TestResetFlowClearsReceiverState(t *testing.T) {
	_, pl := buildPipeline(t, Config{Receiver: TCPReceiver})
	var acks []*packet.Packet
	pl.ConnectAckPort(0, netem.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) }))
	rx := pl.DataIn(0)
	rx.Receive(packet.NewData(1, 0, 1024, 0))
	rx.Receive(packet.NewData(1, 1, 1024, 0))
	pl.ResetFlow(1)
	rx.Receive(packet.NewData(1, 0, 1024, 0)) // reused flow slot, new flow
	if last := acks[len(acks)-1]; last.Ack != 1 {
		t.Fatalf("ack after reset = %d, want 1", last.Ack)
	}
}

func TestPipelineThroughputAmplification(t *testing.T) {
	// End-to-end §3.3 check at model scale: drive all 12 ports with SCHE
	// for 100 us and verify aggregate DATA rate approaches 1.2 Tbps.
	eng, pl := buildPipeline(t, Config{QueueDepth: 1 << 14})
	var bytes uint64
	for port := 0; port < 12; port++ {
		pl.ConnectDataPort(port, netem.NodeFunc(func(p *packet.Packet) {
			bytes += uint64(packet.WireSize(p.Size))
		}))
		pl.BindFlow(packet.FlowID(port), port)
	}
	in := pl.ScheIn()
	// Feed each port exactly its DATA pps over 100 us.
	perPort := int(pl.Plan().DataPPSPerPort * 100e-6)
	for i := 0; i < perPort; i++ {
		for port := 0; port < 12; port++ {
			at := sim.Time(i) * sim.Time(sim.Micros(100)) / sim.Time(perPort)
			port := port
			ii := i
			eng.ScheduleAt(at, func() {
				in.Receive(sche(packet.FlowID(port), uint32(ii), port))
			})
		}
	}
	eng.Run(sim.Time(sim.Micros(100)))
	eng.RunAll()
	elapsed := eng.Now().Seconds()
	tbps := float64(bytes) * 8 / elapsed / 1e12
	if tbps < 1.1 || tbps > 1.25 {
		t.Fatalf("aggregate = %.3f Tbps, want ~1.2", tbps)
	}
	if pl.Counters().ScheDrops != 0 {
		t.Fatalf("paced feed overflowed queues: %d drops", pl.Counters().ScheDrops)
	}
}

func BenchmarkPipelineScheToData(b *testing.B) {
	eng := sim.NewEngine()
	plan, _ := NewPlan(1024, 100*sim.Gbps)
	pl, _ := NewPipeline(eng, Config{Plan: plan, QueueDepth: 1 << 12})
	pl.ConnectDataPort(0, netem.NodeFunc(func(p *packet.Packet) { p.Release() }))
	pl.BindFlow(1, 0)
	in := pl.ScheIn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Receive(sche(1, uint32(i), 0))
		if i%512 == 511 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

// BenchmarkPipelineFig6Scale drives the whole pipeline at its Figure 6
// shape: all 12 data ports bound and fed SCHE round-robin, DATA consumed
// (and released) at the ports. This is the steady-state switch inner loop.
func BenchmarkPipelineFig6Scale(b *testing.B) {
	eng := sim.NewEngine()
	plan, _ := NewPlan(1024, 100*sim.Gbps)
	pl, _ := NewPipeline(eng, Config{Plan: plan, QueueDepth: 1 << 12})
	drop := netem.NodeFunc(func(p *packet.Packet) { p.Release() })
	for port := 0; port < plan.DataPorts; port++ {
		pl.ConnectDataPort(port, drop)
		pl.BindFlow(packet.FlowID(port), port)
	}
	in := pl.ScheIn()
	psn := make([]uint32, plan.DataPorts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := i % plan.DataPorts
		in.Receive(sche(packet.FlowID(port), psn[port], port))
		psn[port]++
		if i%512 == 511 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

func TestResourcesMatchPaperScale(t *testing.T) {
	plan, err := NewPlan(1024, 100*sim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's program uses 58/960 SRAM and 3/288 TCAM over 4 stages;
	// our accounting for the default config must land in the same regime
	// and within budget.
	r := Resources(plan, DefaultQueueDepth, 65536)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.SRAMUsed < 10 || r.SRAMUsed > 200 {
		t.Fatalf("SRAM = %d blocks, want the paper's order (58)", r.SRAMUsed)
	}
	if r.TCAMUsed != 3 {
		t.Fatalf("TCAM = %d, want 3 (§6)", r.TCAMUsed)
	}
	if r.Stages != 4 {
		t.Fatalf("stages = %d, want 4 (§6)", r.Stages)
	}
}

func TestResourcesRejectOversized(t *testing.T) {
	plan, _ := NewPlan(1024, 100*sim.Gbps)
	r := Resources(plan, 1<<22, 1<<24) // absurd queue depth and flow count
	if err := r.Validate(); err == nil {
		t.Fatal("oversized configuration validated")
	}
}
