package tofino

import "marlin/internal/packet"

// scheMeta is the metadata a SCHE packet deposits for the DATA generator:
// "each egress port in the switch has a dedicated queue that stores
// metadata for the DATA packets to be generated, such as flow id and
// packet sequence numbers" (§4.2).
type scheMeta struct {
	flow   packet.FlowID
	psn    uint32
	flags  packet.Flags
	sentAt int64 // sender timestamp, carried into the DATA packet
	port   int   // intended egress port (for misdelivery accounting)
}

// regQueue models the register-array queue of §4.2: a fixed array with
// head, tail, and length registers. Hardware allows one simple register
// operation per packet, so there is no re-enqueue after dequeue and no
// resizing; overflow drops the SCHE instruction (a "false loss").
type regQueue struct {
	slots  []scheMeta
	head   int
	tail   int
	length int

	drops    uint64
	enqueues uint64
}

// DefaultQueueDepth is the register-array size per port. Tofino register
// arrays are SRAM-bounded; 2048 entries per port is comfortably within the
// paper's reported 58/960 SRAM budget.
const DefaultQueueDepth = 2048

func newRegQueue(depth int) *regQueue {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &regQueue{slots: make([]scheMeta, depth)}
}

// enqueue admits m, or counts a drop when the array is full.
func (q *regQueue) enqueue(m scheMeta) bool {
	if q.length == len(q.slots) {
		q.drops++
		return false
	}
	q.slots[q.tail] = m
	q.tail = (q.tail + 1) % len(q.slots)
	q.length++
	q.enqueues++
	return true
}

// dequeue pops the oldest metadata; ok is false when empty.
func (q *regQueue) dequeue() (m scheMeta, ok bool) {
	if q.length == 0 {
		return scheMeta{}, false
	}
	m = q.slots[q.head]
	q.head = (q.head + 1) % len(q.slots)
	q.length--
	return m, true
}

func (q *regQueue) len() int { return q.length }
