// Package fuzzer generates random-but-seeded Marlin test configurations,
// runs each one, and checks the results against global invariant oracles:
// packet conservation, pool-leak audits, byte-identical determinism across
// reruns and worker counts, wheel-vs-reference scheduler agreement, CC
// state-machine legality, and metamorphic relations (scaling all rates and
// times by k preserves dimensionless outputs; permuting flow IDs permutes
// per-flow outputs). A failing configuration is delta-debugged down to a
// minimal scenario script that reproduces the violation, suitable for
// checking into internal/scenario/testdata/regress/.
//
// Everything is a pure function of the campaign seed: the same seed
// produces the same configurations, the same verdicts, and byte-identical
// campaign output at any worker count.
package fuzzer

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"marlin/internal/controlplane"
	"marlin/internal/sim"
)

// Flow is one scripted finite flow.
type Flow struct {
	ID   int          `json:"id"`
	Tx   int          `json:"tx"`
	Rx   int          `json:"rx"`
	Size uint32       `json:"size"` // packets
	At   sim.Duration `json:"at"`
}

// Drop is one scripted loss burst: the flow's DATA packets with PSNs in
// [From, To] are dropped once on the path toward Rx.
type Drop struct {
	At   sim.Duration `json:"at"`
	Flow int          `json:"flow"`
	Rx   int          `json:"rx"`
	From uint32       `json:"from"`
	To   uint32       `json:"to"`
}

// Config is one generated test case. It is the unit the oracles check and
// the minimizer shrinks, and it renders losslessly to a scenario script.
type Config struct {
	Seed     uint64       `json:"seed"`
	Algo     string       `json:"algo"`
	Topology string       `json:"topology,omitempty"`
	Ports    int          `json:"ports"`
	ECNPkts  int          `json:"ecn,omitempty"`
	AQM      string       `json:"aqm,omitempty"`
	Fault    string       `json:"fault,omitempty"`
	Pattern  string       `json:"pattern,omitempty"`
	Shards   int          `json:"shards,omitempty"`
	INT      bool         `json:"int,omitempty"`
	Horizon  sim.Duration `json:"horizon"`
	Flows    []Flow       `json:"flows"`
	Drops    []Drop       `json:"drops,omitempty"`
}

// algos weights window algorithms heavier: their integer arithmetic is
// where most historical bugs lived, and they qualify for more oracles.
var algos = []string{"reno", "reno", "cubic", "dctcp", "dctcp", "dcqcn", "timely", "swift", "hpcc"}

// topoPorts maps each generated topology to its port (host) count; "" is
// the canonical single-switch network.
var topoPorts = map[string]int{
	"":              0, // chosen per-config
	"dumbbell":      4,
	"parkinglot:3":  4,
	"leafspine:2x2": 4,
	"fattree:4":     8,
}

var topologies = []string{"", "", "", "dumbbell", "dumbbell", "parkinglot:3", "leafspine:2x2", "leafspine:2x2", "fattree:4"}

var aqms = []string{
	"red:min=30000,max=90000,maxp=0.02",
	"pie:target=20us,tupdate=25us",
	"codel:target=50us,interval=1ms",
	"pi2:target=20us",
	"dualpi2:step=10us",
}

// faultLinks names a real link for each topology (fabric naming scheme).
var faultLinks = map[string][]string{
	"":              {"fwd1", "tx0"},
	"dumbbell":      {"left->right"},
	"parkinglot:3":  {"hop0->hop1"},
	"leafspine:2x2": {"leaf0->spine1"},
	"fattree:4":     {"edge0->agg0"},
}

// Generate derives configuration index i of a campaign. It is a pure
// function of (campaignSeed, i).
func Generate(campaignSeed uint64, i int) Config {
	rng := sim.DeriveRand(campaignSeed, uint64(i), "fuzz.config")
	cfg := Config{Seed: campaignSeed + uint64(i)*0x9e3779b97f4a7c15}

	cfg.Topology = topologies[rng.Intn(len(topologies))]
	if cfg.Topology == "" {
		cfg.Ports = 2 + rng.Intn(5) // 2..6
	} else {
		cfg.Ports = topoPorts[cfg.Topology]
	}

	cfg.Algo = algos[rng.Intn(len(algos))]
	if cfg.Algo == "hpcc" {
		cfg.INT = true
	}

	// Marking policy: drop-tail, step ECN, or an AQM discipline (the
	// latter two are mutually exclusive by Validate).
	switch rng.Intn(10) {
	case 0, 1, 2:
		cfg.ECNPkts = 16 + rng.Intn(2)*49 // 16 or 65
	case 3, 4, 5:
		cfg.AQM = aqms[rng.Intn(len(aqms))]
	}

	if rng.Intn(4) == 0 { // fault plan
		links := faultLinks[cfg.Topology]
		link := links[rng.Intn(len(links))]
		at := sim.Millisecond + sim.Duration(rng.Intn(3))*sim.Millisecond
		dur := sim.Micros(float64(100 + rng.Intn(9)*100))
		switch rng.Intn(4) {
		case 0:
			cfg.Fault = fmt.Sprintf("linkdown %s at %s for %s", link, at, dur)
		case 1:
			cfg.Fault = fmt.Sprintf("lossburst %s at %s for %s prob 0.2 seed %d", link, at, dur, rng.Intn(100))
		case 2:
			cfg.Fault = fmt.Sprintf("brownout %s at %s for %s frac 0.5", link, at, dur)
		default:
			cfg.Fault = fmt.Sprintf("nicstall at %s for %s", at, dur)
		}
	}

	if rng.Intn(5) == 0 { // traffic pattern
		victim := rng.Intn(cfg.Ports)
		switch rng.Intn(3) {
		case 0:
			cfg.Pattern = fmt.Sprintf("incast:period=2ms,fanin=%d,victim=%d,size=50", 2+rng.Intn(3), victim)
		case 1:
			cfg.Pattern = fmt.Sprintf("flood:peak=20G,victim=%d,period=2ms,duty=0.5", victim)
		default:
			cfg.Pattern = fmt.Sprintf("square:period=1ms,duty=0.3,peak=10G,base=1G,victim=%d", victim)
		}
	}

	if cfg.Topology != "" && rng.Intn(3) == 0 {
		cfg.Shards = 2 + rng.Intn(3)
	}

	// Flows: 1..4, distinct IDs, tx != rx, sizes that finish well inside
	// the horizon on a healthy stack.
	n := 1 + rng.Intn(4)
	var lastStart sim.Duration
	for f := 0; f < n; f++ {
		tx := rng.Intn(cfg.Ports)
		rx := rng.Intn(cfg.Ports)
		if rx == tx {
			rx = (tx + 1) % cfg.Ports
		}
		at := sim.Duration(rng.Intn(5)) * 100 * sim.Microsecond
		if at > lastStart {
			lastStart = at
		}
		cfg.Flows = append(cfg.Flows, Flow{
			ID: f, Tx: tx, Rx: rx,
			Size: uint32(50 + rng.Intn(8)*50),
			At:   at,
		})
	}

	// Scripted loss bursts on up to two flows, placed after the flow has
	// started and within its PSN space.
	for d := rng.Intn(3); d > 0; d-- {
		fl := cfg.Flows[rng.Intn(len(cfg.Flows))]
		if fl.Size < 20 {
			continue
		}
		from := uint32(5 + rng.Intn(int(fl.Size/2)))
		span := uint32(rng.Intn(8))
		cfg.Drops = append(cfg.Drops, Drop{
			At:   fl.At + sim.Micros(float64(10+rng.Intn(200))),
			Flow: fl.ID,
			Rx:   fl.Rx,
			From: from,
			To:   from + span,
		})
	}

	cfg.Horizon = cfg.horizonFor(lastStart)
	return cfg
}

// horizonFor picks a horizon with enough headroom that every finite flow
// completes on a healthy stack even through its scripted drops — fast
// recovery costs ~1 RTT per burst, and a generous multi-millisecond slack
// absorbs slow-start and queueing. A stack that needs one RTO per lost
// packet (the historical stall) blows through this budget, which is what
// lets the liveness oracle catch it.
func (c *Config) horizonFor(lastStart sim.Duration) sim.Duration {
	h := lastStart + 6*sim.Millisecond
	if c.Fault != "" || c.Pattern != "" {
		h += 6 * sim.Millisecond
	}
	return h
}

// Spec converts the config to a deployable control-plane spec.
func (c *Config) Spec() controlplane.Spec {
	ecn := c.ECNPkts
	if c.AQM != "" {
		ecn = 0
	}
	return controlplane.Spec{
		Algorithm:        c.Algo,
		Ports:            c.Ports,
		ECNThresholdPkts: ecn,
		AQM:              c.AQM,
		Topology:         c.Topology,
		Faults:           c.Fault,
		Pattern:          c.Pattern,
		Shards:           c.Shards,
		EnableINT:        c.INT,
		DCQCNTimeScale:   30, // short-horizon convention (see EXPERIMENTS.md)
		Seed:             c.Seed,
	}
}

// Validate reports whether the config deploys cleanly and its timeline is
// self-consistent. The minimizer uses it to discard nonsense candidates.
func (c *Config) Validate() error {
	spec := c.Spec()
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(c.Flows) == 0 && c.Pattern == "" {
		return fmt.Errorf("fuzzer: config drives no traffic")
	}
	seen := map[int]bool{}
	for _, f := range c.Flows {
		if seen[f.ID] {
			return fmt.Errorf("fuzzer: duplicate flow id %d", f.ID)
		}
		seen[f.ID] = true
		if f.Tx == f.Rx || f.Tx >= c.Ports || f.Rx >= c.Ports || f.Tx < 0 || f.Rx < 0 {
			return fmt.Errorf("fuzzer: flow %d has bad ports tx=%d rx=%d", f.ID, f.Tx, f.Rx)
		}
		if f.Size == 0 || f.At >= c.Horizon {
			return fmt.Errorf("fuzzer: flow %d is empty or starts past the horizon", f.ID)
		}
	}
	for _, d := range c.Drops {
		if !seen[d.Flow] || d.From > d.To {
			return fmt.Errorf("fuzzer: drop targets unknown flow %d or inverted range", d.Flow)
		}
	}
	return nil
}

// fmtDur renders a duration in the largest integer unit Go's duration
// syntax can parse back exactly. The generator and minimizer only produce
// microsecond-aligned times, so the ns fallback is just a safety net.
func fmtDur(d sim.Duration) string {
	switch {
	case d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/sim.Millisecond))
	case d%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", int64(d/sim.Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d/sim.Nanosecond))
	}
}

// Render emits the config as a scenario script plus machine-readable
// header lines. The script replays under `marlinctl test` and the
// scenario regression runner; the header lets the fuzzer re-run the
// oracle that originally failed.
func (c *Config) Render(oracle string) string {
	var b strings.Builder
	if oracle != "" {
		fmt.Fprintf(&b, "# fuzz: oracle=%s\n", oracle)
	}
	cj, _ := json.Marshal(c)
	fmt.Fprintf(&b, "# fuzz: config=%s\n", cj)
	fmt.Fprintf(&b, "set algo %s\n", c.Algo)
	if c.Topology != "" {
		fmt.Fprintf(&b, "set topology %s\n", c.Topology)
	}
	fmt.Fprintf(&b, "set ports %d\n", c.Ports)
	if c.ECNPkts > 0 && c.AQM == "" {
		fmt.Fprintf(&b, "set ecn %d\n", c.ECNPkts)
	}
	if c.AQM != "" {
		fmt.Fprintf(&b, "set aqm %s\n", c.AQM)
	}
	if c.Fault != "" {
		fmt.Fprintf(&b, "set fault %s\n", c.Fault)
	}
	if c.Pattern != "" {
		fmt.Fprintf(&b, "set pattern %s\n", c.Pattern)
	}
	if c.Shards > 0 {
		fmt.Fprintf(&b, "set shards %d\n", c.Shards)
	}
	if c.INT {
		fmt.Fprintf(&b, "set int on\n")
	}
	fmt.Fprintf(&b, "set dcqcnscale 30\n")
	fmt.Fprintf(&b, "set seed %d\n", c.Seed)
	// Timeline in time order (stable by flow then range for ties) so the
	// script reads chronologically.
	type tl struct {
		at   sim.Duration
		key  int
		text string
	}
	var lines []tl
	for _, f := range c.Flows {
		lines = append(lines, tl{f.At, f.ID, fmt.Sprintf("at %s start %d tx %d rx %d size %d", fmtDur(f.At), f.ID, f.Tx, f.Rx, f.Size)})
	}
	for _, d := range c.Drops {
		psn := fmt.Sprintf("%d..%d", d.From, d.To)
		if d.From == d.To {
			psn = fmt.Sprintf("%d", d.From)
		}
		lines = append(lines, tl{d.At, 1 << 20, fmt.Sprintf("at %s drop flow %d rx %d psn %s", fmtDur(d.At), d.Flow, d.Rx, psn)})
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].at != lines[j].at {
			return lines[i].at < lines[j].at
		}
		return lines[i].key < lines[j].key
	})
	for _, l := range lines {
		b.WriteString(l.text)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "run %s\n", fmtDur(c.Horizon))
	b.WriteString("expect false_losses == 0\n")
	b.WriteString("expect misroutes == 0\n")
	if c.Fault == "" && c.Pattern == "" && len(c.Flows) > 0 {
		fmt.Fprintf(&b, "expect completions == %d\n", len(c.Flows))
	}
	return b.String()
}

// ParseRendered recovers the Config and oracle name from a rendered
// script (the `# fuzz:` header lines).
func ParseRendered(text string) (Config, string, error) {
	var cfg Config
	oracle := ""
	found := false
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(line, "# fuzz: oracle="); ok {
			oracle = v
		}
		if v, ok := strings.CutPrefix(line, "# fuzz: config="); ok {
			if err := json.Unmarshal([]byte(v), &cfg); err != nil {
				return Config{}, "", fmt.Errorf("fuzzer: bad config header: %w", err)
			}
			found = true
		}
	}
	if !found {
		return Config{}, "", fmt.Errorf("fuzzer: no '# fuzz: config=' header")
	}
	return cfg, oracle, nil
}
