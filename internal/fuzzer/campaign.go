package fuzzer

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"marlin/internal/fleet"
)

// CampaignOptions configure a fuzzing campaign.
type CampaignOptions struct {
	// N is how many configurations to generate and check.
	N int
	// Seed derives every configuration; the same seed reproduces the
	// same campaign byte-for-byte at any worker count.
	Seed uint64
	// Workers sizes the fleet pool (<= 0 means GOMAXPROCS).
	Workers int
	// Minimize delta-debugs each violating config to a minimal repro.
	Minimize bool
	// ReproDir, when set, receives one rendered scenario file per
	// violating config (minimized when Minimize is set).
	ReproDir string
	// PoolAudit bounds how many quiet configs get the serial pool-leak
	// audit (0 = default 8; negative = none).
	PoolAudit int
	// Out receives the campaign report. Only simulation-derived values
	// are written — no wall-clock, no worker attribution — so output is
	// byte-identical for a given (N, Seed) at any parallelism.
	Out io.Writer
}

// CampaignResult summarises a campaign.
type CampaignResult struct {
	Configs    int
	Violations []Violation // all violations, campaign order
	Errors     int
	ReproFiles []string
}

// RunCampaign generates N seeded configs, checks them against every
// oracle on a fleet worker pool, serially audits the packet pool on a
// sample of quiet configs, and minimizes + renders any violations.
func RunCampaign(opts CampaignOptions) (*CampaignResult, error) {
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	if opts.N <= 0 {
		return nil, fmt.Errorf("fuzzer: campaign needs N > 0")
	}
	configs := make([]Config, opts.N)
	for i := range configs {
		configs[i] = Generate(opts.Seed, i)
	}

	// Phase 1: parallel oracle checks. Each job writes only its own
	// slot; fleet's OnResult hands results back in submission order, so
	// the report stays deterministic.
	type verdict struct {
		violations []Violation
		err        error
	}
	verdicts := make([]verdict, opts.N)
	jobs := make([]fleet.Job, opts.N)
	for i := range jobs {
		i := i
		jobs[i] = fleet.Job{
			ID: fmt.Sprintf("fuzz-%d-%d", opts.Seed, i),
			Run: func() (*fleet.Output, error) {
				vs, err := CheckAll(configs[i])
				verdicts[i] = verdict{vs, err}
				return &fleet.Output{Metrics: map[string]float64{"violations": float64(len(vs))}}, err
			},
		}
	}
	res := &CampaignResult{Configs: opts.N}
	onResult := func(i int, r fleet.JobResult) error {
		cfg := configs[i]
		topo := cfg.Topology
		if topo == "" {
			topo = "single"
		}
		head := fmt.Sprintf("cfg %04d seed=%d algo=%s topo=%s", i, cfg.Seed, cfg.Algo, topo)
		switch {
		case !r.OK():
			res.Errors++
			fmt.Fprintf(opts.Out, "%s ERROR %s\n", head, r.Err)
		case len(verdicts[i].violations) == 0:
			fmt.Fprintf(opts.Out, "%s ok\n", head)
		default:
			for _, v := range verdicts[i].violations {
				res.Violations = append(res.Violations, v)
				fmt.Fprintf(opts.Out, "%s VIOLATION %s\n", head, v)
			}
		}
		return nil
	}
	if _, err := fleet.Run(jobs, fleet.Options{Workers: opts.Workers, OnResult: onResult}); err != nil {
		return nil, err
	}

	// Phase 2: serial pool-leak audit. The live-packet counter is
	// process-global, so these runs must not overlap any other
	// simulation; they run here, after the fleet has drained.
	audit := opts.PoolAudit
	if audit == 0 {
		audit = 8
	}
	for i := 0; i < opts.N && audit > 0; i++ {
		if !configs[i].quietEligible() {
			continue
		}
		audit--
		v, err := CheckPoolLeak(configs[i])
		switch {
		case err != nil:
			res.Errors++
			fmt.Fprintf(opts.Out, "pool %04d ERROR %v\n", i, err)
		case v != nil:
			res.Violations = append(res.Violations, *v)
			fmt.Fprintf(opts.Out, "pool %04d VIOLATION %s\n", i, v)
		default:
			fmt.Fprintf(opts.Out, "pool %04d ok\n", i)
		}
	}

	// Phase 3: minimize and render repros for violating configs.
	for i := 0; i < opts.N; i++ {
		vs := verdicts[i].violations
		if len(vs) == 0 {
			continue
		}
		cfg, oracle := configs[i], vs[0].Oracle
		if opts.Minimize {
			cfg = Minimize(cfg, oracle)
		}
		script := cfg.Render(oracle)
		if opts.ReproDir != "" {
			name := filepath.Join(opts.ReproDir, fmt.Sprintf("fuzz-%d-%04d-%s.txt", opts.Seed, i, oracle))
			if err := os.WriteFile(name, []byte(script), 0o644); err != nil {
				return nil, fmt.Errorf("fuzzer: writing repro: %w", err)
			}
			res.ReproFiles = append(res.ReproFiles, name)
			fmt.Fprintf(opts.Out, "repro %04d %s -> %s\n", i, oracle, name)
		} else {
			fmt.Fprintf(opts.Out, "repro %04d %s:\n%s", i, oracle, script)
		}
	}

	bad := 0
	for i := range verdicts {
		if len(verdicts[i].violations) > 0 {
			bad++
		}
	}
	fmt.Fprintf(opts.Out, "%d configs checked: %d clean, %d with violations, %d errors (%d violations total)\n",
		opts.N, opts.N-bad-res.Errors, bad, res.Errors, len(res.Violations))
	return res, nil
}
