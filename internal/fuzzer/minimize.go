package fuzzer

import "marlin/internal/sim"

// Minimize shrinks a violating config while preserving the named oracle's
// failure: greedy delta-debugging to a fixpoint over the config's
// dimensions, largest hammer first (drop whole subsystems, then simplify
// the topology, then shrink the timeline). Every accepted candidate still
// fails the oracle, so the result is a true repro, typically a handful of
// scenario lines. Runs serially; budget is bounded by the config's small
// dimension count times the per-run cost.
func Minimize(cfg Config, oracle string) Config {
	fails := func(c Config) bool {
		if c.Validate() != nil {
			return false
		}
		v, err := CheckOne(c, oracle)
		return err == nil && v != nil
	}
	if !fails(cfg) {
		return cfg // not reproducible under CheckOne; nothing to shrink
	}
	try := func(c Config) bool {
		if fails(c) {
			cfg = c
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false

		// Whole-subsystem removals.
		if cfg.Pattern != "" {
			c := cfg
			c.Pattern = ""
			changed = try(c) || changed
		}
		if cfg.Fault != "" {
			c := cfg
			c.Fault = ""
			changed = try(c) || changed
		}
		if cfg.AQM != "" {
			c := cfg
			c.AQM = ""
			changed = try(c) || changed
		}
		if cfg.ECNPkts != 0 {
			c := cfg
			c.ECNPkts = 0
			changed = try(c) || changed
		}
		if cfg.Shards != 0 && oracle != OracleShardEquiv {
			c := cfg
			c.Shards = 0
			changed = try(c) || changed
		}

		// Topology ladder. Fault link names and port counts are
		// topology-specific, so only descend once the fault is gone and
		// remap out-of-range flows away.
		if cfg.Topology != "" && cfg.Fault == "" {
			for _, next := range topoLadder(cfg.Topology, oracle) {
				c := cfg
				c.Topology = next
				c.Ports = topoPorts[next]
				if next == "" {
					c.Ports = 4
					c.Shards = 0
				}
				c.Flows = clampFlows(cfg.Flows, c.Ports)
				c.Drops = clampDrops(cfg.Drops, c.Flows)
				if try(c) {
					changed = true
					break
				}
			}
		}

		// Timeline shrinking: fewer flows, fewer drops, narrower drop
		// ranges, smaller transfers, shorter horizon.
		for i := 0; i < len(cfg.Flows); i++ {
			c := cfg
			c.Flows = append(append([]Flow(nil), cfg.Flows[:i]...), cfg.Flows[i+1:]...)
			c.Drops = clampDrops(cfg.Drops, c.Flows)
			if try(c) {
				changed = true
				break
			}
		}
		for i := 0; i < len(cfg.Drops); i++ {
			c := cfg
			c.Drops = append(append([]Drop(nil), cfg.Drops[:i]...), cfg.Drops[i+1:]...)
			if try(c) {
				changed = true
				break
			}
		}
		for i, d := range cfg.Drops {
			if d.To > d.From {
				c := cfg
				nd := append([]Drop(nil), cfg.Drops...)
				nd[i].To = d.From + (d.To-d.From)/2
				c.Drops = nd
				changed = try(c) || changed
			}
		}
		for i, f := range cfg.Flows {
			if f.Size > 40 {
				c := cfg
				nf := append([]Flow(nil), cfg.Flows...)
				nf[i].Size = f.Size / 2
				c.Flows = nf
				c.Drops = clampDrops(cfg.Drops, c.Flows)
				changed = try(c) || changed
			}
		}
		// The liveness oracle is only sound while the generator's headroom
		// guarantee holds (quiet flows complete comfortably before the
		// horizon), so its repros keep the full headroom: shrinking the
		// horizon further would make "did not complete" fire for lack of
		// time rather than for the bug being reproduced.
		floor := 2 * sim.Millisecond
		if oracle == OracleLiveness {
			var latest sim.Duration
			for _, f := range cfg.Flows {
				if f.At > latest {
					latest = f.At
				}
			}
			floor = latest + 5*sim.Millisecond
		}
		if cfg.Horizon/2 >= floor {
			c := cfg
			c.Horizon = cfg.Horizon / 2
			changed = try(c) || changed
		}
	}
	return cfg
}

// topoLadder lists simpler topologies to try, in order. The shardequiv
// oracle needs a multi-switch fabric, so its ladder stops at dumbbell.
func topoLadder(from, oracle string) []string {
	ladder := []string{"dumbbell"}
	if from == "dumbbell" {
		ladder = nil
	}
	if oracle != OracleShardEquiv {
		ladder = append(ladder, "")
	}
	return ladder
}

// clampFlows keeps flows that fit the new port count.
func clampFlows(flows []Flow, ports int) []Flow {
	var out []Flow
	for _, f := range flows {
		if f.Tx < ports && f.Rx < ports && f.Tx != f.Rx {
			out = append(out, f)
		}
	}
	return out
}

// clampDrops keeps drops whose flow still exists, retargeted to the
// flow's (possibly updated) rx port and PSN space.
func clampDrops(drops []Drop, flows []Flow) []Drop {
	byID := map[int]Flow{}
	for _, f := range flows {
		byID[f.ID] = f
	}
	var out []Drop
	for _, d := range drops {
		f, ok := byID[d.Flow]
		if !ok || d.From >= f.Size {
			continue
		}
		d.Rx = f.Rx
		if d.To >= f.Size {
			d.To = f.Size - 1
		}
		out = append(out, d)
	}
	return out
}
