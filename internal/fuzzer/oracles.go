package fuzzer

import (
	"fmt"
	"sort"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Violation is one invariant failure found by an oracle.
type Violation struct {
	Oracle string
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Oracle, v.Detail) }

// Oracle names, in the order CheckAll evaluates them.
const (
	OracleConservation = "conservation"
	OracleSanity       = "sanity"
	OracleLiveness     = "liveness"
	OracleCCState      = "ccstate"
	OracleDeterminism  = "determinism"
	OracleShardEquiv   = "shardequiv"
	OracleRefEngine    = "refengine"
	OracleScale        = "scale"
	OraclePermute      = "permute"
	OraclePoolLeak     = "poolleak"
)

// quietEligible reports whether the config's traffic is fully scripted
// and finite: no fault plan, no open-loop pattern. Only then can an
// oracle demand that every flow completes and every queue drains.
func (c *Config) quietEligible() bool {
	return c.Fault == "" && c.Pattern == "" && len(c.Flows) > 0
}

// scaleEligible reports whether the time-dilation metamorphic relation is
// exact for this config. Integer window algorithms (reno, dctcp) under
// drop-tail or step ECN scale exactly; rate-based algorithms carry
// absolute timers (alpha/rate timers, pacing intervals) and AQM
// disciplines carry unscaled controller constants, so neither preserves
// the trajectory under dilation. Scripted drops are excluded too: their
// activation instants scale with k but tester-internal latencies do not,
// so whether a given PSN traverses the link before or after its drop
// script activates can resolve differently in the dilated run (first
// seen as a 7-vs-4 injected-drop mismatch in a 100-config campaign).
func (c *Config) scaleEligible() bool {
	return c.quietEligible() && (c.Algo == "reno" || c.Algo == "dctcp") &&
		c.AQM == "" && len(c.Drops) == 0
}

// permuteEligible reports whether relabeling flow IDs is an exact
// symmetry: canonical single-switch network (fabric ECMP hashes the flow
// ID into path choice) and no two flows sharing a tx or rx port (shared-
// port arbitration could tie-break on ID).
func (c *Config) permuteEligible() bool {
	if !c.quietEligible() || c.Topology != "" || len(c.Flows) < 2 {
		return false
	}
	tx, rx := map[int]bool{}, map[int]bool{}
	for _, f := range c.Flows {
		if tx[f.Tx] || rx[f.Rx] {
			return false
		}
		tx[f.Tx], rx[f.Rx] = true, true
	}
	return true
}

// CheckAll runs the config once plus every applicable twin run and
// returns all violations found. It is a pure function of cfg.
func CheckAll(cfg Config) ([]Violation, error) {
	base, err := execute(cfg, overrides{})
	if err != nil {
		return nil, err
	}
	var out []Violation
	add := func(v *Violation) {
		if v != nil {
			out = append(out, *v)
		}
	}
	add(checkConservation(cfg, base))
	add(checkSanity(cfg, base))
	add(checkLiveness(cfg, base))
	add(checkCCState(cfg.Algo, cfg.Seed))

	rerun, err := execute(cfg, overrides{})
	if err != nil {
		return nil, err
	}
	if rerun.digest() != base.digest() {
		out = append(out, Violation{OracleDeterminism, "rerun with identical config produced a different digest"})
	}

	if cfg.Topology != "" {
		if v, err := checkShardEquiv(cfg); err != nil {
			return out, err
		} else {
			add(v)
		}
	}
	if cfg.Seed%4 == 0 {
		add(checkRefEngine(cfg.Seed))
	}
	if cfg.scaleEligible() {
		if v, err := checkScale(cfg, base); err != nil {
			return out, err
		} else {
			add(v)
		}
	}
	if cfg.permuteEligible() {
		if v, err := checkPermute(cfg, base); err != nil {
			return out, err
		} else {
			add(v)
		}
	}
	return out, nil
}

// CheckOne reruns a single named oracle — the minimizer's inner loop and
// the regress replay gate.
func CheckOne(cfg Config, oracle string) (*Violation, error) {
	if oracle == OracleCCState {
		return checkCCState(cfg.Algo, cfg.Seed), nil
	}
	if oracle == OracleRefEngine {
		return checkRefEngine(cfg.Seed), nil
	}
	if oracle == OracleShardEquiv {
		if cfg.Topology == "" {
			return nil, nil
		}
		return checkShardEquiv(cfg)
	}
	if oracle == OraclePoolLeak {
		return CheckPoolLeak(cfg)
	}
	base, err := execute(cfg, overrides{})
	if err != nil {
		return nil, err
	}
	switch oracle {
	case OracleConservation:
		return checkConservation(cfg, base), nil
	case OracleSanity:
		return checkSanity(cfg, base), nil
	case OracleLiveness:
		return checkLiveness(cfg, base), nil
	case OracleDeterminism:
		rerun, err := execute(cfg, overrides{})
		if err != nil {
			return nil, err
		}
		if rerun.digest() != base.digest() {
			return &Violation{OracleDeterminism, "rerun with identical config produced a different digest"}, nil
		}
		return nil, nil
	case OracleScale:
		if !cfg.scaleEligible() {
			return nil, nil
		}
		return checkScale(cfg, base)
	case OraclePermute:
		if !cfg.permuteEligible() {
			return nil, nil
		}
		return checkPermute(cfg, base)
	}
	return nil, fmt.Errorf("fuzzer: unknown oracle %q", oracle)
}

// checkConservation verifies every egress queue's packet ledger: admitted
// packets either left or are still queued (enq == deq + len), and nothing
// was dequeued that was never admitted. On quiet configs it additionally
// demands full drainage — a packet still sitting in a queue millisecond
// after the last flow completed is a stuck packet, not backlog.
func checkConservation(cfg Config, r *runResult) *Violation {
	for _, q := range r.Queues {
		if q.Enq != q.Deq+uint64(q.Len) {
			return &Violation{OracleConservation,
				fmt.Sprintf("queue %s: enq %d != deq %d + len %d", q.Name, q.Enq, q.Deq, q.Len)}
		}
		if q.Deq > q.Enq {
			return &Violation{OracleConservation,
				fmt.Sprintf("queue %s: dequeued %d > enqueued %d", q.Name, q.Deq, q.Enq)}
		}
	}
	if cfg.quietEligible() && len(r.FCTs) == len(cfg.Flows) {
		for _, q := range r.Queues {
			if q.Len != 0 {
				return &Violation{OracleConservation,
					fmt.Sprintf("queue %s: %d packets stranded after all flows completed", q.Name, q.Len)}
			}
		}
	}
	return nil
}

// checkSanity enforces the §4.2 correctness floor and basic physics: no
// tester-internal false losses, no misroutes, no port delivering beyond
// its line rate, no marking more packets than were forwarded.
func checkSanity(cfg Config, r *runResult) *Violation {
	if r.Losses.FalseLosses != 0 {
		return &Violation{OracleSanity, fmt.Sprintf("%d false losses (tester-internal drops)", r.Losses.FalseLosses)}
	}
	if r.Losses.Misroutes != 0 {
		return &Violation{OracleSanity, fmt.Sprintf("%d misroutes", r.Losses.Misroutes)}
	}
	lineBits := uint64(float64(100*sim.Gbps) * cfg.Horizon.Seconds())
	for id, bits := range r.Goodput {
		if bits > lineBits {
			return &Violation{OracleSanity,
				fmt.Sprintf("flow %d goodput %d bits exceeds line-rate bound %d", id, bits, lineBits)}
		}
	}
	for _, sw := range r.Snap.Network {
		for i, ps := range sw.Ports {
			if ps.ECNMarks > ps.TxPackets+uint64(ps.QueuePkts) {
				return &Violation{OracleSanity,
					fmt.Sprintf("switch %s port %d: %d ECN marks > %d forwarded+queued", sw.Name, i, ps.ECNMarks, ps.TxPackets+uint64(ps.QueuePkts))}
			}
		}
	}
	return nil
}

// checkLiveness demands that on a quiet config — finite scripted flows,
// generous horizon, no faults or patterns — every flow completes. A CC
// stack that needs an RTO per lost packet instead of recovering in one
// round trip fails here.
func checkLiveness(cfg Config, r *runResult) *Violation {
	if !cfg.quietEligible() {
		return nil
	}
	done := map[packet.FlowID]bool{}
	for _, rec := range r.FCTs {
		done[rec.Flow] = true
	}
	for _, f := range cfg.Flows {
		if !done[packet.FlowID(f.ID)] {
			return &Violation{OracleLiveness,
				fmt.Sprintf("flow %d (size %d, started %s) did not complete within %s", f.ID, f.Size, f.At, cfg.Horizon)}
		}
	}
	if r.Snap.NIC.InfoDrops != 0 {
		return &Violation{OracleLiveness, fmt.Sprintf("%d INFO drops on a quiet config", r.Snap.NIC.InfoDrops)}
	}
	return nil
}

// checkShardEquiv runs the config at Shards=1 and Shards=3 and compares
// digests. Shards>=1 must be byte-identical for every worker count (the
// conservative parallel build's core guarantee); Shards=0 is the classic
// engine and may legitimately differ, so it is not part of this oracle.
func checkShardEquiv(cfg Config) (*Violation, error) {
	one, err := execute(cfg, overrides{haveShard: true, shards: 1})
	if err != nil {
		return nil, err
	}
	many, err := execute(cfg, overrides{haveShard: true, shards: 3})
	if err != nil {
		return nil, err
	}
	if one.digest() != many.digest() {
		return &Violation{OracleShardEquiv, "Shards=1 and Shards=3 digests differ"}, nil
	}
	return nil, nil
}

// checkScale runs the time-dilated twin (all network rates / k, all
// delays and timeline times * k, k=2) and compares the dimensionless
// outputs: completions, drops, marks, and delivered bits must be
// identical. FCTs are not dimensionless — the tester-internal data path
// (FPGA-side links, pipeline cycle costs) is part of the measured system
// and does not dilate — but each one must land in [base, k*base]: the
// network component stretches by exactly k and the tester component not
// at all, so leaving that bracket means time entered the computation some
// third way. Timeout-driven runs are skipped: the RTO floor and the
// microsecond-granular srtt do not dilate, so the twin legitimately
// diverges once a timer fires.
func checkScale(cfg Config, base *runResult) (*Violation, error) {
	const k = 2
	scaled, err := execute(cfg, overrides{scaleK: k})
	if err != nil {
		return nil, err
	}
	if base.Snap.NIC.Timeouts > 0 || scaled.Snap.NIC.Timeouts > 0 {
		return nil, nil
	}
	if len(scaled.FCTs) != len(base.FCTs) {
		return &Violation{OracleScale,
			fmt.Sprintf("completions changed under x%d dilation: %d vs %d", k, len(base.FCTs), len(scaled.FCTs))}, nil
	}
	if b, s := base.Losses.NetworkDrops, scaled.Losses.NetworkDrops; b != s {
		return &Violation{OracleScale, fmt.Sprintf("network drops changed under dilation: %d vs %d", b, s)}, nil
	}
	if b, s := base.Losses.InjectedDrops, scaled.Losses.InjectedDrops; b != s {
		return &Violation{OracleScale, fmt.Sprintf("injected drops changed under dilation: %d vs %d", b, s)}, nil
	}
	for id, bits := range base.Goodput {
		if scaled.Goodput[id] != bits {
			return &Violation{OracleScale,
				fmt.Sprintf("flow %d delivered bits changed under dilation: %d vs %d", id, bits, scaled.Goodput[id])}, nil
		}
	}
	var bm, sm uint64
	for _, sw := range base.Snap.Network {
		for _, ps := range sw.Ports {
			bm += ps.ECNMarks
		}
	}
	for _, sw := range scaled.Snap.Network {
		for _, ps := range sw.Ports {
			sm += ps.ECNMarks
		}
	}
	if bm != sm {
		return &Violation{OracleScale, fmt.Sprintf("ECN marks changed under dilation: %d vs %d", bm, sm)}, nil
	}
	for i := range base.FCTs {
		bf, sf := base.FCTs[i], scaled.FCTs[i]
		if sf.Flow != bf.Flow || sf.FCT < bf.FCT || sf.FCT > k*bf.FCT {
			return &Violation{OracleScale,
				fmt.Sprintf("FCT %d outside the x%d dilation bracket: flow %d %s vs flow %d %s (allowed [%s, %s])",
					i, k, bf.Flow, bf.FCT, sf.Flow, sf.FCT, bf.FCT, k*bf.FCT)}, nil
		}
	}
	return nil, nil
}

// checkPermute relabels flow IDs through a nontrivial permutation and
// checks that per-flow outputs follow the relabeling exactly: flow
// identity must be a pure name, never an implicit priority.
func checkPermute(cfg Config, base *runResult) (*Violation, error) {
	n := len(cfg.Flows)
	perm := make([]int, n)
	ids := make([]int, n)
	for i, f := range cfg.Flows {
		ids[i] = f.ID
	}
	sort.Ints(ids)
	// Rotate the sorted ID set by one: a derangement for n >= 2.
	rank := map[int]int{}
	for i, id := range ids {
		rank[id] = i
	}
	for i, f := range cfg.Flows {
		perm[i] = ids[(rank[f.ID]+1)%n]
	}
	twin, err := execute(cfg, overrides{permute: perm})
	if err != nil {
		return nil, err
	}
	for i, f := range cfg.Flows {
		if twin.Goodput[perm[i]] != base.Goodput[f.ID] {
			return &Violation{OraclePermute,
				fmt.Sprintf("flow %d (relabeled %d) goodput %d != base %d", f.ID, perm[i], twin.Goodput[perm[i]], base.Goodput[f.ID])}, nil
		}
	}
	baseFCT := map[packet.FlowID]sim.Duration{}
	for _, rec := range base.FCTs {
		baseFCT[rec.Flow] = rec.FCT
	}
	twinFCT := map[packet.FlowID]sim.Duration{}
	for _, rec := range twin.FCTs {
		twinFCT[rec.Flow] = rec.FCT
	}
	for i, f := range cfg.Flows {
		b, okB := baseFCT[packet.FlowID(f.ID)]
		tw, okT := twinFCT[packet.FlowID(perm[i])]
		if okB != okT || b != tw {
			return &Violation{OraclePermute,
				fmt.Sprintf("flow %d (relabeled %d) FCT %v/%v != base %v/%v", f.ID, perm[i], tw, okT, b, okB)}, nil
		}
	}
	return nil, nil
}

// CheckPoolLeak runs the config with packet-pool accounting enabled and a
// quiet settling tail, then audits the live-packet counter. The counter
// is process-global, so this must never run concurrently with any other
// simulation — the campaign runs it in a dedicated serial phase.
func CheckPoolLeak(cfg Config) (*Violation, error) {
	if !cfg.quietEligible() {
		return nil, nil
	}
	packet.SetAccounting(true)
	defer packet.SetAccounting(false)
	before := packet.Live()

	tail := cfg
	tail.Horizon += 5 * sim.Millisecond // settle: let every in-flight packet land
	res, err := execute(tail, overrides{})
	if err != nil {
		return nil, err
	}
	if len(res.FCTs) != len(cfg.Flows) {
		// Liveness problem, not a leak; that oracle reports it.
		return nil, nil
	}
	if live := packet.Live() - before; live != 0 {
		return &Violation{OraclePoolLeak, fmt.Sprintf("%d packets still live after completion and settling", live)}, nil
	}
	return nil, nil
}
