package fuzzer

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// checkCCState drives the named CC module directly through a seeded
// stream of legal fast-path events and checks every Output against the
// module contract: window modules never set rates and vice versa, windows
// stay within [MinCwnd, 65535], rates stay positive, retransmissions
// target an in-flight PSN, and timer requests stay within the provisioned
// per-flow timer set. This catches state machines that escape their legal
// envelope long before the damage becomes visible in end-to-end metrics.
func checkCCState(algo string, seed uint64) *Violation {
	a, err := cc.New(algo)
	if err != nil {
		return &Violation{OracleCCState, err.Error()}
	}
	params := cc.DefaultParams(100*sim.Gbps, 1024)
	var cust, slow cc.State
	a.InitFlow(&cust, &slow, &params)

	rng := sim.DeriveRand(seed, 0, "fuzz.ccstate")
	var (
		una, nxt uint32 = 0, 1
		cwnd     uint32 = params.InitCwnd
		rate            = params.LineRate
		now      sim.Time
		armed    [cc.NumTimers]bool
		out      cc.Output
	)
	const total = 400
	window := a.Mode() == cc.WindowMode

	apply := func(in *cc.Input, event string) *Violation {
		if window && out.SetRate {
			return &Violation{OracleCCState, fmt.Sprintf("%s: window module %s set a rate", event, algo)}
		}
		if !window && out.SetCwnd {
			return &Violation{OracleCCState, fmt.Sprintf("%s: rate module %s set a cwnd", event, algo)}
		}
		if out.SetCwnd {
			if out.Cwnd < params.MinCwnd || out.Cwnd > 65535 {
				return &Violation{OracleCCState, fmt.Sprintf("%s: cwnd %d outside [%d, 65535]", event, out.Cwnd, params.MinCwnd)}
			}
			cwnd = out.Cwnd
		}
		if out.SetRate {
			if out.Rate <= 0 {
				return &Violation{OracleCCState, fmt.Sprintf("%s: nonpositive rate %d", event, out.Rate)}
			}
			rate = out.Rate
		}
		if out.Rtx && (out.RtxPSN < una || out.RtxPSN >= nxt) {
			return &Violation{OracleCCState, fmt.Sprintf("%s: rtx PSN %d outside in-flight window [%d, %d)", event, out.RtxPSN, una, nxt)}
		}
		for i := 0; i < out.NumTimers; i++ {
			tr := out.Timers[i]
			if int(tr.ID) >= cc.NumTimers {
				return &Violation{OracleCCState, fmt.Sprintf("%s: armed unknown timer %d", event, tr.ID)}
			}
			if tr.After < 0 {
				return &Violation{OracleCCState, fmt.Sprintf("%s: timer %d armed %s in the past", event, tr.ID, tr.After)}
			}
			armed[tr.ID] = true
		}
		for i := 0; i < out.NumStops; i++ {
			id := out.StopTimers[i]
			if int(id) >= cc.NumTimers {
				return &Violation{OracleCCState, fmt.Sprintf("%s: stopped unknown timer %d", event, id)}
			}
			armed[id] = false
		}
		return nil
	}

	fire := func(in cc.Input, event string) *Violation {
		in.Una, in.Nxt, in.Cwnd, in.Rate = una, nxt, cwnd, rate
		in.MTU, in.Params, in.Cust, in.Slow = params.MTU, &params, &cust, &slow
		in.Timestamp = now
		out.Reset()
		a.OnEvent(&in, &out)
		if v := apply(&in, event); v != nil {
			return v
		}
		if out.SlowPath {
			slowOut := cc.Output{}
			a.OnSlowPath(out.SlowPathCode, &cust, &slow, &in, &slowOut)
			prev := out
			out = slowOut
			if v := apply(&in, event+"/slowpath"); v != nil {
				return v
			}
			out = prev
		}
		return nil
	}

	if v := fire(cc.Input{Type: cc.EvStart}, "start"); v != nil {
		return v
	}
	for op := 0; op < total; op++ {
		now = now.Add(sim.Duration(1 + rng.Intn(int(50*sim.Microsecond))))
		rtt := sim.Micros(float64(5 + rng.Intn(50)))
		switch r := rng.Intn(10); {
		case r < 5: // cumulative ACK progress
			adv := uint32(1 + rng.Intn(int(cwnd)+1))
			if nxt-una > 0 && adv > nxt-una {
				adv = nxt - una
			}
			ack := una + adv
			in := cc.Input{Type: cc.EvRx, Ack: ack, PSN: ack - 1, ProbedRTT: rtt}
			if rng.Intn(4) == 0 {
				in.Flags |= packet.FlagECNEcho
			}
			if v := fire(in, fmt.Sprintf("ack@op%d", op)); v != nil {
				return v
			}
			una = ack
			if nxt < una+1 {
				nxt = una + 1
			}
			// New data goes out up to the window.
			nxt += uint32(rng.Intn(int(cwnd) + 1))
		case r < 7: // duplicate ACK (possible loss signal)
			in := cc.Input{Type: cc.EvRx, Ack: una, PSN: una, ProbedRTT: rtt}
			if v := fire(in, fmt.Sprintf("dupack@op%d", op)); v != nil {
				return v
			}
		case r < 8: // NACK / CNP for rate stacks, ECE for window stacks
			in := cc.Input{Type: cc.EvRx, Ack: una, PSN: una, Flags: packet.FlagNACK | packet.FlagCNPNotify | packet.FlagECNEcho, ProbedRTT: rtt}
			if v := fire(in, fmt.Sprintf("nack@op%d", op)); v != nil {
				return v
			}
		case r < 9: // retransmission timeout
			if !armed[cc.TimerRTO] && window {
				continue
			}
			if v := fire(cc.Input{Type: cc.EvTimeout}, fmt.Sprintf("timeout@op%d", op)); v != nil {
				return v
			}
		default: // algorithm-owned periodic timer
			fired := false
			for id := 0; id < cc.NumTimers && !fired; id++ {
				if armed[id] && id != int(cc.TimerRTO) {
					if v := fire(cc.Input{Type: cc.EvTimer, TimerID: uint8(id)}, fmt.Sprintf("timer%d@op%d", id, op)); v != nil {
						return v
					}
					fired = true
				}
			}
		}
	}
	return nil
}
