package fuzzer

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegressOracleReplay replays the checked-in repro corpus through the
// oracle each file names in its "# fuzz: oracle=" header. The corpus
// holds minimized configs that once violated that oracle; on fixed code
// the oracle must stay quiet. internal/scenario replays the same files as
// plain scenarios, checking their expect lines.
func TestRegressOracleReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "regress", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regress scenarios found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			cfg, oracle, err := ParseRendered(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if oracle == "" {
				t.Fatal("repro carries no oracle header")
			}
			v, err := CheckOne(cfg, oracle)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if v != nil {
				t.Fatalf("regressed: %s", v)
			}
		})
	}
}
