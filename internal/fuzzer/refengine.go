package fuzzer

import (
	"fmt"

	"marlin/internal/sim"
)

// checkRefEngine drives the production timer-wheel engine and the
// reference binary-heap engine through an identical seeded stream of
// schedule/cancel/run operations — including same-timestamp events and
// children scheduled from inside handlers — and demands bit-identical
// firing orders, clocks, and pending counts. It is the fuzzer's sampled
// re-verification of the determinism contract the scheduler swap relies
// on, run against op streams the fixed differential-test seeds never
// visited.
func checkRefEngine(seed uint64) *Violation {
	rng := sim.NewRand(seed)
	wheel := sim.NewEngine()
	ref := sim.NewRefEngine()

	type traceEntry struct {
		id int
		at sim.Time
	}
	var wTrace, rTrace []traceEntry
	type pair struct {
		w sim.Handle
		r sim.RefHandle
	}
	var handles []pair
	nextID := 0

	// splitmix hashes an op index so both engines derive identical
	// decisions without sharing an RNG cursor.
	splitmix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	// deltaFor draws schedule delays from the spans the models use:
	// same-timestamp, sub-slot, intra-window, and overflow-horizon.
	deltaFor := func(r uint64) sim.Duration {
		switch r % 5 {
		case 0:
			return 0
		case 1:
			return sim.Duration(r % 8192)
		case 2:
			return sim.Duration(r % uint64(10*sim.Microsecond))
		case 3:
			return sim.Duration(r % uint64(2*sim.Millisecond))
		default:
			return sim.Duration(r % uint64(300*sim.Millisecond))
		}
	}

	schedule := func(id int, d sim.Duration) {
		w := wheel.Schedule(d, func() {
			wTrace = append(wTrace, traceEntry{id, wheel.Now()})
			if id%3 == 0 {
				cid := -id - 1
				wheel.Schedule(deltaFor(splitmix(uint64(id))), func() {
					wTrace = append(wTrace, traceEntry{cid, wheel.Now()})
				})
			}
		})
		r := ref.Schedule(d, func() {
			rTrace = append(rTrace, traceEntry{id, ref.Now()})
			if id%3 == 0 {
				cid := -id - 1
				ref.Schedule(deltaFor(splitmix(uint64(id))), func() {
					rTrace = append(rTrace, traceEntry{cid, ref.Now()})
				})
			}
		})
		handles = append(handles, pair{w, r})
	}

	const ops = 300
	for op := 0; op < ops; op++ {
		r := rng.Uint64()
		switch {
		case r%10 < 6:
			schedule(nextID, deltaFor(splitmix(r)))
			nextID++
		case r%10 < 8:
			if len(handles) == 0 {
				continue
			}
			h := handles[int(r/16)%len(handles)]
			if cw, cr := h.w.Cancel(), h.r.Cancel(); cw != cr {
				return &Violation{OracleRefEngine, fmt.Sprintf("op %d: Cancel disagreed: wheel=%v heap=%v", op, cw, cr)}
			}
		default:
			horizon := wheel.Now().Add(deltaFor(splitmix(r ^ 0xabcd)))
			if nw, nr := wheel.Run(horizon), ref.Run(horizon); nw != nr {
				return &Violation{OracleRefEngine, fmt.Sprintf("op %d: Run executed wheel=%d heap=%d", op, nw, nr)}
			}
			if wheel.Now() != ref.Now() {
				return &Violation{OracleRefEngine, fmt.Sprintf("op %d: clocks diverged wheel=%v heap=%v", op, wheel.Now(), ref.Now())}
			}
		}
		if wheel.Pending() != ref.Pending() {
			return &Violation{OracleRefEngine, fmt.Sprintf("op %d: Pending wheel=%d heap=%d", op, wheel.Pending(), ref.Pending())}
		}
	}
	if nw, nr := wheel.RunAll(), ref.RunAll(); nw != nr || wheel.Now() != ref.Now() || wheel.Executed() != ref.Executed() {
		return &Violation{OracleRefEngine,
			fmt.Sprintf("drain mismatch: executed wheel=%d heap=%d, now wheel=%v heap=%v", wheel.Executed(), ref.Executed(), wheel.Now(), ref.Now())}
	}
	if len(wTrace) != len(rTrace) {
		return &Violation{OracleRefEngine, fmt.Sprintf("trace lengths wheel=%d heap=%d", len(wTrace), len(rTrace))}
	}
	for i := range wTrace {
		if wTrace[i] != rTrace[i] {
			return &Violation{OracleRefEngine, fmt.Sprintf("firing %d diverged: wheel=%+v heap=%+v", i, wTrace[i], rTrace[i])}
		}
	}
	return nil
}
