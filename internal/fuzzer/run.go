package fuzzer

import (
	"encoding/json"
	"fmt"
	"sort"

	"marlin/internal/controlplane"
	"marlin/internal/core"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// queueBalance is one egress queue's conservation ledger, read while the
// tester is still live (the snapshot API exposes depth but not the
// enqueue/dequeue counters this check needs).
type queueBalance struct {
	Name string
	Enq  uint64
	Deq  uint64
	Len  int
	Drop uint64
}

// runResult is everything the oracles inspect from one execution.
type runResult struct {
	Snap    controlplane.Snapshot
	Losses  controlplane.LossReport
	FCTs    []measure.FCTRecord
	Goodput map[int]uint64 // flow ID -> delivered bits
	Queues  []queueBalance
}

// overrides tweak one execution relative to its Config for the twin runs
// the differential oracles need.
type overrides struct {
	shards    int   // replaces cfg.Shards when >= 0
	haveShard bool  // shards field is meaningful
	scaleK    int   // time-dilation factor (0/1 = none)
	permute   []int // flow-ID relabeling: new ID of cfg.Flows[i]
}

// execute deploys the config and runs it to its horizon, returning the
// oracle-visible result. It must stay a pure function of (cfg, ov): the
// determinism oracle replays it verbatim and compares digests.
func execute(cfg Config, ov overrides) (*runResult, error) {
	spec := cfg.Spec()
	if ov.haveShard {
		spec.Shards = ov.shards
	}
	k := sim.Duration(1)
	if ov.scaleK > 1 {
		k = sim.Duration(ov.scaleK)
		// Dilate time: halve every rate, stretch every delay. The
		// packet-level trajectory must be a pure homothety of the base
		// run, so dimensionless outputs are preserved exactly.
		spec.PortRate = 100 * sim.Gbps / sim.Rate(ov.scaleK)
		spec.LinkDelay = 2 * sim.Microsecond * k
	}
	flowID := func(i int) int {
		if ov.permute != nil {
			return ov.permute[i]
		}
		return cfg.Flows[i].ID
	}

	eng := sim.NewEngine()
	tr, err := spec.Deploy(eng)
	if err != nil {
		return nil, err
	}
	for i, f := range cfg.Flows {
		f, id := f, flowID(i)
		eng.ScheduleAt(sim.Time(f.At*k), func() {
			if err := tr.StartFlow(packet.FlowID(id), f.Tx, f.Rx, f.Size); err != nil {
				panic(fmt.Sprintf("fuzzer: start flow %d: %v", id, err))
			}
		})
	}
	idOf := map[int]int{}
	for i, f := range cfg.Flows {
		idOf[f.ID] = flowID(i)
	}
	for _, d := range cfg.Drops {
		d := d
		id := idOf[d.Flow]
		eng.ScheduleAt(sim.Time(d.At*k), func() {
			tr.ForwardLink(d.Rx).AddHook(netem.NewScript().DropRange(packet.FlowID(id), d.From, d.To).Hook)
		})
	}
	tr.Run(sim.Time(cfg.Horizon * k))

	res := &runResult{
		Snap:    controlplane.ReadRegisters(tr),
		Losses:  controlplane.ReadLosses(tr),
		FCTs:    append([]measure.FCTRecord(nil), tr.FCTs.Records()...),
		Goodput: map[int]uint64{},
	}
	for i := range cfg.Flows {
		id := flowID(i)
		res.Goodput[id] = tr.GoodputBits(packet.FlowID(id))
	}
	res.Queues = collectQueues(tr)
	return res, nil
}

// collectQueues walks every egress queue the tester owns — switch ports,
// TX links, fabric host uplinks, and the FPGA-facing SCHE/INFO links —
// and reads its conservation ledger.
func collectQueues(tr *core.Tester) []queueBalance {
	var out []queueBalance
	add := func(name string, q *netem.Queue) {
		st := q.Stats()
		out = append(out, queueBalance{Name: name, Enq: st.EnqPackets, Deq: st.DeqPackets, Len: q.Len(), Drop: st.Drops})
	}
	for _, sw := range tr.Switches() {
		for i := 0; i < sw.Ports(); i++ {
			add(fmt.Sprintf("%s.port%d", sw.Name(), i), sw.Port(i).Queue())
		}
	}
	for i := 0; i < tr.Plan().DataPorts; i++ {
		add(fmt.Sprintf("tx%d", i), tr.TxLink(i).Queue())
		if tr.Fab != nil {
			add(fmt.Sprintf("uplink%d", i), tr.Fab.HostUplink(i).Queue())
		}
	}
	if l := tr.ScheLink(); l != nil {
		add("sche", l.Queue())
	}
	if l := tr.InfoLink(); l != nil {
		add("info", l.Queue())
	}
	return out
}

// digest serializes the outputs two runs must agree on byte-for-byte. It
// deliberately contains no wall-clock or pointer-derived values.
func (r *runResult) digest() string {
	flows := make([]int, 0, len(r.Goodput))
	for id := range r.Goodput {
		flows = append(flows, id)
	}
	sort.Ints(flows)
	type fg struct {
		Flow int
		Bits uint64
	}
	gp := make([]fg, 0, len(flows))
	for _, id := range flows {
		gp = append(gp, fg{id, r.Goodput[id]})
	}
	b, err := json.Marshal(struct {
		Snap    controlplane.Snapshot
		Losses  controlplane.LossReport
		FCTs    []measure.FCTRecord
		Goodput []fg
	}{r.Snap, r.Losses, r.FCTs, gp})
	if err != nil {
		panic(err)
	}
	return string(b)
}
