package fuzzer

import (
	"strings"
	"testing"

	"marlin/internal/cc"
	"marlin/internal/sim"
)

// stallConfig is a config whose scripted loss burst a healthy stack
// recovers from in a round trip or two, but which the historical RTO
// stall (one retransmission hole per timeout, stateOpen after every RTO)
// cannot finish before the horizon. The burst covers the tail of the
// flow, so no later arrivals generate dup ACKs and recovery must go
// through the timeout path — the exact path the stall breaks.
func stallConfig() Config {
	return Config{
		Seed:    99,
		Algo:    "reno",
		Ports:   2,
		Horizon: 6 * sim.Millisecond,
		Flows:   []Flow{{ID: 0, Tx: 0, Rx: 1, Size: 30, At: 0}},
		Drops:   []Drop{{At: 0, Flow: 0, Rx: 1, From: 14, To: 29}},
	}
}

// TestLivenessCatchesRTOStall reintroduces the PR 5 RTO-stall bug behind
// its test hook and proves the campaign's liveness oracle detects it: the
// mutated stack needs one RTO per lost packet, blowing the generator's
// completion headroom, while the fixed stack sails through.
func TestLivenessCatchesRTOStall(t *testing.T) {
	cfg := stallConfig()

	if v, err := CheckOne(cfg, OracleLiveness); err != nil {
		t.Fatal(err)
	} else if v != nil {
		t.Fatalf("fixed stack violates liveness: %s", v)
	}

	cc.SetLegacyRTOStall(true)
	defer cc.SetLegacyRTOStall(false)
	v, err := CheckOne(cfg, OracleLiveness)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("liveness oracle missed the reintroduced RTO stall")
	}
	if v.Oracle != OracleLiveness {
		t.Fatalf("wrong oracle fired: %s", v)
	}
}

// TestMinimizerShrinksRTOStallRepro runs the delta-debugger against the
// mutated stack and checks the repro it produces is minimal: a scenario
// of at most 10 script lines that still trips the oracle, and that parses
// back to the same config.
func TestMinimizerShrinksRTOStallRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many minimization candidates")
	}
	cc.SetLegacyRTOStall(true)
	defer cc.SetLegacyRTOStall(false)

	// Start from a generated campaign config and graft in a tail-loss
	// burst on its first flow — the shape that forces recovery through
	// the RTO path, where the stall lives. The minimizer then has real
	// work: extra flows, scripted drops, and timeline noise to strip.
	cfg := Generate(21, 0)
	cfg.Fault, cfg.Pattern = "", ""
	if len(cfg.Flows) == 0 {
		t.Fatal("generated config has no flows")
	}
	f := &cfg.Flows[0]
	if f.Size < 48 {
		f.Size = 96
	}
	// One RTO per hole under the stall: 32 holes x >= 500us RTO floor
	// overruns any generated horizon; proper recovery repairs them in a
	// couple of RTOs.
	cfg.Drops = append(cfg.Drops, Drop{At: f.At, Flow: f.ID, Rx: f.Rx, From: f.Size - 32, To: f.Size - 1})

	v, err := CheckOne(cfg, OracleLiveness)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatalf("stall not detected on enriched config:\n%s", cfg.Render(""))
	}

	min := Minimize(cfg, OracleLiveness)
	if v, err := CheckOne(min, OracleLiveness); err != nil || v == nil {
		t.Fatalf("minimized config no longer reproduces (v=%v err=%v)", v, err)
	}
	script := min.Render(OracleLiveness)
	lines := 0
	for _, l := range strings.Split(script, "\n") {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines > 10 {
		t.Fatalf("minimized repro is %d lines, want <= 10:\n%s", lines, script)
	}
	if len(min.Flows) != 1 || len(min.Drops) > 1 || min.Pattern != "" || min.Fault != "" || min.AQM != "" {
		t.Fatalf("minimizer left slack: %+v", min)
	}
}

// TestConservationCatchesImbalance feeds the conservation oracle a
// doctored ledger for each way a queue can break its balance.
func TestConservationCatchesImbalance(t *testing.T) {
	cfg := stallConfig()
	cases := []struct {
		name string
		q    queueBalance
	}{
		{"lost packet", queueBalance{Name: "fwd0", Enq: 10, Deq: 8, Len: 1}},
		{"conjured packet", queueBalance{Name: "fwd0", Enq: 5, Deq: 7, Len: 0}},
	}
	for _, tc := range cases {
		r := &runResult{Queues: []queueBalance{{Name: "ok", Enq: 4, Deq: 4}, tc.q}}
		if v := checkConservation(cfg, r); v == nil {
			t.Errorf("%s: conservation oracle missed %+v", tc.name, tc.q)
		}
	}
	clean := &runResult{Queues: []queueBalance{{Name: "fwd0", Enq: 10, Deq: 9, Len: 1}}}
	if v := checkConservation(Config{Fault: "x"}, clean); v != nil {
		t.Errorf("false positive on balanced queue: %s", v)
	}
}

// TestSanityCatchesDoctoredCounters proves the sanity oracle fires on
// each §4.2 correctness-floor breach.
func TestSanityCatchesDoctoredCounters(t *testing.T) {
	cfg := stallConfig()
	r := &runResult{Goodput: map[int]uint64{}}
	r.Losses.FalseLosses = 3
	if v := checkSanity(cfg, r); v == nil || !strings.Contains(v.Detail, "false losses") {
		t.Errorf("missed false losses: %v", v)
	}
	r = &runResult{Goodput: map[int]uint64{}}
	r.Losses.Misroutes = 1
	if v := checkSanity(cfg, r); v == nil || !strings.Contains(v.Detail, "misroutes") {
		t.Errorf("missed misroutes: %v", v)
	}
	r = &runResult{Goodput: map[int]uint64{0: 1 << 62}}
	if v := checkSanity(cfg, r); v == nil || !strings.Contains(v.Detail, "line-rate") {
		t.Errorf("missed superluminal goodput: %v", v)
	}
}

// TestCCStateOracleCleanOnAllAlgorithms drives every registered module
// through the seeded legal event stream; the oracle must stay quiet on
// the shipped implementations.
func TestCCStateOracleCleanOnAllAlgorithms(t *testing.T) {
	for _, algo := range cc.Names() {
		for seed := uint64(0); seed < 3; seed++ {
			if v := checkCCState(algo, seed); v != nil {
				t.Errorf("%s seed %d: %s", algo, seed, v)
			}
		}
	}
}

// TestRefEngineOracleClean samples the scheduler differential across
// seeds the fixed corpus in internal/sim never used.
func TestRefEngineOracleClean(t *testing.T) {
	for seed := uint64(1000); seed < 1010; seed++ {
		if v := checkRefEngine(seed); v != nil {
			t.Fatalf("seed %d: %s", seed, v)
		}
	}
}
