package fuzzer

import (
	"bytes"
	"strings"
	"testing"

	"marlin/internal/scenario"
	"marlin/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Generate(42, i), Generate(42, i)
		if a.Render("") != b.Render("") {
			t.Fatalf("config %d not deterministic", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v\n%s", i, err, a.Render(""))
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		cfg := Generate(7, i)
		text := cfg.Render(OracleLiveness)
		back, oracle, err := ParseRendered(text)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if oracle != OracleLiveness {
			t.Fatalf("config %d: oracle %q", i, oracle)
		}
		if back.Render(OracleLiveness) != text {
			t.Fatalf("config %d: render not a fixpoint:\n%s\nvs\n%s", i, text, back.Render(OracleLiveness))
		}
		// The rendered script must also be a valid scenario program.
		if _, err := scenario.Parse(text); err != nil {
			t.Fatalf("config %d renders an unparseable scenario: %v\n%s", i, err, text)
		}
	}
}

func TestCheckAllCleanOnSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run oracle checks")
	}
	for i := 0; i < 6; i++ {
		cfg := Generate(1, i)
		vs, err := CheckAll(cfg)
		if err != nil {
			t.Fatalf("config %d errored: %v\n%s", i, err, cfg.Render(""))
		}
		for _, v := range vs {
			t.Errorf("config %d: %s\n%s", i, v, cfg.Render(""))
		}
	}
}

func TestCampaignOutputDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the campaign twice")
	}
	run := func(workers int) string {
		var b bytes.Buffer
		if _, err := RunCampaign(CampaignOptions{N: 4, Seed: 3, Workers: workers, PoolAudit: 2, Out: &b}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	one, four := run(1), run(4)
	if one != four {
		t.Fatalf("campaign output differs between -j 1 and -j 4:\n--- j1\n%s--- j4\n%s", one, four)
	}
	if !strings.Contains(one, "4 configs checked") {
		t.Fatalf("missing tally:\n%s", one)
	}
}

func TestPoolLeakAuditClean(t *testing.T) {
	for i := 0; i < 12; i++ {
		cfg := Generate(5, i)
		if !cfg.quietEligible() {
			continue
		}
		v, err := CheckPoolLeak(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if v != nil {
			t.Fatalf("config %d: %s\n%s", i, v, cfg.Render(""))
		}
		return // one clean audit is enough; the campaign samples more
	}
	t.Skip("no quiet config in the first 12")
}

func TestHorizonHeadroom(t *testing.T) {
	// The liveness oracle is only as good as the generator's headroom
	// guarantee: a quiet config's flows must complete comfortably before
	// the horizon so a completion miss always means a stack bug.
	for i := 0; i < 30; i++ {
		cfg := Generate(11, i)
		if !cfg.quietEligible() {
			continue
		}
		var latest sim.Duration
		for _, f := range cfg.Flows {
			if f.At > latest {
				latest = f.At
			}
		}
		if cfg.Horizon < latest+5*sim.Millisecond {
			t.Fatalf("config %d horizon %s leaves < 5ms after last start %s", i, cfg.Horizon, latest)
		}
	}
}
