package sim

import "testing"

// Tests specific to the timer-wheel implementation details: Pending
// accounting under cancellation, handle generation safety across event
// recycling, the closure-free ScheduleArg path, and window/overflow
// boundary crossings.

// Regression test: Pending must not count cancelled-but-unreaped events.
// The historical heap scheduler reported len(queue) and so over-counted
// until the cancelled entry happened to reach the top.
func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	h1 := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	h3 := e.Schedule(30*Millisecond, func() {}) // lives in the overflow heap
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending after 3 schedules = %d, want 3", got)
	}
	h1.Cancel()
	h3.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after cancelling 2 of 3 = %d, want 1", got)
	}
	h1.Cancel() // double-cancel must not double-decrement
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", got)
	}
	if n := e.RunAll(); n != 1 {
		t.Fatalf("RunAll executed %d events, want 1", n)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// Handles carry a generation so a stale handle cannot cancel an unrelated
// event that recycled the same pooled struct.
func TestHandleGenerationSafety(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(5, func() {})
	e.RunAll()
	if h.Cancel() {
		t.Fatal("Cancel succeeded on an already-fired event")
	}
	// The fired event's struct is now on the free list; the next schedule
	// recycles it under a bumped generation.
	fired := false
	e.Schedule(5, func() { fired = true })
	if h.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var got []int
	record := ArgFunc(func(arg any) { got = append(got, *arg.(*int)) })
	vals := []int{3, 1, 2}
	e.ScheduleArgAt(30, record, &vals[0])
	e.ScheduleArgAt(10, record, &vals[1])
	h := e.ScheduleArg(20, record, &vals[2])
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	if !h.Cancel() {
		t.Fatal("Cancel of pending arg event returned false")
	}
	e.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("arg events fired %v, want [1 3]", got)
	}
}

// Events beyond the wheel window land in the overflow heap and must still
// fire in timestamp order as the window slides over them.
func TestOverflowOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	at := []Time{
		0,
		Time(8191),                // same slot as 0
		Time(40 * Microsecond),    // beyond the initial ~33.6µs window
		Time(100 * Millisecond),   // deep overflow
		Time(100*Millisecond + 1), // adjacent ps in the same slot
		Time(3 * Time(Second)),    // several window jumps away
	}
	want := []int{0, 1, 2, 3, 4, 5}
	for i, ts := range at {
		i := i
		e.ScheduleAt(ts, func() { order = append(order, i) })
	}
	if n := e.RunAll(); n != uint64(len(at)) {
		t.Fatalf("RunAll executed %d, want %d", n, len(at))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
	if e.Now() != at[len(at)-1] {
		t.Fatalf("Now = %v, want %v", e.Now(), at[len(at)-1])
	}
}

// An empty wheel with only far-future work must jump the window directly to
// the overflow head rather than scanning empty slots.
func TestWindowJump(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleAt(Time(7*Time(Second)), func() { fired = true })
	e.RunAll()
	if !fired || e.Now() != Time(7*Time(Second)) {
		t.Fatalf("window jump failed: fired=%v now=%v", fired, e.Now())
	}
}

// A cancelled far-future event still pins the horizon semantics: Run(until)
// leaves now at until while anything — even a cancelled event — is queued
// beyond the horizon, exactly as the heap scheduler behaved.
func TestCancelledEventKeepsHorizon(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(50*Millisecond, func() {})
	h.Cancel()
	if n := e.Run(Time(Millisecond)); n != 0 {
		t.Fatalf("Run executed %d, want 0", n)
	}
	if e.Now() != Time(Millisecond) {
		t.Fatalf("Now = %v, want %v", e.Now(), Time(Millisecond))
	}
	if n := e.RunAll(); n != 0 {
		t.Fatalf("RunAll executed %d, want 0", n)
	}
}
