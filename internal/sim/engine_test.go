package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAt(30, func() { order = append(order, 3) })
	e.ScheduleAt(10, func() { order = append(order, 1) })
	e.ScheduleAt(20, func() { order = append(order, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestEngineScheduleInsideEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.ScheduleAt(10, func() {
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
		e.Schedule(0, func() { fired = append(fired, e.Now()) })
	})
	e.RunAll()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(100, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(50, func() {})
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAt(10, func() { ran++ })
	e.ScheduleAt(20, func() { ran++ })
	e.ScheduleAt(30, func() { ran++ })
	n := e.Run(20)
	if n != 2 || ran != 2 {
		t.Fatalf("ran %d events before horizon, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want horizon 20", e.Now())
	}
	e.RunAll()
	if ran != 3 {
		t.Fatalf("remaining event did not run")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.ScheduleAt(10, func() { ran = true })
	if !h.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAt(10, func() { ran++; e.Stop() })
	e.ScheduleAt(20, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("Stop did not halt the run: ran = %d", ran)
	}
	e.RunAll()
	if ran != 2 {
		t.Fatalf("run did not resume after Stop: ran = %d", ran)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAt(10, func() { ran++ })
	e.ScheduleAt(20, func() { ran++ })
	if !e.Step() || ran != 1 || e.Now() != 10 {
		t.Fatalf("first Step: ran=%d now=%v", ran, e.Now())
	}
	if !e.Step() || ran != 2 {
		t.Fatalf("second Step: ran=%d", ran)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTickerFiresAtPeriod(t *testing.T) {
	e := NewEngine()
	var at []Time
	tk := NewTicker(e, 10, func() { at = append(at, e.Now()) })
	tk.Start()
	e.Run(35)
	if len(at) != 3 || at[0] != 10 || at[1] != 20 || at[2] != 30 {
		t.Fatalf("ticks at %v, want [10 20 30]", at)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, 10, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	e.RunAll()
	if n != 2 {
		t.Fatalf("ticker fired %d times after Stop at 2", n)
	}
	if tk.Active() {
		t.Fatal("ticker still active after Stop")
	}
}

func TestTickerRestart(t *testing.T) {
	e := NewEngine()
	n := 0
	tk := NewTicker(e, 10, func() { n++ })
	tk.Start()
	e.Run(25)
	tk.Stop()
	tk.Start()
	e.Run(100)
	if n < 9 {
		t.Fatalf("restarted ticker fired only %d times", n)
	}
}

func TestRateSerialize(t *testing.T) {
	// 1024 bytes at 100 Gbps must serialize in exactly 81,920 ps.
	if d := (100 * Gbps).Serialize(1024); d != 81920 {
		t.Fatalf("Serialize(1024B @100G) = %d ps, want 81920", d)
	}
	// 64-byte control packets at 100 Gbps: 5120 ps.
	if d := (100 * Gbps).Serialize(64); d != 5120 {
		t.Fatalf("Serialize(64B @100G) = %d ps, want 5120", d)
	}
}

func TestRatePacketsPerSecond(t *testing.T) {
	// §3.3: at MTU 1024, one 100 Gbps port sends ~11.97 Mpps (the paper
	// counts the full frame including preamble/IFG loosely; the raw
	// payload math gives 12.2 Mpps — we check our primitive exactly).
	got := (100 * Gbps).PacketsPerSecond(1024)
	want := 100e9 / (1024 * 8)
	if got != want {
		t.Fatalf("PacketsPerSecond = %v, want %v", got, want)
	}
}

func TestIntervalRoundTrip(t *testing.T) {
	iv := Interval(8.127e6)
	pps := float64(Second) / float64(iv)
	if pps < 8.0e6 || pps > 8.3e6 {
		t.Fatalf("Interval(8.127Mpps) round-trips to %v pps", pps)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(1000))
	}
	mean := sum / n
	if mean < 950 || mean > 1050 {
		t.Fatalf("Exp mean = %v, want ~1000", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestQuickTimeAddSub(t *testing.T) {
	f := func(base int32, d int32) bool {
		tm := Time(base)
		dd := Duration(d)
		return tm.Add(dd).Sub(tm) == dd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializeMonotonic(t *testing.T) {
	// Serialization time must be nondecreasing in size and nonincreasing
	// in rate.
	f := func(sz uint16, extra uint8) bool {
		size := int(sz)%9000 + 1
		r := 10 * Gbps
		faster := 100 * Gbps
		d1 := r.Serialize(size)
		d2 := r.Serialize(size + int(extra))
		d3 := faster.Serialize(size)
		return d2 >= d1 && d3 <= d1 && d1 > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{5 * Nanosecond, "5ns"},
		{81920, "81.9ns"},
		{3 * Microsecond, "3us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	if s := (100 * Gbps).String(); s != "100Gbps" {
		t.Errorf("100Gbps formats as %q", s)
	}
	if s := (1200 * Gbps).String(); s != "1.2Tbps" {
		t.Errorf("1.2Tbps formats as %q", s)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%128), func() {})
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
