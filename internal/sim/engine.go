package sim

import (
	"fmt"
	"math/bits"
)

// Func is the body of a scheduled event. It runs exactly once at its
// scheduled timestamp with the engine clock already advanced to that time.
type Func func()

// ArgFunc is the body of a scheduled event that carries one argument. Hot
// paths that would otherwise close over a per-packet value (allocating one
// closure per packet) preallocate a single ArgFunc and pass the value
// through ScheduleArg instead.
type ArgFunc func(arg any)

// Location sentinels for event.where. Non-negative values are wheel slot
// indices.
const (
	locFree     = -1
	locCur      = -2
	locOverflow = -3
)

// event is a queue entry. seq breaks ties so that events scheduled earlier
// at the same timestamp fire first, keeping runs deterministic.
//
// Events are pooled: the engine recycles fired and cancelled events through
// an intrusive free list (safe because the engine is single-goroutine by
// construction). gen guards stale Handles against recycled slots. where/idx
// track the event's current container and position so Cancel can remove it
// in O(log n) (heaps) or O(1) (slots) instead of leaving it to rot.
type event struct {
	at  Time
	seq uint64
	fn  Func
	afn ArgFunc
	arg any
	eng *Engine
	gen uint32
	// where is locCur, locOverflow, locFree, or a wheel slot index; idx is
	// the position within that container (heap slice or slot slice).
	where int32
	idx   int32
	// next links the engine's free list.
	next *event
}

// eventBefore is the firing order: (timestamp, schedule sequence).
func eventBefore(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventHeap is a hand-rolled binary min-heap ordered by eventBefore that
// keeps each event's idx in sync with its slice position so remove works
// from a Handle. It backs the active-region ready set and the far-future
// overflow queue. (container/heap's interface dispatch costs ~2 dynamic
// calls per sift level; these direct slice loops are what make the wheel's
// per-event constant factor beat the reference heap.)
type eventHeap []*event

func (h eventHeap) up(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = int32(i)
		i = parent
	}
	h[i] = ev
	ev.idx = int32(i)
}

func (h eventHeap) down(i int) {
	n := len(h)
	ev := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventBefore(h[r], h[child]) {
			child = r
		}
		if !eventBefore(h[child], ev) {
			break
		}
		h[i] = h[child]
		h[i].idx = int32(i)
		i = child
	}
	h[i] = ev
	ev.idx = int32(i)
}

func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *eventHeap) push(ev *event) {
	i := len(*h)
	ev.idx = int32(i)
	*h = append(*h, ev)
	(*h).up(i)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *event {
	s := *h
	n := len(s) - 1
	root := s[0]
	s[0] = s[n]
	s[n] = nil
	*h = s[:n]
	if n > 0 {
		s[0].idx = 0
		(*h).down(0)
	}
	return root
}

// remove deletes the event at position i, preserving the heap invariant.
func (h *eventHeap) remove(i int) {
	s := *h
	n := len(s) - 1
	moved := s[n]
	s[n] = nil
	*h = s[:n]
	if i == n {
		return
	}
	s[i] = moved
	moved.idx = int32(i)
	(*h).down(i)
	(*h).up(i)
}

// Timer-wheel geometry. The wheel is a circular window of numSlots buckets,
// each slotWidth picoseconds wide, sliding forward with the clock:
//
//   - events closer than the already-activated region go straight to the
//     ready heap (cur);
//   - events within the window hash to slot (at>>slotShift)&slotMask;
//   - events beyond the window wait in an overflow heap and migrate into
//     the wheel as it slides over them.
//
// slotWidth is 8192 ps (~8 ns): finer than the smallest serialization gap
// the models schedule at (5120 ps for a 64-byte control frame at 100 Gbps),
// so steady-state traffic spreads across slots instead of piling into one.
// The window spans 4096 slots = ~33.6 us, which covers serialization,
// propagation, CNP pacing, and RX/TX timer horizons; only long timeouts
// (RTOs, experiment horizons) take the overflow path.
const (
	slotShift   = 13
	slotWidth   = Duration(1) << slotShift
	slotBits    = 12
	numSlots    = 1 << slotBits
	slotMask    = numSlots - 1
	bitmapWords = numSlots / 64
)

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all Marlin components run within
// one engine goroutine by construction.
//
// The scheduler is a hierarchical timer wheel rather than a global binary
// heap: O(1) inserts for the near future, with per-activation cost
// proportional to the (small) population of one 8 ns bucket. Equal-time
// events still fire in schedule order everywhere — the ready heap, the
// buckets, and the overflow heap all order by (timestamp, sequence) — so
// the determinism contract is identical to the heap implementation
// (RefEngine keeps that implementation alive for differential testing).
type Engine struct {
	now     Time
	seq     uint64
	stopped bool
	// executed counts events that have fired, for diagnostics and as a
	// cheap progress measure in benchmarks.
	executed uint64
	// live counts scheduled events that have neither fired nor been
	// cancelled; Pending reports it.
	live int
	// maxDeadAt is the high-water timestamp of cancelled events the heap
	// implementation would still be holding. Cancel removes events
	// immediately, but the old scheduler reaped them lazily, which made a
	// cancelled event beyond Run's horizon pin the clock at `until`. The
	// watermark reproduces exactly that: Run(until) with nothing live left
	// still sets now=until while maxDeadAt > until, and the watermark is
	// dropped once a run passes it (when the old engine would have reaped).
	maxDeadAt Time

	// cur is the ready heap: events in the already-activated region of the
	// window (at earlier than baseSlot's start). The globally earliest
	// pending event is always cur's top once prime() has run.
	cur eventHeap
	// baseSlot is the absolute slot index (at>>slotShift) of the window
	// start; it only moves forward.
	baseSlot int64
	// wheelCnt counts events resident in slots.
	wheelCnt int
	// overflow holds events at or beyond the window end.
	overflow eventHeap
	// free is the intrusive event free list.
	free   *event
	slots  [numSlots][]*event
	bitmap [bitmapWords]uint64
}

// NewEngine returns an engine with the clock at time zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled and not cancelled.
func (e *Engine) Pending() int { return e.live }

// Handle identifies a scheduled event so that it can be cancelled. The
// generation survives event recycling: a Handle held past its event's
// firing safely reports false from Cancel even after the struct is reused.
type Handle struct {
	ev  *event
	gen uint32
}

// Armed reports whether the event is still pending: scheduled and neither
// fired nor cancelled. A zero Handle reports false.
func (h Handle) Armed() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.where != locFree
}

// Cancel prevents the event from running. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending. The event is removed from its container immediately —
// O(1) for a wheel slot, O(log n) for the ready or overflow heap — so
// cancel-heavy patterns (retransmission timers) do not accumulate garbage.
func (h Handle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.where == locFree {
		return false
	}
	e := ev.eng
	e.live--
	if ev.at > e.maxDeadAt {
		e.maxDeadAt = ev.at
	}
	switch ev.where {
	case locCur:
		e.cur.remove(int(ev.idx))
	case locOverflow:
		e.overflow.remove(int(ev.idx))
	default: // wheel slot: order within a slot is irrelevant, swap-remove
		slot := int(ev.where)
		sl := e.slots[slot]
		n := len(sl) - 1
		pos := int(ev.idx)
		sl[pos] = sl[n]
		sl[pos].idx = int32(pos)
		sl[n] = nil
		e.slots[slot] = sl[:n]
		e.wheelCnt--
		if n == 0 {
			e.bitmap[slot>>6] &^= 1 << uint(slot&63)
		}
	}
	e.recycle(ev)
	return true
}

// alloc takes an event from the free list, or the heap allocator on a cold
// start.
func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		return &event{eng: e}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle bumps the event's generation (invalidating outstanding Handles)
// and returns it to the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.where = locFree
	ev.next = e.free
	e.free = ev
}

// schedule allocates, fills, and inserts one event.
func (e *Engine) schedule(at Time, fn Func, afn ArgFunc, arg any) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq = at, e.seq
	ev.fn, ev.afn, ev.arg = fn, afn, arg
	e.seq++
	e.live++
	e.insert(ev)
	return Handle{ev, ev.gen}
}

// insert places the event in the ready heap, a wheel slot, or overflow.
func (e *Engine) insert(ev *event) {
	s := int64(ev.at) >> slotShift
	if s < e.baseSlot {
		ev.where = locCur
		e.cur.push(ev)
		return
	}
	if s < e.baseSlot+numSlots {
		e.insertSlot(ev, int(s&slotMask))
		return
	}
	ev.where = locOverflow
	e.overflow.push(ev)
}

// insertSlot appends the event to a wheel slot and marks the occupancy bit.
func (e *Engine) insertSlot(ev *event, slot int) {
	ev.where = int32(slot)
	ev.idx = int32(len(e.slots[slot]))
	e.slots[slot] = append(e.slots[slot], ev)
	e.bitmap[slot>>6] |= 1 << uint(slot&63)
	e.wheelCnt++
}

// ScheduleAt enqueues fn to run at the absolute timestamp at. Scheduling in
// the past panics: it always indicates a component bug, and silently
// reordering time would corrupt every downstream measurement.
func (e *Engine) ScheduleAt(at Time, fn Func) Handle {
	return e.schedule(at, fn, nil, nil)
}

// Schedule enqueues fn to run after delay d (d may be zero; negative d
// panics via ScheduleAt).
func (e *Engine) Schedule(d Duration, fn Func) Handle {
	return e.schedule(e.now.Add(d), fn, nil, nil)
}

// ScheduleArgAt enqueues fn(arg) at the absolute timestamp at. Unlike a
// closure built per call site, fn can be allocated once and reused, keeping
// per-packet scheduling allocation-free on the hot paths.
func (e *Engine) ScheduleArgAt(at Time, fn ArgFunc, arg any) Handle {
	return e.schedule(at, nil, fn, arg)
}

// ScheduleArg enqueues fn(arg) after delay d.
func (e *Engine) ScheduleArg(d Duration, fn ArgFunc, arg any) Handle {
	return e.schedule(e.now.Add(d), nil, fn, arg)
}

// Stop makes the current Run call return after the in-flight event finishes.
func (e *Engine) Stop() { e.stopped = true }

// prime fills the ready heap with the next wheel slot's events (advancing
// or jumping the window as needed) and returns the earliest pending event
// without removing it.
func (e *Engine) prime() *event {
	for len(e.cur) == 0 {
		if !e.advance() {
			return nil
		}
	}
	return e.cur[0]
}

// advance activates the next non-empty wheel slot, jumping the window to
// the overflow queue's earliest event when the wheel is empty. It reports
// whether any events remain anywhere.
func (e *Engine) advance() bool {
	if e.wheelCnt == 0 {
		if len(e.overflow) == 0 {
			return false
		}
		e.baseSlot = int64(e.overflow[0].at) >> slotShift
		e.refill()
	}
	d := e.nextSlotDelta()
	s := e.baseSlot + int64(d)
	idx := int(s & slotMask)
	evs := e.slots[idx]
	e.cur = append(e.cur[:0], evs...)
	for i, ev := range e.cur {
		ev.where = locCur
		ev.idx = int32(i)
		evs[i] = nil
	}
	e.slots[idx] = evs[:0]
	e.bitmap[idx>>6] &^= 1 << uint(idx&63)
	e.wheelCnt -= len(e.cur)
	e.cur.init()
	// The window start moves past the activated slot; one slot's worth of
	// far future becomes addressable, so pull any overflow that now fits.
	e.baseSlot = s + 1
	e.refill()
	return true
}

// nextSlotDelta scans the occupancy bitmap for the first non-empty slot at
// or after the window start, returning its distance in slots. Requires
// wheelCnt > 0.
func (e *Engine) nextSlotDelta() int {
	base := int(e.baseSlot) & slotMask
	w := base >> 6
	off := uint(base & 63)
	if word := e.bitmap[w] >> off; word != 0 {
		return bits.TrailingZeros64(word)
	}
	for k := 1; k < bitmapWords; k++ {
		if word := e.bitmap[(w+k)&(bitmapWords-1)]; word != 0 {
			return k<<6 - int(off) + bits.TrailingZeros64(word)
		}
	}
	// Fully wrapped: the only remaining candidates are the starting word's
	// bits below the window start.
	word := e.bitmap[w] & (1<<off - 1)
	return bitmapWords<<6 - int(off) + bits.TrailingZeros64(word)
}

// refill migrates overflow events that the (moved) window now covers into
// their wheel slots.
func (e *Engine) refill() {
	if len(e.overflow) == 0 {
		return
	}
	// Saturate the window end near the top of the Time range instead of
	// overflowing; the residual span always fits one window there.
	end := Forever
	if endSlot := e.baseSlot + numSlots; endSlot <= int64(Forever)>>slotShift {
		end = Time(endSlot << slotShift)
	}
	for len(e.overflow) > 0 && (e.overflow[0].at < end || end == Forever) {
		ev := e.overflow.pop()
		e.insertSlot(ev, int((int64(ev.at)>>slotShift)&slotMask))
	}
}

// fire pops the primed event, runs it, and recycles it. The event is
// recycled before its body runs, so a Cancel from inside the body (or any
// time after) reports false, exactly like the heap implementation's
// fn-nilling.
func (e *Engine) fire(ev *event) {
	e.cur.pop()
	e.now = ev.at
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.recycle(ev)
	e.live--
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	e.executed++
}

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, or Stop is called. The clock is left at the timestamp
// of the last executed event, or at the horizon if it was reached with
// events still pending — where "pending" includes events cancelled but not
// yet notionally reaped (the maxDeadAt watermark), matching the heap
// scheduler's observable behavior. It returns the number of events executed
// by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	start := e.executed
	for !e.stopped {
		ev := e.prime()
		if ev == nil {
			if e.maxDeadAt > until {
				e.now = until
			}
			break
		}
		if ev.at > until {
			e.now = until
			break
		}
		e.fire(ev)
	}
	// A heap-scheduler run to this horizon would have reaped every
	// cancelled event at or before it (runs always use until >= now).
	if !e.stopped && e.maxDeadAt <= until {
		e.maxDeadAt = 0
	}
	return e.executed - start
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(Forever) }

// NextEventAt reports the timestamp of the earliest pending event without
// running it, and whether one exists. Priming may slide the wheel window
// forward, but that is invisible to callers: firing order and the clock are
// unchanged. Conservative parallel runs use this to compute the global
// synchronization horizon before each round.
func (e *Engine) NextEventAt() (Time, bool) {
	ev := e.prime()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// AdvanceTo moves the clock forward to t without running anything. It is
// the barrier primitive of conservative parallel runs: after a round every
// partition engine is advanced to the common horizon so that cross-shard
// deliveries and barrier-time control actions schedule against lockstep
// clocks. Advancing past a pending event, or backward, panics — either
// would reorder time.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, e.now))
	}
	if ev := e.prime(); ev != nil && ev.at < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v past pending event at %v", t, ev.at))
	}
	e.now = t
	if e.maxDeadAt <= t {
		e.maxDeadAt = 0
	}
}

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	ev := e.prime()
	if ev == nil {
		// The heap scheduler's Step drained every cancelled event while
		// searching for a live one.
		e.maxDeadAt = 0
		return false
	}
	e.fire(ev)
	if e.maxDeadAt <= e.now {
		e.maxDeadAt = 0
	}
	return true
}
