package sim

import (
	"container/heap"
	"fmt"
)

// Func is the body of a scheduled event. It runs exactly once at its
// scheduled timestamp with the engine clock already advanced to that time.
type Func func()

// event is a queue entry. seq breaks ties so that events scheduled earlier
// at the same timestamp fire first, keeping runs deterministic.
type event struct {
	at     Time
	seq    uint64
	fn     Func
	cancel bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all Marlin components run within
// one engine goroutine by construction.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// executed counts events that have fired, for diagnostics and as a
	// cheap progress measure in benchmarks.
	executed uint64
}

// NewEngine returns an engine with the clock at time zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Handle identifies a scheduled event so that it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from running. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancel || h.ev.fn == nil {
		return false
	}
	h.ev.cancel = true
	return true
}

// ScheduleAt enqueues fn to run at the absolute timestamp at. Scheduling in
// the past panics: it always indicates a component bug, and silently
// reordering time would corrupt every downstream measurement.
func (e *Engine) ScheduleAt(at Time, fn Func) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev}
}

// Schedule enqueues fn to run after delay d (d may be zero; negative d
// panics via ScheduleAt).
func (e *Engine) Schedule(d Duration, fn Func) Handle {
	return e.ScheduleAt(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event finishes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, or Stop is called. The clock is left at the timestamp
// of the last executed event, or at the horizon if it was reached with
// events still pending. It returns the number of events executed by this
// call.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	start := e.executed
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			e.now = until
			break
		}
		heap.Pop(&e.queue)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		e.executed++
	}
	return e.executed - start
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(Forever) }

// Step executes the single next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		e.executed++
		return true
	}
	return false
}
