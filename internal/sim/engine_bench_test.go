package sim

import "testing"

// Engine microbenchmarks: each mix is implemented twice — once against the
// timer-wheel Engine and once against the reference heap RefEngine — so the
// before/after ratio demanded by the performance acceptance criteria is a
// single benchstat (or cmd/benchjson) comparison away.

// steadyGap spreads chain periods over 5.1–82 ns so slots, the ready heap,
// and slot re-use are all exercised, like concurrent per-port timers.
func steadyGap(i int) Duration { return Duration(5120 + (i%16)*5120) }

const steadyChains = 1024

// BenchmarkEngineSteadyState measures per-event cost with 1024 concurrent
// self-rescheduling event chains — the shape of per-port emit timers and
// per-flow pacing in the pipeline models.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	for i := 0; i < steadyChains; i++ {
		gap := steadyGap(i)
		var self Func
		self = func() { e.Schedule(gap, self) }
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkRefEngineSteadyState(b *testing.B) {
	e := NewRefEngine()
	for i := 0; i < steadyChains; i++ {
		gap := steadyGap(i)
		var self Func
		self = func() { e.Schedule(gap, self) }
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineTimerChurn measures the retransmission-timer pattern: every
// fired event cancels a pending far-future timer, re-arms it, and
// reschedules itself — the armTimer/Cancel churn of the FPGA NIC.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	const chains = 256
	rto := make([]Handle, chains)
	noop := func() {}
	for i := 0; i < chains; i++ {
		gap := steadyGap(i)
		id := i
		var self Func
		self = func() {
			rto[id].Cancel()
			rto[id] = e.Schedule(500*Microsecond, noop)
			e.Schedule(gap, self)
		}
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkRefEngineTimerChurn(b *testing.B) {
	e := NewRefEngine()
	const chains = 256
	rto := make([]RefHandle, chains)
	noop := func() {}
	for i := 0; i < chains; i++ {
		gap := steadyGap(i)
		id := i
		var self Func
		self = func() {
			rto[id].Cancel()
			rto[id] = e.Schedule(500*Microsecond, noop)
			e.Schedule(gap, self)
		}
		e.Schedule(gap, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineScheduleArg measures the closure-free scheduling path used
// by packet delivery (ScheduleArg carries the packet pointer, so the hot
// path allocates neither a closure nor an interface box).
func BenchmarkEngineScheduleArg(b *testing.B) {
	e := NewEngine()
	var sink *int
	deliver := ArgFunc(func(arg any) { sink = arg.(*int) })
	payload := new(int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(Duration(i%128), deliver, payload)
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	b.StopTimer()
	e.RunAll()
	_ = sink
}
