// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other Marlin component runs on: the
// programmable-switch model, the FPGA NIC model, the emulated tested network,
// and the workload generators all schedule work as timestamped events on a
// single shared queue. Events with equal timestamps fire in the order they
// were scheduled, so a run is a pure function of its inputs and RNG seed.
//
// Time is measured in integer picoseconds. Picosecond resolution keeps
// high-rate arithmetic exact: a 1024-byte frame serializes on a 100 Gbps link
// in exactly 81,920 ps, and an int64 of picoseconds spans about 106 days,
// far beyond any test horizon.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in picoseconds since the start of
// the run. The zero Time is the beginning of the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a timestamp later than any reachable simulation time. It is
// used as the "run without bound" horizon and as the canonical "not
// scheduled" sentinel for timers.
const Forever Time = 1<<63 - 1

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Std converts the simulated timestamp to a time.Duration offset.
//
//marlin:allow simtime -- designated conversion boundary between simulated and host time
func (t Time) Std() time.Duration { return time.Duration(t) * time.Nanosecond / 1000 }

// String formats the timestamp with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch abs := d; {
	case abs < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// FromStd converts a time.Duration to a simulated Duration.
//
//marlin:allow simtime -- designated conversion boundary between simulated and host time
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Seconds builds a Duration from a floating-point number of seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Micros builds a Duration from a floating-point number of microseconds.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }
