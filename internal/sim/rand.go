package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). Every stochastic
// Marlin component draws from a seeded Rand so that whole-system runs are
// reproducible bit-for-bit from the configuration seed.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; a zero seed is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed duration with the given mean.
// It is the inter-arrival primitive for Poisson workload generators.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent child generator; useful for giving each
// component its own stream without cross-component coupling.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}
