package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). Every stochastic
// Marlin component draws from a seeded Rand so that whole-system runs are
// reproducible bit-for-bit from the configuration seed.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; a zero seed is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed duration with the given mean.
// It is the inter-arrival primitive for Poisson workload generators.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent child generator; useful for giving each
// component its own stream without cross-component coupling.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// DeriveRand builds a partition-local stream from (seed, partition,
// purpose) without consuming draws from any other stream. Sharded runs use
// it so that a partition's generators are a pure function of the
// configuration seed and the partition's identity: adding or removing
// partitions elsewhere in the topology cannot perturb this partition's
// draws, and no stream is ever shared across shards.
func DeriveRand(seed, partition uint64, purpose string) *Rand {
	// FNV-1a over the purpose tag, folded with distinct odd constants for
	// each identity component, then one splitmix64 finalization round so
	// nearby (seed, partition) pairs land in unrelated states.
	h := uint64(14695981039346656037)
	for i := 0; i < len(purpose); i++ {
		h ^= uint64(purpose[i])
		h *= 1099511628211
	}
	z := seed ^ h*0x9e3779b97f4a7c15 ^ (partition+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRand(z ^ (z >> 31))
}
