package sim

import "testing"

// TestIntervalMatchesSerialize pins Interval to the exact frame period for
// pps values derived from a (rate, wire size) pair whose period is an
// integral number of picoseconds — the shape every FPGA timer uses. The
// old truncating conversion returned one picosecond short whenever the
// float64 division landed an ULP below the integer (e.g. the 148.8 Mpps
// SCHE rate), making paced timers systematically fast relative to
// Rate.Serialize's round-up.
func TestIntervalMatchesSerialize(t *testing.T) {
	cases := []struct {
		rate      Rate
		wireBytes int
	}{
		{100 * Gbps, 1024 + 20}, // DATA at MTU 1024: 83,520 ps
		{100 * Gbps, 64 + 20},   // SCHE/ACK/INFO: 6,720 ps (148.8 Mpps)
		{100 * Gbps, 1518 + 20}, // DATA at MTU 1518: 123,040 ps
		{400 * Gbps, 1024 + 20},
		{25 * Gbps, 1024 + 20},
	}
	for _, tc := range cases {
		pps := tc.rate.PacketsPerSecond(tc.wireBytes)
		got := Interval(pps)
		// Exact wire period in integer arithmetic (these cases divide
		// evenly): period_ps = bits * 1e12 / rate.
		want := Duration(int64(tc.wireBytes) * 8 * int64(Second) / int64(tc.rate))
		if got != want {
			t.Errorf("Interval(%v@%d B) = %d ps, want %d ps", tc.rate, tc.wireBytes, got, want)
		}
	}
}

// TestIntervalDrift accumulates 1e6 ticks and requires the sum to stay
// within ±1 ps of the nominal elapsed time. Before the round-to-nearest
// fix, the SCHE-rate case drifted a full microsecond fast (1 ps per tick).
func TestIntervalDrift(t *testing.T) {
	const ticks = 1_000_000
	for _, tc := range []struct {
		name      string
		rate      Rate
		wireBytes int64
	}{
		{"sche-148.8Mpps", 100 * Gbps, 84},
		{"data-11.97Mpps", 100 * Gbps, 1044},
		{"data-8.127Mpps", 100 * Gbps, 1538},
	} {
		pps := float64(tc.rate) / (float64(tc.wireBytes) * 8)
		elapsed := int64(ticks) * int64(Interval(pps))
		// Per-tick period is exactly integral for these (rate, size) pairs;
		// computing it first keeps ticks*period inside int64.
		nominal := int64(ticks) * (tc.wireBytes * 8 * int64(Second) / int64(tc.rate))
		if diff := elapsed - nominal; diff < -1 || diff > 1 {
			t.Errorf("%s: %d ticks drifted %d ps from nominal %d ps", tc.name, int64(ticks), diff, nominal)
		}
	}
}
