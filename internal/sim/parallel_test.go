package sim

import "testing"

// TestNextEventAt pins the horizon primitive conservative parallel rounds
// are computed from: earliest pending timestamp, cancel-aware, no firing.
func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reports a pending event")
	}
	e.Schedule(5*Microsecond, func() {})
	h := e.Schedule(2*Microsecond, func() {})
	if at, ok := e.NextEventAt(); !ok || at != Time(2*Microsecond) {
		t.Fatalf("NextEventAt = %v, %v; want 2us, true", at, ok)
	}
	if e.Now() != 0 {
		t.Fatalf("NextEventAt moved the clock to %v", e.Now())
	}
	h.Cancel()
	if at, ok := e.NextEventAt(); !ok || at != Time(5*Microsecond) {
		t.Fatalf("after cancel: NextEventAt = %v, %v; want 5us, true", at, ok)
	}
	e.RunAll()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("drained engine reports a pending event")
	}
}

// TestAdvanceTo pins the barrier primitive: the clock moves without
// firing, and moving backward or past a pending event panics.
func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10*Microsecond, func() { fired = true })
	e.AdvanceTo(Time(4 * Microsecond))
	if e.Now() != Time(4*Microsecond) || fired {
		t.Fatalf("AdvanceTo: now=%v fired=%v", e.Now(), fired)
	}
	// Idempotent at the same instant.
	e.AdvanceTo(Time(4 * Microsecond))

	mustPanic(t, "backward", func() { e.AdvanceTo(Time(1 * Microsecond)) })
	mustPanic(t, "past pending", func() { e.AdvanceTo(Time(11 * Microsecond)) })

	// Events scheduled relative to an advanced clock land at the new base.
	e.Schedule(Microsecond, func() {})
	if at, _ := e.NextEventAt(); at != Time(5*Microsecond) {
		t.Fatalf("schedule after advance lands at %v, want 5us", at)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

// TestDeriveRandIndependence: a derived stream is a pure function of
// (seed, partition, purpose) — identical on re-derivation, distinct across
// any component change, and drawing from one never perturbs another.
func TestDeriveRandIndependence(t *testing.T) {
	draw := func(r *Rand) [4]uint64 {
		var out [4]uint64
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}
	base := draw(DeriveRand(7, 2, "aqm"))
	if again := draw(DeriveRand(7, 2, "aqm")); again != base {
		t.Fatal("re-derived stream differs")
	}
	for name, r := range map[string]*Rand{
		"seed":      DeriveRand(8, 2, "aqm"),
		"partition": DeriveRand(7, 3, "aqm"),
		"purpose":   DeriveRand(7, 2, "ecmp"),
	} {
		if draw(r) == base {
			t.Errorf("changing %s left the stream unchanged", name)
		}
	}
	// Interleaving draws across streams changes nothing: each stream owns
	// its state from derivation.
	a, b := DeriveRand(7, 0, "x"), DeriveRand(7, 1, "x")
	wantA := draw(DeriveRand(7, 0, "x"))
	var got [4]uint64
	for i := range got {
		b.Uint64() // noise on the sibling stream
		got[i] = a.Uint64()
		b.Uint64()
	}
	if got != wantA {
		t.Fatal("sibling-stream draws perturbed the partition stream")
	}
}
