package sim

import (
	"testing"
	"testing/quick"
)

// The differential test drives the timer-wheel Engine and the reference
// binary-heap RefEngine through identical schedule/cancel/run sequences and
// asserts identical firing orders, clocks, executed counts, and pending
// counts. It is the machine check behind the claim that swapping the
// scheduler preserved the determinism contract bit-for-bit.

type traceEntry struct {
	id int
	at Time
}

// splitmix hashes an op index into the op-stream's per-id randomness, so
// both engines derive identical decisions without sharing an RNG cursor.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deltaFor maps raw randomness to a schedule delay drawn from the spans the
// models actually use: same-timestamp, sub-slot, intra-window, and
// overflow-horizon events all appear.
func deltaFor(r uint64) Duration {
	switch r % 5 {
	case 0:
		return 0
	case 1:
		return Duration(r % 8192) // within one wheel slot
	case 2:
		return Duration(r % uint64(10*Microsecond)) // within the window
	case 3:
		return Duration(r % uint64(2*Millisecond)) // overflow heap
	default:
		return Duration(r % uint64(300*Millisecond)) // far overflow
	}
}

func differentialRun(t *testing.T, seed uint64) bool {
	t.Helper()
	rng := NewRand(seed)
	wheel := NewEngine()
	ref := NewRefEngine()

	var wTrace, rTrace []traceEntry
	type pair struct {
		w Handle
		r RefHandle
	}
	var handles []pair
	nextID := 0

	var schedule func(id int, d Duration)
	schedule = func(id int, d Duration) {
		// Every third event schedules a child from inside its body, with a
		// delay derived purely from its id so both engines agree.
		w := wheel.Schedule(d, func() {
			wTrace = append(wTrace, traceEntry{id, wheel.Now()})
			if id%3 == 0 {
				cid := -id - 1
				wheel.Schedule(deltaFor(splitmix(uint64(id))), func() {
					wTrace = append(wTrace, traceEntry{cid, wheel.Now()})
				})
			}
		})
		r := ref.Schedule(d, func() {
			rTrace = append(rTrace, traceEntry{id, ref.Now()})
			if id%3 == 0 {
				cid := -id - 1
				ref.Schedule(deltaFor(splitmix(uint64(id))), func() {
					rTrace = append(rTrace, traceEntry{cid, ref.Now()})
				})
			}
		})
		handles = append(handles, pair{w, r})
	}

	const ops = 400
	for op := 0; op < ops; op++ {
		r := rng.Uint64()
		switch {
		case r%10 < 6: // schedule
			schedule(nextID, deltaFor(splitmix(r)))
			nextID++
		case r%10 < 8: // cancel a random handle (possibly already fired)
			if len(handles) == 0 {
				continue
			}
			h := handles[int(r/16)%len(handles)]
			cw, cr := h.w.Cancel(), h.r.Cancel()
			if cw != cr {
				t.Errorf("seed %d op %d: Cancel disagreed: wheel=%v heap=%v", seed, op, cw, cr)
				return false
			}
		default: // run to a horizon
			horizon := wheel.Now().Add(deltaFor(splitmix(r ^ 0xabcd)))
			nw, nr := wheel.Run(horizon), ref.Run(horizon)
			if nw != nr {
				t.Errorf("seed %d op %d: Run executed wheel=%d heap=%d", seed, op, nw, nr)
				return false
			}
			if wheel.Now() != ref.Now() {
				t.Errorf("seed %d op %d: clocks diverged wheel=%v heap=%v", seed, op, wheel.Now(), ref.Now())
				return false
			}
		}
		if wheel.Pending() != ref.Pending() {
			t.Errorf("seed %d op %d: Pending wheel=%d heap=%d", seed, op, wheel.Pending(), ref.Pending())
			return false
		}
	}
	nw, nr := wheel.RunAll(), ref.RunAll()
	if nw != nr || wheel.Now() != ref.Now() || wheel.Executed() != ref.Executed() {
		t.Errorf("seed %d: drain mismatch: executed wheel=%d heap=%d, now wheel=%v heap=%v",
			seed, wheel.Executed(), ref.Executed(), wheel.Now(), ref.Now())
		return false
	}
	if len(wTrace) != len(rTrace) {
		t.Errorf("seed %d: trace lengths wheel=%d heap=%d", seed, len(wTrace), len(rTrace))
		return false
	}
	for i := range wTrace {
		if wTrace[i] != rTrace[i] {
			t.Errorf("seed %d: firing %d diverged: wheel=%+v heap=%+v", seed, i, wTrace[i], rTrace[i])
			return false
		}
	}
	return true
}

func TestQuickDifferentialWheelVsHeap(t *testing.T) {
	f := func(seed uint64) bool { return differentialRun(t, seed) }
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// A handful of fixed seeds keep the corpus stable across quick's own
// generator changes.
func TestDifferentialFixedSeeds(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 42, 0xdeadbeef, 1 << 40} {
		if !differentialRun(t, seed) {
			t.Fatalf("differential run failed for seed %d", seed)
		}
	}
}
