package sim

import (
	"fmt"
	"math"
)

// Rate is a data rate in bits per second. It is shared by the link
// emulator, the switch model, and the FPGA pacing timers so that
// serialization arithmetic is done one way everywhere.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
	Tbps              = 1000 * Gbps
)

// Serialize returns the time to put bytes on the wire at rate r.
// The result is rounded up to a whole picosecond so that back-to-back
// transmissions never overlap.
func (r Rate) Serialize(bytes int) Duration {
	if r <= 0 {
		panic("sim: serialize at non-positive rate")
	}
	bits := int64(bytes) * 8
	// duration_ps = bits / (r bits/s) * 1e12 ps/s, rounded up.
	ps := (bits*int64(Second) + int64(r) - 1) / int64(r)
	return Duration(ps)
}

// PacketsPerSecond returns how many frames of the given size r carries per
// second at line rate.
func (r Rate) PacketsPerSecond(bytes int) float64 {
	return float64(r) / (float64(bytes) * 8)
}

// Interval returns the steady-state gap between frame starts when sending
// pps packets per second, rounded to the nearest picosecond. It is the
// primitive behind the FPGA RX/TX timers.
//
// Rounding matters: pps values derived from a rate and frame size (e.g.
// 148.8 Mpps for 64+20-byte SCHE frames at 100 Gbps) have an exactly
// integral period in picoseconds, but the float64 division can land one ULP
// below it. Truncation then shaves a picosecond off every tick, so paced
// timers run systematically fast relative to Rate.Serialize's round-up;
// round-to-nearest recovers the exact period.
func Interval(pps float64) Duration {
	if pps <= 0 {
		panic("sim: interval for non-positive pps")
	}
	return Duration(math.Round(float64(Second) / pps))
}

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r < 0:
		return "-" + (-r).String()
	case r < Kbps:
		return fmt.Sprintf("%dbps", int64(r))
	case r < Mbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	case r < Gbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	case r < Tbps:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	default:
		return fmt.Sprintf("%.4gTbps", float64(r)/float64(Tbps))
	}
}

// Ticker fires a callback at a fixed period until stopped. It is the shape
// of every hardware timer in the models (TEMP slot clocks, RX/TX pacing
// timers, DCQCN rate timers).
type Ticker struct {
	engine *Engine
	period Duration
	fn     Func
	handle Handle
	active bool
}

// NewTicker creates a stopped ticker; call Start to arm it.
func NewTicker(e *Engine, period Duration, fn Func) *Ticker {
	if period <= 0 {
		panic("sim: ticker with non-positive period")
	}
	return &Ticker{engine: e, period: period, fn: fn}
}

// Start arms the ticker; the first tick fires one period from now.
// Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.arm()
}

func (t *Ticker) arm() {
	t.handle = t.engine.Schedule(t.period, func() {
		if !t.active {
			return
		}
		// Re-arm before the callback so that the callback can Stop the
		// ticker and have that stick.
		t.arm()
		t.fn()
	})
}

// Stop disarms the ticker. Pending ticks are cancelled.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.handle.Cancel()
}

// Active reports whether the ticker is armed.
func (t *Ticker) Active() bool { return t.active }

// SetPeriod changes the tick period. The change takes effect from the next
// re-arm (i.e. after the currently pending tick fires).
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: ticker with non-positive period")
	}
	t.period = p
}

// Period returns the current tick period.
func (t *Ticker) Period() Duration { return t.period }
