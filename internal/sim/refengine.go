package sim

import (
	"container/heap"
	"fmt"
)

// RefEngine is the retired binary-heap scheduler, kept as an executable
// reference implementation of the determinism contract: events fire in
// (timestamp, schedule-sequence) order, the clock advances to the horizon
// while anything is still queued beyond it, and cancellation is lazy.
//
// The differential test drives a RefEngine and a timer-wheel Engine with
// identical testing/quick-generated schedule/cancel sequences and asserts
// identical firing orders and clocks, and cmd/benchjson reports RefEngine
// throughput as the "before" number in BENCH_baseline.json. It is not used
// by any model code.
type RefEngine struct {
	now      Time
	queue    refHeap
	seq      uint64
	stopped  bool
	executed uint64
}

// refEvent is a RefEngine queue entry.
type refEvent struct {
	at     Time
	seq    uint64
	fn     Func
	cancel bool
}

// refHeap orders events by (time, sequence).
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// NewRefEngine returns a reference engine with the clock at time zero.
func NewRefEngine() *RefEngine {
	return &RefEngine{}
}

// Now returns the current simulation time.
func (e *RefEngine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *RefEngine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled and not cancelled. (The
// historical heap implementation counted cancelled-but-unreaped events too;
// the reference reproduces the fixed semantics so differential tests can
// compare Pending directly.)
func (e *RefEngine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancel && ev.fn != nil {
			n++
		}
	}
	return n
}

// RefHandle identifies a RefEngine event so that it can be cancelled.
type RefHandle struct{ ev *refEvent }

// Cancel prevents the event from running, reporting whether it was still
// pending.
func (h RefHandle) Cancel() bool {
	if h.ev == nil || h.ev.cancel || h.ev.fn == nil {
		return false
	}
	h.ev.cancel = true
	return true
}

// ScheduleAt enqueues fn to run at the absolute timestamp at.
func (e *RefEngine) ScheduleAt(at Time, fn Func) RefHandle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &refEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return RefHandle{ev}
}

// Schedule enqueues fn to run after delay d.
func (e *RefEngine) Schedule(d Duration, fn Func) RefHandle {
	return e.ScheduleAt(e.now.Add(d), fn)
}

// Stop makes the current Run call return after the in-flight event.
func (e *RefEngine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, or Stop is called.
func (e *RefEngine) Run(until Time) uint64 {
	e.stopped = false
	start := e.executed
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			e.now = until
			break
		}
		heap.Pop(&e.queue)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		e.executed++
	}
	return e.executed - start
}

// RunAll executes events until the queue drains or Stop is called.
func (e *RefEngine) RunAll() uint64 { return e.Run(Forever) }

// Step executes the single next event, if any, and reports whether one ran.
func (e *RefEngine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		e.executed++
		return true
	}
	return false
}
