// Package packet defines Marlin's packet taxonomy and wire formats.
//
// Marlin distinguishes five packet roles (§3.1 of the paper):
//
//   - TEMP: template packets that circulate at line rate inside the
//     programmable switch and are multicast to egress ports.
//   - DATA: full-MTU test traffic, produced by rewriting a TEMP packet with
//     metadata dequeued from a register queue.
//   - ACK: 64-byte acknowledgements produced by truncating received DATA.
//   - INFO: 64-byte flow-state digests the switch sends to the FPGA NIC.
//   - SCHE: 64-byte scheduling instructions the FPGA sends to the switch.
//
// Congestion notification packets (CNPs, used by DCQCN) are modelled as a
// sixth role; the switch encapsulates them into INFO packets exactly like
// ACKs (§3.2 step 6).
//
// The 64-byte control roles have a concrete binary layout (see Marshal) so
// that the model exercises real parse/deparse paths, not just struct copies.
package packet

import (
	"sync"
	"sync/atomic"

	"marlin/internal/sim"
)

// Type is a packet role.
type Type uint8

// Packet roles.
const (
	TEMP Type = iota + 1
	DATA
	ACK
	INFO
	SCHE
	CNP
)

// String returns the conventional upper-case role name.
func (t Type) String() string {
	switch t {
	case TEMP:
		return "TEMP"
	case DATA:
		return "DATA"
	case ACK:
		return "ACK"
	case INFO:
		return "INFO"
	case SCHE:
		return "SCHE"
	case CNP:
		return "CNP"
	default:
		return "UNKNOWN"
	}
}

// FlowID identifies a flow within a test. The FPGA BRAM models address
// flow state by FlowID, so IDs are dense small integers.
type FlowID uint32

// Flags carries per-packet signal bits.
type Flags uint16

// Flag bits.
const (
	// FlagECNCapable marks the packet ECT(0): eligible for CE marking.
	FlagECNCapable Flags = 1 << iota
	// FlagCE is the Congestion Experienced mark set by a congested queue.
	FlagCE
	// FlagECNEcho is the receiver's echo of CE back to the sender (ECE).
	FlagECNEcho
	// FlagNACK indicates an out-of-order arrival (RoCE-style NACK).
	FlagNACK
	// FlagCNPNotify marks a DCQCN congestion notification.
	FlagCNPNotify
	// FlagFIN marks the last packet of a flow.
	FlagFIN
	// FlagRetransmit marks a retransmitted DATA packet (diagnostics only).
	FlagRetransmit
	// FlagECT1 distinguishes ECT(1) from ECT(0) on ECN-capable packets:
	// FlagECNCapable alone is ECT(0), FlagECNCapable|FlagECT1 is ECT(1) —
	// the L4S identifier (RFC 9331) that dual-queue AQMs classify on.
	FlagECT1
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// ECT is an ECN codepoint: whether a packet advertises ECN capability and,
// if so, which ECT identifier it carries. CE is not an ECT value — it is
// the FlagCE mark a congested queue adds on top of an ECT codepoint.
type ECT uint8

// ECN codepoints.
const (
	// NotECT opts the packet out of ECN: congested queues drop it.
	NotECT ECT = iota
	// ECT0 is the classic RFC 3168 codepoint.
	ECT0
	// ECT1 is the L4S codepoint (RFC 9331): scalable CC traffic that a
	// dual-queue AQM steers into its low-latency queue.
	ECT1
)

// String returns the conventional codepoint name.
func (e ECT) String() string {
	switch e {
	case ECT0:
		return "ect0"
	case ECT1:
		return "ect1"
	default:
		return "not-ect"
	}
}

// ECTMask selects the flag bits that encode the ECT codepoint.
const ECTMask = FlagECNCapable | FlagECT1

// Bits returns the flag encoding of the codepoint.
func (e ECT) Bits() Flags {
	switch e {
	case ECT0:
		return FlagECNCapable
	case ECT1:
		return FlagECNCapable | FlagECT1
	default:
		return 0
	}
}

// ECT decodes the packet's ECN codepoint from its flag bits.
func (p *Packet) ECT() ECT {
	if !p.Flags.Has(FlagECNCapable) {
		return NotECT
	}
	if p.Flags.Has(FlagECT1) {
		return ECT1
	}
	return ECT0
}

// SetECT rewrites the packet's ECN codepoint in place, leaving every other
// flag (including an existing CE mark) untouched.
func (p *Packet) SetECT(e ECT) {
	p.Flags = (p.Flags &^ ECTMask) | e.Bits()
}

// ControlSize is the wire size of every TEMP-derived control packet
// (ACK, INFO, SCHE, CNP): 64 bytes, the Ethernet minimum frame.
const ControlSize = 64

// WireOverhead is the per-frame Ethernet overhead that occupies the wire
// but not the frame: 8 bytes of preamble/SFD plus a 12-byte inter-frame
// gap. The paper's rate constants include it: 100 Gbps / ((64+20)*8 b) =
// 148.8 Mpps for SCHE packets, 11.97 Mpps at MTU 1024, 8.127 Mpps at 1518.
const WireOverhead = 20

// WireSize is the wire occupancy of a frame of the given size.
func WireSize(frameBytes int) int { return frameBytes + WireOverhead }

// HeaderOverhead approximates Ethernet+IP+transport header bytes carried by
// each DATA packet; goodput computations subtract it.
const HeaderOverhead = 58

// Packet is the in-simulation representation of a frame. A single struct
// covers all roles; role-irrelevant fields are zero.
//
// Packets are passed by pointer and mutated in place along their path, the
// way a switch pipeline rewrites headers.
type Packet struct {
	// Type is the packet role.
	Type Type
	// Flow is the flow the packet belongs to (all roles except TEMP).
	Flow FlowID
	// PSN is the packet sequence number. For DATA/SCHE it is the sequence
	// of the described data packet; for ACK/INFO it is the next expected
	// PSN (cumulative acknowledgement).
	PSN uint32
	// Ack carries the cumulative acknowledgement on ACK/INFO packets.
	Ack uint32
	// Flags carries ECN/NACK/CNP/FIN signal bits.
	Flags Flags
	// Size is the frame's wire size in bytes.
	Size int
	// Port is the switch egress port the flow is bound to. SCHE packets
	// use it to select the register queue; INFO packets report it so the
	// FPGA can demultiplex to the right RX FIFO.
	Port int
	// SentAt is the timestamp stamped by the sender when the described
	// DATA packet was scheduled; receivers echo it so the FPGA can probe
	// RTT (the prb-rtt input of the CC module interface, Table 3).
	SentAt sim.Time
	// RxTime is the timestamp the receiver logic observed the packet;
	// used when deriving one-way metrics in measurements.
	RxTime sim.Time
	// EnqAt is the instant the packet entered its current queue, stamped
	// by AQM-managed queues so sojourn-based disciplines (CoDel, PIE,
	// DualPI2's L4S step) can measure standing delay at dequeue. It is
	// queue-local state, not wire data: each enqueue restamps it.
	EnqAt sim.Time
	// INT carries in-band network telemetry stamped by traversed hops
	// (for INT-based CC such as HPCC); receivers echo it onto ACKs and
	// the switch forwards it inside INFO packets.
	INT INTRecord
}

// MaxINTHops bounds the telemetry stack a packet can carry; data-center
// paths the paper targets are at most five hops.
const MaxINTHops = 5

// INTHop is one hop's telemetry: the egress queue depth at departure, the
// cumulative bytes the egress had transmitted, the link rate, and the
// local timestamp — the fields HPCC's utilization estimator consumes.
type INTHop struct {
	QueueBytes uint32
	TxBytes    uint64
	Rate       sim.Rate
	TS         sim.Time
}

// INTRecord is the per-packet telemetry stack.
type INTRecord struct {
	NHops uint8
	Hops  [MaxINTHops]INTHop
}

// Push appends one hop's telemetry; stacks beyond MaxINTHops drop the
// extra hops (counted by the stamping link).
func (r *INTRecord) Push(h INTHop) bool {
	if int(r.NHops) >= MaxINTHops {
		return false
	}
	r.Hops[r.NHops] = h
	r.NHops++
	return true
}

// pool recycles Packet structs across the packet lifecycle. A sync.Pool
// (rather than a per-engine free list) because the fleet runner executes
// many engines on parallel goroutines within one process. Pooled packets
// are always zeroed: Release clears before putting back.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// accounting, when non-zero, makes Get/Release maintain the live-packet
// counter. It is a test-only facility for pool-ownership audits: production
// paths pay one relaxed atomic load per Get/Release and nothing else.
var accounting atomic.Bool

// live is the number of packets obtained from the pool and not yet
// Released, counted only while accounting is enabled.
var live atomic.Int64

// SetAccounting enables or disables live-packet accounting and resets the
// counter. Tests wrap a traffic pattern with SetAccounting(true) /
// Live()==0 assertions to prove every packet is Released exactly once.
func SetAccounting(on bool) {
	accounting.Store(on)
	live.Store(0)
}

// Live returns the number of outstanding (un-Released) packets taken from
// the pool since accounting was enabled. Meaningless when accounting is off.
func Live() int64 { return live.Load() }

// Get returns a zeroed Packet from the pool. Callers that build a packet
// field-by-field (wire parsing, custom roles) use Get directly; the common
// roles have typed constructors below.
func Get() *Packet {
	if accounting.Load() {
		live.Add(1)
	}
	return pool.Get().(*Packet)
}

// Release returns p to the pool once it reaches end-of-life. Ownership
// rule: passing a packet to a component's Receive transfers ownership;
// whoever consumes, drops, or retires the packet calls Release exactly
// once, and must not touch it afterwards. Components that retain a packet
// past their handler (e.g. capture sinks) must Clone it instead of keeping
// the original.
func (p *Packet) Release() {
	*p = Packet{}
	pool.Put(p)
	if accounting.Load() {
		live.Add(-1)
	}
}

// NewData returns a DATA packet of the given frame size, carrying the
// default ECT(0) codepoint.
func NewData(flow FlowID, psn uint32, size int, sentAt sim.Time) *Packet {
	p := Get()
	p.Type, p.Flow, p.PSN, p.Size, p.SentAt, p.Flags = DATA, flow, psn, size, sentAt, FlagECNCapable
	return p
}

// NewDataECT returns a DATA packet with an explicit ECN codepoint — the
// constructor flood injectors use to compare Not-ECT against ECT(1) abuse.
func NewDataECT(flow FlowID, psn uint32, size int, sentAt sim.Time, ect ECT) *Packet {
	p := Get()
	p.Type, p.Flow, p.PSN, p.Size, p.SentAt, p.Flags = DATA, flow, psn, size, sentAt, ect.Bits()
	return p
}

// NewSche returns a 64-byte SCHE packet instructing the switch to emit the
// flow's next DATA packet on the given port.
func NewSche(flow FlowID, psn uint32, port int, now sim.Time) *Packet {
	p := Get()
	p.Type, p.Flow, p.PSN, p.Port, p.Size, p.SentAt = SCHE, flow, psn, port, ControlSize, now
	return p
}

// NewAck returns a 64-byte ACK carrying the cumulative acknowledgement ack
// in response to the DATA packet with sequence psn.
func NewAck(flow FlowID, psn, ack uint32, rx sim.Time) *Packet {
	p := Get()
	p.Type, p.Flow, p.PSN, p.Ack, p.Size, p.RxTime = ACK, flow, psn, ack, ControlSize, rx
	return p
}

// Clone returns a pooled copy of p. Multicast paths clone rather than
// alias; the clone has its own lifetime and its own Release.
func (p *Packet) Clone() *Packet {
	q := Get()
	*q = *p
	return q
}

// Payload returns the DATA packet's payload size after header overhead;
// control packets carry no payload.
func (p *Packet) Payload() int {
	if p.Type != DATA || p.Size <= HeaderOverhead {
		return 0
	}
	return p.Size - HeaderOverhead
}
