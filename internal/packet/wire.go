package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"marlin/internal/sim"
)

// Wire layout of the 64-byte control packets (SCHE, INFO, ACK, CNP).
//
//	offset  size  field
//	0       2     magic 0x4D4C ("ML")
//	2       1     version (1)
//	3       1     type
//	4       4     flow id
//	8       4     psn
//	12      4     ack
//	16      2     flags
//	18      2     port
//	20      8     sentAt (ps)
//	28      8     rxTime (ps)
//	36      4     size (frame wire size; always 64 for control packets)
//	40      24    zero padding to 64 bytes
//
// DATA packets use the same 40-byte header followed by payload padding out
// to their frame size; the model never materialises the payload bytes.
const (
	wireMagic   = 0x4D4C
	wireVersion = 1
	headerLen   = 40
)

// Wire errors.
var (
	ErrShortPacket = errors.New("packet: buffer shorter than header")
	ErrBadMagic    = errors.New("packet: bad magic")
	ErrBadVersion  = errors.New("packet: unsupported version")
	ErrBadType     = errors.New("packet: unknown packet type")
	ErrBadSize     = errors.New("packet: size field inconsistent with type")
)

// MarshalControl encodes a control packet (SCHE/INFO/ACK/CNP) into a
// 64-byte frame. The destination must be at least ControlSize bytes.
func MarshalControl(p *Packet, dst []byte) error {
	if len(dst) < ControlSize {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrShortPacket, ControlSize, len(dst))
	}
	switch p.Type {
	case SCHE, INFO, ACK, CNP:
	default:
		return fmt.Errorf("%w: %v is not a control packet", ErrBadType, p.Type)
	}
	marshalHeader(p, dst)
	for i := headerLen; i < ControlSize; i++ {
		dst[i] = 0
	}
	return nil
}

func marshalHeader(p *Packet, dst []byte) {
	binary.BigEndian.PutUint16(dst[0:2], wireMagic)
	dst[2] = wireVersion
	dst[3] = byte(p.Type)
	binary.BigEndian.PutUint32(dst[4:8], uint32(p.Flow))
	binary.BigEndian.PutUint32(dst[8:12], p.PSN)
	binary.BigEndian.PutUint32(dst[12:16], p.Ack)
	binary.BigEndian.PutUint16(dst[16:18], uint16(p.Flags))
	binary.BigEndian.PutUint16(dst[18:20], uint16(p.Port))
	binary.BigEndian.PutUint64(dst[20:28], uint64(p.SentAt))
	binary.BigEndian.PutUint64(dst[28:36], uint64(p.RxTime))
	binary.BigEndian.PutUint32(dst[36:40], uint32(p.Size))
}

// Unmarshal decodes a frame produced by MarshalControl. Decoding is
// strict: a control frame whose recorded size is not ControlSize is
// rejected rather than silently normalised — the model only ever emits
// 64-byte control frames, and accepting a different size here would make
// a decode/re-encode cycle (a pcap rewrite, say) alter the frame.
func Unmarshal(src []byte) (*Packet, error) {
	if len(src) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(src))
	}
	if binary.BigEndian.Uint16(src[0:2]) != wireMagic {
		return nil, ErrBadMagic
	}
	if src[2] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, src[2])
	}
	t := Type(src[3])
	switch t {
	case TEMP, DATA, ACK, INFO, SCHE, CNP:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, src[3])
	}
	p := &Packet{
		Type:   t,
		Flow:   FlowID(binary.BigEndian.Uint32(src[4:8])),
		PSN:    binary.BigEndian.Uint32(src[8:12]),
		Ack:    binary.BigEndian.Uint32(src[12:16]),
		Flags:  Flags(binary.BigEndian.Uint16(src[16:18])),
		Port:   int(binary.BigEndian.Uint16(src[18:20])),
		SentAt: sim.Time(binary.BigEndian.Uint64(src[20:28])),
		RxTime: sim.Time(binary.BigEndian.Uint64(src[28:36])),
		Size:   int(binary.BigEndian.Uint32(src[36:40])),
	}
	switch t {
	case ACK, INFO, SCHE, CNP:
		if p.Size != ControlSize {
			return nil, fmt.Errorf("%w: control frame records size %d, want %d",
				ErrBadSize, p.Size, ControlSize)
		}
	}
	return p, nil
}
