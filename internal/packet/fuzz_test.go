package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks the wire decoder never panics and that anything it
// accepts re-encodes to an identical frame (decode/encode idempotence).
func FuzzUnmarshal(f *testing.F) {
	var seed [ControlSize]byte
	if err := MarshalControl(NewSche(7, 1234, 3, 42), seed[:]); err != nil {
		f.Fatal(err)
	}
	f.Add(seed[:])
	f.Add(make([]byte, ControlSize))
	f.Add([]byte{0x4d, 0x4c, 1, byte(INFO)})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		switch p.Type {
		case SCHE, INFO, ACK, CNP:
			var out [ControlSize]byte
			if err := MarshalControl(p, out[:]); err != nil {
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			// Compare the header region only; input may be longer than
			// the 64-byte frame or carry nonzero padding.
			if len(data) >= headerLen && !bytes.Equal(out[:headerLen], data[:headerLen]) {
				t.Fatalf("re-encode changed header:\n in=%x\nout=%x",
					data[:headerLen], out[:headerLen])
			}
		}
	})
}
