package packet

import "testing"

// The lifecycle benchmarks document the pooling contract: a balanced
// acquire/release cycle on any packet constructor must not allocate.

func BenchmarkPacketLifecycleData(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewData(1, uint32(i), 1024, 0)
		p.Release()
	}
}

func BenchmarkPacketLifecycleSche(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewSche(1, uint32(i), 3, 0)
		p.Release()
	}
}

func BenchmarkPacketLifecycleAck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewAck(1, uint32(i), uint32(i+1), 0)
		p.Release()
	}
}

func BenchmarkPacketClone(b *testing.B) {
	p := NewData(1, 7, 1024, 0)
	p.INT.Push(INTHop{QueueBytes: 64, TxBytes: 1 << 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := p.Clone()
		q.Release()
	}
	b.StopTimer()
	p.Release()
}
