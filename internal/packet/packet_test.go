package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"marlin/internal/sim"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TEMP: "TEMP", DATA: "DATA", ACK: "ACK",
		INFO: "INFO", SCHE: "SCHE", CNP: "CNP", Type(99): "UNKNOWN",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagCE | FlagECNEcho
	if !f.Has(FlagCE) || !f.Has(FlagECNEcho) || !f.Has(FlagCE|FlagECNEcho) {
		t.Fatal("Has missed set bits")
	}
	if f.Has(FlagNACK) || f.Has(FlagCE|FlagNACK) {
		t.Fatal("Has matched unset bits")
	}
}

func TestNewDataDefaults(t *testing.T) {
	p := NewData(7, 42, 1024, sim.Time(99))
	if p.Type != DATA || p.Flow != 7 || p.PSN != 42 || p.Size != 1024 {
		t.Fatalf("NewData fields wrong: %+v", p)
	}
	if !p.Flags.Has(FlagECNCapable) {
		t.Fatal("DATA packets must be ECN-capable by default")
	}
}

func TestECTCodepoints(t *testing.T) {
	cases := []struct {
		ect  ECT
		bits Flags
		name string
	}{
		{NotECT, 0, "not-ect"},
		{ECT0, FlagECNCapable, "ect0"},
		{ECT1, FlagECNCapable | FlagECT1, "ect1"},
	}
	for _, tc := range cases {
		if got := tc.ect.Bits(); got != tc.bits {
			t.Errorf("%v.Bits() = %#x, want %#x", tc.ect, got, tc.bits)
		}
		if got := tc.ect.String(); got != tc.name {
			t.Errorf("ECT(%d).String() = %q, want %q", tc.ect, got, tc.name)
		}
		p := NewDataECT(1, 0, 1024, 0, tc.ect)
		if got := p.ECT(); got != tc.ect {
			t.Errorf("NewDataECT(%v).ECT() = %v", tc.ect, got)
		}
		p.Release()
	}
	// A bare FlagECT1 without FlagECNCapable is not a valid codepoint and
	// must decode as Not-ECT, so stray bits cannot smuggle ECN capability.
	p := &Packet{Flags: FlagECT1}
	if p.ECT() != NotECT {
		t.Error("FlagECT1 without FlagECNCapable decoded as ECN-capable")
	}
}

func TestSetECTPreservesOtherFlags(t *testing.T) {
	p := NewDataECT(1, 0, 1024, 0, ECT1)
	p.Flags |= FlagCE | FlagRetransmit
	p.SetECT(ECT0)
	if p.ECT() != ECT0 {
		t.Fatalf("SetECT(ECT0): codepoint = %v", p.ECT())
	}
	if !p.Flags.Has(FlagCE | FlagRetransmit) {
		t.Fatal("SetECT clobbered non-codepoint flags")
	}
	p.SetECT(NotECT)
	if p.Flags&ECTMask != 0 || !p.Flags.Has(FlagCE) {
		t.Fatalf("SetECT(NotECT): flags = %#x", p.Flags)
	}
	p.Release()
}

// TestECTSurvivesCloneAndPool is the satellite round-trip: ECT bits and the
// queue-local EnqAt stamp must ride through Clone, and a Release/Get cycle
// must hand back a packet with no stale codepoint.
func TestECTSurvivesCloneAndPool(t *testing.T) {
	p := NewDataECT(3, 7, 1024, sim.Time(55), ECT1)
	p.EnqAt = sim.Time(1234)
	q := p.Clone()
	if q.ECT() != ECT1 || q.EnqAt != sim.Time(1234) {
		t.Fatalf("Clone lost ECT/EnqAt: ect=%v enqAt=%d", q.ECT(), q.EnqAt)
	}
	p.Release()
	q.Release()
	fresh := Get()
	if fresh.ECT() != NotECT || fresh.EnqAt != 0 || fresh.Flags != 0 {
		t.Fatalf("pooled packet not zeroed: %+v", fresh)
	}
	fresh.Release()
}

// TestECTSurvivesAckTransform mirrors the switch's in-place DATA→ACK rewrite
// (truncate, clear signal flags, keep the codepoint): after masking with
// ECTMask the codepoint must decode unchanged while CE/ECE are gone.
func TestECTSurvivesAckTransform(t *testing.T) {
	for _, ect := range []ECT{NotECT, ECT0, ECT1} {
		d := NewDataECT(1, 9, 1024, 0, ect)
		d.Flags |= FlagCE
		d.Type = ACK
		d.Size = ControlSize
		d.Flags &= ECTMask
		d.Flags |= FlagECNEcho
		if d.ECT() != ect {
			t.Errorf("ACK transform changed codepoint %v -> %v", ect, d.ECT())
		}
		if d.Flags.Has(FlagCE) {
			t.Error("ACK transform kept the CE mark")
		}
		d.Release()
	}
}

func TestECTWireRoundTrip(t *testing.T) {
	for _, ect := range []ECT{NotECT, ECT0, ECT1} {
		in := &Packet{
			Type: ACK, Flow: 5, PSN: 10, Ack: 10,
			Flags: ect.Bits() | FlagECNEcho, Size: ControlSize,
		}
		var buf [ControlSize]byte
		if err := MarshalControl(in, buf[:]); err != nil {
			t.Fatal(err)
		}
		out, err := Unmarshal(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if out.ECT() != ect {
			t.Errorf("wire round trip changed codepoint %v -> %v", ect, out.ECT())
		}
		out.Release()
	}
}

func TestNewScheIs64Bytes(t *testing.T) {
	p := NewSche(3, 10, 5, 0)
	if p.Size != ControlSize {
		t.Fatalf("SCHE size = %d, want %d", p.Size, ControlSize)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewData(1, 2, 1024, 0)
	q := p.Clone()
	q.PSN = 99
	q.Flags |= FlagCE
	if p.PSN != 2 || p.Flags.Has(FlagCE) {
		t.Fatal("Clone aliases original")
	}
}

func TestPayload(t *testing.T) {
	p := NewData(1, 0, 1024, 0)
	if got := p.Payload(); got != 1024-HeaderOverhead {
		t.Fatalf("Payload = %d, want %d", got, 1024-HeaderOverhead)
	}
	ack := &Packet{Type: ACK, Size: ControlSize}
	if ack.Payload() != 0 {
		t.Fatal("control packets must carry no payload")
	}
}

func TestMarshalControlRoundTrip(t *testing.T) {
	in := &Packet{
		Type: INFO, Flow: 0xDEADBEEF, PSN: 123456, Ack: 123455,
		Flags: FlagECNEcho | FlagCE, Port: 11,
		SentAt: sim.Time(987654321), RxTime: sim.Time(987659999),
		Size: ControlSize,
	}
	var buf [ControlSize]byte
	if err := MarshalControl(in, buf[:]); err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestMarshalControlRejectsData(t *testing.T) {
	var buf [ControlSize]byte
	err := MarshalControl(NewData(1, 0, 1024, 0), buf[:])
	if !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestMarshalControlShortBuffer(t *testing.T) {
	err := MarshalControl(NewSche(1, 0, 0, 0), make([]byte, 32))
	if !errors.Is(err, ErrShortPacket) {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 8)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short buffer: err = %v", err)
	}
	bad := make([]byte, ControlSize)
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero magic: err = %v", err)
	}
	var buf [ControlSize]byte
	if err := MarshalControl(NewSche(1, 2, 3, 4), buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[2] = 9 // bad version
	if _, err := Unmarshal(buf[:]); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}
	if err := MarshalControl(NewSche(1, 2, 3, 4), buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[3] = 200 // bad type
	if _, err := Unmarshal(buf[:]); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: err = %v", err)
	}
}

func TestMarshalPadsToZero(t *testing.T) {
	buf := bytes.Repeat([]byte{0xFF}, ControlSize)
	if err := MarshalControl(NewSche(1, 2, 3, 4), buf); err != nil {
		t.Fatal(err)
	}
	for i := headerLen; i < ControlSize; i++ {
		if buf[i] != 0 {
			t.Fatalf("padding byte %d not zeroed", i)
		}
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(flow, psn, ack uint32, flags uint16, port uint16, sent, rx int64, kind uint8) bool {
		types := []Type{SCHE, INFO, ACK, CNP}
		in := &Packet{
			Type: types[int(kind)%len(types)],
			Flow: FlowID(flow), PSN: psn, Ack: ack,
			Flags: Flags(flags), Port: int(port),
			SentAt: sim.Time(uint64(sent)), RxTime: sim.Time(uint64(rx)),
			Size: ControlSize,
		}
		var buf [ControlSize]byte
		if err := MarshalControl(in, buf[:]); err != nil {
			return false
		}
		out, err := Unmarshal(buf[:])
		return err == nil && *out == *in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	p := NewSche(42, 1000, 7, sim.Time(123456))
	var buf [ControlSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := MarshalControl(p, buf[:]); err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}
