// Package controlplane is the operator-facing layer of Marlin (§3.2):
// validating a test specification, deploying it to the switch and FPGA
// models, starting traffic, and reading results back out of "hardware
// registers" — the same role the paper's Python control-plane program
// plays over gRPC and PCIe.
package controlplane

import (
	"fmt"

	"marlin/internal/aqm"
	"marlin/internal/cc"
	"marlin/internal/core"
	"marlin/internal/fabric"
	"marlin/internal/faults"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
	"marlin/internal/workload"
)

// Spec is an operator's test description: "selecting the CC algorithm,
// setting CC parameters, choosing the test ports, and determining the
// number of flows per port" (§3.2).
type Spec struct {
	// Algorithm names a registered CC module (cc.Names()).
	Algorithm string
	// MTU is the DATA frame size (default 1024).
	MTU int
	// PortRate is the per-port line rate (default 100 Gbps).
	PortRate sim.Rate
	// Ports is how many data ports the test uses (default: plan max).
	Ports int
	// FlowsPerPort is the initial concurrent flows per port.
	FlowsPerPort int
	// Receiver forces the receiver logic: "", "tcp", or "roce".
	Receiver string
	// ECNThresholdPkts enables step marking at K packets (0 = off).
	// Mutually exclusive with AQM.
	ECNThresholdPkts int
	// AQM deploys an active queue management discipline on every tested-
	// network egress queue, in aqm.ParseSpec syntax: "red", "pie",
	// "codel:target=5ms,interval=100ms", "pi2", "dualpi2:coupling=2".
	// Empty (or "none") keeps drop-tail, optionally with step ECN.
	AQM string
	// NetQueueBytes sizes each tested-network egress buffer. RoCE tests
	// set it deep (multi-MB) to stand in for PFC losslessness.
	NetQueueBytes int
	// EnableINT stamps in-band telemetry at every hop (HPCC-style CC).
	EnableINT bool
	// EnablePFC makes the tested network lossless via pause frames.
	EnablePFC bool
	// ReceiverOnFPGA moves receiver logic to the FPGA over the reserved
	// port (Figure 2's dashed path).
	ReceiverOnFPGA bool
	// ExtraHops deepens every forward path by this many additional
	// store-and-forward hops.
	ExtraHops int
	// Topology replaces the canonical single-switch tested network with a
	// multi-switch fabric, e.g. "dumbbell", "leafspine:4x2", "fattree:4",
	// "parkinglot:3" (fabric.ParseSpec syntax). Empty keeps the canonical
	// arrangement; mutually exclusive with ExtraHops.
	Topology string
	// LinkDelay is the tested network's per-link one-way delay.
	LinkDelay sim.Duration
	// DCQCNTimeScale compresses DCQCN's recovery timescale for short
	// simulated horizons (1 = paper parameters).
	DCQCNTimeScale float64
	// Faults schedules a deterministic fault plan in faults.ParseSpec
	// syntax, e.g. "linkdown leaf0->spine1 at 2ms for 500us; nicstall at
	// 4ms for 100us". Empty runs fault-free.
	Faults string
	// Pattern layers deterministic traffic patterns over the test in
	// workload.ParseSpec syntax, e.g. "incast:period=5ms,fanin=8,victim=1,
	// size=150; flood:peak=20G,victim=1". Empty runs pattern-free.
	Pattern string
	// Params fully overrides the parameter block when non-nil.
	Params *cc.Params
	// Shards > 0 executes the simulation as a conservative parallel
	// build: the Topology is partitioned along its natural fault domains
	// and up to Shards worker goroutines run the partitions in lookahead-
	// bounded rounds. Results are byte-identical for every Shards >= 1
	// and any GOMAXPROCS; 0 keeps the classic single-engine execution.
	// Requires Topology; incompatible with EnablePFC and ReceiverOnFPGA.
	Shards int
	// Seed drives all randomness.
	Seed uint64
}

// Validate rejects malformed specs before deployment.
func (s *Spec) Validate() error {
	if s.Algorithm == "" {
		return fmt.Errorf("controlplane: no algorithm selected")
	}
	if _, err := cc.New(s.Algorithm); err != nil {
		return err
	}
	if s.FlowsPerPort < 0 {
		return fmt.Errorf("controlplane: negative flows per port")
	}
	switch s.Receiver {
	case "", "tcp", "roce":
	default:
		return fmt.Errorf("controlplane: unknown receiver mode %q", s.Receiver)
	}
	if s.AQM != "" {
		spec, err := aqm.ParseSpec(s.AQM)
		if err != nil {
			return err
		}
		if spec.Enabled() && s.ECNThresholdPkts > 0 {
			return fmt.Errorf("controlplane: AQM %s and ECNThresholdPkts are mutually exclusive marking policies", spec.Kind)
		}
	}
	if s.Topology != "" {
		if _, err := fabric.ParseSpec(s.Topology); err != nil {
			return err
		}
		if s.ExtraHops > 0 {
			return fmt.Errorf("controlplane: ExtraHops applies only to the canonical single-switch network, not topology %q", s.Topology)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("controlplane: negative shard count %d", s.Shards)
	}
	if s.Shards > 0 {
		if s.Topology == "" {
			return fmt.Errorf("controlplane: Shards requires a multi-switch Topology")
		}
		if s.EnablePFC {
			return fmt.Errorf("controlplane: Shards and EnablePFC are incompatible (pause frames would act across partitions)")
		}
		if s.ReceiverOnFPGA {
			return fmt.Errorf("controlplane: Shards and ReceiverOnFPGA are incompatible (the reserved-port path is not partitioned)")
		}
	}
	if s.Faults != "" {
		if _, err := faults.ParseSpec(s.Faults); err != nil {
			return err
		}
	}
	if s.Pattern != "" {
		plan, err := workload.ParseSpec(s.Pattern)
		if err != nil {
			return err
		}
		// An explicit victim must name a real data port. Deployment would
		// reject it too, but only after the tester is half-built; failing
		// here gives the operator the error at validation time. Only
		// checkable when Ports is explicit — 0 defers to the device plan's
		// maximum, which Deploy still enforces.
		if s.Ports > 0 {
			for _, v := range plan.Victims() {
				if v >= s.Ports {
					return fmt.Errorf("controlplane: pattern victim port %d outside [0,%d)", v, s.Ports)
				}
			}
		}
	}
	if s.Params != nil {
		if err := s.Params.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Lint reports configuration smells that deploy fine but tend to produce
// misleading tests — the judgement calls an experienced operator makes
// before burning a testbed run.
func (s *Spec) Lint() []string {
	var warns []string
	mtu := s.MTU
	if mtu == 0 {
		mtu = 1024
	}
	queue := s.NetQueueBytes
	if queue == 0 {
		queue = netem.DefaultQueueCapacity
	}
	if s.ECNThresholdPkts > 0 {
		kBytes := s.ECNThresholdPkts * mtu
		if kBytes >= queue {
			warns = append(warns, fmt.Sprintf(
				"ECN threshold (%d pkts = %d B) is at or beyond the %d B queue: drops will precede marking",
				s.ECNThresholdPkts, kBytes, queue))
		} else if kBytes > queue/2 {
			warns = append(warns, fmt.Sprintf(
				"ECN threshold (%d B) above half the %d B queue leaves little headroom for bursts",
				kBytes, queue))
		}
	}
	if alg, err := cc.New(s.Algorithm); err == nil {
		if alg.Mode() == cc.RateMode && !s.EnablePFC && queue < 2<<20 {
			warns = append(warns, fmt.Sprintf(
				"rate-based %s on a lossy %d B buffer without PFC: expect go-back-N retransmission storms",
				s.Algorithm, queue))
		}
		if s.Algorithm == "hpcc" && !s.EnableINT {
			warns = append(warns, "hpcc without EnableINT receives no telemetry and will not react")
		}
		if s.Algorithm == "dcqcn" && s.DCQCNTimeScale <= 1 {
			warns = append(warns,
				"dcqcn with paper-scale timers recovers over hundreds of ms; set DCQCNTimeScale for short horizons")
		}
	}
	hops := s.ExtraHops + 2
	if s.Topology != "" {
		if spec, err := fabric.ParseSpec(s.Topology); err == nil {
			hops = spec.Diameter()
		}
	}
	if s.EnableINT && hops > packet.MaxINTHops {
		warns = append(warns, fmt.Sprintf(
			"%d-hop paths exceed the %d-entry INT stack: later hops go unstamped",
			hops, packet.MaxINTHops))
	}
	return warns
}

// Deploy validates the spec, generates the device configurations, and
// builds a wired tester — the moment the paper's control plane writes the
// switch tables and FPGA firmware/BRAM.
func (s *Spec) Deploy(eng *sim.Engine) (*core.Tester, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	alg, err := cc.New(s.Algorithm)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Algorithm:      alg,
		MTU:            s.MTU,
		PortRate:       s.PortRate,
		DataPorts:      s.Ports,
		LinkDelay:      s.LinkDelay,
		NetQueueBytes:  s.NetQueueBytes,
		EnableINT:      s.EnableINT,
		EnablePFC:      s.EnablePFC,
		ReceiverOnFPGA: s.ReceiverOnFPGA,
		ExtraHops:      s.ExtraHops,
		Shards:         s.Shards,
		Seed:           s.Seed,
	}
	if s.Topology != "" {
		spec, err := fabric.ParseSpec(s.Topology)
		if err != nil {
			return nil, err
		}
		cfg.Topology = spec
	}
	if s.Params != nil {
		cfg.Params = *s.Params
	} else {
		mtu := s.MTU
		if mtu == 0 {
			mtu = 1024
		}
		rate := s.PortRate
		if rate == 0 {
			rate = 100 * sim.Gbps
		}
		cfg.Params = cc.DefaultParams(rate, mtu)
	}
	if s.DCQCNTimeScale > 1 {
		cfg.Params.ScaleDCQCNTime(s.DCQCNTimeScale)
	}
	if s.ECNThresholdPkts > 0 {
		mtu := cfg.Params.MTU
		cfg.ECN = netem.StepMarking(s.ECNThresholdPkts, mtu)
	}
	if s.AQM != "" {
		spec, err := aqm.ParseSpec(s.AQM)
		if err != nil {
			return nil, err
		}
		cfg.AQM = spec
	}
	switch s.Receiver {
	case "tcp":
		cfg.Receiver = tofino.TCPReceiver
		cfg.ReceiverSet = true
	case "roce":
		cfg.Receiver = tofino.RoCEReceiver
		cfg.ReceiverSet = true
	}
	tester, err := core.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	if s.Faults != "" {
		plan, err := faults.ParseSpec(s.Faults)
		if err != nil {
			return nil, err
		}
		if _, err := tester.InstallFaults(plan); err != nil {
			return nil, err
		}
	}
	if s.Pattern != "" {
		plan, err := workload.ParseSpec(s.Pattern)
		if err != nil {
			return nil, err
		}
		if _, err := tester.InstallPatterns(plan); err != nil {
			return nil, err
		}
	}
	return tester, nil
}

// Snapshot is a readout of every control-plane-visible register, as
// gathered by reading the switch and FPGA models.
type Snapshot struct {
	At       sim.Time
	Switch   tofino.Counters
	Ports    []tofino.PortCounters
	NIC      fpga.Stats
	FCTCount int
	// Network is per-switch, per-port telemetry of the tested network:
	// one entry for the canonical single switch, one per fabric switch
	// under a multi-switch Topology.
	Network []netem.Stats
	// Faults is per-fault recovery telemetry when a fault plan is
	// installed (nil otherwise).
	Faults []faults.Recovery
	// Overload is the victim-port burst telemetry when a pattern plan is
	// installed (nil otherwise).
	Overload *measure.OverloadReport
}

// ReadRegisters collects a Snapshot from a running tester.
func ReadRegisters(t *core.Tester) Snapshot {
	snap := Snapshot{
		At:       t.Eng.Now(),
		Switch:   t.PipelineCounters(),
		NIC:      t.NICStats(),
		FCTCount: t.FCTs.Len(),
		Network:  t.NetworkStats(),
		Faults:   t.FaultRecoveries(),
	}
	for i := 0; i < t.Plan().DataPorts; i++ {
		snap.Ports = append(snap.Ports, t.PipelinePortCounters(i))
	}
	if mon := t.OverloadMonitor(); mon != nil {
		r := mon.Report()
		snap.Overload = &r
	}
	return snap
}

// LossReport summarises where packets were lost — the distinction between
// real network drops and tester-internal false losses matters because
// §4.2 requires the latter to be zero in correct operation.
type LossReport struct {
	// NetworkDrops are tested-network queue drops (congestion).
	NetworkDrops uint64
	// FalseLosses are switch register-queue overflows (tester bugs or
	// deliberate Challenge 1 ablations).
	FalseLosses uint64
	// RXDrops are FPGA RX-FIFO overflows.
	RXDrops uint64
	// Misroutes are packets a switch routing function sent to a
	// nonexistent port — a routing bug, counted instead of crashing.
	Misroutes uint64
	// InjectedDrops are hook-injected losses (netem.Script entries and
	// lossburst faults) — deliberate, not congestion.
	InjectedDrops uint64
	// DownDrops are carrier losses on administratively-down links
	// (linkdown faults).
	DownDrops uint64
}

// ReadLosses collects a LossReport.
func ReadLosses(t *core.Tester) LossReport {
	var r LossReport
	for _, sw := range t.Switches() {
		st := sw.Stats()
		for _, ps := range st.Ports {
			r.NetworkDrops += ps.Drops
			r.InjectedDrops += ps.InjectedDrops
			r.DownDrops += ps.DownDrops
		}
		r.Misroutes += st.Misroutes
	}
	for i := 0; i < t.Plan().DataPorts; i++ {
		ls := t.TxLink(i).Stats()
		r.InjectedDrops += ls.InjectedDrops
		r.DownDrops += ls.DownDrops
		r.NetworkDrops += t.TxLink(i).Queue().Stats().Drops
	}
	if t.Fab != nil {
		// Host uplinks into the fabric are standalone links, not switch
		// ports; faults can target them too.
		for i := 0; i < t.Plan().DataPorts; i++ {
			ls := t.Fab.HostUplink(i).Stats()
			r.InjectedDrops += ls.InjectedDrops
			r.DownDrops += ls.DownDrops
		}
	}
	r.FalseLosses = t.PipelineCounters().ScheDrops
	r.RXDrops = t.NICStats().InfoDrops
	return r
}
