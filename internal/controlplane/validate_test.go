package controlplane

import "testing"

// TestValidateErrorPaths pins the exact error text of every mutual-exclusion
// and range rule Validate enforces. Exact strings matter here: operators
// grep logs for them, and a refactor that merges two rules into one vague
// message would silently degrade the diagnostics without failing any
// looser Contains-style check.
func TestValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // exact Error() text; "" means the spec must validate
	}{
		{
			name: "shards with PFC",
			spec: Spec{Algorithm: "dctcp", Topology: "dumbbell", Shards: 2, EnablePFC: true},
			want: "controlplane: Shards and EnablePFC are incompatible (pause frames would act across partitions)",
		},
		{
			name: "shards with FPGA receiver",
			spec: Spec{Algorithm: "dctcp", Topology: "dumbbell", Shards: 2, ReceiverOnFPGA: true},
			want: "controlplane: Shards and ReceiverOnFPGA are incompatible (the reserved-port path is not partitioned)",
		},
		{
			name: "shards without topology",
			spec: Spec{Algorithm: "dctcp", Shards: 2},
			want: "controlplane: Shards requires a multi-switch Topology",
		},
		{
			name: "negative shards",
			spec: Spec{Algorithm: "dctcp", Topology: "dumbbell", Shards: -3},
			want: "controlplane: negative shard count -3",
		},
		{
			name: "AQM with step ECN",
			spec: Spec{Algorithm: "dctcp", AQM: "dualpi2", ECNThresholdPkts: 65},
			want: "controlplane: AQM dualpi2 and ECNThresholdPkts are mutually exclusive marking policies",
		},
		{
			name: "AQM kind named in the error",
			spec: Spec{Algorithm: "dctcp", AQM: "red:min=30000,max=90000", ECNThresholdPkts: 65},
			want: "controlplane: AQM red and ECNThresholdPkts are mutually exclusive marking policies",
		},
		{
			name: "pattern victim beyond port count",
			spec: Spec{Algorithm: "dctcp", Ports: 4, Pattern: "incast:period=1ms,fanin=2,size=50,victim=4"},
			want: "controlplane: pattern victim port 4 outside [0,4)",
		},
		{
			name: "pattern victim in later clause",
			spec: Spec{Algorithm: "dctcp", Ports: 4, Pattern: "incast:period=1ms,fanin=2,size=50,victim=1;flood:peak=20G,victim=9"},
			want: "controlplane: pattern victim port 9 outside [0,4)",
		},
		{
			name: "pattern victim at boundary is valid",
			spec: Spec{Algorithm: "dctcp", Ports: 4, Pattern: "incast:period=1ms,fanin=2,size=50,victim=3"},
		},
		{
			name: "pattern victim unchecked without explicit ports",
			// Ports == 0 defers sizing to the device plan, so Validate
			// cannot know the upper bound; Deploy enforces it instead.
			spec: Spec{Algorithm: "dctcp", Pattern: "incast:period=1ms,fanin=2,size=50,victim=40"},
		},
		{
			name: "shards on a multi-switch topology is valid",
			spec: Spec{Algorithm: "dctcp", Topology: "leafspine:2x2", Shards: 4},
		},
		{
			name: "step ECN without AQM is valid",
			spec: Spec{Algorithm: "dctcp", ECNThresholdPkts: 65},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("Validate() = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}
