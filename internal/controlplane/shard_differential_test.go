package controlplane

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// shardDigest deploys the spec, drives a deterministic workload, and
// serializes every observable the paper's methodology cares about: the full
// register snapshot (switch counters, NIC stats, per-port counters, network
// telemetry including per-band AQM marks/drops, fault recoveries, overload
// windows), the loss report, and the flow completion records.
func shardDigest(t *testing.T, spec Spec) string {
	t.Helper()
	eng := sim.NewEngine()
	tr, err := spec.Deploy(eng)
	if err != nil {
		t.Fatalf("Deploy(%+v): %v", spec, err)
	}
	ports := tr.Plan().DataPorts
	var id packet.FlowID
	for p := 0; p < ports; p++ {
		rx := (p + 1) % ports
		// One open-ended flow per port keeps queues loaded through the
		// whole window (and any fault); one finite flow exercises the
		// completion path so FCT recording is part of the digest.
		if err := tr.StartFlow(id, p, rx, 0); err != nil {
			t.Fatal(err)
		}
		id++
		if err := tr.StartFlow(id, p, rx, 400); err != nil {
			t.Fatal(err)
		}
		id++
	}
	tr.Run(sim.Time(2 * sim.Millisecond))
	out := struct {
		Snapshot Snapshot
		Losses   LossReport
		FCTs     []measure.FCTRecord
	}{ReadRegisters(tr), ReadLosses(tr), tr.FCTs.Records()}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func withGOMAXPROCS(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestShardedMatchesSingle is the differential determinism gate of the
// parallel event core: over {dumbbell, leafspine, fattree} x {drop-tail,
// DualPI2} x {no faults, linkdown plan} x {closed-loop, incast storm}, the
// full observable digest must be byte-identical between Shards=1 and
// Shards in {2,4}, at GOMAXPROCS 1 and 8.
func TestShardedMatchesSingle(t *testing.T) {
	topos := []struct {
		topo     string
		ports    int
		linkdown string
	}{
		{"dumbbell", 4, "linkdown left->right at 1ms for 200us"},
		{"leafspine:2x2", 4, "linkdown leaf0->spine1 at 1ms for 200us"},
		{"fattree:4", 8, "linkdown edge0->agg0 at 1ms for 200us"},
	}
	aqms := []string{"", "dualpi2:target=25us,tupdate=100us,step=50us"}
	patterns := []string{"", "incast:period=1ms,fanin=3,victim=1,size=80"}
	for _, tc := range topos {
		for ai, aqmSpec := range aqms {
			for fi, faultSpec := range []string{"", tc.linkdown} {
				for pi, patternSpec := range patterns {
					if testing.Short() && ai+fi+pi > 1 {
						continue // -short: no-extras plus one single-extra combo each
					}
					spec := Spec{
						Algorithm:        "dctcp",
						Ports:            tc.ports,
						ECNThresholdPkts: 65,
						Topology:         tc.topo,
						AQM:              aqmSpec,
						Faults:           faultSpec,
						Pattern:          patternSpec,
						DCQCNTimeScale:   30,
						Seed:             1,
					}
					if aqmSpec != "" {
						spec.ECNThresholdPkts = 0
					}
					name := fmt.Sprintf("%s/aqm=%d/fault=%d/pattern=%d", tc.topo, ai, fi, pi)
					t.Run(name, func(t *testing.T) {
						spec := spec
						spec.Shards = 1
						base := shardDigest(t, spec)
						spec.Shards = 2
						if got := shardDigest(t, spec); got != base {
							t.Error("shards=2 digest differs from shards=1")
						}
						spec.Shards = 4
						for _, gmp := range []int{1, 8} {
							withGOMAXPROCS(gmp, func() {
								if got := shardDigest(t, spec); got != base {
									t.Errorf("shards=4 GOMAXPROCS=%d digest differs from shards=1", gmp)
								}
							})
						}
					})
				}
			}
		}
	}
}

// TestShardedSpecValidation pins the configuration surface: sharding needs
// a topology and refuses the cross-partition coupling PFC would need.
func TestShardedSpecValidation(t *testing.T) {
	bad := []Spec{
		{Algorithm: "dctcp", Ports: 4, Shards: -1, Seed: 1},
		{Algorithm: "dctcp", Ports: 4, Shards: 2, Seed: 1},                                             // no topology
		{Algorithm: "dctcp", Ports: 4, Shards: 2, Topology: "dumbbell", EnablePFC: true, Seed: 1},      // PFC couples partitions
		{Algorithm: "dctcp", Ports: 4, Shards: 2, Topology: "dumbbell", ReceiverOnFPGA: true, Seed: 1}, // FPGA receiver is unsharded
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	ok := Spec{Algorithm: "dctcp", Ports: 4, Shards: 2, Topology: "dumbbell", Seed: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid sharded spec rejected: %v", err)
	}
}
