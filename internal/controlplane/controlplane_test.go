package controlplane

import (
	"strings"
	"testing"

	"marlin/internal/cc"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Algorithm: "dctcp"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},
		{Algorithm: "nope"},
		{Algorithm: "reno", FlowsPerPort: -1},
		{Algorithm: "reno", Receiver: "quic"},
		{Algorithm: "reno", AQM: "bogus"},
		{Algorithm: "reno", AQM: "pie:target=0s"},
		{Algorithm: "dctcp", AQM: "pi2", ECNThresholdPkts: 65},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	badParams := cc.DefaultParams(100*sim.Gbps, 1024)
	badParams.MTU = 1
	if err := (&Spec{Algorithm: "reno", Params: &badParams}).Validate(); err == nil {
		t.Error("bad params accepted")
	}
}

func TestDeployDefaults(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dctcp"}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Plan().MTU != 1024 || tr.Plan().DataPorts != 12 {
		t.Fatalf("plan = %+v", tr.Plan())
	}
}

func TestDeployReceiverOverride(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dcqcn", Receiver: "tcp"}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config().Receiver != tofino.TCPReceiver {
		t.Fatal("receiver override ignored")
	}
}

func TestDeployECNAndRun(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{
		Algorithm:        "dctcp",
		Ports:            3,
		ECNThresholdPkts: 65,
		Seed:             9,
	}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	// Two senders into one receiver port: marking must fire.
	tr.StartFlow(0, 0, 2, 0)
	tr.StartFlow(1, 1, 2, 0)
	tr.Run(sim.Time(2 * sim.Millisecond))
	if tr.Net.Port(2).Queue().Stats().ECNMarks == 0 {
		t.Fatal("deployed ECN config never marked")
	}
	snap := ReadRegisters(tr)
	if snap.Switch.DataTx == 0 || snap.NIC.ScheTx == 0 || len(snap.Ports) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	losses := ReadLosses(tr)
	if losses.FalseLosses != 0 {
		t.Fatalf("false losses in correct operation: %+v", losses)
	}
}

func TestDeployAQMAndRun(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{
		Algorithm: "dctcp",
		Ports:     3,
		// Targets scaled to this fabric: a 256 KB queue at 100 Gbps holds
		// at most ~20 us of sojourn, so the RFC's ms-scale defaults would
		// never engage here.
		AQM:  "dualpi2:target=5us,tupdate=25us,step=10us",
		Seed: 9,
	}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	tr.StartFlow(0, 0, 2, 0)
	tr.StartFlow(1, 1, 2, 0)
	tr.Run(sim.Time(2 * sim.Millisecond))
	as := tr.Net.Port(2).Queue().AQMStats()
	if as == nil || as.Discipline != "dualpi2" {
		t.Fatalf("AQM not deployed on the victim egress: %+v", as)
	}
	if as.Marks == 0 {
		t.Fatal("congested DualPI2 queue never marked")
	}
	// DCTCP prefers ECT(1), so its DATA rides the L4S band.
	if as.BandDeqPackets[1] == 0 {
		t.Fatalf("no L4S-band traffic from an ECT(1) control: %+v", as.BandDeqPackets)
	}
	// The discipline's counters surface through the network snapshot.
	snap := ReadRegisters(tr)
	found := false
	for _, sw := range snap.Network {
		for _, ps := range sw.Ports {
			if ps.AQM != nil && ps.AQM.Marks > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("AQM stats missing from the control-plane snapshot")
	}
}

func TestDeployDCQCNTimeScale(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dcqcn", DCQCNTimeScale: 30, Ports: 2}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.NIC.Params()
	if p.RateTimer >= sim.Micros(300) {
		t.Fatalf("rate timer not scaled: %v", p.RateTimer)
	}
	if p.RateAI <= 40*sim.Mbps {
		t.Fatalf("AI step not scaled: %v", p.RateAI)
	}
}

func TestLintWarnings(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"ecn beyond queue", Spec{Algorithm: "dctcp", ECNThresholdPkts: 300, NetQueueBytes: 256 << 10}, "drops will precede marking"},
		{"ecn above half", Spec{Algorithm: "dctcp", ECNThresholdPkts: 200, NetQueueBytes: 256 << 10}, "little headroom"},
		{"lossy roce", Spec{Algorithm: "dcqcn", DCQCNTimeScale: 10}, "go-back-N"},
		{"hpcc no int", Spec{Algorithm: "hpcc", EnableINT: false}, "no telemetry"},
		{"dcqcn paper timers", Spec{Algorithm: "dcqcn", EnablePFC: true, NetQueueBytes: 8 << 20}, "DCQCNTimeScale"},
		{"int stack overflow", Spec{Algorithm: "hpcc", EnableINT: true, ExtraHops: 5}, "INT stack"},
	}
	for _, c := range cases {
		warns := c.spec.Lint()
		found := false
		for _, w := range warns {
			if strings.Contains(w, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: warnings %v missing %q", c.name, warns, c.want)
		}
	}
}

func TestLintCleanSpec(t *testing.T) {
	clean := Spec{
		Algorithm:        "dctcp",
		ECNThresholdPkts: 65,
		NetQueueBytes:    1 << 20,
	}
	if warns := clean.Lint(); len(warns) != 0 {
		t.Fatalf("clean spec warned: %v", warns)
	}
}

func TestSpecTopology(t *testing.T) {
	bad := []Spec{
		{Algorithm: "dctcp", Topology: "mesh"},
		{Algorithm: "dctcp", Topology: "leafspine:0x2"},
		{Algorithm: "dctcp", Topology: "dumbbell", ExtraHops: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad topology spec %d validated", i)
		}
	}
	eng := sim.NewEngine()
	tr, err := (&Spec{
		Algorithm: "dctcp",
		Ports:     4,
		Topology:  "leafspine:2x2",
	}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fab == nil {
		t.Fatal("Deploy with Topology did not build a fabric")
	}
	if err := tr.StartFlow(0, 0, 1, 50); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(20 * sim.Millisecond))
	if tr.FCTs.Len() != 1 {
		t.Fatal("flow did not complete over leaf-spine")
	}
	snap := ReadRegisters(tr)
	if len(snap.Network) != 4 {
		t.Fatalf("snapshot lists %d fabric switches, want 4", len(snap.Network))
	}
	if r := ReadLosses(tr); r.Misroutes != 0 {
		t.Fatalf("unexpected misroutes: %+v", r)
	}
}

func TestSnapshotNetworkTelemetry(t *testing.T) {
	// The canonical single switch shows up in Snapshot.Network too, with
	// per-port forwarded counts.
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dctcp", Ports: 2}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 1, 40); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(10 * sim.Millisecond))
	snap := ReadRegisters(tr)
	if len(snap.Network) != 1 {
		t.Fatalf("canonical snapshot lists %d switches, want 1", len(snap.Network))
	}
	var tx uint64
	for _, ps := range snap.Network[0].Ports {
		tx += ps.TxPackets
	}
	if tx == 0 {
		t.Fatal("no per-port TX telemetry on the canonical switch")
	}
}

func TestLintTopologyINTDepth(t *testing.T) {
	s := Spec{Algorithm: "hpcc", EnableINT: true, Topology: "fattree:4"}
	found := false
	for _, w := range s.Lint() {
		if strings.Contains(w, "INT stack") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fat-tree depth beyond the INT stack not flagged: %v", s.Lint())
	}
}

func TestDeployPattern(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{
		Algorithm: "dctcp",
		Ports:     4,
		Pattern:   "incast:period=1ms,fanin=6,victim=2,size=50; flood:peak=20G,victim=2,period=1ms,duty=0.5",
		Seed:      9,
	}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	// A well-behaved background flow shares the fabric with the patterns.
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(5 * sim.Millisecond))
	drv := tr.PatternDriver()
	if drv == nil || drv.Started() == 0 {
		t.Fatal("pattern driver idle")
	}
	if drv.Injected() == 0 {
		t.Fatal("flood injected nothing")
	}
	// Flood frames really traversed the tested network to the victim.
	if tr.ForwardLink(2).Stats().TxPackets == 0 {
		t.Fatal("victim forward link carried nothing")
	}
	snap := ReadRegisters(tr)
	if snap.Overload == nil {
		t.Fatal("snapshot missing overload telemetry")
	}
	if snap.Overload.Samples == 0 || snap.Overload.BurstAbsorption <= 0 || snap.Overload.BurstAbsorption > 1 {
		t.Fatalf("overload report = %+v", snap.Overload)
	}
	// The background flow still makes progress under attack.
	if tr.GoodputBits(0) == 0 {
		t.Fatal("background flow starved completely")
	}
	// Patterns never allocate into the user flow range.
	if drv.FlowBase() < 4096 {
		t.Fatalf("flow base = %d", drv.FlowBase())
	}
}

func TestDeployPatternRejects(t *testing.T) {
	eng := sim.NewEngine()
	if err := (&Spec{Algorithm: "dctcp", Pattern: "bogus:x=1"}).Validate(); err == nil {
		t.Fatal("bad pattern spec validated")
	}
	// Victim beyond the port count passes Validate (no tester shape yet)
	// but must fail at Deploy.
	if _, err := (&Spec{
		Algorithm: "dctcp",
		Ports:     2,
		Pattern:   "flood:peak=1G,victim=5",
	}).Deploy(eng); err == nil {
		t.Fatal("out-of-range victim deployed")
	}
}
