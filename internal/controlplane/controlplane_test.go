package controlplane

import (
	"strings"
	"testing"

	"marlin/internal/cc"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Algorithm: "dctcp"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},
		{Algorithm: "nope"},
		{Algorithm: "reno", FlowsPerPort: -1},
		{Algorithm: "reno", Receiver: "quic"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	badParams := cc.DefaultParams(100*sim.Gbps, 1024)
	badParams.MTU = 1
	if err := (&Spec{Algorithm: "reno", Params: &badParams}).Validate(); err == nil {
		t.Error("bad params accepted")
	}
}

func TestDeployDefaults(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dctcp"}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Plan().MTU != 1024 || tr.Plan().DataPorts != 12 {
		t.Fatalf("plan = %+v", tr.Plan())
	}
}

func TestDeployReceiverOverride(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dcqcn", Receiver: "tcp"}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config().Receiver != tofino.TCPReceiver {
		t.Fatal("receiver override ignored")
	}
}

func TestDeployECNAndRun(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{
		Algorithm:        "dctcp",
		Ports:            3,
		ECNThresholdPkts: 65,
		Seed:             9,
	}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	// Two senders into one receiver port: marking must fire.
	tr.StartFlow(0, 0, 2, 0)
	tr.StartFlow(1, 1, 2, 0)
	tr.Run(sim.Time(2 * sim.Millisecond))
	if tr.Net.Port(2).Queue().Stats().ECNMarks == 0 {
		t.Fatal("deployed ECN config never marked")
	}
	snap := ReadRegisters(tr)
	if snap.Switch.DataTx == 0 || snap.NIC.ScheTx == 0 || len(snap.Ports) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	losses := ReadLosses(tr)
	if losses.FalseLosses != 0 {
		t.Fatalf("false losses in correct operation: %+v", losses)
	}
}

func TestDeployDCQCNTimeScale(t *testing.T) {
	eng := sim.NewEngine()
	tr, err := (&Spec{Algorithm: "dcqcn", DCQCNTimeScale: 30, Ports: 2}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.NIC.Params()
	if p.RateTimer >= sim.Micros(300) {
		t.Fatalf("rate timer not scaled: %v", p.RateTimer)
	}
	if p.RateAI <= 40*sim.Mbps {
		t.Fatalf("AI step not scaled: %v", p.RateAI)
	}
}

func TestLintWarnings(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"ecn beyond queue", Spec{Algorithm: "dctcp", ECNThresholdPkts: 300, NetQueueBytes: 256 << 10}, "drops will precede marking"},
		{"ecn above half", Spec{Algorithm: "dctcp", ECNThresholdPkts: 200, NetQueueBytes: 256 << 10}, "little headroom"},
		{"lossy roce", Spec{Algorithm: "dcqcn", DCQCNTimeScale: 10}, "go-back-N"},
		{"hpcc no int", Spec{Algorithm: "hpcc", EnableINT: false}, "no telemetry"},
		{"dcqcn paper timers", Spec{Algorithm: "dcqcn", EnablePFC: true, NetQueueBytes: 8 << 20}, "DCQCNTimeScale"},
		{"int stack overflow", Spec{Algorithm: "hpcc", EnableINT: true, ExtraHops: 5}, "INT stack"},
	}
	for _, c := range cases {
		warns := c.spec.Lint()
		found := false
		for _, w := range warns {
			if strings.Contains(w, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: warnings %v missing %q", c.name, warns, c.want)
		}
	}
}

func TestLintCleanSpec(t *testing.T) {
	clean := Spec{
		Algorithm:        "dctcp",
		ECNThresholdPkts: 65,
		NetQueueBytes:    1 << 20,
	}
	if warns := clean.Lint(); len(warns) != 0 {
		t.Fatalf("clean spec warned: %v", warns)
	}
}
