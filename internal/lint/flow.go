package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the shared dataflow core: a forward abstract interpreter over
// one function body. The walker owns control flow — statement ordering,
// branch cloning and joining, loop approximation, scope exit — and delegates
// the meaning of atomic operations to a check-specific domain via the
// transfers interface. poolflow and simunits are both built on it; the
// transfer functions themselves are unit-tested independently of any check
// in flow_test.go.
//
// The interpretation is deliberately modest, matching what the checks can
// report without false positives:
//
//   - Branches are analyzed on cloned environments and joined afterwards;
//     a branch whose last statement terminates (return, panic, continue,
//     break, goto) does not flow into the join, so "release on the error
//     path, keep using on the main path" stays precise.
//   - Loop bodies are interpreted once and joined with the zero-iteration
//     environment, the same approximation the block-local poolmisuse check
//     uses. Loop-carried facts are out of scope by design.
//   - Nested function literals are separate scopes. The walker does not
//     descend; it instead reports every environment variable the literal
//     captures to the domain, which must account for the unknown timing of
//     the closure (poolflow, for instance, stops tracking captured packets).

// env maps in-scope variables to a domain's abstract state. Absent keys are
// the domain's bottom ("nothing known").
type env[S comparable] map[types.Object]S

func (e env[S]) clone() env[S] {
	c := make(env[S], len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// transfers is the set of transfer functions a dataflow check plugs into the
// walker. Hooks observe and mutate the environment; the walker never
// interprets states itself.
type transfers[S comparable] interface {
	// join reconciles the states one variable reached on two merging paths.
	join(a, b S) S
	// assign transfers `lhs := rhs` (define=true) or `lhs = rhs`. rhs is nil
	// for declarations without initializers and for extra variables of a
	// short tuple assignment. The walker has already visited rhs (uses,
	// calls) when assign runs.
	assign(e env[S], lhs, rhs ast.Expr, define bool)
	// call transfers one call expression, after its arguments were visited.
	call(e env[S], call *ast.CallExpr)
	// ret transfers a return statement, after its results were visited.
	ret(e env[S], ret *ast.ReturnStmt)
	// rng transfers a range statement header: binds the key/value variables
	// before the body is interpreted.
	rng(e env[S], rs *ast.RangeStmt)
	// use observes one identifier read (not an assignment target).
	use(e env[S], id *ast.Ident)
	// captured observes a variable captured by a nested function literal,
	// whose execution time is unknown to this analysis.
	captured(e env[S], obj types.Object)
	// exitScope observes variables going out of scope in their final state:
	// at the end of the block that declared them, or at function exit.
	exitScope(e env[S], objs []types.Object)
}

// flowWalker interprets one function body over a transfers domain.
type flowWalker[S comparable] struct {
	info *types.Info
	tr   transfers[S]
}

// walk interprets the whole body with the given initial environment
// (typically the function's parameters) and runs exitScope for everything
// still live at every function exit.
func (w *flowWalker[S]) walk(body *ast.BlockStmt, e env[S]) {
	initial := liveVars(e)
	out, terminated := w.block(body.List, e)
	if !terminated {
		w.tr.exitScope(out, initial)
	}
}

// block interprets one statement list on e, returning the outgoing
// environment and whether the list definitely terminates the enclosing
// function body's fall-through (ends in return/panic/continue/break/goto).
// Variables declared directly in the list leave scope at its end.
func (w *flowWalker[S]) block(stmts []ast.Stmt, e env[S]) (env[S], bool) {
	var declared []types.Object
	for _, st := range stmts {
		declared = append(declared, w.declaredBy(st)...)
		var terminated bool
		e, terminated = w.stmt(st, e)
		if terminated {
			// exitScope already ran inside the terminating statement for a
			// return; for break/continue the variables stay live at the
			// loop's join, which the caller owns, so nothing to close here.
			return e, true
		}
	}
	if len(declared) > 0 {
		w.tr.exitScope(e, declared)
		for _, obj := range declared {
			delete(e, obj)
		}
	}
	return e, false
}

// declaredBy lists the variables a statement introduces into the enclosing
// block's scope.
func (w *flowWalker[S]) declaredBy(st ast.Stmt) []types.Object {
	var objs []types.Object
	collect := func(id *ast.Ident) {
		if obj := w.info.Defs[id]; obj != nil {
			objs = append(objs, obj)
		}
	}
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					collect(id)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						collect(id)
					}
				}
			}
		}
	}
	return objs
}

// stmt interprets one statement, returning the outgoing environment and
// whether control definitely does not fall through.
func (w *flowWalker[S]) stmt(st ast.Stmt, e env[S]) (env[S], bool) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, e)
		}
		// Visit non-ident assignment targets (s.f = x reads s) before the
		// domain sees the binding.
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				w.expr(lhs, e)
			}
		}
		define := s.Tok == token.DEFINE
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0] // tuple assignment from one call
			}
			w.tr.assign(e, lhs, rhs, define)
		}
		return e, false

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return e, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v, e)
			}
			for i, id := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				w.tr.assign(e, id, rhs, true)
			}
		}
		return e, false

	case *ast.ExprStmt:
		w.expr(s.X, e)
		// A call of the panic builtin terminates the path. The path dies
		// without an exitScope: a panicking path owes no cleanup, and
		// summaries should not count it as a function exit.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					return e, true
				}
			}
		}
		return e, false

	case *ast.SendStmt:
		w.expr(s.Chan, e)
		w.expr(s.Value, e)
		return e, false

	case *ast.IncDecStmt:
		w.expr(s.X, e)
		return e, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, e)
		}
		w.tr.ret(e, s)
		w.tr.exitScope(e, liveVars(e))
		return e, true

	case *ast.BranchStmt: // break, continue, goto, fallthrough
		return e, s.Tok != token.FALLTHROUGH

	case *ast.BlockStmt:
		return w.joinBranches(e, func() []branchOut[S] {
			out, term := w.block(s.List, e.clone())
			return []branchOut[S]{{out, term}}
		})

	case *ast.IfStmt:
		if s.Init != nil {
			e, _ = w.stmt(s.Init, e)
		}
		w.expr(s.Cond, e)
		return w.joinBranches(e, func() []branchOut[S] {
			thenOut, thenTerm := w.block(s.Body.List, e.clone())
			outs := []branchOut[S]{{thenOut, thenTerm}}
			if s.Else != nil {
				elseOut, elseTerm := w.stmt(s.Else, e.clone())
				outs = append(outs, branchOut[S]{elseOut, elseTerm})
			} else {
				outs = append(outs, branchOut[S]{e, false})
			}
			return outs
		})

	case *ast.ForStmt:
		if s.Init != nil {
			e, _ = w.stmt(s.Init, e)
		}
		if s.Cond != nil {
			w.expr(s.Cond, e)
		}
		return w.joinBranches(e, func() []branchOut[S] {
			bodyOut, _ := w.block(s.Body.List, e.clone())
			if s.Post != nil {
				bodyOut, _ = w.stmt(s.Post, bodyOut)
			}
			// The loop may run zero times: join the body's effect with the
			// unchanged environment. A terminated body (return inside the
			// loop) still reaches the join because iteration zero may not
			// have entered the loop at all.
			return []branchOut[S]{{bodyOut, false}, {e, false}}
		})

	case *ast.RangeStmt:
		w.expr(s.X, e)
		return w.joinBranches(e, func() []branchOut[S] {
			body := e.clone()
			w.tr.rng(body, s)
			bodyOut, _ := w.block(s.Body.List, body)
			// Unbind the iteration variables before the join: they are out
			// of scope after the loop.
			var iterVars []types.Object
			for _, ie := range []ast.Expr{s.Key, s.Value} {
				if id, ok := ie.(*ast.Ident); ok && id.Name != "_" {
					if obj := w.info.Defs[id]; obj != nil {
						iterVars = append(iterVars, obj)
					}
				}
			}
			if len(iterVars) > 0 {
				w.tr.exitScope(bodyOut, iterVars)
				for _, obj := range iterVars {
					delete(bodyOut, obj)
				}
			}
			return []branchOut[S]{{bodyOut, false}, {e, false}}
		})

	case *ast.SwitchStmt:
		if s.Init != nil {
			e, _ = w.stmt(s.Init, e)
		}
		if s.Tag != nil {
			w.expr(s.Tag, e)
		}
		return w.switchClauses(e, s.Body, func(cc *ast.CaseClause) {
			for _, x := range cc.List {
				w.expr(x, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e, _ = w.stmt(s.Init, e)
		}
		if as, ok := s.Assign.(*ast.ExprStmt); ok {
			w.expr(as.X, e)
		} else if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				w.expr(rhs, e)
			}
		}
		return w.switchClauses(e, s.Body, nil)

	case *ast.SelectStmt:
		return w.joinBranches(e, func() []branchOut[S] {
			var outs []branchOut[S]
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					body := e.clone()
					if cc.Comm != nil {
						body, _ = w.stmt(cc.Comm, body)
					}
					out, term := w.block(cc.Body, body)
					outs = append(outs, branchOut[S]{out, term})
				}
			}
			return outs
		})

	case *ast.GoStmt:
		w.expr(s.Call, e)
		return e, false

	case *ast.DeferStmt:
		w.expr(s.Call, e)
		return e, false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, e)

	default:
		return e, false
	}
}

// branchOut is one control-flow branch's outgoing state.
type branchOut[S comparable] struct {
	env        env[S]
	terminated bool
}

// joinBranches runs branches (which must clone e before mutating) and joins
// every non-terminated outcome into a single successor environment. If every
// branch terminates, so does the statement.
func (w *flowWalker[S]) joinBranches(e env[S], run func() []branchOut[S]) (env[S], bool) {
	outs := run()
	var joined env[S]
	for _, b := range outs {
		if b.terminated {
			continue
		}
		if joined == nil {
			joined = b.env
			continue
		}
		joined = w.joinEnv(joined, b.env)
	}
	if joined == nil {
		return e, true
	}
	return joined, false
}

// joinEnv merges two environments variable-wise with the domain's join.
// A variable absent on one side joins with the domain's zero value.
func (w *flowWalker[S]) joinEnv(a, b env[S]) env[S] {
	var zero S
	out := make(env[S], len(a))
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = zero
		}
		out[k] = w.tr.join(av, bv)
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			out[k] = w.tr.join(zero, bv)
		}
	}
	return out
}

// switchClauses interprets each case body on a cloned environment and joins
// the survivors. Without a default clause the zero-case fall-through also
// reaches the join.
func (w *flowWalker[S]) switchClauses(e env[S], body *ast.BlockStmt, pre func(*ast.CaseClause)) (env[S], bool) {
	return w.joinBranches(e, func() []branchOut[S] {
		var outs []branchOut[S]
		hasDefault := false
		for _, c := range body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if pre != nil {
				pre(cc)
			}
			if cc.List == nil {
				hasDefault = true
			}
			out, term := w.block(cc.Body, e.clone())
			outs = append(outs, branchOut[S]{out, term})
		}
		if !hasDefault {
			outs = append(outs, branchOut[S]{e, false})
		}
		return outs
	})
}

// expr visits one expression: identifier reads reach use, calls reach call
// (after their operands), and nested function literals reach captured for
// every environment variable they reference.
func (w *flowWalker[S]) expr(x ast.Expr, e env[S]) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			w.captures(v, e)
			return false
		case *ast.Ident:
			w.tr.use(e, v)
		case *ast.CallExpr:
			// Visit operands first so use/call fire innermost-out, then let
			// the domain transfer the call itself.
			for _, a := range v.Args {
				w.expr(a, e)
			}
			w.expr(v.Fun, e)
			w.tr.call(e, v)
			return false
		case *ast.KeyValueExpr:
			// Struct literal keys are field names, not variable reads.
			w.expr(v.Value, e)
			return false
		}
		return true
	})
}

// captures reports every environment variable referenced inside a nested
// function literal.
func (w *flowWalker[S]) captures(lit *ast.FuncLit, e env[S]) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		if _, tracked := e[obj]; tracked {
			seen[obj] = true
			w.tr.captured(e, obj)
		}
		return true
	})
}

// liveVars lists the environment's tracked variables in declaration order,
// so everything derived from the environment (exit-scope reports, summary
// facts) is independent of map iteration order.
func liveVars[S comparable](e env[S]) []types.Object {
	objs := make([]types.Object, 0, len(e))
	for obj := range e {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}
