package lint

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes type-checked packages (including the standard
// library, loaded from source) across all tests in this package.
var sharedLoader = struct {
	once sync.Once
	l    *Loader
	err  error
}{}

func loader(t *testing.T) *Loader {
	t.Helper()
	sharedLoader.once.Do(func() {
		sharedLoader.l, sharedLoader.err = NewLoader(".")
	})
	if sharedLoader.err != nil {
		t.Fatalf("NewLoader: %v", sharedLoader.err)
	}
	return sharedLoader.l
}

// runFixture analyzes one testdata package with the named checks and
// renders each diagnostic as "file.go:line check" for golden comparison.
func runFixture(t *testing.T, fixture, checkNames string) []string {
	t.Helper()
	pkg, err := loader(t).LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	checks, err := SelectChecks(checkNames)
	if err != nil {
		t.Fatalf("SelectChecks(%q): %v", checkNames, err)
	}
	var got []string
	for _, d := range Run([]*Package{pkg}, checks) {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check))
	}
	return got
}

func TestFixtureDiagnostics(t *testing.T) {
	cases := []struct {
		fixture string
		checks  string
		want    []string
	}{
		{"wallclock_bad", "wallclock", []string{
			"wallclock_bad.go:12 wallclock", // time.Now
			"wallclock_bad.go:13 wallclock", // time.Sleep
			"wallclock_bad.go:14 wallclock", // rand.Int63
			"wallclock_bad.go:19 wallclock", // time.Since
		}},
		{"wallclock_clean", "wallclock", nil},
		{"maporder_bad", "maporder", []string{
			"maporder_bad.go:14 maporder", // unsorted append
			"maporder_bad.go:23 maporder", // float accumulation
			"maporder_bad.go:31 maporder", // fmt.Println
			"maporder_bad.go:38 maporder", // event scheduling
		}},
		{"maporder_clean", "maporder", nil},
		{"rngsource_bad", "rngsource", []string{
			"aqm_bad.go:7 rngsource",        // math/rand import in a discipline
			"aqm_bad.go:18 rngsource",       // rand.New for a queue's mark stream
			"aqm_bad.go:18 rngsource",       // rand.NewSource seeded off-config
			"pattern_bad.go:6 rngsource",    // math/rand/v2 import
			"pattern_bad.go:11 rngsource",   // randv2.New
			"pattern_bad.go:11 rngsource",   // randv2.NewPCG
			"rngsource_bad.go:5 rngsource",  // math/rand import
			"rngsource_bad.go:10 rngsource", // rand.New
			"rngsource_bad.go:10 rngsource", // rand.NewSource
		}},
		{"rngsource_clean", "rngsource", nil},
		{"simtime_bad", "simtime", []string{
			"simtime_bad.go:10 simtime", // Deadline time.Time
			"simtime_bad.go:11 simtime", // RTO time.Duration
			"simtime_bad.go:15 simtime", // Wait param
			"simtime_bad.go:15 simtime", // Wait result
		}},
		{"simtime_clean", "simtime", nil},
		{"poolmisuse_bad", "poolmisuse", []string{
			"poolmisuse_bad.go:10 poolmisuse", // field read after Release
			"poolmisuse_bad.go:16 poolmisuse", // double Release
			"poolmisuse_bad.go:22 poolmisuse", // forwarded after Release
			"poolmisuse_bad.go:29 poolmisuse", // use after Release in branch
		}},
		{"poolmisuse_clean", "poolmisuse", nil},
		// The acceptance case for the interprocedural analysis: every
		// violation in poolflow_bad crosses a function boundary, so the
		// block-local poolmisuse check provably finds nothing there...
		{"poolflow_bad", "poolmisuse", nil},
		// ...while poolflow's callee summaries catch all of them.
		{"poolflow_bad", "poolflow", []string{
			"poolflow_bad.go:21 poolflow", // use after consuming callee
			"poolflow_bad.go:28 poolflow", // double Release across calls
			"poolflow_bad.go:41 poolflow", // use after Receive handoff
			"poolflow_bad.go:46 poolflow", // leak on early return
		}},
		{"poolflow_clean", "poolflow", nil},
		{"simunits_bad", "simunits", []string{
			"aqm_bad.go:16 simunits",      // wall-clock sojourn into sim.Duration
			"aqm_bad.go:22 simunits",      // wall sojourn compared to pico target
			"simunits_bad.go:15 simunits", // nanoseconds into sim.Time
			"simunits_bad.go:20 simunits", // picoseconds into time.Duration
			"simunits_bad.go:25 simunits", // picos compared against nanos
			"simunits_bad.go:37 simunits", // nanos via helper return summary
			"simunits_bad.go:43 simunits", // seconds into sim.Duration
		}},
		{"simunits_clean", "simunits", nil},
		{"detflow_bad", "detflow", []string{
			"detflow_bad.go:10 detflow", // goroutine in model code
			"detflow_bad.go:15 detflow", // select in model code
			"detflow_bad.go:40 detflow", // goroutine reachable from callback
			"detflow_bad.go:48 detflow", // last-writer-wins map flow
			"detflow_bad.go:58 detflow", // plain-assign float accumulation
		}},
		{"detflow_clean", "detflow", nil},
		// The fork-join exemption boundary: every goroutine here touches
		// shared state without a join that orders its writes...
		{"shardsync_bad", "detflow", []string{
			"shardsync_bad.go:13 detflow", // free-running goroutine
			"shardsync_bad.go:22 detflow", // Done with no Wait after the spawn
			"shardsync_bad.go:33 detflow", // Wait precedes the spawn
		}},
		// ...while the shard runner's barrier shape is accepted.
		{"shardsync_clean", "detflow", nil},
		{"directive_bad", "wallclock", []string{
			"directive_bad.go:11 wallclock", // unjustified allow must not suppress
			"directive_bad.go:11 directive", // allow without justification
			"directive_bad.go:14 directive", // unknown check name
			"directive_bad.go:17 directive", // allow naming no check
		}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := runFixture(t, tc.fixture, tc.checks)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v", got, tc.want)
			}
		})
	}
}

// TestRepoIsClean is the determinism gate on the tree itself: every package
// of the module, all checks, zero diagnostics. It exercises the host-side
// exemptions and every //marlin:allow directive in the repo for real.
func TestRepoIsClean(t *testing.T) {
	l := loader(t)
	dirs, err := ExpandPatterns(l.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected to load the whole module, got only %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, AllChecks()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestHostSide(t *testing.T) {
	for path, want := range map[string]bool{
		"marlin/internal/fleet":    true,
		"marlin/cmd/marlinctl":     true,
		"marlin/examples/incast":   true,
		"marlin/internal/lint":     true,
		"marlin":                   false,
		"marlin/internal/sim":      false,
		"marlin/internal/scenario": false,
		"marlin/internal/fpga":     false,
	} {
		if got := HostSide(path); got != want {
			t.Errorf("HostSide(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	l := loader(t)
	dirs, err := ExpandPatterns(l.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	for _, d := range dirs {
		if filepath.Base(filepath.Dir(d)) == "src" && filepath.Base(filepath.Dir(filepath.Dir(d))) == "testdata" {
			t.Errorf("pattern expansion descended into testdata: %s", d)
		}
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := SelectChecks("")
	if err != nil || len(all) != 8 {
		t.Fatalf("SelectChecks(\"\") = %d checks, err %v; want 8, nil", len(all), err)
	}
	two, err := SelectChecks("wallclock,simtime")
	if err != nil || len(two) != 2 {
		t.Fatalf("SelectChecks subset: got %d checks, err %v", len(two), err)
	}
	if _, err := SelectChecks("bogus"); err == nil {
		t.Fatal("SelectChecks(\"bogus\") did not error")
	}
	// A "-name" entry removes the check from the selection.
	without, err := SelectChecks("-poolflow")
	if err != nil || len(without) != 7 {
		t.Fatalf("SelectChecks(\"-poolflow\") = %d checks, err %v; want 7, nil", len(without), err)
	}
	for _, c := range without {
		if c.Name == "poolflow" {
			t.Fatal("SelectChecks(\"-poolflow\") still contains poolflow")
		}
	}
	mixed, err := SelectChecks("wallclock,simtime,-simtime")
	if err != nil || len(mixed) != 1 || mixed[0].Name != "wallclock" {
		t.Fatalf("SelectChecks mixed add/remove: got %v, err %v", mixed, err)
	}
	if _, err := SelectChecks("-bogus"); err == nil {
		t.Fatal("SelectChecks(\"-bogus\") did not error")
	}
}

// TestDetflowReachability pins the call-graph annotation: a goroutine inside
// a helper reachable from a scheduled callback carries the reachability
// note, and one in an unconnected function does not.
func TestDetflowReachability(t *testing.T) {
	pkg, err := loader(t).LoadDir(filepath.Join("testdata", "src", "detflow_bad"))
	if err != nil {
		t.Fatalf("loading detflow_bad: %v", err)
	}
	checks, err := SelectChecks("detflow")
	if err != nil {
		t.Fatal(err)
	}
	byLine := make(map[int]string)
	for _, d := range Run([]*Package{pkg}, checks) {
		byLine[d.Pos.Line] = d.Msg
	}
	const note = "reachable from an engine callback"
	if msg := byLine[40]; !strings.Contains(msg, note) {
		t.Errorf("goroutine in scheduled helper lacks reachability note: %q", msg)
	}
	if msg := byLine[10]; strings.Contains(msg, note) {
		t.Errorf("goroutine in unconnected function has spurious reachability note: %q", msg)
	}
}
