package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detflowCheck is the determinism dataflow analysis. The engine replays
// byte-identically only if event handlers are pure functions of sim state, so
// three things are findings in model packages:
//
//   - a `go` statement or `select` statement: host-scheduler interleaving is
//     nondeterministic, and any of it reachable from an engine callback
//     (anything scheduled via Schedule/ScheduleAt/ScheduleArg*/NewTicker, any
//     sim.Func or sim.ArgFunc value, any Receive method) poisons replay. The
//     diagnostic says when the enclosing function is reachable from such a
//     root, via the program call graph. One shape is exempt: a fork-join
//     barrier, where the spawned function literal defers Done on a
//     sync.WaitGroup and the enclosing function Waits on that same WaitGroup
//     after the spawn. The join publishes every write the goroutine made
//     before the spawner continues, so nothing the host scheduler chose can
//     leak into replayed state — the shard runner's round primitive.
//
//   - last-writer-wins flows out of a map range: a plain `=` assignment
//     inside a range-over-map whose right-hand side depends on the iteration
//     variables and whose target outlives the loop keeps whichever entry the
//     runtime happened to visit last (the shape of the jain-metric bug fixed
//     in PR 2, generalized from a pattern match to a dataflow condition).
//
//   - float accumulation in map order spelled as a plain assignment
//     (`sum = sum + v`), which maporder's compound-assign pattern does not
//     see; float addition is not associative, so the sum varies run to run.
var detflowCheck = &Check{
	Name:      "detflow",
	Doc:       "no goroutines, selects, or map-iteration-order dataflow reaching replayed state in model packages",
	ModelOnly: true,
	Run:       runDetFlow,
}

func runDetFlow(pass *Pass) {
	roots := engineCallbackRoots(pass.Prog)
	reach := pass.Prog.reachableFrom(roots)
	for _, fb := range funcBodies(pass.Pkg) {
		var encl *types.Func
		if fb.decl != nil {
			encl, _ = pass.Pkg.Info.Defs[fb.decl.Name].(*types.Func)
		}
		inspectOwn(fb.body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if barrierJoined(pass.Pkg.Info, s, fb.body) {
					break
				}
				pass.Reportf(s.Go, "model code spawns a goroutine%s; host-scheduler interleaving breaks byte-identical replay — schedule an event instead", reachNote(reach, encl))
			case *ast.SelectStmt:
				pass.Reportf(s.Select, "model code selects over channels%s; ready-case choice is nondeterministic — drive state from engine events instead", reachNote(reach, encl))
			case *ast.RangeStmt:
				if t := pass.Pkg.Info.TypeOf(s.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeFlow(pass, s, fb.body)
					}
				}
			}
			return true
		})
	}
}

// reachNote annotates a finding when the enclosing function is reachable from
// an engine-callback root.
func reachNote(reach map[*types.Func]bool, encl *types.Func) string {
	if encl != nil && reach[encl] {
		return " reachable from an engine callback"
	}
	return ""
}

// engineCallbackRoots collects the functions the engine can invoke as event
// handlers: function values passed to Schedule/ScheduleAt/ScheduleArg/
// ScheduleArgAt/NewTicker, any declared value of type sim.Func or sim.ArgFunc,
// and every method named Receive (the fabric's packet-delivery callback).
func engineCallbackRoots(prog *Program) []*types.Func {
	seen := make(map[*types.Func]bool)
	var roots []*types.Func
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			roots = append(roots, fn)
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, fi := range prog.byPkg[pkg] {
			fn := fi.Obj
			if fn.Name() == "Receive" && fn.Type().(*types.Signature).Recv() != nil {
				add(fn)
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Schedule", "ScheduleAt", "ScheduleArg", "ScheduleArgAt", "NewTicker":
						for _, arg := range call.Args {
							add(funcValueOf(info, arg))
						}
					}
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "NewTicker" {
					for _, arg := range call.Args {
						add(funcValueOf(info, arg))
					}
				}
				// Any argument whose static type is sim.Func/sim.ArgFunc is a
				// handler regardless of the API it flows through.
				for _, arg := range call.Args {
					if isSimCallbackType(info.TypeOf(arg)) {
						add(funcValueOf(info, arg))
					}
				}
				return true
			})
		}
	}
	return roots
}

// funcValueOf resolves an expression used as a function value — a function
// identifier or a method expression/value — to its declaration object.
func funcValueOf(info *types.Info, x ast.Expr) *types.Func {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[v].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[v.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isSimCallbackType reports whether t is sim.Func or sim.ArgFunc (or an alias
// of either).
func isSimCallbackType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/sim") {
		return false
	}
	return obj.Name() == "Func" || obj.Name() == "ArgFunc"
}

// barrierJoined reports whether the go statement is a fork-join barrier: the
// spawned function literal signals a sync.WaitGroup through a deferred Done,
// and the spawning function Waits on the same WaitGroup after the spawn. The
// Wait is a happens-before edge that publishes all the goroutine's writes
// back to the spawner, so the goroutine cannot outlive the statement sequence
// that forked it and no scheduling choice escapes into replayed state.
// Free-running goroutines — no Done, no Wait, or a Wait that precedes the
// spawn — stay findings.
func barrierJoined(info *types.Info, gs *ast.GoStmt, funcBody *ast.BlockStmt) bool {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	wg := deferredDoneTarget(info, lit.Body)
	if wg == nil {
		return false
	}
	return waitedAfter(info, funcBody, gs.End(), wg)
}

// deferredDoneTarget finds a `defer wg.Done()` in the goroutine body and
// returns the WaitGroup object it signals, or nil. The defer matters: a plain
// Done can be skipped by an early return or a panic, leaving the barrier
// counting forever.
func deferredDoneTarget(info *types.Info, body *ast.BlockStmt) types.Object {
	var wg types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if obj := waitGroupCallTarget(info, ds.Call, "Done"); obj != nil {
			wg = obj
		}
		return true
	})
	return wg
}

// waitedAfter reports whether wg.Wait() is called after pos inside the
// spawning function's own statements (not a nested literal's).
func waitedAfter(info *types.Info, funcBody *ast.BlockStmt, pos token.Pos, wg types.Object) bool {
	found := false
	inspectOwn(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() > pos {
			if waitGroupCallTarget(info, call, "Wait") == wg {
				found = true
			}
		}
		return !found
	})
	return found
}

// waitGroupCallTarget resolves a call of the form x.NAME() where x is a
// sync.WaitGroup (or a pointer to one) to x's object, or nil.
func waitGroupCallTarget(info *types.Info, call *ast.CallExpr, name string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	obj := rootObj(info, sel.X)
	if obj == nil || !isWaitGroup(obj.Type()) {
		return nil
	}
	return obj
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// checkMapRangeFlow reports iteration-order-dependent dataflow escaping a map
// range: last-writer-wins plain assignments and plain-assign float
// accumulation.
func checkMapRangeFlow(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	iterVars := make(map[types.Object]bool)
	for _, x := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	if len(iterVars) == 0 {
		return
	}
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyObj = info.Defs[id]
	}
	// Only direct children of the range body qualify: an assignment guarded
	// by an if/switch is conditional, not last-writer-wins.
	for _, stmt := range rs.Body.List {
		s, ok := stmt.(*ast.AssignStmt)
		if !ok || s.Tok != token.ASSIGN {
			continue
		}
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			rhs := s.Rhs[i]
			if !mentionsAny(info, rhs, iterVars) {
				continue
			}
			obj := rootObj(info, lhs)
			if obj == nil || iterVars[obj] || declaredIn(obj, rs.Body) {
				continue
			}
			if indexedBy(info, lhs, keyObj) {
				continue
			}
			if mentionsAny(info, rhs, map[types.Object]bool{obj: true}) {
				// Self-referential update: an accumulation, not
				// last-writer-wins. Float accumulation is order-sensitive
				// (addition is not associative); anything else — notably the
				// collect-then-sort idiom keys = append(keys, k) — is
				// maporder's domain, which knows the sortedAfter exemption.
				if isFloatType(info.TypeOf(lhs)) {
					pass.Reportf(s.TokPos, "range over map: %s accumulates a float in map iteration order via plain assignment; float addition is not associative — iterate sorted keys", obj.Name())
				}
				continue
			}
			if usedAfter(info, funcBody, rs.End(), obj) {
				pass.Reportf(s.TokPos, "range over map: %s keeps the last-visited entry's value and is read after the loop; iteration order varies per run — select the entry by a deterministic rule", obj.Name())
			}
		}
	}
}

// mentionsAny reports whether the expression references any of the objects.
func mentionsAny(info *types.Info, x ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// declaredIn reports whether the object's declaration lies inside the node.
func declaredIn(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// isFloatType reports whether t's underlying type is a float.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// usedAfter reports whether obj is referenced after pos within the function
// body.
func usedAfter(info *types.Info, funcBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Pos() > pos && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
