package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderCheck flags range statements over maps whose body does
// order-sensitive work. Go randomizes map iteration order per iteration, so
// appending to a slice, accumulating a float (float addition is not
// associative), writing output, or scheduling events from inside such a loop
// makes the result vary run to run even with a fixed seed.
//
// The canonical fix — collect the keys, sort them, iterate the sorted
// slice — is recognized: a loop that only builds a key slice which is later
// passed to sort.* or slices.Sort* in the same function is clean. Writes
// indexed by the loop's own key variable (sums[k] += v) touch a distinct
// accumulator per key and are also clean.
var maporderCheck = &Check{
	Name: "maporder",
	Doc:  "no order-sensitive work (appends, float sums, writes, event scheduling) inside map iteration",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		checkFuncMapRanges(pass, fb.body)
	}
}

// checkFuncMapRanges finds the map ranges belonging directly to this
// function body (nested function literals are visited on their own) and
// analyzes each.
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := pass.Pkg.Info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		analyzeMapRange(pass, rs, body)
	}
}

// analyzeMapRange reports the first order-sensitive operation in the body of
// a map range. The diagnostic is anchored at the range statement so one
// directive covers the loop.
func analyzeMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyObj = info.Defs[id]
		if keyObj == nil {
			keyObj = info.Uses[id]
		}
	}
	report := func(format string, args ...any) {
		pass.Reportf(rs.For, "range over map: "+format, args...)
	}
	done := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
					continue
				}
				tgt := rootObj(info, call.Args[0])
				if tgt == nil || !sortedAfter(info, funcBody, rs.End(), tgt) {
					done = true
					report("appends to %s in map iteration order; collect the keys, sort them, then iterate", nameOf(tgt))
					return false
				}
			}
			if isOrderSensitiveFloatAssign(info, s, keyObj) {
				done = true
				report("accumulates a float in map iteration order; float addition is not associative — iterate sorted keys")
				return false
			}
		case *ast.CallExpr:
			if what := orderedSideEffect(info, s); what != "" {
				done = true
				report("%s in map iteration order; iterate sorted keys", what)
				return false
			}
		}
		return true
	})
}

// isOrderSensitiveFloatAssign reports whether s compound-assigns into a
// float accumulator that is shared across iterations (i.e. not indexed by
// the loop's key variable).
func isOrderSensitiveFloatAssign(info *types.Info, s *ast.AssignStmt, keyObj types.Object) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	lhs := s.Lhs[0]
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	return !indexedBy(info, lhs, keyObj)
}

// indexedBy reports whether expr is an index expression whose index mentions
// obj (the loop key), making the write per-key rather than shared.
func indexedBy(info *types.Info, expr ast.Expr, obj types.Object) bool {
	ix, ok := expr.(*ast.IndexExpr)
	if !ok || obj == nil {
		return false
	}
	found := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// orderedSideEffect classifies calls whose observable effect depends on call
// order: formatted or raw writes to a stream, and event scheduling.
func orderedSideEffect(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt":
				switch name {
				case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
					return "writes output via fmt." + name
				}
			case "io":
				if name == "WriteString" {
					return "writes output via io.WriteString"
				}
			}
			return ""
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "writes output via ." + name
	case "Schedule", "ScheduleAt":
		return "schedules events via ." + name
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort call (sort.* or
// slices.Sort*) positioned after pos in the function body — the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		arg := call.Args[0]
		// Unwrap a sort.Sort(byX(s)) style conversion or wrapper.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if rootObj(info, arg) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootObj resolves the base object an expression reads or writes: the
// innermost identifier of selector/index/paren/star chains.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok {
				return sel.Obj()
			}
			return info.Uses[e.Sel]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// nameOf renders an object name for diagnostics.
func nameOf(obj types.Object) string {
	if obj == nil {
		return "a slice"
	}
	return obj.Name()
}
