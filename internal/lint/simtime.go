package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simtimeCheck enforces the unit discipline at model-package API
// boundaries: exported signatures and exported type declarations carry
// sim.Time/sim.Duration (integer picoseconds on the simulated clock), not
// time.Time/time.Duration (host wall time). Mixing the two compiles fine —
// both are int64 underneath — which is exactly why a machine check is
// needed: a time.Duration smuggled into a model API is a silent
// nanosecond/picosecond unit error and a wall-clock dependency waiting to
// happen. The designated conversion boundary (sim.Time.Std, sim.FromStd)
// carries a justified //marlin:allow simtime directive.
var simtimeCheck = &Check{
	Name:      "simtime",
	Doc:       "exported model APIs use sim.Time/sim.Duration, not time.Time/time.Duration",
	ModelOnly: true,
	Run:       runSimTime,
}

// simEquivalent maps the offending time package name to its sim counterpart.
var simEquivalent = map[string]string{
	"Time":     "sim.Time",
	"Duration": "sim.Duration",
}

func runSimTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				reportTimeTypes(pass, d.Type, "exported signature of "+d.Name.Name)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					reportTimeTypes(pass, ts.Type, "exported type "+ts.Name.Name)
				}
			}
		}
	}
}

// reportTimeTypes flags every time.Time / time.Duration reference in the
// given type expression (a signature or a type declaration body). Function
// bodies are never inspected: converting at the boundary is the point.
func reportTimeTypes(pass *Pass, root ast.Node, where string) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		if want, isUnit := simEquivalent[sel.Sel.Name]; isUnit {
			pass.Reportf(sel.Pos(),
				"%s uses time.%s; model APIs must use %s (picoseconds on the simulated clock)",
				where, sel.Sel.Name, want)
		}
		return true
	})
}
