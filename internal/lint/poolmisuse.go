package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolmisuseCheck flags block-local use-after-Release on pooled packets.
// Release returns the *packet.Packet to a sync.Pool, so any later touch —
// a field read, a second Release, handing the pointer to another node —
// races with whoever draws it from the pool next. The analysis is
// deliberately local: it tracks a released variable through the statements
// of the same block (and its nested blocks), stops at reassignment, and
// treats each branch independently, so the common consumer patterns
// (release-and-return on an error path, release as the last statement)
// stay clean while the obvious bugs are caught in the function where they
// are written.
var poolmisuseCheck = &Check{
	Name:      "poolmisuse",
	Doc:       "a pooled packet must not be used after Release in the same function",
	ModelOnly: true,
	Run:       runPoolMisuse,
}

func runPoolMisuse(pass *Pass) {
	// funcBodies lists declarations and closures separately: each closure is
	// a fresh scope, since whether it runs before or after an enclosing
	// Release is a scheduling question this local analysis does not answer.
	for _, fb := range funcBodies(pass.Pkg) {
		scanStmts(pass, fb.body.List, map[types.Object]bool{})
	}
}

// scanStmts walks one statement list in order, threading the set of
// released packet variables through it.
func scanStmts(pass *Pass, stmts []ast.Stmt, released map[types.Object]bool) {
	for _, st := range stmts {
		scanStmt(pass, st, released)
	}
}

// scanStmt dispatches one statement. Compound statements recurse into
// their bodies with a copy of the released set: a Release on one branch
// must not poison the code after the branch, which may be the not-dropped
// path that still owns the packet.
func scanStmt(pass *Pass, st ast.Stmt, released map[types.Object]bool) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		scanStmts(pass, s.List, cloneSet(released))
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, released)
		}
		checkLeaf(pass, s.Cond, released)
		scanStmts(pass, s.Body.List, cloneSet(released))
		if s.Else != nil {
			scanStmt(pass, s.Else, released)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, released)
		}
		if s.Cond != nil {
			checkLeaf(pass, s.Cond, released)
		}
		scanStmts(pass, s.Body.List, cloneSet(released))
	case *ast.RangeStmt:
		checkLeaf(pass, s.X, released)
		scanStmts(pass, s.Body.List, cloneSet(released))
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, released)
		}
		if s.Tag != nil {
			checkLeaf(pass, s.Tag, released)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					checkLeaf(pass, e, released)
				}
				scanStmts(pass, cc.Body, cloneSet(released))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, released)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(pass, cc.Body, cloneSet(released))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanStmts(pass, cc.Body, cloneSet(released))
			}
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, released)
	default:
		checkLeaf(pass, st, released)
	}
}

// checkLeaf handles one non-compound statement (or condition expression):
// report uses of already-released variables, clear tracking on
// reassignment, then record any x.Release() calls.
func checkLeaf(pass *Pass, n ast.Node, released map[types.Object]bool) {
	// Plain `x = ...` re-binds x; the left-hand ident is not a read.
	reassigned := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				reassigned[id] = true
			}
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok || reassigned[id] {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj != nil && released[obj] {
			pass.Reportf(id.Pos(),
				"%s used after Release returned it to the packet pool; Clone before Release to retain it",
				id.Name)
			delete(released, obj) // one report per release site
		}
		return true
	})
	for id := range reassigned {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			delete(released, obj)
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Pkg.Info.Uses[id]; obj != nil && isPacketPtr(obj.Type()) {
			released[obj] = true
		}
		return true
	})
}

// isPacketPtr reports whether t is *marlin/internal/packet.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "marlin/internal/packet"
}

func cloneSet(m map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
