package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// rngsourceCheck keeps stochastic draws in model packages on seeded
// sim.Rand streams. A math/rand import in model code either touches the
// process-global source (nondeterministic across runs) or builds a
// generator whose seed doesn't flow from the experiment configuration;
// either way the run stops being reproducible from its seed. Host-side
// packages are exempt — shuffling job order in the fleet is fine.
var rngsourceCheck = &Check{
	Name:      "rngsource",
	Doc:       "model packages draw randomness from a seeded sim.Rand, never math/rand",
	ModelOnly: true,
	Run:       runRngSource,
}

func runRngSource(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"model package imports %s; stochastic draws must come from a seeded sim.Rand (internal/sim)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"construct model RNGs with sim.NewRand(seed) so the stream derives from the run seed, not rand.%s",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
