package lint

import (
	"go/ast"
	"go/types"
)

// Program is the shared analysis context for one marlinvet run: every loaded
// package plus the cross-package facts the dataflow checks consume — a
// function index, a static call graph, and lazily computed per-function
// summaries. It is built once per Run, so adding a check costs one more walk
// over already-parsed syntax, never another parse or type-check.
type Program struct {
	Pkgs []*Package

	// funcs indexes every function and method declaration in the analyzed
	// packages by its types.Func object.
	funcs map[*types.Func]*FuncInfo
	// byPkg lists each package's declarations in file order, the order the
	// per-function checks visit them.
	byPkg map[*Package][]*FuncInfo
	// callees holds the static call graph: for each declared function, the
	// declared functions it calls directly (idents and selector calls that
	// resolve to a *types.Func; interface calls resolve to the interface
	// method object).
	callees map[*types.Func][]*types.Func

	// poolSums memoizes poolflow's per-function ownership summaries.
	poolSums map[*types.Func]*poolSummary
	// unitSums memoizes simunits' per-function return-unit summaries.
	unitSums map[*types.Func]unitKind
}

// FuncInfo is one function or method declaration with its home package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Body returns the declaration's body, which may be nil (declared without a
// body, e.g. implemented in assembly).
func (fi *FuncInfo) Body() *ast.BlockStmt { return fi.Decl.Body }

// newProgram indexes the packages' function declarations and the static call
// graph between them.
func newProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		funcs:    make(map[*types.Func]*FuncInfo),
		byPkg:    make(map[*Package][]*FuncInfo),
		callees:  make(map[*types.Func][]*types.Func),
		poolSums: make(map[*types.Func]*poolSummary),
		unitSums: make(map[*types.Func]unitKind),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				prog.funcs[obj] = fi
				prog.byPkg[pkg] = append(prog.byPkg[pkg], fi)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, fi := range prog.byPkg[pkg] {
			if fi.Decl.Body == nil {
				continue
			}
			obj := fi.Obj
			seen := make(map[*types.Func]bool)
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(fi.Pkg.Info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					prog.callees[obj] = append(prog.callees[obj], callee)
				}
				return true
			})
		}
	}
	return prog
}

// FuncsOf returns the package's function declarations in file order.
func (prog *Program) FuncsOf(pkg *Package) []*FuncInfo { return prog.byPkg[pkg] }

// FuncDeclOf returns the declaration of obj if it is declared in one of the
// analyzed packages, nil otherwise (e.g. a standard-library function).
func (prog *Program) FuncDeclOf(obj *types.Func) *FuncInfo { return prog.funcs[obj] }

// reachableFrom computes the set of declared functions reachable from the
// given roots along static call edges, roots included.
func (prog *Program) reachableFrom(roots []*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var work []*types.Func
	for _, r := range roots {
		if !reach[r] {
			reach[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range prog.callees[fn] {
			target := callee
			// An interface method call reaches every analyzed implementation
			// with the same name; resolving full method sets is overkill for
			// a diagnostic annotation, so the edge stays on the interface
			// object and concrete bodies are matched by name at need.
			if !reach[target] {
				reach[target] = true
				work = append(work, target)
			}
		}
	}
	return reach
}

// calleeFunc resolves the function object a call expression invokes: a
// package-level function, a method (concrete or interface), or nil for
// builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcBody is one analyzable body: a declared function/method or a function
// literal, visited exactly once each by the per-function checks.
type funcBody struct {
	// decl is the enclosing declaration (set for both forms; for a literal it
	// is the function the literal appears in, nil for literals in package-level
	// initializers).
	decl *ast.FuncDecl
	// lit is non-nil when the body belongs to a function literal.
	lit  *ast.FuncLit
	body *ast.BlockStmt
}

// funcBodies lists every function body in the package — declarations first,
// then literals in source order — so checks that analyze one body at a time
// visit each exactly once and can treat nested literals as fresh scopes.
func funcBodies(pkg *Package) []funcBody {
	var out []funcBody
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			if fd != nil && fd.Body != nil {
				out = append(out, funcBody{decl: fd, body: fd.Body})
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{decl: fd, lit: fl, body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

// inspectOwn walks the nodes of one function body without descending into
// nested function literals, which are separate funcBody entries.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
