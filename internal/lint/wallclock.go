package lint

import (
	"go/ast"
	"go/types"
)

// wallclockCheck flags reads of the host clock and draws from the global
// math/rand source. Both make a run depend on state outside the
// configuration seed, which breaks the "pure function of inputs and seed"
// contract the whole evaluation rests on. Host-side code (progress ETAs,
// wall-time reporting) suppresses with a justified //marlin:allow wallclock.
var wallclockCheck = &Check{
	Name: "wallclock",
	Doc:  "no time.Now/Since/Sleep or global math/rand outside justified host-side use",
	Run:  runWallclock,
}

// wallClockTimeFuncs are the package-level time functions that read or wait
// on the host clock. Types (time.Duration) and pure constants are fine here;
// the simtime check polices types in model APIs.
var wallClockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors build explicit generators rather than touching the global
// source; in model packages the rngsource check flags them via the import.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock; a run must be a pure function of inputs and seed — derive time from the engine (sim.Time)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); isFunc && !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the global math/rand source; draw from a seeded sim.Rand instead",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
