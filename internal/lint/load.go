package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "marlin/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test sources, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using only
// the standard library: module-local imports are resolved from source by the
// loader itself, everything else (the standard library) goes through
// go/importer's source compiler. Loading is cached per import path, so a
// whole-tree run type-checks each dependency once.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader locates the module root at or above dir and returns a loader
// rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// findModule walks upward from dir to the nearest go.mod and parses its
// module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer so the type-checker can resolve the
// dependencies of whatever package is being loaded.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads the package in dir. The directory must live inside the
// module; its import path is derived from the module root, so packages under
// testdata (invisible to the go tool) load like any other.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load parses and type-checks the package with the given module-local import
// path, memoizing the result.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go sources of dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ExpandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") relative to root into the sorted list of directories that hold
// non-test Go sources. testdata, vendor, and hidden directories are skipped,
// matching the go tool's convention.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, p
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoSource(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go source in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoSource(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoSource reports whether dir directly contains a non-test Go file.
func hasGoSource(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
