package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolflowCheck is the interprocedural ownership analysis for pooled
// packets. It subsumes what block-local poolmisuse cannot see: a packet
// consumed by a callee (its own Release, a Receive handoff, or a helper
// whose summary says it consumes its argument) and then touched by the
// caller; a double Release split across functions; and a pooled packet that
// a function obtains from the pool and then abandons — never Released,
// returned, stored, captured, or handed to another owner — which is a
// permanent leak of pool capacity.
//
// The analysis runs on the shared dataflow core (flow.go). Each function
// with *packet.Packet parameters gets a summary computed on demand from its
// own body:
//
//   - consumes: the parameter is Released (directly or transitively) on
//     every path — callers lose ownership at the call.
//   - borrows: the parameter is only read — callers keep ownership.
//   - unknown: anything else (stored, returned, captured, mixed paths) —
//     callers conservatively stop tracking.
//
// Two rules need no summary because they are the codebase's contract:
// passing a packet to any method named Receive transfers ownership
// (DESIGN.md "Packet pooling"), and (*Packet).Release consumes its
// receiver.
var poolflowCheck = &Check{
	Name:      "poolflow",
	Doc:       "interprocedural packet ownership: use-after-consume, double Release, and pool leaks",
	ModelOnly: true,
	Run:       runPoolFlow,
}

// poolState is the ownership lattice for one packet variable.
type poolState uint8

const (
	// poolBottom: nothing known (only arises transiently in joins).
	poolBottom poolState = iota
	// poolOwned: a fresh pooled packet this function is responsible for.
	poolOwned
	// poolBorrowed: a parameter or range element; use-after-consume applies
	// but there is no obligation to Release.
	poolBorrowed
	// poolConsumed: definitely Released or ownership definitely handed off;
	// any further touch is a use-after-free against the pool.
	poolConsumed
	// poolMaybe: consumed on some path only; no reports either way.
	poolMaybe
	// poolEscaped: stored, returned, captured, or passed to code this
	// analysis cannot see; tracking stops.
	poolEscaped
)

// paramFate is a summary verdict for one *packet.Packet parameter.
type paramFate uint8

const (
	fateUnknown paramFate = iota
	fateBorrows
	fateConsumes
)

// poolSummary describes what a function does to each of its packet
// parameters (positionally; non-packet parameters hold fateUnknown).
type poolSummary struct {
	fates []paramFate
}

func runPoolFlow(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		pf := &poolFlow{pass: pass, prog: pass.Prog, info: pass.Pkg.Info}
		w := &flowWalker[poolState]{info: pass.Pkg.Info, tr: pf}
		w.walk(fb.body, paramEnv(pass.Pkg.Info, fb))
	}
}

// paramEnv builds the initial environment: every *packet.Packet parameter
// (and method receiver) starts as borrowed.
func paramEnv(info *types.Info, fb funcBody) env[poolState] {
	e := make(env[poolState])
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && isPacketPtr(obj.Type()) {
					e[obj] = poolBorrowed
				}
			}
		}
	}
	if fb.lit != nil {
		bind(fb.lit.Type.Params)
		return e
	}
	bind(fb.decl.Recv)
	bind(fb.decl.Type.Params)
	return e
}

// poolFlow is the transfers domain. With pass == nil it runs in summary
// mode: no diagnostics, but it records per-parameter facts for the caller.
type poolFlow struct {
	pass *Pass
	prog *Program
	info *types.Info

	// created remembers where an owned packet came from, for leak messages.
	created map[types.Object]token.Pos
	// consumedBy remembers what consumed a packet, for use-after messages.
	consumedBy map[types.Object]string

	// Summary mode state.
	params []types.Object
	// everConsumed/everEscaped are per-param flow-insensitive facts.
	everConsumed map[types.Object]bool
	everEscaped  map[types.Object]bool
	// exitStates collects each param's state at every function exit.
	exitStates map[types.Object][]poolState
}

func (pf *poolFlow) join(a, b poolState) poolState {
	if a == b {
		return a
	}
	if a == poolBottom || b == poolBottom {
		// One side never tracked the variable (it escaped or was rebound on
		// that path); be silent from here on.
		return poolMaybe
	}
	if a == poolConsumed || b == poolConsumed || a == poolMaybe || b == poolMaybe {
		return poolMaybe
	}
	// Owned/Borrowed/Escaped disagreement: stop claiming anything.
	return poolEscaped
}

func (pf *poolFlow) reportf(pos token.Pos, format string, args ...any) {
	if pf.pass != nil {
		pf.pass.Reportf(pos, format, args...)
	}
}

// trackedIdent resolves an expression to a tracked packet variable.
func (pf *poolFlow) trackedIdent(e env[poolState], x ast.Expr) (*ast.Ident, types.Object) {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := pf.info.Uses[id]
	if obj == nil {
		obj = pf.info.Defs[id]
	}
	if obj == nil {
		return nil, nil
	}
	if _, tracked := e[obj]; !tracked {
		return nil, nil
	}
	return id, obj
}

// markConsumed moves a packet to the consumed state, remembering why.
func (pf *poolFlow) markConsumed(e env[poolState], obj types.Object, why string) {
	e[obj] = poolConsumed
	if pf.consumedBy == nil {
		pf.consumedBy = make(map[types.Object]string)
	}
	pf.consumedBy[obj] = why
	if pf.everConsumed != nil {
		pf.everConsumed[obj] = true
	}
}

// markEscaped stops tracking a packet.
func (pf *poolFlow) markEscaped(e env[poolState], obj types.Object) {
	e[obj] = poolEscaped
	if pf.everEscaped != nil {
		pf.everEscaped[obj] = true
	}
}

func (pf *poolFlow) assign(e env[poolState], lhs, rhs ast.Expr, define bool) {
	// Storing a tracked packet anywhere that is not a plain local rebinding
	// makes it escape: a field, a slice element, a map entry all outlive
	// this function's view.
	lhsID, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		if _, obj := pf.trackedIdent(e, rhs); obj != nil {
			pf.markEscaped(e, obj)
		}
		return
	}
	if lhsID.Name == "_" {
		return
	}
	var lhsObj types.Object
	if define {
		lhsObj = pf.info.Defs[lhsID]
	} else {
		lhsObj = pf.info.Uses[lhsID]
	}
	if lhsObj == nil || !isPacketPtr(lhsObj.Type()) {
		return
	}
	// Rebinding a tracked variable replaces its state wholesale, whatever it
	// was before (this is what lets `p.Release(); p = packet.Get()` stay
	// clean).
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if pf.isCreator(r) {
			e[lhsObj] = poolOwned
			if pf.created == nil {
				pf.created = make(map[types.Object]token.Pos)
			}
			pf.created[lhsObj] = rhs.Pos()
			return
		}
		// A packet returned by any other call has an owner this analysis
		// does not model; track nothing.
		e[lhsObj] = poolEscaped
	case *ast.Ident:
		// Aliasing: q := p. Tracking aliases soundly needs points-to
		// analysis; stop tracking both instead of guessing.
		if _, obj := pf.trackedIdent(e, r); obj != nil {
			pf.markEscaped(e, obj)
		}
		e[lhsObj] = poolEscaped
	default:
		e[lhsObj] = poolEscaped
	}
}

// isCreator reports whether the call mints a fresh pooled packet the caller
// owns: packet.Get, the typed constructors, or (*Packet).Clone.
func (pf *poolFlow) isCreator(call *ast.CallExpr) bool {
	fn := calleeFunc(pf.info, call)
	if fn == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return fn.Name() == "Clone" && isPacketPtr(recv.Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != packetPkgPath {
		return false
	}
	switch fn.Name() {
	case "Get", "NewData", "NewSche", "NewAck":
		return true
	}
	return false
}

func (pf *poolFlow) call(e env[poolState], call *ast.CallExpr) {
	fn := calleeFunc(pf.info, call)

	// Method calls on a tracked packet: Release consumes the receiver;
	// every other method borrows it.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isPacketPtr(recv.Type()) {
			if _, obj := pf.trackedIdent(e, sel.X); obj != nil && fn.Name() == "Release" {
				pf.markConsumed(e, obj, "Release returned it to the pool")
			}
		}
	}

	// The repo-wide ownership contract: Receive(p) transfers ownership,
	// whoever implements it.
	if fn != nil && fn.Name() == "Receive" && fn.Type().(*types.Signature).Recv() != nil {
		for _, arg := range call.Args {
			if _, obj := pf.trackedIdent(e, arg); obj != nil && isPacketPtr(obj.Type()) {
				pf.markConsumed(e, obj, "Receive took ownership (Receive transfers ownership)")
			}
		}
		return
	}

	// Other calls: consult the callee's summary for each packet argument.
	var sum *poolSummary
	var sig *types.Signature
	if fn != nil {
		sum = pf.prog.poolSummaryOf(fn)
		sig, _ = fn.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		_, obj := pf.trackedIdent(e, arg)
		if obj == nil || !isPacketPtr(obj.Type()) {
			continue
		}
		fate := fateUnknown
		if sum != nil && i < len(sum.fates) && (sig == nil || !sig.Variadic() || i < sig.Params().Len()-1) {
			fate = sum.fates[i]
		}
		switch fate {
		case fateConsumes:
			pf.markConsumed(e, obj, "the call to "+fn.Name()+" Releases it on every path")
		case fateBorrows:
			// Caller keeps ownership; state unchanged.
		default:
			pf.markEscaped(e, obj)
		}
	}
}

func (pf *poolFlow) ret(e env[poolState], ret *ast.ReturnStmt) {
	for _, r := range ret.Results {
		if _, obj := pf.trackedIdent(e, r); obj != nil {
			pf.markEscaped(e, obj)
		}
	}
}

func (pf *poolFlow) rng(e env[poolState], rs *ast.RangeStmt) {
	// Ranging over a packet collection yields borrowed views.
	for _, ie := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := ie.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pf.info.Defs[id]; obj != nil && isPacketPtr(obj.Type()) {
			e[obj] = poolBorrowed
		}
	}
}

func (pf *poolFlow) use(e env[poolState], id *ast.Ident) {
	obj := pf.info.Uses[id]
	if obj == nil || e[obj] != poolConsumed {
		return
	}
	why := "it was consumed"
	if pf.consumedBy != nil && pf.consumedBy[obj] != "" {
		why = pf.consumedBy[obj]
	}
	pf.reportf(id.Pos(), "%s used after %s; the pool may already have recycled it (Clone before the handoff to retain a copy)", id.Name, why)
	// One report per consume site.
	pf.markEscaped(e, obj)
}

func (pf *poolFlow) captured(e env[poolState], obj types.Object) {
	// A closure may run at any time relative to this function; stop
	// tracking the packet it captured.
	pf.markEscaped(e, obj)
}

func (pf *poolFlow) exitScope(e env[poolState], objs []types.Object) {
	for _, obj := range objs {
		st, tracked := e[obj]
		if !tracked {
			continue
		}
		if pf.exitStates != nil && pf.isParam(obj) {
			pf.exitStates[obj] = append(pf.exitStates[obj], st)
		}
		if st == poolOwned && pf.pass != nil {
			pos := obj.Pos()
			if pf.created != nil {
				if p, ok := pf.created[obj]; ok {
					pos = p
				}
			}
			pf.reportf(pos, "pooled packet %s is never Released, returned, or handed off on this path — it leaks pool capacity", obj.Name())
			// Report each leak once even if several scopes close over it.
			e[obj] = poolEscaped
		}
	}
}

func (pf *poolFlow) isParam(obj types.Object) bool {
	for _, p := range pf.params {
		if p == obj {
			return true
		}
	}
	return false
}

// packetPkgPath is the import path of the pooled packet package.
const packetPkgPath = "marlin/internal/packet"

// poolSummaryOf computes (and memoizes) the ownership summary of fn. It
// returns nil when fn has no analyzable body or is part of a recursion
// cycle still being summarized.
func (prog *Program) poolSummaryOf(fn *types.Func) *poolSummary {
	if sum, ok := prog.poolSums[fn]; ok {
		return sum // nil while in progress: recursion degrades to unknown
	}
	fi := prog.FuncDeclOf(fn)
	if fi == nil || fi.Decl.Body == nil {
		prog.poolSums[fn] = nil
		return nil
	}
	prog.poolSums[fn] = nil // in-progress marker

	sig := fn.Type().(*types.Signature)
	fates := make([]paramFate, sig.Params().Len())
	var packetParams []types.Object
	paramAt := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isPacketPtr(p.Type()) {
			packetParams = append(packetParams, p)
			paramAt[p] = i
		}
	}
	if len(packetParams) == 0 {
		sum := &poolSummary{fates: fates}
		prog.poolSums[fn] = sum
		return sum
	}

	pf := &poolFlow{
		prog:         prog,
		info:         fi.Pkg.Info,
		params:       packetParams,
		everConsumed: make(map[types.Object]bool),
		everEscaped:  make(map[types.Object]bool),
		exitStates:   make(map[types.Object][]poolState),
	}
	e := make(env[poolState], len(packetParams))
	for _, p := range packetParams {
		e[p] = poolBorrowed
	}
	w := &flowWalker[poolState]{info: fi.Pkg.Info, tr: pf}
	w.walk(fi.Decl.Body, e)

	for _, p := range packetParams {
		i := paramAt[p]
		switch {
		case pf.everEscaped[p]:
			fates[i] = fateUnknown
		case pf.everConsumed[p] && allConsumed(pf.exitStates[p]):
			fates[i] = fateConsumes
		case !pf.everConsumed[p]:
			fates[i] = fateBorrows
		default:
			fates[i] = fateUnknown
		}
	}
	sum := &poolSummary{fates: fates}
	prog.poolSums[fn] = sum
	return sum
}

// allConsumed reports whether every recorded exit saw the parameter in the
// consumed state (and that at least one exit was recorded).
func allConsumed(states []poolState) bool {
	if len(states) == 0 {
		return false
	}
	for _, st := range states {
		if st != poolConsumed {
			return false
		}
	}
	return true
}
