// Package poolflow_clean holds ownership patterns the poolflow check must
// accept: borrow-then-consume, Clone before a handoff, ownership transfer by
// return, and rebinding a released variable to a fresh packet.
package poolflow_clean

import "marlin/internal/packet"

// consume Releases its argument on every path (summary: consumes).
func consume(p *packet.Packet) {
	p.Release()
}

// peek only reads its argument (summary: borrows).
func peek(p *packet.Packet) int {
	return p.Size
}

// OwnAndRelease borrows the packet to a helper, then meets the Release
// obligation through a consuming helper.
func OwnAndRelease() {
	p := packet.Get()
	_ = peek(p)
	consume(p)
}

type sink struct{}

func (s *sink) Receive(p *packet.Packet) {
	p.Release()
}

// CloneBeforeHandoff retains a copy across a Receive handoff — the fix the
// use-after-consume diagnostic suggests.
func CloneBeforeHandoff(s *sink) uint32 {
	p := packet.Get()
	q := p.Clone()
	s.Receive(p)
	n := q.PSN
	consume(q)
	return n
}

// ReturnTransfers hands ownership to the caller; no leak.
func ReturnTransfers() *packet.Packet {
	p := packet.Get()
	return p
}

// ReleaseThenRebind reuses the variable for a fresh packet; the rebinding
// resets the ownership state.
func ReleaseThenRebind() {
	p := packet.Get()
	consume(p)
	p = packet.Get()
	p.Release()
}

// MaybeConsumed is consumed on one path only; the join is "maybe" and the
// check stays silent rather than guessing.
func MaybeConsumed(drop bool) {
	p := packet.Get()
	if drop {
		consume(p)
	} else {
		p.Release()
	}
}
