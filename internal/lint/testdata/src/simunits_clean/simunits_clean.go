// Package simunits_clean holds unit-correct patterns the simunits check
// must accept: the visible scaling idiom, the designated conversion
// boundaries, and unit-preserving arithmetic.
package simunits_clean

import (
	"time"

	"marlin/internal/sim"
)

// Scaled rescales nanoseconds to picoseconds the visible way.
func Scaled(d time.Duration) sim.Duration {
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
}

// Back rescales picoseconds to nanoseconds the visible way.
func Back(t sim.Time) time.Duration {
	return time.Duration(t) * time.Nanosecond / 1000
}

// Boundary uses the designated conversion helpers.
func Boundary(d time.Duration) sim.Duration {
	return sim.FromStd(d)
}

// SameFamily does arithmetic within one unit family.
func SameFamily(a, b sim.Time) sim.Duration {
	return sim.Duration(a - b)
}

// Untagged numerics carry no unit and convert freely.
func Untagged(n int64) sim.Duration {
	return sim.Duration(n)
}

// HalfLife divides a tagged value by a constant; the tag survives but the
// scaling license means no report.
func HalfLife(d time.Duration) int64 {
	ns := d.Nanoseconds()
	return ns / 2
}
