// aqm_clean holds the sanctioned sojourn idiom of a queue discipline:
// delay is computed entirely in sim time from the enqueue stamp the queue
// recorded, so no wall-clock value ever meets a picosecond type.
package simunits_clean

import "marlin/internal/sim"

// Sojourn is the discipline's delay input: now − EnqAt, picoseconds end
// to end.
func Sojourn(enqAt, now sim.Time) sim.Duration {
	return now.Sub(enqAt)
}

// TargetExceeded compares within the picosecond family only.
func TargetExceeded(enqAt, now sim.Time, target sim.Duration) bool {
	return now.Sub(enqAt) > target
}
