// Package maporder_clean holds the deterministic map-iteration idioms the
// maporder check must not flag: collect-keys-then-sort, per-key
// accumulation, and commutative integer reduction.
package maporder_clean

import "sort"

// Keys is the canonical sorted-iteration idiom.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedIDs collects then sorts through sort.Slice.
func SortedIDs(m map[uint32]bool) []uint32 {
	var ids []uint32
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SumPerKey accumulates into a distinct cell per key, which is
// order-insensitive even for floats.
func SumPerKey(outs []map[string]float64) map[string]float64 {
	sums := make(map[string]float64)
	for _, o := range outs {
		for k, v := range o {
			sums[k] += v
		}
	}
	return sums
}

// Count reduces with a commutative integer op.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MaxVal tracks an order-insensitive maximum.
func MaxVal(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
