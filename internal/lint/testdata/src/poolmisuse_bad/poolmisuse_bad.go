// Package poolmisuse_bad exercises the poolmisuse check: every marked line
// touches a packet after Release returned it to the pool.
package poolmisuse_bad

import "marlin/internal/packet"

// UseAfterRelease reads a field of a released packet.
func UseAfterRelease(p *packet.Packet) uint32 {
	p.Release()
	return p.PSN
}

// DoubleRelease returns the same packet to the pool twice.
func DoubleRelease(p *packet.Packet) {
	p.Release()
	p.Release()
}

// ForwardAfterRelease hands a released packet to another owner.
func ForwardAfterRelease(p *packet.Packet, sink func(*packet.Packet)) {
	p.Release()
	sink(p)
}

// BranchUse releases and then keeps using within the same branch.
func BranchUse(p *packet.Packet, drop bool) int {
	if drop {
		p.Release()
		return p.Size
	}
	return 0
}
