// Package simtime_clean keeps its exported API on the simulated clock; the
// simtime check reports nothing.
package simtime_clean

import "marlin/internal/sim"

// Config carries simulated-clock units.
type Config struct {
	Deadline sim.Time
	RTO      sim.Duration
}

// Wait keeps the exported API on the simulated clock.
func Wait(d sim.Duration) sim.Duration { return d }
