// Package directive_ok exercises justified //marlin:allow directives in
// both placements; every violation here is suppressed, so the fixture test
// expects zero diagnostics.
package directive_ok

import "time"

// EndOfLine suppresses with a trailing comment on the offending line.
func EndOfLine() time.Time {
	return time.Now() //marlin:allow wallclock -- fixture: trailing-form suppression
}

// LineAbove suppresses with a comment on the preceding line.
func LineAbove() time.Time {
	//marlin:allow wallclock -- fixture: line-above-form suppression
	return time.Now()
}

// MultiCheck names two checks in one directive; the wallclock finding on
// the next line matches the first name.
func MultiCheck() time.Time {
	//marlin:allow wallclock,maporder -- fixture: one directive, two checks
	return time.Now()
}
