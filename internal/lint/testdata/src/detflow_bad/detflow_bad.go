// Package detflow_bad exercises the detflow check: goroutines and selects
// in model code (including one reachable from an engine callback), and
// map-iteration-order dataflow escaping a range loop.
package detflow_bad

func noop() {}

// Spawn runs model work on a host goroutine.
func Spawn(work func()) {
	go work()
}

// Pick returns whichever channel the host scheduler made ready first.
func Pick(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

type fakeEngine struct{}

func (fakeEngine) Schedule(d int64, fn func()) {}

// Register schedules Tick as an engine callback, making everything Tick
// calls reachable from the event loop.
func Register(e fakeEngine) {
	e.Schedule(0, Tick)
}

// Tick is an engine callback.
func Tick() {
	spawnHelper()
}

// spawnHelper is reachable from Tick; its goroutine poisons replay.
func spawnHelper() {
	go noop()
}

// LastWriter keeps whichever entry iteration visited last and reads it
// after the loop.
func LastWriter(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = v
	}
	return best
}

// FloatAccum sums floats in map iteration order via plain assignment, which
// the compound-assign pattern in maporder does not see.
func FloatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v
	}
	return sum
}
