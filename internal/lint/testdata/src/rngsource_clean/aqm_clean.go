// aqm_clean draws AQM marking randomness the sanctioned way: each queue's
// discipline receives a pre-split sim.Rand stream derived from the run
// seed, so marks are a pure function of configuration.
package rngsource_clean

import "marlin/internal/sim"

// ShouldMark draws the probabilistic marking decision from the queue's
// own stream.
func ShouldMark(r *sim.Rand, p float64) bool {
	return r.Float64() < p
}

// QueueStream splits a per-queue stream off the link's seeded parent.
func QueueStream(parent *sim.Rand) *sim.Rand {
	return parent.Split()
}
