// Package rngsource_clean draws randomness the sanctioned way: a sim.Rand
// stream derived from the run seed. The rngsource check reports nothing.
package rngsource_clean

import "marlin/internal/sim"

// Draw derives its stream from the configured seed.
func Draw(seed uint64) float64 {
	return sim.NewRand(seed).Float64()
}
