// pattern_clean samples pattern randomness the sanctioned way: the dwell
// stream is a sim.Rand handed down from the run seed (typically via
// Split), so the trajectory is a pure function of configuration.
package rngsource_clean

import "marlin/internal/sim"

// Dwell draws one mean-scaled dwell time from the caller's stream.
func Dwell(r *sim.Rand, mean sim.Duration) sim.Duration {
	return r.Exp(mean)
}
