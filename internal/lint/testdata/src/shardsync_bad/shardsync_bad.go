// Package shardsync_bad exercises the boundaries of detflow's fork-join
// exemption: goroutines that touch cross-shard state without a join that
// orders their writes must stay findings.
package shardsync_bad

import "sync"

var shared int

// FreeRunning mutates shared state on a goroutine nobody joins; the write
// races whatever the next round reads.
func FreeRunning() {
	go func() {
		shared++
	}()
}

// DoneWithoutWait signals a WaitGroup the spawner never waits on, so the
// goroutine can still be running when the caller moves on.
func DoneWithoutWait(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		shared++
	}()
}

// WaitBeforeSpawn waits first and forks after; nothing joins the goroutine,
// the Wait is not a barrier for it.
func WaitBeforeSpawn() {
	var wg sync.WaitGroup
	wg.Wait()
	go func() {
		defer wg.Done()
		shared++
	}()
}
