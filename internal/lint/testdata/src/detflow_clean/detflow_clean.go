// Package detflow_clean holds patterns the detflow check must accept:
// collect-then-sort, guarded selection, per-key writes, and associative
// integer accumulation.
package detflow_clean

import "sort"

// SortedKeys is the canonical collect-then-sort idiom (maporder's domain,
// with its sortedAfter exemption; detflow must not double-report it).
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MaxValue selects under a guard; the result is order-independent.
func MaxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Copy writes per-key entries; no shared last-writer-wins target.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// IntSum accumulates integers, which is associative and order-independent.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum = sum + v
	}
	return sum
}
