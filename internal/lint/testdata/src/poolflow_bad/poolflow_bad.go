// Package poolflow_bad exercises the poolflow check with ownership
// violations split across function boundaries. None of these are visible to
// the block-local poolmisuse check — no block contains both the Release and
// the offending use — which is exactly what the interprocedural summaries
// exist to catch (the fixture test asserts poolmisuse finds nothing here).
package poolflow_bad

import "marlin/internal/packet"

// consume Releases its argument on every path, so its summary says callers
// lose ownership at the call.
func consume(p *packet.Packet) {
	p.Release()
}

// UseAfterConsume reads a field after the callee returned the packet to the
// pool. There is no Release in this block, so poolmisuse sees nothing.
func UseAfterConsume() int {
	p := packet.Get()
	consume(p)
	return p.Size
}

// DoubleConsume is a double Release split across two calls.
func DoubleConsume() {
	p := packet.Get()
	consume(p)
	consume(p)
}

type sink struct{}

func (s *sink) Receive(p *packet.Packet) {
	p.Release()
}

// UseAfterHandoff touches a packet after Receive took ownership of it.
func UseAfterHandoff(s *sink) uint32 {
	p := packet.Get()
	s.Receive(p)
	return p.PSN
}

// Leak abandons a pooled packet on the early-return path.
func Leak(n int) int {
	p := packet.Get()
	if n < 0 {
		return -1
	}
	consume(p)
	return n
}
