// Package wallclock_clean holds a justified suppression and clock-free
// code: the wallclock check must report nothing here.
package wallclock_clean

import "time"

// Uptime is host-side elapsed reporting with a documented exemption.
func Uptime(start time.Time) float64 {
	return time.Since(start).Seconds() //marlin:allow wallclock -- fixture: documented host-side elapsed reporting
}

// Pure never touches the clock.
func Pure(a, b int64) int64 { return a + b }
