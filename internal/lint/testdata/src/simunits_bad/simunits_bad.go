// Package simunits_bad exercises the simunits check: every marked line
// moves a value between the nanosecond (time.Duration) and picosecond
// (sim.Time/sim.Duration) worlds without scaling.
package simunits_bad

import (
	"time"

	"marlin/internal/sim"
)

// DeadlineFromStd stuffs a nanosecond count into a picosecond type.
func DeadlineFromStd(d time.Duration) sim.Time {
	ns := d.Nanoseconds()
	return sim.Time(ns)
}

// StdFromSim reinterprets picoseconds as nanoseconds.
func StdFromSim(t sim.Time) time.Duration {
	return time.Duration(t)
}

// Mixed compares a picosecond count against a nanosecond count.
func Mixed(t sim.Time, d time.Duration) bool {
	return int64(t) < d.Nanoseconds()
}

// nanos returns a nanosecond count; simunits summarizes its return unit.
func nanos(d time.Duration) int64 {
	return d.Nanoseconds()
}

// ViaHelper launders the nanosecond count through a local helper and an
// intermediate variable before the unscaled conversion.
func ViaHelper(d time.Duration) sim.Duration {
	v := nanos(d)
	return sim.Duration(v)
}

// CoarseUnits converts a second count straight to sim time.
func CoarseUnits(d time.Duration) sim.Duration {
	s := d.Seconds()
	return sim.Duration(s)
}
