// aqm_bad mimics wall-clock sojourn math in a queue discipline — the
// class of bug the AQM determinism contract forbids: sojourn must be
// sim-time (now − EnqAt, picoseconds), never the host clock.
package simunits_bad

import (
	"time"

	"marlin/internal/sim"
)

// SojournFromWall measures a packet's queueing delay with the wall clock
// and stuffs the nanosecond count into the picosecond sim type.
func SojournFromWall(enq time.Time) sim.Duration {
	soj := time.Since(enq)
	return sim.Duration(soj)
}

// TargetExceeded compares a wall-clock sojourn directly against the
// discipline's picosecond delay target.
func TargetExceeded(soj time.Duration, target sim.Duration) bool {
	return int64(soj) > int64(target)
}
