// Package simtime_bad exercises the simtime check: exported signatures and
// exported types carrying host-time units must be flagged; unexported
// helpers are not the API boundary.
package simtime_bad

import "time"

// Config is an exported model type carrying host-time units.
type Config struct {
	Deadline time.Time
	RTO      time.Duration
}

// Wait is an exported signature with host-time parameter and result.
func Wait(d time.Duration) time.Duration {
	return d
}

// internalOnly is unexported and must not be flagged.
func internalOnly(d time.Duration) time.Duration { return d }
