// Package wallclock_bad exercises the wallclock check: every host-clock
// read and global math/rand draw below must be flagged.
package wallclock_bad

import (
	"math/rand"
	"time"
)

// Stamp reads the host clock and the global random source into model state.
func Stamp() int64 {
	t := time.Now()
	time.Sleep(time.Millisecond)
	return t.UnixNano() + rand.Int63()
}

// Elapsed measures host time.
func Elapsed(since time.Time) float64 {
	return time.Since(since).Seconds()
}
