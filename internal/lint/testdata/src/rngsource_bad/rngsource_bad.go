// Package rngsource_bad exercises the rngsource check: the math/rand
// import and the explicit constructors must be flagged in a model package.
package rngsource_bad

import "math/rand"

// Draw builds an explicitly seeded generator, but its seed does not derive
// from the experiment configuration.
func Draw() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}
