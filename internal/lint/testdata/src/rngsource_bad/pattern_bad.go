// pattern_bad mimics a traffic-pattern envelope that samples its MMPP
// dwell times from math/rand/v2: the import and both explicit
// constructors must be flagged even though the seeds are literals.
package rngsource_bad

import randv2 "math/rand/v2"

// DwellAt samples a dwell time for the given modulation state. The PCG
// seed is hard-coded, so the trajectory cannot derive from the run seed.
func DwellAt(state int) float64 {
	g := randv2.New(randv2.NewPCG(1, 2))
	return g.ExpFloat64() * float64(state+1)
}
