// aqm_bad mimics an AQM discipline drawing its marking randomness from
// math/rand: the import is flagged, and the per-queue generator is built
// without deriving its seed from the run configuration, so the marking
// sequence differs run to run.
package rngsource_bad

import mrand "math/rand"

// MarkRED decides a RED-style probabilistic mark with the process-global
// source; only the import line carries the diagnostic for this one.
func MarkRED(p float64) bool {
	return mrand.Float64() < p
}

// QueueStream builds the queue's marking stream from the queue index
// instead of a stream split off the run seed.
func QueueStream(queue int) *mrand.Rand {
	return mrand.New(mrand.NewSource(int64(queue)))
}
