// Package directive_bad exercises directive validation: an unjustified
// allow (which must also fail to suppress), an unknown check name, and an
// allow naming no check are each diagnostics.
package directive_bad

import "time"

// Stamp carries an allow with no justification: both the directive and the
// underlying wallclock finding must be reported.
func Stamp() int64 {
	return time.Now().UnixNano() //marlin:allow wallclock
}

//marlin:allow nosuchcheck -- the check name does not exist
func Unknown() {}

//marlin:allow
func Empty() {}
