// Package poolmisuse_clean holds the legitimate ownership patterns the
// poolmisuse check must not flag.
package poolmisuse_clean

import "marlin/internal/packet"

// ReleaseLast is the consumer pattern: read everything, then Release.
func ReleaseLast(p *packet.Packet) uint32 {
	psn := p.PSN
	p.Release()
	return psn
}

// BranchRelease drops on one path only; the other path still owns p.
func BranchRelease(p *packet.Packet, drop bool) int {
	if drop {
		p.Release()
		return 0
	}
	return p.Size
}

// Reassigned re-binds the variable to a fresh pool packet after Release.
func Reassigned(p *packet.Packet) *packet.Packet {
	p.Release()
	p = packet.Get()
	return p
}

// CloneThenRelease retains a copy before returning the original.
func CloneThenRelease(p *packet.Packet, sink func(*packet.Packet)) {
	q := p.Clone()
	p.Release()
	sink(q)
}

// SwitchCases releases per case; each case owns the packet exactly once.
func SwitchCases(p *packet.Packet, sink func(*packet.Packet)) {
	switch p.Type {
	case packet.DATA:
		sink(p)
	default:
		p.Release()
	}
}
