// Package shardsync_clean holds the fork-join barrier shape detflow must
// accept: workers spawned onto goroutines, each deferring Done on a
// sync.WaitGroup the spawner Waits on after the spawn. The join publishes
// every worker write before the spawner reads, so no scheduling choice
// escapes into replayed state.
package shardsync_clean

import "sync"

// Round fans partition work out across goroutines and joins before
// returning — the shard runner's round primitive.
func Round(parts []func()) {
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[i]()
		}()
	}
	wg.Wait()
}

// RoundPtr runs the same barrier through a WaitGroup pointer.
func RoundPtr(parts []func(), wg *sync.WaitGroup) {
	for i := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[i]()
		}()
	}
	wg.Wait()
}
