// Package maporder_bad exercises the maporder check: every map range below
// does order-sensitive work without sorting keys first.
package maporder_bad

import "fmt"

type sched struct{}

func (sched) Schedule(d int64, fn func()) {}

// Collect appends in map iteration order with no later sort.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sum accumulates a float in map iteration order.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Dump writes output in map iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Fanout schedules events in map iteration order.
func Fanout(s sched, m map[int]func()) {
	for d, fn := range m {
		s.Schedule(int64(d), fn)
	}
}
