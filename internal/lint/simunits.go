package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simunitsCheck is the unit-provenance analysis. simtime polices the static
// types at API boundaries; simunits chases the values. sim.Time and
// sim.Duration count picoseconds, time.Duration counts nanoseconds, and all
// three are int64 underneath, so the type system cannot stop a nanosecond
// count from being reinterpreted as picoseconds — the conversion compiles
// and the result is silently wrong by 1000x (the class of bug behind the
// sim.Interval rounding drift fixed in PR 5).
//
// The analysis tags every bare numeric value with the unit it was derived
// from — nanoseconds (int64/float64 produced from a time.Duration or a
// *.Nanoseconds() call), picoseconds (produced from a sim.Time or
// sim.Duration) — and propagates the tag through assignments, arithmetic,
// and the return values of module-local functions (a summary computed from
// each callee's own body). It reports:
//
//   - a conversion to sim.Time/sim.Duration whose operand carries a
//     nanosecond (or coarser) tag, unscaled;
//   - a conversion to time.Duration whose operand carries a picosecond
//     tag, unscaled;
//   - addition/subtraction/comparison mixing nanosecond- and
//     picosecond-tagged operands.
//
// The designated scaling idiom stays clean: a conversion that is an operand
// of a multiplication or division by a constant (sim.Duration(ns) *
// sim.Nanosecond, time.Duration(t) * time.Nanosecond / 1000) is the author
// visibly changing units, which is the point of the boundary functions
// sim.FromStd and sim.Time.Std.
var simunitsCheck = &Check{
	Name: "simunits",
	Doc:  "no nanosecond-valued numerics flowing into picosecond sim types (or vice versa) without scaling",
	Run:  runSimUnits,
}

// unitKind tags what a bare numeric value counts.
type unitKind uint8

const (
	unitNone unitKind = iota
	// unitNanos counts nanoseconds (from time.Duration or *.Nanoseconds()).
	unitNanos
	// unitMicros/unitMillis/unitSeconds are coarser wall-style units from
	// the corresponding accessors; converting any of them straight into a
	// sim type is as wrong as nanoseconds.
	unitMicros
	unitMillis
	unitSeconds
	// unitPicos counts picoseconds (from sim.Time/sim.Duration).
	unitPicos
)

func (k unitKind) String() string {
	switch k {
	case unitNanos:
		return "nanoseconds"
	case unitMicros:
		return "microseconds"
	case unitMillis:
		return "milliseconds"
	case unitSeconds:
		return "seconds"
	case unitPicos:
		return "picoseconds"
	}
	return "untagged"
}

// stdFamily reports whether k is a wall-style (non-picosecond) unit.
func (k unitKind) stdFamily() bool {
	return k == unitNanos || k == unitMicros || k == unitMillis || k == unitSeconds
}

func runSimUnits(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		su := &simUnits{pass: pass, prog: pass.Prog, info: pass.Pkg.Info, reported: make(map[token.Pos]bool)}
		w := &flowWalker[unitKind]{info: pass.Pkg.Info, tr: su}
		w.walk(fb.body, make(env[unitKind]))
	}
}

// simUnits is the transfers domain. With pass == nil it runs in summary
// mode, recording the unit tag of every value the function returns.
type simUnits struct {
	pass     *Pass
	prog     *Program
	info     *types.Info
	reported map[token.Pos]bool

	// Summary mode: join of the first return value's tags across returns.
	retTag unitKind
	retSet bool
}

func (su *simUnits) join(a, b unitKind) unitKind {
	if a == b {
		return a
	}
	return unitNone
}

func (su *simUnits) reportf(pos token.Pos, format string, args ...any) {
	if su.pass == nil || su.reported[pos] {
		return
	}
	su.reported[pos] = true
	su.pass.Reportf(pos, format, args...)
}

func (su *simUnits) assign(e env[unitKind], lhs, rhs ast.Expr, define bool) {
	var tag unitKind
	if rhs != nil {
		tag = su.eval(e, rhs, false)
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	var obj types.Object
	if define {
		obj = su.info.Defs[id]
	} else {
		obj = su.info.Uses[id]
	}
	if obj == nil || !isBareNumeric(obj.Type()) {
		return
	}
	if tag == unitNone {
		delete(e, obj)
	} else {
		e[obj] = tag
	}
}

func (su *simUnits) call(e env[unitKind], call *ast.CallExpr) {
	// Conversions are evaluated by their parent context (an assignment, a
	// return, or an enclosing call's argument list), which knows whether a
	// scaling operation wraps them; evaluating one here would misreport the
	// scaled idiom.
	if su.isConversion(call) {
		return
	}
	for _, arg := range call.Args {
		su.eval(e, arg, false)
	}
}

func (su *simUnits) ret(e env[unitKind], ret *ast.ReturnStmt) {
	for i, r := range ret.Results {
		tag := su.eval(e, r, false)
		if i == 0 && su.pass == nil {
			if !su.retSet {
				su.retTag, su.retSet = tag, true
			} else {
				su.retTag = su.join(su.retTag, tag)
			}
		}
	}
}

func (su *simUnits) rng(env[unitKind], *ast.RangeStmt) {}

func (su *simUnits) use(env[unitKind], *ast.Ident) {}

func (su *simUnits) captured(e env[unitKind], obj types.Object) {
	// A closure may rebind the variable; drop the tag.
	delete(e, obj)
}

func (su *simUnits) exitScope(env[unitKind], []types.Object) {}

// isConversion reports whether call is a type conversion.
func (su *simUnits) isConversion(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	if tv, ok := su.info.Types[call.Fun]; ok {
		return tv.IsType()
	}
	return false
}

// eval computes the unit tag of an expression, reporting misconversions and
// mixed-unit arithmetic as it goes. scaled is true when the expression is an
// operand of a multiplication/division by a constant — the visible-rescaling
// idiom that legitimizes a unit-changing conversion.
func (su *simUnits) eval(e env[unitKind], x ast.Expr, scaled bool) unitKind {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		if t := staticUnitOf(su.info.TypeOf(v)); t != unitNone {
			return t
		}
		if obj := su.info.Uses[v]; obj != nil {
			return e[obj]
		}
		return unitNone

	case *ast.UnaryExpr:
		return su.eval(e, v.X, scaled)

	case *ast.BinaryExpr:
		return su.evalBinary(e, v, scaled)

	case *ast.CallExpr:
		return su.evalCall(e, v, scaled)

	case *ast.SelectorExpr:
		return staticUnitOf(su.info.TypeOf(v))

	case *ast.IndexExpr:
		return staticUnitOf(su.info.TypeOf(v))

	default:
		return staticUnitOf(su.info.TypeOf(x))
	}
}

func (su *simUnits) evalBinary(e env[unitKind], b *ast.BinaryExpr, scaled bool) unitKind {
	switch b.Op {
	case token.MUL, token.QUO:
		// Multiplying or dividing by a constant is how units are visibly
		// rescaled; the scaling license extends to the operands.
		xScaled := scaled || su.isConstant(b.Y)
		yScaled := scaled || su.isConstant(b.X)
		xt := su.eval(e, b.X, xScaled)
		yt := su.eval(e, b.Y, yScaled)
		if xt != unitNone && yt == unitNone {
			return xt
		}
		if b.Op == token.MUL && yt != unitNone && xt == unitNone {
			return yt
		}
		return unitNone

	case token.ADD, token.SUB,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		xt := su.eval(e, b.X, false)
		yt := su.eval(e, b.Y, false)
		if xt.stdFamily() && yt == unitPicos || yt.stdFamily() && xt == unitPicos {
			su.reportf(b.OpPos, "%s %s %s mixes wall-time and sim-time units; scale one side (sim.Nanosecond = 1000 ps)",
				xt, b.Op, yt)
			return unitNone
		}
		if xt == yt {
			return xt
		}
		if xt == unitNone {
			return yt
		}
		if yt == unitNone {
			return xt
		}
		return unitNone

	default:
		su.eval(e, b.X, false)
		su.eval(e, b.Y, false)
		return unitNone
	}
}

func (su *simUnits) evalCall(e env[unitKind], call *ast.CallExpr, scaled bool) unitKind {
	// Type conversion: the place units are laundered.
	if su.isConversion(call) {
		dst := su.info.TypeOf(call)
		src := call.Args[0]
		srcTag := su.eval(e, src, false)
		if srcTag == unitNone {
			srcTag = staticUnitOf(su.info.TypeOf(src))
		}
		switch {
		case isSimUnitType(dst):
			if srcTag.stdFamily() && !scaled {
				su.reportf(call.Pos(),
					"%s-valued expression converted to %s, which counts picoseconds; multiply by sim.Nanosecond (or use sim.FromStd) to scale",
					srcTag, typeName(dst))
				return unitNone
			}
			return unitPicos
		case isStdDuration(dst):
			if srcTag == unitPicos && !scaled {
				su.reportf(call.Pos(),
					"picosecond-valued expression converted to time.Duration, which counts nanoseconds; use sim.Time.Std to scale")
				return unitNone
			}
			return unitNanos
		case isBareNumeric(dst):
			// int64(d), float64(t): the tag rides through the conversion.
			return srcTag
		}
		return unitNone
	}

	// Unit accessors on duration-like values.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		recv := su.info.TypeOf(sel.X)
		if isStdDuration(recv) || isSimUnitType(recv) || isStdTime(recv) {
			switch sel.Sel.Name {
			case "Nanoseconds", "UnixNano":
				return unitNanos
			case "Microseconds":
				return unitMicros
			case "Milliseconds":
				return unitMillis
			case "Seconds":
				return unitSeconds
			}
		}
	}

	// Module-local callee: use its return-unit summary.
	if fn := calleeFunc(su.info, call); fn != nil {
		if tag := su.prog.unitSummaryOf(fn); tag != unitNone {
			return tag
		}
	}
	// Evaluate arguments for their own findings (deduplicated with the
	// walker's call hook by position).
	for _, arg := range call.Args {
		su.eval(e, arg, false)
	}
	return unitNone
}

// isConstant reports whether the expression has a compile-time constant
// value (typed or untyped).
func (su *simUnits) isConstant(x ast.Expr) bool {
	tv, ok := su.info.Types[x]
	return ok && tv.Value != nil
}

// unitSummaryOf computes (and memoizes) the unit tag of fn's first return
// value, derived from fn's own body. unitNone for multi-tag returns,
// recursion, or bodies outside the analyzed packages.
func (prog *Program) unitSummaryOf(fn *types.Func) unitKind {
	if tag, ok := prog.unitSums[fn]; ok {
		return tag
	}
	prog.unitSums[fn] = unitNone // in-progress marker; recursion degrades
	fi := prog.FuncDeclOf(fn)
	if fi == nil || fi.Decl.Body == nil {
		return unitNone
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 || !isBareNumeric(sig.Results().At(0).Type()) {
		return unitNone
	}
	su := &simUnits{prog: prog, info: fi.Pkg.Info, reported: make(map[token.Pos]bool)}
	w := &flowWalker[unitKind]{info: fi.Pkg.Info, tr: su}
	w.walk(fi.Decl.Body, make(env[unitKind]))
	tag := unitNone
	if su.retSet {
		tag = su.retTag
	}
	prog.unitSums[fn] = tag
	return tag
}

// staticUnitOf maps a static type to the unit its values count.
func staticUnitOf(t types.Type) unitKind {
	switch {
	case t == nil:
		return unitNone
	case isSimUnitType(t):
		return unitPicos
	case isStdDuration(t):
		return unitNanos
	}
	return unitNone
}

// isSimUnitType reports whether t is sim.Time or sim.Duration.
func isSimUnitType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "marlin/internal/sim" {
		return false
	}
	return obj.Name() == "Time" || obj.Name() == "Duration"
}

// isStdDuration reports whether t is time.Duration.
func isStdDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// isStdTime reports whether t is time.Time.
func isStdTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// isBareNumeric reports whether t is an unnamed basic integer or float type
// — the only values whose unit provenance the environment tracks.
func isBareNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, named := t.(*types.Named); named {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// typeName renders a named type as pkg.Name for diagnostics.
func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}
