package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full form is
//
//	//marlin:allow check1,check2 -- justification
//
// written either as a trailing comment on the offending line or as a
// standalone comment directly above it.
const directivePrefix = "//marlin:allow"

// directive is one parsed //marlin:allow comment.
type directive struct {
	pos       token.Position
	checks    []string
	justified bool
}

// directives indexes a package's suppression comments by file and line.
type directives struct {
	list []*directive
	// byLine maps filename -> line -> directives effective at that line.
	byLine map[string]map[int][]*directive
}

// collectDirectives parses every //marlin:allow comment in the package. A
// directive is effective on its own line (trailing-comment form) and on the
// following line (comment-above form).
func collectDirectives(pkg *Package) *directives {
	ds := &directives{byLine: make(map[string]map[int][]*directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				d := parseDirective(pkg.Fset.Position(c.Pos()), rest)
				ds.list = append(ds.list, d)
				lines := ds.byLine[d.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					ds.byLine[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return ds
}

// parseDirective splits "check1,check2 -- justification".
func parseDirective(pos token.Position, rest string) *directive {
	names, just, found := strings.Cut(rest, " -- ")
	d := &directive{pos: pos, justified: found && strings.TrimSpace(just) != ""}
	for _, n := range strings.Split(strings.TrimSpace(names), ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.checks = append(d.checks, n)
		}
	}
	return d
}

// allows reports whether a justified directive suppresses d. Unjustified
// directives never suppress: the violation and the bad directive are both
// reported, forcing the author to write the why.
func (ds *directives) allows(d Diagnostic) bool {
	for _, dir := range ds.byLine[d.Pos.Filename][d.Pos.Line] {
		if !dir.justified {
			continue
		}
		for _, name := range dir.checks {
			if name == d.Check {
				return true
			}
		}
	}
	return false
}

// problems reports malformed directives: a missing justification, an empty
// check list, or a check name that doesn't exist.
func (ds *directives) problems() []Diagnostic {
	known := make(map[string]bool)
	for _, c := range AllChecks() {
		known[c.Name] = true
	}
	var out []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		out = append(out, Diagnostic{Check: "directive", Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	for _, dir := range ds.list {
		if len(dir.checks) == 0 {
			report(dir.pos, "%s names no check; want %s <check> -- <why>", directivePrefix, directivePrefix)
			continue
		}
		for _, name := range dir.checks {
			if !known[name] {
				report(dir.pos, "%s names unknown check %q (have %s)",
					directivePrefix, name, strings.Join(CheckNames(), ", "))
			}
		}
		if !dir.justified {
			report(dir.pos, "%s needs a justification: %s %s -- <why>",
				directivePrefix, directivePrefix, strings.Join(dir.checks, ","))
		}
	}
	return out
}
