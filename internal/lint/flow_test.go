package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// traceDomain is a toy transfers implementation that records every hook the
// walker fires, independent of any concrete check. The abstract state of a
// variable is the source text it was last assigned from, and joins render as
// join(a,b), so the trace makes the walker's control-flow treatment —
// branch cloning, terminator pruning, zero-iteration loop joins, scope exit
// — directly assertable.
type traceDomain struct {
	info   *types.Info
	events []string
}

func (d *traceDomain) logf(format string, args ...any) {
	d.events = append(d.events, fmt.Sprintf(format, args...))
}

func (d *traceDomain) join(a, b string) string {
	if a == b {
		return a
	}
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return "join(" + a + "," + b + ")"
}

// describe renders an expression compactly for states and trace lines.
func describe(x ast.Expr) string {
	switch v := x.(type) {
	case nil:
		return "<nil>"
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.CallExpr:
		return describe(v.Fun) + "()"
	case *ast.FuncLit:
		return "func-lit"
	}
	return "expr"
}

func (d *traceDomain) assign(e env[string], lhs, rhs ast.Expr, define bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		d.logf("assign expr <- %s", describe(rhs))
		return
	}
	d.logf("assign %s <- %s", id.Name, describe(rhs))
	if id.Name == "_" {
		return
	}
	var obj types.Object
	if define {
		obj = d.info.Defs[id]
	} else {
		obj = d.info.Uses[id]
	}
	if obj != nil && rhs != nil {
		e[obj] = describe(rhs)
	}
}

func (d *traceDomain) call(e env[string], call *ast.CallExpr) {
	d.logf("call %s", describe(call.Fun))
}

func (d *traceDomain) ret(e env[string], ret *ast.ReturnStmt) {
	d.logf("return")
}

func (d *traceDomain) rng(e env[string], rs *ast.RangeStmt) {
	d.logf("range")
	for _, ie := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := ie.(*ast.Ident); ok && id.Name != "_" {
			if obj := d.info.Defs[id]; obj != nil {
				e[obj] = "iter"
			}
		}
	}
}

func (d *traceDomain) use(e env[string], id *ast.Ident) {
	obj := d.info.Uses[id]
	if obj == nil {
		return
	}
	if st, tracked := e[obj]; tracked {
		d.logf("use %s=%s", id.Name, st)
	}
}

func (d *traceDomain) captured(e env[string], obj types.Object) {
	d.logf("captured %s=%s", obj.Name(), e[obj])
}

func (d *traceDomain) exitScope(e env[string], objs []types.Object) {
	for _, obj := range objs {
		if st, tracked := e[obj]; tracked {
			d.logf("exit %s=%s", obj.Name(), st)
		}
	}
}

// traceFunc type-checks src (a package clause plus declarations), walks the
// body of the function named f with an empty initial environment, and
// returns the recorded event trace.
func traceFunc(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "trace.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("tracepkg", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var body *ast.BlockStmt
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no function f in source")
	}
	d := &traceDomain{info: info}
	w := &flowWalker[string]{info: info, tr: d}
	w.walk(body, make(env[string]))
	return d.events
}

func TestFlowTransfers(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "assign and use",
			src: `package p
func f() {
	x := 1
	y := x
	_ = y
}`,
			want: []string{
				"assign x <- 1",
				"use x=1",
				"assign y <- x",
				"use y=x",
				"assign _ <- y",
				"exit x=1", "exit y=x",
			},
		},
		{
			name: "branch join",
			src: `package p
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	_ = x
}`,
			want: []string{
				"assign x <- 1",
				"assign x <- 2",
				"use x=join(2,1)",
				"assign _ <- x",
				"exit x=join(2,1)",
			},
		},
		{
			name: "return terminates its branch",
			src: `package p
func f(c bool) {
	x := 1
	if c {
		x = 2
		return
	}
	_ = x
}`,
			want: []string{
				"assign x <- 1",
				"assign x <- 2",
				"return",
				"exit x=2",
				// After the if, only the fall-through path survives: x is
				// still 1, not a join.
				"use x=1",
				"assign _ <- x",
				"exit x=1",
			},
		},
		{
			name: "both branches terminate",
			src: `package p
func f(c bool) int {
	x := 1
	if c {
		return x
	} else {
		return 0
	}
}`,
			want: []string{
				"assign x <- 1",
				"use x=1",
				"return",
				"exit x=1",
				"return",
				"exit x=1",
				// No fall-through exit: the if terminates the function.
			},
		},
		{
			name: "loop joins with zero iterations",
			src: `package p
func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = 2
	}
	_ = x
}`,
			want: []string{
				"assign x <- 1",
				"assign i <- 0",
				"use i=0",
				"assign x <- 2",
				"use i=0",
				"use x=join(2,1)",
				"assign _ <- x",
				"exit x=join(2,1)",
			},
		},
		{
			name: "range binds and unbinds iteration variables",
			src: `package p
func f(m map[string]int) {
	t := 0
	for k, v := range m {
		t = v
		_ = k
	}
	_ = t
}`,
			want: []string{
				"assign t <- 0",
				"range",
				"use v=iter",
				"assign t <- v",
				"use k=iter",
				"assign _ <- k",
				"exit k=iter",
				"exit v=iter",
				"use t=join(v,0)",
				"assign _ <- t",
				"exit t=join(v,0)",
			},
		},
		{
			name: "call visits arguments first",
			src: `package p
func g(int) {}
func f() {
	x := 1
	g(x)
}`,
			want: []string{
				"assign x <- 1",
				"use x=1",
				"call g",
				"exit x=1",
			},
		},
		{
			name: "tuple assignment shares the call",
			src: `package p
func g() (int, int) { return 1, 2 }
func f() {
	a, b := g()
	_, _ = a, b
}`,
			want: []string{
				"call g",
				"assign a <- g()",
				"assign b <- g()",
				"use a=g()",
				"use b=g()",
				"assign _ <- a",
				"assign _ <- b",
				"exit a=g()", "exit b=g()",
			},
		},
		{
			name: "function literal reports captures",
			src: `package p
func f() {
	x := 1
	h := func() int { return x }
	_ = h
}`,
			want: []string{
				"assign x <- 1",
				"captured x=1",
				"assign h <- func-lit",
				"use h=func-lit",
				"assign _ <- h",
				"exit x=1", "exit h=func-lit",
			},
		},
		{
			name: "panic terminates without scope exit",
			src: `package p
func f() {
	x := 1
	_ = x
	panic("boom")
}`,
			want: []string{
				"assign x <- 1",
				"use x=1",
				"assign _ <- x",
				"call panic",
				// No exit event: a panicking path owes no cleanup and must
				// not count as a function exit in summaries.
			},
		},
		{
			name: "inner block closes its own scope",
			src: `package p
func f() {
	x := 1
	{
		y := 2
		_ = y
	}
	_ = x
}`,
			want: []string{
				"assign x <- 1",
				"assign y <- 2",
				"use y=2",
				"assign _ <- y",
				"exit y=2",
				"use x=1",
				"assign _ <- x",
				"exit x=1",
			},
		},
		{
			name: "switch without default keeps the fall-through path",
			src: `package p
func f(n int) {
	x := 1
	switch n {
	case 0:
		x = 2
	}
	_ = x
}`,
			want: []string{
				"assign x <- 1",
				"assign x <- 2",
				"use x=join(2,1)",
				"assign _ <- x",
				"exit x=join(2,1)",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := traceFunc(t, tc.src)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("trace mismatch\n got: %q\nwant: %q", got, tc.want)
			}
		})
	}
}
