// Package lint implements marlinvet, a determinism and unit-safety static
// analyzer for the Marlin simulation core.
//
// Marlin's evaluation rests on every run being a pure function of its inputs
// and RNG seed (see internal/sim). That contract is easy to break silently:
// one time.Now in a model package, one float accumulated in map iteration
// order, and campaign outputs stop being byte-identical across runs. The
// checks in this package turn the contract into a machine-checked property:
//
//   - wallclock: no host-clock reads (time.Now/Since/Sleep/...) or global
//     math/rand draws anywhere in the tree without a justified directive.
//   - maporder: a range over a map whose body does order-sensitive work
//     (appends to a slice, accumulates a float, writes output, schedules
//     events) must iterate sorted keys instead.
//   - rngsource: model packages draw randomness from a seeded sim.Rand,
//     never math/rand.
//   - simtime: exported model-package APIs carry sim.Time/sim.Duration,
//     not time.Time/time.Duration.
//   - poolmisuse: a pooled packet must not be used after Release returned
//     it to the pool (block-local use-after-free on the packet pool).
//   - poolflow: interprocedural ownership tracking for pooled packets —
//     use-after-Release and leaks across call boundaries, driven by
//     per-function ownership summaries (does the callee consume or borrow
//     its packet arguments?).
//   - simunits: unit-provenance tracking for time values — a nanosecond
//     count (time.Duration, *.Nanoseconds()) converted or mixed into
//     picosecond sim.Time/sim.Duration without visible scaling is a
//     finding, and vice versa.
//   - detflow: determinism dataflow — goroutines and selects in model code
//     (annotated when reachable from an engine callback via the call
//     graph), and map-iteration-order dataflow escaping the loop
//     (last-writer-wins, plain-assign float accumulation).
//
// All checks run over one shared Program: each package is parsed and
// type-checked once per invocation, and the dataflow checks share a function
// index, a static call graph, and memoized per-function summaries, so adding
// a check adds a syntax walk, never another type-check.
//
// Intentional violations are suppressed with a directive that must carry a
// justification:
//
//	//marlin:allow wallclock -- progress ETA is host-side UX, not model state
//
// The directive covers its own line and the next line. An unjustified or
// unknown-check directive is itself a diagnostic, so the suppression story
// stays auditable.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at its source location.
type Diagnostic struct {
	Check string
	Pos   token.Position
	Msg   string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Check)
}

// jsonDiagnostic is the stable wire shape of one finding for -json output.
type jsonDiagnostic struct {
	Check  string `json:"check"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Msg    string `json:"msg"`
}

// WriteJSON renders the diagnostics as a JSON array (schema marlinvet/v1:
// objects with check, file, line, column, msg), one stable shape for CI and
// editor tooling to consume.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Check:  d.Check,
			File:   d.Pos.Filename,
			Line:   d.Pos.Line,
			Column: d.Pos.Column,
			Msg:    d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Check is one marlinvet analysis, in the style of go/analysis: a name, a
// one-line doc string, and a Run function that reports through the pass.
type Check struct {
	Name string
	Doc  string
	// ModelOnly restricts the check to model packages; host-side packages
	// (fleet, cmd, examples) are skipped entirely.
	ModelOnly bool
	Run       func(*Pass)
}

// Pass carries one check's execution over one package, with access to the
// whole-program context for interprocedural facts.
type Pass struct {
	Pkg   *Package
	Prog  *Program
	check *Check
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check: p.check.Name,
		Pos:   p.Pkg.Fset.Position(pos),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// AllChecks returns every registered check, in a stable order.
func AllChecks() []*Check {
	return []*Check{
		wallclockCheck, maporderCheck, rngsourceCheck, simtimeCheck, poolmisuseCheck,
		poolflowCheck, simunitsCheck, detflowCheck,
	}
}

// CheckNames returns the names of every registered check, sorted.
func CheckNames() []string {
	var names []string
	for _, c := range AllChecks() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// SelectChecks resolves a comma-separated name list ("" means all checks).
// A name prefixed with "-" removes the check from the selection instead, so
// "-poolflow" means every check except poolflow; additions and removals may
// be mixed, with removals winning.
func SelectChecks(names string) ([]*Check, error) {
	all := AllChecks()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Check)
	for _, c := range all {
		byName[c.Name] = c
	}
	var adds []*Check
	removed := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		neg := strings.HasPrefix(n, "-")
		name := strings.TrimPrefix(n, "-")
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
		}
		if neg {
			removed[c.Name] = true
		} else {
			adds = append(adds, c)
		}
	}
	if adds == nil {
		// Pure-removal selection: start from all checks.
		adds = all
	}
	var out []*Check
	for _, c := range adds {
		if !removed[c.Name] {
			out = append(out, c)
		}
	}
	return out, nil
}

// HostSide reports whether the package runs on the host side of the
// simulation boundary — campaign orchestration, CLIs, and examples — where
// wall-clock time and host randomness are legitimate. Everything else is
// model code bound by the determinism contract.
func HostSide(path string) bool {
	rel := strings.TrimPrefix(path, "marlin/")
	if strings.Contains(rel, "/testdata/") {
		// Fixture packages model model-side code regardless of where the
		// testdata tree lives.
		return false
	}
	switch {
	case rel == "internal/fleet" || strings.HasPrefix(rel, "internal/fleet/"):
		return true
	case rel == "internal/lint" || strings.HasPrefix(rel, "internal/lint/"):
		return true
	case strings.HasPrefix(rel, "cmd/"):
		return true
	case strings.HasPrefix(rel, "examples/"):
		return true
	}
	return false
}

// Run executes the checks over the packages and returns the surviving
// diagnostics, sorted by position. All checks share one Program — one parse
// and type-check per package, one function index and call graph, memoized
// interprocedural summaries. Diagnostics covered by a justified
// //marlin:allow directive are suppressed; malformed directives are
// reported; identical findings from overlapping checks are deduplicated.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	prog := newProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		var raw []Diagnostic
		for _, c := range checks {
			if c.ModelOnly && HostSide(pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg, Prog: prog, check: c, diags: &raw}
			c.Run(pass)
		}
		seen := make(map[Diagnostic]bool)
		for _, d := range raw {
			if seen[d] {
				continue
			}
			seen[d] = true
			if !dirs.allows(d) {
				out = append(out, d)
			}
		}
		out = append(out, dirs.problems()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
