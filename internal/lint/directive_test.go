package lint

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		rest      string
		checks    []string
		justified bool
	}{
		{" wallclock -- host-side ETA", []string{"wallclock"}, true},
		{" wallclock,maporder -- one directive, two checks", []string{"wallclock", "maporder"}, true},
		{" wallclock, maporder -- spaces around the comma", []string{"wallclock", "maporder"}, true},
		// No " -- " separator: unjustified.
		{" wallclock", []string{"wallclock"}, false},
		// Separator but empty justification: still unjustified.
		{" wallclock --  ", []string{"wallclock"}, false},
		// No checks at all.
		{" -- why though", nil, true},
		{"", nil, false},
	}
	for _, tc := range cases {
		d := parseDirective(token.Position{Filename: "x.go", Line: 1}, tc.rest)
		if !reflect.DeepEqual(d.checks, tc.checks) || d.justified != tc.justified {
			t.Errorf("parseDirective(%q) = checks %v justified %v; want %v, %v",
				tc.rest, d.checks, d.justified, tc.checks, tc.justified)
		}
	}
}

// TestDirectiveCoverage pins the directive's reach: its own line (trailing
// form) and the next line (comment-above form), nothing further.
func TestDirectiveCoverage(t *testing.T) {
	dir := &directive{
		pos:       token.Position{Filename: "x.go", Line: 10},
		checks:    []string{"wallclock", "maporder"},
		justified: true,
	}
	ds := &directives{list: []*directive{dir}, byLine: map[string]map[int][]*directive{
		"x.go": {10: {dir}, 11: {dir}},
	}}
	diag := func(file string, line int, check string) Diagnostic {
		return Diagnostic{Check: check, Pos: token.Position{Filename: file, Line: line}}
	}
	for _, tc := range []struct {
		d    Diagnostic
		want bool
	}{
		{diag("x.go", 10, "wallclock"), true},  // same line
		{diag("x.go", 11, "wallclock"), true},  // line below
		{diag("x.go", 11, "maporder"), true},   // second check of the directive
		{diag("x.go", 12, "wallclock"), false}, // two lines below: out of reach
		{diag("x.go", 9, "wallclock"), false},  // line above the directive
		{diag("x.go", 11, "rngsource"), false}, // check not named
		{diag("y.go", 10, "wallclock"), false}, // different file
	} {
		if got := ds.allows(tc.d); got != tc.want {
			t.Errorf("allows(%s:%d %s) = %v, want %v",
				tc.d.Pos.Filename, tc.d.Pos.Line, tc.d.Check, got, tc.want)
		}
	}
	// An unjustified directive never suppresses, even on a covered line.
	dir.justified = false
	if ds.allows(diag("x.go", 10, "wallclock")) {
		t.Error("unjustified directive suppressed a diagnostic")
	}
}

func TestDirectiveProblems(t *testing.T) {
	mk := func(line int, justified bool, checks ...string) *directive {
		return &directive{pos: token.Position{Filename: "x.go", Line: line}, checks: checks, justified: justified}
	}
	ds := &directives{list: []*directive{
		mk(1, true, "wallclock"),            // fine
		mk(2, false, "wallclock"),           // missing justification
		mk(3, true, "nosuchcheck"),          // unknown check name is an error
		mk(4, true),                         // names no check
		mk(5, false, "alsonotacheck"),       // unknown name and unjustified: both reported
		mk(6, true, "poolflow", "simunits"), // new checks are known names
	}}
	var got []string
	for _, d := range ds.problems() {
		got = append(got, d.Pos.String()+" "+d.Msg)
	}
	wantSubstr := []string{
		"x.go:2 //marlin:allow needs a justification",
		`x.go:3 //marlin:allow names unknown check "nosuchcheck"`,
		"x.go:4 //marlin:allow names no check",
		`x.go:5 //marlin:allow names unknown check "alsonotacheck"`,
		"x.go:5 //marlin:allow needs a justification",
	}
	if len(got) != len(wantSubstr) {
		t.Fatalf("problems() = %d diagnostics %q, want %d", len(got), got, len(wantSubstr))
	}
	for i, want := range wantSubstr {
		if !strings.HasPrefix(got[i], want) {
			t.Errorf("problems()[%d] = %q, want prefix %q", i, got[i], want)
		}
	}
}

// TestDirectiveFixtureClean runs the end-to-end form: a fixture whose every
// violation carries a justified directive (trailing, line-above, and
// multi-check forms) produces zero diagnostics.
func TestDirectiveFixtureClean(t *testing.T) {
	if got := runFixture(t, "directive_ok", "wallclock"); got != nil {
		t.Errorf("directive_ok should be fully suppressed, got %v", got)
	}
}
