package fleet

import (
	"fmt"
	"io"
	"time"
)

// progress renders a live one-line campaign status: done/total, failures,
// completion rate, and an ETA extrapolated from the rate so far. It is
// carriage-return animated, so point it at a terminal (os.Stderr), not a
// log file. Callers serialize bump() under the campaign mutex.
type progress struct {
	w            io.Writer
	total        int
	done, failed int
	start        time.Time
}

func newProgress(w io.Writer, total int) *progress {
	return &progress{w: w, total: total, start: time.Now()} //marlin:allow wallclock -- ETA baseline for terminal progress; display only
}

func (p *progress) bump(failed bool) {
	p.done++
	if failed {
		p.failed++
	}
	p.render("\r")
}

func (p *progress) finish() {
	if p.w == nil || p.total == 0 {
		return
	}
	p.render("\r")
	fmt.Fprintln(p.w)
}

func (p *progress) render(prefix string) {
	if p.w == nil {
		return
	}
	elapsed := time.Since(p.start).Seconds() //marlin:allow wallclock -- ETA extrapolation for terminal progress; display only
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed
	}
	eta := "?"
	if rate > 0 {
		left := float64(p.total-p.done) / rate
		eta = (time.Duration(left*float64(time.Second)) / time.Second * time.Second).String()
	}
	fmt.Fprintf(p.w, "%sfleet: %d/%d done  %d failed  %.1f jobs/s  eta %s ",
		prefix, p.done, p.total, p.failed, rate, eta)
}
