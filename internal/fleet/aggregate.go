package fleet

import (
	"math"

	"marlin/internal/measure"
)

// Aggregation across seed replicates: scalar metrics reduce to
// mean/min/max, and raw sample sets merge into one distribution before any
// percentile is read — averaging per-replicate percentiles would bias the
// tails, merging the underlying samples does not.

// Stat summarizes one metric across replicates.
type Stat struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
}

// Aggregate reduces each metric present in the outputs to a Stat. Outputs
// may be nil (failed replicates); they are skipped.
func Aggregate(outputs []*Output) map[string]Stat {
	stats := make(map[string]Stat)
	sums := make(map[string]float64)
	for _, o := range outputs {
		if o == nil {
			continue
		}
		for k, v := range o.Metrics {
			s, ok := stats[k]
			if !ok {
				s = Stat{Min: math.Inf(1), Max: math.Inf(-1)}
			}
			s.N++
			s.Min = math.Min(s.Min, v)
			s.Max = math.Max(s.Max, v)
			stats[k] = s
			sums[k] += v
		}
	}
	for k, s := range stats {
		s.Mean = sums[k] / float64(s.N)
		stats[k] = s
	}
	return stats
}

// MergedCDF builds one empirical distribution for a sample key by merging
// each replicate's CDF (union of all samples).
func MergedCDF(outputs []*Output, key string) measure.CDF {
	cdfs := make([]measure.CDF, 0, len(outputs))
	for _, o := range outputs {
		if o == nil {
			continue
		}
		if s, ok := o.Samples[key]; ok {
			cdfs = append(cdfs, measure.NewCDF(s))
		}
	}
	return measure.MergeCDFs(cdfs...)
}

// Outputs extracts the outputs of successful results (nil for failures),
// preserving order for aggregation.
func Outputs(results []JobResult) []*Output {
	outs := make([]*Output, len(results))
	for i, r := range results {
		outs[i] = r.Output
	}
	return outs
}
