package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marlin/internal/experiments"
	"marlin/internal/sim"
)

// syntheticJobs builds n deterministic jobs whose outputs depend only on
// the campaign seed and their ID — the fleet determinism contract in
// miniature.
func syntheticJobs(n int, base uint64) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job%02d", i)
		seed := DeriveSeed(base, id)
		jobs[i] = Job{ID: id, Run: func() (*Output, error) {
			rng := sim.NewRand(seed)
			samples := make([]float64, 64)
			var sum float64
			for j := range samples {
				samples[j] = rng.Float64()
				sum += samples[j]
			}
			return &Output{
				Metrics: map[string]float64{"sum": sum, "first": samples[0]},
				Samples: map[string][]float64{"xs": samples},
			}, nil
		}}
	}
	return jobs
}

// outputsJSON projects results onto their order-and-payload content,
// excluding wall-clock fields, for byte-comparison.
func outputsJSON(t *testing.T, results []JobResult) []byte {
	t.Helper()
	type row struct {
		ID     string  `json:"id"`
		Err    string  `json:"err"`
		Output *Output `json:"output"`
	}
	rows := make([]row, len(results))
	for i, r := range results {
		rows[i] = row{r.ID, r.Err, r.Output}
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	seq, err := Run(syntheticJobs(32, 7), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(syntheticJobs(32, 7), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := outputsJSON(t, seq), outputsJSON(t, par)
	if string(a) != string(b) {
		t.Fatalf("workers=8 campaign differs from workers=1:\n%s\nvs\n%s", a, b)
	}
}

// TestExperimentDeterminism runs real registry experiments through the pool
// and checks the parallel results equal direct sequential runs — the
// contract behind `marlinctl all -j N`.
func TestExperimentDeterminism(t *testing.T) {
	names := []string{"table-capabilities", "table-amplify", "table-ccmodules"}
	jobs := make([]Job, len(names))
	for i, name := range names {
		jobs[i] = Job{ID: name, Run: func() (*Output, error) {
			res, err := experiments.Run(name, experiments.Options{})
			if err != nil {
				return nil, err
			}
			return &Output{Table: res}, nil
		}}
	}
	results, err := Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		want, err := experiments.Run(name, experiments.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].OK() {
			t.Fatalf("%s failed: %s", name, results[i].Err)
		}
		if !reflect.DeepEqual(results[i].Output.Table, want) {
			t.Errorf("%s: parallel result differs from sequential", name)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := syntheticJobs(4, 1)
	jobs[2].Run = func() (*Output, error) { panic("poisoned job") }
	results, err := Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 2 {
			if r.OK() || !strings.Contains(r.Err, "poisoned job") {
				t.Errorf("job 2: want recorded panic, got %+v", r)
			}
			continue
		}
		if !r.OK() {
			t.Errorf("job %d: poisoned neighbour leaked: %s", i, r.Err)
		}
	}
	if got := Failed(results); got != 1 {
		t.Errorf("Failed = %d, want 1", got)
	}
}

func TestTimeoutAndRetryAccounting(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	var hungAttempts, flakyAttempts atomic.Int32
	jobs := []Job{
		{ID: "hung", Run: func() (*Output, error) {
			hungAttempts.Add(1)
			<-block // never returns on its own
			return &Output{}, nil
		}},
		{ID: "flaky", Run: func() (*Output, error) {
			if flakyAttempts.Add(1) == 1 {
				return nil, fmt.Errorf("transient failure")
			}
			return &Output{Metrics: map[string]float64{"ok": 1}}, nil
		}},
		{ID: "good", Run: func() (*Output, error) { return &Output{}, nil }},
	}
	results, err := Run(jobs, Options{Workers: 2, Timeout: 30 * time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	hung := results[0]
	if hung.OK() || !strings.Contains(hung.Err, "timed out") {
		t.Errorf("hung job: want timeout failure, got %+v", hung)
	}
	if hung.Attempts != 3 {
		t.Errorf("hung job attempts = %d, want 3 (1 + 2 retries)", hung.Attempts)
	}
	if got := hungAttempts.Load(); got != 3 {
		t.Errorf("hung job executed %d times, want 3", got)
	}
	flaky := results[1]
	if !flaky.OK() || flaky.Attempts != 2 {
		t.Errorf("flaky job: want success on attempt 2, got %+v", flaky)
	}
	if !results[2].OK() || results[2].Attempts != 1 {
		t.Errorf("good job: want first-try success, got %+v", results[2])
	}
}

func TestCheckpointResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	var executed atomic.Int32
	mkJobs := func(n int) []Job {
		jobs := syntheticJobs(n, 3)
		for i := range jobs {
			inner := jobs[i].Run
			jobs[i].Run = func() (*Output, error) {
				executed.Add(1)
				return inner()
			}
		}
		return jobs
	}

	// A campaign killed after 3 of 6 jobs: run only the first half.
	if _, err := Run(mkJobs(6)[:3], Options{Workers: 2, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 3 {
		t.Fatalf("first run executed %d jobs, want 3", got)
	}
	// A torn final line from the kill must not poison the resume.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job99","attempts`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	executed.Store(0)
	var order []int
	results, err := Run(mkJobs(6), Options{
		Workers: 2,
		Journal: journal,
		OnResult: func(i int, r JobResult) error {
			order = append(order, i)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 3 {
		t.Errorf("resume executed %d jobs, want only the 3 remaining", got)
	}
	for i, r := range results {
		if !r.OK() {
			t.Errorf("job %d failed after resume: %s", i, r.Err)
		}
		if wantCached := i < 3; r.Cached != wantCached {
			t.Errorf("job %d cached = %v, want %v", i, r.Cached, wantCached)
		}
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("OnResult order = %v, want in-order emission", order)
	}
	// The resumed results must match a fresh straight-through run.
	fresh, err := Run(syntheticJobs(6, 3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(outputsJSON(t, results)) != string(outputsJSON(t, fresh)) {
		t.Error("resumed campaign differs from uninterrupted campaign")
	}
}

func TestOnResultOrderAndCancel(t *testing.T) {
	var mu sync.Mutex
	var order []int
	_, err := Run(syntheticJobs(24, 5), Options{
		Workers: 8,
		OnResult: func(i int, r JobResult) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("OnResult order = %v, want 0..23 in order", order)
		}
	}

	boom := fmt.Errorf("emit failed")
	_, err = Run(syntheticJobs(8, 5), Options{
		Workers:  2,
		OnResult: func(i int, r JobResult) error { return boom },
	})
	if err != boom {
		t.Errorf("Run error = %v, want the OnResult error", err)
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := Run([]Job{{ID: "", Run: nil}}, Options{}); err == nil {
		t.Error("empty job ID accepted")
	}
	dup := syntheticJobs(2, 1)
	dup[1].ID = dup[0].ID
	if _, err := Run(dup, Options{}); err == nil {
		t.Error("duplicate job IDs accepted")
	}
}

func TestDeriveSeed(t *testing.T) {
	a, b := DeriveSeed(1, "x"), DeriveSeed(1, "x")
	if a != b {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, "x") == DeriveSeed(1, "y") {
		t.Error("distinct IDs map to the same seed")
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("distinct bases map to the same seed")
	}
}

func TestReplicate(t *testing.T) {
	var mu sync.Mutex
	seeds := map[uint64]bool{}
	jobs := Replicate("pt", 5, 9, func(seed uint64) (*Output, error) {
		mu.Lock()
		seeds[seed] = true
		mu.Unlock()
		return &Output{Metrics: map[string]float64{"seed": float64(seed)}}, nil
	})
	if len(jobs) != 5 || jobs[0].ID != "pt/rep0" || jobs[4].ID != "pt/rep4" {
		t.Fatalf("bad replicate expansion: %+v", jobs)
	}
	if _, err := Run(jobs, Options{Workers: 5}); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Errorf("replicates shared seeds: %d distinct of 5", len(seeds))
	}
}

func TestAggregateAndMergedCDF(t *testing.T) {
	outs := []*Output{
		{Metrics: map[string]float64{"m": 1}, Samples: map[string][]float64{"xs": {1, 3}}},
		nil, // a failed replicate
		{Metrics: map[string]float64{"m": 3}, Samples: map[string][]float64{"xs": {2, 4}}},
	}
	stats := Aggregate(outs)
	m := stats["m"]
	if m.N != 2 || m.Mean != 2 || m.Min != 1 || m.Max != 3 {
		t.Errorf("Aggregate = %+v, want N=2 mean=2 min=1 max=3", m)
	}
	cdf := MergedCDF(outs, "xs")
	if cdf.Len() != 4 {
		t.Fatalf("merged CDF has %d samples, want 4", cdf.Len())
	}
	if got := cdf.Percentile(1); got != 4 {
		t.Errorf("merged p100 = %g, want 4", got)
	}
}
