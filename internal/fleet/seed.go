package fleet

import (
	"fmt"

	"marlin/internal/sim"
)

// DeriveSeed deterministically derives an independent per-job seed from a
// campaign base seed and the job's ID: FNV-1a over the ID, mixed with the
// base through the same splitmix64 finalizer behind sim.Rand (the
// campaign-level analogue of Rand.Split). The derivation depends only on
// (base, id) — never on worker count or scheduling — which is what makes
// replicated campaigns reproducible at any -j.
func DeriveSeed(base uint64, id string) uint64 {
	return sim.NewRand(sim.NewRand(base).Uint64() ^ fnv64(id)).Uint64()
}

// fnv64 is FNV-1a over the id bytes.
func fnv64(id string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * prime
	}
	return h
}

// Replicate expands one logical job into n seed-derived replicates. Each
// replicate's ID is "<id>/repK" and its seed is DeriveSeed(base, that ID),
// so the set of seeds is a pure function of (id, n, base).
func Replicate(id string, n int, base uint64, run func(seed uint64) (*Output, error)) []Job {
	jobs := make([]Job, n)
	for k := 0; k < n; k++ {
		repID := fmt.Sprintf("%s/rep%d", id, k)
		seed := DeriveSeed(base, repID)
		jobs[k] = Job{ID: repID, Run: func() (*Output, error) { return run(seed) }}
	}
	return jobs
}
