// Package fleet is Marlin's campaign runner: it executes many independent
// simulations — named experiments, parameter-sweep points, seed replicates —
// across all CPU cores. Each sim.Engine is an isolated deterministic world,
// so campaigns are embarrassingly parallel; fleet supplies the orchestration
// the paper's "high-throughput testing" goal implies: a worker pool with
// per-job panic recovery, wall-clock timeouts and bounded retry, a JSONL
// result journal with checkpoint/resume, a live progress line, and
// aggregation across replicates.
//
// Determinism contract: a job's outcome depends only on its own closure (its
// config and seed), never on scheduling. Results are collected — and the
// OnResult hook is invoked — in submission order regardless of worker count,
// so a campaign at -j 8 is byte-identical to the same campaign at -j 1.
package fleet

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"marlin/internal/experiments"
)

// Output is the payload a job produces. All three job kinds map onto it:
// named experiments fill Table, sweep points and replicates fill Metrics
// (scalar summaries) and Samples (raw series such as FCTs, so replicate
// aggregation can merge distributions rather than averaging percentiles).
type Output struct {
	// Metrics are scalar summary statistics, keyed by name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples are raw sample sets (e.g. "fct_us") for CDF merging.
	Samples map[string][]float64 `json:"samples,omitempty"`
	// Table is a full experiment artifact, when the job is one.
	Table *experiments.Result `json:"table,omitempty"`
}

// Job is one independent unit of campaign work. Run must be self-contained:
// it builds its own engine/tester from values captured in the closure and
// returns a pure function of them. IDs key the checkpoint journal, so they
// must be unique within a campaign and stable across reruns.
type Job struct {
	ID  string
	Run func() (*Output, error)
}

// JobResult records one job's outcome, successful or not. A failed job
// (error, panic, or timeout) carries the failure in Err; it never aborts
// the campaign.
type JobResult struct {
	ID        string  `json:"id"`
	Attempts  int     `json:"attempts"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Err       string  `json:"err,omitempty"`
	Output    *Output `json:"output,omitempty"`
	// Cached marks a result restored from the journal rather than rerun.
	Cached bool `json:"-"`
}

// OK reports whether the job succeeded.
func (r JobResult) OK() bool { return r.Err == "" }

// Options tune a campaign run.
type Options struct {
	// Workers is the pool size (<= 0 means GOMAXPROCS).
	Workers int
	// Timeout bounds one attempt's wall-clock time (0 = none). A timed-out
	// attempt is recorded as a failure; its goroutine is abandoned (Go
	// cannot preempt it), so campaigns survive hung jobs at the cost of a
	// leaked goroutine each.
	Timeout time.Duration
	// Retries is how many extra attempts a failed job gets.
	Retries int
	// Journal is a JSONL checkpoint path ("" = none). Completed jobs are
	// appended as they finish; rerunning a campaign against the same
	// journal skips jobs already recorded as successful (failures rerun).
	Journal string
	// Progress, when non-nil, receives a live one-line status
	// (done/total, failures, jobs/s, ETA), typically os.Stderr.
	Progress io.Writer
	// OnResult, when non-nil, is called once per job in submission order
	// (including journal-cached results) as results become emittable.
	// Returning an error cancels dispatch of not-yet-started jobs and
	// fails the campaign with that error.
	OnResult func(i int, r JobResult) error
}

// Run executes the jobs through the worker pool and returns their results
// in submission order. The returned error reports campaign-level failures
// only (bad options, journal IO, an OnResult abort); per-job failures are
// in the corresponding JobResult.Err.
func Run(jobs []Job, opts Options) ([]JobResult, error) {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("fleet: job with empty ID")
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("fleet: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var cached map[string]JobResult
	var jw *journalWriter
	if opts.Journal != "" {
		var err error
		if cached, err = loadJournal(opts.Journal); err != nil {
			return nil, err
		}
		if jw, err = openJournal(opts.Journal); err != nil {
			return nil, err
		}
		defer jw.close()
	}

	n := len(jobs)
	results := make([]JobResult, n)
	done := make([]bool, n)
	prog := newProgress(opts.Progress, n)

	var (
		mu         sync.Mutex
		emitErr    error
		next       int // next index to hand to OnResult
		cancel     = make(chan struct{})
		cancelOnce sync.Once
	)
	// emitLocked drains the in-order frontier of completed jobs into
	// OnResult; callers hold mu.
	emitLocked := func() {
		for next < n && done[next] {
			if opts.OnResult != nil && emitErr == nil {
				if err := opts.OnResult(next, results[next]); err != nil {
					emitErr = err
					cancelOnce.Do(func() { close(cancel) })
				}
			}
			next++
		}
	}

	var pending []int
	mu.Lock()
	for i, job := range jobs {
		if r, ok := cached[job.ID]; ok {
			r.Cached = true
			results[i] = r
			done[i] = true
			prog.bump(!r.OK())
		} else {
			pending = append(pending, i)
		}
	}
	emitLocked()
	mu.Unlock()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := runJob(jobs[i], opts)
				mu.Lock()
				results[i] = r
				done[i] = true
				if jw != nil {
					jw.append(r)
				}
				prog.bump(!r.OK())
				emitLocked()
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case idx <- i:
		case <-cancel:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	prog.finish()

	if emitErr != nil {
		return results, emitErr
	}
	if jw != nil {
		if err := jw.error(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// Failed counts unsuccessful results.
func Failed(results []JobResult) int {
	n := 0
	for _, r := range results {
		if !r.OK() {
			n++
		}
	}
	return n
}

// runJob executes one job with panic recovery, per-attempt timeout, and
// bounded retry.
func runJob(job Job, opts Options) JobResult {
	start := time.Now() //marlin:allow wallclock -- ElapsedMS reports host wall time per job; never feeds model state
	attempts := 0
	for {
		attempts++
		out, err := runOnce(job, opts.Timeout)
		elapsed := float64(time.Since(start)) / float64(time.Millisecond) //marlin:allow wallclock -- same host-side job timing

		if err == nil {
			return JobResult{ID: job.ID, Attempts: attempts, ElapsedMS: elapsed, Output: out}
		}
		if attempts > opts.Retries {
			return JobResult{ID: job.ID, Attempts: attempts, ElapsedMS: elapsed, Err: err.Error()}
		}
	}
}

// runOnce runs a single attempt in its own goroutine so that a panic is
// contained and a hung job can be abandoned at the timeout.
func runOnce(job Job, timeout time.Duration) (*Output, error) {
	type outcome struct {
		out *Output
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{nil, fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		out, err := job.Run()
		ch <- outcome{out, err}
	}()
	if timeout <= 0 {
		o := <-ch
		return o.out, o.err
	}
	//marlin:allow wallclock -- watchdog for hung host jobs; a fired timer only abandons the attempt
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.out, o.err
	case <-timer.C:
		return nil, fmt.Errorf("timed out after %v", timeout)
	}
}
