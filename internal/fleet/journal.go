package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The journal is a JSONL checkpoint: one JobResult per line, appended as
// jobs finish. Resume semantics are keyed purely by job ID — rerunning a
// campaign against the same journal skips every job whose ID is already
// recorded as successful and reruns the rest. A line that fails to parse
// (e.g. a half-written record from a killed run) is skipped, so a campaign
// interrupted mid-write still resumes cleanly.

// loadJournal reads the successful entries of an existing journal, keyed by
// job ID; the latest entry for an ID wins. A missing file is an empty
// journal, not an error.
func loadJournal(path string) (map[string]JobResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	defer f.Close()
	out := make(map[string]JobResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var r JobResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.ID == "" {
			continue // torn or foreign line — ignore
		}
		if r.OK() {
			out[r.ID] = r
		} else {
			delete(out, r.ID) // a later failure supersedes an earlier success
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: read journal: %w", err)
	}
	return out, nil
}

// journalWriter appends results as they complete. Writes happen under the
// campaign mutex, but the writer keeps its own lock so it is safe on its
// own; the first IO error is retained and surfaced when the campaign ends.
type journalWriter struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	return &journalWriter{f: f}, nil
}

func (w *journalWriter) append(r JobResult) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	line, err := json.Marshal(r)
	if err == nil {
		line = append(line, '\n')
		_, err = w.f.Write(line)
	}
	if err != nil {
		w.err = fmt.Errorf("fleet: append journal: %w", err)
	}
}

func (w *journalWriter) error() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *journalWriter) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("fleet: close journal: %w", err)
	}
}
