package fleet

import (
	"reflect"
	"testing"

	"marlin/internal/controlplane"
	"marlin/internal/sim"
)

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("ecn=8,65,200")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Key != "ecn" || !reflect.DeepEqual(ax.Values, []string{"8", "65", "200"}) {
		t.Errorf("ParseAxis = %+v", ax)
	}
	for _, bad := range []string{"", "ecn", "ecn=", "=8", "nope=1", "ecn=8,abc", "pfc=maybe", "linkdelay=fast"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestPointApply(t *testing.T) {
	pt := Point{Keys: []string{"algo", "ecn", "pfc", "linkdelay"}, Values: []string{"dcqcn", "20", "true", "2us"}}
	var spec controlplane.Spec
	if err := pt.Apply(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Algorithm != "dcqcn" || spec.ECNThresholdPkts != 20 || !spec.EnablePFC {
		t.Errorf("Apply left spec %+v", spec)
	}
	if spec.LinkDelay != 2*sim.Microsecond {
		t.Errorf("linkdelay = %v, want 2us", spec.LinkDelay)
	}
	if pt.ID() != "algo=dcqcn,ecn=20,pfc=true,linkdelay=2us" {
		t.Errorf("ID = %q", pt.ID())
	}
}

func TestCartesian(t *testing.T) {
	axes := []Axis{
		{Key: "algo", Values: []string{"dctcp", "dcqcn"}},
		{Key: "ecn", Values: []string{"8", "65", "200"}},
	}
	pts := Cartesian(axes)
	if len(pts) != 6 {
		t.Fatalf("cartesian size = %d, want 6", len(pts))
	}
	// First axis slowest: the order nested loops would produce.
	if pts[0].ID() != "algo=dctcp,ecn=8" || pts[3].ID() != "algo=dcqcn,ecn=8" {
		t.Errorf("order: %q ... %q", pts[0].ID(), pts[3].ID())
	}
	ids := map[string]bool{}
	for _, p := range pts {
		ids[p.ID()] = true
	}
	if len(ids) != 6 {
		t.Error("duplicate point IDs")
	}
	if got := Cartesian(nil); got != nil {
		t.Errorf("Cartesian(nil) = %v, want nil", got)
	}
}
