package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"marlin/internal/controlplane"
	"marlin/internal/sim"
)

// A sweep explores the cartesian product of TestConfig axes — the paper's
// R2 use case ("find the optimal configuration by adjusting CC parameters")
// generalized to any spec dimension. Axes are declared as "key=v1,v2,..."
// strings (the marlinctl -axis flag); every combination becomes one Point,
// and each point becomes one (or, with replicates, several) fleet Job.

// Axis is one swept configuration dimension.
type Axis struct {
	Key    string
	Values []string
}

// ParseAxis parses "key=v1,v2,v3" and validates the key and every value by
// test-applying them to a scratch spec.
func ParseAxis(s string) (Axis, error) {
	key, vals, ok := strings.Cut(s, "=")
	if !ok || key == "" || vals == "" {
		return Axis{}, fmt.Errorf("fleet: bad axis %q (want key=v1,v2,...)", s)
	}
	ax := Axis{Key: key, Values: strings.Split(vals, ",")}
	var scratch controlplane.Spec
	for _, v := range ax.Values {
		if err := applyAxis(&scratch, key, v); err != nil {
			return Axis{}, err
		}
	}
	return ax, nil
}

// AxisKeys lists the sweepable spec dimensions.
func AxisKeys() []string {
	keys := make([]string, 0, len(axisSetters))
	for k := range axisSetters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var axisSetters = map[string]func(*controlplane.Spec, string) error{
	"algo":     func(s *controlplane.Spec, v string) error { s.Algorithm = v; return nil },
	"receiver": func(s *controlplane.Spec, v string) error { s.Receiver = v; return nil },
	"ports":    intAxis(func(s *controlplane.Spec, n int) { s.Ports = n }),
	"flows":    intAxis(func(s *controlplane.Spec, n int) { s.FlowsPerPort = n }),
	"mtu":      intAxis(func(s *controlplane.Spec, n int) { s.MTU = n }),
	"ecn":      intAxis(func(s *controlplane.Spec, n int) { s.ECNThresholdPkts = n }),
	"queue":    intAxis(func(s *controlplane.Spec, n int) { s.NetQueueBytes = n }),
	"hops":     intAxis(func(s *controlplane.Spec, n int) { s.ExtraHops = n }),
	"pfc":      boolAxis(func(s *controlplane.Spec, b bool) { s.EnablePFC = b }),
	"int":      boolAxis(func(s *controlplane.Spec, b bool) { s.EnableINT = b }),
	"fpgarecv": boolAxis(func(s *controlplane.Spec, b bool) { s.ReceiverOnFPGA = b }),
	"linkdelay": func(s *controlplane.Spec, v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("fleet: axis linkdelay: %w", err)
		}
		s.LinkDelay = sim.Duration(d.Nanoseconds()) * sim.Nanosecond
		return nil
	},
}

func intAxis(set func(*controlplane.Spec, int)) func(*controlplane.Spec, string) error {
	return func(s *controlplane.Spec, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("fleet: axis value %q: %w", v, err)
		}
		set(s, n)
		return nil
	}
}

func boolAxis(set func(*controlplane.Spec, bool)) func(*controlplane.Spec, string) error {
	return func(s *controlplane.Spec, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("fleet: axis value %q: %w", v, err)
		}
		set(s, b)
		return nil
	}
}

func applyAxis(s *controlplane.Spec, key, value string) error {
	set, ok := axisSetters[key]
	if !ok {
		return fmt.Errorf("fleet: unknown axis %q (have %v)", key, AxisKeys())
	}
	return set(s, value)
}

// Point is one cartesian combination of axis values, in axis order.
type Point struct {
	Keys   []string
	Values []string
}

// ID is the point's stable identity ("ecn=8,algo=dctcp") — it keys the
// journal and seed derivation.
func (p Point) ID() string {
	parts := make([]string, len(p.Keys))
	for i, k := range p.Keys {
		parts[i] = k + "=" + p.Values[i]
	}
	return strings.Join(parts, ",")
}

// Apply sets the point's values on a spec.
func (p Point) Apply(s *controlplane.Spec) error {
	for i, k := range p.Keys {
		if err := applyAxis(s, k, p.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Cartesian expands the axes into every combination, first axis slowest —
// the order a human writing the nested loops by hand would produce.
func Cartesian(axes []Axis) []Point {
	points := []Point{{}}
	for _, ax := range axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				next = append(next, Point{
					Keys:   append(append([]string(nil), p.Keys...), ax.Key),
					Values: append(append([]string(nil), p.Values...), v),
				})
			}
		}
		points = next
	}
	if len(axes) == 0 {
		return nil
	}
	return points
}
