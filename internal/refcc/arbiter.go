package refcc

import (
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// PortArbiter models a NIC's QP scheduler: each queue pair's packets wait
// in their own send queue, and the hardware serves the queues round-robin
// at the port's line rate. Unlike a shared FIFO, a small flow's packets
// are never stuck behind another QP's backlog — the property that lets a
// commercial NIC keep short-flow completion times low during incast, and
// the sender-side analogue of Marlin's per-flow scheduling FIFO (§5.2).
type PortArbiter struct {
	eng  *sim.Engine
	rate sim.Rate
	out  netem.Node

	queues  map[packet.FlowID]*arbQueue
	rr      []packet.FlowID
	rrPos   int
	backlog int
	busy    bool

	// MaxBacklogBytes bounds total buffered bytes (0 = 64 MiB); a NIC
	// would stop polling WQEs rather than drop, so hitting the bound
	// indicates a mis-sized experiment and packets are still retained.
	MaxBacklogBytes int
	maxSeen         int

	// deliverFn is allocated once; scheduling a per-packet closure would
	// allocate on every frame.
	deliverFn sim.ArgFunc
}

type arbQueue struct {
	pkts []*packet.Packet
	head int
}

// NewPortArbiter builds an arbiter draining to out at the given rate.
func NewPortArbiter(eng *sim.Engine, rate sim.Rate, out netem.Node) *PortArbiter {
	a := &PortArbiter{
		eng: eng, rate: rate, out: out,
		queues: make(map[packet.FlowID]*arbQueue),
	}
	a.deliverFn = func(arg any) {
		a.out.Receive(arg.(*packet.Packet))
		a.drain()
	}
	return a
}

// Receive implements netem.Node: enqueue on the owning QP's send queue.
func (a *PortArbiter) Receive(p *packet.Packet) {
	q := a.queues[p.Flow]
	if q == nil {
		q = &arbQueue{}
		a.queues[p.Flow] = q
		a.rr = append(a.rr, p.Flow)
	}
	q.pkts = append(q.pkts, p)
	a.backlog += p.Size
	if a.backlog > a.maxSeen {
		a.maxSeen = a.backlog
	}
	if !a.busy {
		a.busy = true
		a.drain()
	}
}

// MaxBacklog reports the largest buffered volume seen.
func (a *PortArbiter) MaxBacklog() int { return a.maxSeen }

func (a *PortArbiter) drain() {
	p := a.next()
	if p == nil {
		a.busy = false
		return
	}
	a.backlog -= p.Size
	ser := a.rate.Serialize(packet.WireSize(p.Size))
	a.eng.ScheduleArg(ser, a.deliverFn, p)
}

// next picks the next packet round-robin across non-empty QP queues.
func (a *PortArbiter) next() *packet.Packet {
	for scanned := 0; scanned < len(a.rr); scanned++ {
		fl := a.rr[a.rrPos%len(a.rr)]
		a.rrPos++
		q := a.queues[fl]
		if q.head < len(q.pkts) {
			p := q.pkts[q.head]
			q.pkts[q.head] = nil
			q.head++
			if q.head == len(q.pkts) {
				q.pkts = q.pkts[:0]
				q.head = 0
			}
			return p
		}
	}
	return nil
}
