package refcc

import (
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ConnectXQP models one queue pair of a commercial RDMA NIC running DCQCN
// for the Figure 9 fidelity comparison. The control law is DCQCN, but the
// internals differ from Marlin's FPGA module the way a proprietary
// implementation would (§7.4: "due to the proprietary nature of the DCQCN
// implementation in commercial NICs, it was not possible to achieve
// complete equivalence"):
//
//   - floating-point alpha and rates;
//   - rate updates applied at a coarse hardware pacing granularity
//     (1 us scheduler quantum) rather than per event;
//   - a combined increase timer instead of Marlin's separate byte/timer
//     stage machinery.
//
// Flows run back-to-back per QP ("a new flow is initiated immediately
// after the completion of the previous one"), the verbs-tool behaviour of
// the FCT experiment.
type ConnectXQP struct {
	eng  *sim.Engine
	out  netem.Node
	flow packet.FlowID
	mtu  int
	line sim.Rate

	// DCQCN state.
	rc, rt   float64 // bits/s
	alpha    float64
	g        float64
	aiBps    float64
	haiBps   float64
	frSteps  int
	stage    int
	minRate  float64
	alphaTmr *sim.Ticker
	rateTmr  *sim.Ticker

	// Pacing at the hardware quantum.
	quantum   sim.Duration
	nextSend  sim.Time
	paceArmed bool

	// Flow progress.
	una, nxt uint32
	end      uint32
	flowSize uint32
	started  sim.Time
	active   bool
	rto      sim.Duration
	rtoTimer sim.Handle

	onComplete func(flow packet.FlowID, sizePkts uint32, fct sim.Duration)
	nextFlow   func() uint32 // closed-loop size source; nil = stop after one

	// paceFn and rtoFn are allocated once; scheduling a fresh closure would
	// allocate per quantum / per packet.
	paceFn sim.Func
	rtoFn  sim.Func
}

// ConnectXConfig configures one QP.
type ConnectXConfig struct {
	Flow     packet.FlowID
	MTU      int
	LineRate sim.Rate
	// G is the DCQCN gain (default 1/256).
	G float64
	// AlphaTimer and RateTimer default to 55us / 300us.
	AlphaTimer sim.Duration
	RateTimer  sim.Duration
	// RateAI / RateHAI default to 40 / 400 Mbps.
	RateAI  sim.Rate
	RateHAI sim.Rate
	// FastRecoverySteps defaults to 5.
	FastRecoverySteps int
	// MinRate floors the rate (default 40 Mbps).
	MinRate sim.Rate
	// RTO defaults to 1 ms.
	RTO sim.Duration
}

// NewConnectXQP builds a QP sending toward out.
func NewConnectXQP(eng *sim.Engine, cfg ConnectXConfig, out netem.Node) *ConnectXQP {
	if cfg.G == 0 {
		cfg.G = 1.0 / 256
	}
	if cfg.AlphaTimer == 0 {
		cfg.AlphaTimer = sim.Micros(55)
	}
	if cfg.RateTimer == 0 {
		cfg.RateTimer = sim.Micros(300)
	}
	if cfg.RateAI == 0 {
		cfg.RateAI = 40 * sim.Mbps
	}
	if cfg.RateHAI == 0 {
		cfg.RateHAI = 400 * sim.Mbps
	}
	if cfg.FastRecoverySteps == 0 {
		cfg.FastRecoverySteps = 5
	}
	if cfg.MinRate == 0 {
		cfg.MinRate = 40 * sim.Mbps
	}
	if cfg.RTO == 0 {
		cfg.RTO = sim.Millisecond
	}
	q := &ConnectXQP{
		eng: eng, out: out, flow: cfg.Flow, mtu: cfg.MTU, line: cfg.LineRate,
		rc: float64(cfg.LineRate), rt: float64(cfg.LineRate),
		alpha: 1, g: cfg.G,
		aiBps: float64(cfg.RateAI), haiBps: float64(cfg.RateHAI),
		frSteps: cfg.FastRecoverySteps, minRate: float64(cfg.MinRate),
		quantum: sim.Microsecond, rto: cfg.RTO,
	}
	q.alphaTmr = sim.NewTicker(eng, cfg.AlphaTimer, q.alphaTick)
	q.rateTmr = sim.NewTicker(eng, cfg.RateTimer, q.rateTick)
	q.paceFn = func() {
		q.paceArmed = false
		q.pace()
	}
	q.rtoFn = q.onRTO
	return q
}

// OnComplete registers the FCT callback.
func (q *ConnectXQP) OnComplete(fn func(packet.FlowID, uint32, sim.Duration)) {
	q.onComplete = fn
}

// RunClosedLoop starts the QP with sizes drawn from next after each
// completion (the verbs FCT-tool behaviour).
func (q *ConnectXQP) RunClosedLoop(next func() uint32) {
	q.nextFlow = next
	q.startFlow(next())
}

// StartFlow sends a single flow of sizePkts packets.
func (q *ConnectXQP) StartFlow(sizePkts uint32) { q.startFlow(sizePkts) }

// startFlow opens the next flow. PSNs continue monotonically across
// back-to-back flows on a QP (like a long-lived RDMA connection), so the
// receiver needs no reset between them.
func (q *ConnectXQP) startFlow(sizePkts uint32) {
	q.end = q.nxt + sizePkts
	q.flowSize = sizePkts
	q.started = q.eng.Now()
	q.nextSend = q.started
	q.active = true
	q.alphaTmr.Start()
	q.rateTmr.Start()
	q.pace()
}

// Rate returns the QP's current sending rate.
func (q *ConnectXQP) Rate() sim.Rate { return sim.Rate(q.rc) }

// pace is the hardware scheduler quantum: emit packets owed by the
// current rate, then rearm.
func (q *ConnectXQP) pace() {
	if !q.active {
		return
	}
	now := q.eng.Now()
	// Cap the pacing credit at one quantum so a stall does not turn into
	// an unbounded burst, while normal operation keeps full line rate.
	if q.nextSend < now.Add(-q.quantum) {
		q.nextSend = now.Add(-q.quantum)
	}
	for q.nxt < q.end && now >= q.nextSend {
		q.emit(q.nxt, false)
		q.nxt++
	}
	if q.paceArmed {
		return
	}
	q.paceArmed = true
	next := q.nextSend
	if min := now.Add(q.quantum); next < min {
		next = min
	}
	q.eng.ScheduleAt(next, q.paceFn)
}

func (q *ConnectXQP) emit(psn uint32, rtx bool) {
	now := q.eng.Now()
	p := packet.NewData(q.flow, psn, q.mtu, now)
	if rtx {
		p.Flags |= packet.FlagRetransmit
	}
	gap := sim.Duration(float64(packet.WireSize(q.mtu)*8) / q.rc * float64(sim.Second))
	q.nextSend = q.nextSend.Add(gap)
	q.armRTO()
	q.out.Receive(p)
}

func (q *ConnectXQP) armRTO() {
	q.rtoTimer.Cancel()
	q.rtoTimer = q.eng.Schedule(q.rto, q.rtoFn)
}

func (q *ConnectXQP) onRTO() {
	if !q.active || q.una == q.nxt {
		return
	}
	q.nxt = q.una // go-back-N restart
	q.pace()
}

// Receive implements netem.Node for returning ACK/NACK/CNP traffic.
func (q *ConnectXQP) Receive(p *packet.Packet) {
	if !q.active || p.Flow != q.flow {
		p.Release()
		return
	}
	switch {
	case p.Type == packet.CNP || p.Flags.Has(packet.FlagCNPNotify):
		q.onCNP()
	case p.Flags.Has(packet.FlagNACK):
		if p.Ack > q.una {
			q.una = p.Ack
		}
		q.nxt = q.una // go-back-N
		q.pace()
	case p.Type == packet.ACK:
		if p.Ack > q.una {
			q.una = p.Ack
			q.checkDone()
		}
	}
	p.Release()
}

func (q *ConnectXQP) onCNP() {
	q.alpha = (1-q.g)*q.alpha + q.g
	q.rt = q.rc
	q.rc = maxF(q.rc*(1-q.alpha/2), q.minRate)
	q.stage = 0
}

func (q *ConnectXQP) alphaTick() {
	q.alpha = (1 - q.g) * q.alpha
}

func (q *ConnectXQP) rateTick() {
	if !q.active {
		return
	}
	q.stage++
	switch {
	case q.stage < q.frSteps:
		// fast recovery: halve toward target
	case q.stage < 2*q.frSteps:
		q.rt += q.aiBps
	default:
		q.rt += q.haiBps
	}
	if q.rt > float64(q.line) {
		q.rt = float64(q.line)
	}
	q.rc = (q.rc + q.rt) / 2
	if q.rc > float64(q.line) {
		q.rc = float64(q.line)
	}
}

func (q *ConnectXQP) checkDone() {
	if q.una < q.end {
		return
	}
	q.active = false
	q.rtoTimer.Cancel()
	q.alphaTmr.Stop()
	q.rateTmr.Stop()
	fct := q.eng.Now().Sub(q.started)
	size := q.flowSize
	if q.onComplete != nil {
		q.onComplete(q.flow, size, fct)
	}
	if q.nextFlow != nil {
		q.startFlow(q.nextFlow())
	}
}

// RoCEReceiver is the commercial-NIC peer: in-order delivery with NACK on
// gaps and CNP generation on CE marks, paced per flow.
type RoCEReceiver struct {
	eng         *sim.Engine
	out         netem.Node
	cnpInterval sim.Duration
	flows       map[packet.FlowID]*roceRxFlow
}

type roceRxFlow struct {
	expected uint32
	lastCNP  sim.Time
	cnpSent  bool
	nacked   bool
}

// NewRoCEReceiver builds a receiver whose ACK/NACK/CNP traffic goes to out.
func NewRoCEReceiver(eng *sim.Engine, cnpInterval sim.Duration, out netem.Node) *RoCEReceiver {
	if cnpInterval <= 0 {
		cnpInterval = sim.Micros(4)
	}
	return &RoCEReceiver{eng: eng, out: out, cnpInterval: cnpInterval,
		flows: make(map[packet.FlowID]*roceRxFlow)}
}

// Reset clears a flow's receive state for closed-loop reuse.
func (r *RoCEReceiver) Reset(flow packet.FlowID) { delete(r.flows, flow) }

// Receive implements netem.Node for the DATA stream.
func (r *RoCEReceiver) Receive(p *packet.Packet) {
	if p.Type != packet.DATA {
		p.Release()
		return
	}
	f := r.flows[p.Flow]
	if f == nil {
		f = &roceRxFlow{}
		r.flows[p.Flow] = f
	}
	if p.Flags.Has(packet.FlagCE) {
		now := r.eng.Now()
		if !f.cnpSent || now.Sub(f.lastCNP) >= r.cnpInterval {
			f.cnpSent = true
			f.lastCNP = now
			cnp := packet.Get()
			cnp.Type = packet.CNP
			cnp.Flow = p.Flow
			cnp.Ack = f.expected
			cnp.Flags = packet.FlagCNPNotify
			cnp.Size = packet.ControlSize
			r.out.Receive(cnp)
		}
	}
	switch {
	case p.PSN == f.expected:
		f.expected++
		f.nacked = false
		a := packet.Get()
		a.Type = packet.ACK
		a.Flow = p.Flow
		a.PSN = p.PSN
		a.Ack = f.expected
		a.Size = packet.ControlSize
		a.SentAt = p.SentAt
		r.out.Receive(a)
	case p.PSN > f.expected:
		if !f.nacked {
			f.nacked = true
			a := packet.Get()
			a.Type = packet.ACK
			a.Flow = p.Flow
			a.PSN = p.PSN
			a.Ack = f.expected
			a.Flags = packet.FlagNACK
			a.Size = packet.ControlSize
			a.SentAt = p.SentAt
			r.out.Receive(a)
		}
	}
	p.Release()
}
