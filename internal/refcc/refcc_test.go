package refcc

import (
	"testing"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// loop wires a sender and receiver through two links (forward carrying
// DATA, reverse carrying ACK/CNP) with the given forward queue config.
func dctcpLoop(t *testing.T, fwdCfg netem.LinkConfig) (*sim.Engine, *DCTCPSender, *netem.Link) {
	t.Helper()
	eng := sim.NewEngine()
	var sender *DCTCPSender
	reverse := netem.NewLink(eng, netem.LinkConfig{Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond)},
		netem.NodeFunc(func(p *packet.Packet) { sender.Receive(p) }))
	recv := NewReceiver(eng, reverse)
	forward := netem.NewLink(eng, fwdCfg, recv)
	sender = NewDCTCPSender(eng, DCTCPConfig{
		Flow: 1, MTU: 1024, LineRate: 100 * sim.Gbps,
		InitCwnd: 1, Ssthresh: 64,
	}, forward)
	return eng, sender, forward
}

func TestDCTCPSenderSlowStartThenCA(t *testing.T) {
	eng, s, _ := dctcpLoop(t, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond), QueueBytes: 1 << 20,
	})
	s.Start()
	eng.Run(sim.Time(sim.Millisecond))
	// No loss, no ECN: cwnd should have passed ssthresh (64) and kept
	// growing linearly.
	final := s.CwndTrace[len(s.CwndTrace)-1].V
	if final < 64 {
		t.Fatalf("cwnd = %v after 1ms clean run, want > 64", final)
	}
	// The trace must be monotone nondecreasing without loss events.
	for i := 1; i < len(s.CwndTrace); i++ {
		if s.CwndTrace[i].V < s.CwndTrace[i-1].V-1e-9 {
			t.Fatalf("cwnd decreased without loss at %v", s.CwndTrace[i].At)
		}
	}
}

func TestDCTCPSenderLossTriggersRecovery(t *testing.T) {
	eng, s, fwd := dctcpLoop(t, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond), QueueBytes: 1 << 20,
	})
	script := netem.NewScript().DropOnce(1, 200)
	fwd.AddHook(script.Hook)
	s.Start()
	eng.Run(sim.Time(sim.Millisecond))
	// The drop must produce a visible cwnd reduction.
	var sawDrop bool
	for i := 1; i < len(s.CwndTrace); i++ {
		if s.CwndTrace[i].V < s.CwndTrace[i-1].V-1 {
			sawDrop = true
			break
		}
	}
	if !sawDrop {
		t.Fatal("scripted loss produced no cwnd reduction")
	}
	if script.Pending() != 0 {
		t.Fatal("scripted drop never fired")
	}
	// And the flow must keep making progress afterwards.
	if s.una < 300 {
		t.Fatalf("una = %d, flow stalled after loss", s.una)
	}
}

func TestDCTCPSenderECNRaisesAlpha(t *testing.T) {
	eng, s, fwd := dctcpLoop(t, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond), QueueBytes: 1 << 20,
	})
	fwd.AddHook(netem.NewScript().MarkRange(1, 100, 400).Hook)
	s.Start()
	eng.Run(sim.Time(sim.Millisecond))
	peak := 0.0
	for _, p := range s.AlphaTrace {
		if p.V > peak {
			peak = p.V
		}
	}
	if peak < 0.05 {
		t.Fatalf("alpha peak = %v after 300 marked packets, want > 0.05", peak)
	}
	final := s.AlphaTrace[len(s.AlphaTrace)-1].V
	if final >= peak {
		t.Fatalf("alpha did not decay after marking stopped: peak=%v final=%v", peak, final)
	}
}

func TestDCTCPReceiverBuffersOutOfOrder(t *testing.T) {
	eng := sim.NewEngine()
	var acks []*packet.Packet
	r := NewReceiver(eng, netem.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) }))
	r.Receive(packet.NewData(1, 0, 1024, 0))
	r.Receive(packet.NewData(1, 2, 1024, 0))
	r.Receive(packet.NewData(1, 1, 1024, 0))
	if len(acks) != 3 || acks[2].Ack != 3 {
		t.Fatalf("acks = %+v", acks)
	}
}

// roceLoop wires one ConnectX QP through a bottleneck to a RoCE receiver.
func roceLoop(t *testing.T, ecn netem.ECNConfig) (*sim.Engine, *ConnectXQP) {
	t.Helper()
	eng := sim.NewEngine()
	var qp *ConnectXQP
	reverse := netem.NewLink(eng, netem.LinkConfig{Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond)},
		netem.NodeFunc(func(p *packet.Packet) { qp.Receive(p) }))
	recv := NewRoCEReceiver(eng, sim.Micros(4), reverse)
	forward := netem.NewLink(eng, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Duration(2 * sim.Microsecond),
		QueueBytes: 1 << 20, ECN: ecn,
	}, recv)
	qp = NewConnectXQP(eng, ConnectXConfig{Flow: 1, MTU: 1024, LineRate: 100 * sim.Gbps}, forward)
	return eng, qp
}

func TestConnectXFlowCompletes(t *testing.T) {
	eng, qp := roceLoop(t, netem.ECNConfig{})
	var fct sim.Duration
	qp.OnComplete(func(_ packet.FlowID, size uint32, d sim.Duration) {
		if size != 1000 {
			t.Errorf("size = %d", size)
		}
		fct = d
	})
	qp.StartFlow(1000)
	eng.Run(sim.Time(10 * sim.Millisecond))
	if fct == 0 {
		t.Fatal("flow never completed")
	}
	// 1000 pkts * 1044B at ~100G ~ 84us plus RTT.
	if us := fct.Microseconds(); us < 80 || us > 300 {
		t.Fatalf("fct = %vus, want ~90", us)
	}
}

func TestConnectXCNPReducesRate(t *testing.T) {
	// Mark everything (threshold 0) to force CNPs and a rate cut.
	eng, qp := roceLoop(t, netem.StepMarking(0, 1024))
	qp.StartFlow(1 << 20)
	eng.Run(sim.Time(sim.Micros(200)))
	if got := qp.Rate(); got >= 100*sim.Gbps {
		t.Fatalf("rate = %v after persistent marking, want < line", got)
	}
}

func TestConnectXRateRecovers(t *testing.T) {
	eng, qp := roceLoop(t, netem.ECNConfig{})
	qp.StartFlow(1 << 20)
	// Inject one CNP directly.
	eng.Schedule(sim.Micros(10), func() {
		qp.Receive(&packet.Packet{Type: packet.CNP, Flow: 1, Flags: packet.FlagCNPNotify, Size: 64})
	})
	eng.Run(sim.Time(sim.Micros(20)))
	cut := qp.Rate()
	if cut >= 100*sim.Gbps {
		t.Fatal("CNP did not cut rate")
	}
	eng.Run(sim.Time(10 * sim.Millisecond))
	if rec := qp.Rate(); rec <= cut || rec < 90*sim.Gbps {
		t.Fatalf("rate did not recover: cut=%v now=%v", cut, rec)
	}
}

func TestConnectXClosedLoopRunsManyFlows(t *testing.T) {
	eng, qp := roceLoop(t, netem.ECNConfig{})
	count := 0
	qp.OnComplete(func(packet.FlowID, uint32, sim.Duration) { count++ })
	qp.RunClosedLoop(func() uint32 { return 50 })
	eng.Run(sim.Time(2 * sim.Millisecond))
	if count < 20 {
		t.Fatalf("completed %d closed-loop flows in 2ms, want many", count)
	}
}

func TestRoCEReceiverNACKsGaps(t *testing.T) {
	eng := sim.NewEngine()
	var out []*packet.Packet
	r := NewRoCEReceiver(eng, sim.Micros(4), netem.NodeFunc(func(p *packet.Packet) { out = append(out, p) }))
	r.Receive(packet.NewData(1, 0, 1024, 0))
	r.Receive(packet.NewData(1, 2, 1024, 0))
	var nacks int
	for _, p := range out {
		if p.Flags.Has(packet.FlagNACK) {
			nacks++
		}
	}
	if nacks != 1 {
		t.Fatalf("nacks = %d, want 1", nacks)
	}
}

func TestRoCEReceiverCNPOnCE(t *testing.T) {
	eng := sim.NewEngine()
	var cnps int
	r := NewRoCEReceiver(eng, sim.Micros(4), netem.NodeFunc(func(p *packet.Packet) {
		if p.Type == packet.CNP {
			cnps++
		}
	}))
	d := packet.NewData(1, 0, 1024, 0)
	d.Flags |= packet.FlagCE
	r.Receive(d)
	d2 := packet.NewData(1, 1, 1024, 0)
	d2.Flags |= packet.FlagCE
	r.Receive(d2) // same instant: paced away
	if cnps != 1 {
		t.Fatalf("cnps = %d, want 1 (paced)", cnps)
	}
}
