// Package refcc contains the reference congestion-control stacks Marlin is
// validated against: a host-style DCTCP implementation standing in for the
// paper's ns-3 simulation (Figure 5), and a commercial-NIC-style DCQCN
// implementation standing in for the Mellanox ConnectX-5 (Figure 9).
//
// Both are deliberately independent implementations: they use
// floating-point arithmetic and host-software structure rather than the
// fixed-point, register-file style of the FPGA modules, so that agreement
// between their traces and Marlin's is evidence of correctness, not of
// shared code.
package refcc

import (
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// DCTCPSender is a textbook DCTCP/Reno sender (slow start, congestion
// avoidance, fast retransmit/recovery, per-RTT alpha with gain g,
// cwnd *= 1-alpha/2 on ECE) operating directly on a netem link. It stands
// in for the ns-3 node of §7.1.
type DCTCPSender struct {
	eng  *sim.Engine
	out  netem.Node
	flow packet.FlowID
	mtu  int
	rate sim.Rate

	cwnd     float64
	ssthresh float64
	alpha    float64
	g        float64

	una, nxt   uint32
	inRecovery bool
	recover    uint32
	dupAcks    int

	ackedW, markedW uint32
	wndEnd          uint32
	cwrEnd          uint32

	nextSend sim.Time
	sendArm  bool
	rto      sim.Duration
	rtoTimer sim.Handle

	// sendFn and rtoFn are allocated once; scheduling a fresh closure or
	// method value would allocate per packet.
	sendFn sim.Func
	rtoFn  sim.Func

	// CwndTrace and AlphaTrace record every parameter change, matching
	// Marlin's fine-grained logging for the Figure 5 comparison.
	CwndTrace  measure.StepTrace
	AlphaTrace measure.StepTrace
}

// DCTCPConfig configures the reference sender.
type DCTCPConfig struct {
	Flow     packet.FlowID
	MTU      int
	LineRate sim.Rate
	// InitCwnd and Ssthresh in packets (§7.1 uses 1 and 64).
	InitCwnd float64
	Ssthresh float64
	// G is the DCTCP gain (default 1/16).
	G float64
	// RTO is the retransmission timeout (default 500us).
	RTO sim.Duration
}

// NewDCTCPSender builds the sender; out is the first hop toward the
// receiver.
func NewDCTCPSender(eng *sim.Engine, cfg DCTCPConfig, out netem.Node) *DCTCPSender {
	if cfg.G == 0 {
		cfg.G = 1.0 / 16
	}
	if cfg.RTO == 0 {
		cfg.RTO = sim.Micros(500)
	}
	if cfg.InitCwnd == 0 {
		cfg.InitCwnd = 1
	}
	s := &DCTCPSender{
		eng: eng, out: out, flow: cfg.Flow, mtu: cfg.MTU, rate: cfg.LineRate,
		cwnd: cfg.InitCwnd, ssthresh: cfg.Ssthresh, g: cfg.G, rto: cfg.RTO,
	}
	s.sendFn = func() {
		s.sendArm = false
		s.trySend()
	}
	s.rtoFn = s.onTimeout
	s.logCwnd()
	s.logAlpha()
	return s
}

// Start begins transmission of an unbounded flow.
func (s *DCTCPSender) Start() { s.trySend() }

func (s *DCTCPSender) logCwnd() {
	s.CwndTrace = append(s.CwndTrace, measure.Point{At: s.eng.Now(), V: s.cwnd})
}

func (s *DCTCPSender) logAlpha() {
	s.AlphaTrace = append(s.AlphaTrace, measure.Point{At: s.eng.Now(), V: s.alpha})
}

// trySend emits packets while the window allows, paced at line rate.
func (s *DCTCPSender) trySend() {
	for {
		if float64(s.nxt-s.una) >= s.cwnd {
			return
		}
		now := s.eng.Now()
		if now < s.nextSend {
			if !s.sendArm {
				s.sendArm = true
				s.eng.ScheduleAt(s.nextSend, s.sendFn)
			}
			return
		}
		s.emit(s.nxt, false)
		s.nxt++
	}
}

func (s *DCTCPSender) emit(psn uint32, rtx bool) {
	now := s.eng.Now()
	p := packet.NewData(s.flow, psn, s.mtu, now)
	if rtx {
		p.Flags |= packet.FlagRetransmit
	}
	if s.nextSend < now {
		s.nextSend = now
	}
	s.nextSend = s.nextSend.Add(s.rate.Serialize(packet.WireSize(s.mtu)))
	s.armRTO()
	s.out.Receive(p)
}

func (s *DCTCPSender) armRTO() {
	s.rtoTimer.Cancel()
	s.rtoTimer = s.eng.Schedule(s.rto, s.rtoFn)
}

func (s *DCTCPSender) onTimeout() {
	if s.nxt == s.una {
		return
	}
	s.ssthresh = maxF(float64(s.nxt-s.una)/2, 2)
	s.cwnd = 1
	s.inRecovery = false
	s.dupAcks = 0
	s.logCwnd()
	s.emit(s.una, true)
}

// Receive implements netem.Node for the returning ACK stream.
func (s *DCTCPSender) Receive(p *packet.Packet) {
	if p.Type != packet.ACK {
		p.Release()
		return
	}
	ack := p.Ack
	ece := p.Flags.Has(packet.FlagECNEcho)
	p.Release()
	switch {
	case ack > s.una:
		s.onNewAck(ack, ece)
	case ack == s.una && s.nxt != s.una:
		s.onDupAck()
	}
	s.trySend()
}

func (s *DCTCPSender) onNewAck(ack uint32, ece bool) {
	acked := ack - s.una
	s.ackedW += acked
	if ece {
		s.markedW += acked
	}
	if ack >= s.wndEnd && s.ackedW > 0 {
		f := float64(s.markedW) / float64(s.ackedW)
		s.alpha = (1-s.g)*s.alpha + s.g*f
		s.ackedW, s.markedW = 0, 0
		s.wndEnd = s.nxt
		s.logAlpha()
	}
	if ece && !s.inRecovery && ack >= s.cwrEnd {
		s.cwnd = maxF(s.cwnd*(1-s.alpha/2), 1)
		s.ssthresh = maxF(s.cwnd, 1)
		s.cwrEnd = s.nxt
		s.logCwnd()
	}
	if s.inRecovery {
		if ack >= s.recover {
			s.inRecovery = false
			s.dupAcks = 0
			s.cwnd = maxF(s.ssthresh, 1)
			s.logCwnd()
		} else {
			// NewReno partial ack.
			s.una = ack
			s.emit(ack, true)
			return
		}
	} else {
		s.dupAcks = 0
		for i := uint32(0); i < acked; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++
			} else {
				s.cwnd += 1 / s.cwnd
			}
		}
		s.logCwnd()
	}
	s.una = ack
	if s.una == s.nxt {
		s.rtoTimer.Cancel()
	} else {
		s.armRTO()
	}
}

func (s *DCTCPSender) onDupAck() {
	s.dupAcks++
	if s.inRecovery {
		s.cwnd++
		s.logCwnd()
		return
	}
	if s.dupAcks == 3 {
		s.ssthresh = maxF(float64(s.nxt-s.una)/2, 2)
		s.cwnd = s.ssthresh + 3
		s.inRecovery = true
		s.recover = s.nxt
		s.logCwnd()
		s.emit(s.una, true)
	}
}

// Receiver is the host-side peer: cumulative ACKs, out-of-order buffering,
// and per-packet CE echo, mirroring a kernel DCTCP receiver.
type Receiver struct {
	eng      *sim.Engine
	out      netem.Node
	expected uint32
	ooo      map[uint32]struct{}
}

// NewReceiver builds a receiver whose ACKs are sent to out.
func NewReceiver(eng *sim.Engine, out netem.Node) *Receiver {
	return &Receiver{eng: eng, out: out, ooo: make(map[uint32]struct{})}
}

// Receive implements netem.Node for the DATA stream.
func (r *Receiver) Receive(p *packet.Packet) {
	if p.Type != packet.DATA {
		p.Release()
		return
	}
	if p.PSN == r.expected {
		r.expected++
		for {
			if _, ok := r.ooo[r.expected]; !ok {
				break
			}
			delete(r.ooo, r.expected)
			r.expected++
		}
	} else if p.PSN > r.expected {
		r.ooo[p.PSN] = struct{}{}
	}
	// Rewrite the consumed DATA packet into its ACK in place. Every field
	// the old ACK literal left at its zero value is reset explicitly.
	ce := p.Flags.Has(packet.FlagCE)
	p.Type = packet.ACK
	p.Ack = r.expected
	p.Size = packet.ControlSize
	p.Port = 0
	p.RxTime = r.eng.Now()
	p.Flags = 0
	if ce {
		p.Flags = packet.FlagECNEcho
	}
	p.INT = packet.INTRecord{}
	r.out.Receive(p)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
