package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/workload"
)

func init() {
	register("fig10", "comprehensive test: WebSearch FCT CDF at max concurrency vs ideal sharing (Figure 10)", Fig10)
}

// Fig10 reproduces the comprehensive test (§7.5): the tester runs the
// maximum concurrency of WebSearch closed-loop flows across all ports for
// DCTCP and DCQCN, and compares the FCT distribution against the ideal
// where every flow always receives an even share of its port (computed by
// a fluid processor-sharing model over the actual arrival schedule).
//
// Scale: the paper sustains 65,536 concurrent flows for minutes; the CI
// default runs 12 ports x 48 flows (576 concurrent) for 12 ms. Flow count
// and horizon grow with Options.Scale; the BRAM model itself is validated
// for 65,536 flows in the fpga package tests.
func Fig10(opts Options) (*Result, error) {
	res := newResult("fig10", "WebSearch FCT CDF (us) at maximum concurrency, vs ideal fair sharing",
		"algo", "percentile", "measured_us", "ideal_us", "slowdown")
	for _, algo := range []string{"dctcp", "dcqcn"} {
		if err := fig10Run(opts, algo, res); err != nil {
			return nil, err
		}
	}
	res.Note("paper scale is 65,536 concurrent flows at 1.2 Tbps for minutes; see EXPERIMENTS.md for the scaling")
	return res, nil
}

func fig10Run(opts Options, algo string, res *Result) error {
	flowsPerPort := opts.scaleN(48)
	horizon := opts.scaleD(12 * sim.Millisecond)
	dist := workload.WebSearch()

	eng := sim.NewEngine()
	spec := &controlplane.Spec{
		Algorithm:        algo,
		ECNThresholdPkts: 65,
		NetQueueBytes:    4 << 20,
		DCQCNTimeScale:   10 / opts.Scale,
		Seed:             opts.Seed,
	}
	tr, err := spec.Deploy(eng)
	if err != nil {
		return err
	}
	ports := tr.Plan().DataPorts
	mtu := tr.Config().MTU

	// Track the full arrival schedule per port for the ideal calculator.
	type arrival struct {
		port int
		a    measure.Arrival
	}
	var arrivals []arrival
	gens := make([]*workload.Generator, ports*flowsPerPort)
	flowPort := func(fl packet.FlowID) int { return int(fl) / flowsPerPort }

	start := func(fl packet.FlowID) {
		port := flowPort(fl)
		size, _ := gens[fl].Next()
		arrivals = append(arrivals, arrival{port: port, a: measure.Arrival{
			At:   eng.Now(),
			Bits: float64(size) * float64(packet.WireSize(mtu)) * 8,
		}})
		if err := tr.StartFlow(fl, port, port, size); err != nil {
			panic(err)
		}
	}
	tr.OnComplete(func(fl packet.FlowID, _ sim.Duration) { start(fl) })

	rng := sim.NewRand(opts.Seed)
	for port := 0; port < ports; port++ {
		for k := 0; k < flowsPerPort; k++ {
			fl := packet.FlowID(port*flowsPerPort + k)
			gen, err := workload.NewGenerator(dist, workload.ClosedLoop, 0, rng.Split())
			if err != nil {
				return err
			}
			gens[fl] = gen
		}
	}
	for fl := range gens {
		start(packet.FlowID(fl))
	}
	tr.Run(sim.Time(horizon))

	// Ideal: per-port fluid processor sharing over the same arrivals.
	var idealFCTs []float64
	for port := 0; port < ports; port++ {
		var portArr []measure.Arrival
		for _, ar := range arrivals {
			if ar.port == port {
				portArr = append(portArr, ar.a)
			}
		}
		fcts := measure.ProcessorSharingFCT(portArr, tr.Config().PortRate)
		for i, d := range fcts {
			// Unfinished flows (zero) are excluded, mirroring the
			// measured side which only records completions.
			if d > 0 && portArr[i].At.Add(d) <= sim.Time(horizon) {
				idealFCTs = append(idealFCTs, d.Microseconds())
			}
		}
	}

	measured := measure.NewCDF(tr.FCTs.FCTs())
	ideal := measure.NewCDF(idealFCTs)
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		m, id := measured.Percentile(p), ideal.Percentile(p)
		res.AddRow(algo, fmt.Sprintf("p%g", p*100), f2(m), f2(id), f2(m/id))
		res.Metrics[fmt.Sprintf("%s_p%g_slowdown", algo, p*100)] = m / id
	}
	res.Metrics[algo+"_completions"] = float64(measured.Len())
	res.Metrics[algo+"_concurrent_flows"] = float64(ports * flowsPerPort)
	// Short-flow median (<= 53 packets, the WebSearch small-flow half):
	// the paper highlights DCQCN's advantage on short flows.
	var short []float64
	for _, rec := range tr.FCTs.Records() {
		if rec.SizePkts <= 53 {
			short = append(short, rec.FCT.Microseconds())
		}
	}
	res.Metrics[algo+"_short_median_us"] = measure.NewCDF(short).Percentile(0.5)
	res.Metrics[algo+"_throughput_gbps"] = float64(tr.Pipeline.Counters().DataTxBytes) * 8 /
		sim.Duration(horizon).Seconds() / 1e9
	return nil
}
