package experiments

import (
	"strings"
	"testing"
)

func TestExtHPCCKeepsQueuesEmpty(t *testing.T) {
	res := runExp(t, "ext-hpcc")
	// The INT-based controller must hold a near-zero standing queue
	// while the ECN-based one rides its marking threshold.
	hq, dq := res.Metrics["hpcc_mean_queue_pkts"], res.Metrics["dctcp_mean_queue_pkts"]
	if hq > 5 {
		t.Errorf("HPCC standing queue = %v pkts, want ~0", hq)
	}
	if dq < 20 {
		t.Errorf("DCTCP standing queue = %v pkts, want near threshold (~60)", dq)
	}
	if res.Metrics["hpcc_jain"] < 0.97 {
		t.Errorf("HPCC Jain = %v", res.Metrics["hpcc_jain"])
	}
	if res.Metrics["hpcc_total_gbps"] < 60 {
		t.Errorf("HPCC utilization = %v Gbps, want reasonable", res.Metrics["hpcc_total_gbps"])
	}
	if res.Metrics["hpcc_drops"] > 10 {
		t.Errorf("HPCC drops = %v", res.Metrics["hpcc_drops"])
	}
}

func TestExtPFCLossless(t *testing.T) {
	res := runExp(t, "ext-pfc")
	if res.Metrics["lossy_drops"] == 0 {
		t.Error("lossy baseline did not drop (test not stressing the buffer)")
	}
	if res.Metrics["lossy_rtx"] == 0 {
		t.Error("drops produced no go-back-N retransmissions")
	}
	if res.Metrics["pfc_drops"] != 0 {
		t.Errorf("PFC fabric dropped %v packets", res.Metrics["pfc_drops"])
	}
	if res.Metrics["pfc_rtx"] != 0 {
		t.Errorf("PFC fabric retransmitted %v packets", res.Metrics["pfc_rtx"])
	}
	if res.Metrics["pfc_pauses"] == 0 {
		t.Error("PFC never engaged under incast")
	}
	// Goodput must not collapse under PFC.
	if res.Metrics["pfc_goodput_gbps"] < res.Metrics["lossy_goodput_gbps"]*0.8 {
		t.Errorf("PFC goodput %v << lossy %v",
			res.Metrics["pfc_goodput_gbps"], res.Metrics["lossy_goodput_gbps"])
	}
}

func TestExtMultiPipeReaches2_2Tbps(t *testing.T) {
	res := runExp(t, "ext-multipipe")
	if v := res.Metrics["device_tbps"]; v < 2.0 {
		t.Errorf("two-pipeline device = %v Tbps, want > 2.0", v)
	}
	for _, pipe := range []string{"pipe0_gbps", "pipe1_gbps"} {
		if v := res.Metrics[pipe]; v < 1000 {
			t.Errorf("%s = %v, want ~1100 (no cross-pipeline interference)", pipe, v)
		}
	}
}

func TestExtFPGAReceiverEquivalence(t *testing.T) {
	res := runExp(t, "ext-fpgarecv")
	// Same goodput within 10%, small positive FCT penalty (the extra
	// device round trip), similar completion counts.
	s, f := res.Metrics["switch_goodput_gbps"], res.Metrics["fpga_goodput_gbps"]
	if f < s*0.9 || f > s*1.1 {
		t.Errorf("goodput: switch %v vs fpga %v", s, f)
	}
	pen := res.Metrics["fct_penalty_us"]
	if pen < 0 || pen > 20 {
		t.Errorf("FCT penalty = %v us, want a small positive round trip", pen)
	}
	if res.Metrics["fpga_completions"] < 50 {
		t.Errorf("too few completions via FPGA receiver")
	}
}

func TestExtOpenLoopHockeyStick(t *testing.T) {
	res := runExp(t, "ext-openloop")
	// Tail latency grows with load; throughput grows with load.
	if res.Metrics["p99_at_90"] <= res.Metrics["p99_at_30"] {
		t.Errorf("p99 did not grow with load: %v vs %v",
			res.Metrics["p99_at_30"], res.Metrics["p99_at_90"])
	}
	if res.Metrics["gbps_at_90"] <= res.Metrics["gbps_at_30"] {
		t.Errorf("throughput did not grow with load")
	}
	for _, l := range []string{"30", "50", "70", "90"} {
		if res.Metrics["n_at_"+l] < 30 {
			t.Errorf("load %s%%: too few completions", l)
		}
	}
}

func TestExtAlgosCharacteristicBehaviours(t *testing.T) {
	res := runExp(t, "ext-algos")
	// Every algorithm controls congestion to a fair share.
	for _, algo := range []string{"reno", "dctcp", "dcqcn", "cubic", "timely", "hpcc", "swift"} {
		if v := res.Metrics[algo+"_jain"]; v < 0.9 {
			t.Errorf("%s jain = %v", algo, v)
		}
		if v := res.Metrics[algo+"_total_gbps"]; v < 30 || v > 102 {
			t.Errorf("%s total = %v Gbps", algo, v)
		}
	}
	// Signature orderings: loss-based Cubic rides the deepest queue,
	// DCTCP sits near its marking threshold, HPCC keeps it empty.
	cu, d, h := res.Metrics["cubic_queue_pkts"], res.Metrics["dctcp_queue_pkts"], res.Metrics["hpcc_queue_pkts"]
	if !(cu > d && d > h) {
		t.Errorf("queue ordering violated: cubic=%v dctcp=%v hpcc=%v", cu, d, h)
	}
	if h > 5 {
		t.Errorf("hpcc standing queue = %v pkts", h)
	}
	// Only the loss-based algorithm drops.
	for _, algo := range []string{"dctcp", "dcqcn", "hpcc", "timely", "swift"} {
		if v := res.Metrics[algo+"_drops"]; v != 0 {
			t.Errorf("%s dropped %v packets", algo, v)
		}
	}
}

func TestAblationRXDemux(t *testing.T) {
	res := runExp(t, "ablate-rxdemux")
	if v := res.Metrics["per-port_gbps"]; v < 450 {
		t.Errorf("per-port FIFOs reached only %v Gbps over 6 ports", v)
	}
	// The shared FIFO caps aggregate feedback at one port's drain rate,
	// collapsing throughput to roughly one port.
	if v := res.Metrics["shared_gbps"]; v > 150 {
		t.Errorf("shared FIFO reached %v Gbps; §5.3 predicts ~one port", v)
	}
	if v := res.Metrics["throughput_ratio"]; v < 3 {
		t.Errorf("demux speedup = %vx, want large", v)
	}
}

func TestExtLeafSpineECMPImbalance(t *testing.T) {
	res, err := ExtLeafSpine(Options{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"dcqcn", "cubic"} {
		// ECMP collisions deliberately degrade fairness (flows sharing a
		// spine path finish fewer closed-loop rounds), so jain well below
		// 1.0 is expected — just not degenerate.
		if j := res.Metrics[algo+"_jain"]; j <= 0.2 || j > 1.0 {
			t.Errorf("%s: degenerate fairness (jain %.3f)", algo, j)
		}
		if res.Metrics[algo+"_fct_p50_us"] <= 0 {
			t.Errorf("%s: no FCT distribution", algo)
		}
		// The seeded hash maps 8 flows onto per-leaf 2-way choices: some
		// collision is guaranteed, so imbalance must be measurably above
		// perfectly balanced (1.0).
		if imb := res.Metrics[algo+"_ecmp_imbalance"]; imb <= 1.05 {
			t.Errorf("%s: ECMP imbalance %.3f not measurable", algo, imb)
		}
	}
	// Per-path counters are part of the result contract.
	paths := 0
	for k := range res.Metrics {
		if strings.HasPrefix(k, "dcqcn_path_") {
			paths++
		}
	}
	if paths != 8 {
		t.Errorf("reported %d dcqcn path counters, want 8 (4 leaves x 2 spines)", paths)
	}
}
