// Package experiments regenerates every table and figure of the paper's
// evaluation (§7), plus the ablations DESIGN.md calls out. Each experiment
// is a pure function from Options to a Result: a printable table of the
// same rows/series the paper reports, along with machine-checkable summary
// metrics the test suite asserts on.
//
// Scale. The paper's runs span up to 180 wall-clock seconds at 1.2 Tbps —
// about 2×10^9 packets, infeasible to simulate packet-by-packet in CI.
// Every experiment therefore defaults to a shortened horizon with the same
// dynamics, and scales up via Options.Scale (1 = CI default; 10+ approaches
// paper scale). EXPERIMENTS.md records the paper-vs-measured comparison at
// the default scale.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"marlin/internal/sim"
)

// Options tune an experiment run.
type Options struct {
	// Scale stretches horizons and flow counts toward paper scale
	// (0 or 1 = CI default).
	Scale float64
	// Seed drives all randomness (0 = a fixed default).
	Seed uint64
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x4d61726c696e // "Marlin"
	}
	return o
}

// scaleD stretches a duration by the scale factor.
func (o Options) scaleD(d sim.Duration) sim.Duration {
	return sim.Duration(float64(d) * o.Scale)
}

// scaleN stretches a count by the scale factor.
func (o Options) scaleN(n int) int {
	return int(float64(n) * o.Scale)
}

// Result is one experiment's reproduction artifact.
type Result struct {
	// Name is the registry key (e.g. "fig8").
	Name string
	// Title describes the paper artifact reproduced.
	Title string
	// Headers label the table columns.
	Headers []string
	// Rows are the table body.
	Rows [][]string
	// Notes carry substitutions, scale factors, and caveats.
	Notes []string
	// Metrics are machine-checkable summary statistics.
	Metrics map[string]float64
}

func newResult(name, title string, headers ...string) *Result {
	return &Result{
		Name: name, Title: title, Headers: headers,
		Metrics: make(map[string]float64),
	}
}

// AddRow appends one table row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a caveat line.
func (r *Result) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(r.Headers)
	for _, row := range r.Rows {
		printRow(row)
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "-- metrics --")
		for _, k := range keys {
			fmt.Fprintf(w, "%-32s %g\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// FprintJSON renders the result as indented JSON (stable field names for
// downstream tooling).
func (r *Result) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintCSV renders the table body as CSV with the headers as the first
// record; metrics and notes are appended as comment lines.
func (r *Result) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(r.Rows); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "# metric %s %g\n", k, r.Metrics[k]); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# note %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Func runs one experiment.
type Func func(Options) (*Result, error)

type entry struct {
	name string
	desc string
	fn   Func
}

var registry []entry

func register(name, desc string, fn Func) {
	for _, e := range registry {
		if e.name == name {
			panic("experiments: duplicate " + name)
		}
	}
	registry = append(registry, entry{name, desc, fn})
}

// Names lists registered experiments in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes a registered experiment.
func Run(name string, opts Options) (*Result, error) {
	for _, e := range registry {
		if e.name == name {
			return e.fn(opts.norm())
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
