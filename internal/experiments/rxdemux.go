package experiments

import (
	"fmt"

	"marlin/internal/core"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("ablate-rxdemux", "per-port RX FIFOs vs one shared FIFO: INFO loss and throughput (§5.3)", AblateRXDemux)
}

// AblateRXDemux compares §5.3's per-port RX FIFO demultiplexing against a
// single shared FIFO. The RX timer paces each FIFO at one port's DATA
// rate; a single FIFO receiving the aggregate of many ports therefore
// overflows, INFO packets are lost, and the CC modules starve — the flows
// cannot grow their windows without acknowledgement events.
func AblateRXDemux(opts Options) (*Result, error) {
	res := newResult("ablate-rxdemux", "6-port line-rate run: per-port RX FIFOs vs one shared FIFO",
		"design", "info_rx", "info_drops", "drop_pct", "throughput_gbps")
	horizon := opts.scaleD(2 * sim.Millisecond)
	const ports = 6
	for _, single := range []bool{false, true} {
		eng := sim.NewEngine()
		tr, err := core.New(eng, core.Config{
			Algorithm:    ablAlg("dctcp"),
			DataPorts:    ports,
			SingleRXFIFO: single,
			Seed:         opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		for p := 0; p < ports; p++ {
			if err := tr.StartFlow(packet.FlowID(p), p, p, 0); err != nil {
				return nil, err
			}
		}
		tr.Run(sim.Time(horizon))
		st := tr.NIC.Stats()
		pct := 0.0
		if st.InfoRx > 0 {
			pct = 100 * float64(st.InfoDrops) / float64(st.InfoRx)
		}
		gbps := float64(tr.Pipeline.Counters().DataTxBytes) * 8 / horizon.Seconds() / 1e9
		name := "per-port"
		if single {
			name = "shared"
		}
		res.AddRow(name, fmt.Sprintf("%d", st.InfoRx), fmt.Sprintf("%d", st.InfoDrops),
			f2(pct), f2(gbps))
		res.Metrics[name+"_drop_pct"] = pct
		res.Metrics[name+"_gbps"] = gbps
	}
	res.Metrics["throughput_ratio"] = res.Metrics["per-port_gbps"] /
		maxFloat(res.Metrics["shared_gbps"], 1e-9)
	res.Note("§5.3: \"let INFO packets entering the FPGA join different RX FIFOs according to the port they arrive at\"")
	return res, nil
}
