package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/refcc"
	"marlin/internal/sim"
)

func init() {
	register("fig5", "CC-module correctness: DCTCP cwnd/alpha vs the ns-3-style reference (Figure 5)", Fig5)
}

// fig5Script builds the deterministic fault plan of §7.1: packet losses at
// points A and C and an ECN-marked burst at point B, expressed as PSNs so
// both stacks see the identical schedule.
func fig5Script() *netem.Script {
	return netem.NewScript().
		DropOnce(0, 400). // point A: early loss ends slow start
		// Point B: a CE episode spanning ~a dozen RTT windows so alpha
		// climbs toward the paper's Figure 5b level (~0.6) and decays
		// afterwards.
		MarkRange(0, 3000, 3350).
		DropOnce(0, 6000) // point C: later loss, second recovery
}

// Fig5 reproduces the CC-module correctness test: a single DCTCP flow with
// scripted loss/ECN events, traced at every parameter change on Marlin and
// on an independent host-style reference implementation standing in for
// ns-3 (see DESIGN.md for the substitution). The paper's claim is that the
// cwnd and alpha trajectories coincide.
func Fig5(opts Options) (*Result, error) {
	horizon := opts.scaleD(1500 * sim.Microsecond)

	// --- Marlin run ---
	eng := sim.NewEngine()
	spec := &controlplane.Spec{
		Algorithm: "dctcp",
		Ports:     2,
		Seed:      opts.Seed,
	}
	// §7.1: initial ssthresh 64, initial cwnd 1 (the defaults).
	tr, err := spec.Deploy(eng)
	if err != nil {
		return nil, err
	}
	tr.ForwardLink(1).AddHook(fig5Script().Hook)
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		return nil, err
	}
	tr.Run(sim.Time(horizon))

	trace := tr.NIC.Logger().FlowTrace(0)
	if len(trace) == 0 {
		return nil, fmt.Errorf("fig5: Marlin produced no trace")
	}
	var mCwnd, mAlpha measure.StepTrace
	alphaOne := float64(uint32(1) << 20) // 32-bit slow-path alpha, Q20
	for _, p := range trace {
		mCwnd = append(mCwnd, measure.Point{At: p.At, V: float64(p.A)})
		mAlpha = append(mAlpha, measure.Point{At: p.At, V: float64(p.B) / alphaOne})
	}

	// --- ns-3-style reference run over an equivalent path ---
	eng2 := sim.NewEngine()
	var sender *refcc.DCTCPSender
	reverse := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(4), QueueBytes: 1 << 20,
	}, netem.NodeFunc(func(p *packet.Packet) { sender.Receive(p) }))
	recv := refcc.NewReceiver(eng2, reverse)
	hop2 := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(2), QueueBytes: 1 << 20,
	}, recv)
	hop2.AddHook(fig5Script().Hook)
	hop1 := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(2), QueueBytes: 1 << 20,
	}, hop2)
	sender = refcc.NewDCTCPSender(eng2, refcc.DCTCPConfig{
		Flow: 0, MTU: 1024, LineRate: 100 * sim.Gbps,
		InitCwnd: 1, Ssthresh: 64,
	}, hop1)
	sender.Start()
	eng2.Run(sim.Time(horizon))

	rCwnd := measure.StepTrace(sender.CwndTrace)
	rAlpha := measure.StepTrace(sender.AlphaTrace)

	// --- compare and render ---
	grid := horizon / 300
	maxShift := opts.scaleD(60 * sim.Microsecond)
	shift, cwndCmp := measure.CompareStepTracesAligned(mCwnd, rCwnd, sim.Time(grid), sim.Time(horizon), grid, maxShift)
	_, alphaCmp := measure.CompareStepTracesAligned(mAlpha, rAlpha, sim.Time(grid), sim.Time(horizon), grid, maxShift)

	res := newResult("fig5", "DCTCP cwnd & alpha: Marlin vs reference (scripted loss at A/C, ECN at B)",
		"time_us", "marlin_cwnd", "ref_cwnd", "marlin_alpha", "ref_alpha")
	step := horizon / 30
	for t := sim.Time(0); t <= sim.Time(horizon); t = t.Add(step) {
		res.AddRow(
			f2(t.Microseconds()),
			f2(mCwnd.ValueAt(t)), f2(rCwnd.ValueAt(t)),
			fmt.Sprintf("%.4f", mAlpha.ValueAt(t)), fmt.Sprintf("%.4f", rAlpha.ValueAt(t)),
		)
	}
	res.Metrics["cwnd_norm_rmse"] = cwndCmp.NormRMSE()
	res.Metrics["align_shift_us"] = sim.Duration(shift).Microseconds()
	res.Metrics["cwnd_max_abs_dev_pkts"] = cwndCmp.MaxAbs
	res.Metrics["alpha_rmse"] = alphaCmp.RMSE
	res.Metrics["alpha_max_abs_dev"] = alphaCmp.MaxAbs
	res.Metrics["marlin_trace_points"] = float64(len(trace))
	res.Metrics["marlin_peak_cwnd"] = measure.Series(mCwnd).Max()
	res.Metrics["ref_peak_cwnd"] = measure.Series(rCwnd).Max()
	res.Metrics["marlin_peak_alpha"] = measure.Series(mAlpha).Max()
	res.Note("ns-3 replaced by an independent host-style DCTCP reference (float arithmetic); see DESIGN.md")
	res.Note("loss injected at PSN 400 (A) and 6000 (C); PSNs 3000-3350 CE-marked (B)")
	return res, nil
}
