package experiments

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/core"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("ablate-queue", "per-egress-port vs shared register queue: misdelivery (§4.2)", AblateQueue)
	register("ablate-rxtimer", "RX timer on/off: RMW conflicts corrupt CC state (Challenge 3, §5.3)", AblateRXTimer)
	register("ablate-overrun", "SCHE pacing above the port DATA rate: false losses (Challenge 1, §4.2)", AblateOverrun)
	register("ablate-scheduler", "rescheduling FIFO vs cyclic scan under many flows (Challenge 2, §5.2)", AblateScheduler)
	register("ablate-slowpath", "DCTCP alpha precision: 32-bit Slow Path vs 16-bit fast path (§5.4)", AblateSlowPath)
}

func ablAlg(name string) cc.Algorithm {
	alg, err := cc.New(name)
	if err != nil {
		panic(err)
	}
	return alg
}

// AblateQueue compares the §4.2 per-egress-port register queues against a
// single shared queue. The shared design misdelivers: a TEMP slot on one
// port dequeues metadata destined for another, emitting the DATA packet on
// the wrong port.
func AblateQueue(opts Options) (*Result, error) {
	res := newResult("ablate-queue", "DATA misdelivery with per-port vs shared register queues",
		"design", "data_tx", "misdelivered", "misdelivery_pct")
	for _, shared := range []bool{false, true} {
		eng := sim.NewEngine()
		tr, err := core.New(eng, core.Config{
			Algorithm:   ablAlg("dctcp"),
			DataPorts:   12,
			SharedQueue: shared,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Asymmetric per-port SCHE rates expose the shared queue: six
		// flows run clean at line rate while six share one congested
		// destination and schedule far more slowly, so TEMP slots on the
		// fast ports grab the slow flows' metadata.
		for p := 0; p < 6; p++ {
			if err := tr.StartFlow(packet.FlowID(p), p, p, 0); err != nil {
				return nil, err
			}
		}
		for p := 6; p < 12; p++ {
			if err := tr.StartFlow(packet.FlowID(p), p, 6, 0); err != nil {
				return nil, err
			}
		}
		tr.Run(sim.Time(opts.scaleD(sim.Millisecond)))
		c := tr.Pipeline.Counters()
		pct := 0.0
		if c.DataTx > 0 {
			pct = 100 * float64(c.Misdelivered) / float64(c.DataTx)
		}
		name := "per-port"
		if shared {
			name = "shared"
		}
		res.AddRow(name, fmt.Sprintf("%d", c.DataTx), fmt.Sprintf("%d", c.Misdelivered), f2(pct))
		res.Metrics[name+"_misdelivery_pct"] = pct
	}
	res.Note("§4.2: \"a TEMP packet might accidentally dequeue metadata meant for a different port\"")
	return res, nil
}

// AblateRXTimer compares ingress pacing on/off under DPDK-style bursts of
// congestion notifications. With the RX timer off, INFO packets hit the
// DCQCN module faster than its RMW completes; conflicting updates are
// lost, so rate cuts are skipped and the flow keeps sending too fast —
// exactly §5.3's "incorrect execution of the CC algorithm".
func AblateRXTimer(opts Options) (*Result, error) {
	res := newResult("ablate-rxtimer", "RMW conflicts and resulting DCQCN rate with/without the RX timer",
		"design", "info_rx", "rmw_conflicts", "conflict_pct", "rate_after_bursts_gbps")
	horizon := opts.scaleD(200 * sim.Microsecond)
	var rates [2]float64
	for i, disable := range []bool{false, true} {
		eng := sim.NewEngine()
		alg := ablAlg("dcqcn")
		params := cc.DefaultParams(100*sim.Gbps, 1024)
		// Freeze recovery so only the CNP cuts matter in this window.
		params.RateTimer = sim.Second
		params.AlphaTimer = sim.Second
		nic, err := fpga.NewNIC(eng, fpga.Config{
			Ports:          1,
			MaxFlows:       16,
			Algorithm:      alg,
			Params:         params,
			TXTimerPPS:     11.97e6,
			DisableRXTimer: disable,
		})
		if err != nil {
			return nil, err
		}
		var lastRateMbps uint32
		nic.ConnectSche(netem.NodeFunc(func(p *packet.Packet) {}))
		if err := nic.StartFlow(1, 0, 0); err != nil {
			return nil, err
		}
		// DPDK-style burst: 8 back-to-back CNP notifications every 50 us.
		burst := sim.NewTicker(eng, sim.Micros(50), func() {
			for k := 0; k < 8; k++ {
				nic.InfoIn().Receive(&packet.Packet{
					Type: packet.INFO, Flow: 1,
					Flags: packet.FlagCNPNotify, Size: packet.ControlSize,
				})
			}
		})
		burst.Start()
		eng.Run(sim.Time(horizon))
		st := nic.Stats()
		pct := 0.0
		if st.InfoRx > 0 {
			pct = 100 * float64(st.RMWConflicts) / float64(st.InfoRx)
		}
		name := "rx-timer-on"
		if disable {
			name = "rx-timer-off"
		}
		if trace := nic.Logger().FlowTrace(1); len(trace) > 0 {
			lastRateMbps = trace[len(trace)-1].A
		}
		rates[i] = float64(lastRateMbps) / 1000
		res.AddRow(name, fmt.Sprintf("%d", st.InfoRx), fmt.Sprintf("%d", st.RMWConflicts), f2(pct), f2(rates[i]))
		res.Metrics[name+"_conflict_pct"] = pct
		res.Metrics[name+"_rate_gbps"] = rates[i]
	}
	res.Metrics["rate_error_factor"] = rates[1] / maxFloat(rates[0], 1e-9)
	res.Note("§5.3: lost CNP cuts leave the unpaced flow sending a multiple of the correct rate")
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AblateOverrun paces SCHE above the port's DATA rate, overflowing the
// switch register queues and producing false losses — the failure mode
// frequency control exists to prevent.
func AblateOverrun(opts Options) (*Result, error) {
	res := newResult("ablate-overrun", "false losses when SCHE pacing exceeds the port DATA rate",
		"tx_pps_factor", "sche_rx", "false_losses", "loss_pct")
	horizon := opts.scaleD(500 * sim.Microsecond)
	for _, factor := range []float64{1.0, 1.5, 3.0} {
		eng := sim.NewEngine()
		// A window-mode flow with a wide-open window emits one SCHE per
		// TX-timer slot, so the timer alone bounds the SCHE rate.
		params := cc.DefaultParams(100*sim.Gbps, 1024)
		params.InitCwnd = 30000
		params.Ssthresh = 60000
		tr, err := core.New(eng, core.Config{
			Algorithm:  ablAlg("reno"),
			Params:     params,
			DataPorts:  2,
			TXTimerPPS: 11.97e6 * factor,
			Seed:       opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		if err := tr.StartFlow(0, 0, 1, 0); err != nil {
			return nil, err
		}
		tr.Run(sim.Time(horizon))
		c := tr.Pipeline.Counters()
		pct := 0.0
		if c.ScheRx > 0 {
			pct = 100 * float64(c.ScheDrops) / float64(c.ScheRx)
		}
		res.AddRow(fmt.Sprintf("%.1fx", factor),
			fmt.Sprintf("%d", c.ScheRx), fmt.Sprintf("%d", c.ScheDrops), f2(pct))
		res.Metrics[fmt.Sprintf("loss_pct_%.1fx", factor)] = pct
	}
	res.Note("§4.2: \"queue overflow would lead to lost packets that should have been sent, which is unacceptable\"")
	return res, nil
}

// AblateScheduler compares the §5.2 rescheduling FIFO against the naive
// cyclic scan when most registered flows are idle: the scan exhausts its
// per-slot cycle budget before finding the schedulable flows and the port
// underutilizes.
func AblateScheduler(opts Options) (*Result, error) {
	res := newResult("ablate-scheduler", "port throughput: rescheduling FIFO vs cyclic scan, 2000 flows (8 active)",
		"scheduler", "throughput_gbps", "wasted_slots", "scan_giveups")
	horizon := opts.scaleD(2 * sim.Millisecond)
	const totalFlows, activeFlows = 2000, 8
	for _, mode := range []fpga.SchedulerMode{fpga.ReschedulingFIFO, fpga.CyclicScan} {
		eng := sim.NewEngine()
		tr, err := core.New(eng, core.Config{
			Algorithm: ablAlg("dctcp"),
			DataPorts: 2,
			Scheduler: mode,
			MaxFlows:  4096,
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Many one-packet flows that finish immediately and stay idle in
		// the scan table, plus a few long-lived flows.
		for f := 0; f < totalFlows-activeFlows; f++ {
			if err := tr.StartFlow(packet.FlowID(f), 0, 1, 1); err != nil {
				return nil, err
			}
		}
		for f := totalFlows - activeFlows; f < totalFlows; f++ {
			if err := tr.StartFlow(packet.FlowID(f), 0, 1, 0); err != nil {
				return nil, err
			}
		}
		tr.Run(sim.Time(horizon))
		bits := float64(tr.Pipeline.Counters().DataTxBytes) * 8
		gbps := bits / horizon.Seconds() / 1e9
		st := tr.NIC.Stats()
		res.AddRow(mode.String(), f2(gbps),
			fmt.Sprintf("%d", st.SchedWasted), fmt.Sprintf("%d", st.ScanGiveUps))
		res.Metrics[mode.String()+"_gbps"] = gbps
	}
	res.Metrics["fifo_speedup"] = res.Metrics["fifo_gbps"] / res.Metrics["scan_gbps"]
	res.Note("§5.2 / Challenge 2: scanning wastes cycles \"especially when there are numerous flows but only a few are schedulable\"")
	return res, nil
}

// AblateSlowPath compares DCTCP's alpha under the 32-bit Slow Path
// division against the 16-bit fast-path-only variant, at a low marking
// fraction where quantization bites: the 16-bit alpha deviates from the
// exact EWMA while the Slow Path tracks it.
func AblateSlowPath(opts Options) (*Result, error) {
	res := newResult("ablate-slowpath", "DCTCP alpha accuracy: 32-bit Slow Path vs 16-bit fast path",
		"variant", "alpha_mean", "alpha_err_vs_exact", "slowpath_runs")
	horizon := opts.scaleD(3 * sim.Millisecond)
	// Mark a thin slice of traffic so the marked fraction is small and
	// precision matters (F ~ 1/64).
	markEvery := uint32(64)

	type outcome struct {
		mean float64
		runs uint64
	}
	exactMean := 0.0
	run := func(useSlow bool, bits int) outcome {
		eng := sim.NewEngine()
		params := cc.DefaultParams(100*sim.Gbps, 1024)
		params.UseSlowPath = useSlow
		params.AlphaBits = bits
		params.InitCwnd = 64
		params.Ssthresh = 64
		tr, err := core.New(eng, core.Config{
			Algorithm: ablAlg("dctcp"),
			Params:    params,
			DataPorts: 2,
			Seed:      opts.Seed,
		})
		if err != nil {
			panic(err)
		}
		tr.ForwardLink(1).AddHook(func(p *packet.Packet) netem.HookAction {
			if p.Type == packet.DATA && p.PSN%markEvery == 0 {
				return netem.MarkCE
			}
			return netem.Pass
		})
		if err := tr.StartFlow(0, 0, 1, 0); err != nil {
			panic(err)
		}
		tr.Run(sim.Time(horizon))
		one := float64(uint32(1) << 10)
		if bits == 32 {
			one = float64(uint32(1) << 20)
		}
		var alphaSeries measure.Series
		for _, p := range tr.NIC.Logger().FlowTrace(0) {
			alphaSeries = append(alphaSeries, measure.Point{At: p.At, V: float64(p.B) / one})
		}
		warm := alphaSeries.After(sim.Time(horizon / 2))
		return outcome{mean: warm.Mean(), runs: tr.NIC.Stats().SlowPathRuns}
	}

	slow := run(true, 32)
	fast := run(false, 16)
	// The exact steady-state EWMA fixed point is the marked fraction
	// itself (alpha* = F when every window has fraction F).
	exactMean = 1.0 / float64(markEvery)
	res.AddRow("slowpath-32bit", fmt.Sprintf("%.5f", slow.mean),
		fmt.Sprintf("%.5f", abs(slow.mean-exactMean)), fmt.Sprintf("%d", slow.runs))
	res.AddRow("fastpath-16bit", fmt.Sprintf("%.5f", fast.mean),
		fmt.Sprintf("%.5f", abs(fast.mean-exactMean)), fmt.Sprintf("%d", fast.runs))
	res.Metrics["slowpath_err"] = abs(slow.mean - exactMean)
	res.Metrics["fastpath_err"] = abs(fast.mean - exactMean)
	res.Metrics["exact_alpha"] = exactMean
	res.Metrics["slowpath_runs"] = float64(slow.runs)
	res.Note("§5.4: the Slow Path raises DCTCP's alpha division from 16-bit to 32-bit precision")
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
