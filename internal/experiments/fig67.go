package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("fig6", "single-port multi-flow scheduling: fair share of one 100G port (Figure 6)", Fig6)
	register("fig7", "multi-port scheduling: one line-rate flow per port, 1.2 Tbps aggregate (Figure 7)", Fig7)
}

// Fig6 reproduces the single-port multi-flow scheduling test (§7.2): N
// flows share one tester port through a pass-through network; the
// rescheduling-FIFO scheduler must give them equal rates summing to the
// port's line rate.
func Fig6(opts Options) (*Result, error) {
	const flows = 5
	horizon := opts.scaleD(10 * sim.Millisecond)
	sampleEvery := horizon / 20

	eng := sim.NewEngine()
	tr, err := (&controlplane.Spec{
		Algorithm: "dctcp",
		Ports:     2,
		Seed:      opts.Seed,
	}).Deploy(eng)
	if err != nil {
		return nil, err
	}
	sampler := measure.NewRateSampler(eng, sampleEvery)
	for i := 0; i < flows; i++ {
		fl := packet.FlowID(i)
		if err := tr.StartFlow(fl, 0, 1, 0); err != nil {
			return nil, err
		}
		sampler.Track(fmt.Sprintf("flow%d", i), func() uint64 { return tr.Pipeline.FlowTxBytes(fl) })
	}
	sampler.Start()
	tr.Run(sim.Time(horizon))

	res := newResult("fig6", "per-flow throughput, 5 flows on one 100G port (pass-through)",
		append([]string{"time_ms"}, flowHeaders(flows, "total_gbps")...)...)
	warm := sim.Time(horizon / 4)
	var jains, totals []float64
	series := make([]measure.Series, flows)
	for i := range series {
		series[i] = sampler.Series(fmt.Sprintf("flow%d", i))
	}
	for s := 0; s < len(series[0]); s++ {
		row := []string{f2(series[0][s].At.Seconds() * 1e3)}
		rates := make([]float64, flows)
		total := 0.0
		for i := 0; i < flows; i++ {
			rates[i] = series[i][s].V
			total += rates[i]
			row = append(row, f2(rates[i]))
		}
		row = append(row, f2(total))
		res.AddRow(row...)
		if series[0][s].At >= warm {
			jains = append(jains, measure.JainIndex(rates))
			totals = append(totals, total)
		}
	}
	res.Metrics["mean_jain"] = measure.Series(toSeries(jains)).Mean()
	res.Metrics["mean_total_gbps"] = measure.Series(toSeries(totals)).Mean()
	res.Metrics["flows"] = flows
	res.Note("paper runs 180 s; this run is %v (Options.Scale stretches it)", sim.Duration(horizon))
	return res, nil
}

// Fig7 reproduces the multi-port scheduling test (§7.2): one flow per
// port, forwarded one-to-one; per-port scheduling must not interfere, so
// every flow holds its port's full line rate. At 12 ports this is also
// the paper's 1.2 Tbps aggregate-throughput demonstration (§7.5).
func Fig7(opts Options) (*Result, error) {
	horizon := opts.scaleD(4 * sim.Millisecond)
	sampleEvery := horizon / 8

	eng := sim.NewEngine()
	tr, err := (&controlplane.Spec{
		Algorithm: "dctcp",
		Seed:      opts.Seed,
	}).Deploy(eng)
	if err != nil {
		return nil, err
	}
	ports := tr.Plan().DataPorts
	sampler := measure.NewRateSampler(eng, sampleEvery)
	for i := 0; i < ports; i++ {
		fl := packet.FlowID(i)
		// Flow i: tx port i -> rx port i (one-to-one pass-through).
		if err := tr.StartFlow(fl, i, i, 0); err != nil {
			return nil, err
		}
		sampler.Track(fmt.Sprintf("flow%d", i), func() uint64 { return tr.Pipeline.FlowTxBytes(fl) })
	}
	sampler.Start()
	tr.Run(sim.Time(horizon))

	res := newResult("fig7", "per-flow throughput, one flow per port (12x100G one-to-one)",
		append([]string{"time_ms"}, flowHeaders(ports, "total_gbps")...)...)
	warm := sim.Time(horizon / 2)
	var minRate, meanTotal float64
	minRate = 1e18
	nWarm := 0
	series := make([]measure.Series, ports)
	for i := range series {
		series[i] = sampler.Series(fmt.Sprintf("flow%d", i))
	}
	for s := 0; s < len(series[0]); s++ {
		row := []string{f2(series[0][s].At.Seconds() * 1e3)}
		total := 0.0
		for i := 0; i < ports; i++ {
			v := series[i][s].V
			total += v
			row = append(row, f2(v))
			if series[0][s].At >= warm && v < minRate {
				minRate = v
			}
		}
		row = append(row, f2(total))
		res.AddRow(row...)
		if series[0][s].At >= warm {
			meanTotal += total
			nWarm++
		}
	}
	if nWarm > 0 {
		meanTotal /= float64(nWarm)
	}
	res.Metrics["ports"] = float64(ports)
	res.Metrics["min_flow_gbps_steady"] = minRate
	res.Metrics["mean_total_gbps"] = meanTotal
	res.Metrics["mean_total_tbps"] = meanTotal / 1000
	res.Metrics["sche_drops"] = float64(tr.Pipeline.Counters().ScheDrops)
	res.Note("aggregate approaches 1.2 Tbps minus the 2%% Ethernet preamble/IFG overhead the paper's rate constants include")
	return res, nil
}

func flowHeaders(n int, extra ...string) []string {
	out := make([]string, 0, n+len(extra))
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("flow%d_gbps", i))
	}
	return append(out, extra...)
}

func toSeries(vs []float64) measure.Series {
	s := make(measure.Series, len(vs))
	for i, v := range vs {
		s[i] = measure.Point{V: v}
	}
	return s
}
