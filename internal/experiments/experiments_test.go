package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative claims — who wins,
// by roughly what factor, where the crossovers fall — at the CI scale.
// They are the executable form of EXPERIMENTS.md.

func runExp(t *testing.T, name string) *Result {
	t.Helper()
	res, err := Run(name, Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"table-capabilities", "table-amplify", "table-ccmodules",
		"ablate-queue", "ablate-rxtimer", "ablate-overrun",
		"ablate-scheduler", "ablate-slowpath", "ablate-rxdemux",
		"ext-hpcc", "ext-pfc", "ext-multipipe", "ext-fpgarecv", "ext-openloop", "ext-algos",
		"ext-leafspine",
	}
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
		if Describe(n) == "" {
			t.Errorf("experiment %s has no description", n)
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("experiment %s not registered", n)
		}
	}
	if _, err := Run("bogus", Options{}); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestResultPrint(t *testing.T) {
	r := newResult("x", "title", "a", "b")
	r.AddRow("1", "2")
	r.Metrics["m"] = 3
	r.Note("n")
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: title ==", "a  b", "1  2", "m", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5TrajectoriesMatch(t *testing.T) {
	res := runExp(t, "fig5")
	// §7.1 claim: Marlin's cwnd/alpha match the reference simulation.
	if v := res.Metrics["cwnd_norm_rmse"]; v > 0.25 {
		t.Errorf("cwnd NormRMSE = %v, want <= 0.25", v)
	}
	if v := res.Metrics["alpha_max_abs_dev"]; v > 0.1 {
		t.Errorf("alpha max deviation = %v, want <= 0.1", v)
	}
	// Peaks within 10%: same slow-start exit and CA trajectory.
	m, r := res.Metrics["marlin_peak_cwnd"], res.Metrics["ref_peak_cwnd"]
	if m < r*0.9 || m > r*1.1 {
		t.Errorf("peak cwnd: marlin %v vs ref %v", m, r)
	}
	// Point B visibly raised alpha.
	if v := res.Metrics["marlin_peak_alpha"]; v < 0.1 {
		t.Errorf("alpha peak = %v, want >= 0.1 (ECN episode invisible)", v)
	}
	if res.Metrics["marlin_trace_points"] < 1000 {
		t.Error("fine-grained tracing produced too few points")
	}
}

func TestFig6FairSingriePort(t *testing.T) {
	res := runExp(t, "fig6")
	if v := res.Metrics["mean_jain"]; v < 0.99 {
		t.Errorf("Jain index = %v, want >= 0.99 (§7.2 even sharing)", v)
	}
	if v := res.Metrics["mean_total_gbps"]; v < 95 {
		t.Errorf("total = %v Gbps, want ~98 (near line rate)", v)
	}
}

func TestFig7LineRatePerPortAnd1_2Tbps(t *testing.T) {
	res := runExp(t, "fig7")
	if v := res.Metrics["min_flow_gbps_steady"]; v < 95 {
		t.Errorf("slowest flow = %v Gbps, want ~98 (§7.2 no interference)", v)
	}
	if v := res.Metrics["mean_total_tbps"]; v < 1.15 {
		t.Errorf("aggregate = %v Tbps, want ~1.18 (the 1.2 Tbps headline)", v)
	}
	if v := res.Metrics["sche_drops"]; v != 0 {
		t.Errorf("false losses = %v, want 0", v)
	}
}

func TestFig8ConvergenceAndReclaim(t *testing.T) {
	res := runExp(t, "fig8")
	for _, algo := range []string{"dctcp", "dcqcn"} {
		if v := res.Metrics[algo+"_overlap_jain"]; v < 0.95 {
			t.Errorf("%s overlap Jain = %v, want >= 0.95 (§7.3 even sharing)", algo, v)
		}
		if v := res.Metrics[algo+"_reclaim_gbps"]; v < 90 {
			t.Errorf("%s reclaim = %v Gbps, want ~98 (§7.3 bandwidth reclaim)", algo, v)
		}
	}
	if v := res.Metrics["dctcp_overlap_total_gbps"]; v < 85 || v > 102 {
		t.Errorf("dctcp bottleneck total = %v Gbps", v)
	}
}

func TestFig9FidelityShape(t *testing.T) {
	res := runExp(t, "fig9")
	// §7.4 claim: distributional consistency with a commercial NIC. The
	// tails must agree closely; low percentiles reflect proprietary
	// scheduling differences and get a wide band.
	for _, cast := range []string{"2cast", "3cast"} {
		for _, p := range []string{"p90", "p99"} {
			ratio := res.Metrics[cast+"_"+p+"_ratio"]
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s %s ratio = %v, want within 2x", cast, p, ratio)
			}
		}
		if res.Metrics[cast+"_marlin_flows"] < 100 {
			t.Errorf("%s: too few Marlin completions", cast)
		}
		if res.Metrics[cast+"_connectx_flows"] < 100 {
			t.Errorf("%s: too few ConnectX completions", cast)
		}
	}
}

func TestFig10ComprehensiveOrdering(t *testing.T) {
	res := runExp(t, "fig10")
	for _, algo := range []string{"dctcp", "dcqcn"} {
		// Both algorithms are worse than ideal...
		if v := res.Metrics[algo+"_p50_slowdown"]; v < 1.0 {
			t.Errorf("%s p50 slowdown = %v, beats ideal?!", algo, v)
		}
		// ...but within a sane factor at the tail.
		if v := res.Metrics[algo+"_p99_slowdown"]; v > 2 {
			t.Errorf("%s p99 slowdown = %v, want < 2", algo, v)
		}
		if res.Metrics[algo+"_completions"] < 500 {
			t.Errorf("%s: too few completions", algo)
		}
		// Near the 1.2 Tbps aggregate.
		if v := res.Metrics[algo+"_throughput_gbps"]; v < 1100 {
			t.Errorf("%s aggregate = %v Gbps, want ~1177", algo, v)
		}
	}
	// §7.5: "DCQCN shows a significant improvement in performance
	// compared to DCTCP when sending short flows".
	d, q := res.Metrics["dctcp_short_median_us"], res.Metrics["dcqcn_short_median_us"]
	if q >= d {
		t.Errorf("short-flow medians: dcqcn %v >= dctcp %v us", q, d)
	}
}

func TestTableCapabilitiesOnlyMarlinMeetsAll(t *testing.T) {
	res := runExp(t, "table-capabilities")
	if res.Metrics["marl_meets_all"] != 1 {
		t.Error("Marlin does not meet all requirements")
	}
	for _, dev := range []string{"host", "prog", "fpga"} {
		if res.Metrics[dev+"_meets_all"] != 0 {
			t.Errorf("%s meets all requirements; Tables 1-2 say it must not", dev)
		}
	}
	// R1 measured: CC-less CBR traffic drops heavily where DCTCP does not.
	if res.Metrics["r1_cbr_drops"] < 100 {
		t.Errorf("CBR drops = %v, want heavy loss without CC", res.Metrics["r1_cbr_drops"])
	}
	if res.Metrics["r1_dctcp_drops"] != 0 {
		t.Errorf("DCTCP drops = %v, want 0", res.Metrics["r1_dctcp_drops"])
	}
}

func TestTableAmplificationHeadlines(t *testing.T) {
	res := runExp(t, "table-amplify")
	if res.Metrics["amp_1024"] != 12 || res.Metrics["tbps_1024"] != 1.2 {
		t.Errorf("MTU 1024: amp=%v tbps=%v, want 12 / 1.2 (§3.3)",
			res.Metrics["amp_1024"], res.Metrics["tbps_1024"])
	}
	if res.Metrics["amp_1518"] != 18 || res.Metrics["ideal_tbps_1518"] != 1.8 {
		t.Errorf("MTU 1518: amp=%v ideal=%v, want 18 / 1.8 (§3.3)",
			res.Metrics["amp_1518"], res.Metrics["ideal_tbps_1518"])
	}
	if res.Metrics["tbps_1518_portlimited"] != 1.3 {
		t.Errorf("MTU 1518 port-limited = %v, want 1.3 (§4.3)", res.Metrics["tbps_1518_portlimited"])
	}
	if v := res.Metrics["measured_tbps_1024"]; v < 1.15 || v > 1.25 {
		t.Errorf("measured amplification = %v Tbps, want ~1.2", v)
	}
	if res.Metrics["false_losses"] != 0 {
		t.Error("paced amplification produced false losses")
	}
}

func TestTableCCModulesMatchesTable4Cycles(t *testing.T) {
	res := runExp(t, "table-ccmodules")
	// Table 4's clk column, matched exactly.
	for name, clk := range map[string]float64{"reno": 2, "dctcp": 24, "dcqcn": 6} {
		if v := res.Metrics[name+"_clk"]; v != clk {
			t.Errorf("%s cycles = %v, want %v", name, v, clk)
		}
	}
	// LoC within a plausible band of the paper's (156/175/98 in HLS C++).
	for _, name := range []string{"reno", "dctcp", "dcqcn", "cubic", "timely"} {
		loc := res.Metrics[name+"_loc"]
		if loc < 50 || loc > 300 {
			t.Errorf("%s LoC = %v, implausible", name, loc)
		}
	}
	if v := res.Metrics["bram_flows_capacity"]; v < 65536 {
		t.Errorf("BRAM capacity = %v flows, want >= 65536", v)
	}
	if v := res.Metrics["bram_pct"]; v > 100 {
		t.Errorf("65,536 flows exceed BRAM: %v%%", v)
	}
}

func TestAblationQueue(t *testing.T) {
	res := runExp(t, "ablate-queue")
	if v := res.Metrics["per-port_misdelivery_pct"]; v != 0 {
		t.Errorf("per-port queues misdelivered %v%%", v)
	}
	if v := res.Metrics["shared_misdelivery_pct"]; v < 10 {
		t.Errorf("shared queue misdelivery = %v%%, want substantial", v)
	}
}

func TestAblationRXTimer(t *testing.T) {
	res := runExp(t, "ablate-rxtimer")
	if v := res.Metrics["rx-timer-on_conflict_pct"]; v != 0 {
		t.Errorf("paced ingress had %v%% conflicts", v)
	}
	if v := res.Metrics["rx-timer-off_conflict_pct"]; v < 50 {
		t.Errorf("unpaced ingress conflicts = %v%%, want bursty majority", v)
	}
	if v := res.Metrics["rate_error_factor"]; v < 5 {
		t.Errorf("lost CNP cuts changed rate only %vx, want large error", v)
	}
}

func TestAblationOverrun(t *testing.T) {
	res := runExp(t, "ablate-overrun")
	if v := res.Metrics["loss_pct_1.0x"]; v != 0 {
		t.Errorf("correctly paced SCHE lost %v%%", v)
	}
	if v := res.Metrics["loss_pct_3.0x"]; v < 20 {
		t.Errorf("3x overrun false losses = %v%%, want heavy", v)
	}
}

func TestAblationScheduler(t *testing.T) {
	res := runExp(t, "ablate-scheduler")
	if v := res.Metrics["fifo_gbps"]; v < 90 {
		t.Errorf("FIFO scheduler = %v Gbps with 2000 flows, want ~95", v)
	}
	if v := res.Metrics["fifo_speedup"]; v < 2 {
		t.Errorf("FIFO vs scan speedup = %vx, want >= 2x (Challenge 2)", v)
	}
}

func TestAblationSlowPath(t *testing.T) {
	res := runExp(t, "ablate-slowpath")
	sp, fp := res.Metrics["slowpath_err"], res.Metrics["fastpath_err"]
	if sp >= fp {
		t.Errorf("slow path error %v >= fast path error %v", sp, fp)
	}
	if fp/maxFloat(sp, 1e-12) < 10 {
		t.Errorf("precision gain only %vx, want >= 10x", fp/sp)
	}
	if res.Metrics["slowpath_runs"] == 0 {
		t.Error("slow path never ran")
	}
}
