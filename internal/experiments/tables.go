package experiments

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/controlplane"
	"marlin/internal/core"
	"marlin/internal/fpga"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

func init() {
	register("table-capabilities", "device capability matrix: why only the hybrid meets R1-R3 (Tables 1-2)", TableCapabilities)
	register("table-amplify", "throughput amplification and port allocation across MTUs (§3.3, §4.3, Figure 3)", TableAmplification)
	register("table-ccmodules", "per-algorithm CC module cost: LoC, cycles, state, BRAM (Table 4)", TableCCModules)
}

// TableCapabilities regenerates Tables 1 and 2: the quantitative case that
// no single device class meets all three requirements, computed from the
// same constants the models use.
func TableCapabilities(opts Options) (*Result, error) {
	res := newResult("table-capabilities",
		"device characteristics vs requirements (programmability / pps / throughput)",
		"device", "programmability", "pps_capability_mpps", "needed_mpps", "tbps_per_device", "meets_R1", "meets_R2", "meets_R3")

	// §2.1 arithmetic: 1 Tbps at MTU 1518 needs ~81 Mpps; a 3 GHz core
	// running a 50-cycle CC algorithm manages 60 Mpps; the FPGA's 322 MHz
	// exceeds the need; Tofino forwards at 2,400 Mpps.
	neededPPS := (1000.0 * 1e9) / float64(packet.WireSize(1518)*8) / 1e6 // Mpps for 1 Tbps
	hostPPS := 3000.0 / 50                                               // 3 GHz / 50 cycles, Mpps
	fpgaPPS := float64(fpga.ClockHz) / 1e6
	tofinoPPS := 2400.0

	hostTbps := 0.8   // 4 dual-port 100G NICs in a 2U server (§2.1)
	fpgaTbps := 0.2   // two 100G interfaces
	tofinoTbps := 3.2 // Tofino 3.2 Tbps
	plan, err := tofino.NewPlan(1024, 100*sim.Gbps)
	if err != nil {
		return nil, err
	}
	marlinTbps := 2 * float64(plan.Throughput) / 1e12 // two pipelines

	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	type row struct {
		name   string
		prog   string
		pps    float64
		tbps   float64
		r1, r2 bool
	}
	rows := []row{
		{"host (DPDK)", "high", hostPPS, hostTbps, true, true},
		{"programmable switch", "restricted", tofinoPPS, tofinoTbps, false, false},
		{"fpga nic", "high", fpgaPPS, fpgaTbps, true, true},
		{"marlin (switch+fpga)", "high", fpgaPPS, marlinTbps, true, true},
	}
	for _, r := range rows {
		r3 := r.tbps >= 1.0 && r.pps >= neededPPS
		res.AddRow(r.name, r.prog, f2(r.pps), f2(neededPPS), f2(r.tbps),
			yn(r.r1), yn(r.r2), yn(r3))
		key := r.name[:4]
		res.Metrics[key+"_meets_all"] = b2f(r.r1 && r.r2 && r3)
	}
	res.Metrics["needed_mpps"] = neededPPS
	res.Metrics["host_mpps"] = hostPPS

	// R1 measured: the same 2:1 fan-in run with CC-less CBR traffic (what
	// a Norma/HyperTester-style generator emits) versus DCTCP. Without CC
	// behaviour the tester mangles the network under test.
	for _, algo := range []string{"cbr", "dctcp"} {
		eng := sim.NewEngine()
		tr, err := core.New(eng, core.Config{
			Algorithm: mustCC(algo),
			DataPorts: 3,
			ECN:       netem.StepMarking(65, 1024),
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		tr.StartFlow(0, 0, 2, 0)
		tr.StartFlow(1, 1, 2, 0)
		tr.Run(sim.Time(opts.scaleD(2 * sim.Millisecond)))
		drops := controlplane.ReadLosses(tr).NetworkDrops
		res.Metrics["r1_"+algo+"_drops"] = float64(drops)
	}
	res.Note("R1 measured: 2:1 overload drops %g packets with CC-less CBR vs %g with DCTCP",
		res.Metrics["r1_cbr_drops"], res.Metrics["r1_dctcp_drops"])
	res.Note("R1 = CC traffic, R2 = customizable CC, R3 = Tbps throughput + sufficient pps (§1, Tables 1-2)")
	return res, nil
}

func mustCC(name string) cc.Algorithm {
	alg, err := cc.New(name)
	if err != nil {
		panic(err)
	}
	return alg
}

// TableAmplification regenerates the §3.3 arithmetic and §4.3 port
// allocation across MTUs, then validates the MTU-1024 row end-to-end on
// the pipeline model.
func TableAmplification(opts Options) (*Result, error) {
	res := newResult("table-amplify",
		"SCHE->DATA amplification and per-pipeline port allocation by MTU",
		"mtu", "sche_mpps", "data_mpps_per_port", "amp_factor", "data_ports", "loopback+fpga+enq", "reserved", "throughput", "ideal")
	for _, mtu := range []int{256, 512, 1024, 1072, 1500, 1518, 4096, 9000} {
		p, err := tofino.NewPlan(mtu, 100*sim.Gbps)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		res.AddRow(
			fmt.Sprintf("%d", mtu),
			f2(p.SchePPS/1e6), f2(p.DataPPSPerPort/1e6),
			fmt.Sprintf("%d", p.AmplificationFactor()),
			fmt.Sprintf("%d", p.DataPorts),
			fmt.Sprintf("%d", p.FPGAPorts+p.EnqueuePorts+p.LoopbackPorts),
			fmt.Sprintf("%d", p.Reserved),
			p.Throughput.String(), p.IdealThroughput().String(),
		)
	}
	p1024, _ := tofino.NewPlan(1024, 100*sim.Gbps)
	p1518, _ := tofino.NewPlan(1518, 100*sim.Gbps)
	res.Metrics["amp_1024"] = float64(p1024.AmplificationFactor())
	res.Metrics["tbps_1024"] = float64(p1024.Throughput) / 1e12
	res.Metrics["amp_1518"] = float64(p1518.AmplificationFactor())
	res.Metrics["ideal_tbps_1518"] = float64(p1518.IdealThroughput()) / 1e12
	res.Metrics["tbps_1518_portlimited"] = float64(p1518.Throughput) / 1e12

	// End-to-end validation of the headline row: drive all 12 ports with
	// paced SCHE for 50 us of simulated time and measure aggregate DATA.
	eng := sim.NewEngine()
	pl, err := tofino.NewPipeline(eng, tofino.Config{Plan: p1024, QueueDepth: 1 << 13})
	if err != nil {
		return nil, err
	}
	var wireBytes uint64
	for port := 0; port < p1024.DataPorts; port++ {
		pl.ConnectDataPort(port, netem.NodeFunc(func(p *packet.Packet) {
			wireBytes += uint64(packet.WireSize(p.Size))
		}))
		pl.BindFlow(packet.FlowID(port), port)
	}
	in := pl.ScheIn()
	horizon := sim.Micros(50)
	perPort := int(p1024.DataPPSPerPort * horizon.Seconds())
	for i := 0; i < perPort; i++ {
		at := sim.Time(float64(horizon) * float64(i) / float64(perPort))
		i := i
		eng.ScheduleAt(at, func() {
			for port := 0; port < p1024.DataPorts; port++ {
				in.Receive(packet.NewSche(packet.FlowID(port), uint32(i), port, eng.Now()))
			}
		})
	}
	eng.RunAll()
	measuredTbps := float64(wireBytes) * 8 / eng.Now().Seconds() / 1e12
	res.Metrics["measured_tbps_1024"] = measuredTbps
	res.Metrics["false_losses"] = float64(pl.Counters().ScheDrops)
	res.Note("measured row: pipeline model driven at per-port DATA rate for 50 us -> %.3f Tbps wire", measuredTbps)

	// Data-plane resource accounting for the headline configuration
	// (§6 reports 58/960 SRAM, 3/288 TCAM, 4 stages).
	rr := tofino.Resources(p1024, 0, 65536)
	if err := rr.Validate(); err != nil {
		return nil, err
	}
	res.Metrics["sram_blocks"] = float64(rr.SRAMUsed)
	res.Metrics["tcam_blocks"] = float64(rr.TCAMUsed)
	res.Metrics["mau_stages"] = float64(rr.Stages)
	res.Note("resources at 65,536 flows: %d/%d SRAM blocks, %d/%d TCAM, %d/%d stages (paper: 58/960, 3/288, 4/12)",
		rr.SRAMUsed, tofino.SRAMBlocks, rr.TCAMUsed, tofino.TCAMBlocks, rr.Stages, tofino.PipelineStages)
	return res, nil
}

// TableCCModules regenerates Table 4's software-visible columns for every
// implemented algorithm: module lines of code, fast-path clock cycles,
// cust-var register slots used, and the BRAM share of a 65,536-flow
// deployment. (LUT/FF synthesis results have no Go analogue; the state
// footprint is reported instead — see DESIGN.md.)
func TableCCModules(opts Options) (*Result, error) {
	res := newResult("table-ccmodules",
		"CC module cost per algorithm (LoC / cycles / state / BRAM)",
		"algorithm", "mode", "loc", "fastpath_clk", "slowpath_clk", "state_slots(16)", "bram_pct_65536_flows")
	const flows = 65536
	bramPct := 100 * float64(flows*fpga.BytesPerFlow*8) / float64(fpga.BRAMBits)
	for _, name := range cc.Names() {
		alg, err := cc.New(name)
		if err != nil {
			return nil, err
		}
		loc := cc.SourceLines(name)
		res.AddRow(name, alg.Mode().String(),
			fmt.Sprintf("%d", loc),
			fmt.Sprintf("%d", alg.FastPathCycles()),
			fmt.Sprintf("%d", alg.SlowPathCycles()),
			fmt.Sprintf("%d", cc.StateSlotsUsed(name)),
			f2(bramPct))
		res.Metrics[name+"_loc"] = float64(loc)
		res.Metrics[name+"_clk"] = float64(alg.FastPathCycles())
	}
	res.Metrics["bram_pct"] = bramPct
	res.Metrics["bram_flows_capacity"] = float64(fpga.MaxFlowsByBRAM())
	res.Note("paper Table 4: Reno 156 LoC / 2 clk, DCTCP 175 / 24, DCQCN 98 / 6; cycle counts are matched, LoC is language-dependent")
	res.Note("LUT/FF synthesis percentages are hardware-only; register-slot usage is the model's footprint analogue")
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
