package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/fabric"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("ext-leafspine", "extension: DCQCN vs CUBIC on a 4x2 leaf-spine under deterministic ECMP imbalance", ExtLeafSpine)
}

// ExtLeafSpine runs the same cross-rack workload under a rate-based
// (DCQCN) and a window-based (CUBIC) algorithm on a multi-switch
// leaf-spine fabric: 8 hosts over 4 leaves and 2 spines, every flow
// crossing the spine tier over one of two equal-cost paths chosen by the
// deterministic ECMP hash. With only a handful of flows the hash cannot
// balance perfectly, so some spine links carry more flows than others —
// the experiment reports goodput, fairness, and the FCT distribution under
// that imbalance, plus the per-path counters that measure it.
func ExtLeafSpine(opts Options) (*Result, error) {
	res := newResult("ext-leafspine", "cross-rack CC on a 4x2 leaf-spine with ECMP",
		"algo", "goodput_gbps", "jain", "fct_p50_us", "fct_p99_us", "ecmp_imbalance", "drops")
	horizon := opts.scaleD(10 * sim.Millisecond)
	const hosts = 8
	const flowSize = 256 // packets; closed-loop restarts build the FCT CDF
	type pathRow struct {
		algo string
		pc   fabric.PathCounter
	}
	var pathRows []pathRow
	for _, algo := range []string{"dcqcn", "cubic"} {
		eng := sim.NewEngine()
		spec := &controlplane.Spec{
			Algorithm:        algo,
			Ports:            hosts,
			Topology:         "leafspine:4x2",
			ECNThresholdPkts: 65,
			Seed:             opts.Seed,
		}
		if algo == "dcqcn" {
			spec.DCQCNTimeScale = 30 / opts.Scale
		}
		tr, err := spec.Deploy(eng)
		if err != nil {
			return nil, err
		}
		// Ring workload: host h sends to host h+1, which lives on the next
		// leaf (hosts map to leaves round-robin), so every flow is
		// cross-rack and takes one of the two spine paths.
		tr.OnComplete(func(done packet.FlowID, _ sim.Duration) {
			h := int(done)
			if err := tr.StartFlow(done, h, (h+1)%hosts, flowSize); err != nil {
				panic(err)
			}
		})
		for h := 0; h < hosts; h++ {
			if err := tr.StartFlow(packet.FlowID(h), h, (h+1)%hosts, flowSize); err != nil {
				return nil, err
			}
		}
		tr.Run(sim.Time(horizon))

		var rates []float64
		total := 0.0
		for h := 0; h < hosts; h++ {
			g := float64(tr.GoodputBits(packet.FlowID(h))) / horizon.Seconds() / 1e9
			rates = append(rates, g)
			total += g
		}
		jain := measure.JainIndex(rates)
		cdf := measure.NewCDF(tr.FCTs.FCTs())
		if cdf.Len() == 0 {
			return nil, fmt.Errorf("ext-leafspine: no flows completed under %s", algo)
		}
		paths := tr.ECMPPaths()
		imb := fabric.Imbalance(paths)
		losses := controlplane.ReadLosses(tr)
		if losses.Misroutes != 0 {
			return nil, fmt.Errorf("ext-leafspine: %d misroutes under %s", losses.Misroutes, algo)
		}
		res.AddRow(algo, f2(total), f2(jain), f2(cdf.Percentile(0.5)),
			f2(cdf.Percentile(0.99)), f2(imb), fmt.Sprintf("%d", losses.NetworkDrops))
		res.Metrics[algo+"_goodput_gbps"] = total
		res.Metrics[algo+"_jain"] = jain
		res.Metrics[algo+"_fct_p50_us"] = cdf.Percentile(0.5)
		res.Metrics[algo+"_fct_p99_us"] = cdf.Percentile(0.99)
		res.Metrics[algo+"_ecmp_imbalance"] = imb
		res.Metrics[algo+"_drops"] = float64(losses.NetworkDrops)
		for _, pc := range paths {
			pathRows = append(pathRows, pathRow{algo, pc})
			res.Metrics[fmt.Sprintf("%s_path_%s_p%d_pkts", algo, pc.Switch, pc.Port)] = float64(pc.TxPackets)
		}
	}
	for _, pr := range pathRows {
		res.AddRow(fmt.Sprintf("%s path %s->%s", pr.algo, pr.pc.Switch, pr.pc.Next),
			"", "", "", "", "", fmt.Sprintf("%d", pr.pc.TxPackets))
	}
	res.Note("8 flows hash onto 8 leaf uplink choices (4 leaves x 2 spines); the seeded hash pins each flow to one spine, so per-path load is uneven by construction")
	return res, nil
}
