package experiments

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("ext-algos", "extension: head-to-head CC comparison under fan-in — the paper's selection use case", ExtAlgos)
}

// ExtAlgos runs the identical 4:1 fan-in workload under every registered
// CC algorithm and reports the metrics an operator selects on: fairness,
// bottleneck utilization, standing queue, and drops. This is the workflow
// the paper motivates ("cloud providers face the challenge of selecting
// from a multitude of CC algorithms"), executed on the tester.
func ExtAlgos(opts Options) (*Result, error) {
	res := newResult("ext-algos", "4 flows -> 1 port: fairness / utilization / queue / loss per algorithm",
		"algo", "mode", "jain", "total_gbps", "mean_queue_pkts", "drops", "rtx")
	horizon := opts.scaleD(6 * sim.Millisecond)
	const flows = 4
	for _, name := range cc.Names() {
		if name == "cbr" {
			continue // no control law; measured in table-capabilities
		}
		alg, err := cc.New(name)
		if err != nil {
			return nil, err
		}
		spec := &controlplane.Spec{
			Algorithm:        name,
			Ports:            flows + 1,
			ECNThresholdPkts: 65,
			Seed:             opts.Seed,
		}
		switch {
		case name == "cubic" || name == "reno":
			// The loss-based legs model classic senders that did not
			// negotiate ECN: both now honour RFC 3168 ECE, so marking
			// would park them at the threshold like DCTCP and erase the
			// deep-queue/drop signature this comparison is after. The
			// ECN-enabled coexistence case lives in examples/l4s.
			spec.ECNThresholdPkts = 0
		case name == "hpcc":
			spec.EnableINT = true
			spec.ECNThresholdPkts = 0
			params := cc.DefaultParams(100*sim.Gbps, 1024)
			params.HPCCInitWnd = 32
			spec.Params = &params
		case name == "timely":
			// Delay thresholds sized to this fabric's RTT regime
			// (base ~9 us): react well before the buffer fills.
			spec.NetQueueBytes = 8 << 20
			params := cc.DefaultParams(100*sim.Gbps, 1024)
			params.TimelyTLow = sim.Micros(15)
			params.TimelyTHigh = sim.Micros(75)
			params.TimelyAddStep = 200 * sim.Mbps
			spec.Params = &params
		case alg.Mode() == cc.RateMode:
			// RoCE-style transports assume losslessness.
			spec.NetQueueBytes = 8 << 20
			spec.DCQCNTimeScale = 30 / opts.Scale
		}
		eng := sim.NewEngine()
		tr, err := spec.Deploy(eng)
		if err != nil {
			return nil, err
		}
		for f := 0; f < flows; f++ {
			if err := tr.StartFlow(packet.FlowID(f), f, flows, 0); err != nil {
				return nil, err
			}
		}
		var qSamples measure.Series
		ticker := sim.NewTicker(eng, horizon/120, func() {
			qSamples = append(qSamples, measure.Point{
				At: eng.Now(),
				V:  float64(tr.Net.Port(flows).Queue().Bytes()) / float64(packet.WireSize(1024)),
			})
		})
		ticker.Start()
		tr.Run(sim.Time(horizon / 2))
		var base [flows]uint64
		for f := range base {
			base[f] = tr.Pipeline.FlowTxBytes(packet.FlowID(f))
		}
		tr.Run(sim.Time(horizon))

		var rates []float64
		total := 0.0
		for f := range base {
			bits := float64(tr.Pipeline.FlowTxBytes(packet.FlowID(f))-base[f]) * 8
			g := bits / (horizon / 2).Seconds() / 1e9
			rates = append(rates, g)
			total += g
		}
		jain := measure.JainIndex(rates)
		meanQ := qSamples.After(sim.Time(horizon / 2)).Mean()
		drops := controlplane.ReadLosses(tr).NetworkDrops
		rtx := tr.NIC.Stats().RtxTx
		res.AddRow(name, alg.Mode().String(), f2(jain), f2(total), f2(meanQ),
			fmt.Sprintf("%d", drops), fmt.Sprintf("%d", rtx))
		res.Metrics[name+"_jain"] = jain
		res.Metrics[name+"_total_gbps"] = total
		res.Metrics[name+"_queue_pkts"] = meanQ
		res.Metrics[name+"_drops"] = float64(drops)
	}
	res.Note("identical workload and seed per algorithm; hpcc runs with INT instead of ECN, rate algorithms on deep (PFC-like) buffers")
	return res, nil
}
