package experiments

import (
	"testing"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/refcc"
	"marlin/internal/sim"
)

// TestRenoTrajectoryMatchesReference extends Figure 5's methodology to a
// second algorithm: Marlin's fixed-point Reno module against the
// float-arithmetic reference stack (which degenerates to NewReno when no
// packet is ever CE-marked), under an identical loss script.
func TestRenoTrajectoryMatchesReference(t *testing.T) {
	horizon := 1200 * sim.Microsecond
	script := func() *netem.Script {
		return netem.NewScript().DropOnce(0, 500).DropOnce(0, 4000)
	}

	// Marlin run.
	eng := sim.NewEngine()
	tr, err := (&controlplane.Spec{Algorithm: "reno", Ports: 2, Seed: 77}).Deploy(eng)
	if err != nil {
		t.Fatal(err)
	}
	tr.ForwardLink(1).AddHook(script().Hook)
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(horizon))
	var mCwnd measure.StepTrace
	for _, p := range tr.NIC.Logger().FlowTrace(0) {
		mCwnd = append(mCwnd, measure.Point{At: p.At, V: float64(p.A)})
	}
	if len(mCwnd) == 0 {
		t.Fatal("no Marlin trace")
	}

	// Reference run over an equivalent path.
	eng2 := sim.NewEngine()
	var sender *refcc.DCTCPSender
	reverse := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(4), QueueBytes: 1 << 20,
	}, netem.NodeFunc(func(p *packet.Packet) { sender.Receive(p) }))
	recv := refcc.NewReceiver(eng2, reverse)
	hop2 := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(2), QueueBytes: 1 << 20,
	}, recv)
	hop2.AddHook(script().Hook)
	hop1 := netem.NewLink(eng2, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(2), QueueBytes: 1 << 20,
	}, hop2)
	sender = refcc.NewDCTCPSender(eng2, refcc.DCTCPConfig{
		Flow: 0, MTU: 1024, LineRate: 100 * sim.Gbps, InitCwnd: 1, Ssthresh: 64,
	}, hop1)
	sender.Start()
	eng2.Run(sim.Time(horizon))
	rCwnd := measure.StepTrace(sender.CwndTrace)

	grid := horizon / 300
	shift, cmp := measure.CompareStepTracesAligned(
		mCwnd, rCwnd, sim.Time(grid), sim.Time(horizon), grid, sim.Micros(60))
	if cmp.NormRMSE() > 0.25 {
		t.Errorf("reno NormRMSE = %v (shift %v), want <= 0.25", cmp.NormRMSE(), shift)
	}
	mPeak := measure.Series(mCwnd).Max()
	rPeak := measure.Series(rCwnd).Max()
	if mPeak < rPeak*0.9 || mPeak > rPeak*1.1 {
		t.Errorf("reno peaks diverge: marlin %v vs ref %v", mPeak, rPeak)
	}
}
