package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func init() {
	register("fig8", "congestion test: staggered flows over one bottleneck, DCTCP & DCQCN (Figure 8)", Fig8)
}

// Fig8 reproduces the congestion test (§7.3): flows start one by one on
// different tester ports, all forwarded to the same destination port, then
// terminate one by one. Both DCTCP and DCQCN must converge to even shares
// of the bottleneck and reclaim bandwidth as flows leave.
func Fig8(opts Options) (*Result, error) {
	res := newResult("fig8", "per-flow throughput under a shared bottleneck (4 staggered flows)",
		"algo", "time_ms", "flow0_gbps", "flow1_gbps", "flow2_gbps", "flow3_gbps", "total_gbps")
	for _, algo := range []string{"dctcp", "dcqcn"} {
		if err := fig8Run(opts, algo, res); err != nil {
			return nil, err
		}
	}
	res.Note("paper staggers flows over 180 s; this run compresses the schedule (DCQCN timescale scaled, see EXPERIMENTS.md)")
	return res, nil
}

func fig8Run(opts Options, algo string, res *Result) error {
	const flows = 4
	phase := opts.scaleD(3 * sim.Millisecond) // per start/stop step
	horizon := sim.Duration(2*flows) * phase
	sampleEvery := phase / 6

	eng := sim.NewEngine()
	spec := &controlplane.Spec{
		Algorithm:        algo,
		Ports:            flows + 1,
		ECNThresholdPkts: 65, // DCTCP-paper-style K for 100G
		Seed:             opts.Seed,
		DCQCNTimeScale:   100 / opts.Scale,
	}
	if algo == "dcqcn" {
		// RoCE fabrics are lossless (PFC); deep buffers stand in so ECN,
		// not loss, carries the congestion signal.
		spec.NetQueueBytes = 8 << 20
	}
	tr, err := spec.Deploy(eng)
	if err != nil {
		return err
	}
	sampler := measure.NewRateSampler(eng, sampleEvery)
	for i := 0; i < flows; i++ {
		fl := packet.FlowID(i)
		sampler.Track(fmt.Sprintf("flow%d", i), func() uint64 { return tr.Pipeline.FlowTxBytes(fl) })
	}
	sampler.Start()
	// Staggered starts on ports 0..3 toward port 4, then staggered stops.
	for i := 0; i < flows; i++ {
		i := i
		eng.ScheduleAt(sim.Time(sim.Duration(i)*phase), func() {
			if err := tr.StartFlow(packet.FlowID(i), i, flows, 0); err != nil {
				panic(err)
			}
		})
		eng.ScheduleAt(sim.Time(sim.Duration(flows+i)*phase), func() {
			tr.StopFlow(packet.FlowID(i))
		})
	}
	tr.Run(sim.Time(horizon))

	series := make([]measure.Series, flows)
	for i := range series {
		series[i] = sampler.Series(fmt.Sprintf("flow%d", i))
	}
	for s := 0; s < len(series[0]); s++ {
		row := []string{algo, f2(series[0][s].At.Seconds() * 1e3)}
		total := 0.0
		for i := 0; i < flows; i++ {
			v := series[i][s].V
			total += v
			row = append(row, f2(v))
		}
		row = append(row, f2(total))
		res.AddRow(row...)
	}

	// Fairness in the fully-overlapped window (all flows active),
	// measured over its final third so the last starter's line-rate
	// entry transient has converged.
	overlapFrom := sim.Time(sim.Duration(flows)*phase - phase/3)
	overlapTo := sim.Time(sim.Duration(flows) * phase)
	var rates []float64
	for i := 0; i < flows; i++ {
		var sum float64
		var n int
		for _, p := range series[i] {
			if p.At >= overlapFrom && p.At < overlapTo {
				sum += p.V
				n++
			}
		}
		if n > 0 {
			rates = append(rates, sum/float64(n))
		}
	}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	res.Metrics[algo+"_overlap_jain"] = measure.JainIndex(rates)
	res.Metrics[algo+"_overlap_total_gbps"] = total
	// Reclaim: the last flow's rate while it runs alone (after the other
	// three stopped, before its own stop).
	reclaimFrom := sim.Time(sim.Duration(2*flows-2)*phase + phase/2)
	reclaimTo := sim.Time(sim.Duration(2*flows-1) * phase)
	var sum float64
	var n int
	for _, p := range series[flows-1] {
		if p.At >= reclaimFrom && p.At < reclaimTo {
			sum += p.V
			n++
		}
	}
	if n > 0 {
		res.Metrics[algo+"_reclaim_gbps"] = sum / float64(n)
	}
	return nil
}
