package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/refcc"
	"marlin/internal/sim"
	"marlin/internal/workload"
)

func init() {
	register("fig9", "flow fidelity: DCQCN FCT CDF, Marlin vs ConnectX-style NIC, 2-cast-1 & 3-cast-1 (Figure 9)", Fig9)
}

// Fig9 reproduces the flow-fidelity test (§7.4): an n-cast-1 incast with
// five WebSearch closed-loop flows per sender port, run once on Marlin's
// DCQCN module and once on the ConnectX-style commercial-NIC model, and
// compared as FCT CDFs. The paper's claim is distributional agreement, not
// equality ("due to the proprietary nature of the DCQCN implementation in
// commercial NICs, it was not possible to achieve complete equivalence").
func Fig9(opts Options) (*Result, error) {
	res := newResult("fig9", "FCT CDF (us): Marlin DCQCN vs ConnectX-style DCQCN, n-cast-1, 5 flows/port",
		"scenario", "percentile", "marlin_us", "connectx_us", "ratio")
	for _, n := range []int{2, 3} {
		if err := fig9Run(opts, n, res); err != nil {
			return nil, err
		}
	}
	res.Note("ConnectX-5 replaced by an independent commercial-NIC-style DCQCN model; see DESIGN.md")
	res.Note("WebSearch closed loop; DCQCN timescale compressed to fit the shortened horizon")
	return res, nil
}

const fig9FlowsPerPort = 5

func fig9Run(opts Options, ncast int, res *Result) error {
	horizon := opts.scaleD(40 * sim.Millisecond)
	dist := workload.WebSearch()

	marlin, err := fig9Marlin(opts, ncast, horizon, dist)
	if err != nil {
		return err
	}
	connectx := fig9ConnectX(opts, ncast, horizon, dist)

	mc := measure.NewCDF(marlin)
	cx := measure.NewCDF(connectx)
	scenario := fmt.Sprintf("%d-cast-1", ncast)
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		m, c := mc.Percentile(p), cx.Percentile(p)
		ratio := m / c
		res.AddRow(scenario, fmt.Sprintf("p%g", p*100), f2(m), f2(c), f2(ratio))
		res.Metrics[fmt.Sprintf("%dcast_p%g_ratio", ncast, p*100)] = ratio
	}
	res.Metrics[fmt.Sprintf("%dcast_marlin_flows", ncast)] = float64(mc.Len())
	res.Metrics[fmt.Sprintf("%dcast_connectx_flows", ncast)] = float64(cx.Len())
	return nil
}

// fig9Marlin runs the incast on the tester: sender ports 0..n-1, receiver
// port n, five closed-loop flows per sender port.
func fig9Marlin(opts Options, ncast int, horizon sim.Duration, dist *workload.SizeDist) ([]float64, error) {
	eng := sim.NewEngine()
	tr, err := (&controlplane.Spec{
		Algorithm:        "dcqcn",
		Ports:            ncast + 1,
		ECNThresholdPkts: 65,
		NetQueueBytes:    8 << 20,
		DCQCNTimeScale:   10 / opts.Scale,
		Seed:             opts.Seed,
	}).Deploy(eng)
	if err != nil {
		return nil, err
	}
	gens := make(map[packet.FlowID]*workload.Generator)
	flowPort := make(map[packet.FlowID]int)
	tr.OnComplete(func(flow packet.FlowID, _ sim.Duration) {
		size, _ := gens[flow].Next()
		if err := tr.StartFlow(flow, flowPort[flow], ncast, size); err != nil {
			panic(err)
		}
	})
	rng := sim.NewRand(opts.Seed)
	for port := 0; port < ncast; port++ {
		for k := 0; k < fig9FlowsPerPort; k++ {
			flow := packet.FlowID(port*fig9FlowsPerPort + k)
			gen, err := workload.NewGenerator(dist, workload.ClosedLoop, 0, rng.Split())
			if err != nil {
				return nil, err
			}
			gens[flow] = gen
			flowPort[flow] = port
			size, _ := gen.Next()
			if err := tr.StartFlow(flow, port, ncast, size); err != nil {
				return nil, err
			}
		}
	}
	tr.Run(sim.Time(horizon))
	return tr.FCTs.FCTs(), nil
}

// fig9ConnectX runs the same incast on the commercial-NIC model: n hosts
// of five QPs each, through a fan-in switch to one receiver.
func fig9ConnectX(opts Options, ncast int, horizon sim.Duration, dist *workload.SizeDist) []float64 {
	eng := sim.NewEngine()
	var fcts []float64

	// Reverse path: receiver -> senders (ACK/NACK/CNP), demultiplexed to
	// the owning QP by flow ID.
	qps := make(map[packet.FlowID]*refcc.ConnectXQP)
	reverse := netem.NewLink(eng, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(4), QueueBytes: 1 << 20,
	}, netem.NodeFunc(func(p *packet.Packet) {
		if qp, ok := qps[p.Flow]; ok {
			qp.Receive(p)
		}
	}))
	recv := refcc.NewRoCEReceiver(eng, sim.Micros(4), reverse)

	// Bottleneck: the switch's egress toward the receiver.
	bottleneck := netem.NewLink(eng, netem.LinkConfig{
		Rate: 100 * sim.Gbps, Delay: sim.Micros(2),
		QueueBytes: 8 << 20, ECN: netem.StepMarking(65, 1024),
		RNG: sim.NewRand(opts.Seed ^ 0xc5),
	}, recv)

	rng := sim.NewRand(opts.Seed)
	scale := 10 / opts.Scale
	for host := 0; host < ncast; host++ {
		// Host uplink into the switch, fronted by the NIC's QP arbiter:
		// excess offered load waits in per-QP send queues served
		// round-robin at the port rate, never dropped or FIFO-blocked.
		uplink := netem.NewLink(eng, netem.LinkConfig{
			Rate: 100 * sim.Gbps, Delay: sim.Micros(2), QueueBytes: 1 << 20,
		}, bottleneck)
		arbiter := refcc.NewPortArbiter(eng, 100*sim.Gbps, uplink)
		for k := 0; k < fig9FlowsPerPort; k++ {
			flow := packet.FlowID(host*fig9FlowsPerPort + k)
			cfg := refcc.ConnectXConfig{
				Flow: flow, MTU: 1024, LineRate: 100 * sim.Gbps,
				AlphaTimer: sim.Duration(55e6 / scale),
				RateTimer:  sim.Duration(300e6 / scale),
				RateAI:     sim.Rate(40e6 * scale),
				RateHAI:    sim.Rate(400e6 * scale),
			}
			qp := refcc.NewConnectXQP(eng, cfg, arbiter)
			qps[flow] = qp
			qp.OnComplete(func(_ packet.FlowID, _ uint32, fct sim.Duration) {
				fcts = append(fcts, fct.Microseconds())
			})
			gen, err := workload.NewGenerator(dist, workload.ClosedLoop, 0, rng.Split())
			if err != nil {
				panic(err)
			}
			// Stagger QP start like a verbs tool bringing up its queue
			// pairs, softening the synchronized line-rate entry burst.
			eng.Schedule(sim.Duration(k+1)*sim.Micros(20), func() {
				qp.RunClosedLoop(func() uint32 { s, _ := gen.Next(); return s })
			})
		}
	}
	eng.Run(sim.Time(horizon))
	return fcts
}
