package experiments

import (
	"fmt"

	"marlin/internal/cc"
	"marlin/internal/controlplane"
	"marlin/internal/core"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

func init() {
	register("ext-hpcc", "extension: INT-based HPCC vs DCTCP/DCQCN — fairness and queue depth under fan-in", ExtHPCC)
	register("ext-pfc", "extension: PFC losslessness vs shallow lossy buffers for RoCE traffic", ExtPFC)
	register("ext-multipipe", "extension: two pipelines + two FPGA ports reach 2.4 Tbps (§4.3 per-pipeline allocation)", ExtMultiPipe)
	register("ext-fpgarecv", "extension: receiver logic on the FPGA via the reserved port (Figure 2 dashed path)", ExtFPGAReceiver)
}

// ExtHPCC evaluates the INT-consuming HPCC module (an extension beyond the
// paper's three reference algorithms, motivated by its §1 discussion of
// INT-based CC): four flows share a bottleneck, and the interesting
// contrast with ECN-based control is the standing queue — HPCC steers to
// 95% utilization with a near-empty queue, while DCTCP rides the marking
// threshold.
func ExtHPCC(opts Options) (*Result, error) {
	res := newResult("ext-hpcc", "fan-in fairness and bottleneck queue: HPCC vs DCTCP",
		"algo", "jain", "total_gbps", "mean_queue_pkts", "max_queue_pkts", "drops")
	horizon := opts.scaleD(5 * sim.Millisecond)
	const flows = 4
	for _, algo := range []string{"hpcc", "dctcp"} {
		eng := sim.NewEngine()
		spec := &controlplane.Spec{
			Algorithm: algo,
			Ports:     flows + 1,
			EnableINT: algo == "hpcc",
			Seed:      opts.Seed,
		}
		if algo == "dctcp" {
			spec.ECNThresholdPkts = 65
		}
		if algo == "hpcc" {
			// Start near the per-flow BDP share so the entry burst fits
			// the bottleneck buffer (HPCC sizes Winit to the BDP).
			params := cc.DefaultParams(100*sim.Gbps, 1024)
			params.HPCCInitWnd = 32
			spec.Params = &params
		}
		tr, err := spec.Deploy(eng)
		if err != nil {
			return nil, err
		}
		for f := 0; f < flows; f++ {
			if err := tr.StartFlow(packet.FlowID(f), f, flows, 0); err != nil {
				return nil, err
			}
		}
		// Sample the bottleneck backlog through the run.
		var qSamples []float64
		ticker := sim.NewTicker(eng, horizon/200, func() {
			qSamples = append(qSamples, float64(tr.Net.Port(flows).Queue().Bytes())/1044)
		})
		ticker.Start()
		tr.Run(sim.Time(horizon / 2))
		var base [flows]uint64
		for f := range base {
			base[f] = tr.Pipeline.FlowTxBytes(packet.FlowID(f))
		}
		tr.Run(sim.Time(horizon))

		var rates []float64
		total := 0.0
		for f := range base {
			bits := float64(tr.Pipeline.FlowTxBytes(packet.FlowID(f))-base[f]) * 8
			g := bits / (horizon / 2).Seconds() / 1e9
			rates = append(rates, g)
			total += g
		}
		meanQ, maxQ := 0.0, 0.0
		for _, q := range qSamples[len(qSamples)/2:] {
			meanQ += q
			if q > maxQ {
				maxQ = q
			}
		}
		meanQ /= float64(len(qSamples) / 2)
		drops := tr.Net.Port(flows).Queue().Stats().Drops
		jain := measure.JainIndex(rates)
		res.AddRow(algo, f2(jain), f2(total), f2(meanQ), f2(maxQ), fmt.Sprintf("%d", drops))
		res.Metrics[algo+"_jain"] = jain
		res.Metrics[algo+"_total_gbps"] = total
		res.Metrics[algo+"_mean_queue_pkts"] = meanQ
		res.Metrics[algo+"_drops"] = float64(drops)
	}
	res.Note("HPCC consumes per-hop telemetry the switch stamps on DATA and the receiver echoes through INFO")
	return res, nil
}

// ExtPFC contrasts a RoCE incast on shallow lossy buffers against the same
// buffers protected by PFC: pause frames replace drops, go-back-N
// retransmissions disappear, and goodput recovers.
func ExtPFC(opts Options) (*Result, error) {
	res := newResult("ext-pfc", "RoCE incast on shallow buffers: lossy vs PFC-protected",
		"fabric", "drops", "gbn_retransmits", "pause_episodes", "goodput_gbps")
	horizon := opts.scaleD(4 * sim.Millisecond)
	const flows = 3
	for _, pfc := range []bool{false, true} {
		eng := sim.NewEngine()
		tr, err := (&controlplane.Spec{
			Algorithm:        "dcqcn",
			Ports:            flows + 1,
			ECNThresholdPkts: 65,
			NetQueueBytes:    256 << 10, // shallow: ~245 packets
			EnablePFC:        pfc,
			DCQCNTimeScale:   30 / opts.Scale,
			Seed:             opts.Seed,
		}).Deploy(eng)
		if err != nil {
			return nil, err
		}
		for f := 0; f < flows; f++ {
			if err := tr.StartFlow(packet.FlowID(f), f, flows, 0); err != nil {
				return nil, err
			}
		}
		tr.Run(sim.Time(horizon))
		losses := controlplane.ReadLosses(tr)
		st := tr.NIC.Stats()
		// Goodput: unique DATA delivered to the receiver (drops and
		// retransmitted duplicates excluded).
		rx := tr.Pipeline.Counters().DataRx - tr.Pipeline.Counters().DuplicateRx
		goodput := float64(rx) * 1044 * 8 / horizon.Seconds() / 1e9
		name := "lossy"
		if pfc {
			name = "pfc"
		}
		res.AddRow(name, fmt.Sprintf("%d", losses.NetworkDrops),
			fmt.Sprintf("%d", st.RtxTx), fmt.Sprintf("%d", tr.PFCPauses()), f2(goodput))
		res.Metrics[name+"_drops"] = float64(losses.NetworkDrops)
		res.Metrics[name+"_rtx"] = float64(st.RtxTx)
		res.Metrics[name+"_pauses"] = float64(tr.PFCPauses())
		res.Metrics[name+"_goodput_gbps"] = goodput
	}
	res.Note("PFC watermarks: XOFF at half the egress queue, XON at a quarter; pause frames take one link delay")
	return res, nil
}

// ExtFPGAReceiver exercises Figure 2's dashed path: the switch truncates
// arriving DATA to 64 bytes and forwards it over the reserved port to
// receiver logic running on the FPGA (§4.1: for CC whose receiver side is
// "too complex to be implemented in the programmable switch"). The same
// workload runs both ways; the FPGA path must deliver equal goodput with
// one extra device round trip of RTT.
func ExtFPGAReceiver(opts Options) (*Result, error) {
	res := newResult("ext-fpgarecv", "switch receiver vs FPGA receiver over the reserved port",
		"receiver", "completions", "p50_fct_us", "goodput_gbps", "acks")
	horizon := opts.scaleD(10 * sim.Millisecond)
	for _, onFPGA := range []bool{false, true} {
		eng := sim.NewEngine()
		tr, err := (&controlplane.Spec{
			Algorithm:      "dctcp",
			Ports:          2,
			ReceiverOnFPGA: onFPGA,
			Seed:           opts.Seed,
		}).Deploy(eng)
		if err != nil {
			return nil, err
		}
		// Closed-loop fixed-size flows: FCT differences expose the extra
		// round trip.
		const size = 64
		tr.OnComplete(func(fl packet.FlowID, _ sim.Duration) {
			if err := tr.StartFlow(fl, 0, 1, size); err != nil {
				panic(err)
			}
		})
		if err := tr.StartFlow(0, 0, 1, size); err != nil {
			return nil, err
		}
		tr.Run(sim.Time(horizon))
		name := "switch"
		if onFPGA {
			name = "fpga"
		}
		cdf := measure.NewCDF(tr.FCTs.FCTs())
		goodput := float64(tr.Pipeline.Counters().DataTxBytes) * 8 / horizon.Seconds() / 1e9
		res.AddRow(name, fmt.Sprintf("%d", cdf.Len()), f2(cdf.Percentile(0.5)),
			f2(goodput), fmt.Sprintf("%d", tr.Pipeline.Counters().AckTx))
		res.Metrics[name+"_completions"] = float64(cdf.Len())
		res.Metrics[name+"_p50_us"] = cdf.Percentile(0.5)
		res.Metrics[name+"_goodput_gbps"] = goodput
	}
	res.Metrics["fct_penalty_us"] = res.Metrics["fpga_p50_us"] - res.Metrics["switch_p50_us"]
	res.Note("one reserved 100G port carries all truncations: 12 ports x 11.97 Mpps x 84 B wire = 96 Gbps")
	return res, nil
}

// ExtMultiPipe demonstrates §4.3's per-pipeline allocation at device
// scale: the paper's switch has two pipelines ("32x100 Gbps ports P4
// programmable ethernet switch with 2 pipelines"), each driven by its own
// 100 Gbps FPGA port, so one tester box reaches 2.4 Tbps.
func ExtMultiPipe(opts Options) (*Result, error) {
	horizon := opts.scaleD(2 * sim.Millisecond)
	const pipelines = 2
	eng := sim.NewEngine()

	res := newResult("ext-multipipe", "two-pipeline device: aggregate CC traffic",
		"pipeline", "data_ports", "throughput_gbps", "false_losses")
	// Registers are not shared across pipelines (§4.3), so each pipeline
	// is an independent deployment; they share the event engine the way
	// the two pipelines share one chassis.
	var testers []*core.Tester
	for pipe := 0; pipe < pipelines; pipe++ {
		tr, err := (&controlplane.Spec{
			Algorithm: "dctcp",
			Seed:      opts.Seed + uint64(pipe),
		}).Deploy(eng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < tr.Plan().DataPorts; i++ {
			if err := tr.StartFlow(packet.FlowID(i), i, i, 0); err != nil {
				return nil, err
			}
		}
		testers = append(testers, tr)
	}
	eng.Run(sim.Time(horizon))
	totalG := 0.0
	for pipe, tr := range testers {
		c := tr.Pipeline.Counters()
		gbps := float64(c.DataTxBytes) * 8 / horizon.Seconds() / 1e9
		totalG += gbps
		res.AddRow(fmt.Sprintf("%d", pipe), fmt.Sprintf("%d", tr.Plan().DataPorts),
			f2(gbps), fmt.Sprintf("%d", c.ScheDrops))
		res.Metrics[fmt.Sprintf("pipe%d_gbps", pipe)] = gbps
	}
	res.AddRow("total", fmt.Sprintf("%d", pipelines*12), f2(totalG), "0")
	res.Metrics["device_tbps"] = totalG / 1000
	res.Metrics["pipelines"] = pipelines
	plan, _ := tofino.NewPlan(1024, 100*sim.Gbps)
	res.Metrics["per_pipeline_plan_tbps"] = float64(plan.Throughput) / 1e12
	res.Note("a Tofino 3.2T device hosts 2 pipelines; each needs one FPGA 100G port (the U280 has two)")
	return res, nil
}
