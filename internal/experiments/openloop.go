package experiments

import (
	"fmt"

	"marlin/internal/controlplane"
	"marlin/internal/measure"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/workload"
)

func init() {
	register("ext-openloop", "extension: open-loop Poisson arrivals — FCT vs offered load sweep", ExtOpenLoop)
}

// ExtOpenLoop sweeps offered load with Poisson flow arrivals — the
// open-loop counterpart to §7.5's closed loop (which the paper notes is
// deliberately *not* Poisson). FCT percentiles versus load show the
// classic hockey stick as the bottleneck saturates.
func ExtOpenLoop(opts Options) (*Result, error) {
	res := newResult("ext-openloop", "DCTCP WebSearch FCT vs offered load (Poisson open loop)",
		"load", "completions", "p50_fct_us", "p99_fct_us", "achieved_gbps")
	horizon := opts.scaleD(25 * sim.Millisecond)
	dist := workload.WebSearch()
	const slots = 8 // concurrent generator slots on one port pair

	for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
		eng := sim.NewEngine()
		tr, err := (&controlplane.Spec{
			Algorithm:        "dctcp",
			Ports:            2,
			ECNThresholdPkts: 65,
			Seed:             opts.Seed,
		}).Deploy(eng)
		if err != nil {
			return nil, err
		}
		// Each slot offers load/slots of the port: the per-slot think
		// time comes from the distribution mean and the slot's share.
		gap, err := workload.MeanGapForLoad(load/slots, 100*sim.Gbps, dist, 1024)
		if err != nil {
			return nil, err
		}
		rng := sim.NewRand(opts.Seed)
		gens := make([]*workload.Generator, slots)
		for i := range gens {
			g, err := workload.NewGenerator(dist, workload.PoissonOpenLoop, gap, rng.Split())
			if err != nil {
				return nil, err
			}
			gens[i] = g
		}
		var start func(fl packet.FlowID)
		start = func(fl packet.FlowID) {
			size, after := gens[fl].Next()
			eng.Schedule(after, func() {
				if err := tr.StartFlow(fl, 0, 1, size); err != nil {
					panic(err)
				}
			})
		}
		tr.OnComplete(func(fl packet.FlowID, _ sim.Duration) { start(fl) })
		for i := 0; i < slots; i++ {
			start(packet.FlowID(i))
		}
		tr.Run(sim.Time(horizon))

		cdf := measure.NewCDF(tr.FCTs.FCTs())
		achieved := float64(tr.Pipeline.Counters().DataTxBytes) * 8 / horizon.Seconds() / 1e9
		key := fmt.Sprintf("%.0f", load*100)
		res.AddRow(fmt.Sprintf("%.1f", load), fmt.Sprintf("%d", cdf.Len()),
			f2(cdf.Percentile(0.5)), f2(cdf.Percentile(0.99)), f2(achieved))
		res.Metrics["p99_at_"+key] = cdf.Percentile(0.99)
		res.Metrics["p50_at_"+key] = cdf.Percentile(0.5)
		res.Metrics["gbps_at_"+key] = achieved
		res.Metrics["n_at_"+key] = float64(cdf.Len())
	}
	res.Note("open loop approximated by per-slot exponential think times (§7.5 notes the paper's own arrivals are closed-loop)")
	return res, nil
}
