// Package spec holds the value parsers shared by Marlin's one-line spec
// languages (faults.ParseSpec, workload.ParseSpec). Both languages compile
// ';'-separated entries with typed parameters; keeping the scalar parsing
// and its error wording here means "bad duration" reads the same whether
// the operator mistyped a fault window or a burst period.
package spec

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"marlin/internal/sim"
)

// Duration parses a Go-syntax duration ("2ms", "500us") into sim time.
// Negative durations are rejected.
func Duration(val string) (sim.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", val)
	}
	return sim.FromStd(d), nil
}

// Float parses a float-valued parameter; key names the parameter in the
// error ("bad frac \"x\"").
func Float(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, val)
	}
	return f, nil
}

// Uint parses an unsigned integer parameter; key names the parameter in
// the error ("bad seed \"x\"").
func Uint(key, val string) (uint64, error) {
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, val)
	}
	return n, nil
}

// Int parses a non-negative integer parameter; key names the parameter in
// the error.
func Int(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", key, val)
	}
	return n, nil
}

// Rate parses a data rate with a unit suffix: "40G", "2.5G", "500M",
// "1T", "800K", optionally ending in "bps" ("40Gbps"), or a bare
// bits-per-second integer. key names the parameter in the error.
func Rate(key, val string) (sim.Rate, error) {
	s := strings.TrimSuffix(val, "bps")
	mult := sim.Rate(1)
	if len(s) > 0 {
		switch s[len(s)-1] {
		case 'K', 'k':
			mult, s = sim.Kbps, s[:len(s)-1]
		case 'M', 'm':
			mult, s = sim.Mbps, s[:len(s)-1]
		case 'G', 'g':
			mult, s = sim.Gbps, s[:len(s)-1]
		case 'T', 't':
			mult, s = sim.Tbps, s[:len(s)-1]
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad %s %q", key, val)
	}
	return sim.Rate(f * float64(mult)), nil
}

// FormatRate renders a rate the way Rate parses it ("40G", "1.5M",
// "250bps"), so spec strings round-trip.
func FormatRate(r sim.Rate) string {
	for _, u := range []struct {
		mult   sim.Rate
		suffix string
	}{{sim.Tbps, "T"}, {sim.Gbps, "G"}, {sim.Mbps, "M"}, {sim.Kbps, "K"}} {
		if r >= u.mult {
			if r%u.mult == 0 {
				return fmt.Sprintf("%d%s", int64(r/u.mult), u.suffix)
			}
			return fmt.Sprintf("%g%s", float64(r)/float64(u.mult), u.suffix)
		}
	}
	return fmt.Sprintf("%dbps", int64(r))
}

// Pair is one key=value parameter of a spec entry.
type Pair struct {
	Key, Val string
}

// Pairs splits a comma-separated parameter body ("period=10ms,duty=0.2")
// into ordered key=value pairs, rejecting malformed and duplicate keys.
func Pairs(body string) ([]Pair, error) {
	var out []Pair
	seen := make(map[string]bool)
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty parameter")
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", part)
		}
		if seen[k] {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		seen[k] = true
		out = append(out, Pair{Key: k, Val: v})
	}
	return out, nil
}
