package spec

import (
	"strings"
	"testing"

	"marlin/internal/sim"
)

func TestDuration(t *testing.T) {
	d, err := Duration("2ms")
	if err != nil || d != 2*sim.Millisecond {
		t.Fatalf("Duration(2ms) = %v, %v", d, err)
	}
	for _, bad := range []string{"", "x", "-1ms", "2"} {
		if _, err := Duration(bad); err == nil {
			t.Errorf("Duration(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "bad duration") {
			t.Errorf("Duration(%q) error wording: %v", bad, err)
		}
	}
}

func TestScalars(t *testing.T) {
	if f, err := Float("frac", "0.25"); err != nil || f != 0.25 {
		t.Fatalf("Float = %v, %v", f, err)
	}
	if _, err := Float("frac", "x"); err == nil || err.Error() != `bad frac "x"` {
		t.Fatalf("Float error wording: %v", err)
	}
	if n, err := Uint("seed", "7"); err != nil || n != 7 {
		t.Fatalf("Uint = %v, %v", n, err)
	}
	if _, err := Uint("seed", "-1"); err == nil || err.Error() != `bad seed "-1"` {
		t.Fatalf("Uint error wording: %v", err)
	}
	if n, err := Int("fanin", "8"); err != nil || n != 8 {
		t.Fatalf("Int = %v, %v", n, err)
	}
	for _, bad := range []string{"-3", "x", "1.5"} {
		if _, err := Int("fanin", bad); err == nil {
			t.Errorf("Int(%q) accepted", bad)
		}
	}
}

func TestRate(t *testing.T) {
	cases := map[string]sim.Rate{
		"40G":    40 * sim.Gbps,
		"40Gbps": 40 * sim.Gbps,
		"2.5G":   2500 * sim.Mbps,
		"500M":   500 * sim.Mbps,
		"1T":     sim.Tbps,
		"800K":   800 * sim.Kbps,
		"1000":   1000,
		"0":      0,
	}
	for in, want := range cases {
		got, err := Rate("peak", in)
		if err != nil || got != want {
			t.Errorf("Rate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1G", "G", "bps", "10Q"} {
		if _, err := Rate("peak", bad); err == nil {
			t.Errorf("Rate(%q) accepted", bad)
		}
	}
}

func TestFormatRateRoundTrips(t *testing.T) {
	for _, r := range []sim.Rate{40 * sim.Gbps, 2500 * sim.Mbps, sim.Tbps, 800 * sim.Kbps, 250} {
		s := FormatRate(r)
		back, err := Rate("rate", s)
		if err != nil || back != r {
			t.Errorf("FormatRate(%v) = %q, reparsed %v, %v", r, s, back, err)
		}
	}
}

func TestPairs(t *testing.T) {
	ps, err := Pairs("period=10ms,duty=0.2,peak=40G")
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{"period", "10ms"}, {"duty", "0.2"}, {"peak", "40G"}}
	if len(ps) != len(want) {
		t.Fatalf("got %d pairs", len(ps))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, ps[i], want[i])
		}
	}
	for _, bad := range []string{"", "noequals", "=v", "k=", "a=1,,b=2", "a=1,a=2"} {
		if _, err := Pairs(bad); err == nil {
			t.Errorf("Pairs(%q) accepted", bad)
		}
	}
}
