// Package core assembles Marlin's devices into a runnable tester: the
// programmable-switch pipeline, the FPGA NIC, the 100 Gbps device
// interconnect, and an emulated tested network, wired as in Figure 1.
//
// Topology. Every test uses the paper's canonical arrangement (§7.1: "the
// sender and receiver are connected with a programmable switch via twelve
// 100 Gbps links each"): the tester's data ports send DATA through an
// intermediate switch that forwards each flow to a destination port, where
// the tester's own receiver logic generates ACKs that travel back over
// reverse links. Congestion appears wherever the flow routing concentrates
// traffic (pass-through for §7.2, fan-in for §7.3).
package core

import (
	"fmt"
	"strings"

	"marlin/internal/aqm"
	"marlin/internal/cc"
	"marlin/internal/fabric"
	"marlin/internal/faults"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/shard"
	"marlin/internal/sim"
	"marlin/internal/tofino"
	"marlin/internal/workload"
)

// Config assembles a tester. Zero values select the paper's defaults.
type Config struct {
	// Algorithm is the CC module to deploy (required).
	Algorithm cc.Algorithm
	// Params is the CC parameter block (zero = cc.DefaultParams).
	Params cc.Params
	// MTU is the DATA frame size (default 1024, §3.3).
	MTU int
	// PortRate is the per-port line rate (default 100 Gbps).
	PortRate sim.Rate
	// DataPorts limits how many of the pipeline's data ports the test
	// uses (default: all the plan provides).
	DataPorts int
	// Receiver selects the switch receiver logic; defaults to TCP for
	// window algorithms and RoCE for rate algorithms.
	Receiver tofino.ReceiverMode
	// ReceiverSet forces Receiver to be honored even when it is the
	// zero value (TCPReceiver).
	ReceiverSet bool
	// LinkDelay is the one-way delay of each tested-network link
	// (default 2 us).
	LinkDelay sim.Duration
	// ECN configures threshold marking at the tested network's egress
	// queues. Mutually exclusive with AQM.
	ECN netem.ECNConfig
	// AQM deploys an active queue management discipline (RED, PIE, CoDel,
	// PI2, DualPI2) on every tested-network egress queue instead of
	// threshold marking. The zero value keeps drop-tail (+ ECN, if set).
	AQM aqm.Spec
	// NetQueueBytes bounds each tested-network egress queue
	// (default 256 KiB).
	NetQueueBytes int
	// MaxFlows bounds concurrent flows (default 65,536-capable).
	MaxFlows int
	// RegQueueDepth is the switch register-queue depth (0 = default).
	RegQueueDepth int
	// Scheduler selects the FPGA scheduler design (§5.2 vs scan).
	Scheduler fpga.SchedulerMode
	// DisableRXTimer removes ingress pacing (Challenge 3 ablation).
	DisableRXTimer bool
	// SingleRXFIFO funnels all INFO into one FIFO (§5.3 ablation).
	SingleRXFIFO bool
	// SharedQueue uses one switch register queue (§4.2 ablation).
	SharedQueue bool
	// TXTimerPPS overrides the FPGA's per-port SCHE pacing. The default
	// is the plan's per-port DATA rate; raising it overruns the switch
	// queues (Challenge 1 ablation).
	TXTimerPPS float64
	// EnableINT stamps in-band telemetry on DATA packets at every
	// tested-network hop (for INT-based CC such as HPCC).
	EnableINT bool
	// ReceiverOnFPGA moves the receiver logic from the switch to the
	// FPGA over the reserved port (Figure 2's dashed path, §4.1).
	ReceiverOnFPGA bool
	// ForwardJitter adds uniform [0, ForwardJitter] propagation jitter
	// on the tested network's egress links; jitter beyond the frame gap
	// reorders DATA packets.
	ForwardJitter sim.Duration
	// ExtraHops inserts additional store-and-forward hops on every
	// forward path (leaf/spine-depth networks); each hop adds one link
	// of LinkDelay and, with EnableINT, one telemetry stack entry.
	ExtraHops int
	// EnablePFC makes the tested network lossless: each egress queue
	// pauses its upstream links at the XOFF watermark (RoCE fabrics).
	EnablePFC bool
	// PFCXOFFBytes overrides the pause watermark (0 = half the queue).
	PFCXOFFBytes int
	// Topology replaces the canonical single switch with a multi-switch
	// fabric (internal/fabric): the tester's data ports attach as hosts
	// and flows route toward their receiver port's leaf, with
	// deterministic ECMP where the shape offers equal-cost paths. The
	// zero value keeps the §7.1 single-switch arrangement, byte for
	// byte. Mutually exclusive with ExtraHops (the fabric has real
	// hops).
	Topology fabric.Spec
	// Shards > 0 runs the simulation as a conservative parallel build:
	// the Topology is partitioned along its natural fault domains
	// (fabric.PartitionSpec), each partition gets its own engine and
	// slice of the tester hardware, and up to Shards worker goroutines
	// execute rounds bounded by the fabric's minimum inter-partition
	// propagation delay. Outputs are byte-identical for every Shards >= 1
	// value and any GOMAXPROCS; 0 keeps the classic single-engine build.
	// Requires a Topology; incompatible with EnablePFC and
	// ReceiverOnFPGA.
	Shards int
	// Seed drives all randomness.
	Seed uint64
}

// ccOverride carries StartFlowCC's per-flow algorithm selection into the
// sharded start path (zero value: the deployed default module).
type ccOverride struct {
	alg cc.Algorithm
	ect packet.ECT
}

// Tester is an assembled Marlin instance plus its tested network.
type Tester struct {
	Eng      *sim.Engine
	Pipeline *tofino.Pipeline
	NIC      *fpga.NIC
	// Net is the canonical single tested-network switch; nil when the
	// tester runs over a multi-switch Topology (see Fabric).
	Net  *netem.Switch
	Fab  *fabric.Fabric
	FCTs *measure.FCTRecorder

	cfg     Config
	plan    tofino.Plan
	rng     *sim.Rand
	flowDst map[packet.FlowID]int
	sizes   map[packet.FlowID]uint32
	starts  map[packet.FlowID]sim.Time

	txLinks  []*netem.Link
	revLinks []*netem.Link
	pfcs     []*netem.PFC
	fpgaRecv *fpga.Receiver
	scheLink *netem.Link
	infoLink *netem.Link

	userComplete func(flow packet.FlowID, fct sim.Duration)

	faultPlan faults.Plan
	faultMon  *faults.Monitor

	patternPlan workload.Plan
	patternDrv  *workload.Driver
	overloadMon *measure.OverloadMonitor

	// Sharded-build state (nil/empty on the classic single-engine build).
	// Eng is then the control engine: it carries user schedules, fault and
	// pattern plans, and monitor probes, all executing at round barriers
	// while every partition clock sits exactly at the event's timestamp.
	runner    *shard.Runner
	partEngs  []*sim.Engine
	partPlan  fabric.PartitionPlan
	subs      []*subTester // by partition; nil where no hosts live
	subList   []*subTester // non-nil subs, ascending partition
	portSub   []int        // global data port -> owning partition
	portLocal []int        // global data port -> local index in its sub
	flowGroup map[packet.FlowID]int
}

// prepare validates cfg, fills in the paper's defaults, and shrinks the
// port plan to the ports actually used so validation and throughput
// accounting stay honest. Both the classic and the sharded assembly build
// from its output.
func prepare(cfg Config) (Config, tofino.Plan, error) {
	if cfg.Algorithm == nil {
		return cfg, tofino.Plan{}, fmt.Errorf("core: no CC algorithm configured")
	}
	if !cfg.Topology.IsZero() && cfg.ExtraHops > 0 {
		return cfg, tofino.Plan{}, fmt.Errorf("core: ExtraHops applies only to the canonical single-switch network; the %s fabric has real hops", cfg.Topology)
	}
	if cfg.AQM.Enabled() && cfg.ECN.Enable {
		return cfg, tofino.Plan{}, fmt.Errorf("core: AQM %s and threshold ECN are mutually exclusive marking policies", cfg.AQM.Kind)
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1024
	}
	if cfg.PortRate == 0 {
		cfg.PortRate = 100 * sim.Gbps
	}
	if cfg.Params.MTU == 0 {
		cfg.Params = cc.DefaultParams(cfg.PortRate, cfg.MTU)
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = sim.Micros(2)
	}
	if !cfg.ReceiverSet && cfg.Algorithm.Mode() == cc.RateMode {
		cfg.Receiver = tofino.RoCEReceiver
	}

	plan, err := tofino.NewPlan(cfg.MTU, cfg.PortRate)
	if err != nil {
		return cfg, tofino.Plan{}, err
	}
	if cfg.DataPorts == 0 || cfg.DataPorts > plan.DataPorts {
		cfg.DataPorts = plan.DataPorts
	}
	plan.DataPorts = cfg.DataPorts
	plan.Throughput = sim.Rate(int64(cfg.PortRate) * int64(cfg.DataPorts))
	return cfg, plan, nil
}

// timerPPS derives the FPGA pacing rates from the config and plan.
func timerPPS(cfg Config, plan tofino.Plan) (tx, rx float64) {
	tx = cfg.TXTimerPPS
	if tx == 0 {
		tx = plan.DataPPSPerPort
	}
	rx = plan.DataPPSPerPort
	if rx > tx {
		rx = tx
	}
	return tx, rx
}

// New builds and wires a tester.
func New(eng *sim.Engine, cfg Config) (*Tester, error) {
	cfg, plan, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 0 {
		return newSharded(eng, cfg, plan)
	}

	pl, err := tofino.NewPipeline(eng, tofino.Config{
		Plan:           plan,
		QueueDepth:     cfg.RegQueueDepth,
		SharedQueue:    cfg.SharedQueue,
		Receiver:       cfg.Receiver,
		ReceiverOnFPGA: cfg.ReceiverOnFPGA,
		CNPInterval:    cfg.Params.CNPInterval,
	})
	if err != nil {
		return nil, err
	}

	txPPS, rxPPS := timerPPS(cfg, plan)
	nic, err := fpga.NewNIC(eng, fpga.Config{
		Ports:          cfg.DataPorts,
		MaxFlows:       cfg.MaxFlows,
		Algorithm:      cfg.Algorithm,
		Params:         cfg.Params,
		TXTimerPPS:     txPPS,
		RXTimerPPS:     rxPPS,
		DisableRXTimer: cfg.DisableRXTimer,
		SingleRXFIFO:   cfg.SingleRXFIFO,
		Scheduler:      cfg.Scheduler,
		GoBackN:        cfg.Receiver == tofino.RoCEReceiver,
	})
	if err != nil {
		return nil, err
	}

	t := &Tester{
		Eng:      eng,
		Pipeline: pl,
		NIC:      nic,
		FCTs:     &measure.FCTRecorder{},
		cfg:      cfg,
		plan:     plan,
		rng:      sim.NewRand(cfg.Seed),
		flowDst:  make(map[packet.FlowID]int),
		sizes:    make(map[packet.FlowID]uint32),
		starts:   make(map[packet.FlowID]sim.Time),
	}

	// Device interconnect: one 100 Gbps cable carrying SCHE one way and
	// INFO the other (§3.1).
	deviceDelay := sim.Duration(200 * sim.Nanosecond)
	scheLink := netem.NewLink(eng, netem.LinkConfig{
		Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
	}, pl.ScheIn())
	nic.ConnectSche(scheLink)
	infoLink := netem.NewLink(eng, netem.LinkConfig{
		Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
	}, nic.InfoIn())
	pl.ConnectInfo(infoLink)
	t.scheLink, t.infoLink = scheLink, infoLink

	if cfg.ReceiverOnFPGA {
		// Reserved-port pair (§4.3): truncated DATA to the FPGA, the
		// receiver's ACK/NACK/CNP responses back to the switch.
		respLink := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, pl.FPGAAckIn())
		mode := fpga.TCPReceiver
		if cfg.Receiver == tofino.RoCEReceiver {
			mode = fpga.RoCEReceiver
		}
		t.fpgaRecv = fpga.NewReceiver(eng, mode, cfg.Params.CNPInterval, respLink)
		truncLink := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, t.fpgaRecv.DataIn())
		pl.ConnectRxForward(truncLink)
	}

	if !cfg.Topology.IsZero() {
		if err := t.wireFabric(eng); err != nil {
			return nil, err
		}
		nic.OnComplete(t.flowDone)
		return t, nil
	}

	// Tested network: tester -> intermediate switch -> tester.
	t.Net = netem.NewSwitch("tested-network", func(p *packet.Packet) int {
		if dst, ok := t.flowDst[p.Flow]; ok {
			return dst
		}
		return -1
	})
	txQueueBytes := cfg.NetQueueBytes
	if cfg.EnablePFC && txQueueBytes < 4<<20 {
		// PFC backpressure parks packets at the tester's uplinks; give
		// them room so losslessness holds end to end.
		txQueueBytes = 4 << 20
	}
	for i := 0; i < cfg.DataPorts; i++ {
		tx := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: cfg.LinkDelay, QueueBytes: txQueueBytes,
			EnableINT: cfg.EnableINT,
		}, t.Net)
		t.txLinks = append(t.txLinks, tx)
		pl.ConnectDataPort(i, tx)

		// The last-hop destination, preceded by any extra hops (built
		// back to front so packets traverse them in order).
		var dst netem.Node = pl.DataIn(i)
		for h := 0; h < cfg.ExtraHops; h++ {
			dst = netem.NewLink(eng, netem.LinkConfig{
				Rate: cfg.PortRate, Delay: cfg.LinkDelay,
				QueueBytes: cfg.NetQueueBytes, ECN: cfg.ECN, AQM: cfg.AQM,
				EnableINT: cfg.EnableINT,
				RNG:       t.rng.Split(),
			}, dst)
		}
		t.Net.AddPort(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: cfg.LinkDelay,
			QueueBytes: cfg.NetQueueBytes, ECN: cfg.ECN, AQM: cfg.AQM,
			EnableINT: cfg.EnableINT,
			Jitter:    cfg.ForwardJitter,
			RNG:       t.rng.Split(),
		}, dst)

		rev := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: 2 * cfg.LinkDelay, QueueBytes: 1 << 20,
		}, pl.AckIn())
		t.revLinks = append(t.revLinks, rev)
		pl.ConnectAckPort(i, rev)
	}
	if cfg.EnablePFC {
		// Each tested-network egress queue pauses all tester uplinks
		// (single-priority, port-level PFC).
		for i := 0; i < cfg.DataPorts; i++ {
			q := t.Net.Port(i).Queue()
			xoff := cfg.PFCXOFFBytes
			if xoff == 0 {
				xoff = q.Capacity() / 2
			}
			pfc, err := netem.NewPFC(eng, q, t.txLinks, netem.PFCConfig{
				XOFF: xoff, XON: xoff / 2, Delay: cfg.LinkDelay,
			})
			if err != nil {
				return nil, err
			}
			t.pfcs = append(t.pfcs, pfc)
		}
	}

	nic.OnComplete(t.flowDone)
	return t, nil
}

// wireFabric replaces the canonical single switch with a multi-switch
// tested network: each tester data port attaches as a fabric host, the
// destination host's downlink delivers into the pipeline's receiver
// logic, and the reverse ACK links are provisioned to the fabric's
// forward diameter.
func (t *Tester) wireFabric(eng *sim.Engine) error {
	cfg := t.cfg
	sinks := make([]netem.Node, cfg.DataPorts)
	for i := range sinks {
		sinks[i] = t.Pipeline.DataIn(i)
	}
	fab, err := fabric.Build(eng, fabric.Config{
		Spec:         cfg.Topology,
		Hosts:        cfg.DataPorts,
		PortRate:     cfg.PortRate,
		LinkDelay:    cfg.LinkDelay,
		QueueBytes:   cfg.NetQueueBytes,
		ECN:          cfg.ECN,
		AQM:          cfg.AQM,
		EnableINT:    cfg.EnableINT,
		Jitter:       cfg.ForwardJitter,
		EnablePFC:    cfg.EnablePFC,
		PFCXOFFBytes: cfg.PFCXOFFBytes,
		Seed:         cfg.Seed,
		Dst: func(p *packet.Packet) int {
			if dst, ok := t.flowDst[p.Flow]; ok {
				return dst
			}
			return -1
		},
		Sinks: sinks,
	})
	if err != nil {
		return err
	}
	t.Fab = fab
	revDelay := sim.Duration(cfg.Topology.Diameter()) * cfg.LinkDelay
	for i := 0; i < cfg.DataPorts; i++ {
		t.Pipeline.ConnectDataPort(i, fab.HostUplink(i))
		t.txLinks = append(t.txLinks, fab.HostUplink(i))
		rev := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: revDelay, QueueBytes: 1 << 20,
		}, t.Pipeline.AckIn())
		t.revLinks = append(t.revLinks, rev)
		t.Pipeline.ConnectAckPort(i, rev)
	}
	return nil
}

// PFCPauses reports pause episodes across all PFC controllers (0 when PFC
// is disabled).
func (t *Tester) PFCPauses() uint64 {
	var n uint64
	for _, p := range t.pfcs {
		n += p.Pauses()
	}
	if t.Fab != nil {
		n += t.Fab.PFCPauses()
	}
	return n
}

// Switches lists the tested network's switches: the canonical single
// switch, or every switch of the deployed fabric.
func (t *Tester) Switches() []*netem.Switch {
	if t.Fab != nil {
		return t.Fab.Switches()
	}
	return []*netem.Switch{t.Net}
}

// NetworkStats snapshots per-switch, per-port telemetry of the tested
// network (queue depth, pause state, drops, forwarded counts per hop).
func (t *Tester) NetworkStats() []netem.Stats {
	sws := t.Switches()
	out := make([]netem.Stats, len(sws))
	for i, s := range sws {
		out[i] = s.Stats()
	}
	return out
}

// ECMPPaths lists the fabric's per-path traffic counters (nil for the
// canonical single switch, which has no equal-cost choices).
func (t *Tester) ECMPPaths() []fabric.PathCounter {
	if t.Fab == nil {
		return nil
	}
	return t.Fab.ECMPPaths()
}

// Plan returns the port plan in force.
func (t *Tester) Plan() tofino.Plan { return t.plan }

// Config returns the tester's effective configuration.
func (t *Tester) Config() Config { return t.cfg }

// RNG returns the tester's seeded random stream.
func (t *Tester) RNG() *sim.Rand { return t.rng }

// ForwardLink returns the tested network's last-hop link toward receiver
// port rx; experiments attach loss/ECN scripts to it (§7.1).
func (t *Tester) ForwardLink(rx int) *netem.Link {
	if t.Fab != nil {
		return t.Fab.HostDownlink(rx)
	}
	return t.Net.Port(rx)
}

// TxLink returns the link from tester data port i into the network.
func (t *Tester) TxLink(i int) *netem.Link { return t.txLinks[i] }

// ResolveLink maps a fault-plan link name onto an emulated link
// (implementing faults.Target). "txN" is tester data port N's uplink in
// any topology. With a fabric deployed, fabric names resolve as
// fabric.ResolveLink documents ("leaf0->spine1", "host2->leaf0"). The
// canonical single switch additionally accepts "fwdN" for the forward
// link toward receiver port N.
func (t *Tester) ResolveLink(name string) (*netem.Link, error) {
	if i, ok := portAlias(name, "tx"); ok {
		if i < 0 || i >= len(t.txLinks) {
			return nil, fmt.Errorf("core: %s out of range [tx0,tx%d]", name, len(t.txLinks)-1)
		}
		return t.txLinks[i], nil
	}
	if t.Fab != nil {
		return t.Fab.ResolveLink(name)
	}
	if i, ok := portAlias(name, "fwd"); ok {
		if i < 0 || i >= t.cfg.DataPorts {
			return nil, fmt.Errorf("core: %s out of range [fwd0,fwd%d]", name, t.cfg.DataPorts-1)
		}
		return t.Net.Port(i), nil
	}
	return nil, fmt.Errorf("core: unknown link %q (single-switch names: txN, fwdN)", name)
}

// portAlias recognises prefixed port names like "tx3" or "fwd0".
func portAlias(name, prefix string) (int, bool) {
	num, ok := strings.CutPrefix(name, prefix)
	if !ok || num == "" {
		return 0, false
	}
	i := 0
	for _, c := range num {
		if c < '0' || c > '9' {
			return 0, false
		}
		i = i*10 + int(c-'0')
	}
	return i, true
}

// StallNIC gates the FPGA NIC's pacing timers (implementing
// faults.Target). A sharded build stalls every partition's NIC.
func (t *Tester) StallNIC(stalled bool) {
	if t.runner != nil {
		for _, sub := range t.subList {
			sub.nic.SetStall(stalled)
		}
		return
	}
	t.NIC.SetStall(stalled)
}

// InstallFaults schedules a fault plan against this tester and arms the
// recovery monitor. Call once, before running; recoveries surface in
// FaultRecoveries, controlplane snapshots, and the loss report.
func (t *Tester) InstallFaults(plan faults.Plan) (*faults.Monitor, error) {
	if t.faultMon != nil {
		return nil, fmt.Errorf("core: fault plan already installed")
	}
	if err := faults.Apply(t.Eng, t, plan); err != nil {
		return nil, err
	}
	t.faultPlan = plan
	t.faultMon = faults.NewMonitor(t.Eng, faults.MonitorConfig{}, plan,
		t.deliveredBytes,
		func() uint64 { return t.NICStats().RtxTx },
		t.ecnMarks)
	return t.faultMon, nil
}

// FaultPlan returns the installed fault plan (zero when none).
func (t *Tester) FaultPlan() faults.Plan { return t.faultPlan }

// FaultMonitor returns the armed recovery monitor, or nil.
func (t *Tester) FaultMonitor() *faults.Monitor { return t.faultMon }

// FaultRecoveries reports per-fault recovery telemetry (nil when no plan
// is installed).
func (t *Tester) FaultRecoveries() []faults.Recovery {
	if t.faultMon == nil {
		return nil
	}
	return t.faultMon.Report()
}

// BindExternalFlow routes a tester-external flow (pattern flood traffic
// injected past the NIC) toward receiver port rx, implementing
// workload.Target. The flow has no NIC or CC state: the tested network
// forwards, queues, marks, and drops its frames like any other DATA, and
// the ACKs the receiver generates are discarded at the inactive flow.
func (t *Tester) BindExternalFlow(flow packet.FlowID, rx int) error {
	if rx < 0 || rx >= t.cfg.DataPorts {
		return fmt.Errorf("core: rx port %d out of range [0,%d)", rx, t.cfg.DataPorts)
	}
	t.flowDst[flow] = rx
	return nil
}

// InjectData sends one raw DATA frame carrying the given ECN codepoint for
// a bound external flow into data port tx's uplink, implementing
// workload.Target.
func (t *Tester) InjectData(flow packet.FlowID, tx int, psn uint32, frameBytes int, ect packet.ECT) {
	t.txLinks[tx].Send(packet.NewDataECT(flow, psn, frameBytes, t.Eng.Now(), ect))
}

// InstallPatterns compiles a traffic-pattern plan onto this tester: a
// workload driver arms every pattern's arrival, storm, and flood events,
// and an overload monitor starts watching the victim port (the plan's
// explicit victim, else port 0). Call once, before running; the telemetry
// surfaces through OverloadMonitor and controlplane snapshots.
func (t *Tester) InstallPatterns(plan workload.Plan) (*measure.OverloadMonitor, error) {
	if t.patternDrv != nil {
		return nil, fmt.Errorf("core: pattern plan already installed")
	}
	drv, err := workload.Apply(t.Eng, t, plan, workload.DriverConfig{
		Ports: t.cfg.DataPorts,
		MTU:   t.cfg.MTU,
		Seed:  t.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	victim, _ := plan.Victim() // zero value: watch port 0
	link := t.ForwardLink(victim)
	q := link.Queue()
	mon, err := measure.NewOverloadMonitor(t.Eng, measure.OverloadProbe{
		QueueBytes: q.Bytes,
		PeakBytes:  func() int { return q.Stats().MaxBacklogB },
		Delivered:  func() uint64 { return link.Stats().TxPackets },
		Dropped:    func() uint64 { return q.Stats().Drops },
	}, measure.OverloadConfig{ThresholdBytes: q.Capacity() / 2})
	if err != nil {
		return nil, err
	}
	mon.Start()
	t.patternPlan = plan
	t.patternDrv = drv
	t.overloadMon = mon
	return mon, nil
}

// PatternPlan returns the installed pattern plan (zero when none).
func (t *Tester) PatternPlan() workload.Plan { return t.patternPlan }

// PatternDriver returns the armed workload driver, or nil.
func (t *Tester) PatternDriver() *workload.Driver { return t.patternDrv }

// OverloadMonitor returns the victim-port monitor armed by
// InstallPatterns, or nil.
func (t *Tester) OverloadMonitor() *measure.OverloadMonitor { return t.overloadMon }

// deliveredBytes sums the tested network's last-hop delivered bytes — the
// goodput counter the fault monitor samples.
func (t *Tester) deliveredBytes() uint64 {
	var n uint64
	for i := 0; i < t.cfg.DataPorts; i++ {
		n += t.ForwardLink(i).Stats().TxBytes
	}
	return n
}

// ecnMarks sums CE marks across every tested-network egress queue.
func (t *Tester) ecnMarks() uint64 {
	var n uint64
	for _, s := range t.Switches() {
		st := s.Stats()
		for _, p := range st.Ports {
			n += p.ECNMarks
		}
	}
	return n
}

// ScheLink returns the FPGA->switch device link (SCHE direction).
func (t *Tester) ScheLink() *netem.Link { return t.scheLink }

// InfoLink returns the switch->FPGA device link (INFO direction).
func (t *Tester) InfoLink() *netem.Link { return t.infoLink }

// OnComplete registers a hook invoked after each flow completion (after
// the FCT is recorded); closed-loop workloads start the next flow here.
func (t *Tester) OnComplete(fn func(flow packet.FlowID, fct sim.Duration)) {
	t.userComplete = fn
}

// StartFlow launches a flow of sizePkts MTU-sized packets from tx port to
// rx port. sizePkts == 0 runs an unbounded flow (stopped via StopFlow).
func (t *Tester) StartFlow(flow packet.FlowID, tx, rx int, sizePkts uint32) error {
	if t.runner != nil {
		return t.startFlowSharded(flow, tx, rx, sizePkts, ccOverride{})
	}
	if rx < 0 || rx >= t.cfg.DataPorts {
		return fmt.Errorf("core: rx port %d out of range [0,%d)", rx, t.cfg.DataPorts)
	}
	if err := t.Pipeline.BindFlow(flow, tx); err != nil {
		return err
	}
	t.Pipeline.ResetFlow(flow)
	if t.fpgaRecv != nil {
		t.fpgaRecv.Reset(flow)
	}
	t.flowDst[flow] = rx
	t.sizes[flow] = sizePkts
	t.starts[flow] = t.Eng.Now()
	return t.NIC.StartFlow(flow, tx, sizePkts)
}

// StartFlowCC launches a flow running a per-flow CC algorithm instead of
// the deployed default — the mixed-control coexistence case (DCTCP beside
// CUBIC through one AQM). The named algorithm must share the deployed
// module's Mode; the flow carries the algorithm's preferred ECN codepoint
// (ECT(1) for scalable controls, ECT(0) otherwise).
func (t *Tester) StartFlowCC(flow packet.FlowID, tx, rx int, sizePkts uint32, algorithm string) error {
	alg, err := cc.New(algorithm)
	if err != nil {
		return err
	}
	if t.runner != nil {
		return t.startFlowSharded(flow, tx, rx, sizePkts, ccOverride{alg: alg, ect: cc.PreferredECT(alg)})
	}
	if rx < 0 || rx >= t.cfg.DataPorts {
		return fmt.Errorf("core: rx port %d out of range [0,%d)", rx, t.cfg.DataPorts)
	}
	if err := t.Pipeline.BindFlow(flow, tx); err != nil {
		return err
	}
	t.Pipeline.ResetFlow(flow)
	if t.fpgaRecv != nil {
		t.fpgaRecv.Reset(flow)
	}
	t.flowDst[flow] = rx
	t.sizes[flow] = sizePkts
	t.starts[flow] = t.Eng.Now()
	return t.NIC.StartFlowWith(flow, tx, sizePkts, alg, cc.PreferredECT(alg))
}

// StopFlow terminates a flow immediately (§7.3's staggered termination).
func (t *Tester) StopFlow(flow packet.FlowID) {
	if t.runner != nil {
		if g, ok := t.flowGroup[flow]; ok {
			t.subs[g].nic.StopFlow(flow)
		}
		return
	}
	t.NIC.StopFlow(flow)
}

func (t *Tester) flowDone(flow packet.FlowID, fct sim.Duration) {
	t.FCTs.Add(measure.FCTRecord{
		Flow:     flow,
		SizePkts: t.sizes[flow],
		Start:    t.starts[flow],
		FCT:      fct,
	})
	if t.userComplete != nil {
		t.userComplete(flow, fct)
	}
}

// Run advances the simulation to the given absolute time: the single
// engine directly, or every partition engine in conservative rounds.
func (t *Tester) Run(until sim.Time) {
	if t.runner != nil {
		t.runner.Run(until)
		return
	}
	t.Eng.Run(until)
}

// GoodputBits returns the DATA bits the switch emitted for a flow.
func (t *Tester) GoodputBits(flow packet.FlowID) uint64 {
	return t.FlowTxBytes(flow) * 8
}

// TopologyDOT renders the wired test setup as a Graphviz digraph: the
// FPGA/switch device pair, the per-port forward paths through the tested
// network, and the reverse ACK paths — the picture Figure 1 draws, for
// this deployment's actual configuration.
func (t *Tester) TopologyDOT() string {
	var b strings.Builder
	b.WriteString("digraph marlin {\n  rankdir=LR;\n")
	b.WriteString("  fpga [shape=box,label=\"FPGA NIC\\n")
	fmt.Fprintf(&b, "%s, %d ports\"];\n", t.cfg.Algorithm.Name(), t.cfg.DataPorts)
	b.WriteString("  switch [shape=box,label=\"switch pipeline\\n")
	fmt.Fprintf(&b, "MTU %d, %v/port\"];\n", t.plan.MTU, t.plan.PortRate)
	b.WriteString("  fpga -> switch [label=\"SCHE 64B\"];\n")
	b.WriteString("  switch -> fpga [label=\"INFO 64B\"];\n")
	if t.Fab != nil {
		// Multi-switch fabric: every switch is its own node with live
		// per-hop counters; the tester's ports all hang off the pipeline.
		t.Fab.DOTBody(&b, func(int) string { return "switch" })
	} else {
		fmt.Fprintf(&b, "  net [shape=ellipse,label=\"tested network\\n%d+%d hops, delay %v\"];\n",
			1, t.cfg.ExtraHops, t.cfg.LinkDelay)
		for i := 0; i < t.cfg.DataPorts; i++ {
			fmt.Fprintf(&b, "  switch -> net [label=\"DATA p%d\"];\n", i)
			fmt.Fprintf(&b, "  net -> switch [label=\"ACK p%d\"];\n", i)
		}
	}
	if t.cfg.EnablePFC && t.Fab == nil {
		b.WriteString("  net -> switch [style=dashed,label=\"PFC pause\"];\n")
	}
	if t.fpgaRecv != nil {
		b.WriteString("  switch -> fpga [style=dashed,label=\"truncated DATA (reserved port)\"];\n")
	}
	b.WriteString("}\n")
	return b.String()
}
