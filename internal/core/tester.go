// Package core assembles Marlin's devices into a runnable tester: the
// programmable-switch pipeline, the FPGA NIC, the 100 Gbps device
// interconnect, and an emulated tested network, wired as in Figure 1.
//
// Topology. Every test uses the paper's canonical arrangement (§7.1: "the
// sender and receiver are connected with a programmable switch via twelve
// 100 Gbps links each"): the tester's data ports send DATA through an
// intermediate switch that forwards each flow to a destination port, where
// the tester's own receiver logic generates ACKs that travel back over
// reverse links. Congestion appears wherever the flow routing concentrates
// traffic (pass-through for §7.2, fan-in for §7.3).
package core

import (
	"fmt"
	"strings"

	"marlin/internal/cc"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

// Config assembles a tester. Zero values select the paper's defaults.
type Config struct {
	// Algorithm is the CC module to deploy (required).
	Algorithm cc.Algorithm
	// Params is the CC parameter block (zero = cc.DefaultParams).
	Params cc.Params
	// MTU is the DATA frame size (default 1024, §3.3).
	MTU int
	// PortRate is the per-port line rate (default 100 Gbps).
	PortRate sim.Rate
	// DataPorts limits how many of the pipeline's data ports the test
	// uses (default: all the plan provides).
	DataPorts int
	// Receiver selects the switch receiver logic; defaults to TCP for
	// window algorithms and RoCE for rate algorithms.
	Receiver tofino.ReceiverMode
	// ReceiverSet forces Receiver to be honored even when it is the
	// zero value (TCPReceiver).
	ReceiverSet bool
	// LinkDelay is the one-way delay of each tested-network link
	// (default 2 us).
	LinkDelay sim.Duration
	// ECN configures marking at the tested network's egress queues.
	ECN netem.ECNConfig
	// NetQueueBytes bounds each tested-network egress queue
	// (default 256 KiB).
	NetQueueBytes int
	// MaxFlows bounds concurrent flows (default 65,536-capable).
	MaxFlows int
	// RegQueueDepth is the switch register-queue depth (0 = default).
	RegQueueDepth int
	// Scheduler selects the FPGA scheduler design (§5.2 vs scan).
	Scheduler fpga.SchedulerMode
	// DisableRXTimer removes ingress pacing (Challenge 3 ablation).
	DisableRXTimer bool
	// SingleRXFIFO funnels all INFO into one FIFO (§5.3 ablation).
	SingleRXFIFO bool
	// SharedQueue uses one switch register queue (§4.2 ablation).
	SharedQueue bool
	// TXTimerPPS overrides the FPGA's per-port SCHE pacing. The default
	// is the plan's per-port DATA rate; raising it overruns the switch
	// queues (Challenge 1 ablation).
	TXTimerPPS float64
	// EnableINT stamps in-band telemetry on DATA packets at every
	// tested-network hop (for INT-based CC such as HPCC).
	EnableINT bool
	// ReceiverOnFPGA moves the receiver logic from the switch to the
	// FPGA over the reserved port (Figure 2's dashed path, §4.1).
	ReceiverOnFPGA bool
	// ForwardJitter adds uniform [0, ForwardJitter] propagation jitter
	// on the tested network's egress links; jitter beyond the frame gap
	// reorders DATA packets.
	ForwardJitter sim.Duration
	// ExtraHops inserts additional store-and-forward hops on every
	// forward path (leaf/spine-depth networks); each hop adds one link
	// of LinkDelay and, with EnableINT, one telemetry stack entry.
	ExtraHops int
	// EnablePFC makes the tested network lossless: each egress queue
	// pauses its upstream links at the XOFF watermark (RoCE fabrics).
	EnablePFC bool
	// PFCXOFFBytes overrides the pause watermark (0 = half the queue).
	PFCXOFFBytes int
	// Seed drives all randomness.
	Seed uint64
}

// Tester is an assembled Marlin instance plus its tested network.
type Tester struct {
	Eng      *sim.Engine
	Pipeline *tofino.Pipeline
	NIC      *fpga.NIC
	Net      *netem.Switch
	FCTs     *measure.FCTRecorder

	cfg     Config
	plan    tofino.Plan
	rng     *sim.Rand
	flowDst map[packet.FlowID]int
	sizes   map[packet.FlowID]uint32
	starts  map[packet.FlowID]sim.Time

	txLinks  []*netem.Link
	revLinks []*netem.Link
	pfcs     []*netem.PFC
	fpgaRecv *fpga.Receiver
	scheLink *netem.Link
	infoLink *netem.Link

	userComplete func(flow packet.FlowID, fct sim.Duration)
}

// New builds and wires a tester.
func New(eng *sim.Engine, cfg Config) (*Tester, error) {
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("core: no CC algorithm configured")
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1024
	}
	if cfg.PortRate == 0 {
		cfg.PortRate = 100 * sim.Gbps
	}
	if cfg.Params.MTU == 0 {
		cfg.Params = cc.DefaultParams(cfg.PortRate, cfg.MTU)
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = sim.Micros(2)
	}
	if !cfg.ReceiverSet && cfg.Algorithm.Mode() == cc.RateMode {
		cfg.Receiver = tofino.RoCEReceiver
	}

	plan, err := tofino.NewPlan(cfg.MTU, cfg.PortRate)
	if err != nil {
		return nil, err
	}
	if cfg.DataPorts == 0 || cfg.DataPorts > plan.DataPorts {
		cfg.DataPorts = plan.DataPorts
	}
	// Shrink the plan to the ports actually used so validation and
	// throughput accounting stay honest.
	plan.DataPorts = cfg.DataPorts
	plan.Throughput = sim.Rate(int64(cfg.PortRate) * int64(cfg.DataPorts))

	pl, err := tofino.NewPipeline(eng, tofino.Config{
		Plan:           plan,
		QueueDepth:     cfg.RegQueueDepth,
		SharedQueue:    cfg.SharedQueue,
		Receiver:       cfg.Receiver,
		ReceiverOnFPGA: cfg.ReceiverOnFPGA,
		CNPInterval:    cfg.Params.CNPInterval,
	})
	if err != nil {
		return nil, err
	}

	txPPS := cfg.TXTimerPPS
	if txPPS == 0 {
		txPPS = plan.DataPPSPerPort
	}
	rxPPS := plan.DataPPSPerPort
	if rxPPS > txPPS {
		rxPPS = txPPS
	}
	nic, err := fpga.NewNIC(eng, fpga.Config{
		Ports:          cfg.DataPorts,
		MaxFlows:       cfg.MaxFlows,
		Algorithm:      cfg.Algorithm,
		Params:         cfg.Params,
		TXTimerPPS:     txPPS,
		RXTimerPPS:     rxPPS,
		DisableRXTimer: cfg.DisableRXTimer,
		SingleRXFIFO:   cfg.SingleRXFIFO,
		Scheduler:      cfg.Scheduler,
	})
	if err != nil {
		return nil, err
	}

	t := &Tester{
		Eng:      eng,
		Pipeline: pl,
		NIC:      nic,
		FCTs:     &measure.FCTRecorder{},
		cfg:      cfg,
		plan:     plan,
		rng:      sim.NewRand(cfg.Seed),
		flowDst:  make(map[packet.FlowID]int),
		sizes:    make(map[packet.FlowID]uint32),
		starts:   make(map[packet.FlowID]sim.Time),
	}

	// Device interconnect: one 100 Gbps cable carrying SCHE one way and
	// INFO the other (§3.1).
	deviceDelay := sim.Duration(200 * sim.Nanosecond)
	scheLink := netem.NewLink(eng, netem.LinkConfig{
		Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
	}, pl.ScheIn())
	nic.ConnectSche(scheLink)
	infoLink := netem.NewLink(eng, netem.LinkConfig{
		Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
	}, nic.InfoIn())
	pl.ConnectInfo(infoLink)
	t.scheLink, t.infoLink = scheLink, infoLink

	if cfg.ReceiverOnFPGA {
		// Reserved-port pair (§4.3): truncated DATA to the FPGA, the
		// receiver's ACK/NACK/CNP responses back to the switch.
		respLink := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, pl.FPGAAckIn())
		mode := fpga.TCPReceiver
		if cfg.Receiver == tofino.RoCEReceiver {
			mode = fpga.RoCEReceiver
		}
		t.fpgaRecv = fpga.NewReceiver(eng, mode, cfg.Params.CNPInterval, respLink)
		truncLink := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, t.fpgaRecv.DataIn())
		pl.ConnectRxForward(truncLink)
	}

	// Tested network: tester -> intermediate switch -> tester.
	t.Net = netem.NewSwitch("tested-network", func(p *packet.Packet) int {
		if dst, ok := t.flowDst[p.Flow]; ok {
			return dst
		}
		return -1
	})
	txQueueBytes := cfg.NetQueueBytes
	if cfg.EnablePFC && txQueueBytes < 4<<20 {
		// PFC backpressure parks packets at the tester's uplinks; give
		// them room so losslessness holds end to end.
		txQueueBytes = 4 << 20
	}
	for i := 0; i < cfg.DataPorts; i++ {
		tx := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: cfg.LinkDelay, QueueBytes: txQueueBytes,
			EnableINT: cfg.EnableINT,
		}, t.Net)
		t.txLinks = append(t.txLinks, tx)
		pl.ConnectDataPort(i, tx)

		// The last-hop destination, preceded by any extra hops (built
		// back to front so packets traverse them in order).
		var dst netem.Node = pl.DataIn(i)
		for h := 0; h < cfg.ExtraHops; h++ {
			dst = netem.NewLink(eng, netem.LinkConfig{
				Rate: cfg.PortRate, Delay: cfg.LinkDelay,
				QueueBytes: cfg.NetQueueBytes, ECN: cfg.ECN,
				EnableINT: cfg.EnableINT,
				RNG:       t.rng.Split(),
			}, dst)
		}
		t.Net.AddPort(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: cfg.LinkDelay,
			QueueBytes: cfg.NetQueueBytes, ECN: cfg.ECN,
			EnableINT: cfg.EnableINT,
			Jitter:    cfg.ForwardJitter,
			RNG:       t.rng.Split(),
		}, dst)

		rev := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: 2 * cfg.LinkDelay, QueueBytes: 1 << 20,
		}, pl.AckIn())
		t.revLinks = append(t.revLinks, rev)
		pl.ConnectAckPort(i, rev)
	}
	if cfg.EnablePFC {
		// Each tested-network egress queue pauses all tester uplinks
		// (single-priority, port-level PFC).
		for i := 0; i < cfg.DataPorts; i++ {
			q := t.Net.Port(i).Queue()
			xoff := cfg.PFCXOFFBytes
			if xoff == 0 {
				xoff = q.Capacity() / 2
			}
			pfc, err := netem.NewPFC(eng, q, t.txLinks, netem.PFCConfig{
				XOFF: xoff, XON: xoff / 2, Delay: cfg.LinkDelay,
			})
			if err != nil {
				return nil, err
			}
			t.pfcs = append(t.pfcs, pfc)
		}
	}

	nic.OnComplete(t.flowDone)
	return t, nil
}

// PFCPauses reports pause episodes across all PFC controllers (0 when PFC
// is disabled).
func (t *Tester) PFCPauses() uint64 {
	var n uint64
	for _, p := range t.pfcs {
		n += p.Pauses()
	}
	return n
}

// Plan returns the port plan in force.
func (t *Tester) Plan() tofino.Plan { return t.plan }

// Config returns the tester's effective configuration.
func (t *Tester) Config() Config { return t.cfg }

// RNG returns the tester's seeded random stream.
func (t *Tester) RNG() *sim.Rand { return t.rng }

// ForwardLink returns the tested network's egress link toward receiver
// port rx; experiments attach loss/ECN scripts to it (§7.1).
func (t *Tester) ForwardLink(rx int) *netem.Link { return t.Net.Port(rx) }

// TxLink returns the link from tester data port i into the network.
func (t *Tester) TxLink(i int) *netem.Link { return t.txLinks[i] }

// ScheLink returns the FPGA->switch device link (SCHE direction).
func (t *Tester) ScheLink() *netem.Link { return t.scheLink }

// InfoLink returns the switch->FPGA device link (INFO direction).
func (t *Tester) InfoLink() *netem.Link { return t.infoLink }

// OnComplete registers a hook invoked after each flow completion (after
// the FCT is recorded); closed-loop workloads start the next flow here.
func (t *Tester) OnComplete(fn func(flow packet.FlowID, fct sim.Duration)) {
	t.userComplete = fn
}

// StartFlow launches a flow of sizePkts MTU-sized packets from tx port to
// rx port. sizePkts == 0 runs an unbounded flow (stopped via StopFlow).
func (t *Tester) StartFlow(flow packet.FlowID, tx, rx int, sizePkts uint32) error {
	if rx < 0 || rx >= t.cfg.DataPorts {
		return fmt.Errorf("core: rx port %d out of range [0,%d)", rx, t.cfg.DataPorts)
	}
	if err := t.Pipeline.BindFlow(flow, tx); err != nil {
		return err
	}
	t.Pipeline.ResetFlow(flow)
	if t.fpgaRecv != nil {
		t.fpgaRecv.Reset(flow)
	}
	t.flowDst[flow] = rx
	t.sizes[flow] = sizePkts
	t.starts[flow] = t.Eng.Now()
	return t.NIC.StartFlow(flow, tx, sizePkts)
}

// StopFlow terminates a flow immediately (§7.3's staggered termination).
func (t *Tester) StopFlow(flow packet.FlowID) { t.NIC.StopFlow(flow) }

func (t *Tester) flowDone(flow packet.FlowID, fct sim.Duration) {
	t.FCTs.Add(measure.FCTRecord{
		Flow:     flow,
		SizePkts: t.sizes[flow],
		Start:    t.starts[flow],
		FCT:      fct,
	})
	if t.userComplete != nil {
		t.userComplete(flow, fct)
	}
}

// Run advances the simulation to the given absolute time.
func (t *Tester) Run(until sim.Time) { t.Eng.Run(until) }

// GoodputBits returns the DATA bits the switch emitted for a flow.
func (t *Tester) GoodputBits(flow packet.FlowID) uint64 {
	return t.Pipeline.FlowTxBytes(flow) * 8
}

// TopologyDOT renders the wired test setup as a Graphviz digraph: the
// FPGA/switch device pair, the per-port forward paths through the tested
// network, and the reverse ACK paths — the picture Figure 1 draws, for
// this deployment's actual configuration.
func (t *Tester) TopologyDOT() string {
	var b strings.Builder
	b.WriteString("digraph marlin {\n  rankdir=LR;\n")
	b.WriteString("  fpga [shape=box,label=\"FPGA NIC\\n")
	fmt.Fprintf(&b, "%s, %d ports\"];\n", t.cfg.Algorithm.Name(), t.cfg.DataPorts)
	b.WriteString("  switch [shape=box,label=\"switch pipeline\\n")
	fmt.Fprintf(&b, "MTU %d, %v/port\"];\n", t.plan.MTU, t.plan.PortRate)
	fmt.Fprintf(&b, "  net [shape=ellipse,label=\"tested network\\n%d+%d hops, delay %v\"];\n",
		1, t.cfg.ExtraHops, t.cfg.LinkDelay)
	b.WriteString("  fpga -> switch [label=\"SCHE 64B\"];\n")
	b.WriteString("  switch -> fpga [label=\"INFO 64B\"];\n")
	for i := 0; i < t.cfg.DataPorts; i++ {
		fmt.Fprintf(&b, "  switch -> net [label=\"DATA p%d\"];\n", i)
		fmt.Fprintf(&b, "  net -> switch [label=\"ACK p%d\"];\n", i)
	}
	if t.cfg.EnablePFC {
		b.WriteString("  net -> switch [style=dashed,label=\"PFC pause\"];\n")
	}
	if t.fpgaRecv != nil {
		b.WriteString("  switch -> fpga [style=dashed,label=\"truncated DATA (reserved port)\"];\n")
	}
	b.WriteString("}\n")
	return b.String()
}
