package core

import (
	"reflect"
	"strings"
	"testing"

	"marlin/internal/cc"
	"marlin/internal/fabric"
	"marlin/internal/faults"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

func mustAlg(t testing.TB, name string) cc.Algorithm {
	t.Helper()
	alg, err := cc.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func newTester(t testing.TB, cfg Config) *Tester {
	t.Helper()
	eng := sim.NewEngine()
	tester, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

func TestNewDefaults(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp")})
	if tr.Plan().MTU != 1024 || tr.Plan().DataPorts != 12 {
		t.Fatalf("plan = %+v", tr.Plan())
	}
	if tr.Config().Receiver != tofino.TCPReceiver {
		t.Fatal("window algorithm did not default to TCP receiver")
	}
	tr2 := newTester(t, Config{Algorithm: mustAlg(t, "dcqcn")})
	if tr2.Config().Receiver != tofino.RoCEReceiver {
		t.Fatal("rate algorithm did not default to RoCE receiver")
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := New(eng, Config{Algorithm: mustAlg(t, "reno"), MTU: 1}); err == nil {
		t.Fatal("bad MTU accepted")
	}
}

func TestSingleFlowReachesLineRate(t *testing.T) {
	// §7.1/§2.1: "throughput can reach the line rate for a single flow".
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 2,
		Seed:      1,
	})
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	const horizon = 2 * sim.Millisecond
	tr.Run(sim.Time(horizon))
	// Skip slow start: measure the last millisecond.
	bytesAtHalf := uint64(0)
	tr2 := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 1})
	tr2.StartFlow(0, 0, 1, 0)
	tr2.Run(sim.Time(horizon / 2))
	bytesAtHalf = tr2.Pipeline.FlowTxBytes(0)
	total := tr.Pipeline.FlowTxBytes(0)
	gbps := float64(total-bytesAtHalf) * 8 / (horizon / 2).Seconds() / 1e9
	if gbps < 90 {
		t.Fatalf("steady-state single-flow rate = %.1f Gbps, want ~98", gbps)
	}
	if gbps > 100 {
		t.Fatalf("rate %.1f Gbps exceeds line", gbps)
	}
}

func TestFlowCompletionRecordsFCT(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 2})
	if err := tr.StartFlow(0, 0, 1, 100); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(20 * sim.Millisecond))
	if tr.FCTs.Len() != 1 {
		t.Fatalf("recorded %d FCTs, want 1", tr.FCTs.Len())
	}
	rec := tr.FCTs.Records()[0]
	if rec.SizePkts != 100 || rec.FCT <= 0 {
		t.Fatalf("record = %+v", rec)
	}
	// 100 packets through an ~8.5us RTT pipe with slow start from 1:
	// at least ~7 RTTs; sanity bound the FCT.
	if us := rec.FCT.Microseconds(); us < 20 || us > 5000 {
		t.Fatalf("fct = %vus, implausible", us)
	}
}

func TestClosedLoopFlowReplacement(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 3})
	tr.Config()
	count := 0
	tr.OnComplete(func(flow packet.FlowID, fct sim.Duration) {
		count++
		if count < 50 {
			if err := tr.StartFlow(flow, 0, 1, 20); err != nil {
				t.Errorf("restart failed: %v", err)
			}
		}
	})
	if err := tr.StartFlow(0, 0, 1, 20); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(100 * sim.Millisecond))
	if count < 50 {
		t.Fatalf("completed %d closed-loop flows, want 50", count)
	}
	if tr.FCTs.Len() != count {
		t.Fatalf("FCT records %d != completions %d", tr.FCTs.Len(), count)
	}
}

func TestFanInCongestionSharesFairly(t *testing.T) {
	// Four senders into one destination port: DCTCP should converge to
	// ~25 Gbps each with a high Jain index (§7.3 in miniature).
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 5,
		ECN:       netem.StepMarking(65, 1024), // K=65 packets
		Seed:      4,
	})
	for f := packet.FlowID(0); f < 4; f++ {
		if err := tr.StartFlow(f, int(f), 4, 0); err != nil {
			t.Fatal(err)
		}
	}
	warm := sim.Time(3 * sim.Millisecond)
	tr.Run(warm)
	var base [4]uint64
	for f := range base {
		base[f] = tr.Pipeline.FlowTxBytes(packet.FlowID(f))
	}
	tr.Run(warm + sim.Time(3*sim.Millisecond))
	var rates []float64
	var total float64
	for f := range base {
		bits := float64(tr.Pipeline.FlowTxBytes(packet.FlowID(f))-base[f]) * 8
		gbps := bits / sim.Duration(3*sim.Millisecond).Seconds() / 1e9
		rates = append(rates, gbps)
		total += gbps
	}
	if total < 80 || total > 102 {
		t.Fatalf("aggregate = %.1f Gbps through a 100G bottleneck: %v", total, rates)
	}
	if jain := measure.JainIndex(rates); jain < 0.95 {
		t.Fatalf("Jain index = %.3f (rates %v), want > 0.95", jain, rates)
	}
}

func TestDCQCNFanInConverges(t *testing.T) {
	// DCQCN's paper parameters recover over hundreds of ms; compress its
	// timescale ~30x so convergence fits a millisecond-horizon test.
	params := cc.DefaultParams(100*sim.Gbps, 1024)
	params.ScaleDCQCNTime(30)
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dcqcn"),
		Params:    params,
		DataPorts: 5,
		ECN:       netem.StepMarking(65, 1024),
		Seed:      5,
	})
	for f := packet.FlowID(0); f < 4; f++ {
		if err := tr.StartFlow(f, int(f), 4, 0); err != nil {
			t.Fatal(err)
		}
	}
	warm := sim.Time(4 * sim.Millisecond)
	tr.Run(warm)
	var base [4]uint64
	for f := range base {
		base[f] = tr.Pipeline.FlowTxBytes(packet.FlowID(f))
	}
	tr.Run(warm + sim.Time(4*sim.Millisecond))
	var rates []float64
	var total float64
	for f := range base {
		bits := float64(tr.Pipeline.FlowTxBytes(packet.FlowID(f))-base[f]) * 8
		rates = append(rates, bits/sim.Duration(4*sim.Millisecond).Seconds()/1e9)
		total += rates[f]
	}
	if total < 60 || total > 102 {
		t.Fatalf("DCQCN aggregate = %.1f Gbps: %v", total, rates)
	}
	if jain := measure.JainIndex(rates); jain < 0.9 {
		t.Fatalf("DCQCN Jain = %.3f (%v)", jain, rates)
	}
	// Lossless fabric: ECN (not loss) must carry the signal.
	if tr.Pipeline.Counters().CnpTx == 0 {
		t.Fatal("no CNPs generated under congestion")
	}
}

func TestStopFlowReleasesBandwidth(t *testing.T) {
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 3,
		ECN:       netem.StepMarking(65, 1024),
		Seed:      6,
	})
	tr.StartFlow(0, 0, 2, 0)
	tr.StartFlow(1, 1, 2, 0)
	tr.Run(sim.Time(3 * sim.Millisecond))
	tr.StopFlow(1)
	base := tr.Pipeline.FlowTxBytes(0)
	tr.Run(sim.Time(6 * sim.Millisecond))
	gbps := float64(tr.Pipeline.FlowTxBytes(0)-base) * 8 / sim.Duration(3*sim.Millisecond).Seconds() / 1e9
	if gbps < 85 {
		t.Fatalf("survivor rate = %.1f Gbps after peer stopped, want ~98", gbps)
	}
}

func TestScriptedLossOnForwardLink(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 7})
	script := netem.NewScript().DropOnce(0, 50)
	tr.ForwardLink(1).AddHook(script.Hook)
	tr.StartFlow(0, 0, 1, 200)
	tr.Run(sim.Time(50 * sim.Millisecond))
	if script.Pending() != 0 {
		t.Fatal("scripted drop never fired")
	}
	if tr.FCTs.Len() != 1 {
		t.Fatal("flow did not recover from scripted loss")
	}
	if tr.NIC.Stats().RtxTx == 0 {
		t.Fatal("no retransmission despite a drop")
	}
}

func TestSchedulerModesBothComplete(t *testing.T) {
	for _, mode := range []fpga.SchedulerMode{fpga.ReschedulingFIFO, fpga.CyclicScan} {
		tr := newTester(t, Config{
			Algorithm: mustAlg(t, "dctcp"),
			DataPorts: 2,
			Scheduler: mode,
			MaxFlows:  128,
			Seed:      8,
		})
		for f := packet.FlowID(0); f < 4; f++ {
			tr.StartFlow(f, 0, 1, 50)
		}
		tr.Run(sim.Time(50 * sim.Millisecond))
		if tr.FCTs.Len() != 4 {
			t.Fatalf("%v scheduler completed %d/4 flows", mode, tr.FCTs.Len())
		}
	}
}

func BenchmarkTesterSingleFlow(b *testing.B) {
	tr := newTester(b, Config{Algorithm: mustAlg(b, "dctcp"), DataPorts: 2, Seed: 1})
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Run(tr.Eng.Now().Add(sim.Duration(10 * sim.Microsecond)))
	}
	b.ReportMetric(float64(tr.Pipeline.Counters().DataTx)/float64(b.N), "pkts/op")
}

func TestReceiverOnFPGA(t *testing.T) {
	// Figure 2's dashed path: the switch truncates DATA over the reserved
	// port; the FPGA runs receiver logic. The flow must behave like the
	// switch-receiver path, with one extra device round trip of latency.
	for _, algo := range []string{"dctcp", "dcqcn"} {
		tr := newTester(t, Config{
			Algorithm:      mustAlg(t, algo),
			DataPorts:      2,
			ReceiverOnFPGA: true,
			Seed:           21,
		})
		if err := tr.StartFlow(0, 0, 1, 300); err != nil {
			t.Fatal(err)
		}
		tr.Run(sim.Time(20 * sim.Millisecond))
		if tr.FCTs.Len() != 1 {
			t.Fatalf("%s: flow did not complete via FPGA receiver", algo)
		}
		c := tr.Pipeline.Counters()
		if c.AckTx == 0 {
			t.Fatalf("%s: no ACKs relayed from the FPGA receiver", algo)
		}
		if c.InfoTx == 0 {
			t.Fatalf("%s: no INFO generated", algo)
		}
	}
}

func TestReceiverOnFPGALossRecovery(t *testing.T) {
	tr := newTester(t, Config{
		Algorithm:      mustAlg(t, "dctcp"),
		DataPorts:      2,
		ReceiverOnFPGA: true,
		Seed:           22,
	})
	script := netem.NewScript().DropOnce(0, 40)
	tr.ForwardLink(1).AddHook(script.Hook)
	if err := tr.StartFlow(0, 0, 1, 200); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(50 * sim.Millisecond))
	if tr.FCTs.Len() != 1 {
		t.Fatal("flow did not recover from loss via FPGA receiver")
	}
	if tr.NIC.Stats().RtxTx == 0 {
		t.Fatal("no retransmission")
	}
}

func TestForwardJitterReordersButCompletes(t *testing.T) {
	// Jitter several frame times beyond the gap reorders DATA arrivals;
	// the TCP receiver's out-of-order buffer must absorb it and the flow
	// must still finish without spurious retransmission storms.
	tr := newTester(t, Config{
		Algorithm:     mustAlg(t, "dctcp"),
		DataPorts:     2,
		ForwardJitter: sim.Micros(1), // ~12 frame times at 100G
		Seed:          31,
	})
	if err := tr.StartFlow(0, 0, 1, 500); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(100 * sim.Millisecond))
	if tr.FCTs.Len() != 1 {
		t.Fatal("flow did not complete under reordering")
	}
	if tr.Pipeline.Counters().OutOfOrderRx == 0 {
		t.Fatal("jitter produced no reordering (test ineffective)")
	}
}

// TestControlPacketsSurviveWireCodec round-trips every SCHE and INFO
// packet crossing the device links through the 64-byte wire format,
// proving the in-simulation fields all fit the real encoding.
func TestControlPacketsSurviveWireCodec(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 32})
	checked := 0
	codecHook := func(p *packet.Packet) netem.HookAction {
		switch p.Type {
		case packet.SCHE, packet.INFO, packet.ACK, packet.CNP:
		default:
			return netem.Pass
		}
		var buf [packet.ControlSize]byte
		if err := packet.MarshalControl(p, buf[:]); err != nil {
			t.Errorf("marshal %v: %v", p.Type, err)
			return netem.Pass
		}
		q, err := packet.Unmarshal(buf[:])
		if err != nil {
			t.Errorf("unmarshal %v: %v", p.Type, err)
			return netem.Pass
		}
		if q.Type != p.Type || q.Flow != p.Flow || q.PSN != p.PSN ||
			q.Ack != p.Ack || q.Flags != p.Flags || q.Port != p.Port ||
			q.SentAt != p.SentAt {
			t.Errorf("wire round trip changed %v: %+v -> %+v", p.Type, p, q)
		}
		checked++
		return netem.Pass
	}
	tr.ScheLink().AddHook(codecHook)
	tr.InfoLink().AddHook(codecHook)
	if err := tr.StartFlow(0, 0, 1, 100); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(10 * sim.Millisecond))
	if checked < 100 {
		t.Fatalf("codec hook saw only %d control packets", checked)
	}
	if tr.FCTs.Len() != 1 {
		t.Fatal("flow did not complete")
	}
}

func TestExtraHopsDeepenPathAndINT(t *testing.T) {
	// Baseline RTT with the 2-hop forward path, then with 2 extra hops:
	// RTT must grow by ~2 link delays, HPCC must see 4 INT entries, and
	// the flow must still run at line rate.
	rtt := func(extra int) float64 {
		tr := newTester(t, Config{
			Algorithm: mustAlg(t, "hpcc"),
			DataPorts: 2,
			EnableINT: true,
			ExtraHops: extra,
			Seed:      41,
		})
		if err := tr.StartFlow(0, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
		tr.Run(sim.Time(2 * sim.Millisecond))
		_, count, ewma := tr.NIC.RTTSamples()
		if count == 0 {
			t.Fatal("no RTT probes")
		}
		gbps := float64(tr.Pipeline.FlowTxBytes(0)) * 8 / 0.002 / 1e9
		if gbps < 60 {
			t.Fatalf("extra=%d: throughput %v Gbps", extra, gbps)
		}
		return ewma
	}
	base := rtt(0)
	deep := rtt(2)
	// Two extra hops add 2 x 2us of propagation each way is forward-only:
	// expect roughly +4us of RTT.
	if deep-base < 3 || deep-base > 8 {
		t.Fatalf("RTT grew %.1fus with 2 extra hops, want ~4", deep-base)
	}
}

func TestExtraHopsINTStack(t *testing.T) {
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 2,
		EnableINT: true,
		ExtraHops: 2,
		Seed:      42,
	})
	var hops uint8
	tr.ForwardLink(1) // bottleneck exists
	// Inspect the INT stack on INFO packets at the NIC by hooking the
	// info link.
	tr.InfoLink().AddHook(func(p *packet.Packet) netem.HookAction {
		if p.Type == packet.INFO && p.INT.NHops > hops {
			hops = p.INT.NHops
		}
		return netem.Pass
	})
	if err := tr.StartFlow(0, 0, 1, 100); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(10 * sim.Millisecond))
	// tx link + bottleneck + 2 extra = 4 stamping hops.
	if hops != 4 {
		t.Fatalf("INT stack depth = %d, want 4", hops)
	}
}

func TestEveryAlgorithmRunsEndToEnd(t *testing.T) {
	// A single finite flow must complete under every registered module,
	// with the receiver mode the deployment derives for it.
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			params := cc.DefaultParams(100*sim.Gbps, 1024)
			params.ScaleDCQCNTime(30)
			params.HPCCInitWnd = 32
			tr := newTester(t, Config{
				Algorithm: mustAlg(t, name),
				Params:    params,
				DataPorts: 2,
				EnableINT: name == "hpcc",
				Seed:      99,
			})
			if err := tr.StartFlow(0, 0, 1, 300); err != nil {
				t.Fatal(err)
			}
			tr.Run(sim.Time(30 * sim.Millisecond))
			if tr.FCTs.Len() != 1 {
				t.Fatalf("%s: flow did not complete", name)
			}
			if tr.Pipeline.Counters().ScheDrops != 0 {
				t.Fatalf("%s: false losses", name)
			}
		})
	}
}

func TestTopologyDOT(t *testing.T) {
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"), DataPorts: 2,
		EnablePFC: true, ReceiverOnFPGA: true, Seed: 1,
	})
	dot := tr.TopologyDOT()
	for _, want := range []string{
		"digraph marlin", "FPGA NIC", "SCHE 64B", "INFO 64B",
		"DATA p0", "ACK p1", "PFC pause", "reserved port",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestFabricLeafSpineEndToEnd(t *testing.T) {
	// Replacing the single switch with a 2x2 leaf-spine must leave the
	// tester's flow API untouched: cross-rack flows complete, every switch
	// reports traffic, and the ECMP path counters are populated.
	cfg := Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 4,
		Topology:  fabric.Spec{Kind: fabric.KindLeafSpine, Leaves: 2, Spines: 2},
		Seed:      7,
	}
	tr := newTester(t, cfg)
	if tr.Fab == nil || tr.Net != nil {
		t.Fatal("fabric mode should build Fab and leave the canonical Net nil")
	}
	// Hosts 0,2 live on leaf0 and 1,3 on leaf1: both flows cross the spine.
	if err := tr.StartFlow(0, 0, 1, 200); err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(1, 2, 3, 200); err != nil {
		t.Fatal(err)
	}
	tr.Run(sim.Time(30 * sim.Millisecond))
	if tr.FCTs.Len() != 2 {
		t.Fatalf("completed %d flows over leaf-spine, want 2", tr.FCTs.Len())
	}
	stats := tr.NetworkStats()
	if len(stats) != 4 {
		t.Fatalf("NetworkStats reported %d switches, want 4", len(stats))
	}
	for _, s := range stats {
		if s.Misroutes != 0 {
			t.Fatalf("switch %s misrouted %d packets", s.Name, s.Misroutes)
		}
	}
	var forwarded uint64
	for _, pc := range tr.ECMPPaths() {
		forwarded += pc.TxPackets
	}
	if forwarded == 0 {
		t.Fatal("no traffic attributed to ECMP paths")
	}
	dot := tr.TopologyDOT()
	for _, want := range []string{"leaf0", "spine1", "DATA h3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("fabric DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestFabricDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]sim.Duration, []uint64) {
		tr := newTester(t, Config{
			Algorithm: mustAlg(t, "cubic"),
			DataPorts: 4,
			Topology:  fabric.Spec{Kind: fabric.KindLeafSpine, Leaves: 2, Spines: 2},
			Seed:      11,
		})
		for f := 0; f < 4; f++ {
			if err := tr.StartFlow(packet.FlowID(f), f%2, 2+f%2, 80); err != nil {
				t.Fatal(err)
			}
		}
		tr.Run(sim.Time(30 * sim.Millisecond))
		var fcts []sim.Duration
		for _, rec := range tr.FCTs.Records() {
			fcts = append(fcts, rec.FCT)
		}
		var paths []uint64
		for _, pc := range tr.ECMPPaths() {
			paths = append(paths, pc.TxPackets)
		}
		return fcts, paths
	}
	fct1, path1 := run()
	fct2, path2 := run()
	if !reflect.DeepEqual(fct1, fct2) {
		t.Fatalf("FCTs differ across identical runs:\n%v\n%v", fct1, fct2)
	}
	if !reflect.DeepEqual(path1, path2) {
		t.Fatalf("ECMP path counters differ across identical runs:\n%v\n%v", path1, path2)
	}
	if len(fct1) != 4 {
		t.Fatalf("completed %d flows, want 4", len(fct1))
	}
}

func TestFabricRejectsExtraHops(t *testing.T) {
	eng := sim.NewEngine()
	_, err := New(eng, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 2,
		Topology:  fabric.Spec{Kind: fabric.KindDumbbell},
		ExtraHops: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "ExtraHops") {
		t.Fatalf("Topology+ExtraHops accepted: err=%v", err)
	}
}

func TestResolveLinkSingleSwitch(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 4})
	if l, err := tr.ResolveLink("tx1"); err != nil || l != tr.TxLink(1) {
		t.Fatalf("tx1 = %p, %v; want %p", l, err, tr.TxLink(1))
	}
	if l, err := tr.ResolveLink("fwd0"); err != nil || l != tr.ForwardLink(0) {
		t.Fatalf("fwd0 = %p, %v; want %p", l, err, tr.ForwardLink(0))
	}
	for _, bad := range []string{"tx9", "fwd9", "tx", "leaf0->spine1", "bogus"} {
		if _, err := tr.ResolveLink(bad); err == nil {
			t.Errorf("ResolveLink(%q) accepted", bad)
		}
	}
}

func TestResolveLinkFabric(t *testing.T) {
	tr := newTester(t, Config{
		Algorithm: mustAlg(t, "dctcp"),
		DataPorts: 4,
		Topology:  fabric.Spec{Kind: fabric.KindLeafSpine, Leaves: 2, Spines: 2},
		Seed:      4,
	})
	if l, err := tr.ResolveLink("leaf0->spine1"); err != nil || l == nil {
		t.Fatalf("leaf0->spine1: %p, %v", l, err)
	}
	if l, err := tr.ResolveLink("host0->leaf0"); err != nil || l != tr.Fab.HostUplink(0) {
		t.Fatalf("host0->leaf0 = %p, %v; want %p", l, err, tr.Fab.HostUplink(0))
	}
	// txN aliases keep working over a fabric; fwdN is single-switch only.
	if l, err := tr.ResolveLink("tx0"); err != nil || l != tr.TxLink(0) {
		t.Fatalf("tx0 = %p, %v", l, err)
	}
	if _, err := tr.ResolveLink("fwd0"); err == nil {
		t.Fatal("fwd0 accepted over a fabric")
	}
}

func TestInstallFaultsLinkDownRecovery(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 5})
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParseSpec("linkdown fwd1 at 2ms for 300us")
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tr.InstallFaults(plan)
	if err != nil {
		t.Fatal(err)
	}
	if mon == nil || tr.FaultMonitor() != mon || tr.FaultPlan().String() != plan.String() {
		t.Fatal("installed plan/monitor not surfaced")
	}
	if _, err := tr.InstallFaults(plan); err == nil {
		t.Fatal("second InstallFaults accepted")
	}
	tr.Run(sim.Time(12 * sim.Millisecond))

	link, _ := tr.ResolveLink("fwd1")
	if link.Stats().DownDrops == 0 {
		t.Fatal("outage produced no carrier drops")
	}
	rs := tr.FaultRecoveries()
	if len(rs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(rs))
	}
	r := rs[0]
	if r.PreGbps < 50 {
		t.Fatalf("pre-fault goodput = %.1f Gbps, want near line rate", r.PreGbps)
	}
	if !r.Recovered {
		t.Fatalf("flow did not recover: %s", r)
	}
	if r.TimeToRecover <= 0 || r.TimeToRecover > 10*sim.Millisecond {
		t.Fatalf("ttr = %v, implausible", r.TimeToRecover)
	}
	if r.RtxDuring == 0 && link.Stats().DownDrops > 0 {
		// Retransmissions may land after the window; only sanity-check the
		// NIC saw the loss at all.
		if tr.NIC.Stats().RtxTx == 0 {
			t.Fatal("carrier drops but no retransmissions ever")
		}
	}
}

func TestInstallFaultsRejectsUnknownLink(t *testing.T) {
	tr := newTester(t, Config{Algorithm: mustAlg(t, "dctcp"), DataPorts: 2, Seed: 6})
	plan, err := faults.ParseSpec("linkdown leaf0->spine1 at 1ms for 1ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.InstallFaults(plan); err == nil {
		t.Fatal("fabric link name accepted on single-switch tester")
	}
	if tr.FaultMonitor() != nil {
		t.Fatal("monitor armed despite failed install")
	}
}
