// Sharded assembly: one simulation, many cores. A sharded tester splits
// the deployment along the fabric's partition plan (fabric.PartitionSpec):
// every partition gets its own engine carrying its share of the switch
// pipeline, the FPGA NIC, the device links, and the fabric switches
// assigned to it, and a shard.Runner drives the engines in conservative
// rounds bounded by the fabric's minimum inter-partition propagation delay.
// Only inter-switch trunks cross the cut; each such link drains into a
// runner portal, and the reverse ACK paths route per flow through portals
// too, so every cross-partition hand-off goes through the runner's
// deterministic barrier merge.
//
// Determinism: a sharded run's outputs are a pure function of the
// configuration, independent of Config.Shards' worker count and of
// GOMAXPROCS — Shards=1 and Shards=N are byte-identical. The partitioned
// build is a different (equally valid) event interleaving than the
// unsharded Shards=0 build, so those two are not byte-comparable.
package core

import (
	"fmt"

	"marlin/internal/fabric"
	"marlin/internal/fpga"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/shard"
	"marlin/internal/sim"
	"marlin/internal/tofino"
)

// subTester is one partition's slice of the tester hardware: a pipeline
// and NIC sized to the data ports whose hosts live in the partition, plus
// their private device interconnect, all on the partition's engine.
type subTester struct {
	part  int
	eng   *sim.Engine
	ports []int // global port indices owned by this partition, ascending
	pl    *tofino.Pipeline
	nic   *fpga.NIC
	sche  *netem.Link
	info  *netem.Link
}

// portalSlot defers portal construction: the fabric is wired before the
// runner exists (the lookahead is measured off the built fabric), so each
// cross-partition trunk drains into a slot that is bound to its runner
// portal immediately after shard.New.
type portalSlot struct {
	src, dst *sim.Engine
	node     netem.Node
	r        netem.Remote
}

func (s *portalSlot) Carry(p *packet.Packet, at sim.Time) { s.r.Carry(p, at) }

// ackRouter fans a receiver sub's ACK/NACK/CNP traffic to the pipeline
// owning each flow's TX port. Receiver responses carry no port, so the
// route is by flow ID; unknown flows (external flood traffic) deliver to
// the home sub, matching the unsharded pipeline where they die at the
// inactive flow. Every delivery — local or remote — goes through a runner
// portal so ordering stays a pure function of (time, partition, sequence).
type ackRouter struct {
	t    *Tester
	home int
	vias []netem.Remote
}

func (a *ackRouter) Carry(p *packet.Packet, at sim.Time) {
	g, ok := a.t.flowGroup[p.Flow]
	if !ok {
		g = a.home
	}
	a.vias[g].Carry(p, at)
}

// newSharded assembles a partitioned tester. cfg has been defaulted and
// plan shrunk by prepare; cfg.Shards > 0.
func newSharded(ctl *sim.Engine, cfg Config, plan tofino.Plan) (*Tester, error) {
	if cfg.Topology.IsZero() {
		return nil, fmt.Errorf("core: Shards requires a multi-switch Topology (the canonical single switch has no cut to parallelize over)")
	}
	if cfg.EnablePFC {
		return nil, fmt.Errorf("core: Shards and EnablePFC are incompatible (pause frames would act across partitions mid-round)")
	}
	if cfg.ReceiverOnFPGA {
		return nil, fmt.Errorf("core: Shards and ReceiverOnFPGA are incompatible (the reserved-port path is not partitioned)")
	}
	pplan, err := fabric.PartitionSpec(cfg.Topology, cfg.DataPorts)
	if err != nil {
		return nil, err
	}

	t := &Tester{
		Eng:       ctl,
		FCTs:      &measure.FCTRecorder{},
		cfg:       cfg,
		plan:      plan,
		rng:       sim.NewRand(cfg.Seed),
		flowDst:   make(map[packet.FlowID]int),
		sizes:     make(map[packet.FlowID]uint32),
		starts:    make(map[packet.FlowID]sim.Time),
		partPlan:  pplan,
		flowGroup: make(map[packet.FlowID]int),
		portSub:   make([]int, cfg.DataPorts),
		portLocal: make([]int, cfg.DataPorts),
		subs:      make([]*subTester, pplan.Parts),
	}
	t.partEngs = make([]*sim.Engine, pplan.Parts)
	for g := range t.partEngs {
		t.partEngs[g] = sim.NewEngine()
	}

	// Group the tester's data ports by partition; a partition's sub gets
	// one local port per global port, in ascending global order.
	groups := make([][]int, pplan.Parts)
	for p := 0; p < cfg.DataPorts; p++ {
		g := pplan.HostPart[p]
		groups[g] = append(groups[g], p)
	}
	txPPS, rxPPS := timerPPS(cfg, plan)
	deviceDelay := sim.Duration(200 * sim.Nanosecond)
	for g, ports := range groups {
		if len(ports) == 0 {
			continue // a partition of pure transit switches needs no sub
		}
		eng := t.partEngs[g]
		subPlan := plan
		subPlan.DataPorts = len(ports)
		subPlan.Throughput = sim.Rate(int64(cfg.PortRate) * int64(len(ports)))
		pl, err := tofino.NewPipeline(eng, tofino.Config{
			Plan:        subPlan,
			QueueDepth:  cfg.RegQueueDepth,
			SharedQueue: cfg.SharedQueue,
			Receiver:    cfg.Receiver,
			CNPInterval: cfg.Params.CNPInterval,
		})
		if err != nil {
			return nil, err
		}
		nic, err := fpga.NewNIC(eng, fpga.Config{
			Ports:          len(ports),
			MaxFlows:       cfg.MaxFlows,
			Algorithm:      cfg.Algorithm,
			Params:         cfg.Params,
			TXTimerPPS:     txPPS,
			RXTimerPPS:     rxPPS,
			DisableRXTimer: cfg.DisableRXTimer,
			SingleRXFIFO:   cfg.SingleRXFIFO,
			Scheduler:      cfg.Scheduler,
		})
		if err != nil {
			return nil, err
		}
		sche := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, pl.ScheIn())
		nic.ConnectSche(sche)
		info := netem.NewLink(eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: deviceDelay, QueueBytes: 1 << 20,
		}, nic.InfoIn())
		pl.ConnectInfo(info)
		sub := &subTester{part: g, eng: eng, ports: ports, pl: pl, nic: nic, sche: sche, info: info}
		for li, p := range ports {
			t.portSub[p] = g
			t.portLocal[p] = li
		}
		t.subs[g] = sub
		t.subList = append(t.subList, sub)
	}
	t.scheLink, t.infoLink = t.subList[0].sche, t.subList[0].info

	// The fabric spans the partition engines: each switch lives on its
	// partition's engine, host endpoints on their leaf's, and trunks that
	// cross the cut drain into portal slots bound right after the runner
	// exists (the lookahead is measured off the built fabric).
	sinks := make([]netem.Node, cfg.DataPorts)
	for h := range sinks {
		sinks[h] = t.subs[pplan.HostPart[h]].pl.DataIn(t.portLocal[h])
	}
	var slots []*portalSlot
	fab, err := fabric.Build(ctl, fabric.Config{
		Spec:       cfg.Topology,
		Hosts:      cfg.DataPorts,
		PortRate:   cfg.PortRate,
		LinkDelay:  cfg.LinkDelay,
		QueueBytes: cfg.NetQueueBytes,
		ECN:        cfg.ECN,
		AQM:        cfg.AQM,
		EnableINT:  cfg.EnableINT,
		Jitter:     cfg.ForwardJitter,
		Seed:       cfg.Seed,
		Dst: func(p *packet.Packet) int {
			if dst, ok := t.flowDst[p.Flow]; ok {
				return dst
			}
			return -1
		},
		Sinks:   sinks,
		Engines: func(swIdx int) *sim.Engine { return t.partEngs[pplan.SwitchPart[swIdx]] },
		Remote: func(srcEng, dstEng *sim.Engine, dst netem.Node) netem.Remote {
			s := &portalSlot{src: srcEng, dst: dstEng, node: dst}
			slots = append(slots, s)
			return s
		},
	})
	if err != nil {
		return nil, err
	}
	t.Fab = fab

	look, err := fab.MinInterPartitionDelay(pplan)
	if err != nil {
		return nil, err
	}
	runner, err := shard.New(ctl, t.partEngs, look, cfg.Shards)
	if err != nil {
		return nil, err
	}
	t.runner = runner
	for _, s := range slots {
		s.r = runner.Portal(s.src, s.dst, s.node)
	}

	// Reverse ACK paths: the receiver sub serializes its responses over a
	// rev link provisioned to the fabric diameter (matching the unsharded
	// wiring), then its router delivers each one to the flow's TX-side
	// pipeline through the runner. The rev delay is at least the lookahead
	// (Diameter >= 1 hop), so every arrival lands beyond the round horizon.
	revDelay := sim.Duration(cfg.Topology.Diameter()) * cfg.LinkDelay
	routers := make([]*ackRouter, pplan.Parts)
	for _, sub := range t.subList {
		r := &ackRouter{t: t, home: sub.part, vias: make([]netem.Remote, pplan.Parts)}
		for _, dsub := range t.subList {
			r.vias[dsub.part] = runner.Portal(sub.eng, dsub.eng, dsub.pl.AckIn())
		}
		routers[sub.part] = r
	}
	for p := 0; p < cfg.DataPorts; p++ {
		sub := t.subs[t.portSub[p]]
		sub.pl.ConnectDataPort(t.portLocal[p], fab.HostUplink(p))
		t.txLinks = append(t.txLinks, fab.HostUplink(p))
		rev := netem.NewLink(sub.eng, netem.LinkConfig{
			Rate: cfg.PortRate, Delay: revDelay, QueueBytes: 1 << 20,
		}, nil)
		rev.SetRemote(routers[sub.part])
		t.revLinks = append(t.revLinks, rev)
		sub.pl.ConnectAckPort(t.portLocal[p], rev)
	}

	// Flow completions fire on partition goroutines mid-round; defer them
	// to the control engine so FCT recording and user callbacks replay
	// single-threaded in (time, partition, sequence) order.
	for _, sub := range t.subList {
		g := sub.part
		sub.nic.OnComplete(func(flow packet.FlowID, fct sim.Duration) {
			t.runner.DeferPart(g, func() { t.flowDone(flow, fct) })
		})
	}
	return t, nil
}

// startFlowSharded is the partitioned StartFlow/StartFlowCC body: bind on
// the TX-side pipeline, reset receiver state where the DATA will land, and
// record the flow's owning partition for ACK routing and register reads.
func (t *Tester) startFlowSharded(flow packet.FlowID, tx, rx int, sizePkts uint32, alg ccOverride) error {
	if rx < 0 || rx >= t.cfg.DataPorts {
		return fmt.Errorf("core: rx port %d out of range [0,%d)", rx, t.cfg.DataPorts)
	}
	if tx < 0 || tx >= t.cfg.DataPorts {
		return fmt.Errorf("core: tx port %d out of range [0,%d)", tx, t.cfg.DataPorts)
	}
	sub := t.subs[t.portSub[tx]]
	if err := sub.pl.BindFlow(flow, t.portLocal[tx]); err != nil {
		return err
	}
	sub.pl.ResetFlow(flow)
	if rsub := t.subs[t.portSub[rx]]; rsub != sub {
		rsub.pl.ResetFlow(flow)
	}
	t.flowDst[flow] = rx
	t.flowGroup[flow] = sub.part
	t.sizes[flow] = sizePkts
	t.starts[flow] = t.Eng.Now()
	if alg.alg == nil {
		return sub.nic.StartFlow(flow, t.portLocal[tx], sizePkts)
	}
	return sub.nic.StartFlowWith(flow, t.portLocal[tx], sizePkts, alg.alg, alg.ect)
}

// Sharded reports whether the tester runs as a partitioned parallel build.
func (t *Tester) Sharded() bool { return t.runner != nil }

// ShardParts reports the partition count (0 for an unsharded build).
func (t *Tester) ShardParts() int { return t.partPlan.Parts }

// ShardStats returns the runner's round/carry telemetry (zero unsharded).
func (t *Tester) ShardStats() shard.Stats {
	if t.runner == nil {
		return shard.Stats{}
	}
	return t.runner.Stats()
}

// PipelineCounters reads the switch registers: the single pipeline's
// counters, or the field-wise sum over every partition's pipeline.
func (t *Tester) PipelineCounters() tofino.Counters {
	if t.runner == nil {
		return t.Pipeline.Counters()
	}
	var c tofino.Counters
	for _, sub := range t.subList {
		c = c.Plus(sub.pl.Counters())
	}
	return c
}

// PipelinePortCounters reads global data port i's registers, wherever its
// pipeline lives.
func (t *Tester) PipelinePortCounters(i int) tofino.PortCounters {
	if t.runner == nil {
		return t.Pipeline.PortCounters(i)
	}
	return t.subs[t.portSub[i]].pl.PortCounters(t.portLocal[i])
}

// NICStats reads the FPGA registers, summed across partitions when sharded.
func (t *Tester) NICStats() fpga.Stats {
	if t.runner == nil {
		return t.NIC.Stats()
	}
	var s fpga.Stats
	for _, sub := range t.subList {
		s = s.Plus(sub.nic.Stats())
	}
	return s
}

// FlowTxBytes reads a flow's cumulative generated DATA bytes from the
// pipeline owning its TX port.
func (t *Tester) FlowTxBytes(flow packet.FlowID) uint64 {
	if t.runner == nil {
		return t.Pipeline.FlowTxBytes(flow)
	}
	if g, ok := t.flowGroup[flow]; ok {
		return t.subs[g].pl.FlowTxBytes(flow)
	}
	return 0
}

// FlowTrace returns a flow's fine-grained parameter trace from the NIC
// owning it (nil when logging is off or the flow is unknown).
func (t *Tester) FlowTrace(flow packet.FlowID) []fpga.TracePoint {
	var logger *fpga.Logger
	if t.runner == nil {
		logger = t.NIC.Logger()
	} else if g, ok := t.flowGroup[flow]; ok {
		logger = t.subs[g].nic.Logger()
	}
	if logger == nil {
		return nil
	}
	return logger.FlowTrace(flow)
}

// RTTSamples aggregates the FPGA's RTT probes: samples concatenate in
// partition order, counts sum, and the EWMA is the count-weighted mean of
// the per-partition EWMAs.
func (t *Tester) RTTSamples() (samplesUs []float64, count uint64, ewmaUs float64) {
	if t.runner == nil {
		return t.NIC.RTTSamples()
	}
	var weighted float64
	for _, sub := range t.subList {
		s, c, e := sub.nic.RTTSamples()
		samplesUs = append(samplesUs, s...)
		count += c
		weighted += e * float64(c)
	}
	if count > 0 {
		ewmaUs = weighted / float64(count)
	}
	return samplesUs, count, ewmaUs
}

// EventsExecuted sums fired events across every engine the tester drives.
func (t *Tester) EventsExecuted() uint64 {
	n := t.Eng.Executed()
	for _, e := range t.partEngs {
		n += e.Executed()
	}
	return n
}
