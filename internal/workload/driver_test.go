package workload

import (
	"fmt"
	"reflect"
	"testing"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// event is one recorded driver action with its timestamp.
type event struct {
	at     sim.Time
	kind   string // "start" or "inject"
	flow   packet.FlowID
	tx, rx int
	size   uint32
	psn    uint32
	ect    packet.ECT
}

// fakeTarget records every driver action.
type fakeTarget struct {
	eng    *sim.Engine
	events []event
	refuse bool
	bound  map[packet.FlowID]int
}

func (f *fakeTarget) StartFlow(flow packet.FlowID, tx, rx int, sizePkts uint32) error {
	if f.refuse {
		return fmt.Errorf("refused")
	}
	f.events = append(f.events, event{at: f.eng.Now(), kind: "start", flow: flow, tx: tx, rx: rx, size: sizePkts})
	return nil
}

func (f *fakeTarget) BindExternalFlow(flow packet.FlowID, rx int) error {
	if f.bound == nil {
		f.bound = make(map[packet.FlowID]int)
	}
	f.bound[flow] = rx
	return nil
}

func (f *fakeTarget) InjectData(flow packet.FlowID, tx int, psn uint32, frameBytes int, ect packet.ECT) {
	f.events = append(f.events, event{at: f.eng.Now(), kind: "inject", flow: flow, tx: tx, psn: psn, ect: ect})
}

func applyPlan(t *testing.T, eng *sim.Engine, tgt *fakeTarget, src string, seed uint64) *Driver {
	t.Helper()
	plan, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(eng, tgt, plan, DriverConfig{Ports: 4, MTU: 1024, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriverIncastStorms(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng}
	d := applyPlan(t, eng, tgt, "incast:period=1ms,fanin=5,victim=2,size=100", 1)
	eng.Run(sim.Time(sim.Duration(3500) * sim.Microsecond))
	// Storms at 1ms, 2ms, 3ms: 5 synchronized flows each, senders cycling
	// over every port but the victim (3,0,1,3,0), flow IDs dense from the
	// base.
	if d.Started() != 15 {
		t.Fatalf("started = %d, want 15", d.Started())
	}
	want := event{at: sim.Time(sim.Millisecond), kind: "start", flow: DefaultFlowBase, tx: 3, rx: 2, size: 100}
	if tgt.events[0] != want {
		t.Fatalf("first storm entry = %+v, want %+v", tgt.events[0], want)
	}
	wantTx := []int{3, 0, 1, 3, 0}
	for i, ev := range tgt.events[:5] {
		if ev.at != sim.Time(sim.Millisecond) || ev.rx != 2 || ev.tx != wantTx[i] {
			t.Fatalf("storm entry %d = %+v", i, ev)
		}
	}
	if d.NextFlow() != DefaultFlowBase+15 {
		t.Fatalf("next flow = %d", d.NextFlow())
	}
}

func TestDriverFloodPacing(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng}
	d := applyPlan(t, eng, tgt, "flood:peak=20G,victim=0,period=1ms,duty=0.5", 1)
	eng.Run(sim.Time(2 * sim.Millisecond))
	if rx, ok := tgt.bound[DefaultFlowBase]; !ok || rx != 0 {
		t.Fatalf("flood flow not bound to victim: %v", tgt.bound)
	}
	// 20 Gbps of 1044-byte wire frames is one frame per 417.6ns; two
	// half-duty periods give one full on-millisecond, ~2395 frames.
	if d.Injected() < 2300 || d.Injected() > 2500 {
		t.Fatalf("injected = %d, want ~2395", d.Injected())
	}
	// Every injection falls inside an on-phase; PSNs are sequential.
	for i, ev := range tgt.events {
		if phase := sim.Duration(ev.at) % sim.Millisecond; phase >= 500*sim.Microsecond {
			t.Fatalf("injection %d at %v lands in the silent phase", i, sim.Duration(ev.at))
		}
		if ev.psn != uint32(i) {
			t.Fatalf("injection %d carries psn %d", i, ev.psn)
		}
		if ev.tx != 1 {
			t.Fatalf("injection %d from port %d, want attacker 1", i, ev.tx)
		}
	}
}

func TestDriverFloodECTVariants(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want packet.ECT
	}{
		{"flood:peak=20G,victim=0", packet.ECT0}, // default: marking-eligible
		{"flood:peak=20G,victim=0,ect=not", packet.NotECT},
		{"flood:peak=20G,victim=0,ect=ect1", packet.ECT1},
	} {
		eng := sim.NewEngine()
		tgt := &fakeTarget{eng: eng}
		applyPlan(t, eng, tgt, tc.spec, 1)
		eng.Run(sim.Time(10 * sim.Microsecond))
		if len(tgt.events) == 0 {
			t.Fatalf("%q injected nothing", tc.spec)
		}
		for _, ev := range tgt.events {
			if ev.ect != tc.want {
				t.Fatalf("%q injected %v frames, want %v", tc.spec, ev.ect, tc.want)
			}
		}
	}
}

func TestDriverSquareGatesArrivals(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng}
	d := applyPlan(t, eng, tgt, "square:period=1ms,duty=0.5,peak=40G,base=0bps,dist=uniform,victim=3", 7)
	eng.Run(sim.Time(20 * sim.Millisecond))
	if d.Started() == 0 {
		t.Fatal("square pattern started nothing")
	}
	// With base=0 every accepted arrival must fall in the on-phase
	// [0, 0.5ms) of its period, and every flow fans into the victim.
	for i, ev := range tgt.events {
		if phase := sim.Duration(ev.at) % sim.Millisecond; phase >= 500*sim.Microsecond {
			t.Fatalf("arrival %d at %v lands in the off-phase", i, sim.Duration(ev.at))
		}
		if ev.rx != 3 {
			t.Fatalf("arrival %d targets port %d, want victim 3", i, ev.rx)
		}
		if ev.size < 1 || ev.size > 100 {
			t.Fatalf("arrival %d size %d outside uniform support", i, ev.size)
		}
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() []event {
		eng := sim.NewEngine()
		tgt := &fakeTarget{eng: eng}
		applyPlan(t, eng, tgt,
			"mmpp:rates=1G|40G,dwell=1ms|250us,seed=3,dist=uniform; incast:period=2ms,fanin=3,victim=1,size=50; flood:peak=5G,victim=1", 42)
		eng.Run(sim.Time(8 * sim.Millisecond))
		return tgt.events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("driver not deterministic: %d vs %d events", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty run")
	}
}

func TestDriverRefusedStartsAreCounted(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, refuse: true}
	d := applyPlan(t, eng, tgt, "incast:period=1ms,fanin=4,victim=0,size=10", 1)
	eng.Run(sim.Time(sim.Duration(2500) * sim.Microsecond))
	if d.Started() != 0 || d.Skipped() != 8 {
		t.Fatalf("started=%d skipped=%d, want 0, 8", d.Started(), d.Skipped())
	}
}

func TestApplyRejects(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng}
	good, err := ParseSpec("flood:peak=1G,victim=0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(eng, tgt, good, DriverConfig{Ports: 0, MTU: 1024}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := Apply(eng, tgt, good, DriverConfig{Ports: 4, MTU: 0}); err == nil {
		t.Error("zero MTU accepted")
	}
	if _, err := Apply(eng, tgt, good, DriverConfig{Ports: 1, MTU: 1024}); err == nil {
		t.Error("single-port flood accepted")
	}
	victimOut, err := ParseSpec("incast:period=1ms,fanin=2,victim=9,size=10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(eng, tgt, victimOut, DriverConfig{Ports: 4, MTU: 1024}); err == nil {
		t.Error("out-of-range incast victim accepted")
	}
	loadVictimOut, err := ParseSpec("square:period=1ms,duty=0.5,peak=1G,victim=9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(eng, tgt, loadVictimOut, DriverConfig{Ports: 4, MTU: 1024}); err == nil {
		t.Error("out-of-range load victim accepted")
	}
}
