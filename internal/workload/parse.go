package workload

import (
	"fmt"
	"strings"

	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/spec"
)

// ParseSpec compiles a textual pattern plan: entries separated by ';',
// each of the form NAME:key=value,... — the same shape and validation
// discipline as faults.ParseSpec:
//
//	square:period=10ms,duty=0.2,peak=40G,base=1G
//	saw:period=10ms,peak=40G,base=1G
//	mmpp:rates=1G|40G,dwell=1ms|250us,seed=7
//	lognormal:rate=5G,sigma=1.5
//	incast:period=5ms,fanin=8,victim=4,size=150
//	flood:peak=20G,victim=0,period=4ms,duty=0.25
//
// Rates take a K/M/G/T suffix ("40G", "500M") and durations Go syntax
// ("10ms", "250us"). The load-envelope patterns (square, saw, mmpp,
// lognormal) additionally accept dist=websearch|datamining|uniform and
// victim=N (fan every pattern flow into port N). An omitted mmpp seed
// defaults to 1. The compiled plan is validated.
func ParseSpec(src string) (Plan, error) {
	var plan Plan
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parsePattern(part)
		if err != nil {
			return Plan{}, fmt.Errorf("workload: %q: %w", part, err)
		}
		plan.Patterns = append(plan.Patterns, p)
	}
	if plan.IsZero() {
		return Plan{}, fmt.Errorf("workload: empty spec")
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

func parsePattern(src string) (Pattern, error) {
	name, body, ok := strings.Cut(src, ":")
	if !ok || body == "" {
		return nil, fmt.Errorf("expected NAME:key=value,...")
	}
	pairs, err := spec.Pairs(body)
	if err != nil {
		return nil, err
	}
	switch name {
	case "square":
		p := &Square{Duty: 1, Opts: loadOpts{Victim: -1}}
		for _, kv := range pairs {
			switch kv.Key {
			case "period":
				p.Period, err = spec.Duration(kv.Val)
			case "duty":
				p.Duty, err = spec.Float("duty", kv.Val)
			case "peak":
				p.Peak, err = spec.Rate("peak", kv.Val)
			case "base":
				p.Base, err = spec.Rate("base", kv.Val)
			default:
				err = loadOpt(&p.Opts, kv)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	case "saw":
		p := &Saw{Opts: loadOpts{Victim: -1}}
		for _, kv := range pairs {
			switch kv.Key {
			case "period":
				p.Period, err = spec.Duration(kv.Val)
			case "peak":
				p.Peak, err = spec.Rate("peak", kv.Val)
			case "base":
				p.Base, err = spec.Rate("base", kv.Val)
			default:
				err = loadOpt(&p.Opts, kv)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	case "mmpp":
		p := &MMPP{Seed: 1, Opts: loadOpts{Victim: -1}}
		for _, kv := range pairs {
			switch kv.Key {
			case "rates":
				for _, rs := range strings.Split(kv.Val, "|") {
					var r sim.Rate
					if r, err = spec.Rate("rates", rs); err != nil {
						break
					}
					p.Rates = append(p.Rates, r)
				}
			case "dwell":
				for _, ds := range strings.Split(kv.Val, "|") {
					var d sim.Duration
					if d, err = spec.Duration(ds); err != nil {
						break
					}
					p.Dwells = append(p.Dwells, d)
				}
			case "seed":
				p.Seed, err = spec.Uint("seed", kv.Val)
			default:
				err = loadOpt(&p.Opts, kv)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	case "lognormal":
		p := &Lognormal{Opts: loadOpts{Victim: -1}}
		for _, kv := range pairs {
			switch kv.Key {
			case "rate":
				p.Rate, err = spec.Rate("rate", kv.Val)
			case "sigma":
				p.Sigma, err = spec.Float("sigma", kv.Val)
			default:
				err = loadOpt(&p.Opts, kv)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	case "incast":
		p := &Incast{}
		for _, kv := range pairs {
			switch kv.Key {
			case "period":
				p.Period, err = spec.Duration(kv.Val)
			case "fanin":
				p.Fanin, err = spec.Int("fanin", kv.Val)
			case "victim":
				p.Victim, err = spec.Int("victim", kv.Val)
			case "size":
				var n uint64
				if n, err = spec.Uint("size", kv.Val); err == nil {
					p.SizePkts = uint32(n)
				}
			default:
				err = fmt.Errorf("unexpected %q for incast", kv.Key)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	case "flood":
		p := &Flood{ECT: packet.ECT0}
		for _, kv := range pairs {
			switch kv.Key {
			case "peak":
				p.Peak, err = spec.Rate("peak", kv.Val)
			case "victim":
				p.Victim, err = spec.Int("victim", kv.Val)
			case "period":
				p.Period, err = spec.Duration(kv.Val)
			case "duty":
				p.Duty, err = spec.Float("duty", kv.Val)
			case "ect":
				p.ECT, err = parseECT(kv.Val)
			default:
				err = fmt.Errorf("unexpected %q for flood", kv.Key)
			}
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

// parseECT reads an ECN codepoint name: "not" (alias "notect", "none"),
// "ect0", or "ect1".
func parseECT(val string) (packet.ECT, error) {
	switch val {
	case "not", "notect", "none":
		return packet.NotECT, nil
	case "ect0":
		return packet.ECT0, nil
	case "ect1":
		return packet.ECT1, nil
	default:
		return 0, fmt.Errorf("unknown ect codepoint %q (want not, ect0, or ect1)", val)
	}
}

// loadOpt handles the knobs shared by the load-envelope patterns.
func loadOpt(o *loadOpts, kv spec.Pair) error {
	switch kv.Key {
	case "dist":
		o.Dist = kv.Val
	case "victim":
		v, err := spec.Int("victim", kv.Val)
		if err != nil {
			return err
		}
		o.Victim = v
	default:
		return fmt.Errorf("unexpected %q", kv.Key)
	}
	return nil
}
