package workload

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// LoadOption tunes a load-envelope pattern built with NewSquare, NewSaw,
// NewMMPP, or NewLognormal. Only the options below exist; the type's
// parameter is unexported on purpose.
type LoadOption func(*loadOpts)

// WithDist selects the flow-size distribution feeding the pattern's
// arrivals: "websearch" (default), "datamining", or "uniform".
func WithDist(name string) LoadOption { return func(o *loadOpts) { o.Dist = name } }

// WithVictim fans every flow the pattern starts into port victim instead
// of spreading receivers uniformly.
func WithVictim(victim int) LoadOption { return func(o *loadOpts) { o.Victim = victim } }

func newOpts(opts []LoadOption) loadOpts {
	o := loadOpts{Victim: -1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// NewSquare builds a square-wave envelope: peak for the first duty
// fraction of every period, base for the rest.
func NewSquare(period sim.Duration, duty float64, peak, base sim.Rate, opts ...LoadOption) *Square {
	return &Square{Period: period, Duty: duty, Peak: peak, Base: base, Opts: newOpts(opts)}
}

// NewSaw builds a sawtooth envelope ramping from base to peak over each
// period.
func NewSaw(period sim.Duration, peak, base sim.Rate, opts ...LoadOption) *Saw {
	return &Saw{Period: period, Peak: peak, Base: base, Opts: newOpts(opts)}
}

// NewMMPP builds a Markov-modulated envelope over the given per-state
// rates and mean dwell times; the state trajectory is a pure function of
// seed.
func NewMMPP(rates []sim.Rate, dwells []sim.Duration, seed uint64, opts ...LoadOption) *MMPP {
	return &MMPP{Rates: rates, Dwells: dwells, Seed: seed, Opts: newOpts(opts)}
}

// NewLognormal builds a renewal arrival process offering a constant mean
// load of rate with lognormal inter-arrival gaps (sigma controls
// clumping).
func NewLognormal(rate sim.Rate, sigma float64, opts ...LoadOption) *Lognormal {
	return &Lognormal{Rate: rate, Sigma: sigma, Opts: newOpts(opts)}
}

// NewIncast builds a synchronized N-to-1 storm: every period, fanin
// senders each start one sizePkts-packet flow at victim.
func NewIncast(period sim.Duration, fanin, victim int, sizePkts uint32) *Incast {
	return &Incast{Period: period, Fanin: fanin, Victim: victim, SizePkts: sizePkts}
}

// NewFlood builds a continuous victim-targeted flood of raw DATA at peak.
func NewFlood(peak sim.Rate, victim int) *Flood {
	return &Flood{Peak: peak, Victim: victim, ECT: packet.ECT0}
}

// NewPulsedFlood builds a flood that pulses: peak for duty of each period,
// silent otherwise.
func NewPulsedFlood(peak sim.Rate, victim int, period sim.Duration, duty float64) *Flood {
	return &Flood{Peak: peak, Victim: victim, Period: period, Duty: duty, ECT: packet.ECT0}
}
