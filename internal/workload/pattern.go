// Traffic patterns: deterministic sim-time rate envelopes and storm
// schedules in the style of P4TG's periodic pattern generators. A Pattern
// describes *when* offered load arrives — square-wave and sawtooth ramps,
// Markov-modulated and lognormal arrival processes, synchronized incast
// storms, and victim-targeted DDoS floods — while the existing SizeDist
// machinery keeps describing *how much* each flow carries. The Driver
// (driver.go) compiles a plan of patterns onto a tester.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/spec"
)

// Pattern is one deterministic traffic pattern: a rate envelope over
// simulated time, plus enough self-description for the driver to schedule
// it. Implementations are pure values; all randomness they need at run
// time comes from seeds carried in the pattern itself or from the
// driver's seeded streams.
type Pattern interface {
	// Name returns the pattern's spec keyword ("square", "flood", ...).
	Name() string
	// RateAt returns the offered-load envelope at absolute sim time t.
	RateAt(t sim.Time) sim.Rate
	// PeakRate bounds RateAt from above; the driver's thinning sampler
	// proposes arrivals at this rate.
	PeakRate() sim.Rate
	// Spec renders the pattern in ParseSpec syntax (round-trippable).
	Spec() string
	// validate rejects malformed parameters before anything is scheduled.
	validate() error
}

// Common optional knobs shared by the load-envelope patterns (square, saw,
// mmpp, lognormal): the flow-size distribution feeding arrivals and an
// optional fan-in victim port.
type loadOpts struct {
	// Dist names the flow-size distribution ("websearch", "datamining",
	// "uniform"); empty means websearch.
	Dist string
	// Victim, when >= 0, receives every flow the pattern starts
	// (fan-in); -1 spreads receivers uniformly.
	Victim int
}

func (o loadOpts) validate() error {
	switch o.Dist {
	case "", "websearch", "datamining", "uniform":
	default:
		return fmt.Errorf("unknown dist %q", o.Dist)
	}
	return nil
}

func (o loadOpts) dist() *SizeDist {
	switch o.Dist {
	case "datamining":
		return DataMining()
	case "uniform":
		return Uniform(1, 100)
	default:
		return WebSearch()
	}
}

func (o loadOpts) specSuffix() string {
	var b strings.Builder
	if o.Dist != "" {
		fmt.Fprintf(&b, ",dist=%s", o.Dist)
	}
	if o.Victim >= 0 {
		fmt.Fprintf(&b, ",victim=%d", o.Victim)
	}
	return b.String()
}

// Square is a square-wave rate envelope: Peak for the first Duty fraction
// of every Period, Base for the rest. Spec form:
//
//	square:period=10ms,duty=0.2,peak=40G,base=1G
type Square struct {
	Period sim.Duration
	Duty   float64 // on-fraction of the period, in (0, 1]
	Peak   sim.Rate
	Base   sim.Rate
	Opts   loadOpts
}

// Name implements Pattern.
func (p *Square) Name() string { return "square" }

// RateAt implements Pattern.
func (p *Square) RateAt(t sim.Time) sim.Rate {
	phase := sim.Duration(t) % p.Period
	if float64(phase) < p.Duty*float64(p.Period) {
		return p.Peak
	}
	return p.Base
}

// PeakRate implements Pattern.
func (p *Square) PeakRate() sim.Rate { return p.Peak }

// Spec implements Pattern.
func (p *Square) Spec() string {
	return fmt.Sprintf("square:period=%s,duty=%g,peak=%s,base=%s%s",
		p.Period, p.Duty, spec.FormatRate(p.Peak), spec.FormatRate(p.Base), p.Opts.specSuffix())
}

func (p *Square) validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("non-positive period")
	}
	if p.Duty <= 0 || p.Duty > 1 {
		return fmt.Errorf("duty %g outside (0, 1]", p.Duty)
	}
	if p.Peak <= 0 {
		return fmt.Errorf("non-positive peak")
	}
	if p.Base < 0 || p.Base > p.Peak {
		return fmt.Errorf("base %v outside [0, peak]", p.Base)
	}
	return p.Opts.validate()
}

// Saw is a sawtooth envelope ramping linearly from Base to Peak over each
// Period, then snapping back. Spec form:
//
//	saw:period=10ms,peak=40G,base=1G
type Saw struct {
	Period sim.Duration
	Peak   sim.Rate
	Base   sim.Rate
	Opts   loadOpts
}

// Name implements Pattern.
func (p *Saw) Name() string { return "saw" }

// RateAt implements Pattern.
func (p *Saw) RateAt(t sim.Time) sim.Rate {
	phase := sim.Duration(t) % p.Period
	frac := float64(phase) / float64(p.Period)
	return p.Base + sim.Rate(frac*float64(p.Peak-p.Base))
}

// PeakRate implements Pattern.
func (p *Saw) PeakRate() sim.Rate { return p.Peak }

// Spec implements Pattern.
func (p *Saw) Spec() string {
	return fmt.Sprintf("saw:period=%s,peak=%s,base=%s%s",
		p.Period, spec.FormatRate(p.Peak), spec.FormatRate(p.Base), p.Opts.specSuffix())
}

func (p *Saw) validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("non-positive period")
	}
	if p.Peak <= 0 {
		return fmt.Errorf("non-positive peak")
	}
	if p.Base < 0 || p.Base >= p.Peak {
		return fmt.Errorf("base %v outside [0, peak)", p.Base)
	}
	return p.Opts.validate()
}

// MMPP is a Markov-modulated rate envelope: the offered load holds one of
// Rates while in the matching state, dwells an exponential sojourn with
// the state's mean Dwell, then jumps to a uniformly-drawn other state. The
// trajectory is a pure function of Seed: it is generated lazily and
// memoized, so RateAt answers consistently in any query order. Spec form:
//
//	mmpp:rates=1G|40G,dwell=1ms|250us,seed=7
type MMPP struct {
	Rates  []sim.Rate
	Dwells []sim.Duration
	Seed   uint64
	Opts   loadOpts

	// Memoized trajectory: hops[i] says state hops[i].state rules
	// [hops[i].from, hops[i+1].from); rng extends it on demand.
	hops []mmppHop
	rng  *sim.Rand
}

type mmppHop struct {
	from  sim.Time
	state int
}

// Name implements Pattern.
func (p *MMPP) Name() string { return "mmpp" }

// RateAt implements Pattern.
func (p *MMPP) RateAt(t sim.Time) sim.Rate {
	return p.Rates[p.stateAt(t)]
}

// stateAt extends the memoized trajectory until it covers t and returns
// the ruling state.
func (p *MMPP) stateAt(t sim.Time) int {
	if p.rng == nil {
		p.rng = sim.NewRand(p.Seed)
		p.hops = []mmppHop{{from: 0, state: 0}}
	}
	// Extend until the last recorded hop begins after t; every hop before
	// it then has a bounded interval, so t's ruling state is settled and
	// can never change on later extensions — RateAt is consistent in any
	// query order and the stream is consumed exactly once per hop.
	for p.hops[len(p.hops)-1].from <= t {
		last := p.hops[len(p.hops)-1]
		sojourn := p.rng.Exp(p.Dwells[last.state])
		if sojourn <= 0 {
			sojourn = 1
		}
		next := (last.state + 1 + p.rng.Intn(len(p.Rates)-1)) % len(p.Rates)
		p.hops = append(p.hops, mmppHop{from: last.from.Add(sojourn), state: next})
	}
	// Binary search for the hop ruling t.
	i := sort.Search(len(p.hops), func(i int) bool { return p.hops[i].from > t })
	return p.hops[i-1].state
}

// PeakRate implements Pattern.
func (p *MMPP) PeakRate() sim.Rate {
	var peak sim.Rate
	for _, r := range p.Rates {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// Spec implements Pattern.
func (p *MMPP) Spec() string {
	rates := make([]string, len(p.Rates))
	for i, r := range p.Rates {
		rates[i] = spec.FormatRate(r)
	}
	dwells := make([]string, len(p.Dwells))
	for i, d := range p.Dwells {
		dwells[i] = d.String()
	}
	return fmt.Sprintf("mmpp:rates=%s,dwell=%s,seed=%d%s",
		strings.Join(rates, "|"), strings.Join(dwells, "|"), p.Seed, p.Opts.specSuffix())
}

func (p *MMPP) validate() error {
	if len(p.Rates) < 2 {
		return fmt.Errorf("need at least 2 states, got %d", len(p.Rates))
	}
	if len(p.Dwells) != len(p.Rates) {
		return fmt.Errorf("%d dwells for %d rates", len(p.Dwells), len(p.Rates))
	}
	for i, r := range p.Rates {
		if r < 0 {
			return fmt.Errorf("negative rate in state %d", i)
		}
	}
	if p.PeakRate() <= 0 {
		return fmt.Errorf("all states idle")
	}
	for i, d := range p.Dwells {
		if d <= 0 {
			return fmt.Errorf("non-positive dwell in state %d", i)
		}
	}
	return p.Opts.validate()
}

// Lognormal is a renewal arrival process with lognormal inter-arrival
// gaps: a constant mean offered load of Rate, with the burstiness
// controlled by Sigma (the log-space standard deviation; 0 < sigma,
// larger means heavier clumping). Spec form:
//
//	lognormal:rate=5G,sigma=1.5
type Lognormal struct {
	Rate  sim.Rate
	Sigma float64
	Opts  loadOpts
}

// Name implements Pattern.
func (p *Lognormal) Name() string { return "lognormal" }

// RateAt implements Pattern.
func (p *Lognormal) RateAt(sim.Time) sim.Rate { return p.Rate }

// PeakRate implements Pattern.
func (p *Lognormal) PeakRate() sim.Rate { return p.Rate }

// Spec implements Pattern.
func (p *Lognormal) Spec() string {
	return fmt.Sprintf("lognormal:rate=%s,sigma=%g%s",
		spec.FormatRate(p.Rate), p.Sigma, p.Opts.specSuffix())
}

func (p *Lognormal) validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("non-positive rate")
	}
	if p.Sigma <= 0 || p.Sigma > 4 {
		return fmt.Errorf("sigma %g outside (0, 4]", p.Sigma)
	}
	return p.Opts.validate()
}

// nextGap draws one lognormal inter-arrival gap with the given mean:
// exp(N(mu, sigma^2)) with mu = ln(mean) - sigma^2/2 so the expectation
// lands on mean regardless of sigma.
func (p *Lognormal) nextGap(rng *sim.Rand, mean sim.Duration) sim.Duration {
	mu := math.Log(float64(mean)) - p.Sigma*p.Sigma/2
	// Box-Muller; two uniform draws per gap keeps the stream consumption
	// a fixed function of the arrival count.
	u1, u2 := rng.Float64(), rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	g := math.Exp(mu + p.Sigma*z)
	if g < 1 {
		g = 1
	}
	return sim.Duration(g)
}

// Incast is a synchronized N-to-1 storm: every Period, Fanin sender ports
// each start one flow of SizePkts packets toward Victim — the classic
// partition/aggregate burst. The first storm fires one period in. Spec
// form:
//
//	incast:period=5ms,fanin=8,victim=4,size=150
type Incast struct {
	Period   sim.Duration
	Fanin    int
	Victim   int
	SizePkts uint32
}

// Name implements Pattern.
func (p *Incast) Name() string { return "incast" }

// RateAt reports the storm's period-averaged offered load per sender as
// zero: incast arrivals are impulses placed by the driver's storm timer,
// not envelope-driven.
func (p *Incast) RateAt(sim.Time) sim.Rate { return 0 }

// PeakRate implements Pattern.
func (p *Incast) PeakRate() sim.Rate { return 0 }

// Spec implements Pattern.
func (p *Incast) Spec() string {
	return fmt.Sprintf("incast:period=%s,fanin=%d,victim=%d,size=%d",
		p.Period, p.Fanin, p.Victim, p.SizePkts)
}

func (p *Incast) validate() error {
	if p.Period <= 0 {
		return fmt.Errorf("non-positive period")
	}
	if p.Fanin < 1 {
		return fmt.Errorf("fanin %d < 1", p.Fanin)
	}
	if p.Victim < 0 {
		return fmt.Errorf("negative victim port")
	}
	if p.SizePkts < 1 {
		return fmt.Errorf("size %d < 1 packet", p.SizePkts)
	}
	return nil
}

// Flood is a victim-targeted UDP-style flood: raw DATA frames paced at
// the envelope rate are injected into the tested network toward Victim,
// bypassing congestion control entirely — they share queues with the
// well-behaved traffic but never back off. With a period the flood
// pulses (Peak for Duty of each Period, silent otherwise); without one
// it runs flat out. Spec form:
//
//	flood:peak=20G,victim=0,period=4ms,duty=0.25,ect=not
type Flood struct {
	Peak   sim.Rate
	Victim int
	// Period/Duty pulse the flood; Period == 0 floods continuously.
	Period sim.Duration
	Duty   float64
	// ECT is the ECN codepoint stamped on the flood's frames (default
	// ECT(0)). Not-ECT models a plain UDP blast that AQMs can only drop;
	// ECT(1) models an abuser squatting in a dual-queue AQM's low-latency
	// band.
	ECT packet.ECT
}

// Name implements Pattern.
func (p *Flood) Name() string { return "flood" }

// RateAt implements Pattern.
func (p *Flood) RateAt(t sim.Time) sim.Rate {
	if p.Period == 0 {
		return p.Peak
	}
	phase := sim.Duration(t) % p.Period
	if float64(phase) < p.Duty*float64(p.Period) {
		return p.Peak
	}
	return 0
}

// PeakRate implements Pattern.
func (p *Flood) PeakRate() sim.Rate { return p.Peak }

// Spec implements Pattern.
func (p *Flood) Spec() string {
	s := fmt.Sprintf("flood:peak=%s,victim=%d", spec.FormatRate(p.Peak), p.Victim)
	if p.Period > 0 {
		s += fmt.Sprintf(",period=%s,duty=%g", p.Period, p.Duty)
	}
	if p.ECT != packet.ECT0 {
		s += ",ect=" + ectSpec(p.ECT)
	}
	return s
}

// ectSpec renders an ECN codepoint in flood-spec syntax.
func ectSpec(e packet.ECT) string {
	switch e {
	case packet.NotECT:
		return "not"
	case packet.ECT1:
		return "ect1"
	default:
		return "ect0"
	}
}

func (p *Flood) validate() error {
	if p.Peak <= 0 {
		return fmt.Errorf("non-positive peak")
	}
	if p.Victim < 0 {
		return fmt.Errorf("negative victim port")
	}
	if p.Period < 0 {
		return fmt.Errorf("negative period")
	}
	if p.Period > 0 && (p.Duty <= 0 || p.Duty > 1) {
		return fmt.Errorf("duty %g outside (0, 1]", p.Duty)
	}
	if p.Period == 0 && p.Duty != 0 {
		return fmt.Errorf("duty without a period")
	}
	return nil
}

// Plan is an ordered set of traffic patterns driven together.
type Plan struct {
	Patterns []Pattern
}

// IsZero reports whether the plan schedules nothing.
func (p Plan) IsZero() bool { return len(p.Patterns) == 0 }

// String renders the plan in ParseSpec syntax.
func (p Plan) String() string {
	parts := make([]string, len(p.Patterns))
	for i, pat := range p.Patterns {
		parts[i] = pat.Spec()
	}
	return strings.Join(parts, "; ")
}

// Validate checks every pattern's parameters.
func (p Plan) Validate() error {
	for i, pat := range p.Patterns {
		if err := pat.validate(); err != nil {
			return fmt.Errorf("workload: pattern %d (%s): %w", i, pat.Name(), err)
		}
	}
	return nil
}

// Victims returns every explicit victim port the plan names, in pattern
// order — the set a control plane must range-check against the test's data
// ports before deploying.
func (p Plan) Victims() []int {
	var out []int
	for _, pat := range p.Patterns {
		switch v := pat.(type) {
		case *Incast:
			out = append(out, v.Victim)
		case *Flood:
			out = append(out, v.Victim)
		case *Square:
			if v.Opts.Victim >= 0 {
				out = append(out, v.Opts.Victim)
			}
		case *Saw:
			if v.Opts.Victim >= 0 {
				out = append(out, v.Opts.Victim)
			}
		case *MMPP:
			if v.Opts.Victim >= 0 {
				out = append(out, v.Opts.Victim)
			}
		case *Lognormal:
			if v.Opts.Victim >= 0 {
				out = append(out, v.Opts.Victim)
			}
		}
	}
	return out
}

// Victim returns the first explicit victim port named by the plan (incast
// or flood target, or a load pattern's victim= knob); ok is false when no
// pattern names one.
func (p Plan) Victim() (victim int, ok bool) {
	for _, pat := range p.Patterns {
		switch v := pat.(type) {
		case *Incast:
			return v.Victim, true
		case *Flood:
			return v.Victim, true
		case *Square:
			if v.Opts.Victim >= 0 {
				return v.Opts.Victim, true
			}
		case *Saw:
			if v.Opts.Victim >= 0 {
				return v.Opts.Victim, true
			}
		case *MMPP:
			if v.Opts.Victim >= 0 {
				return v.Opts.Victim, true
			}
		case *Lognormal:
			if v.Opts.Victim >= 0 {
				return v.Opts.Victim, true
			}
		}
	}
	return 0, false
}
