package workload

import (
	"math"
	"testing"
	"testing/quick"

	"marlin/internal/sim"
)

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	rng := sim.NewRand(42)
	const n = 200000
	var small, huge int
	var sum float64
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 1 {
			t.Fatal("zero-size flow")
		}
		if s <= 53 {
			small++
		}
		if s > 6667 {
			huge++
		}
		sum += float64(s)
	}
	// ~53% of flows are <= 53 packets; ~3% exceed 6667 packets.
	if frac := float64(small) / n; frac < 0.48 || frac > 0.58 {
		t.Fatalf("small-flow fraction = %v, want ~0.53", frac)
	}
	if frac := float64(huge) / n; frac < 0.02 || frac > 0.04 {
		t.Fatalf("huge-flow fraction = %v, want ~0.03", frac)
	}
	mean := sum / n
	analytic := d.Mean()
	if mean < analytic*0.9 || mean > analytic*1.1 {
		t.Fatalf("empirical mean %v vs analytic %v", mean, analytic)
	}
}

func TestSizeDistValidation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := [][2][]float64{
		{{}, {}},
		{{1, 2}, {0}},
		{{2, 1}, {0, 1}},            // sizes descend
		{{1, 2}, {0.5, 0.4}},        // cdf descends
		{{1, 2}, {0, 0.9}},          // cdf doesn't reach 1
		{{1, 2}, {0.5, 1}},          // cdf doesn't start at 0
		{{1, 2}, {0.1, 1}},          // cdf doesn't start at 0
		{{1, nan}, {0, 1}},          // NaN size knot
		{{1, inf}, {0, 1}},          // +Inf size knot
		{{1, 2}, {0, nan}},          // NaN cdf knot
		{{1, 2}, {nan, 1}},          // NaN leading cdf knot
		{{1, 2, 3}, {0, inf, 1}},    // +Inf cdf knot
		{{math.Inf(-1), 2}, {0, 1}}, // -Inf size knot
	}
	for i, knots := range bad {
		if _, err := NewSizeDist("x", knots[0], knots[1]); err == nil {
			t.Errorf("bad knots %d accepted", i)
		}
	}
	// The canonical tables still construct.
	if _, err := NewSizeDist("ok", []float64{1, 10}, []float64{0, 1}); err != nil {
		t.Fatalf("good knots rejected: %v", err)
	}
}

func TestFixedAndUniform(t *testing.T) {
	rng := sim.NewRand(7)
	f := Fixed(10)
	for i := 0; i < 100; i++ {
		if got := f.Sample(rng); got != 10 {
			t.Fatalf("fixed sample = %d", got)
		}
	}
	u := Uniform(5, 15)
	for i := 0; i < 1000; i++ {
		s := u.Sample(rng)
		if s < 5 || s > 15 {
			t.Fatalf("uniform sample %d outside [5,15]", s)
		}
	}
}

func TestQuickSampleWithinSupport(t *testing.T) {
	d := WebSearch()
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		s := d.Sample(rng)
		return s >= 1 && s <= 20000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorClosedLoop(t *testing.T) {
	g, err := NewGenerator(Fixed(8), ClosedLoop, 0, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	size, gap := g.Next()
	if size != 8 || gap != 0 {
		t.Fatalf("closed loop = (%d, %v), want (8, 0)", size, gap)
	}
	if g.Issued() != 1 {
		t.Fatalf("issued = %d", g.Issued())
	}
}

func TestGeneratorPoisson(t *testing.T) {
	g, err := NewGenerator(Fixed(8), PoissonOpenLoop, sim.Micros(100), sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		_, gap := g.Next()
		if gap < 0 {
			t.Fatal("negative gap")
		}
		sum += gap.Microseconds()
	}
	mean := sum / n
	if mean < 95 || mean > 105 {
		t.Fatalf("mean gap = %vus, want ~100", mean)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, ClosedLoop, 0, nil); err == nil {
		t.Error("nil dist accepted")
	}
	if _, err := NewGenerator(Fixed(1), PoissonOpenLoop, 0, nil); err == nil {
		t.Error("poisson without mean gap accepted")
	}
}

func TestMeanGapForLoad(t *testing.T) {
	d := Fixed(100) // 100 pkts of (1024+20)B = 835,200 bits
	gap, err := MeanGapForLoad(0.5, sim.Gbps, d, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// tx time = 835.2us; load 0.5 -> total 1670.4us -> gap 835.2us.
	if us := gap.Microseconds(); us < 830 || us > 840 {
		t.Fatalf("gap = %vus, want ~835", us)
	}
	if _, err := MeanGapForLoad(0, sim.Gbps, d, 1024); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := MeanGapForLoad(1.5, sim.Gbps, d, 1024); err == nil {
		t.Error("overload accepted")
	}
}

func TestDataMiningShape(t *testing.T) {
	d := DataMining()
	rng := sim.NewRand(5)
	const n = 100000
	tiny, huge := 0, 0
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 666667 {
			t.Fatalf("sample %d outside support", s)
		}
		if s <= 2 {
			tiny++
		}
		if s > 66667 {
			huge++
		}
	}
	if frac := float64(tiny) / n; frac < 0.5 || frac > 0.7 {
		t.Fatalf("tiny-flow fraction = %v, want ~0.6", frac)
	}
	if frac := float64(huge) / n; frac < 0.005 || frac > 0.02 {
		t.Fatalf("huge-flow fraction = %v, want ~0.01", frac)
	}
	if d.Mean() < 5000 {
		t.Fatalf("mean = %v pkts, datamining should be very heavy-tailed", d.Mean())
	}
}
