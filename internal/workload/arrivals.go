package workload

import (
	"fmt"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ArrivalPolicy decides when the next flow of a slot begins. The tester
// core consults it whenever a flow completes.
type ArrivalPolicy int

// Arrival policies.
const (
	// ClosedLoop starts a replacement flow immediately on completion,
	// keeping concurrency constant (§7.5: "a new flow will be created
	// based on the chosen traffic model after each flow completes...
	// rather than following a Poisson distribution").
	ClosedLoop ArrivalPolicy = iota
	// PoissonOpenLoop draws exponential think-times between a flow's
	// completion and its slot's next arrival, approximating an open
	// loop at a configured load.
	PoissonOpenLoop
)

func (p ArrivalPolicy) String() string {
	if p == PoissonOpenLoop {
		return "poisson"
	}
	return "closed-loop"
}

// Generator produces the flow sequence for one test: sizes from a
// distribution and inter-flow gaps from an arrival policy.
type Generator struct {
	dist   *SizeDist
	policy ArrivalPolicy
	rng    *sim.Rand
	// meanGap is the mean think-time for PoissonOpenLoop.
	meanGap sim.Duration

	issued uint64
}

// NewGenerator builds a generator. meanGap is ignored for ClosedLoop.
func NewGenerator(dist *SizeDist, policy ArrivalPolicy, meanGap sim.Duration, rng *sim.Rand) (*Generator, error) {
	if dist == nil {
		return nil, fmt.Errorf("workload: nil size distribution")
	}
	if policy == PoissonOpenLoop && meanGap <= 0 {
		return nil, fmt.Errorf("workload: poisson policy needs a positive mean gap")
	}
	if rng == nil {
		rng = sim.NewRand(1)
	}
	return &Generator{dist: dist, policy: policy, rng: rng, meanGap: meanGap}, nil
}

// Next returns the next flow's size (packets) and the delay before it
// should start, measured from the previous flow's completion.
func (g *Generator) Next() (sizePkts uint32, after sim.Duration) {
	g.issued++
	size := g.dist.Sample(g.rng)
	if g.policy == ClosedLoop {
		return size, 0
	}
	return size, g.rng.Exp(g.meanGap)
}

// Issued reports how many flows the generator has produced.
func (g *Generator) Issued() uint64 { return g.issued }

// MeanGapForLoad computes the mean think-time that drives one slot at the
// given fraction of link capacity, for PoissonOpenLoop generators:
// load = meanFlowBits / (capacity * (meanGap + meanFCT)); the meanFCT term
// is unknowable a priori, so this uses the transmission-time lower bound.
func MeanGapForLoad(load float64, capacity sim.Rate, dist *SizeDist, mtu int) (sim.Duration, error) {
	if load <= 0 || load >= 1 {
		return 0, fmt.Errorf("workload: load %v outside (0,1)", load)
	}
	meanBits := dist.Mean() * float64(packet.WireSize(mtu)) * 8
	txTime := meanBits / float64(capacity) // seconds at full rate
	total := txTime / load
	return sim.Seconds(total - txTime), nil
}
