package workload

import (
	"fmt"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// DefaultFlowBase is the first flow ID a Driver allocates for pattern
// traffic. User flows live below it, pattern flows at and above it, so
// telemetry can split background from pattern traffic by ID alone.
const DefaultFlowBase packet.FlowID = 4096

// Target is what a pattern plan drives. core.Tester implements it; tests
// can supply a stub.
type Target interface {
	// StartFlow launches a CC-governed flow (pattern arrivals, incast
	// storms) of sizePkts MTU-sized packets from tx to rx.
	StartFlow(flow packet.FlowID, tx, rx int, sizePkts uint32) error
	// BindExternalFlow routes a tester-external flow ID (flood traffic
	// that bypasses the NIC) toward receiver port rx.
	BindExternalFlow(flow packet.FlowID, rx int) error
	// InjectData sends one raw DATA frame carrying the given ECN
	// codepoint for the flow into tx's uplink.
	InjectData(flow packet.FlowID, tx int, psn uint32, frameBytes int, ect packet.ECT)
}

// DriverConfig sizes a Driver to its tester.
type DriverConfig struct {
	// Ports is the tester's data-port count.
	Ports int
	// MTU is the DATA frame size in bytes.
	MTU int
	// FlowBase is the first flow ID the driver may allocate
	// (0 = DefaultFlowBase).
	FlowBase packet.FlowID
	// Seed derives every driver random stream; it is independent of the
	// tester's own streams so installing a pattern never perturbs the
	// baseline traffic.
	Seed uint64
}

// Driver schedules a compiled pattern plan onto a tester: open-loop flow
// arrivals thinned against each load pattern's envelope, synchronized
// incast storms, and paced flood injection.
type Driver struct {
	eng    *sim.Engine
	target Target
	plan   Plan
	cfg    DriverConfig

	nextFlow packet.FlowID
	started  uint64
	skipped  uint64
	injected uint64
}

// Apply validates the plan against the tester's shape, arms every
// pattern's events on the engine, and returns the driver. Call before
// running the simulation.
func Apply(eng *sim.Engine, target Target, plan Plan, cfg DriverConfig) (*Driver, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("workload: driver needs at least 1 port")
	}
	if cfg.MTU < 1 {
		return nil, fmt.Errorf("workload: driver needs a positive MTU")
	}
	if cfg.FlowBase == 0 {
		cfg.FlowBase = DefaultFlowBase
	}
	d := &Driver{eng: eng, target: target, plan: plan, cfg: cfg, nextFlow: cfg.FlowBase}
	// One independent stream per pattern, all derived from the driver
	// seed: pattern i's arrivals never depend on what pattern j drew.
	base := sim.NewRand(cfg.Seed)
	for i, pat := range plan.Patterns {
		rng := base.Split()
		var err error
		switch p := pat.(type) {
		case *Incast:
			err = d.armIncast(p)
		case *Flood:
			err = d.armFlood(p)
		case *Square:
			err = d.armLoad(p, p.Opts, rng)
		case *Saw:
			err = d.armLoad(p, p.Opts, rng)
		case *MMPP:
			err = d.armLoad(p, p.Opts, rng)
		case *Lognormal:
			err = d.armLognormal(p, rng)
		default:
			err = fmt.Errorf("unsupported pattern type %T", pat)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: pattern %d (%s): %w", i, pat.Name(), err)
		}
	}
	return d, nil
}

// checkVictim bounds an explicit victim port against the tester.
func (d *Driver) checkVictim(victim int) error {
	if victim >= d.cfg.Ports {
		return fmt.Errorf("victim port %d outside [0,%d)", victim, d.cfg.Ports)
	}
	return nil
}

// armLoad drives open-loop flow arrivals under an envelope pattern with
// Lewis-Shedler thinning: candidate arrivals are proposed as a Poisson
// process at the envelope's peak flow rate, and each candidate survives
// with probability RateAt(now)/peak — a nonhomogeneous Poisson process
// whose intensity tracks the envelope exactly.
func (d *Driver) armLoad(p Pattern, o loadOpts, rng *sim.Rand) error {
	if o.Victim >= 0 {
		if err := d.checkVictim(o.Victim); err != nil {
			return err
		}
	}
	dist := o.dist()
	meanFlowBits := dist.Mean() * float64(packet.WireSize(d.cfg.MTU)) * 8
	peak := p.PeakRate()
	meanGap := sim.Seconds(meanFlowBits / float64(peak))
	var tick func()
	tick = func() {
		if accept := float64(p.RateAt(d.eng.Now())) / float64(peak); rng.Float64() < accept {
			d.startOne(dist, o, rng)
		}
		d.eng.Schedule(rng.Exp(meanGap), tick)
	}
	d.eng.Schedule(rng.Exp(meanGap), tick)
	return nil
}

// armLognormal drives a renewal arrival process with lognormal gaps whose
// mean offers the pattern's configured load.
func (d *Driver) armLognormal(p *Lognormal, rng *sim.Rand) error {
	if p.Opts.Victim >= 0 {
		if err := d.checkVictim(p.Opts.Victim); err != nil {
			return err
		}
	}
	dist := p.Opts.dist()
	meanFlowBits := dist.Mean() * float64(packet.WireSize(d.cfg.MTU)) * 8
	meanGap := sim.Seconds(meanFlowBits / float64(p.Rate))
	var tick func()
	tick = func() {
		d.startOne(dist, p.Opts, rng)
		d.eng.Schedule(p.nextGap(rng, meanGap), tick)
	}
	d.eng.Schedule(p.nextGap(rng, meanGap), tick)
	return nil
}

// startOne launches one pattern flow: size from the distribution, sender
// uniform over the ports, receiver the fan-in victim or a uniform other
// port. A refused start (BRAM exhausted mid-storm) is counted, not fatal:
// overload is exactly what patterns are for.
func (d *Driver) startOne(dist *SizeDist, o loadOpts, rng *sim.Rand) {
	size := dist.Sample(rng)
	tx := rng.Intn(d.cfg.Ports)
	rx := o.Victim
	if rx < 0 {
		rx = rng.Intn(d.cfg.Ports)
		if rx == tx {
			rx = (rx + 1) % d.cfg.Ports
		}
	}
	flow := d.nextFlow
	d.nextFlow++
	if err := d.target.StartFlow(flow, tx, rx, size); err != nil {
		d.skipped++
		return
	}
	d.started++
}

// armIncast fires a synchronized storm every period: fanin senders
// (cycling over the non-victim ports) each start one fixed-size flow at
// the victim in the same instant.
func (d *Driver) armIncast(p *Incast) error {
	if err := d.checkVictim(p.Victim); err != nil {
		return err
	}
	if d.cfg.Ports < 2 {
		return fmt.Errorf("incast needs at least 2 ports")
	}
	senders := make([]int, p.Fanin)
	for i := range senders {
		senders[i] = (p.Victim + 1 + i%(d.cfg.Ports-1)) % d.cfg.Ports
	}
	sim.NewTicker(d.eng, p.Period, func() {
		for _, tx := range senders {
			flow := d.nextFlow
			d.nextFlow++
			if err := d.target.StartFlow(flow, tx, p.Victim, p.SizePkts); err != nil {
				d.skipped++
				continue
			}
			d.started++
		}
	}).Start()
	return nil
}

// armFlood paces raw DATA injection at the flood envelope: one frame
// every Serialize(wire) at the current rate, sleeping to the next period
// boundary through silent phases. The flood flow is tester-external — no
// NIC state, no congestion control, no backoff — but it is routed,
// queued, ACKed, and dropped by the tested network like any other DATA.
func (d *Driver) armFlood(p *Flood) error {
	if err := d.checkVictim(p.Victim); err != nil {
		return err
	}
	if d.cfg.Ports < 2 {
		return fmt.Errorf("flood needs at least 2 ports")
	}
	flow := d.nextFlow
	d.nextFlow++
	if err := d.target.BindExternalFlow(flow, p.Victim); err != nil {
		return err
	}
	attacker := (p.Victim + 1) % d.cfg.Ports
	wire := packet.WireSize(d.cfg.MTU)
	var psn uint32
	var tick func()
	tick = func() {
		now := d.eng.Now()
		if r := p.RateAt(now); r > 0 {
			d.target.InjectData(flow, attacker, psn, d.cfg.MTU, p.ECT)
			psn++
			d.injected++
			d.eng.Schedule(r.Serialize(wire), tick)
			return
		}
		// Silent phase: wake exactly at the next period boundary.
		phase := sim.Duration(now) % p.Period
		d.eng.Schedule(p.Period-phase, tick)
	}
	d.eng.Schedule(0, tick)
	return nil
}

// Plan returns the driven plan.
func (d *Driver) Plan() Plan { return d.plan }

// FlowBase returns the first pattern flow ID; every flow the driver
// started has an ID in [FlowBase, NextFlow).
func (d *Driver) FlowBase() packet.FlowID { return d.cfg.FlowBase }

// NextFlow returns the next unallocated pattern flow ID.
func (d *Driver) NextFlow() packet.FlowID { return d.nextFlow }

// Started reports how many pattern flows were launched.
func (d *Driver) Started() uint64 { return d.started }

// Skipped reports how many pattern flow starts the tester refused
// (typically BRAM exhaustion at the height of a storm).
func (d *Driver) Skipped() uint64 { return d.skipped }

// Injected reports how many flood frames were sent.
func (d *Driver) Injected() uint64 { return d.injected }
